// Package qindex defines the worker-side query-index abstraction and an
// R-tree-based alternative implementation. §IV-D of the paper adopts GI2
// for its cheap construction and maintenance but notes "our system can be
// extended to adopt other index structures"; this package provides that
// extension point and a concrete second index so the design choice can be
// benchmarked (see BenchmarkAblationWorkerIndex).
package qindex

import (
	"ps2stream/internal/geo"
	"ps2stream/internal/index/rtree"
	"ps2stream/internal/model"
)

// Index is the contract a worker-side STS-query index must satisfy.
// gi2.Index implements it natively.
type Index interface {
	// Insert registers a query.
	Insert(q *model.Query)
	// Delete drops a query by id (lazily or eagerly).
	Delete(id uint64)
	// Match invokes fn exactly once per live query matching o.
	Match(o *model.Object, fn func(q *model.Query))
	// Each invokes fn once per live query, in unspecified order
	// (checkpointing, tests).
	Each(fn func(q *model.Query))
	// Get returns the stored definition of a live query, or nil.
	Get(id uint64) *model.Query
	// QueryCount reports stored distinct queries.
	QueryCount() int
	// Footprint estimates resident bytes.
	Footprint() int64
}

// RTree indexes STS queries by their regions in an R-tree; matching does a
// point search then evaluates the boolean expression. Compared to GI2 it
// prunes better on spatial selectivity but pays insertion-time tree
// maintenance and cannot prune on keywords — the trade-off the paper's
// cost argument is about.
type RTree struct {
	tree    *rtree.Tree
	queries map[uint64]*model.Query
	// tombstones defers physical removal to the periodic rebuild, the
	// standard way to delete from an R-tree under churn.
	tombstones map[uint64]struct{}
	// rebuildAt bounds tombstone accumulation.
	rebuildAt int
}

var _ Index = (*RTree)(nil)

// NewRTree returns an empty R-tree query index. fanout <= 0 uses the
// rtree default.
func NewRTree(fanout int) *RTree {
	if fanout <= 0 {
		fanout = rtree.DefaultMaxEntries
	}
	return &RTree{
		tree:       rtree.New(fanout),
		queries:    make(map[uint64]*model.Query),
		tombstones: make(map[uint64]struct{}),
		rebuildAt:  1024,
	}
}

// Insert implements Index.
func (ix *RTree) Insert(q *model.Query) {
	delete(ix.tombstones, q.ID)
	if _, dup := ix.queries[q.ID]; dup {
		return
	}
	ix.queries[q.ID] = q
	ix.tree.Insert(rtree.Entry{Rect: q.Region, Data: q})
}

// Delete implements Index.
func (ix *RTree) Delete(id uint64) {
	if _, ok := ix.queries[id]; !ok {
		return
	}
	ix.tombstones[id] = struct{}{}
	if len(ix.tombstones) >= ix.rebuildAt {
		ix.rebuild()
	}
}

// rebuild drops tombstoned entries by bulk-loading the survivors.
func (ix *RTree) rebuild() {
	live := make([]rtree.Entry, 0, len(ix.queries)-len(ix.tombstones))
	for id, q := range ix.queries {
		if _, dead := ix.tombstones[id]; dead {
			delete(ix.queries, id)
			continue
		}
		live = append(live, rtree.Entry{Rect: q.Region, Data: q})
	}
	ix.tombstones = make(map[uint64]struct{})
	ix.tree = rtree.BulkLoad(live, rtree.DefaultMaxEntries)
}

// Match implements Index.
func (ix *RTree) Match(o *model.Object, fn func(q *model.Query)) {
	pt := geo.Rect{Min: o.Loc, Max: o.Loc}
	ix.tree.Search(pt, func(e rtree.Entry) bool {
		q := e.Data.(*model.Query)
		if _, dead := ix.tombstones[q.ID]; dead {
			return true
		}
		if q.Expr.MatchesSlice(o.Terms) {
			fn(q)
		}
		return true
	})
}

// Get implements Index.
func (ix *RTree) Get(id uint64) *model.Query {
	if _, dead := ix.tombstones[id]; dead {
		return nil
	}
	return ix.queries[id]
}

// Each implements Index.
func (ix *RTree) Each(fn func(q *model.Query)) {
	for id, q := range ix.queries {
		if _, dead := ix.tombstones[id]; dead {
			continue
		}
		fn(q)
	}
}

// QueryCount implements Index.
func (ix *RTree) QueryCount() int {
	return len(ix.queries) - len(ix.tombstones)
}

// Footprint implements Index.
func (ix *RTree) Footprint() int64 {
	var b int64
	for _, q := range ix.queries {
		b += int64(q.SizeBytes()) + 48 // entry + node amortisation
	}
	b += int64(len(ix.tombstones)) * 16
	return b
}
