// The IQ-tree of Chen, Cong and Cao [10] combines a quadtree over the
// monitored space with per-node inverted lists: a query is stored at the
// deepest node whose region fully contains the query's region, under the
// inverted list of its least-frequent keyword (one list entry per
// conjunction, the same registration rule GI2 and gridt use). Matching an
// object walks the single root-to-leaf path containing the object's
// location — every query whose region covers the point is registered on
// that path — and probes each visited node's lists with the object's
// terms. Deletion is lazy, as in §IV-D.
//
// Compared to GI2, the IQ-tree never duplicates a query across cells
// (lower memory, cheap insertion) but pays a longer probe path per object
// and cannot shrink hot cells below its split threshold.

package qindex

import (
	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// Default IQ-tree tuning. MaxDepth 8 bounds the probe path (≤9 nodes);
// SplitThreshold matches the point where a node's lists get long enough
// that pushing contained queries down pays for the extra path node.
const (
	DefaultIQMaxDepth       = 8
	DefaultIQSplitThreshold = 64
)

// IQTree is a worker-side query index (see Index). It is owned by a single
// worker goroutine and is not safe for concurrent use.
type IQTree struct {
	root  *iqNode
	stats *textutil.Stats

	maxDepth  int
	threshold int

	// queries maps stored ids to definitions; refs counts inverted-list
	// entries per id so definitions drop once fully purged; tombstones is
	// the lazy-deletion set.
	queries    map[uint64]*model.Query
	refs       map[uint64]int
	tombstones map[uint64]struct{}
	entries    int
	scratch    []uint64 // reusable match-dedup buffer
}

var _ Index = (*IQTree)(nil)

type iqNode struct {
	bounds   geo.Rect
	depth    int
	children *[4]*iqNode // nil for leaves
	inverted map[string][]*model.Query
	// resident counts distinct queries stored at this node (split test).
	resident int
}

// NewIQTree returns an empty IQ-tree over bounds. stats selects
// least-frequent registration keywords (nil uses empty statistics).
// maxDepth and splitThreshold ≤ 0 use the defaults.
func NewIQTree(bounds geo.Rect, stats *textutil.Stats, maxDepth, splitThreshold int) *IQTree {
	if stats == nil {
		stats = textutil.NewStats()
	}
	if maxDepth <= 0 {
		maxDepth = DefaultIQMaxDepth
	}
	if splitThreshold <= 0 {
		splitThreshold = DefaultIQSplitThreshold
	}
	return &IQTree{
		root:       &iqNode{bounds: bounds},
		stats:      stats,
		maxDepth:   maxDepth,
		threshold:  splitThreshold,
		queries:    make(map[uint64]*model.Query),
		refs:       make(map[uint64]int),
		tombstones: make(map[uint64]struct{}),
	}
}

// quadrant returns the child index for a point: 0=SW 1=SE 2=NW 3=NE,
// with the centre lines belonging to the upper/right children so the four
// regions partition the node exactly.
func (n *iqNode) quadrant(p geo.Point) int {
	c := n.bounds.Center()
	q := 0
	if p.X >= c.X {
		q |= 1
	}
	if p.Y >= c.Y {
		q |= 2
	}
	return q
}

// childBounds returns the region of child q.
func (n *iqNode) childBounds(q int) geo.Rect {
	c := n.bounds.Center()
	r := n.bounds
	if q&1 == 0 {
		r.Max.X = c.X
	} else {
		r.Min.X = c.X
	}
	if q&2 == 0 {
		r.Max.Y = c.Y
	} else {
		r.Min.Y = c.Y
	}
	return r
}

// childFor returns the unique child whose region fully contains r, or -1
// when r straddles a centre line. Containment is decided on the min corner
// quadrant: since the four children tile the node, r fits in a child iff
// both corners land in the same quadrant.
func (n *iqNode) childFor(r geo.Rect) int {
	qmin := n.quadrant(r.Min)
	if n.quadrant(r.Max) != qmin {
		return -1
	}
	return qmin
}

// Insert registers q. Reinserting a tombstoned id clears the tombstone
// (ids are never reused by the paper's streams; this keeps the structure
// safe if callers do).
func (ix *IQTree) Insert(q *model.Query) {
	delete(ix.tombstones, q.ID)
	if _, dup := ix.queries[q.ID]; dup {
		return
	}
	keys := ix.stats.RegistrationKeys(q.Expr.Conj)
	if len(keys) == 0 {
		return
	}
	ix.queries[q.ID] = q
	n := ix.descend(q.Region)
	ix.store(n, q, keys)
	ix.maybeSplit(n)
}

// descend finds the deepest existing node whose region fully contains r.
func (ix *IQTree) descend(r geo.Rect) *iqNode {
	n := ix.root
	for n.children != nil {
		c := n.childFor(r)
		if c < 0 {
			return n
		}
		n = n.children[c]
	}
	return n
}

func (ix *IQTree) store(n *iqNode, q *model.Query, keys []string) {
	if n.inverted == nil {
		n.inverted = make(map[string][]*model.Query)
	}
	for _, k := range keys {
		n.inverted[k] = append(n.inverted[k], q)
		ix.refs[q.ID]++
		ix.entries++
	}
	n.resident++
}

// maybeSplit turns an over-full leaf into an internal node and pushes the
// queries contained by a single quadrant down into it (recursively, so a
// burst of co-located queries settles at its natural depth).
func (ix *IQTree) maybeSplit(n *iqNode) {
	for n.resident > ix.threshold && n.depth < ix.maxDepth && n.children == nil {
		var kids [4]*iqNode
		for i := range kids {
			kids[i] = &iqNode{bounds: n.childBounds(i), depth: n.depth + 1}
		}
		n.children = &kids
		moved := ix.pushDown(n)
		if moved == 0 {
			// Every resident straddles a centre line; the node stays
			// over-full and further splitting cannot help.
			return
		}
		for _, k := range kids {
			ix.maybeSplit(k)
		}
		return
	}
}

// pushDown moves every query stored at n that fits inside one child down
// one level, dropping tombstoned entries on the way. It returns the number
// of distinct queries moved.
func (ix *IQTree) pushDown(n *iqNode) int {
	movedIDs := make(map[uint64]bool)
	for term, list := range n.inverted {
		w := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				if ix.dropRef(q.ID) {
					n.resident--
				}
				ix.entries--
				continue
			}
			c := n.childFor(q.Region)
			if c < 0 {
				list[w] = q
				w++
				continue
			}
			child := n.children[c]
			if child.inverted == nil {
				child.inverted = make(map[string][]*model.Query)
			}
			child.inverted[term] = append(child.inverted[term], q)
			if !movedIDs[q.ID] {
				movedIDs[q.ID] = true
				n.resident--
				child.resident++
			}
			continue
		}
		if w == 0 {
			delete(n.inverted, term)
		} else {
			n.inverted[term] = list[:w]
		}
	}
	return len(movedIDs)
}

// Delete drops a query by id, lazily: the id is tombstoned and physically
// removed when matching traverses its lists (or by the next pushDown).
func (ix *IQTree) Delete(id uint64) {
	if _, ok := ix.queries[id]; !ok {
		return
	}
	ix.tombstones[id] = struct{}{}
}

// dropRef releases one inverted-list reference to id and reports whether
// that was the last one (the query definition is dropped then). All of a
// query's entries live at a single node, so the caller decrements that
// node's resident count exactly when dropRef returns true.
func (ix *IQTree) dropRef(id uint64) bool {
	ix.refs[id]--
	if ix.refs[id] <= 0 {
		delete(ix.refs, id)
		delete(ix.queries, id)
		delete(ix.tombstones, id)
		return true
	}
	return false
}

// Match invokes fn exactly once per live query matching o, walking the
// root-to-leaf path containing o.Loc and probing each node's inverted
// lists with o's terms. Tombstoned entries on traversed lists are removed.
func (ix *IQTree) Match(o *model.Object, fn func(q *model.Query)) {
	ix.scratch = ix.scratch[:0]
	n := ix.root
	for n != nil {
		if !n.bounds.Contains(o.Loc) {
			return
		}
		ix.matchNode(n, o, fn)
		if n.children == nil {
			return
		}
		n = n.children[n.quadrant(o.Loc)]
	}
}

func (ix *IQTree) matchNode(n *iqNode, o *model.Object, fn func(q *model.Query)) {
	if n.inverted == nil {
		return
	}
	for _, term := range o.Terms {
		list, ok := n.inverted[term]
		if !ok {
			continue
		}
		w := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				if ix.dropRef(q.ID) {
					n.resident--
				}
				ix.entries--
				continue
			}
			list[w] = q
			w++
			if q.Region.Contains(o.Loc) && q.Expr.MatchesSlice(o.Terms) && !ix.seen(q.ID) {
				ix.scratch = append(ix.scratch, q.ID)
				fn(q)
			}
		}
		if w == 0 {
			delete(n.inverted, term)
		} else {
			n.inverted[term] = list[:w]
		}
	}
}

func (ix *IQTree) seen(id uint64) bool {
	for _, s := range ix.scratch {
		if s == id {
			return true
		}
	}
	return false
}

// MatchIDs returns the matching query ids (convenience for tests).
func (ix *IQTree) MatchIDs(o *model.Object) []uint64 {
	var out []uint64
	ix.Match(o, func(q *model.Query) { out = append(out, q.ID) })
	return out
}

// Purge eagerly removes all tombstoned entries from every node.
func (ix *IQTree) Purge() {
	if len(ix.tombstones) == 0 {
		return
	}
	ix.purgeNode(ix.root)
}

func (ix *IQTree) purgeNode(n *iqNode) {
	for term, list := range n.inverted {
		w := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				if ix.dropRef(q.ID) {
					n.resident--
				}
				ix.entries--
				continue
			}
			list[w] = q
			w++
		}
		if w == 0 {
			delete(n.inverted, term)
		} else {
			n.inverted[term] = list[:w]
		}
	}
	if n.children != nil {
		for _, c := range n.children {
			ix.purgeNode(c)
		}
	}
}

// QueryCount returns distinct queries referenced by the index (tombstoned
// but unpurged ids count until purged), matching GI2's accounting.
func (ix *IQTree) QueryCount() int { return len(ix.queries) }

// LiveQueryCount returns distinct queries excluding tombstoned ones.
func (ix *IQTree) LiveQueryCount() int {
	n := len(ix.queries)
	for id := range ix.tombstones {
		if _, ok := ix.refs[id]; ok {
			n--
		}
	}
	return n
}

// EntryCount returns the number of (node, term, query) entries.
func (ix *IQTree) EntryCount() int { return ix.entries }

// NodeCount returns the number of allocated tree nodes (tests, benches).
func (ix *IQTree) NodeCount() int {
	var count func(n *iqNode) int
	count = func(n *iqNode) int {
		c := 1
		if n.children != nil {
			for _, k := range n.children {
				c += count(k)
			}
		}
		return c
	}
	return count(ix.root)
}

// Get returns the stored definition of a live query, or nil.
func (ix *IQTree) Get(id uint64) *model.Query {
	if _, dead := ix.tombstones[id]; dead {
		return nil
	}
	return ix.queries[id]
}

// Each invokes fn once per live query, in unspecified order.
func (ix *IQTree) Each(fn func(q *model.Query)) {
	for id, q := range ix.queries {
		if _, dead := ix.tombstones[id]; dead {
			continue
		}
		fn(q)
	}
}

// Footprint estimates resident bytes using the same per-entry accounting
// as GI2 (Figure 10 comparisons stay apples-to-apples).
func (ix *IQTree) Footprint() int64 {
	var b int64
	for _, q := range ix.queries {
		b += int64(q.SizeBytes()) + 48 // map slots in queries/refs
	}
	b += int64(ix.entries) * 8 // list entries
	var nodes func(n *iqNode) int64
	nodes = func(n *iqNode) int64 {
		nb := int64(96) // node struct
		for term := range n.inverted {
			nb += int64(16+len(term)) + 24 // key + slice header
		}
		if n.children != nil {
			for _, k := range n.children {
				nb += nodes(k)
			}
		}
		return nb
	}
	b += nodes(ix.root)
	b += int64(len(ix.tombstones)) * 16
	return b
}
