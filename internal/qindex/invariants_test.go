package qindex

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ps2stream/internal/gi2"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// Shared index invariants, checked across every implementation under a
// random insert/delete/match/purge churn:
//
//  1. QueryCount never goes negative and equals the live population after
//     a Purge (plus any not-yet-tombstoned duplicates).
//  2. Each visits exactly the live ids, once each.
//  3. Get returns non-nil exactly for live ids.
//  4. Footprint stays positive once anything was inserted.
func TestIndexInvariantsUnderChurn(t *testing.T) {
	builders := map[string]func(stats *textutil.Stats) Index{
		"gi2":    func(s *textutil.Stats) Index { return gi2.New(bounds, 16, s) },
		"rtree":  func(*textutil.Stats) Index { return NewRTree(8) },
		"iqtree": func(s *textutil.Stats) Index { return NewIQTree(bounds, s, 5, 4) },
		"aptree": func(s *textutil.Stats) Index { return NewAPTree(bounds, s, 4, 3, 8) },
	}
	type purger interface{ Purge() }
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64) bool {
				qs, os := randWorkload(seed, 120, 40)
				stats := textutil.NewStats()
				for _, o := range os {
					stats.Add(o.Terms...)
				}
				ix := mk(stats)
				rng := rand.New(rand.NewSource(seed ^ 0x1417))
				live := map[uint64]*model.Query{}
				for _, q := range qs {
					ix.Insert(q)
					live[q.ID] = q
					switch rng.Intn(4) {
					case 0: // delete a random live query
						for id := range live {
							ix.Delete(id)
							delete(live, id)
							break
						}
					case 1: // match traffic drives lazy purging
						ix.Match(os[rng.Intn(len(os))], func(*model.Query) {})
					case 2:
						if p, ok := ix.(purger); ok && rng.Intn(4) == 0 {
							p.Purge()
						}
					}
					if ix.QueryCount() < len(live) {
						t.Logf("QueryCount %d < live %d", ix.QueryCount(), len(live))
						return false
					}
					for id := range live {
						if ix.Get(id) == nil {
							t.Logf("Get(%d) = nil for live id", id)
							return false
						}
					}
				}
				// Drain tombstones, then Each must visit exactly the live set.
				if p, ok := ix.(purger); ok {
					p.Purge()
				}
				seen := map[uint64]bool{}
				dup := false
				ix.Each(func(q *model.Query) {
					if seen[q.ID] {
						dup = true
					}
					seen[q.ID] = true
				})
				if dup || len(seen) != len(live) {
					t.Logf("Each visited %d (dup=%v), live %d", len(seen), dup, len(live))
					return false
				}
				for id := range live {
					if !seen[id] {
						t.Logf("Each missed live id %d", id)
						return false
					}
				}
				return ix.Footprint() > 0
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
				t.Error(err)
			}
		})
	}
}
