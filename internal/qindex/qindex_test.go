package qindex

import (
	"math/rand"
	"sort"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// gi2.Index must satisfy the worker-index contract.
var _ Index = (*gi2.Index)(nil)

var bounds = geo.NewRect(0, 0, 100, 100)

func randWorkload(seed int64, nQ, nO int) ([]*model.Query, []*model.Object) {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	var qs []*model.Query
	for i := 0; i < nQ; i++ {
		n := 1 + rng.Intn(3)
		terms := map[string]struct{}{}
		for len(terms) < n {
			terms[vocab[rng.Intn(len(vocab))]] = struct{}{}
		}
		var ts []string
		for t := range terms {
			ts = append(ts, t)
		}
		var e model.Expr
		if rng.Intn(2) == 0 {
			e = model.And(ts...)
		} else {
			e = model.Or(ts...)
		}
		x, y := rng.Float64()*100, rng.Float64()*100
		qs = append(qs, &model.Query{
			ID: uint64(i + 1), Expr: e,
			Region: geo.NewRect(x, y, x+rng.Float64()*25, y+rng.Float64()*25),
		})
	}
	var os []*model.Object
	for i := 0; i < nO; i++ {
		n := 1 + rng.Intn(4)
		var ts []string
		for j := 0; j < n; j++ {
			ts = append(ts, vocab[rng.Intn(len(vocab))])
		}
		os = append(os, &model.Object{
			ID: uint64(i + 1), Terms: ts,
			Loc: geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
		})
	}
	return qs, os
}

func matchIDs(ix Index, o *model.Object) []uint64 {
	var out []uint64
	ix.Match(o, func(q *model.Query) { out = append(out, q.ID) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Both implementations must agree with each other and the naive oracle,
// including after deletions.
func TestImplementationsAgree(t *testing.T) {
	qs, os := randWorkload(1, 200, 300)
	stats := textutil.NewStats()
	for _, o := range os {
		stats.Add(o.Terms...)
	}
	impls := map[string]Index{
		"gi2":    gi2.New(bounds, 16, stats),
		"rtree":  NewRTree(8),
		"iqtree": NewIQTree(bounds, stats, 6, 8),
		"aptree": NewAPTree(bounds, stats, 8, 4, 10),
	}
	for _, ix := range impls {
		for _, q := range qs {
			ix.Insert(q)
		}
		for i := 0; i < len(qs); i += 3 {
			ix.Delete(qs[i].ID)
		}
	}
	live := map[uint64]bool{}
	for i, q := range qs {
		live[q.ID] = i%3 != 0
	}
	for _, o := range os {
		var oracle []uint64
		for _, q := range qs {
			if live[q.ID] && q.Matches(o) {
				oracle = append(oracle, q.ID)
			}
		}
		sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		for name, ix := range impls {
			got := matchIDs(ix, o)
			if len(got) != len(oracle) {
				t.Fatalf("%s: object %d matched %v, oracle %v", name, o.ID, got, oracle)
			}
			for i := range got {
				if got[i] != oracle[i] {
					t.Fatalf("%s: object %d matched %v, oracle %v", name, o.ID, got, oracle)
				}
			}
		}
	}
}

func TestRTreeRebuild(t *testing.T) {
	ix := NewRTree(8)
	ix.rebuildAt = 16
	qs, _ := randWorkload(2, 64, 0)
	for _, q := range qs {
		ix.Insert(q)
	}
	for i := 0; i < 32; i++ {
		ix.Delete(qs[i].ID)
	}
	// Rebuild triggered at 16 tombstones: the count stays correct.
	if got := ix.QueryCount(); got != 32 {
		t.Errorf("QueryCount = %d, want 32", got)
	}
	// Survivors still match.
	q := qs[40]
	o := &model.Object{ID: 1, Terms: q.Expr.Terms(), Loc: q.Region.Center()}
	found := false
	for _, id := range matchIDs(ix, o) {
		found = found || id == q.ID
	}
	if !found {
		t.Error("survivor lost after rebuild")
	}
}

func TestRTreeDuplicateInsertAndUnknownDelete(t *testing.T) {
	ix := NewRTree(8)
	q := &model.Query{ID: 1, Expr: model.And("a"), Region: geo.NewRect(0, 0, 10, 10)}
	ix.Insert(q)
	ix.Insert(q)
	if ix.QueryCount() != 1 {
		t.Errorf("duplicate insert counted: %d", ix.QueryCount())
	}
	ix.Delete(999) // no-op
	if ix.QueryCount() != 1 {
		t.Errorf("unknown delete changed count: %d", ix.QueryCount())
	}
	o := &model.Object{ID: 1, Terms: []string{"a"}, Loc: geo.Point{X: 5, Y: 5}}
	if got := matchIDs(ix, o); len(got) != 1 {
		t.Errorf("matched %v, want one hit", got)
	}
}

func TestRTreeReinsertAfterDelete(t *testing.T) {
	ix := NewRTree(8)
	q := &model.Query{ID: 1, Expr: model.And("a"), Region: geo.NewRect(0, 0, 10, 10)}
	ix.Insert(q)
	ix.Delete(1)
	ix.Insert(q)
	o := &model.Object{ID: 1, Terms: []string{"a"}, Loc: geo.Point{X: 5, Y: 5}}
	if got := matchIDs(ix, o); len(got) != 1 {
		t.Errorf("matched %v after reinsert, want one hit", got)
	}
	if ix.Footprint() <= 0 {
		t.Error("Footprint <= 0")
	}
}
