package qindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

func TestIQTreeBasicMatch(t *testing.T) {
	ix := NewIQTree(bounds, nil, 0, 0)
	q1 := &model.Query{ID: 1, Expr: model.And("coffee"), Region: geo.NewRect(0, 0, 50, 50)}
	q2 := &model.Query{ID: 2, Expr: model.And("coffee", "cheap"), Region: geo.NewRect(25, 25, 75, 75)}
	q3 := &model.Query{ID: 3, Expr: model.Or("tea", "coffee"), Region: geo.NewRect(60, 60, 100, 100)}
	for _, q := range []*model.Query{q1, q2, q3} {
		ix.Insert(q)
	}
	cases := []struct {
		name string
		o    *model.Object
		want []uint64
	}{
		{"inside q1 only", &model.Object{ID: 1, Terms: []string{"coffee"}, Loc: geo.Point{X: 10, Y: 10}}, []uint64{1}},
		{"overlap q1 q2", &model.Object{ID: 2, Terms: []string{"coffee", "cheap"}, Loc: geo.Point{X: 30, Y: 30}}, []uint64{1, 2}},
		{"q2 needs both terms", &model.Object{ID: 3, Terms: []string{"cheap"}, Loc: geo.Point{X: 30, Y: 30}}, nil},
		{"or matches either", &model.Object{ID: 4, Terms: []string{"tea"}, Loc: geo.Point{X: 70, Y: 70}}, []uint64{3}},
		{"outside all regions", &model.Object{ID: 5, Terms: []string{"coffee"}, Loc: geo.Point{X: 90, Y: 10}}, nil},
	}
	for _, tc := range cases {
		got := matchIDs(ix, tc.o)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

// The IQ-tree must agree with the naive oracle on random workloads with
// interleaved deletions — the same contract TestImplementationsAgree
// checks for GI2 and the R-tree.
func TestIQTreeMatchesOracle(t *testing.T) {
	qs, os := randWorkload(7, 300, 400)
	stats := textutil.NewStats()
	for _, o := range os {
		stats.Add(o.Terms...)
	}
	// Small threshold forces real tree depth.
	ix := NewIQTree(bounds, stats, 6, 8)
	for _, q := range qs {
		ix.Insert(q)
	}
	for i := 0; i < len(qs); i += 4 {
		ix.Delete(qs[i].ID)
	}
	live := map[uint64]bool{}
	for i, q := range qs {
		live[q.ID] = i%4 != 0
	}
	for _, o := range os {
		var oracle []uint64
		for _, q := range qs {
			if live[q.ID] && q.Matches(o) {
				oracle = append(oracle, q.ID)
			}
		}
		sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		got := matchIDs(ix, o)
		if len(got) != len(oracle) {
			t.Fatalf("object %d matched %v, oracle %v", o.ID, got, oracle)
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("object %d matched %v, oracle %v", o.ID, got, oracle)
			}
		}
	}
	if ix.NodeCount() <= 1 {
		t.Error("workload of 300 queries with threshold 8 did not split the root")
	}
}

// Property: for arbitrary insert/delete/match interleavings the IQ-tree
// and GI2 report identical match sets.
func TestIQTreeQuickAgainstGI2(t *testing.T) {
	f := func(seed int64) bool {
		qs, os := randWorkload(seed, 80, 60)
		stats := textutil.NewStats()
		for _, o := range os {
			stats.Add(o.Terms...)
		}
		iq := NewIQTree(bounds, stats, 5, 4)
		gi := newGI2(stats)
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		inserted := make([]*model.Query, 0, len(qs))
		for _, q := range qs {
			iq.Insert(q)
			gi.Insert(q)
			inserted = append(inserted, q)
			// Randomly delete one previously inserted query.
			if rng.Intn(3) == 0 {
				victim := inserted[rng.Intn(len(inserted))]
				iq.Delete(victim.ID)
				gi.Delete(victim.ID)
			}
			// Match a random object against both.
			o := os[rng.Intn(len(os))]
			a, b := matchIDs(iq, o), matchIDs(gi, o)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestIQTreeDeleteAndPurge(t *testing.T) {
	qs, _ := randWorkload(3, 100, 0)
	ix := NewIQTree(bounds, nil, 6, 8)
	for _, q := range qs {
		ix.Insert(q)
	}
	if got := ix.QueryCount(); got != 100 {
		t.Fatalf("QueryCount = %d, want 100", got)
	}
	for i := 0; i < 50; i++ {
		ix.Delete(qs[i].ID)
	}
	if got := ix.LiveQueryCount(); got != 50 {
		t.Errorf("LiveQueryCount = %d, want 50", got)
	}
	ix.Purge()
	if got := ix.QueryCount(); got != 50 {
		t.Errorf("QueryCount after purge = %d, want 50", got)
	}
	if got := ix.LiveQueryCount(); got != 50 {
		t.Errorf("LiveQueryCount after purge = %d, want 50", got)
	}
	// resident invariant: the sum of node residents equals live queries.
	var sum func(n *iqNode) int
	sum = func(n *iqNode) int {
		s := n.resident
		if n.children != nil {
			for _, c := range n.children {
				s += sum(c)
			}
		}
		return s
	}
	if got := sum(ix.root); got != 50 {
		t.Errorf("sum of node residents = %d, want 50", got)
	}
}

func TestIQTreeLazyDeletionDuringMatch(t *testing.T) {
	ix := NewIQTree(bounds, nil, 4, 2)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10)}
	ix.Insert(q)
	ix.Delete(1)
	o := &model.Object{ID: 1, Terms: []string{"x"}, Loc: geo.Point{X: 5, Y: 5}}
	if got := matchIDs(ix, o); len(got) != 0 {
		t.Fatalf("tombstoned query matched: %v", got)
	}
	// The traversal physically removed the entry.
	if got := ix.EntryCount(); got != 0 {
		t.Errorf("EntryCount after lazy purge = %d, want 0", got)
	}
	if got := ix.QueryCount(); got != 0 {
		t.Errorf("QueryCount after lazy purge = %d, want 0", got)
	}
}

func TestIQTreeReinsertWhileTombstoned(t *testing.T) {
	ix := NewIQTree(bounds, nil, 4, 2)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10)}
	ix.Insert(q)
	ix.Delete(1)
	ix.Insert(q) // resurrects before any traversal purges it
	o := &model.Object{ID: 1, Terms: []string{"x"}, Loc: geo.Point{X: 5, Y: 5}}
	if got := matchIDs(ix, o); len(got) != 1 {
		t.Fatalf("resurrected query not matched: %v", got)
	}
}

func TestIQTreeSplitPushesContainedQueriesDown(t *testing.T) {
	ix := NewIQTree(bounds, nil, 4, 4)
	// 8 small queries all inside the SW quadrant → the root splits and
	// they all migrate into (grand)children.
	for i := 0; i < 8; i++ {
		x := float64(i) * 2
		ix.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And("t"),
			Region: geo.NewRect(x, 1, x+1, 2),
		})
	}
	if ix.NodeCount() == 1 {
		t.Fatal("root never split")
	}
	if ix.root.resident != 0 {
		t.Errorf("root still holds %d contained queries", ix.root.resident)
	}
	// All still match.
	for i := 0; i < 8; i++ {
		o := &model.Object{ID: uint64(i), Terms: []string{"t"}, Loc: geo.Point{X: float64(i)*2 + 0.5, Y: 1.5}}
		if got := matchIDs(ix, o); len(got) != 1 {
			t.Errorf("query %d lost after split: %v", i+1, got)
		}
	}
}

func TestIQTreeStraddlersStayAtRoot(t *testing.T) {
	ix := NewIQTree(bounds, nil, 4, 2)
	// Queries crossing the centre (50,50) cannot be pushed down.
	for i := 0; i < 6; i++ {
		ix.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And("t"),
			Region: geo.NewRect(40, 40, 60, 60),
		})
	}
	if ix.root.resident != 6 {
		t.Errorf("root resident = %d, want 6 straddlers", ix.root.resident)
	}
	o := &model.Object{ID: 1, Terms: []string{"t"}, Loc: geo.Point{X: 50, Y: 50}}
	if got := matchIDs(ix, o); len(got) != 6 {
		t.Errorf("matched %d straddlers, want 6", len(got))
	}
}

func TestIQTreeOrQueryMatchedOnce(t *testing.T) {
	// An OR query registered under two keys must be reported once even
	// when the object carries both keywords.
	ix := NewIQTree(bounds, nil, 4, 8)
	q := &model.Query{ID: 1, Expr: model.Or("a", "b"), Region: geo.NewRect(0, 0, 100, 100)}
	ix.Insert(q)
	o := &model.Object{ID: 1, Terms: []string{"a", "b"}, Loc: geo.Point{X: 50, Y: 50}}
	n := 0
	ix.Match(o, func(*model.Query) { n++ })
	if n != 1 {
		t.Errorf("OR query reported %d times, want 1", n)
	}
}

func TestIQTreeEach(t *testing.T) {
	qs, _ := randWorkload(5, 40, 0)
	ix := NewIQTree(bounds, nil, 6, 8)
	for _, q := range qs {
		ix.Insert(q)
	}
	for i := 0; i < 10; i++ {
		ix.Delete(qs[i].ID)
	}
	got := map[uint64]bool{}
	ix.Each(func(q *model.Query) { got[q.ID] = true })
	if len(got) != 30 {
		t.Fatalf("Each visited %d queries, want 30", len(got))
	}
	for i := 0; i < 10; i++ {
		if got[qs[i].ID] {
			t.Errorf("Each visited tombstoned query %d", qs[i].ID)
		}
	}
}

func TestIQTreeFootprintGrows(t *testing.T) {
	ix := NewIQTree(bounds, nil, 0, 0)
	empty := ix.Footprint()
	qs, _ := randWorkload(9, 200, 0)
	for _, q := range qs {
		ix.Insert(q)
	}
	full := ix.Footprint()
	if full <= empty {
		t.Errorf("Footprint did not grow: %d -> %d", empty, full)
	}
}

func TestIQTreeQueryOutsideBounds(t *testing.T) {
	// A query poking outside the monitored space still matches objects at
	// the overlap, and objects outside the space match nothing.
	ix := NewIQTree(bounds, nil, 4, 1)
	ix.Insert(&model.Query{ID: 1, Expr: model.And("t"), Region: geo.NewRect(-50, -50, 5, 5)})
	// Force splitting with a few more queries.
	for i := 2; i <= 5; i++ {
		x := float64(i * 10)
		ix.Insert(&model.Query{ID: uint64(i), Expr: model.And("t"), Region: geo.NewRect(x, x, x+1, x+1)})
	}
	in := &model.Object{ID: 1, Terms: []string{"t"}, Loc: geo.Point{X: 2, Y: 2}}
	if got := matchIDs(ix, in); len(got) != 1 || got[0] != 1 {
		t.Errorf("overlap object matched %v, want [1]", got)
	}
	out := &model.Object{ID: 2, Terms: []string{"t"}, Loc: geo.Point{X: -10, Y: -10}}
	if got := matchIDs(ix, out); len(got) != 0 {
		t.Errorf("out-of-bounds object matched %v, want none", got)
	}
}

// newGI2 builds a GI2 index over the shared test bounds.
func newGI2(stats *textutil.Stats) Index {
	return gi2.New(bounds, 16, stats)
}
