// The AP-tree of Wang et al. [9] indexes continuous spatial-keyword
// queries in a tree whose internal nodes adaptively choose between
// keyword partitioning and space partitioning based on a cost model —
// the same space-vs-text adaptivity PS2Stream's hybrid partitioner
// applies across workers, applied here inside one worker.
//
// Queries are decomposed into their DNF conjunctions; each conjunction is
// registered with its terms ordered rarest-first (the pivot sequence). A
// keyword node at keyword-depth d buckets registrations by their d-th
// pivot into contiguous ranges of the global term ordering; registrations
// whose conjunction has no d-th keyword stay in the node's exhausted
// list. A space node splits its rectangle into quadrants and replicates a
// registration into every quadrant its region intersects. Matching an
// object therefore probes, per keyword node, only the buckets holding one
// of the object's own terms (plus the exhausted list) and, per space
// node, the single quadrant containing the object's location. Leaves
// verify candidates fully; deletions are lazy (§IV-D's tombstone rule).

package qindex

import (
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// Default AP-tree tuning.
const (
	// DefaultAPLeafCapacity is the registration count at which a leaf
	// considers splitting.
	DefaultAPLeafCapacity = 32
	// DefaultAPFanout is the bucket count of a keyword node.
	DefaultAPFanout = 8
	// DefaultAPMaxDepth bounds the total tree depth (keyword + space).
	DefaultAPMaxDepth = 12
	// apObjectTerms is the assumed mean distinct terms per object used by
	// the keyword-split cost estimate.
	apObjectTerms = 6
)

// APTree is an adaptive worker-side query index (see Index). It is owned
// by a single worker goroutine and is not safe for concurrent use.
type APTree struct {
	root  *apNode
	stats *textutil.Stats

	leafCap  int
	fanout   int
	maxDepth int

	queries    map[uint64]*model.Query
	refs       map[uint64]int // leaf registrations per query id
	tombstones map[uint64]struct{}
	entries    int
	scratch    []uint64
}

var _ Index = (*APTree)(nil)

// apReg is one registered conjunction of a query.
type apReg struct {
	q *model.Query
	// pivots holds the conjunction's terms ordered rarest-first under the
	// index's statistics; keyword nodes route on pivots[depth].
	pivots []string
}

// apKey orders terms by object frequency (ascending), ties broken
// lexicographically, matching textutil.Stats.LeastFrequent so the rarest
// pivot comes first.
type apKey struct {
	count int
	term  string
}

func (k apKey) less(o apKey) bool {
	if k.count != o.count {
		return k.count < o.count
	}
	return k.term < o.term
}

type apKind uint8

const (
	apLeaf apKind = iota
	apKeyword
	apSpace
)

type apNode struct {
	kind   apKind
	bounds geo.Rect
	// kdepth counts keyword-node ancestors (the pivot index this node
	// routes on when kind == apKeyword).
	kdepth int
	depth  int

	// Leaf state.
	regs []apReg
	// noSplit marks leaves where splitting was evaluated and rejected.
	noSplit bool

	// Keyword-node state: kids[i] covers pivot keys in
	// [cuts[i-1], cuts[i]) with cuts[-1] = -inf, cuts[len-1] = +inf;
	// exhausted holds registrations with ≤ kdepth pivots.
	cuts      []apKey
	kids      []*apNode
	exhausted []apReg
}

// NewAPTree returns an empty AP-tree over bounds. stats supplies the term
// ordering and the cost model's frequency estimates (nil uses empty
// statistics). leafCap, fanout and maxDepth ≤ 0 use the defaults.
func NewAPTree(bounds geo.Rect, stats *textutil.Stats, leafCap, fanout, maxDepth int) *APTree {
	if stats == nil {
		stats = textutil.NewStats()
	}
	if leafCap <= 0 {
		leafCap = DefaultAPLeafCapacity
	}
	if fanout < 2 {
		fanout = DefaultAPFanout
	}
	if maxDepth <= 0 {
		maxDepth = DefaultAPMaxDepth
	}
	return &APTree{
		root:       &apNode{kind: apLeaf, bounds: bounds},
		stats:      stats,
		leafCap:    leafCap,
		fanout:     fanout,
		maxDepth:   maxDepth,
		queries:    make(map[uint64]*model.Query),
		refs:       make(map[uint64]int),
		tombstones: make(map[uint64]struct{}),
	}
}

func (ix *APTree) key(term string) apKey {
	return apKey{count: ix.stats.Count(term), term: term}
}

// pivotsOf orders one conjunction rarest-first.
func (ix *APTree) pivotsOf(conj []string) []string {
	p := append([]string(nil), conj...)
	sort.Slice(p, func(i, j int) bool { return ix.key(p[i]).less(ix.key(p[j])) })
	return p
}

// Insert registers q. Reinserting a tombstoned id clears the tombstone.
func (ix *APTree) Insert(q *model.Query) {
	delete(ix.tombstones, q.ID)
	if _, dup := ix.queries[q.ID]; dup {
		return
	}
	if len(q.Expr.Conj) == 0 {
		return
	}
	ix.queries[q.ID] = q
	for _, conj := range q.Expr.Conj {
		if len(conj) == 0 {
			continue
		}
		reg := apReg{q: q, pivots: ix.pivotsOf(conj)}
		ix.insertReg(ix.root, reg)
	}
}

// insertReg places one registration, descending through internal nodes
// and splitting leaves that overflow.
func (ix *APTree) insertReg(n *apNode, reg apReg) {
	for {
		switch n.kind {
		case apLeaf:
			n.regs = append(n.regs, reg)
			ix.refs[reg.q.ID]++
			ix.entries++
			if len(n.regs) > ix.leafCap && !n.noSplit && n.depth < ix.maxDepth {
				ix.split(n)
			}
			return
		case apKeyword:
			if len(reg.pivots) <= n.kdepth {
				n.exhausted = append(n.exhausted, reg)
				ix.refs[reg.q.ID]++
				ix.entries++
				return
			}
			n = n.kids[n.bucket(reg.pivots[n.kdepth], ix)]
		case apSpace:
			// Replicate into every quadrant the region intersects.
			placed := false
			for _, kid := range n.kids {
				if kid.bounds.Intersects(reg.q.Region) {
					ix.insertReg(kid, reg)
					placed = true
				}
			}
			if !placed {
				// Region outside this subtree's bounds entirely (possible
				// for queries poking outside the monitored space): keep it
				// in the nearest quadrant so it is never lost.
				ix.insertReg(n.kids[0], reg)
			}
			return
		}
	}
}

// bucket maps a term to the keyword-node child covering its key.
func (n *apNode) bucket(term string, ix *APTree) int {
	k := ix.key(term)
	// First child whose cut is > k; cuts are ascending.
	lo, hi := 0, len(n.cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.cuts[mid].less(k) || n.cuts[mid] == k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// split converts an overflowing leaf into a keyword or space node,
// whichever the cost model estimates cheaper per matched object. If
// neither beats keeping the leaf, the leaf is marked unsplittable.
func (ix *APTree) split(n *apNode) {
	n.compactLeaf(ix)
	if len(n.regs) <= ix.leafCap {
		return
	}
	costLeaf := float64(len(n.regs))
	kwCost, cuts := ix.keywordSplitCost(n)
	spCost, quadCounts := ix.spaceSplitCost(n)
	const improvement = 0.90 // require a ≥10% expected candidate reduction
	switch {
	case kwCost <= spCost && kwCost < costLeaf*improvement:
		ix.splitKeyword(n, cuts)
	case spCost < kwCost && spCost < costLeaf*improvement:
		_ = quadCounts
		ix.splitSpace(n)
	default:
		n.noSplit = true
	}
}

// compactLeaf drops tombstoned registrations before measuring costs.
func (n *apNode) compactLeaf(ix *APTree) {
	w := 0
	for _, r := range n.regs {
		if _, dead := ix.tombstones[r.q.ID]; dead {
			ix.dropRef(r.q.ID)
			ix.entries--
			continue
		}
		n.regs[w] = r
		w++
	}
	n.regs = n.regs[:w]
}

// keywordSplitCost estimates the expected number of candidate
// registrations an object scans if n becomes a keyword node, and returns
// the bucket cuts it would use. Buckets are balanced by registration
// count over the sorted pivot keys; an object probes a bucket with
// probability ≈ min(1, apObjectTerms × freq-mass of the bucket's pivot
// terms) and always scans the exhausted list.
func (ix *APTree) keywordSplitCost(n *apNode) (float64, []apKey) {
	d := n.kdepth
	var routable []apReg
	exhausted := 0
	for _, r := range n.regs {
		if len(r.pivots) > d {
			routable = append(routable, r)
		} else {
			exhausted++
		}
	}
	if len(routable) < ix.fanout {
		return float64(len(n.regs)) + 1, nil // hopeless: everything exhausted
	}
	sort.Slice(routable, func(i, j int) bool {
		return ix.key(routable[i].pivots[d]).less(ix.key(routable[j].pivots[d]))
	})
	b := ix.fanout
	per := (len(routable) + b - 1) / b
	cost := float64(exhausted)
	var cuts []apKey
	for start := 0; start < len(routable); start += per {
		end := start + per
		if end > len(routable) {
			end = len(routable)
		}
		// Bucket visit probability from the frequency mass of its
		// distinct pivot terms in the object stream.
		var mass float64
		seen := map[string]struct{}{}
		for _, r := range routable[start:end] {
			t := r.pivots[d]
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			mass += ix.stats.Freq(t)
		}
		p := apObjectTerms * mass
		if p > 1 {
			p = 1
		}
		cost += p * float64(end-start)
		if end < len(routable) {
			// Cut strictly between the last key of this bucket and the
			// first of the next; routing uses key < cut.
			cuts = append(cuts, ix.key(routable[end].pivots[d]))
		}
	}
	return cost, cuts
}

// spaceSplitCost estimates the expected candidates if n splits into
// quadrants: an object lands in one quadrant (¼ visit probability each
// under uniform traffic) and scans the registrations replicated there.
func (ix *APTree) spaceSplitCost(n *apNode) (float64, [4]int) {
	var counts [4]int
	c := n.bounds.Center()
	quads := [4]geo.Rect{
		{Min: n.bounds.Min, Max: c},
		{Min: geo.Point{X: c.X, Y: n.bounds.Min.Y}, Max: geo.Point{X: n.bounds.Max.X, Y: c.Y}},
		{Min: geo.Point{X: n.bounds.Min.X, Y: c.Y}, Max: geo.Point{X: c.X, Y: n.bounds.Max.Y}},
		{Min: c, Max: n.bounds.Max},
	}
	for _, r := range n.regs {
		for i, quad := range quads {
			if quad.Intersects(r.q.Region) {
				counts[i]++
			}
		}
	}
	var cost float64
	for _, ct := range counts {
		cost += 0.25 * float64(ct)
	}
	return cost, counts
}

// splitKeyword turns n into a keyword node with the given cuts.
func (ix *APTree) splitKeyword(n *apNode, cuts []apKey) {
	regs := n.regs
	n.kind = apKeyword
	n.regs = nil
	n.cuts = cuts
	n.kids = make([]*apNode, len(cuts)+1)
	for i := range n.kids {
		n.kids[i] = &apNode{
			kind:   apLeaf,
			bounds: n.bounds,
			kdepth: n.kdepth + 1,
			depth:  n.depth + 1,
		}
	}
	for _, r := range regs {
		// Entries move rather than being re-created: undo the leaf
		// bookkeeping the re-insertion will redo.
		ix.refs[r.q.ID]--
		ix.entries--
		ix.insertReg(n, r)
	}
}

// splitSpace turns n into a space node with four quadrant children.
func (ix *APTree) splitSpace(n *apNode) {
	regs := n.regs
	n.kind = apSpace
	n.regs = nil
	c := n.bounds.Center()
	quads := [4]geo.Rect{
		{Min: n.bounds.Min, Max: c},
		{Min: geo.Point{X: c.X, Y: n.bounds.Min.Y}, Max: geo.Point{X: n.bounds.Max.X, Y: c.Y}},
		{Min: geo.Point{X: n.bounds.Min.X, Y: c.Y}, Max: geo.Point{X: c.X, Y: n.bounds.Max.Y}},
		{Min: c, Max: n.bounds.Max},
	}
	n.kids = make([]*apNode, 4)
	for i := range n.kids {
		n.kids[i] = &apNode{
			kind:   apLeaf,
			bounds: quads[i],
			kdepth: n.kdepth,
			depth:  n.depth + 1,
		}
	}
	for _, r := range regs {
		ix.refs[r.q.ID]--
		ix.entries--
		ix.insertReg(n, r)
	}
}

// Delete drops a query by id, lazily.
func (ix *APTree) Delete(id uint64) {
	if _, ok := ix.queries[id]; !ok {
		return
	}
	ix.tombstones[id] = struct{}{}
}

func (ix *APTree) dropRef(id uint64) {
	ix.refs[id]--
	if ix.refs[id] <= 0 {
		delete(ix.refs, id)
		delete(ix.queries, id)
		delete(ix.tombstones, id)
	}
}

// Match invokes fn exactly once per live query matching o. Keyword nodes
// are probed only on the buckets covering o's own terms; space nodes on
// the quadrant containing o.Loc. Tombstoned registrations encountered on
// scanned leaves are removed.
func (ix *APTree) Match(o *model.Object, fn func(q *model.Query)) {
	if !ix.root.bounds.Contains(o.Loc) {
		return
	}
	ix.scratch = ix.scratch[:0]
	ix.matchNode(ix.root, o, fn)
}

func (ix *APTree) matchNode(n *apNode, o *model.Object, fn func(q *model.Query)) {
	switch n.kind {
	case apLeaf:
		n.scanRegs(&n.regs, ix, o, fn)
	case apKeyword:
		n.scanRegs(&n.exhausted, ix, o, fn)
		if len(o.Terms) >= len(n.kids) {
			// Probing every bucket anyway: skip the dedup bookkeeping.
			for _, kid := range n.kids {
				ix.matchNode(kid, o, fn)
			}
			return
		}
		var visited [DefaultAPFanout * 2]bool
		for _, t := range o.Terms {
			b := n.bucket(t, ix)
			if b < len(visited) && visited[b] {
				continue
			}
			if b < len(visited) {
				visited[b] = true
			}
			ix.matchNode(n.kids[b], o, fn)
		}
	case apSpace:
		for _, kid := range n.kids {
			if kid.bounds.Contains(o.Loc) {
				ix.matchNode(kid, o, fn)
				return
			}
		}
	}
}

// scanRegs verifies each registration in *list against o, compacting
// tombstoned entries in place.
func (n *apNode) scanRegs(list *[]apReg, ix *APTree, o *model.Object, fn func(q *model.Query)) {
	regs := *list
	w := 0
	for _, r := range regs {
		if _, dead := ix.tombstones[r.q.ID]; dead {
			ix.dropRef(r.q.ID)
			ix.entries--
			continue
		}
		regs[w] = r
		w++
		if r.q.Region.Contains(o.Loc) && r.q.Expr.MatchesSlice(o.Terms) && !ix.seen(r.q.ID) {
			ix.scratch = append(ix.scratch, r.q.ID)
			fn(r.q)
		}
	}
	*list = regs[:w]
}

func (ix *APTree) seen(id uint64) bool {
	for _, s := range ix.scratch {
		if s == id {
			return true
		}
	}
	return false
}

// MatchIDs returns the matching query ids (convenience for tests).
func (ix *APTree) MatchIDs(o *model.Object) []uint64 {
	var out []uint64
	ix.Match(o, func(q *model.Query) { out = append(out, q.ID) })
	return out
}

// Purge eagerly removes all tombstoned registrations.
func (ix *APTree) Purge() {
	if len(ix.tombstones) == 0 {
		return
	}
	ix.purgeNode(ix.root)
}

func (ix *APTree) purgeNode(n *apNode) {
	compact := func(list *[]apReg) {
		regs := *list
		w := 0
		for _, r := range regs {
			if _, dead := ix.tombstones[r.q.ID]; dead {
				ix.dropRef(r.q.ID)
				ix.entries--
				continue
			}
			regs[w] = r
			w++
		}
		*list = regs[:w]
	}
	compact(&n.regs)
	compact(&n.exhausted)
	for _, kid := range n.kids {
		ix.purgeNode(kid)
	}
}

// QueryCount returns distinct queries referenced by the index (tombstoned
// but unpurged ids count until purged), matching GI2's accounting.
func (ix *APTree) QueryCount() int { return len(ix.queries) }

// LiveQueryCount returns distinct queries excluding tombstoned ones.
func (ix *APTree) LiveQueryCount() int {
	n := len(ix.queries)
	for id := range ix.tombstones {
		if _, ok := ix.refs[id]; ok {
			n--
		}
	}
	return n
}

// EntryCount returns the number of stored registrations (replicas
// included).
func (ix *APTree) EntryCount() int { return ix.entries }

// NodeCount returns the number of allocated tree nodes; NodeKinds counts
// them by kind (tests, benches, the ablation report).
func (ix *APTree) NodeCount() int {
	l, k, s := ix.NodeKinds()
	return l + k + s
}

// NodeKinds returns the number of leaf, keyword and space nodes.
func (ix *APTree) NodeKinds() (leaves, keyword, space int) {
	var walk func(n *apNode)
	walk = func(n *apNode) {
		switch n.kind {
		case apLeaf:
			leaves++
		case apKeyword:
			keyword++
		case apSpace:
			space++
		}
		for _, kid := range n.kids {
			walk(kid)
		}
	}
	walk(ix.root)
	return
}

// Get returns the stored definition of a live query, or nil.
func (ix *APTree) Get(id uint64) *model.Query {
	if _, dead := ix.tombstones[id]; dead {
		return nil
	}
	return ix.queries[id]
}

// Each invokes fn once per live query, in unspecified order.
func (ix *APTree) Each(fn func(q *model.Query)) {
	for id, q := range ix.queries {
		if _, dead := ix.tombstones[id]; dead {
			continue
		}
		fn(q)
	}
}

// Footprint estimates resident bytes with the same per-entry accounting
// as the other worker indexes.
func (ix *APTree) Footprint() int64 {
	var b int64
	for _, q := range ix.queries {
		b += int64(q.SizeBytes()) + 48
	}
	b += int64(ix.entries) * 32 // apReg (pointer + pivot slice header)
	var nodes func(n *apNode) int64
	nodes = func(n *apNode) int64 {
		nb := int64(120) // node struct
		for _, c := range n.cuts {
			nb += int64(24 + len(c.term))
		}
		for _, kid := range n.kids {
			nb += nodes(kid)
		}
		return nb
	}
	b += nodes(ix.root)
	b += int64(len(ix.tombstones)) * 16
	return b
}
