package qindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

func TestAPTreeBasicMatch(t *testing.T) {
	ix := NewAPTree(bounds, nil, 0, 0, 0)
	q1 := &model.Query{ID: 1, Expr: model.And("coffee"), Region: geo.NewRect(0, 0, 50, 50)}
	q2 := &model.Query{ID: 2, Expr: model.And("coffee", "cheap"), Region: geo.NewRect(25, 25, 75, 75)}
	q3 := &model.Query{ID: 3, Expr: model.Or("tea", "coffee"), Region: geo.NewRect(60, 60, 100, 100)}
	for _, q := range []*model.Query{q1, q2, q3} {
		ix.Insert(q)
	}
	cases := []struct {
		name string
		o    *model.Object
		want []uint64
	}{
		{"inside q1 only", &model.Object{ID: 1, Terms: []string{"coffee"}, Loc: geo.Point{X: 10, Y: 10}}, []uint64{1}},
		{"overlap q1 q2", &model.Object{ID: 2, Terms: []string{"coffee", "cheap"}, Loc: geo.Point{X: 30, Y: 30}}, []uint64{1, 2}},
		{"and needs both", &model.Object{ID: 3, Terms: []string{"cheap"}, Loc: geo.Point{X: 30, Y: 30}}, nil},
		{"or matches either", &model.Object{ID: 4, Terms: []string{"tea"}, Loc: geo.Point{X: 70, Y: 70}}, []uint64{3}},
		{"outside regions", &model.Object{ID: 5, Terms: []string{"coffee"}, Loc: geo.Point{X: 90, Y: 10}}, nil},
	}
	for _, tc := range cases {
		got := matchIDs(ix, tc.o)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			}
		}
	}
}

// The AP-tree must agree with the naive oracle on random workloads with
// interleaved deletions, under aggressive splitting.
func TestAPTreeMatchesOracle(t *testing.T) {
	qs, os := randWorkload(11, 300, 400)
	stats := textutil.NewStats()
	for _, o := range os {
		stats.Add(o.Terms...)
	}
	ix := NewAPTree(bounds, stats, 8, 4, 10)
	for _, q := range qs {
		ix.Insert(q)
	}
	for i := 0; i < len(qs); i += 4 {
		ix.Delete(qs[i].ID)
	}
	live := map[uint64]bool{}
	for i, q := range qs {
		live[q.ID] = i%4 != 0
	}
	for _, o := range os {
		var oracle []uint64
		for _, q := range qs {
			if live[q.ID] && q.Matches(o) {
				oracle = append(oracle, q.ID)
			}
		}
		sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		got := matchIDs(ix, o)
		if len(got) != len(oracle) {
			t.Fatalf("object %d matched %v, oracle %v", o.ID, got, oracle)
		}
		for i := range got {
			if got[i] != oracle[i] {
				t.Fatalf("object %d matched %v, oracle %v", o.ID, got, oracle)
			}
		}
	}
	if ix.NodeCount() <= 1 {
		t.Error("workload of 300 queries with capacity 8 did not split the root")
	}
}

// Property: the AP-tree and GI2 report identical match sets under random
// insert/delete/match interleavings.
func TestAPTreeQuickAgainstGI2(t *testing.T) {
	f := func(seed int64) bool {
		qs, os := randWorkload(seed, 80, 60)
		stats := textutil.NewStats()
		for _, o := range os {
			stats.Add(o.Terms...)
		}
		ap := NewAPTree(bounds, stats, 4, 3, 8)
		gi := newGI2(stats)
		rng := rand.New(rand.NewSource(seed ^ 0xa97ee))
		inserted := make([]*model.Query, 0, len(qs))
		for _, q := range qs {
			ap.Insert(q)
			gi.Insert(q)
			inserted = append(inserted, q)
			if rng.Intn(3) == 0 {
				victim := inserted[rng.Intn(len(inserted))]
				ap.Delete(victim.ID)
				gi.Delete(victim.ID)
			}
			o := os[rng.Intn(len(os))]
			a, b := matchIDs(ap, o), matchIDs(gi, o)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestAPTreeAdaptsNodeKinds(t *testing.T) {
	stats := textutil.NewStats()
	// A vocabulary where half the terms are frequent in objects.
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for i, v := range vocab {
		stats.AddWeighted(v, 1<<uint(len(vocab)-i))
	}
	ix := NewAPTree(bounds, stats, 8, 4, 10)
	rng := rand.New(rand.NewSource(42))
	// Spatially clustered queries with identical keywords: space
	// partitioning is the only useful split for them.
	for i := 0; i < 120; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		ix.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And("a"), // same single frequent keyword
			Region: geo.NewRect(x, y, x+0.5, y+0.5),
		})
	}
	_, kw, sp := ix.NodeKinds()
	if sp == 0 {
		t.Errorf("identical-keyword clustered workload produced no space nodes (kw=%d sp=%d)", kw, sp)
	}
	// Now a keyword-diverse workload with giant regions: keyword
	// partitioning is the only useful split.
	ix2 := NewAPTree(bounds, stats, 8, 4, 10)
	for i := 0; i < 120; i++ {
		ix2.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And(vocab[i%len(vocab)], vocab[(i+3)%len(vocab)]),
			Region: geo.NewRect(0, 0, 100, 100), // straddles every centre
		})
	}
	_, kw2, sp2 := ix2.NodeKinds()
	if kw2 == 0 {
		t.Errorf("keyword-diverse full-space workload produced no keyword nodes (kw=%d sp=%d)", kw2, sp2)
	}
}

func TestAPTreeDeleteAndPurge(t *testing.T) {
	qs, _ := randWorkload(13, 100, 0)
	ix := NewAPTree(bounds, nil, 8, 4, 8)
	for _, q := range qs {
		ix.Insert(q)
	}
	if got := ix.QueryCount(); got != 100 {
		t.Fatalf("QueryCount = %d, want 100", got)
	}
	for i := 0; i < 50; i++ {
		ix.Delete(qs[i].ID)
	}
	if got := ix.LiveQueryCount(); got != 50 {
		t.Errorf("LiveQueryCount = %d, want 50", got)
	}
	ix.Purge()
	if got := ix.QueryCount(); got != 50 {
		t.Errorf("QueryCount after purge = %d, want 50", got)
	}
	// Entries: every remaining registration references a live query.
	liveEntries := 0
	var walk func(n *apNode)
	walk = func(n *apNode) {
		liveEntries += len(n.regs) + len(n.exhausted)
		for _, kid := range n.kids {
			walk(kid)
		}
	}
	walk(ix.root)
	if liveEntries != ix.EntryCount() {
		t.Errorf("EntryCount = %d, walked %d", ix.EntryCount(), liveEntries)
	}
}

func TestAPTreeOrQueryMatchedOnce(t *testing.T) {
	ix := NewAPTree(bounds, nil, 4, 3, 8)
	q := &model.Query{ID: 1, Expr: model.Or("a", "b"), Region: geo.NewRect(0, 0, 100, 100)}
	ix.Insert(q)
	o := &model.Object{ID: 1, Terms: []string{"a", "b"}, Loc: geo.Point{X: 50, Y: 50}}
	n := 0
	ix.Match(o, func(*model.Query) { n++ })
	if n != 1 {
		t.Errorf("OR query reported %d times, want 1", n)
	}
}

func TestAPTreeReplicatedQueryMatchedOnce(t *testing.T) {
	// Force a space split, then match an object inside a query that was
	// replicated into several quadrants.
	ix := NewAPTree(bounds, nil, 4, 3, 8)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		ix.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And("t"),
			Region: geo.NewRect(x, y, x+1, y+1),
		})
	}
	big := &model.Query{ID: 1000, Expr: model.And("t"), Region: geo.NewRect(10, 10, 90, 90)}
	ix.Insert(big)
	o := &model.Object{ID: 1, Terms: []string{"t"}, Loc: geo.Point{X: 50, Y: 50}}
	seen := 0
	ix.Match(o, func(q *model.Query) {
		if q.ID == 1000 {
			seen++
		}
	})
	if seen != 1 {
		t.Errorf("replicated query reported %d times, want 1", seen)
	}
}

func TestAPTreeEachAndFootprint(t *testing.T) {
	qs, _ := randWorkload(17, 60, 0)
	ix := NewAPTree(bounds, nil, 8, 4, 8)
	empty := ix.Footprint()
	for _, q := range qs {
		ix.Insert(q)
	}
	for i := 0; i < 20; i++ {
		ix.Delete(qs[i].ID)
	}
	got := map[uint64]bool{}
	ix.Each(func(q *model.Query) { got[q.ID] = true })
	if len(got) != 40 {
		t.Fatalf("Each visited %d queries, want 40", len(got))
	}
	if ix.Footprint() <= empty {
		t.Error("Footprint did not grow")
	}
}

func TestAPTreeReinsertWhileTombstoned(t *testing.T) {
	ix := NewAPTree(bounds, nil, 4, 3, 8)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10)}
	ix.Insert(q)
	ix.Delete(1)
	ix.Insert(q)
	o := &model.Object{ID: 1, Terms: []string{"x"}, Loc: geo.Point{X: 5, Y: 5}}
	if got := matchIDs(ix, o); len(got) != 1 {
		t.Fatalf("resurrected query not matched: %v", got)
	}
}

func TestAPTreeUnsplittableLeafStaysCorrect(t *testing.T) {
	// Identical queries (same keyword, same centre-straddling region)
	// give both split strategies nothing to work with: the leaf must mark
	// itself unsplittable and keep matching correctly.
	ix := NewAPTree(bounds, nil, 4, 3, 8)
	for i := 0; i < 30; i++ {
		ix.Insert(&model.Query{
			ID:     uint64(i + 1),
			Expr:   model.And("t"),
			Region: geo.NewRect(40, 40, 60, 60),
		})
	}
	o := &model.Object{ID: 1, Terms: []string{"t"}, Loc: geo.Point{X: 50, Y: 50}}
	if got := matchIDs(ix, o); len(got) != 30 {
		t.Errorf("matched %d, want 30", len(got))
	}
}
