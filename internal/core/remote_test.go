package core

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"ps2stream/internal/hybrid"
	"ps2stream/internal/node"
	"ps2stream/internal/stream"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// startWorkerNodes launches n in-process worker nodes on loopback TCP
// (real sockets, the psnode serve loop) and returns their addresses.
func startWorkerNodes(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		w := node.NewWorker(node.WorkerOptions{})
		go w.Serve(ctx, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func TestRemoteWorkersMatchInProcessOracle(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 42, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	// Mixed placement: workers 0,1 remote over loopback TCP, workers
	// 2,3 in-process.
	addrs := startWorkerNodes(t, 2)
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     4,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
	}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	// The drain barrier alone must make the delivered set exact — no
	// Close, no sleeps.
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	ms.mu.Lock()
	missing, extra := 0, 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	for k := range ms.seen {
		if !want[k] {
			extra++
		}
	}
	ms.mu.Unlock()
	if missing > 0 || extra > 0 {
		t.Errorf("after Drain: %d missing, %d extra of %d oracle matches", missing, extra, len(want))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteMergerDeliversAndCounts(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 7, 2000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	// All workers remote (a local worker's matches would bypass the
	// remote merger only if routed to a local merger task — with every
	// merger remote both placements work; keep workers local here to
	// cover the local-worker → remote-merger path).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ms := newMatchSet()
	mn := node.NewMerger(node.MergerOptions{OnMatch: ms.add})
	go mn.Serve(ctx, ln)

	cfg := Config{
		Dispatchers: 1,
		Workers:     3,
		Builder:     hybrid.Builder{},
	}
	if err := cfg.ConnectRemoteMergers([]string{ln.Addr().String(), ln.Addr().String()}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	if cfg.Mergers != 2 {
		t.Fatalf("Mergers = %d, want 2", cfg.Mergers)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	delivered, _, err := sys.RemoteDelivered()
	if err != nil {
		t.Fatal(err)
	}
	if delivered != int64(len(want)) {
		t.Errorf("remote delivered = %d, want %d", delivered, len(want))
	}
	ms.mu.Lock()
	got := len(ms.seen)
	exact := true
	for k := range want {
		if !ms.seen[k] {
			exact = false
		}
	}
	ms.mu.Unlock()
	if !exact || got != len(want) {
		t.Errorf("remote merger delivered %d matches, want the exact oracle set of %d", got, len(want))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConnectRemoteWorkersKeepsWorkerDefault: listing one remote
// address must not shrink an unset Workers below the default 8 — the
// remote task joins the default topology, it does not replace it.
func TestConnectRemoteWorkersKeepsWorkerDefault(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 2, 10)
	addrs := startWorkerNodes(t, 1)
	cfg := Config{}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	if cfg.Workers != 8 {
		t.Errorf("Workers = %d after connecting 1 remote, want the default 8", cfg.Workers)
	}
	if len(cfg.RemoteWorkers) != 1 || cfg.RemoteWorkers[0] == nil {
		t.Errorf("RemoteWorkers = %v, want task 0 connected", cfg.RemoteWorkers)
	}
	cfg.RemoteWorkers[0].Close()
}

func TestRemoteValidation(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 3, 10)
	a, _ := stream.NewChanPair(1)
	// Out-of-range remote task.
	_, err := New(Config{Workers: 2, RemoteWorkers: map[int]stream.Transport{5: a}}, sample)
	if !errors.Is(err, ErrRemoteTask) {
		t.Errorf("out-of-range worker: %v, want ErrRemoteTask", err)
	}
	// Dynamic adjustment needs in-process workers.
	_, err = New(Config{
		Workers:       2,
		RemoteWorkers: map[int]stream.Transport{0: a},
		Adjust:        AdjustConfig{Enabled: true},
	}, sample)
	if !errors.Is(err, ErrRemoteNeedsStatic) {
		t.Errorf("adjust with remote workers: %v, want ErrRemoteNeedsStatic", err)
	}
}

// TestRemoteRepartitionOverWire: global repartition is a coordinated
// wire operation for psnode-backed workers — beginning and finishing a
// repartition under live remote membership must succeed and keep every
// match exact (the remote population is swept through ExtractCells and
// reinstalled through InstallCells).
func TestRemoteRepartitionOverWire(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 5, 500)
	addrs := startWorkerNodes(t, 1)
	cfg := Config{Dispatchers: 1, Workers: 2, Builder: hybrid.Builder{}}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	if err := sys.TopKRemoteSupport(); err != nil {
		t.Errorf("TopKRemoteSupport over wire: %v, want nil", err)
	}
	if err := sys.GlobalRepartition(sample, nil); err != nil {
		t.Fatalf("GlobalRepartition over wire: %v", err)
	}
	sys.FinishGlobalRepartition()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCustomTransportStillNeedsStatic pins the surviving
// ErrRemoteNeedsStatic surface: a custom stream.Transport that stops at
// Send/Recv (no migration frames, no window delta stream) still refuses
// the operations that must reach inside the worker — dynamic
// adjustment at New, GlobalRepartition, and top-k hosting — while
// wire-backed transports (exercised above) refuse none of them.
func TestCustomTransportStillNeedsStatic(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 3, 10)
	a, _ := stream.NewChanPair(1)
	defer a.Close()
	sys, err := New(Config{Workers: 2, RemoteWorkers: map[int]stream.Transport{0: a}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	// Both gates fire before any wire round, so the unstarted system
	// (nobody serves the transport's far end) exercises them safely.
	if err := sys.GlobalRepartition(sample, nil); !errors.Is(err, ErrRemoteNeedsStatic) {
		t.Errorf("GlobalRepartition: %v, want ErrRemoteNeedsStatic", err)
	}
	if err := sys.TopKRemoteSupport(); !errors.Is(err, ErrRemoteNeedsStatic) {
		t.Errorf("TopKRemoteSupport: %v, want ErrRemoteNeedsStatic", err)
	}
}

// TestRemoteHelloNilSample: assembling a handshake without a sample must
// not panic (regression: sample.Bounds was dereferenced unconditionally
// while the terms path guarded nil), and dialling without one is refused
// with a typed error before any connection is attempted.
func TestRemoteHelloNilSample(t *testing.T) {
	cfg := Config{Workers: 2}
	h := cfg.RemoteHello(0, nil) // must not panic
	if h.Terms != nil || h.Bounds.Valid() && h.Bounds.Area() != 0 {
		t.Errorf("nil-sample hello carries state: %+v", h)
	}
	if err := cfg.ConnectRemoteWorkers([]string{"127.0.0.1:1"}, nil, wire.Backoff{Attempts: 1}); !errors.Is(err, ErrNilSample) {
		t.Errorf("ConnectRemoteWorkers(nil sample): %v, want ErrNilSample", err)
	}
	if err := cfg.ConnectRemoteMergers([]string{"127.0.0.1:1"}, nil, wire.Backoff{Attempts: 1}); !errors.Is(err, ErrNilSample) {
		t.Errorf("ConnectRemoteMergers(nil sample): %v, want ErrNilSample", err)
	}
}

// closeCounter is a stub transport recording Close calls.
type closeCounter struct {
	stream.Transport
	closes int
}

func (c *closeCounter) Close() error { c.closes++; return nil }

// TestConnectRemoteWorkersFailureKeepsCallerTransports: a failed dial
// must close and remove only the transports that call dialled —
// caller-installed entries survive untouched, so a retry (or New) never
// finds a closed transport left behind in the Config.
func TestConnectRemoteWorkersFailureKeepsCallerTransports(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 2, 10)
	good := startWorkerNodes(t, 1)[0]
	pre := &closeCounter{}
	cfg := Config{
		Workers:       8,
		RemoteWorkers: map[int]stream.Transport{7: pre},
	}
	// Address 0 dials fine (real node), address 1 is unreachable: the
	// call must fail, close its own dial for task 0, and leave task 7
	// alone.
	err := cfg.ConnectRemoteWorkers([]string{good, "127.0.0.1:1"}, sample, wire.Backoff{Attempts: 1})
	if err == nil {
		t.Fatal("ConnectRemoteWorkers succeeded against an unreachable address")
	}
	if pre.closes != 0 {
		t.Errorf("caller-installed transport closed %d times by a failed connect", pre.closes)
	}
	if tr, ok := cfg.RemoteWorkers[7]; !ok || tr != pre {
		t.Errorf("caller-installed transport evicted: RemoteWorkers[7] = %v", tr)
	}
	if _, ok := cfg.RemoteWorkers[0]; ok {
		t.Error("failed connect left its own dead transport behind at task 0")
	}
	if _, ok := cfg.RemoteWorkers[1]; ok {
		t.Error("failed connect left a transport for the address that never connected")
	}
}

// TestRemoteConfigMismatchDetected: the handshake pins the topology
// shape at dial time; mutating the Config before New must surface as a
// typed error instead of a silently disagreeing cluster.
func TestRemoteConfigMismatchDetected(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 4, 10)
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"workers", func(c *Config) { c.Workers = c.Workers + 1 }},
		{"granularity", func(c *Config) { c.Granularity = 16 }},
		{"batch", func(c *Config) { c.BatchSize = 7 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			addrs := startWorkerNodes(t, 1)
			cfg := Config{Dispatchers: 1, Workers: 2, Builder: hybrid.Builder{}}
			if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
				t.Fatal(err)
			}
			defer func() {
				for _, tr := range cfg.RemoteWorkers {
					tr.Close()
				}
			}()
			tc.mutate(&cfg)
			if _, err := New(cfg, sample); !errors.Is(err, ErrRemoteConfigMismatch) {
				t.Errorf("New after mutating %s: %v, want ErrRemoteConfigMismatch", tc.name, err)
			}
		})
	}
}

// TestRemoteAbortUnblocks: cancelling the run context must unblock the
// transport reads so Abort terminates promptly.
func TestRemoteAbortUnblocks(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 11, 100)
	addrs := startWorkerNodes(t, 1)
	cfg := Config{Dispatchers: 1, Workers: 1, Builder: hybrid.Builder{}}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	done := make(chan struct{})
	go func() {
		sys.Abort()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Abort hung with a remote worker attached")
	}
}
