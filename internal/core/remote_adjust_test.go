package core

import (
	"context"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// startMigratingWorkerNodes launches n in-process worker nodes on
// loopback TCP and returns both the addresses and the node handles, so
// tests can observe node-side query populations across migrations.
func startMigratingWorkerNodes(t *testing.T, n int) ([]string, []*node.Worker) {
	t.Helper()
	addrs := make([]string, n)
	nodes := make([]*node.Worker, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		t.Cleanup(cancel)
		w := node.NewWorker(node.WorkerOptions{})
		go w.Serve(ctx, ln)
		addrs[i] = ln.Addr().String()
		nodes[i] = w
	}
	return addrs, nodes
}

// runRemoteHotspotPublish mirrors runHotspotPublish with every worker
// task behind loopback TCP: the same seeded hotspot-shift workload, the
// adaptive controller at an aggressive cadence, AdjustNow hammered from
// a second goroutine while objects publish continuously. Every executed
// migration necessarily crosses the wire (all endpoints are remote).
func runRemoteHotspotPublish(t *testing.T) (matches [][2]uint64, adj AdjustStats) {
	t.Helper()
	spec := workload.TweetsUS()
	const mu, nObjects = 600, 3000
	sample := workload.SampleFocused(spec, workload.Q1, 2000, 400, 77, 0, 2.0, 0.85)
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 2,
		Workers:     4,
		Mergers:     2,
		OnMatch:     ms.add,
		Adjust: AdjustConfig{
			Enabled:       true,
			Sigma:         1.05,
			Interval:      3 * time.Millisecond,
			Cooldown:      5 * time.Millisecond,
			SustainChecks: 1,
			MinWindowOps:  32,
			Seed:          77,
		},
	}
	addrs, _ := startMigratingWorkerNodes(t, cfg.Workers)
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: mu, Seed: 77})
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	if err := sys.Drain(int64(len(warm))); err != nil {
		t.Fatal(err)
	}

	gen := workload.NewGenerator(spec, 770)
	gen.FocusHotspot(1, 0.85)
	objs := make([]*model.Object, nObjects)
	for i := range objs {
		objs[i] = gen.Object()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sys.AdjustNow()
				time.Sleep(2 * time.Millisecond)
			}
		}
	}()
	for _, o := range objs {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: o})
	}
	if err := sys.Drain(int64(len(warm) + nObjects)); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	adj = sys.Snapshot().Adjust
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([][2]uint64, 0, len(ms.seen))
	for k := range ms.seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, adj
}

// TestRemoteAdjustPublishMatchesStaticOracle is the acceptance check of
// dynamic adjustment over the wire: a loopback cluster with every worker
// task remote, migrating cells under live traffic, must deliver exactly
// the match set of a static in-process partitioning — nothing lost to an
// extraction racing the wire barriers, nothing invented by double-owned
// cells. Because all endpoints are remote, every counted migration moved
// a cell across the wire.
func TestRemoteAdjustPublishMatchesStaticOracle(t *testing.T) {
	want, _ := runHotspotPublish(t, false) // in-process static oracle
	// Bounded retry on the vacuous outcome, as in the in-process oracle
	// test: the finite burst can end before a hammered AdjustNow sees
	// non-empty per-cell loads.
	var got [][2]uint64
	var adj AdjustStats
	for attempt := 0; attempt < 3 && adj.Migrations == 0; attempt++ {
		got, adj = runRemoteHotspotPublish(t)
	}
	if adj.Migrations == 0 || adj.CellsMoved == 0 {
		t.Fatalf("no cells migrated across the wire in any attempt (Stats.Adjust = %+v); the equivalence check is vacuous", adj)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; the equivalence check is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("remote adjusted run delivered %d distinct matches, static oracle %d (after %d migrations)",
			len(got), len(want), adj.Migrations)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match set diverges at %d: remote adjusted %v, oracle %v", i, got[i], want[i])
		}
	}
	t.Logf("match-set equivalence held across %d wire migrations (%d cells, %d queries, %d bytes)",
		adj.Migrations, adj.CellsMoved, adj.QueriesMoved, adj.BytesMoved)
}

// TestRemoteMigrateShareBothDirections drives one migration local→remote
// and one remote→local through the wire control frames, asserting the
// query population actually moves between processes and that delivery
// stays exactly the oracle set afterwards.
func TestRemoteMigrateShareBothDirections(t *testing.T) {
	spec := workload.TweetsUS()
	spec.VocabSize = 2000
	sample := workload.Sample(spec, workload.Q1, 2000, 400, 9)
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: 300, Seed: 9})
	warm := st.Prewarm(300)

	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     1,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
	}
	addrs, nodes := startMigratingWorkerNodes(t, 1) // worker task 0 remote, task 1 local
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	submitted := int64(0)
	submit := func(ops []model.Op) {
		sys.SubmitAll(ops)
		submitted += int64(len(ops))
		if err := sys.Drain(submitted); err != nil {
			t.Fatal(err)
		}
	}
	submit(warm)

	migrate := func(wo, wl int) {
		t.Helper()
		// A remote source's planner view comes from one CellStats round,
		// exactly as runAdjustment fetches it.
		var remote []wire.CellStat
		if m := sys.remoteMigrator(wo); m != nil {
			var err error
			if remote, err = m.CellStats(); err != nil {
				t.Fatal(err)
			}
		}
		shares := sys.collectShares(wo, remote)
		if len(shares) == 0 {
			t.Fatalf("worker %d has no migratable cells", wo)
		}
		// Pick the largest share so the population shift is observable.
		best := shares[0]
		for _, sh := range shares[1:] {
			if sh.Queries > best.Queries {
				best = sh
			}
		}
		moved, nbytes, ok := sys.migrateShare(wo, wl, best.Cell)
		if !ok || moved == 0 || nbytes == 0 {
			t.Fatalf("migrateShare(%d→%d, cell %d) = %d queries / %d bytes / ok=%v", wo, wl, best.Cell, moved, nbytes, ok)
		}
		// Let the source drain past the flip barrier, then extract.
		sys.Quiesce(submitted)
		sys.processPendingExtracts()
		if sys.hasPendingExtracts() {
			t.Fatalf("extraction still pending after quiesce (%d→%d)", wo, wl)
		}
	}

	before := nodes[0].QueryCount()
	migrate(1, 0) // local → remote
	if after := nodes[0].QueryCount(); after <= before {
		t.Fatalf("remote node holds %d queries after local→remote migration, had %d", after, before)
	}
	objs1 := make([]model.Op, 0, 1500)
	gen := workload.NewGenerator(spec, 90)
	for i := 0; i < 1500; i++ {
		objs1 = append(objs1, model.Op{Kind: model.OpObject, Obj: gen.Object()})
	}
	submit(objs1)

	atRemote := nodes[0].QueryCount()
	migrate(0, 1) // remote → local
	if after := nodes[0].QueryCount(); after >= atRemote {
		t.Fatalf("remote node still holds %d queries after remote→local migration, had %d", after, atRemote)
	}
	objs2 := make([]model.Op, 0, 1500)
	for i := 0; i < 1500; i++ {
		objs2 = append(objs2, model.Op{Kind: model.OpObject, Obj: gen.Object()})
	}
	submit(objs2)

	all := append(append(append([]model.Op{}, warm...), objs1...), objs2...)
	want := oracleMatches(all)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	ms.mu.Lock()
	missing, extra := 0, 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	for k := range ms.seen {
		if !want[k] {
			extra++
		}
	}
	ms.mu.Unlock()
	if missing > 0 || extra > 0 {
		t.Errorf("after both migrations: %d missing, %d extra of %d oracle matches", missing, extra, len(want))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteHotspotShiftDetectorFires pins the node-reported load path:
// with every worker remote, the controller's only view of per-worker
// load is the counters the nodes report over the stats round — if that
// plumbing broke, the detector would see zero load forever and never
// trigger. A paced hotspot shift must make it fire and migrate.
func TestRemoteHotspotShiftDetectorFires(t *testing.T) {
	spec := workload.TweetsUS()
	const mu = 500
	sample := workload.SampleFocused(spec, workload.Q1, 2000, 400, 31, 0, 2.0, 0.85)
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     1,
		Adjust: AdjustConfig{
			Enabled:       true,
			Sigma:         1.10,
			Interval:      5 * time.Millisecond,
			Cooldown:      10 * time.Millisecond,
			SustainChecks: 1,
			MinWindowOps:  32,
			Seed:          31,
		},
	}
	addrs, _ := startMigratingWorkerNodes(t, cfg.Workers)
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{
		Mu: mu, Seed: 31, FocusBias: 0.9, FocusHotspot: 0, FocusSigmaDeg: 2.0,
	})
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	if err := sys.Drain(int64(len(warm))); err != nil {
		t.Fatal(err)
	}
	// The shift: all object traffic concentrates on hotspot 1, which the
	// fitted partitioning funnels into few workers. Paced publishing
	// gives the background controller wall-clock intervals to observe
	// node-reported loads and react.
	st.FocusHotspot(1)
	submitted := int64(len(warm))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for i := 0; i < 200; i++ {
			sys.Submit(st.Next())
			submitted++
		}
		time.Sleep(5 * time.Millisecond)
		adj := sys.Snapshot().Adjust
		if adj.Triggers > 0 && adj.Migrations > 0 {
			break
		}
	}
	if err := sys.Drain(submitted); err != nil {
		t.Fatal(err)
	}
	adj := sys.Snapshot().Adjust
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if adj.Checks == 0 {
		t.Fatal("controller never evaluated a window — remote load polling appears stuck")
	}
	if adj.Triggers == 0 {
		t.Fatalf("detector never fired from node-reported loads under a hotspot shift: %+v", adj)
	}
	if adj.Migrations == 0 || adj.CellsMoved == 0 {
		t.Fatalf("detector fired but nothing migrated across the wire: %+v", adj)
	}
	t.Logf("detector fired %d times, %d migrations / %d cells across the wire (imbalance %.2f)",
		adj.Triggers, adj.Migrations, adj.CellsMoved, adj.Imbalance)
}
