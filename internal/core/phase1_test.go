package core

import (
	"context"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/workload"
)

// TestMigrateSplitMovesOneKeyShare exercises the Phase I split path
// directly: a space cell's share under one registration key moves to
// another worker, the gridt cell becomes a text cell, and matching
// continues for both the moved and the remaining key with no lost
// deliveries.
func TestMigrateSplitMovesOneKeyShare(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 51, 0)
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: hybrid.Builder{},
		OnMatch: ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	gt := sys.gridT.Load()
	center := sample.Bounds.Center()
	cell := gt.Grid().CellOf(center)
	if gt.IsTextCell(cell) {
		t.Skip("sample produced a text cell at the centre; space cell needed")
	}
	// Two query populations in the same cell under two registration keys.
	region := geo.RectAround(center, 5, 5)
	for i := 0; i < 10; i++ {
		sys.Submit(model.Op{Kind: model.OpInsert, Query: &model.Query{
			ID: uint64(i + 1), Expr: model.And("splitkeya"), Region: region,
		}})
		sys.Submit(model.Op{Kind: model.OpInsert, Query: &model.Query{
			ID: uint64(i + 101), Expr: model.And("splitkeyb"), Region: region,
		}})
	}
	for sys.Processed() < 20 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	wo := gt.CellWorkers(cell)[0]
	wl := (wo + 1) % 4

	moved, nbytes, _ := sys.migrateSplit(wo, wl, cell, []string{"splitkeya"})
	if moved != 10 || nbytes <= 0 {
		t.Fatalf("migrateSplit moved %d queries (%d bytes), want 10", moved, nbytes)
	}
	if !gt.IsTextCell(cell) {
		t.Error("cell did not become a text cell after the split")
	}
	// The moved key routes to wl now; the rest stays on wo.
	oA := &model.Object{ID: 1, Terms: []string{"splitkeya"}, Loc: center}
	oB := &model.Object{ID: 2, Terms: []string{"splitkeyb"}, Loc: center}
	if ws := sys.Assignment().RouteObject(oA); len(ws) != 1 || ws[0] != wl {
		t.Errorf("splitkeya routes to %v, want [%d]", ws, wl)
	}
	if ws := sys.Assignment().RouteObject(oB); len(ws) != 1 || ws[0] != wo {
		t.Errorf("splitkeyb routes to %v, want [%d]", ws, wo)
	}

	// Matching keeps working across the deferred extraction.
	sys.Submit(model.Op{Kind: model.OpObject, Obj: oA})
	sys.Submit(model.Op{Kind: model.OpObject, Obj: oB})
	for sys.Processed() < 22 {
		time.Sleep(time.Millisecond)
	}
	sys.processPendingExtracts()
	sys.Submit(model.Op{Kind: model.OpObject, Obj: &model.Object{ID: 3, Terms: []string{"splitkeya"}, Loc: center}})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	for q := uint64(1); q <= 10; q++ {
		if !ms.has(q, 1) || !ms.has(q, 3) {
			t.Fatalf("query %d missed object 1 or 3 after split migration", q)
		}
	}
	for q := uint64(101); q <= 110; q++ {
		if !ms.has(q, 2) {
			t.Fatalf("query %d missed object 2 after split migration", q)
		}
	}
	// After extraction the source worker no longer holds the moved share.
	src := sys.workers[wo]
	src.mu.Lock()
	leftover := src.gi.QueriesInCellKeys(cell, []string{"splitkeya"})
	src.mu.Unlock()
	if len(leftover) != 0 {
		t.Errorf("source worker still holds %d splitkeya queries", len(leftover))
	}
}

// dualAssignment's small interface methods (used while a global
// repartition is in flight).
func TestDualAssignmentAccessors(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 52, 0)
	a, err := (hybrid.Builder{}).Build(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := (hybrid.Builder{}).Build(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	d := &dualAssignment{
		old:    a,
		new:    b,
		oldIDs: map[uint64]struct{}{1: {}, 2: {}},
	}
	d.initial = 2
	if d.NumWorkers() != 4 {
		t.Errorf("NumWorkers = %d", d.NumWorkers())
	}
	if d.Name() != "dual(hybrid->hybrid)" {
		t.Errorf("Name = %q", d.Name())
	}
	if fp := d.Footprint(); fp <= a.Footprint() {
		t.Errorf("dual footprint %d not larger than one strategy's %d", fp, a.Footprint())
	}
	rem, init := d.remaining()
	if rem != 2 || init != 2 {
		t.Errorf("remaining = %d/%d", rem, init)
	}
}
