package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/qindex"
	"ps2stream/internal/textutil"
	"ps2stream/internal/workload"
)

// TestPerTupleWorkSlowsWorkers verifies the simulated per-tuple cluster
// cost is actually charged (the harness depends on it).
func TestPerTupleWorkSlowsWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sample, ops := smallWorkload(t, workload.Q1, 31, 6000)
	run := func(work time.Duration) time.Duration {
		sys, err := New(Config{
			Dispatchers: 1, Workers: 2,
			Builder:      hybrid.Builder{},
			PerTupleWork: work,
		}, sample)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		sys.SubmitAll(ops)
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := run(0)
	slow := run(100 * time.Microsecond)
	// 6000 ops × ≥100µs across 2 workers is ≥300ms of injected work; the
	// 1.5× bar keeps the check robust to scheduler noise on the fast run.
	if slow < fast*3/2 {
		t.Errorf("PerTupleWork had no effect: %v vs %v", fast, slow)
	}
}

// TestBackpressureUnderSlowMatchCallback injects a slow OnMatch consumer:
// the system must not drop or duplicate deliveries, just slow down.
func TestBackpressureUnderSlowMatchCallback(t *testing.T) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 500, 100, 32)
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1, Workers: 2, Mergers: 1,
		QueueCap: 8, // tiny queues: backpressure engages immediately
		Builder:  hybrid.Builder{},
		OnMatch: func(m model.Match) {
			time.Sleep(100 * time.Microsecond)
			ms.add(m)
		},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	center := spec.Bounds.Center()
	q := &model.Query{ID: 1, Expr: model.And("hot"), Region: geo.RectAround(center, 500, 500)}
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	const n = 500
	for i := 0; i < n; i++ {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: uint64(i + 1), Terms: []string{"hot"}, Loc: center,
		}})
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ms.len(); got != n {
		t.Errorf("delivered %d matches, want %d", got, n)
	}
}

// TestMigrationWithConcurrentDeletes exercises the documented migration
// gap: deletions racing a migration may leave a brief stale copy (false
// positives) but must never cause a missed match for live queries.
func TestMigrationWithConcurrentDeletes(t *testing.T) {
	spec := workload.TweetsUS()
	spec.VocabSize = 1000
	sample := workload.Sample(spec, workload.Q1, 3000, 500, 33)
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: hybrid.Builder{},
		OnMatch: ms.add,
		Adjust: AdjustConfig{
			Enabled:      true,
			Sigma:        1.2,
			Interval:     20 * time.Millisecond,
			Algorithm:    migrate.GR,
			MinWindowOps: 64,
		},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: 400, Seed: 33})
	warm := st.Prewarm(400)
	hot := geo.Point{
		X: spec.Bounds.Min.X + spec.Bounds.Width()*0.25,
		Y: spec.Bounds.Min.Y + spec.Bounds.Height()*0.25,
	}
	var ops []model.Op
	ops = append(ops, warm...)
	for i := 0; i < 10000; i++ {
		op := st.Next() // includes deletes
		if op.Kind == model.OpObject {
			op.Obj.Loc = geo.Point{X: hot.X + float64(i%5)*0.02, Y: hot.Y + float64(i%9)*0.02}
		}
		ops = append(ops, op)
	}
	want := oracleMatches(ops)
	for i, op := range ops {
		sys.Submit(op)
		if i%1000 == 999 {
			time.Sleep(15 * time.Millisecond)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	migs := sys.Migrations()
	t.Logf("migrations: %d, oracle matches: %d, delivered: %d", len(migs), len(want), ms.len())
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing := 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	// No false negatives, ever.
	if missing > 0 {
		t.Errorf("%d/%d oracle matches missing", missing, len(want))
	}
	// False positives are tolerated only for recently-deleted queries —
	// they must stay a tiny fraction.
	extra := 0
	for k := range ms.seen {
		if !want[k] {
			extra++
		}
	}
	if float64(extra) > 0.01*float64(len(want))+5 {
		t.Errorf("%d stale deliveries vs %d oracle matches", extra, len(want))
	}
}

// slowIndex wraps a worker index, sleeping on every match — a stand-in
// for a degraded worker (CPU-starved or swapping).
type slowIndex struct {
	qindex.Index
	delay time.Duration
}

func (s *slowIndex) Match(o *model.Object, fn func(q *model.Query)) {
	time.Sleep(s.delay)
	s.Index.Match(o, fn)
}

// TestStalledWorkerDoesNotLoseMatches degrades one worker's index by 200µs
// per object. Backpressure must slow the pipeline, not drop tuples: the
// delivered match set stays exactly the oracle set.
func TestStalledWorkerDoesNotLoseMatches(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 35, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous workload")
	}
	ms := newMatchSet()
	workerN := 0
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4, Mergers: 1,
		QueueCap: 64,
		Builder:  hybrid.Builder{},
		IndexFactory: func(bounds geo.Rect, granularity int, stats *textutil.Stats) qindex.Index {
			ix := qindex.Index(gi2.New(bounds, granularity, stats))
			workerN++
			if workerN == 1 { // first worker built is degraded
				return &slowIndex{Index: ix, delay: 200 * time.Microsecond}
			}
			return ix
		},
		OnMatch: ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing := 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d/%d oracle matches missing with a stalled worker", missing, len(want))
	}
}

// TestTinyDedupWindowKeepsSetSemantics shrinks the merger window to 16
// pairs: duplicate deliveries may then slip through (the window is a
// bounded-memory filter, not an exact one), but the delivered *set* must
// still be exactly the oracle set.
func TestTinyDedupWindowKeepsSetSemantics(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q2, 36, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous workload")
	}
	ms := newMatchSet()
	var delivered atomic.Int64
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4, Mergers: 1,
		DedupWindow: 16,
		Builder:     hybrid.Builder{},
		OnMatch: func(m model.Match) {
			delivered.Add(1)
			ms.add(m)
		},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	for k := range want {
		if !ms.seen[k] {
			t.Fatalf("oracle match %v missing", k)
		}
	}
	for k := range ms.seen {
		if !want[k] {
			t.Fatalf("spurious match %v delivered", k)
		}
	}
}

// TestLiveQueriesExactAfterDrain checks the checkpoint source of truth:
// after the stream drains, LiveQueries is exactly inserted − deleted,
// deduplicated across workers, sorted by id — for every worker index.
func TestLiveQueriesExactAfterDrain(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 37, 0)
	for name, f := range indexFactories() {
		t.Run(name, func(t *testing.T) {
			// Four dispatchers: exercises the fields-grouped input stream —
			// per-subscription insert/delete order must hold across
			// dispatcher tasks.
			sys, err := New(Config{
				Dispatchers: 4, Workers: 4,
				Builder:      hybrid.Builder{},
				IndexFactory: f,
			}, sample)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			gen := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 37)
			inserted := make([]*model.Query, 0, 300)
			for i := 0; i < 300; i++ {
				q := gen.Query()
				q.ID = uint64(i + 1)
				inserted = append(inserted, q)
				sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
			}
			for i := 0; i < 300; i += 3 {
				sys.Submit(model.Op{Kind: model.OpDelete, Query: inserted[i]})
			}
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			live := sys.LiveQueries()
			wantN := 300 - 100
			if len(live) != wantN {
				t.Fatalf("LiveQueries = %d, want %d", len(live), wantN)
			}
			for i := 1; i < len(live); i++ {
				if live[i-1].ID >= live[i].ID {
					t.Fatalf("LiveQueries not strictly sorted at %d: %d >= %d",
						i, live[i-1].ID, live[i].ID)
				}
			}
			for _, q := range live {
				if (q.ID-1)%3 == 0 {
					t.Fatalf("deleted query %d still live", q.ID)
				}
			}
		})
	}
}

// TestLiveQueriesUnderChurn takes snapshots while the stream is flowing:
// the set may lag the stream but must only ever contain inserted ids,
// deduplicated and sorted.
func TestLiveQueriesUnderChurn(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 38, 6000)
	sys, err := New(Config{
		Dispatchers: 2, Workers: 4,
		Builder: hybrid.Builder{},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	valid := make(map[uint64]bool)
	for _, op := range ops {
		if op.Kind == model.OpInsert {
			valid[op.Query.ID] = true
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.SubmitAll(ops)
	}()
	for i := 0; i < 20; i++ {
		live := sys.LiveQueries()
		seen := make(map[uint64]bool, len(live))
		for j, q := range live {
			if !valid[q.ID] {
				t.Errorf("snapshot %d: unknown query id %d", i, q.ID)
			}
			if seen[q.ID] {
				t.Errorf("snapshot %d: duplicate id %d", i, q.ID)
			}
			seen[q.ID] = true
			if j > 0 && live[j-1].ID >= q.ID {
				t.Errorf("snapshot %d: unsorted at %d", i, j)
			}
		}
		time.Sleep(time.Millisecond)
	}
	<-done
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteNeverOvertakesInsert is the regression test for a real bug:
// with multiple dispatchers and shuffle-grouped input, an Unsubscribe
// could be processed by a different dispatcher task than its Subscribe
// and overtake it, leaking the query (and its gridt H2 counts) forever.
// Fields grouping on the subscription id pins both ops to one dispatcher.
func TestDeleteNeverOvertakesInsert(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 39, 0)
	sys, err := New(Config{
		Dispatchers: 4, Workers: 8,
		Builder: hybrid.Builder{},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	gen := workload.NewQueryGenerator(workload.TweetsUS(), workload.Q1, 39)
	// Insert immediately followed by delete, hundreds of times: under
	// shuffle grouping the pair regularly splits across dispatchers and
	// races.
	for i := 0; i < 500; i++ {
		q := gen.Query()
		q.ID = uint64(i + 1)
		sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
		sys.Submit(model.Op{Kind: model.OpDelete, Query: q})
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	if live := sys.LiveQueries(); len(live) != 0 {
		t.Errorf("%d queries leaked after insert+delete pairs (first: %d)",
			len(live), live[0].ID)
	}
}

// TestAbort ensures Abort tears the topology down without draining.
func TestAbort(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 34, 10)
	sys, err := New(Config{Dispatchers: 1, Workers: 2, Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		sys.Abort()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Abort did not return")
	}
}
