package core

import (
	"context"
	"errors"
	"net"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/faultnet"
	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/node"
	"ps2stream/internal/wire"
	"ps2stream/internal/workload"
)

// elasticNode is one in-process worker node the test can observe, kill
// like a crashed process, and restart on the same port.
type elasticNode struct {
	addr   string
	worker *node.Worker
	cancel context.CancelFunc
	ln     net.Listener

	mu    sync.Mutex
	conns []net.Conn
}

// trackingListener records accepted connections so kill() can sever the
// live session the way a dead process would.
type trackingListener struct {
	net.Listener
	n *elasticNode
}

func (l *trackingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.n.mu.Lock()
	l.n.conns = append(l.n.conns, c)
	l.n.mu.Unlock()
	return c, nil
}

// startElasticNode launches a fresh worker node. addr "" picks a free
// port; a concrete addr rebinds it (restart-after-crash), retrying
// briefly while the dying listener lets go of the port.
func startElasticNode(t *testing.T, addr string) *elasticNode {
	t.Helper()
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	en := &elasticNode{addr: ln.Addr().String(), worker: node.NewWorker(node.WorkerOptions{}), ln: ln}
	ctx, cancel := context.WithCancel(context.Background())
	en.cancel = cancel
	t.Cleanup(en.kill)
	go en.worker.Serve(ctx, &trackingListener{Listener: ln, n: en})
	return en
}

// kill simulates a process death: the listener and every accepted
// connection drop at once, mid-frame if one is in flight.
func (en *elasticNode) kill() {
	en.cancel()
	en.ln.Close()
	en.mu.Lock()
	for _, c := range en.conns {
		c.Close()
	}
	en.mu.Unlock()
}

// assertExact compares the delivered match set against the oracle.
func assertExact(t *testing.T, ms *matchSet, want map[[2]uint64]bool) {
	t.Helper()
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing, extra := 0, 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	for k := range ms.seen {
		if !want[k] {
			extra++
		}
	}
	if missing > 0 || extra > 0 {
		t.Errorf("%d missing, %d extra of %d oracle matches", missing, extra, len(want))
	}
}

// TestAddWorkerRebalancesOntoJoinedNode: a node started after the
// stream is live joins via AddWorker, receives a share of the standing
// cells, and the delivered match set stays exactly the oracle's.
func TestAddWorkerRebalancesOntoJoinedNode(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 21, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	n0, n1 := startElasticNode(t, ""), startElasticNode(t, "")
	joiner := startElasticNode(t, "")
	ms := newMatchSet()
	cfg := Config{
		Dispatchers:  1,
		Workers:      2,
		Mergers:      2,
		Builder:      hybrid.Builder{},
		OnMatch:      ms.add,
		SpareWorkers: 1, // sized before dialling: the handshake's worker count includes it
	}
	if err := cfg.ConnectRemoteWorkers([]string{n0.addr, n1.addr}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	half := len(ops) / 2
	sys.SubmitAll(ops[:half])
	if err := sys.Drain(int64(half)); err != nil {
		t.Fatal(err)
	}
	task, err := sys.AddWorker(joiner.addr)
	if err != nil {
		t.Fatal(err)
	}
	if task != 2 {
		t.Errorf("AddWorker claimed slot %d, want the spare slot 2", task)
	}
	// The pool had exactly one spare; a second join must be refused.
	if _, err := sys.AddWorker(joiner.addr); !errors.Is(err, ErrNoSpareSlots) {
		t.Errorf("second AddWorker: %v, want ErrNoSpareSlots", err)
	}
	sys.SubmitAll(ops[half:])
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	assertExact(t, ms, want)
	if joiner.worker.QueryCount() == 0 {
		t.Error("joined node serves no queries: the join rebalanced nothing onto it")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDecommissionWorkerDrainsNode: a graceful retire migrates every
// cell off the node, leaves it empty, and loses no matches.
func TestDecommissionWorkerDrainsNode(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 31, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	nodes := []*elasticNode{startElasticNode(t, ""), startElasticNode(t, ""), startElasticNode(t, "")}
	addrs := []string{nodes[0].addr, nodes[1].addr, nodes[2].addr}
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     3,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
	}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	half := len(ops) / 2
	sys.SubmitAll(ops[:half])
	if err := sys.Drain(int64(half)); err != nil {
		t.Fatal(err)
	}
	if err := sys.DecommissionWorker(1); err != nil {
		t.Fatal(err)
	}
	// The node keeps registrations for cells it never owned (gi2.Insert
	// registers in every overlapping local cell), so a zero count is not
	// the invariant — no further traffic reaching the retired node is.
	retiredCount := nodes[1].worker.QueryCount()
	retiredDone, _ := nodes[1].worker.Counts()
	// A retired slot is gone for good.
	if err := sys.DecommissionWorker(1); err == nil {
		t.Error("decommissioning an already-retired slot succeeded")
	}
	sys.SubmitAll(ops[half:])
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	assertExact(t, ms, want)
	if n := nodes[1].worker.QueryCount(); n != retiredCount {
		t.Errorf("retired node's query count moved %d -> %d after retirement", retiredCount, n)
	}
	if d, _ := nodes[1].worker.Counts(); d != retiredDone {
		t.Errorf("retired node processed %d more ops after retirement", d-retiredDone)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryReplaysOntoFreshNode: kill -9 equivalent — the
// node's session and listener drop mid-stream while the publisher keeps
// going, a state-less replacement binds the same port, and the op-log
// replay rebuilds it without losing or inventing a single match. Run
// under -race this doubles as the publish-during-crash interleaving
// check.
func TestCrashRecoveryReplaysOntoFreshNode(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 17, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	n0 := startElasticNode(t, "")
	victim := startElasticNode(t, "")
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
		Recovery: RecoveryConfig{
			Enabled:            true,
			CheckpointInterval: 100 * time.Millisecond,
			HeartbeatInterval:  50 * time.Millisecond,
			RedialTimeout:      20 * time.Second,
		},
	}
	if err := cfg.ConnectRemoteWorkers([]string{n0.addr, victim.addr}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	half := len(ops) / 2
	sys.SubmitAll(ops[:half])
	if err := sys.Drain(int64(half)); err != nil {
		t.Fatal(err)
	}
	// Publish the second half concurrently with the crash: ops must keep
	// flowing (and queue against the downed slot's op log) while the
	// coordinator redials and replays.
	published := make(chan struct{})
	go func() {
		defer close(published)
		sys.SubmitAll(ops[half:])
	}()
	victim.kill()
	replacement := startElasticNode(t, victim.addr)
	<-published
	if err := sys.Drain(int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	assertExact(t, ms, want)
	if replacement.worker.QueryCount() == 0 {
		t.Error("replacement node holds no queries: replay restored nothing")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// startChaosNode launches a worker node behind seeded fault injection:
// every injected drop severs the live session (see faultnet's package
// doc), so the drop schedule doubles as a crash schedule.
func startChaosNode(t *testing.T, fc faultnet.Config) *elasticNode {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	en := &elasticNode{addr: ln.Addr().String(), worker: node.NewWorker(node.WorkerOptions{}), ln: ln}
	ctx, cancel := context.WithCancel(context.Background())
	en.cancel = cancel
	t.Cleanup(en.kill)
	go en.worker.Serve(ctx, faultnet.WrapListener(&trackingListener{Listener: ln, n: en}, fc))
	return en
}

// TestChaosFaultnetMatchesOracle is the fault-injection centerpiece:
// both worker hops run behind a seeded drop/delay schedule, so sessions
// sever at schedule-chosen frames mid-stream and recovery redials and
// replays — repeatedly, if the schedule says so. The delivered match
// set must still be exactly the in-process oracle's, and — with a top-k
// mix riding along under a shared fake clock — so must every reconciled
// TopKSet. The standing top-k subscriptions keep checkpoint refill
// retention active for the whole run, so boolean exactness here doubles
// as the regression test for refill match suppression: a replay that
// re-emits matches for refilled objects shows up as extras, one that
// loses window state shows up in the sets. SkipFrames leaves the
// handshake intact so every redial can succeed; the per-accept reseed
// means successive sessions fail at different points.
func TestChaosFaultnetMatchesOracle(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 13, 4000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	topks := topkMixFromWorkload(ops, 5, 2*time.Hour)
	if len(topks) < 4 {
		t.Fatalf("workload yielded only %d top-k shapes", len(topks))
	}
	// One static fake clock for the oracle and the chaos run: every op
	// carries the same publish stamp in both, so ranks are comparable
	// regardless of how long recovery stalls the distributed run.
	clk := newFakeClock(time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC))
	oracle, err := New(Config{
		Dispatchers: 1, Workers: 2, Mergers: 2,
		Builder:    hybrid.Builder{},
		OnMatch:    func(model.Match) {},
		OnTopK:     func(TopKUpdate) {},
		Clock:      clk.Now,
		WindowTick: time.Hour,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	n := submitTopKs(oracle, topks)
	if err := oracle.Drain(n); err != nil {
		t.Fatal(err)
	}
	oracle.SubmitAll(ops)
	if err := oracle.Drain(n + int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	wantTopK := topkSets(oracle, topks)
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	members := 0
	for _, s := range wantTopK {
		members += len(s)
	}
	if members == 0 {
		t.Fatal("vacuous: the top-k mix ranked nothing")
	}
	// CI's chaos job sweeps a fixed seed matrix via PS2_CHAOS_SEED; each
	// seed deterministically selects a different crash/delay schedule.
	base := int64(1300)
	if s := os.Getenv("PS2_CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PS2_CHAOS_SEED %q: %v", s, err)
		}
		base = v
	}
	fc := faultnet.Config{
		Seed:       base,
		Drop:       0.004, // a few severed sessions over the run
		Delay:      0.02,
		DelayMax:   2 * time.Millisecond,
		SkipFrames: 8,
	}
	n0 := startChaosNode(t, fc)
	fc.Seed = base * 2
	n1 := startChaosNode(t, fc)
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
		OnTopK:      func(TopKUpdate) {},
		Clock:       clk.Now,
		WindowTick:  time.Hour,
		Recovery: RecoveryConfig{
			Enabled:            true,
			CheckpointInterval: 100 * time.Millisecond,
			HeartbeatInterval:  50 * time.Millisecond,
			RedialTimeout:      20 * time.Second,
		},
	}
	if err := cfg.ConnectRemoteWorkers([]string{n0.addr, n1.addr}, sample, wire.Backoff{Attempts: 10}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(submitTopKs(sys, topks)); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Drain(n + int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	assertExact(t, ms, want)
	assertSameTopKSets(t, "chaos", topkSets(sys, topks), wantTopK)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDecommissionRefusedForLocalSlot: only elastic (hop-backed) slots
// can be decommissioned; an in-process slot has no hop to retire.
func TestDecommissionRefusedForLocalSlot(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 3, 10)
	addrs := []string{startElasticNode(t, "").addr}
	cfg := Config{Dispatchers: 1, Workers: 2, Builder: hybrid.Builder{}}
	if err := cfg.ConnectRemoteWorkers(addrs, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.DecommissionWorker(1); err == nil {
		t.Error("decommissioning an in-process slot succeeded")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainFailsWhenWorkerUnrecoverable: with recovery disabled, a
// crashed remote worker must fail the Drain barrier with a typed error
// instead of hanging it forever.
func TestDrainFailsWhenWorkerUnrecoverable(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 23, 800)
	victim := startElasticNode(t, "")
	ms := newMatchSet()
	cfg := Config{
		Dispatchers:  1,
		Workers:      1,
		Mergers:      1,
		Builder:      hybrid.Builder{},
		OnMatch:      ms.add,
		SpareWorkers: 1, // forces the hop table on without enabling recovery
	}
	if err := cfg.ConnectRemoteWorkers([]string{victim.addr}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	half := len(ops) / 2
	sys.SubmitAll(ops[:half])
	if err := sys.Drain(int64(half)); err != nil {
		t.Fatal(err)
	}
	victim.kill()
	sys.SubmitAll(ops[half:])
	done := make(chan error, 1)
	go func() { done <- sys.Drain(int64(len(ops))) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrWorkerUnrecoverable) {
			t.Errorf("Drain after unrecoverable crash: %v, want ErrWorkerUnrecoverable", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Drain hung on a dead worker with recovery disabled")
	}
	sys.Abort()
}

// opsTouchingWindow asserts the chaos workloads actually exercise all
// three op kinds (guards against a workload change hollowing the tests).
func TestMembershipWorkloadsExerciseAllOpKinds(t *testing.T) {
	_, ops := smallWorkload(t, workload.Q1, 21, 3000)
	var ins, del, obj int
	for _, op := range ops {
		switch op.Kind {
		case model.OpInsert:
			ins++
		case model.OpDelete:
			del++
		case model.OpObject:
			obj++
		}
	}
	if ins == 0 || del == 0 || obj == 0 {
		t.Fatalf("workload has ins=%d del=%d obj=%d; membership tests need all three", ins, del, obj)
	}
}

// TestPartialCellDepartureSurvivesReplay: a query registered in several
// cells of the same worker must survive a crash replay after just one
// of those cells migrates away. The migration used to log an
// unconditional DropQuery on the source's op log; the logged delete is
// whole-query (a node's index delete is cross-cell), so a post-crash
// replay erased the registrations the source still owned and silently
// lost their matches.
func TestPartialCellDepartureSurvivesReplay(t *testing.T) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 2000, 400, 23)
	victim, n1 := startElasticNode(t, ""), startElasticNode(t, "")
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
		Recovery: RecoveryConfig{
			Enabled:            true,
			CheckpointInterval: 100 * time.Millisecond,
			HeartbeatInterval:  50 * time.Millisecond,
			RedialTimeout:      20 * time.Second,
		},
	}
	if err := cfg.ConnectRemoteWorkers([]string{victim.addr, n1.addr}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// One query covering the whole space: it registers in every cell on
	// both workers, so any single-cell migration is a partial departure.
	const wideID = 900100
	wide := &model.Query{ID: wideID, Expr: model.And("partialdeparture"), Region: spec.Bounds}
	sys.Submit(model.Op{Kind: model.OpInsert, Query: wide})
	if err := sys.Drain(1); err != nil {
		t.Fatal(err)
	}
	// Migrate one of the victim's cells to the other worker and complete
	// the deferred extraction, exactly as a join rebalance would.
	gt := sys.gridT.Load()
	cell := -1
	for c := 0; c < gt.Grid().NumCells(); c++ {
		ws := gt.CellWorkers(c)
		if len(ws) == 1 && ws[0] == 0 {
			cell = c
			break
		}
	}
	if cell < 0 {
		t.Fatal("no cell owned solely by worker 0")
	}
	sys.adjustMu.Lock()
	moved, _, ok := sys.migrateShare(0, 1, cell)
	if !ok {
		sys.adjustMu.Unlock()
		t.Fatal("migrateShare failed")
	}
	if moved != 1 {
		sys.adjustMu.Unlock()
		t.Fatalf("migrated %d queries from cell %d, want the wide query alone", moved, cell)
	}
	deadline := time.Now().Add(10 * time.Second)
	for sys.hasPendingExtractsFor(0) {
		sys.processPendingExtracts()
		if time.Now().After(deadline) {
			sys.adjustMu.Unlock()
			t.Fatal("deferred extraction never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	sys.adjustMu.Unlock()
	// The replay plan must still carry the query: worker 0 holds it in
	// every cell it did not migrate.
	base, tail, _ := sys.hop(0).log.Replay()
	live := false
	for _, q := range base {
		if q.ID == wideID {
			live = true
		}
	}
	for _, e := range tail {
		if e.Op.Query != nil && e.Op.Query.ID == wideID {
			live = e.Op.Kind == model.OpInsert
		}
	}
	if !live {
		t.Fatal("partial cell departure dropped the query from the replay plan")
	}
	// Crash the victim, restart it state-less on the same port, and
	// publish a lattice of matching objects across the whole space: the
	// replay must restore the query in the victim's remaining cells.
	victim.kill()
	startElasticNode(t, victim.addr)
	var objs []model.Op
	nLat := 12
	for i := 0; i < nLat; i++ {
		for j := 0; j < nLat; j++ {
			objs = append(objs, model.Op{Kind: model.OpObject, Obj: &model.Object{
				ID:    uint64(910000 + i*nLat + j),
				Terms: []string{"partialdeparture"},
				Loc: geo.Point{
					X: spec.Bounds.Min.X + (float64(i)+0.5)/float64(nLat)*(spec.Bounds.Max.X-spec.Bounds.Min.X),
					Y: spec.Bounds.Min.Y + (float64(j)+0.5)/float64(nLat)*(spec.Bounds.Max.Y-spec.Bounds.Min.Y),
				},
			}})
		}
	}
	sys.SubmitAll(objs)
	if err := sys.Drain(int64(1 + len(objs))); err != nil {
		t.Fatal(err)
	}
	missing := 0
	for _, op := range objs {
		if !ms.has(wideID, op.Obj.ID) {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d whole-space matches missing after partial departure + crash replay", missing, len(objs))
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}

// topkMixFromWorkload clones a handful of the workload's own query
// shapes into top-k subscriptions — same regions and expressions, so
// they provably match the stream — under fresh ids that keep the
// boolean match oracle untouched.
func topkMixFromWorkload(ops []model.Op, k int, w time.Duration) []*model.Query {
	var out []*model.Query
	for _, op := range ops {
		if op.Kind != model.OpInsert {
			continue
		}
		q := *op.Query
		q.ID = 990001 + uint64(len(out))
		q.Subscriber = 42
		q.TopK = k
		q.Window = w
		out = append(out, &q)
		if len(out) == 6 {
			break
		}
	}
	return out
}

// submitTopKs registers the subscriptions and returns how many ops that
// submitted.
func submitTopKs(sys *System, qs []*model.Query) int64 {
	for _, q := range qs {
		sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	}
	return int64(len(qs))
}

// topkSets snapshots the reconciled global top-k membership per query.
func topkSets(sys *System, qs []*model.Query) map[uint64][]uint64 {
	out := make(map[uint64][]uint64, len(qs))
	for _, q := range qs {
		out[q.ID] = sys.TopKSet(q.ID)
	}
	return out
}

// assertSameTopKSets compares two per-query membership snapshots.
func assertSameTopKSets(t *testing.T, phase string, got, want map[uint64][]uint64) {
	t.Helper()
	for id, w := range want {
		if !equalIDs(got[id], w) {
			t.Errorf("%s: query %d top-k = %v, oracle has %v", phase, id, got[id], w)
		}
	}
}

// TestTopKCrashReplayMatchesOracle is the distributed-top-k recovery
// centerpiece: a worker node is kill-9'd mid-window under a top-k mix
// while publishing continues, a state-less replacement binds the same
// port, and the op-log replay (window refill entries, original publish
// stamps) must rebuild the node's window state so exactly that the
// reconciled TopKSet — compared before and after the first half expires
// — is identical to an all-in-process oracle run of the same fake-clock
// timeline. The boolean match set must stay exact too: refill replays
// suppress match emission, so queries inserted after a replayed object
// cannot fabricate matches the oracle never saw.
func TestTopKCrashReplayMatchesOracle(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 29, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	topks := topkMixFromWorkload(ops, 8, 2*time.Hour)
	if len(topks) < 4 {
		t.Fatalf("workload yielded only %d top-k shapes", len(topks))
	}
	start := time.Date(2026, 3, 1, 12, 0, 0, 0, time.UTC)
	half := len(ops) / 2
	chunk := half + 300 // the slice published concurrently with the crash
	if chunk > len(ops) {
		chunk = len(ops)
	}

	// Oracle run: all-in-process, same fake-clock timeline. The first
	// half publishes at t0 and a small chunk at t0+10m (where the
	// distributed run crashes); the mid snapshot at t0+15m still has the
	// first half in window — so a recovery that loses the crashed node's
	// window state shows up — and the end snapshot at t0+2h05m has only
	// it expired, so a replay that re-stamps publish instants shows up
	// too. The 2h window keeps decay from letting the crash-time chunk
	// crowd the first half off the boards before the mid snapshot.
	clkO := newFakeClock(start)
	oracle, err := New(Config{
		Dispatchers: 1, Workers: 2, Mergers: 2,
		Builder:    hybrid.Builder{},
		OnMatch:    func(model.Match) {},
		OnTopK:     func(TopKUpdate) {},
		Clock:      clkO.Now,
		WindowTick: time.Hour,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	n := submitTopKs(oracle, topks)
	if err := oracle.Drain(n); err != nil {
		t.Fatal(err)
	}
	oracle.SubmitAll(ops[:half])
	if err := oracle.Drain(n + int64(half)); err != nil {
		t.Fatal(err)
	}
	clkO.Advance(10 * time.Minute)
	oracle.SubmitAll(ops[half:chunk])
	if err := oracle.Drain(n + int64(chunk)); err != nil {
		t.Fatal(err)
	}
	clkO.Advance(5 * time.Minute)
	oracle.AdvanceWindows()
	wantMid := topkSets(oracle, topks)
	oracle.SubmitAll(ops[chunk:])
	if err := oracle.Drain(n + int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	clkO.Advance(110 * time.Minute)
	oracle.AdvanceWindows()
	wantEnd := topkSets(oracle, topks)
	if err := oracle.Close(); err != nil {
		t.Fatal(err)
	}
	// Non-vacuity: the mid snapshot must still rank first-half objects —
	// the entries a careless recovery would lose — and expiry must
	// change the sets between the snapshots.
	firstHalf := make(map[uint64]bool)
	for _, op := range ops[:half] {
		if op.Kind == model.OpObject {
			firstHalf[op.Obj.ID] = true
		}
	}
	oldInMid, changed := 0, 0
	for id, s := range wantMid {
		for _, msg := range s {
			if firstHalf[msg] {
				oldInMid++
			}
		}
		if !equalIDs(s, wantEnd[id]) {
			changed++
		}
	}
	if oldInMid == 0 || changed == 0 {
		t.Fatalf("vacuous: %d first-half members in mid sets, %d sets changed by expiry", oldInMid, changed)
	}

	// Distributed run: two remote nodes, same timeline, with a kill-9 of
	// one worker between the phases. The victim is picked below, after
	// the assignment exists: whichever worker owns the most first-half
	// mid-snapshot members, so the crash provably destroys window state
	// the snapshots depend on.
	clk := newFakeClock(start)
	nodes := []*elasticNode{startElasticNode(t, ""), startElasticNode(t, "")}
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 1,
		Workers:     2,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		OnMatch:     ms.add,
		OnTopK:      func(TopKUpdate) {},
		Clock:       clk.Now,
		WindowTick:  time.Hour,
		Recovery: RecoveryConfig{
			Enabled:            true,
			CheckpointInterval: 100 * time.Millisecond,
			HeartbeatInterval:  50 * time.Millisecond,
			RedialTimeout:      20 * time.Second,
		},
	}
	if err := cfg.ConnectRemoteWorkers([]string{nodes[0].addr, nodes[1].addr}, sample, wire.Backoff{Attempts: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	submitTopKs(sys, topks)
	if err := sys.Drain(n); err != nil {
		t.Fatal(err)
	}
	// Victim selection doubles as the sharper non-vacuity check: at least
	// one first-half mid-snapshot member must route to the worker we
	// kill — those are the window entries only the checkpoint's refill
	// retention can bring back. Killing the heavier owner maximizes what
	// the crash destroys.
	objByID := make(map[uint64]*model.Object)
	for _, op := range ops {
		if op.Kind == model.OpObject {
			objByID[op.Obj.ID] = op.Obj
		}
	}
	owned := make([]int, len(nodes))
	for _, s := range wantMid {
		for _, msg := range s {
			if !firstHalf[msg] {
				continue
			}
			for _, w := range sys.Assignment().RouteObject(objByID[msg]) {
				owned[w]++
			}
		}
	}
	victimTask := 0
	for w, c := range owned {
		if c > owned[victimTask] {
			victimTask = w
		}
	}
	if owned[victimTask] == 0 {
		t.Fatal("vacuous: no first-half mid-snapshot member routes to any worker")
	}
	victim := nodes[victimTask]
	sys.SubmitAll(ops[:half])
	if err := sys.Drain(n + int64(half)); err != nil {
		t.Fatal(err)
	}
	// Wait until a checkpoint has folded the first half below the
	// watermark on the victim's log: the replay must then rebuild its
	// window state from retained refill entries, not from a raw tail.
	target := sys.hop(victimTask).log.Seq()
	deadline := time.Now().Add(10 * time.Second)
	for sys.hop(victimTask).log.Watermark() < target {
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint never covered the first half (watermark %d < %d)",
				sys.hop(victimTask).log.Watermark(), target)
		}
		time.Sleep(10 * time.Millisecond)
	}
	clk.Advance(10 * time.Minute)
	published := make(chan struct{})
	go func() {
		defer close(published)
		sys.SubmitAll(ops[half:chunk])
	}()
	victim.kill()
	startElasticNode(t, victim.addr)
	<-published
	if err := sys.Drain(n + int64(chunk)); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Minute)
	sys.AdvanceWindows()
	gotMid := topkSets(sys, topks)
	sys.SubmitAll(ops[chunk:])
	if err := sys.Drain(n + int64(len(ops))); err != nil {
		t.Fatal(err)
	}
	clk.Advance(110 * time.Minute)
	sys.AdvanceWindows()
	gotEnd := topkSets(sys, topks)
	assertExact(t, ms, want)
	assertSameTopKSets(t, "mid-window", gotMid, wantMid)
	assertSameTopKSets(t, "post-expiry", gotEnd, wantEnd)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
}
