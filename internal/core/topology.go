package core

import (
	"context"
	"time"

	"ps2stream/internal/model"
	"ps2stream/internal/stream"
	"ps2stream/internal/window"
)

// Stream names of the PS2Stream topology (Figure 1).
const (
	streamInput   = "ops"     // spout -> dispatchers
	streamToWork  = "towork"  // dispatchers -> workers (direct)
	streamMatches = "matches" // workers -> mergers (fields)
)

// buildTopology assembles spout → dispatcher → worker → merger.
func (s *System) buildTopology(ctx context.Context) *stream.Topology {
	t := stream.NewTopology(s.cfg.QueueCap)

	// Input spout: drains the Submit channel.
	t.AddSpout("input", func(task int) stream.Spout {
		return stream.SpoutFunc(func(c stream.Collector) bool {
			select {
			case env, ok := <-s.input:
				if !ok {
					return false
				}
				c.Emit(streamInput, stream.Tuple{Value: env})
				return true
			case <-ctx.Done():
				return false
			}
		})
	}, 1, streamInput)

	// Dispatchers: route by the current assignment. The input stream is
	// fields-grouped on the subscription id so an insert and a later
	// delete of the same query always pass through the same dispatcher in
	// order — under shuffle grouping a delete can overtake its insert on
	// another dispatcher task, leaking the query (and its H2 counts)
	// forever. Objects carry no ordering constraint and spread by id.
	t.AddBolt("dispatcher", func(task int) stream.Bolt {
		return stream.BoltFunc(func(tu stream.Tuple, c stream.Collector) {
			s.dispatch(tu.Value.(opEnvelope), c)
		})
	}, s.cfg.Dispatchers, streamToWork).Fields(streamInput, func(tu stream.Tuple) uint64 {
		env := tu.Value.(opEnvelope)
		if env.op.Kind == model.OpObject {
			return env.op.Obj.ID * 0x9E3779B97F4A7C15
		}
		return env.op.Query.ID * 0x9E3779B97F4A7C15
	})

	// Workers: maintain GI2, match objects.
	t.AddBolt("worker", func(task int) stream.Bolt {
		return stream.BoltFunc(func(tu stream.Tuple, c stream.Collector) {
			s.work(task, tu.Value.(opEnvelope), c)
		})
	}, s.cfg.Workers, streamMatches).Direct(streamToWork)

	// Mergers: deduplicate and deliver.
	t.AddBolt("merger", func(task int) stream.Bolt {
		return newMerger(s)
	}, s.cfg.Mergers).Fields(streamMatches, func(tu stream.Tuple) uint64 {
		me := tu.Value.(matchEnvelope)
		return me.m.QueryID*0x9E3779B97F4A7C15 ^ me.m.ObjectID
	})
	return t
}

// dispatch routes one operation (dispatcher bolt body).
func (s *System) dispatch(env opEnvelope, c stream.Collector) {
	a := s.Assignment()
	s.processed.Inc()
	s.tput.Inc()
	var targets []int
	switch env.op.Kind {
	case model.OpObject:
		targets = a.RouteObject(env.op.Obj)
		if gt := s.gridT.Load(); gt != nil && s.cellObjects != nil {
			if id := gt.Grid().CellOf(env.op.Obj.Loc); id < len(s.cellObjects) {
				s.cellObjects[id].Add(1)
			}
		}
		if len(targets) == 0 {
			// "The object can be discarded if it contains no terms in
			// H2" — still count its latency as handled. Latency is
			// measured on the configured clock, the same domain the
			// envelope was stamped in.
			s.discarded.Inc()
			s.latency.Load().Observe(s.now().Sub(env.t0))
			return
		}
		for _, w := range targets {
			s.winObjects[w].Add(1)
		}
	case model.OpInsert:
		targets = a.RouteQuery(env.op.Query, true)
		for _, w := range targets {
			s.winInserts[w].Add(1)
		}
	case model.OpDelete:
		targets = s.routeDelete(env.op.Query)
		for _, w := range targets {
			s.winDeletes[w].Add(1)
		}
	}
	for _, w := range targets {
		s.enqueued[w].Add(1)
		c.EmitDirect(streamToWork, w, stream.Tuple{Value: env})
	}
}

// routeDelete routes a deletion through the dual assignment when a global
// repartition is in flight, otherwise through the current assignment.
func (s *System) routeDelete(q *model.Query) []int {
	return s.Assignment().RouteQuery(q, false)
}

// work processes one operation on worker `task` (worker bolt body).
// Boolean subscriptions emit matches to the mergers; top-k subscriptions
// route matches into the worker's window store instead, and the resulting
// local-membership deltas are reconciled on the global top-k board (still
// under the worker lock, so deltas reach the board in the order the state
// changed).
func (s *System) work(task int, env opEnvelope, c stream.Collector) {
	if s.cfg.PerTupleWork > 0 {
		spin(s.cfg.PerTupleWork)
	}
	ws := s.workers[task]
	ws.mu.Lock()
	var deltas []window.Delta
	switch env.op.Kind {
	case model.OpInsert:
		ws.ix.Insert(env.op.Query)
		if env.op.Query.IsTopK() {
			deltas = ws.win.AddSub(env.op.Query, s.now())
		}
	case model.OpDelete:
		ws.ix.Delete(env.op.Query.ID)
		deltas = ws.win.RemoveSub(env.op.Query.ID)
	case model.OpObject:
		e := window.Entry{
			MsgID: env.op.Obj.ID,
			Terms: env.op.Obj.Terms,
			Loc:   env.op.Obj.Loc,
			At:    env.t0,
		}
		now := s.now() // one clock read per object, shared by all offers
		ws.ix.Match(env.op.Obj, func(q *model.Query) {
			if q.IsTopK() {
				deltas = append(deltas, ws.win.Offer(q, e, now)...)
				return
			}
			me := matchEnvelope{
				m: model.Match{
					QueryID:    q.ID,
					Subscriber: q.Subscriber,
					ObjectID:   env.op.Obj.ID,
					Worker:     task,
				},
				t0: env.t0,
			}
			c.Emit(streamMatches, stream.Tuple{Value: me})
		})
		if ws.win.SubCount() > 0 {
			ws.win.Observe(e)
		}
	}
	s.board.Apply(deltas)
	ws.mu.Unlock()
	s.doneOps[task].Add(1)
	s.latency.Load().Observe(s.now().Sub(env.t0))
}

// spin busy-waits for roughly d; sleeping is too coarse at microsecond
// scale and would yield the worker's core.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// merger deduplicates matches with a bounded FIFO window and delivers
// them. One instance per merger task; no locking needed for its own state.
type merger struct {
	s     *System
	seen  map[[2]uint64]struct{}
	order [][2]uint64
	next  int
}

func newMerger(s *System) *merger {
	return &merger{
		s:     s,
		seen:  make(map[[2]uint64]struct{}, s.cfg.DedupWindow),
		order: make([][2]uint64, 0, s.cfg.DedupWindow),
	}
}

// Process implements stream.Bolt.
func (m *merger) Process(tu stream.Tuple, _ stream.Collector) {
	me := tu.Value.(matchEnvelope)
	key := [2]uint64{me.m.QueryID, me.m.ObjectID}
	if _, dup := m.seen[key]; dup {
		m.s.duplicates.Inc()
		return
	}
	if len(m.order) < cap(m.order) {
		m.order = append(m.order, key)
	} else {
		delete(m.seen, m.order[m.next])
		m.order[m.next] = key
		m.next = (m.next + 1) % len(m.order)
	}
	m.seen[key] = struct{}{}
	m.s.matches.Inc()
	m.s.matchLat.Load().Observe(m.s.now().Sub(me.t0))
	if m.s.cfg.OnMatch != nil {
		m.s.cfg.OnMatch(me.m)
	}
}
