package core

import (
	"context"
	"time"

	"ps2stream/internal/dedup"
	"ps2stream/internal/model"
	"ps2stream/internal/stream"
	"ps2stream/internal/window"
)

// Stream names of the PS2Stream topology (Figure 1).
const (
	streamInput   = "ops"     // spout -> dispatchers
	streamToWork  = "towork"  // dispatchers -> workers (direct)
	streamMatches = "matches" // workers -> mergers (fields)
)

// buildTopology assembles spout → dispatcher → worker → merger. Every hop
// moves batches of up to Config.BatchSize tuples: the spout drains
// whatever Submit has queued into one collector pass, dispatchers fan out
// one batch per target worker, workers take their index/window locks once
// per batch, and mergers deduplicate batch-wise.
func (s *System) buildTopology(ctx context.Context) *stream.Topology {
	// The stream engine's queue capacity is denominated in batches; divide
	// so Config.QueueCap keeps bounding in-flight *tuples* per task queue
	// regardless of BatchSize.
	qc := s.cfg.QueueCap / s.cfg.BatchSize
	if qc < 1 {
		qc = 1
	}
	t := stream.NewTopology(qc)
	t.SetBatchSize(s.cfg.BatchSize)

	// Input spout: drains the Submit channel. After a blocking read it
	// greedily takes whatever else is already queued (up to one batch) and
	// flushes, so batches fill under load without holding tuples back
	// while the spout waits for input — Flush() latency semantics are
	// unchanged from the unbatched engine.
	t.AddSpout("input", func(task int) stream.Spout {
		return stream.SpoutFunc(func(c stream.Collector) bool {
			select {
			case env, ok := <-s.input:
				if !ok {
					return false
				}
				c.Emit(streamInput, stream.Tuple{Value: env})
				alive := true
			drain:
				for n := 1; n < s.cfg.BatchSize; n++ {
					select {
					case env, ok := <-s.input:
						if !ok {
							alive = false
							break drain
						}
						c.Emit(streamInput, stream.Tuple{Value: env})
					default:
						break drain
					}
				}
				c.Flush()
				return alive
			case <-ctx.Done():
				return false
			}
		})
	}, 1, streamInput)

	// Dispatchers: route by the current assignment. The input stream is
	// fields-grouped on the subscription id so an insert and a later
	// delete of the same query always pass through the same dispatcher in
	// order — under shuffle grouping a delete can overtake its insert on
	// another dispatcher task, leaking the query (and its H2 counts)
	// forever. Objects carry no ordering constraint and spread by id.
	t.AddBolt("dispatcher", func(task int) stream.Bolt {
		return dispatcherBolt{s: s}
	}, s.cfg.Dispatchers, streamToWork).Fields(streamInput, func(tu stream.Tuple) uint64 {
		env := tu.Value.(opEnvelope)
		return env.op.RouteHash()
	})

	// Workers: maintain GI2, match objects. An out-of-process slot
	// (Config.RemoteWorkers, or a spare slot claimable by AddWorker)
	// gets a hop-backed bolt that forwards op batches across the
	// transport; its matches re-enter through the companion spout
	// below. Parallelism covers the spare slots so a runtime join
	// needs no topology change.
	t.AddBolt("worker", func(task int) stream.Bolt {
		if h := s.hop(task); h != nil {
			return &remoteWorkerBolt{s: s, task: task, hop: h}
		}
		return workerBolt{s: s, task: task}
	}, s.totalSlots(), streamMatches).Direct(streamToWork)

	// Remote workers' return streams: one spout task per out-of-process
	// slot (including unclaimed spares, whose spouts sleep until
	// AddWorker installs a session), feeding the wire's match batches
	// into the merger stream.
	if remote := s.remoteWorkerTasks(); len(remote) > 0 && s.hops != nil {
		t.AddSpout("wmatches", func(task int) stream.Spout {
			return &remoteMatchSpout{s: s, task: remote[task], hop: s.hops[remote[task]], ctx: ctx}
		}, len(remote), streamMatches)
	}

	// Mergers: deduplicate and deliver. A task listed in
	// Config.RemoteMergers forwards its hash share across the wire
	// instead; the remote node dedups and delivers.
	t.AddBolt("merger", func(task int) stream.Bolt {
		if tr := s.cfg.RemoteMergers[task]; tr != nil {
			return &remoteMergerBolt{task: task, tr: tr}
		}
		return newMerger(s)
	}, s.cfg.Mergers).Fields(streamMatches, func(tu stream.Tuple) uint64 {
		me := tu.Value.(matchEnvelope)
		return me.m.QueryID*0x9E3779B97F4A7C15 ^ me.m.ObjectID
	})
	return t
}

// dispatcherBolt routes operations batch-wise: the assignment is loaded
// once per received batch and the collector accumulates one outgoing
// batch per target worker. Every batch routes inside a routeFence
// read-side section so migrations can fence out in-flight batches before
// snapshotting drain barriers (see migrateShare).
type dispatcherBolt struct{ s *System }

// ProcessBatch implements stream.BatchBolt.
func (d dispatcherBolt) ProcessBatch(ts []stream.Tuple, c stream.Collector) {
	d.s.routeFence.Enter()
	d.s.dispatchBatch(ts, c)
	d.s.routeFence.Exit()
}

// Process implements stream.Bolt (single-tuple fallback; the engine
// prefers ProcessBatch).
func (d dispatcherBolt) Process(tu stream.Tuple, c stream.Collector) {
	d.s.routeFence.Enter()
	d.s.dispatchBatch([]stream.Tuple{tu}, c)
	d.s.routeFence.Exit()
}

// dispatchBatch routes one batch of operations (dispatcher bolt body).
// The routing structures are re-read per operation — they are single
// atomic loads, and holding one snapshot across a whole batch would
// stretch the migration-flip race window from one tuple to BatchSize
// tuples of stale routing.
func (s *System) dispatchBatch(ts []stream.Tuple, c stream.Collector) {
	// Stage timing uses the wall clock, not cfg.Clock: it measures real
	// processing cost per batch, and tests' fake clocks must not skew it.
	stageStart := time.Now()
	defer func() { s.stageDisp.Observe(time.Since(stageStart)) }()
	s.processed.Add(int64(len(ts)))
	s.tput.Add(int64(len(ts)))
	for i := range ts {
		env := ts[i].Value.(opEnvelope)
		a := s.Assignment()
		var targets []int
		switch env.op.Kind {
		case model.OpObject:
			targets = a.RouteObject(env.op.Obj)
			if gt := s.gridT.Load(); gt != nil && s.cellObjects != nil {
				if id := gt.Grid().CellOf(env.op.Obj.Loc); id < len(s.cellObjects) {
					s.cellObjects[id].Add(1)
				}
			}
			if len(targets) == 0 {
				// "The object can be discarded if it contains no terms in
				// H2" — still count its latency as handled. Latency is
				// measured on the configured clock, the same domain the
				// envelope was stamped in.
				s.discarded.Inc()
				s.latency.Load().Observe(s.now().Sub(env.t0))
				continue
			}
			for _, w := range targets {
				s.winObjects[w].Add(1)
			}
		case model.OpInsert:
			// Register before the fan-out: the input stream is
			// fields-grouped on the query id, so an insert and its later
			// delete pass through here in order, and every delta a worker
			// (local or remote) can produce postdates the registration.
			if env.op.Query.IsTopK() {
				s.board.register(env.op.Query.ID)
			}
			targets = a.RouteQuery(env.op.Query, true)
			for _, w := range targets {
				s.winInserts[w].Add(1)
			}
		case model.OpDelete:
			s.board.unregister(env.op.Query.ID)
			targets = s.routeDelete(env.op.Query)
			for _, w := range targets {
				s.winDeletes[w].Add(1)
			}
		}
		for _, w := range targets {
			s.enqueued[w].Add(1)
			c.EmitDirect(streamToWork, w, ts[i])
		}
	}
}

// routeDelete routes a deletion through the dual assignment when a global
// repartition is in flight, otherwise through the current assignment.
func (s *System) routeDelete(q *model.Query) []int {
	return s.Assignment().RouteQuery(q, false)
}

// workerBolt processes operations on one worker, a whole batch per
// index-lock acquisition.
type workerBolt struct {
	s    *System
	task int
}

// ProcessBatch implements stream.BatchBolt.
func (w workerBolt) ProcessBatch(ts []stream.Tuple, c stream.Collector) {
	w.s.workBatch(w.task, ts, c)
}

// Process implements stream.Bolt (single-tuple fallback; the engine
// prefers ProcessBatch).
func (w workerBolt) Process(tu stream.Tuple, c stream.Collector) {
	w.s.workBatch(w.task, []stream.Tuple{tu}, c)
}

// workBatch processes one batch of operations on worker `task` (worker
// bolt body). The worker lock is taken once for the whole batch, the
// clock is read once, and top-k window deltas accumulate in a per-worker
// scratch buffer that is handed to the global board in one Apply — the
// per-message costs the batch amortises. Boolean subscriptions emit
// matches to the mergers (the collector batches those in turn); top-k
// subscriptions route matches into the worker's window store, and the
// resulting local-membership deltas are reconciled on the global top-k
// board (still under the worker lock, so deltas reach the board in the
// order the state changed).
func (s *System) workBatch(task int, ts []stream.Tuple, c stream.Collector) {
	stageStart := time.Now() // wall clock; see dispatchBatch
	defer func() { s.stageWork.Observe(time.Since(stageStart)) }()
	if s.cfg.PerTupleWork > 0 {
		spin(time.Duration(len(ts)) * s.cfg.PerTupleWork)
	}
	// Tally the batch's op mix for the adaptive controller's worker-fed
	// load windows: one atomic add per kind per batch, not per tuple.
	var nObj, nIns, nDel int64
	for i := range ts {
		switch ts[i].Value.(opEnvelope).op.Kind {
		case model.OpObject:
			nObj++
		case model.OpInsert:
			nIns++
		case model.OpDelete:
			nDel++
		}
	}
	if nObj > 0 {
		s.workObjects[task].Add(nObj)
	}
	if nIns > 0 {
		s.workInserts[task].Add(nIns)
	}
	if nDel > 0 {
		s.workDeletes[task].Add(nDel)
	}
	ws := s.workers[task]
	var emitted int64 // match envelopes emitted for this batch
	ws.mu.Lock()
	deltas := ws.deltaScratch[:0]
	now := s.now() // one clock read per batch, shared by all offers in it
	for i := range ts {
		env := ts[i].Value.(opEnvelope)
		switch env.op.Kind {
		case model.OpInsert:
			ws.ix.Insert(env.op.Query)
			if env.op.Query.IsTopK() {
				deltas = append(deltas, ws.win.AddSub(env.op.Query, now)...)
			}
		case model.OpDelete:
			ws.ix.Delete(env.op.Query.ID)
			deltas = append(deltas, ws.win.RemoveSub(env.op.Query.ID)...)
		case model.OpObject:
			e := window.Entry{
				MsgID: env.op.Obj.ID,
				Terms: env.op.Obj.Terms,
				Loc:   env.op.Obj.Loc,
				At:    env.t0,
			}
			ws.ix.Match(env.op.Obj, func(q *model.Query) {
				if q.IsTopK() {
					deltas = ws.win.OfferInto(deltas, q, e, now)
					return
				}
				me := matchEnvelope{
					m: model.Match{
						QueryID:    q.ID,
						Subscriber: q.Subscriber,
						ObjectID:   env.op.Obj.ID,
						Worker:     task,
					},
					t0: env.t0,
				}
				emitted++
				c.Emit(streamMatches, stream.Tuple{Value: me})
			})
			if ws.win.SubCount() > 0 {
				ws.win.Observe(e)
			}
		}
	}
	s.board.Apply(deltas)
	ws.deltaScratch = deltas[:0]
	ws.mu.Unlock()
	if emitted > 0 {
		// Counted before doneOps so the Drain barrier's emitted total is
		// final once the worker queues read as drained.
		s.matchesEmitted.Add(emitted)
	}
	s.doneOps[task].Add(int64(len(ts)))
	end := s.now()
	h := s.latency.Load()
	for i := range ts {
		h.Observe(end.Sub(ts[i].Value.(opEnvelope).t0))
	}
}

// spin busy-waits for roughly d; sleeping is too coarse at microsecond
// scale and would yield the worker's core.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// merger deduplicates matches with a bounded FIFO window and delivers
// them, a batch at a time. One instance per merger task; no locking needed
// for its own state.
type merger struct {
	s   *System
	win *dedup.Window
}

func newMerger(s *System) *merger {
	return &merger{s: s, win: dedup.NewWindow(s.cfg.DedupWindow)}
}

// ProcessBatch implements stream.BatchBolt: the whole batch is deduped
// under one clock read.
func (m *merger) ProcessBatch(ts []stream.Tuple, _ stream.Collector) {
	stageStart := time.Now() // wall clock; see dispatchBatch
	now := m.s.now()
	for i := range ts {
		m.processOne(ts[i].Value.(matchEnvelope), now)
	}
	m.s.stageMerge.Observe(time.Since(stageStart))
}

// Process implements stream.Bolt (single-tuple fallback; the engine
// prefers ProcessBatch). It shares ProcessBatch's code path so the
// clock is read at the same point regardless of which path the engine
// picks — a fallback that re-read the clock per tuple would skew the
// latency histogram against batched runs.
func (m *merger) Process(tu stream.Tuple, c stream.Collector) {
	m.ProcessBatch([]stream.Tuple{tu}, c)
}

func (m *merger) processOne(me matchEnvelope, now time.Time) {
	if !m.win.Observe([2]uint64{me.m.QueryID, me.m.ObjectID}) {
		m.s.duplicates.Inc()
		return
	}
	m.s.matchLat.Load().Observe(now.Sub(me.t0))
	if m.s.cfg.OnMatch != nil {
		// Deliver before counting: the Drain barrier reads the counter,
		// so a Flush returning guarantees the callback has completed.
		m.s.cfg.OnMatch(me.m)
	}
	m.s.matches.Inc()
}
