package core

import (
	"context"
	"sort"
	"testing"

	"ps2stream/internal/model"
	"ps2stream/internal/workload"
)

// runBatched drives a fixed seeded workload — µ standing subscriptions,
// then a burst of published objects — through a system with the given
// batch size and returns the delivered match set.
func runBatched(t *testing.T, batchSize int) ([][2]uint64, int) {
	t.Helper()
	spec := workload.TweetsUS()
	const mu, nObjects = 600, 3000
	sample := workload.Sample(spec, workload.Q1, 2000, 400, 77)
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 2,
		Workers:     4,
		Mergers:     2,
		BatchSize:   batchSize,
		OnMatch:     ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: mu, Seed: 77})
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	// Barrier: all subscriptions must be applied on the workers before
	// any object is published, so matching is deterministic across runs
	// regardless of batch size. A stuck pipeline surfaces as the package
	// test timeout.
	sys.Quiesce(int64(len(warm)))
	gen := workload.NewGenerator(spec, 770)
	submitted := int64(len(warm))
	for i := 0; i < nObjects; i++ {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: gen.Object()})
		submitted++
	}
	sys.Quiesce(submitted)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([][2]uint64, 0, len(ms.seen))
	for k := range ms.seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, len(out)
}

// TestBatchedPublishMatchesUnbatched pins the batched pipeline's
// correctness: the same seeded workload must produce the identical match
// set whether tuples move one at a time (BatchSize 1) or in batches.
func TestBatchedPublishMatchesUnbatched(t *testing.T) {
	base, nBase := runBatched(t, 1)
	for _, bs := range []int{8, DefaultBatchSize} {
		got, n := runBatched(t, bs)
		if n != nBase {
			t.Fatalf("BatchSize %d delivered %d distinct matches, unbatched delivered %d", bs, n, nBase)
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("BatchSize %d match set diverges at %d: got %v, want %v", bs, i, got[i], base[i])
			}
		}
	}
	if nBase == 0 {
		t.Fatal("workload produced no matches; the equivalence check is vacuous")
	}
}
