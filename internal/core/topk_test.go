package core

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/window"
	"ps2stream/internal/workload"
)

// fakeClock is a mutex-guarded manual clock for deterministic window
// tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock(t time.Time) *fakeClock { return &fakeClock{t: t} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// updateLog records TopKUpdate deliveries and can replay them into the
// implied current membership set.
type updateLog struct {
	mu  sync.Mutex
	ups []TopKUpdate
}

func (l *updateLog) add(u TopKUpdate) {
	l.mu.Lock()
	l.ups = append(l.ups, u)
	l.mu.Unlock()
}

func (l *updateLog) all() []TopKUpdate {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]TopKUpdate(nil), l.ups...)
}

// currentSet replays the update stream into the membership it implies.
func (l *updateLog) currentSet(qid uint64) []uint64 {
	cur := make(map[uint64]bool)
	for _, u := range l.all() {
		if u.QueryID != qid {
			continue
		}
		if u.Entered {
			cur[u.MsgID] = true
		} else {
			delete(cur, u.MsgID)
		}
	}
	out := make([]uint64, 0, len(cur))
	for id := range cur {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkAlternation fails if any (query, message) pair sees two Entered
// without a Left between them or vice versa — i.e. a lost or duplicated
// update.
func (l *updateLog) checkAlternation(t *testing.T) {
	t.Helper()
	state := make(map[[2]uint64]bool)
	for _, u := range l.all() {
		key := [2]uint64{u.QueryID, u.MsgID}
		if state[key] == u.Entered {
			kind := "Left"
			if u.Entered {
				kind = "Entered"
			}
			t.Fatalf("duplicated %s update for query %d message %d", kind, u.QueryID, u.MsgID)
		}
		state[key] = u.Entered
	}
}

// bruteTopK is the reference: the query's k best live matching messages.
func bruteTopK(q *model.Query, objs []*model.Object, at map[uint64]time.Time, now time.Time) []uint64 {
	cutoff := now.Add(-q.Window)
	type cand struct {
		id uint64
		s  window.Score
	}
	var cands []cand
	for _, o := range objs {
		ts := at[o.ID]
		if !ts.After(cutoff) || !q.Matches(o) {
			continue
		}
		e := window.Entry{MsgID: o.ID, Terms: o.Terms, Loc: o.Loc, At: ts}
		cands = append(cands, cand{id: o.ID, s: window.DefaultScorer.Score(q, e)})
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].s.Better(cands[j].s, cands[i].id, cands[j].id)
	})
	if len(cands) > q.TopK {
		cands = cands[:q.TopK]
	}
	ids := make([]uint64, 0, len(cands))
	for _, c := range cands {
		ids = append(ids, c.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// drain waits until every submitted op has been routed and every worker
// queue is empty.
func drain(sys *System, submitted int64) {
	for sys.Processed() < submitted {
		time.Sleep(time.Millisecond)
	}
	for {
		done := true
		for i := range sys.workers {
			if sys.doneOps[i].Load() < sys.enqueued[i].Load() {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Deltas can reach the board out of order across goroutines: a Left
// overtaking its Entered must net to nothing, not leave a phantom
// candidate squatting in the global top-k.
func TestBoardOutOfOrderLeftThenEntered(t *testing.T) {
	var got []TopKUpdate
	b := newTopKBoard(func(u TopKUpdate) { got = append(got, u) })
	b.register(1)
	left := window.Delta{QueryID: 1, MsgID: 9, K: 3, Rank: 5, Rel: 0.5}
	entered := left
	entered.Entered = true
	b.Apply([]window.Delta{left})
	if len(got) != 0 {
		t.Fatalf("orphan Left delivered updates: %+v", got)
	}
	b.Apply([]window.Delta{entered})
	if len(got) != 0 {
		t.Fatalf("settled debt delivered updates: %+v", got)
	}
	if set := b.set(1); len(set) != 0 {
		t.Fatalf("phantom candidate survives: %v", set)
	}
	// A genuine Entered afterwards still works.
	b.Apply([]window.Delta{entered})
	if len(got) != 1 || !got[0].Entered || got[0].MsgID != 9 {
		t.Fatalf("real membership not delivered: %+v", got)
	}
}

// Deltas racing an Unsubscribe — local Apply calls, remote ApplyRemote
// frames, and the unregister itself on separate goroutines — must
// neither corrupt the board (run with -race) nor revive a retired
// query as a dead boardQuery.
func TestBoardApplyUnsubscribeRace(t *testing.T) {
	b := newTopKBoard(func(TopKUpdate) {})
	const queries = 8
	for q := uint64(1); q <= queries; q++ {
		b.register(q)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := uint64(i%queries + 1)
				d := window.Delta{QueryID: q, MsgID: uint64(i), K: 3, Rank: float64(i), Rel: 0.5, Entered: true}
				if g%2 == 0 {
					b.Apply([]window.Delta{d})
				} else {
					b.ApplyRemote(g, 1, []window.Delta{d})
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for q := uint64(1); q <= queries; q++ {
			b.unregister(q)
		}
	}()
	wg.Wait()
	// Every query is unsubscribed now; stragglers must drop at the door.
	for q := uint64(1); q <= queries; q++ {
		b.Apply([]window.Delta{{QueryID: q, MsgID: 9999, K: 3, Rank: 1, Rel: 1, Entered: true}})
		b.ApplyRemote(1, 1, []window.Delta{{QueryID: q, MsgID: 9998, K: 3, Rank: 1, Rel: 1, Entered: true}})
		if set := b.set(q); len(set) != 0 {
			t.Errorf("query %d revived after unsubscribe: %v", q, set)
		}
	}
	b.mu.Lock()
	if len(b.qs) != 0 {
		t.Errorf("%d dead boardQueries survive the unsubscribes", len(b.qs))
	}
	b.mu.Unlock()
}

// The full topology must deliver exactly the brute-force top-k evolution
// for a deterministic publish sequence under a fake clock, including
// expiry past the window.
func TestTopKEndToEndDeterministic(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 77, 0)
	clk := newFakeClock(time.Date(2026, 3, 1, 9, 0, 0, 0, time.UTC))
	log := &updateLog{}
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: hybrid.Builder{},
		Clock:   clk.Now,
		OnTopK:  log.add,
		// A long tick keeps the background sweep out of the test's way;
		// expiry is driven explicitly via AdvanceWindows.
		WindowTick: time.Hour,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	center := sample.Bounds.Center()
	q := &model.Query{
		ID:   1,
		Expr: model.Or("topka", "topkb"),
		// Span many grid cells so several workers hold the subscription.
		Region: geo.RectAround(center, 400, 400),
		TopK:   3,
		Window: time.Minute,
	}
	var submitted int64
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	submitted++
	drain(sys, submitted)

	// Publish a deterministic spiral of matching and non-matching
	// messages, 2s apart on the fake clock.
	var objs []*model.Object
	at := make(map[uint64]time.Time)
	terms := [][]string{
		{"topka"}, {"topkb", "noise"}, {"topka", "topkb"},
		{"unrelated"}, {"topka", "extra"}, {"topkb"},
	}
	for i := 0; i < 30; i++ {
		clk.Advance(2 * time.Second)
		dx := float64(i%7-3) * 0.3
		dy := float64(i%5-2) * 0.3
		o := &model.Object{
			ID:    uint64(100 + i),
			Terms: terms[i%len(terms)],
			Loc:   geo.Point{X: center.X + dx, Y: center.Y + dy},
		}
		objs = append(objs, o)
		at[o.ID] = clk.Now()
		sys.Submit(model.Op{Kind: model.OpObject, Obj: o})
		submitted++

		if i%6 == 5 {
			drain(sys, submitted)
			sys.AdvanceWindows()
			want := bruteTopK(q, objs, at, clk.Now())
			if got := sys.TopKSet(q.ID); !equalIDs(got, want) {
				t.Fatalf("step %d: top-k %v, brute force %v", i, got, want)
			}
			if got := log.currentSet(q.ID); !equalIDs(got, want) {
				t.Fatalf("step %d: update stream implies %v, brute force %v", i, got, want)
			}
		}
	}
	// Everything must expire out of the window.
	clk.Advance(2 * time.Minute)
	sys.AdvanceWindows()
	if got := sys.TopKSet(q.ID); len(got) != 0 {
		t.Fatalf("entries survived past the window: %v", got)
	}
	if got := log.currentSet(q.ID); len(got) != 0 {
		t.Fatalf("update stream leaves residue after expiry: %v", got)
	}
	log.checkAlternation(t)
}

// A top-k subscription's window state must move with its gridt cell: the
// membership survives the hand-off with no lost or duplicated updates,
// and the new owner repairs expiries from the migrated ring.
func TestTopKMigrationHandoff(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 51, 0)
	clk := newFakeClock(time.Date(2026, 3, 1, 10, 0, 0, 0, time.UTC))
	log := &updateLog{}
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder:    hybrid.Builder{},
		Clock:      clk.Now,
		OnTopK:     log.add,
		WindowTick: time.Hour,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	gt := sys.gridT.Load()
	center := sample.Bounds.Center()
	cell := gt.Grid().CellOf(center)
	if gt.IsTextCell(cell) {
		t.Skip("sample produced a text cell at the centre; space cell needed")
	}
	cellRect := gt.Grid().CellRect(cell)
	inside := cellRect.Center()

	q := &model.Query{
		ID:   1,
		Expr: model.And("handoff"),
		// Stay inside one grid cell so the whole subscription migrates.
		Region: geo.RectAround(inside, 1, 1).Clip(cellRect),
		TopK:   2,
		Window: time.Minute,
	}
	var submitted int64
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	submitted++
	drain(sys, submitted)

	var objs []*model.Object
	at := make(map[uint64]time.Time)
	publish := func(id uint64) {
		clk.Advance(time.Second)
		o := &model.Object{ID: id, Terms: []string{"handoff"}, Loc: inside}
		objs = append(objs, o)
		at[id] = clk.Now()
		sys.Submit(model.Op{Kind: model.OpObject, Obj: o})
		submitted++
	}
	// Three before the migration: two in the top-2, one ring-only.
	publish(1)
	publish(2)
	publish(3)
	drain(sys, submitted)
	before := sys.TopKSet(q.ID)
	if len(before) != 2 {
		t.Fatalf("top-2 before migration is %v", before)
	}

	wo := gt.CellWorkers(cell)[0]
	wl := (wo + 1) % 4
	if moved, _, _ := sys.migrateShare(wo, wl, cell); moved != 1 {
		t.Fatalf("migrateShare moved %d queries, want 1", moved)
	}
	// Membership is unchanged by the hand-off itself.
	if got := sys.TopKSet(q.ID); !equalIDs(got, before) {
		t.Fatalf("migration changed top-k from %v to %v", before, got)
	}
	// The new owner already holds the window state.
	sys.workers[wl].mu.Lock()
	adopted := sys.workers[wl].win.TopKSet(q.ID)
	sys.workers[wl].mu.Unlock()
	if !equalIDs(adopted, before) {
		t.Fatalf("destination window state %v, want %v", adopted, before)
	}

	// Publishing continues against the migrated cell.
	publish(4)
	drain(sys, submitted)
	sys.processPendingExtracts()

	// After extraction the source holds no window state for the query.
	sys.workers[wo].mu.Lock()
	srcHas := sys.workers[wo].win.HasSub(q.ID)
	sys.workers[wo].mu.Unlock()
	if srcHas {
		t.Fatal("source worker still holds window state after extraction")
	}

	sys.AdvanceWindows()
	want := bruteTopK(q, objs, at, clk.Now())
	if got := sys.TopKSet(q.ID); !equalIDs(got, want) {
		t.Fatalf("post-migration top-k %v, brute force %v", got, want)
	}
	if got := log.currentSet(q.ID); !equalIDs(got, want) {
		t.Fatalf("update stream implies %v, brute force %v", got, want)
	}
	log.checkAlternation(t)

	// The migrated ring must serve refills at the new owner: expire the
	// current top-2 and the ring-only message 1 must be promoted if live.
	clk.Advance(2 * time.Minute)
	sys.AdvanceWindows()
	if got := sys.TopKSet(q.ID); len(got) != 0 {
		t.Fatalf("entries survived past the window after migration: %v", got)
	}
	log.checkAlternation(t)
}

// A top-k subscription relocated by a global repartition carries its held
// window entries to the new holders: membership survives the strategy
// swap even though the new workers never saw the original publications.
func TestTopKSurvivesGlobalRepartition(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 91, 0)
	clk := newFakeClock(time.Date(2026, 3, 1, 11, 0, 0, 0, time.UTC))
	log := &updateLog{}
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder:    hybrid.Builder{},
		Clock:      clk.Now,
		OnTopK:     log.add,
		WindowTick: time.Hour,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	center := sample.Bounds.Center()
	q := &model.Query{
		ID: 1, Expr: model.And("global"),
		Region: geo.RectAround(center, 5, 5),
		TopK:   2, Window: time.Minute,
	}
	var submitted int64
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	submitted++
	for i := 1; i <= 3; i++ {
		clk.Advance(time.Second)
		sys.Submit(model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: uint64(i), Terms: []string{"global"}, Loc: center,
		}})
		submitted++
	}
	drain(sys, submitted)
	before := sys.TopKSet(q.ID)
	if len(before) != 2 {
		t.Fatalf("top-2 before repartition is %v", before)
	}

	// Swap to a different strategy family so the subscription is likely
	// relocated onto workers that never saw the publications.
	if err := sys.GlobalRepartition(sample, partition.GridBuilder{}); err != nil {
		t.Fatal(err)
	}
	if moved := sys.FinishGlobalRepartition(); moved != 1 {
		t.Fatalf("relocated %d queries, want 1", moved)
	}
	if got := sys.TopKSet(q.ID); !equalIDs(got, before) {
		t.Fatalf("global repartition changed top-k from %v to %v", before, got)
	}
	log.checkAlternation(t)

	// Expiry still works on the relocated state.
	clk.Advance(2 * time.Minute)
	sys.AdvanceWindows()
	if got := sys.TopKSet(q.ID); len(got) != 0 {
		t.Fatalf("entries survived the window after repartition: %v", got)
	}
	if got := log.currentSet(q.ID); len(got) != 0 {
		t.Fatalf("update stream leaves residue: %v", got)
	}
}

// Race/expiry stress: publishing concurrently with repeated cell
// migrations must never leave a top-k entry alive past its window, and
// the update stream must stay alternation-consistent. Run with -race.
func TestTopKExpiryUnderConcurrentPublishAndMigrate(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 63, 0)
	log := &updateLog{}
	const win = 250 * time.Millisecond
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder:    hybrid.Builder{},
		OnTopK:     log.add,
		WindowTick: 20 * time.Millisecond,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	gt := sys.gridT.Load()
	center := sample.Bounds.Center()
	cell := gt.Grid().CellOf(center)
	if gt.IsTextCell(cell) {
		t.Skip("sample produced a text cell at the centre; space cell needed")
	}
	cellRect := gt.Grid().CellRect(cell)
	inside := cellRect.Center()
	q := &model.Query{
		ID:     1,
		Expr:   model.And("racer"),
		Region: geo.RectAround(inside, 1, 1).Clip(cellRect),
		TopK:   5,
		Window: win,
	}
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // publisher
		defer wg.Done()
		id := uint64(10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.Submit(model.Op{Kind: model.OpObject, Obj: &model.Object{
				ID: id, Terms: []string{"racer"}, Loc: inside,
			}})
			id++
			time.Sleep(2 * time.Millisecond)
		}
	}()
	go func() { // migrator: bounce the cell around the workers
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sys.processPendingExtracts()
			if !sys.cellPending(cell) {
				owners := gt.CellWorkers(cell)
				if len(owners) == 1 {
					wo := owners[0]
					sys.migrateShare(wo, (wo+1)%4, cell)
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Finish any deferred extraction, stop publishing, and let the
	// window empty out.
	for i := 0; i < 50 && sys.cellPending(cell); i++ {
		sys.processPendingExtracts()
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(2 * win)
	sys.AdvanceWindows()
	if got := sys.TopKSet(q.ID); len(got) != 0 {
		t.Fatalf("top-k entries survived past the window: %v", got)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	sys.AdvanceWindows()
	if got := log.currentSet(q.ID); len(got) != 0 {
		t.Fatalf("update stream leaves residue after expiry: %v", got)
	}
}
