package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"ps2stream/internal/window"
)

// TopKUpdate is one global top-k membership change for a sliding-window
// top-k subscription, delivered through Config.OnTopK.
type TopKUpdate struct {
	QueryID    uint64
	Subscriber uint64
	MsgID      uint64
	// Score is the undecayed relevance the message had for the
	// subscription (text × proximity, in (0, 1]).
	Score float64
	// Entered is true when the message entered the subscription's global
	// top-k, false when it left (displaced by a better message, expired
	// out of the window, or unsubscribed).
	Entered bool
}

// topkBoard is the global reconciler for top-k subscriptions. Each worker
// maintains a local top-k over its partition of the object stream; the
// board merges the worker-local memberships (reference-counted, because a
// subscription replicated across workers or mid-migration contributes one
// membership per holder) into the subscription's global top-k and emits an
// update only when global membership changes. The union of the local
// top-ks always contains the global top-k, since a globally top-k message
// is necessarily top-k within its own partition.
type topkBoard struct {
	mu      sync.Mutex
	deliver func(TopKUpdate)
	qs      map[uint64]*boardQuery
}

type boardQuery struct {
	k          int
	subscriber uint64
	// cand is the union of worker-local top-k memberships.
	cand map[uint64]*boardCand
	// top is the delivered global top-k: message id → relevance (kept so
	// a Left update can report the score after the candidate is gone).
	top map[uint64]float64
}

type boardCand struct {
	rank, rel float64
	refs      int
}

func newTopKBoard(deliver func(TopKUpdate)) *topkBoard {
	return &topkBoard{deliver: deliver, qs: make(map[uint64]*boardQuery)}
}

// Apply merges one batch of worker-local deltas and delivers the resulting
// global membership changes. A batch is applied atomically: deltas that
// cancel out (an entry handed from one worker to another during migration
// appears as a Left plus an Entered) produce no user-visible update.
func (b *topkBoard) Apply(ds []window.Delta) {
	if len(ds) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	touched := make(map[uint64]*boardQuery)
	for _, d := range ds {
		bq := b.qs[d.QueryID]
		if bq == nil {
			bq = &boardQuery{
				cand: make(map[uint64]*boardCand),
				top:  make(map[uint64]float64),
			}
			b.qs[d.QueryID] = bq
		}
		bq.k = d.K
		bq.subscriber = d.Subscriber
		// Reference counts may go transiently negative: deltas from
		// different goroutines can reach the board out of order (a
		// windowLoop expiry can overtake a batched refill Entered), so a
		// Left for an unseen message records a debt that its Entered
		// later settles. Candidates only count while refs > 0.
		c := bq.cand[d.MsgID]
		if c == nil {
			c = &boardCand{rank: d.Rank, rel: d.Rel}
			bq.cand[d.MsgID] = c
		}
		if d.Entered {
			c.refs++
		} else {
			c.refs--
		}
		if c.refs == 0 {
			delete(bq.cand, d.MsgID)
		}
		touched[d.QueryID] = bq
	}
	for qid, bq := range touched {
		b.rebalance(qid, bq)
		if len(bq.cand) == 0 && len(bq.top) == 0 {
			delete(b.qs, qid)
		}
	}
}

// rebalance recomputes the query's global top-k from its candidate union
// and delivers the diff: departures first, then arrivals, each in
// ascending message-id order for determinism.
func (b *topkBoard) rebalance(qid uint64, bq *boardQuery) {
	type scored struct {
		id        uint64
		rank, rel float64
	}
	cands := make([]scored, 0, len(bq.cand))
	for id, c := range bq.cand {
		if c.refs <= 0 {
			continue // unsettled out-of-order debt, not a live candidate
		}
		cands = append(cands, scored{id: id, rank: c.rank, rel: c.rel})
	}
	// With a single holding worker the candidate union never exceeds k,
	// so the common case needs no ordering at all — everything is in.
	if len(cands) > bq.k {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].rank != cands[j].rank {
				return cands[i].rank > cands[j].rank
			}
			return cands[i].id > cands[j].id
		})
		cands = cands[:bq.k]
	}
	want := make(map[uint64]float64, len(cands))
	for _, c := range cands {
		want[c.id] = c.rel
	}
	var left, entered []scored
	for id, rel := range bq.top {
		if _, keep := want[id]; !keep {
			left = append(left, scored{id: id, rel: rel})
		}
	}
	for _, c := range cands {
		if _, had := bq.top[c.id]; !had {
			entered = append(entered, c)
		}
	}
	sort.Slice(left, func(i, j int) bool { return left[i].id < left[j].id })
	sort.Slice(entered, func(i, j int) bool { return entered[i].id < entered[j].id })
	bq.top = want
	if b.deliver == nil {
		return
	}
	for _, s := range left {
		b.deliver(TopKUpdate{QueryID: qid, Subscriber: bq.subscriber, MsgID: s.id, Score: s.rel})
	}
	for _, s := range entered {
		b.deliver(TopKUpdate{QueryID: qid, Subscriber: bq.subscriber, MsgID: s.id, Score: s.rel, Entered: true})
	}
}

// set returns the query's current global top-k ids, ascending.
func (b *topkBoard) set(qid uint64) []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	bq := b.qs[qid]
	if bq == nil {
		return nil
	}
	out := make([]uint64, 0, len(bq.top))
	for id := range bq.top {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopKSet returns the subscription's current global top-k message ids in
// ascending order (tests, examples; empty when the subscription holds
// nothing).
func (s *System) TopKSet(queryID uint64) []uint64 { return s.board.set(queryID) }

// windowLoop drives eager window expiry: every WindowTick it sweeps every
// worker's window store, expiring entries out of the rings and top-k heaps
// and repairing the heaps from the surviving window. Subscriptions
// therefore shed entries even when no new objects arrive.
func (s *System) windowLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.WindowTick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.AdvanceWindows()
			// In manual adjustment mode (AdjustNow without the
			// background loop) deferred migration extractions would
			// otherwise wait for the next AdjustNow call; finish the
			// drained ones here. No-op when nothing is pending.
			if !s.cfg.Adjust.Enabled && s.hasPendingExtracts() {
				s.processPendingExtracts()
			}
		}
	}
}

// AdvanceWindows runs one synchronous expiry sweep at the current clock
// reading. The periodic windowLoop calls it; tests with a fake clock call
// it directly after advancing time.
func (s *System) AdvanceWindows() {
	now := s.now()
	for _, ws := range s.workers {
		ws.mu.Lock()
		// Advance runs even with no live subscriptions: the retention
		// horizon is then zero, so rings left behind by the last
		// unsubscribe are swept instead of pinned forever. With empty
		// state this is O(1) per worker.
		s.board.Apply(ws.win.Advance(now))
		ws.mu.Unlock()
	}
}
