package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"ps2stream/internal/window"
)

// TopKUpdate is one global top-k membership change for a sliding-window
// top-k subscription, delivered through Config.OnTopK.
type TopKUpdate struct {
	QueryID    uint64
	Subscriber uint64
	MsgID      uint64
	// Score is the undecayed relevance the message had for the
	// subscription (text × proximity, in (0, 1]).
	Score float64
	// Entered is true when the message entered the subscription's global
	// top-k, false when it left (displaced by a better message, expired
	// out of the window, or unsubscribed).
	Entered bool
}

// topkBoard is the global reconciler for top-k subscriptions. Each worker
// maintains a local top-k over its partition of the object stream; the
// board merges the worker-local memberships (reference-counted, because a
// subscription replicated across workers or mid-migration contributes one
// membership per holder) into the subscription's global top-k and emits an
// update only when global membership changes. The union of the local
// top-ks always contains the global top-k, since a globally top-k message
// is necessarily top-k within its own partition.
//
// The board is transport-agnostic: local worker bolts hand it deltas with
// Apply, and remote worker sessions feed the same delta stream through
// ApplyRemote, which additionally tracks each slot's net contributions
// under the session's fencing epoch. A delta batch below the slot's
// highest seen epoch is a stale session's replay and is dropped; a batch
// above it first retracts everything the slot contributed under the old
// epoch — the recovering node rebuilt its window from the coordinator's
// replay, so the old session's memberships no longer exist anywhere — and
// only then applies. That pair of rules is what keeps TopKSet exact
// across kill-9 recovery without the board ever reading worker state
// directly.
type topkBoard struct {
	mu      sync.Mutex
	deliver func(TopKUpdate)
	qs      map[uint64]*boardQuery
	// live is the registry of top-k subscriptions currently routed: the
	// dispatchers register an id before its insert fans out and
	// unregister it when the delete routes. Deltas for an id outside the
	// registry — a remote frame racing an Unsubscribe, or a stale
	// replay — are dropped instead of allocating a dead boardQuery.
	live map[uint64]struct{}
	// srcs tracks each remote worker slot's net membership contributions
	// by session epoch (see ApplyRemote).
	srcs map[int]*boardSrc
}

// boardSrc is one remote worker slot's contribution ledger: the session
// epoch its deltas were produced under and, per query and message, the
// net reference count it has contributed to the candidate union.
type boardSrc struct {
	epoch uint64
	refs  map[uint64]map[uint64]int
}

type boardQuery struct {
	k          int
	subscriber uint64
	// cand is the union of worker-local top-k memberships.
	cand map[uint64]*boardCand
	// top is the delivered global top-k: message id → relevance (kept so
	// a Left update can report the score after the candidate is gone).
	top map[uint64]float64
}

type boardCand struct {
	rank, rel float64
	refs      int
}

func newTopKBoard(deliver func(TopKUpdate)) *topkBoard {
	return &topkBoard{
		deliver: deliver,
		qs:      make(map[uint64]*boardQuery),
		live:    make(map[uint64]struct{}),
		srcs:    make(map[int]*boardSrc),
	}
}

// register adds a top-k subscription to the live registry. The
// dispatchers call it before the insert fans out to workers, so every
// delta a worker can produce for the id postdates its registration.
func (b *topkBoard) register(qid uint64) {
	b.mu.Lock()
	b.live[qid] = struct{}{}
	b.mu.Unlock()
}

// unregister retires a subscription when its delete routes: the
// delivered global set is retracted immediately (departures in
// ascending message-id order, as rebalance would emit them) and every
// later delta for the id — local retractions already in flight, or a
// remote frame racing the Unsubscribe — is dropped at the door instead
// of reviving a dead boardQuery. No-op for ids never registered
// (boolean subscriptions).
func (b *topkBoard) unregister(qid uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.live[qid]; !ok {
		return
	}
	delete(b.live, qid)
	for _, src := range b.srcs {
		delete(src.refs, qid)
	}
	bq := b.qs[qid]
	if bq == nil {
		return
	}
	delete(b.qs, qid)
	if b.deliver == nil || len(bq.top) == 0 {
		return
	}
	ids := make([]uint64, 0, len(bq.top))
	for id := range bq.top {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b.deliver(TopKUpdate{QueryID: qid, Subscriber: bq.subscriber, MsgID: id, Score: bq.top[id]})
	}
}

// Apply merges one batch of worker-local deltas and delivers the resulting
// global membership changes. A batch is applied atomically: deltas that
// cancel out (an entry handed from one worker to another during migration
// appears as a Left plus an Entered) produce no user-visible update.
func (b *topkBoard) Apply(ds []window.Delta) {
	if len(ds) == 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	touched := make(map[uint64]*boardQuery)
	b.applyLocked(ds, nil, touched)
	b.settleLocked(touched)
}

// ApplyRemote merges a delta batch produced by remote worker slot task
// under session epoch. Batches below the slot's highest seen epoch are
// stale (a superseded session's frames still in flight, or a replay
// re-emitting history) and are dropped whole; a higher epoch first
// retracts the slot's previous contributions (the node's window state
// was rebuilt from scratch under the new session) before applying.
// Call with an empty batch to bump the epoch eagerly — recovery does,
// so a slot whose replay produces no deltas still sheds its dead
// session's memberships.
func (b *topkBoard) ApplyRemote(task int, epoch uint64, ds []window.Delta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	src := b.srcs[task]
	if src == nil {
		src = &boardSrc{refs: make(map[uint64]map[uint64]int)}
		b.srcs[task] = src
	}
	if epoch < src.epoch {
		return
	}
	touched := make(map[uint64]*boardQuery)
	if epoch > src.epoch {
		b.retractLocked(src, touched)
		src.epoch = epoch
	}
	b.applyLocked(ds, src, touched)
	b.settleLocked(touched)
}

// dropSource retracts everything a remote slot has contributed and
// forgets its ledger: the slot is leaving the cluster for good
// (decommission), not recovering under a new epoch.
func (b *topkBoard) dropSource(task int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	src := b.srcs[task]
	if src == nil {
		return
	}
	delete(b.srcs, task)
	touched := make(map[uint64]*boardQuery)
	b.retractLocked(src, touched)
	b.settleLocked(touched)
}

// applyLocked folds deltas into the candidate unions, tracking net
// contributions in src when the batch came from a remote slot. Deltas
// for unregistered queries are dropped. Caller holds b.mu.
func (b *topkBoard) applyLocked(ds []window.Delta, src *boardSrc, touched map[uint64]*boardQuery) {
	for _, d := range ds {
		if _, ok := b.live[d.QueryID]; !ok {
			continue
		}
		bq := b.qs[d.QueryID]
		if bq == nil {
			bq = &boardQuery{
				cand: make(map[uint64]*boardCand),
				top:  make(map[uint64]float64),
			}
			b.qs[d.QueryID] = bq
		}
		bq.k = d.K
		bq.subscriber = d.Subscriber
		// Reference counts may go transiently negative: deltas from
		// different goroutines can reach the board out of order (a
		// windowLoop expiry can overtake a batched refill Entered), so a
		// Left for an unseen message records a debt that its Entered
		// later settles. Candidates only count while refs > 0.
		c := bq.cand[d.MsgID]
		if c == nil {
			c = &boardCand{rank: d.Rank, rel: d.Rel}
			bq.cand[d.MsgID] = c
		}
		if d.Entered {
			c.refs++
		} else {
			c.refs--
		}
		if c.refs == 0 {
			delete(bq.cand, d.MsgID)
		}
		if src != nil {
			qr := src.refs[d.QueryID]
			if qr == nil {
				qr = make(map[uint64]int)
				src.refs[d.QueryID] = qr
			}
			if d.Entered {
				qr[d.MsgID]++
			} else {
				qr[d.MsgID]--
			}
			if qr[d.MsgID] == 0 {
				delete(qr, d.MsgID)
				if len(qr) == 0 {
					delete(src.refs, d.QueryID)
				}
			}
		}
		touched[d.QueryID] = bq
	}
}

// retractLocked removes a source's net contributions from the candidate
// unions, collecting the affected queries into touched. A net-negative
// contribution whose candidate is already gone is skipped: its settling
// Entered belongs to the dead session and will be dropped by the epoch
// fence, so there is no debt left to undo. Caller holds b.mu.
func (b *topkBoard) retractLocked(src *boardSrc, touched map[uint64]*boardQuery) {
	for qid, msgs := range src.refs {
		bq := b.qs[qid]
		if bq == nil {
			continue
		}
		for msg, n := range msgs {
			c := bq.cand[msg]
			if c == nil {
				continue
			}
			c.refs -= n
			if c.refs == 0 {
				delete(bq.cand, msg)
			}
		}
		touched[qid] = bq
	}
	src.refs = make(map[uint64]map[uint64]int)
}

// settleLocked rebalances every touched query and drops the ones that
// hold nothing. The boardQuery stays reachable through the live
// registry: a later delta for a still-registered id simply reallocates
// it. Caller holds b.mu.
func (b *topkBoard) settleLocked(touched map[uint64]*boardQuery) {
	for qid, bq := range touched {
		b.rebalance(qid, bq)
		if len(bq.cand) == 0 && len(bq.top) == 0 {
			delete(b.qs, qid)
		}
	}
}

// rebalance recomputes the query's global top-k from its candidate union
// and delivers the diff: departures first, then arrivals, each in
// ascending message-id order for determinism.
func (b *topkBoard) rebalance(qid uint64, bq *boardQuery) {
	type scored struct {
		id        uint64
		rank, rel float64
	}
	cands := make([]scored, 0, len(bq.cand))
	for id, c := range bq.cand {
		if c.refs <= 0 {
			continue // unsettled out-of-order debt, not a live candidate
		}
		cands = append(cands, scored{id: id, rank: c.rank, rel: c.rel})
	}
	// With a single holding worker the candidate union never exceeds k,
	// so the common case needs no ordering at all — everything is in.
	if len(cands) > bq.k {
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].rank != cands[j].rank {
				return cands[i].rank > cands[j].rank
			}
			return cands[i].id > cands[j].id
		})
		cands = cands[:bq.k]
	}
	want := make(map[uint64]float64, len(cands))
	for _, c := range cands {
		want[c.id] = c.rel
	}
	var left, entered []scored
	for id, rel := range bq.top {
		if _, keep := want[id]; !keep {
			left = append(left, scored{id: id, rel: rel})
		}
	}
	for _, c := range cands {
		if _, had := bq.top[c.id]; !had {
			entered = append(entered, c)
		}
	}
	sort.Slice(left, func(i, j int) bool { return left[i].id < left[j].id })
	sort.Slice(entered, func(i, j int) bool { return entered[i].id < entered[j].id })
	bq.top = want
	if b.deliver == nil {
		return
	}
	for _, s := range left {
		b.deliver(TopKUpdate{QueryID: qid, Subscriber: bq.subscriber, MsgID: s.id, Score: s.rel})
	}
	for _, s := range entered {
		b.deliver(TopKUpdate{QueryID: qid, Subscriber: bq.subscriber, MsgID: s.id, Score: s.rel, Entered: true})
	}
}

// set returns the query's current global top-k ids, ascending.
func (b *topkBoard) set(qid uint64) []uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	bq := b.qs[qid]
	if bq == nil {
		return nil
	}
	out := make([]uint64, 0, len(bq.top))
	for id := range bq.top {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopKSet returns the subscription's current global top-k message ids in
// ascending order (tests, examples; empty when the subscription holds
// nothing).
func (s *System) TopKSet(queryID uint64) []uint64 { return s.board.set(queryID) }

// windowLoop drives eager window expiry: every WindowTick it sweeps every
// worker's window store, expiring entries out of the rings and top-k heaps
// and repairing the heaps from the surviving window. Subscriptions
// therefore shed entries even when no new objects arrive.
func (s *System) windowLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.WindowTick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.AdvanceWindows()
			// In manual adjustment mode (AdjustNow without the
			// background loop) deferred migration extractions would
			// otherwise wait for the next AdjustNow call; finish the
			// drained ones here. No-op when nothing is pending.
			if !s.cfg.Adjust.Enabled && s.hasPendingExtracts() {
				s.processPendingExtracts()
			}
		}
	}
}

// AdvanceWindows runs one synchronous expiry sweep at the current clock
// reading. The periodic windowLoop calls it; tests with a fake clock call
// it directly after advancing time.
//
// Expiry is a fenced cluster-wide round: every remote worker serves one
// AdvanceWindow control request carrying the coordinator's clock (the
// single clock domain the windows slide in) and answers with the
// membership deltas the expiry produced, tagged with its session epoch
// so the board's dedup treats them exactly like the spontaneous delta
// stream. Local workers advance under their locks as before. A slot
// that is down or mid-replay is skipped — its recovery replay rebuilds
// the window against the coordinator's current clock anyway.
func (s *System) AdvanceWindows() {
	now := s.now()
	for _, task := range s.remoteWorkerTasks() {
		adv := s.remoteAdvancer(task)
		if adv == nil {
			continue
		}
		epoch, ds, err := adv.AdvanceWindow(now)
		if err != nil {
			s.log.Debug("advance window round failed", "worker", task, "err", err)
			continue
		}
		s.board.ApplyRemote(task, epoch, ds)
	}
	for _, ws := range s.workers {
		ws.mu.Lock()
		// Advance runs even with no live subscriptions: the retention
		// horizon is then zero, so rings left behind by the last
		// unsubscribe are swept instead of pinned forever. With empty
		// state this is O(1) per worker.
		s.board.Apply(ws.win.Advance(now))
		ws.mu.Unlock()
	}
}
