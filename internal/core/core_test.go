package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/workload"
)

// matchSet collects merger output thread-safely.
type matchSet struct {
	mu   sync.Mutex
	seen map[[2]uint64]bool
}

func newMatchSet() *matchSet { return &matchSet{seen: make(map[[2]uint64]bool)} }

func (ms *matchSet) add(m model.Match) {
	ms.mu.Lock()
	ms.seen[[2]uint64{m.QueryID, m.ObjectID}] = true
	ms.mu.Unlock()
}

func (ms *matchSet) has(q, o uint64) bool {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.seen[[2]uint64{q, o}]
}

func (ms *matchSet) len() int {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return len(ms.seen)
}

// oracle replays the op stream sequentially and records every true match.
func oracleMatches(ops []model.Op) map[[2]uint64]bool {
	live := make(map[uint64]*model.Query)
	out := make(map[[2]uint64]bool)
	for _, op := range ops {
		switch op.Kind {
		case model.OpInsert:
			live[op.Query.ID] = op.Query
		case model.OpDelete:
			delete(live, op.Query.ID)
		case model.OpObject:
			for _, q := range live {
				if q.Matches(op.Obj) {
					out[[2]uint64{q.ID, op.Obj.ID}] = true
				}
			}
		}
	}
	return out
}

// runExact drives ops through a single-dispatcher system (FIFO order
// preserved end to end) and returns the delivered match set.
func runExact(t *testing.T, builder partition.Builder, sample *partition.Sample, ops []model.Op, workers int) *matchSet {
	t.Helper()
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1,
		Workers:     workers,
		Mergers:     2,
		Builder:     builder,
		OnMatch:     ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	return ms
}

func smallWorkload(t *testing.T, kind workload.QueryKind, seed int64, nOps int) (*partition.Sample, []model.Op) {
	t.Helper()
	spec := workload.TweetsUS()
	spec.VocabSize = 2000 // denser matches at test scale
	sample := workload.Sample(spec, kind, 2000, 400, seed)
	st := workload.NewStream(spec, kind, workload.StreamConfig{Mu: 300, Seed: seed})
	ops := st.Prewarm(300)
	ops = append(ops, st.Take(nOps)...)
	return sample, ops
}

func allBuilders() map[string]partition.Builder {
	bs := partition.Builders()
	bs["hybrid"] = hybrid.Builder{}
	return bs
}

// The system must deliver exactly the oracle match set for every
// distribution strategy: no false negatives (routing invariant) and no
// false positives (region+expression checked at workers, dedup at
// mergers).
func TestEndToEndExactAllStrategies(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 42, 4000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	for name, b := range allBuilders() {
		t.Run(name, func(t *testing.T) {
			ms := runExact(t, b, sample, ops, 4)
			ms.mu.Lock()
			defer ms.mu.Unlock()
			missing, extra := 0, 0
			for k := range want {
				if !ms.seen[k] {
					missing++
				}
			}
			for k := range ms.seen {
				if !want[k] {
					extra++
				}
			}
			if missing > 0 || extra > 0 {
				t.Errorf("%s: %d missing, %d extra of %d oracle matches",
					name, missing, extra, len(want))
			}
		})
	}
}

func TestEndToEndQ2Hybrid(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q2, 43, 3000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Skip("no oracle matches for this seed")
	}
	ms := runExact(t, hybrid.Builder{}, sample, ops, 4)
	if ms.len() != len(want) {
		t.Errorf("got %d matches, oracle %d", ms.len(), len(want))
	}
}

func TestDeletionStopsDelivery(t *testing.T) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 500, 100, 7)
	center := spec.Bounds.Center()
	q := &model.Query{ID: 900001, Expr: model.And(sample.Objects[0].Terms[0]),
		Region: geo.RectAround(center, 200, 200)}
	objHit := &model.Object{ID: 800001, Terms: q.Expr.Terms(), Loc: center}
	objLate := &model.Object{ID: 800002, Terms: q.Expr.Terms(), Loc: center}
	ops := []model.Op{
		{Kind: model.OpInsert, Query: q},
		{Kind: model.OpObject, Obj: objHit},
		{Kind: model.OpDelete, Query: q},
		{Kind: model.OpObject, Obj: objLate},
	}
	ms := runExact(t, hybrid.Builder{}, sample, ops, 4)
	if !ms.has(q.ID, objHit.ID) {
		t.Error("match before deletion not delivered")
	}
	if ms.has(q.ID, objLate.ID) {
		t.Error("match delivered after deletion")
	}
}

func TestDiscardedObjectsCounted(t *testing.T) {
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 500, 100, 8)
	sys, err := New(Config{Dispatchers: 1, Workers: 4, Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// No queries registered: every object is discarded at the dispatcher.
	for i := 0; i < 50; i++ {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: uint64(i), Terms: []string{"nomatch"}, Loc: spec.Bounds.Center(),
		}})
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Discarded != 50 {
		t.Errorf("Discarded = %d, want 50", snap.Discarded)
	}
	if snap.Processed != 50 {
		t.Errorf("Processed = %d, want 50", snap.Processed)
	}
}

func TestSnapshotMetrics(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 9, 2000)
	ms := newMatchSet()
	sys, err := New(Config{Dispatchers: 2, Workers: 4, Builder: hybrid.Builder{}, OnMatch: ms.add}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if snap.Processed != int64(len(ops)) {
		t.Errorf("Processed = %d, want %d", snap.Processed, len(ops))
	}
	if snap.Latency.Count == 0 {
		t.Error("no latency observations")
	}
	if snap.DispatcherBytes <= 0 {
		t.Error("DispatcherBytes <= 0")
	}
	if len(snap.WorkerBytes) != 4 {
		t.Errorf("WorkerBytes len %d", len(snap.WorkerBytes))
	}
	var anyWorkerBytes bool
	for _, b := range snap.WorkerBytes {
		anyWorkerBytes = anyWorkerBytes || b > 0
	}
	if !anyWorkerBytes {
		t.Error("all worker footprints zero")
	}
	if snap.ThroughputTPS <= 0 {
		t.Error("throughput not measured")
	}
	if int64(ms.len()) != snap.Matches {
		t.Errorf("callback saw %d matches, counter %d", ms.len(), snap.Matches)
	}
}

func TestAdjustRequiresHybrid(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 10, 10)
	_, err := New(Config{
		Builder: partition.GridBuilder{},
		Adjust:  AdjustConfig{Enabled: true},
	}, sample)
	if err != ErrAdjustNeedsHybrid {
		t.Errorf("err = %v, want ErrAdjustNeedsHybrid", err)
	}
}

func TestLifecycleErrors(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 11, 10)
	sys, err := New(Config{Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err == nil {
		t.Error("Close before Start should error")
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err == nil {
		t.Error("double Start should error")
	}
	if err := sys.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := sys.Close(); err == nil {
		t.Error("double Close should error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Error("nil sample accepted")
	}
}

func waitProcessed(t *testing.T, sys *System, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for sys.processed.Value() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d processed (at %d)", n, sys.processed.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give workers a moment to drain their queues.
	time.Sleep(50 * time.Millisecond)
}

func TestGlobalRepartitionKeepsMatching(t *testing.T) {
	spec := workload.TweetsUS()
	spec.VocabSize = 2000
	sample := workload.Sample(spec, workload.Q1, 2000, 400, 12)
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: 200, Seed: 12})
	batch1 := st.Prewarm(200)
	batch1 = append(batch1, st.Take(1500)...)
	batch2 := st.Take(1500)
	batch3 := st.Take(1500)
	all := append(append(append([]model.Op{}, batch1...), batch2...), batch3...)
	want := oracleMatches(all)

	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: partition.KDTreeBuilder{},
		OnMatch: ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(batch1)
	waitProcessed(t, sys, int64(len(batch1)))
	// Switch strategies mid-stream.
	sample2 := workload.Sample(spec, workload.Q1, 2000, 400, 13)
	if err := sys.GlobalRepartition(sample2, hybrid.Builder{}); err != nil {
		t.Fatal(err)
	}
	if got := sys.Assignment().Name(); got != "dual(kdtree->hybrid)" {
		t.Errorf("assignment = %q during transition", got)
	}
	sys.SubmitAll(batch2)
	waitProcessed(t, sys, int64(len(batch1)+len(batch2)))
	moved := sys.FinishGlobalRepartition()
	t.Logf("relocated %d old queries", moved)
	if got := sys.Assignment().Name(); got != "hybrid" {
		t.Errorf("assignment = %q after finish", got)
	}
	sys.SubmitAll(batch3)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing := 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d/%d oracle matches missing across the repartition", missing, len(want))
	}
}

func TestGlobalRepartitionErrors(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 14, 10)
	sys, err := New(Config{Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.GlobalRepartition(nil, nil); err == nil {
		t.Error("nil sample accepted")
	}
	if err := sys.GlobalRepartition(sample, nil); err != nil {
		t.Fatal(err)
	}
	if err := sys.GlobalRepartition(sample, nil); err == nil {
		t.Error("second concurrent repartition accepted")
	}
	if sys.FinishGlobalRepartition() != 0 {
		t.Error("nothing should move in an idle system")
	}
}

// TestAdjustmentUnderSkew drives a spatially skewed object stream at a
// system built for a uniform one; the controller must detect the
// imbalance, migrate cells, and never lose a match.
func TestAdjustmentUnderSkew(t *testing.T) {
	spec := workload.TweetsUS()
	spec.VocabSize = 1000
	sample := workload.Sample(spec, workload.Q1, 3000, 500, 15)

	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: hybrid.Builder{},
		OnMatch: ms.add,
		Adjust: AdjustConfig{
			Enabled:      true,
			Sigma:        1.2,
			Interval:     30 * time.Millisecond,
			MinWindowOps: 64,
		},
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Insert-only query stream (deletes would make stale-positive
	// accounting ambiguous) plus objects concentrated in one corner.
	og := workload.NewGenerator(spec, 16)
	qg := workload.NewQueryGenerator(spec, workload.Q1, 16)
	hot := geo.Point{
		X: spec.Bounds.Min.X + spec.Bounds.Width()*0.2,
		Y: spec.Bounds.Min.Y + spec.Bounds.Height()*0.2,
	}
	var ops []model.Op
	for i := 0; i < 400; i++ {
		q := qg.Query()
		// Bias half the queries onto the hotspot so its cells carry load.
		if i%2 == 0 {
			q.Region = geo.RectAround(hot, 80, 80).Clip(spec.Bounds)
		}
		ops = append(ops, model.Op{Kind: model.OpInsert, Query: q})
	}
	for i := 0; i < 12000; i++ {
		o := og.Object()
		o.Loc = geo.Point{X: hot.X + float64(i%7)*0.01, Y: hot.Y + float64(i%11)*0.01}
		ops = append(ops, model.Op{Kind: model.OpObject, Obj: o})
	}
	want := oracleMatches(ops)

	for _, op := range ops {
		sys.Submit(op)
		if op.Kind == model.OpObject && op.Obj.ID%500 == 0 {
			time.Sleep(10 * time.Millisecond) // give the controller windows to observe
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	migs := sys.Migrations()
	if len(migs) == 0 {
		t.Error("no migrations under heavy skew")
	}
	for _, m := range migs {
		if m.Bytes < 0 || m.Cells <= 0 {
			t.Errorf("malformed migration stat %+v", m)
		}
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing := 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d/%d matches lost across migrations", missing, len(want))
	}
	t.Logf("migrations: %d, matches: %d", len(migs), len(ms.seen))
}

func TestWorkerQueryCounts(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 17, 500)
	sys, err := New(Config{Dispatchers: 1, Workers: 4, Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	counts := sys.WorkerQueryCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Error("no queries stored on any worker")
	}
}

func TestMergerDeduplicates(t *testing.T) {
	// An OR query spanning two text-partition shares can be stored on
	// two workers; a matching object routed to both must be delivered
	// once. Construct this explicitly via the frequency text builder.
	spec := workload.TweetsUS()
	sample := workload.Sample(spec, workload.Q1, 2000, 200, 18)
	stats := sample.Stats
	// Find two terms owned by different workers under frequency
	// partitioning.
	a, err := partition.FrequencyBuilder{}.Build(sample, 4)
	if err != nil {
		t.Fatal(err)
	}
	ta := a.(*partition.TextAssignment)
	terms := stats.TopTerms(50)
	var t1, t2 string
	for _, x := range terms {
		for _, y := range terms {
			if x != y && ta.Owner(x) != ta.Owner(y) {
				t1, t2 = x, y
				break
			}
		}
		if t1 != "" {
			break
		}
	}
	if t1 == "" {
		t.Skip("no cross-worker term pair")
	}
	ms := newMatchSet()
	var dup int64
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Builder: partition.FrequencyBuilder{},
		OnMatch: ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	_ = dup
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	center := spec.Bounds.Center()
	q := &model.Query{ID: 1, Expr: model.Or(t1, t2), Region: geo.RectAround(center, 500, 500)}
	o := &model.Object{ID: 2, Terms: []string{t1, t2}, Loc: center}
	sys.Submit(model.Op{Kind: model.OpInsert, Query: q})
	sys.Submit(model.Op{Kind: model.OpObject, Obj: o})
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	snap := sys.Snapshot()
	if got := ms.len(); got != 1 {
		t.Errorf("delivered %d matches, want 1 (dup counter %d)", got, snap.Duplicates)
	}
	if snap.Duplicates != 1 {
		t.Errorf("Duplicates = %d, want 1 (query stored on workers %v and %v)",
			snap.Duplicates, ta.Owner(t1), ta.Owner(t2))
	}
}

func TestThroughputUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sample, ops := smallWorkload(t, workload.Q1, 19, 20000)
	sys, err := New(Config{Workers: 4, Builder: hybrid.Builder{}}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	sys.SubmitAll(ops)
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	tps := float64(len(ops)) / el.Seconds()
	t.Logf("throughput: %.0f tuples/sec over %d ops", tps, len(ops))
	if tps < 1000 {
		t.Errorf("throughput %.0f tuples/sec implausibly low", tps)
	}
}

func TestConfigDefaults(t *testing.T) {
	var cfg Config
	cfg.fillDefaults()
	if cfg.Dispatchers != 4 || cfg.Workers != 8 || cfg.Mergers != 2 {
		t.Errorf("defaults: %d/%d/%d", cfg.Dispatchers, cfg.Workers, cfg.Mergers)
	}
	if cfg.Builder == nil {
		t.Error("no default builder")
	}
	if fmt.Sprint(cfg.Costs) == fmt.Sprint(Config{}.Costs) {
		t.Error("costs not defaulted")
	}
}
