package core

// Observability: every System owns a metrics.Registry that an admin
// server (internal/obs) exposes on /metrics and /statsz. Almost every
// series is func-backed — a closure over a counter the hot path already
// maintained — so wiring the registry costs the publish path nothing.
// The only new hot-path instruments are the three per-stage histograms
// (one Observe per *batch*, amortised over up to BatchSize tuples).
//
// Series naming: everything is prefixed ps2_, durations are histograms
// in seconds with _seconds names, monotone counts end in _total, and
// per-worker series carry a worker="<task>" label. For remote worker
// tasks the per-kind op counters come from the node-reported StatsReply
// mirror (refreshed by the adjustment controller's stats rounds and by
// RefreshRemoteStats at scrape time), so one scrape of the coordinator
// reports what every node actually processed — not what the
// coordinator handed to the wire.

import (
	"context"
	"log/slog"
	"strconv"
	"time"

	"ps2stream/internal/load"
	"ps2stream/internal/metrics"
	"ps2stream/internal/wire"
)

// Stage names of the per-stage latency histograms
// (ps2_stage_seconds{stage=...}).
const (
	StageDispatch = "dispatch"
	StageWorker   = "worker"
	StageMerge    = "merge"
)

// stageLatencyBounds resolve batch-scale processing times: stages run
// microseconds per batch, far below the paper's end-to-end latency
// bounds.
var stageLatencyBounds = []time.Duration{
	10 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// discardHandler is slog's no-op: Enabled is false for every level, so
// an unset Config.Logger costs one predicate call per trace point.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Registry returns the system's metric registry, ready to hand to an
// obs.Server (or scrape directly).
func (s *System) Registry() *metrics.Registry { return s.registry }

// RouteEpoch returns the current routing-fence epoch (advances once per
// executed cell migration).
func (s *System) RouteEpoch() uint64 { return s.routeFence.Epoch() }

// opKinds are the per-kind op-counter labels, aligned with
// wire.StatsReply's Objects/Inserts/Deletes.
var opKinds = []string{"object", "insert", "delete"}

// initObservability builds the registry over the system's existing
// counters. Called from New after every counter slice is allocated.
func (s *System) initObservability() {
	r := metrics.NewRegistry()
	s.registry = r

	r.CounterFunc("ps2_ops_processed_total", "input operations routed by the dispatchers",
		s.processed.Value)
	r.CounterFunc("ps2_ops_discarded_total", "objects discarded by routing (no H2 terms)",
		s.discarded.Value)
	r.CounterFunc("ps2_matches_delivered_total", "deduplicated matches delivered by local mergers",
		s.matches.Value)
	r.CounterFunc("ps2_matches_duplicates_total", "duplicate matches suppressed by local mergers",
		s.duplicates.Value)
	r.CounterFunc("ps2_matches_emitted_total", "match envelopes emitted by local workers",
		s.matchesEmitted.Value)
	r.GaugeFunc("ps2_throughput_tps", "routed tuples per second over the current meter interval",
		s.tput.Rate)
	r.GaugeFunc("ps2_batch_size", "configured transfer batch size in tuples",
		func() float64 { return float64(s.cfg.BatchSize) })

	// End-to-end latency histograms rotate on ResetLatencyStats, so they
	// are read through the atomic pointer at scrape time.
	r.HistogramFunc("ps2_tuple_latency_seconds", "publish-to-processed latency",
		s.latency.Load)
	r.HistogramFunc("ps2_match_latency_seconds", "publish-to-delivery latency of matches",
		s.matchLat.Load)

	// Per-stage processing-time histograms (one observation per batch).
	s.stageDisp = r.Histogram("ps2_stage_seconds", "per-batch stage processing time",
		stageLatencyBounds, metrics.L("stage", StageDispatch))
	s.stageWork = r.Histogram("ps2_stage_seconds", "per-batch stage processing time",
		stageLatencyBounds, metrics.L("stage", StageWorker))
	s.stageMerge = r.Histogram("ps2_stage_seconds", "per-batch stage processing time",
		stageLatencyBounds, metrics.L("stage", StageMerge))

	// Per-worker series. For remote tasks the op counts read the
	// node-reported mirror; everything else reads coordinator-side state.
	// Spare slots are included so a runtime-joined worker's series exist
	// from the first scrape.
	for i := 0; i < len(s.workers); i++ {
		i := i
		wl := metrics.L("worker", strconv.Itoa(i))
		for _, kind := range opKinds {
			kind := kind
			r.CounterFunc("ps2_worker_ops_total",
				"operations processed per worker and kind (node-reported for remote tasks)",
				func() int64 { return s.workerOpCount(i, kind) }, wl, metrics.L("kind", kind))
		}
		r.GaugeFunc("ps2_worker_window_load", "Definition-1 load over the current dispatcher window",
			func() float64 {
				return s.cfg.Costs.Worker(
					float64(s.winObjects[i].Load()),
					float64(s.winInserts[i].Load()),
					float64(s.winDeletes[i].Load()),
				)
			}, wl)
		r.GaugeFunc("ps2_worker_inflight_ops", "tuples enqueued to the worker and not yet processed",
			func() float64 { return float64(s.enqueued[i].Load() - s.doneOps[i].Load()) }, wl)
		r.GaugeFunc("ps2_worker_queries", "live queries indexed on the worker (node-reported for remote tasks)",
			func() float64 { return s.workerQueryCount(i) }, wl)
		if s.loadEWMA != nil {
			e := s.loadEWMA[i]
			r.GaugeFunc("ps2_worker_load_ewma", "adjustment controller's smoothed per-worker load",
				e.Value, wl)
		}
	}

	r.GaugeFunc("ps2_balance_factor", "L_max/L_min over the controller's smoothed loads (window loads when the controller is off)",
		func() float64 {
			active := s.activeWorkerSlots()
			if s.loadEWMA != nil {
				vals := make([]float64, len(s.loadEWMA))
				for i, e := range s.loadEWMA {
					vals[i] = e.Value()
				}
				return load.BalanceFactor(maskActive(vals, active))
			}
			return load.BalanceFactor(maskActive(s.windowLoads(), active))
		})
	r.GaugeFunc("ps2_route_epoch", "routing-fence epoch (advances once per migrated cell share)",
		func() float64 { return float64(s.routeFence.Epoch()) })

	// Adjustment controller activity.
	r.CounterFunc("ps2_adjust_checks_total", "detector evaluations", s.adjChecks.Value)
	r.CounterFunc("ps2_adjust_triggers_total", "detector-initiated adjustments", s.adjTriggers.Value)
	r.CounterFunc("ps2_adjust_manual_total", "AdjustNow-initiated adjustments", s.adjManual.Value)
	r.CounterFunc("ps2_adjust_sustain_skips_total", "violations suppressed by hysteresis", s.adjSustains.Value)
	r.CounterFunc("ps2_adjust_cooldown_skips_total", "violations suppressed by cooldown", s.adjCooldowns.Value)

	// Migration aggregates, derived from the migration log.
	migSum := func(f func(MigrationStat) int64) func() int64 {
		return func() int64 {
			s.migMu.Lock()
			defer s.migMu.Unlock()
			var total int64
			for _, m := range s.migrations {
				total += f(m)
			}
			return total
		}
	}
	r.CounterFunc("ps2_migrations_total", "executed migrations",
		migSum(func(MigrationStat) int64 { return 1 }))
	r.CounterFunc("ps2_migrated_cells_total", "grid cells moved by migrations",
		migSum(func(m MigrationStat) int64 { return int64(m.Cells) }))
	r.CounterFunc("ps2_migrated_queries_total", "queries moved by migrations",
		migSum(func(m MigrationStat) int64 { return int64(m.QueriesMoved) }))
	r.CounterFunc("ps2_migrated_bytes_total", "serialised bytes moved by migrations",
		migSum(func(m MigrationStat) int64 { return m.Bytes }))

	// Membership gauges: slot liveness as the coordinator sees it. Only
	// hop-backed (remote/spare) slots register them; a pure in-process
	// deployment has no hops and no membership to observe.
	for task, h := range s.hops {
		if h == nil {
			continue
		}
		h := h
		wl := metrics.L("worker", strconv.Itoa(task))
		r.GaugeFunc("ps2_worker_active", "1 while the slot serves traffic",
			func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				if h.active {
					return 1
				}
				return 0
			}, wl)
		r.GaugeFunc("ps2_worker_down", "1 while the slot's node is crashed or replaying",
			func() float64 {
				h.mu.Lock()
				defer h.mu.Unlock()
				if h.down || h.replaying {
					return 1
				}
				return 0
			}, wl)
		if h.log != nil {
			r.GaugeFunc("ps2_oplog_tail", "op-log entries pending the next checkpoint",
				func() float64 { return float64(h.log.TailLen()) }, wl)
		}
	}

	if s.hops != nil || len(s.cfg.RemoteMergers) > 0 {
		wire.RegisterMetrics(r)
	}
}

// registerTopologyMetrics adds the stream-engine gauges that only exist
// once the topology is built (Start).
func (s *System) registerTopologyMetrics() {
	topo := s.topo
	for name := range topo.ComponentStats() {
		name := name
		bl := metrics.L("bolt", name)
		s.registry.CounterFunc("ps2_bolt_processed_total", "tuples processed per stream-engine bolt",
			func() int64 { return topo.ComponentStats()[name].Processed }, bl)
		s.registry.CounterFunc("ps2_bolt_emitted_total", "tuples emitted per stream-engine bolt",
			func() int64 { return topo.ComponentStats()[name].Emitted }, bl)
		s.registry.GaugeFunc("ps2_queue_depth_batches", "queued input batches per bolt (instantaneous)",
			func() float64 { return float64(topo.QueueStats()[name].Depth) }, bl)
		s.registry.GaugeFunc("ps2_queue_cap_batches", "input queue capacity per bolt in batches",
			func() float64 { return float64(topo.QueueStats()[name].Cap) }, bl)
	}
}

// workerOpCount reads worker i's cumulative op count of one kind: the
// node-reported mirror for remote tasks, the worker bolts' tallies for
// local ones.
func (s *System) workerOpCount(i int, kind string) int64 {
	if s.isRemote(i) {
		s.remoteStatsMu.Lock()
		sr := s.remoteStats[i]
		s.remoteStatsMu.Unlock()
		switch kind {
		case "object":
			return sr.Objects
		case "insert":
			return sr.Inserts
		default:
			return sr.Deletes
		}
	}
	switch kind {
	case "object":
		return s.workObjects[i].Load()
	case "insert":
		return s.workInserts[i].Load()
	default:
		return s.workDeletes[i].Load()
	}
}

// workerQueryCount reads worker i's live query count: the node-reported
// mirror for remote tasks (the shadow index under-counts after
// migrations), the index itself for local ones.
func (s *System) workerQueryCount(i int) float64 {
	if s.isRemote(i) {
		s.remoteStatsMu.Lock()
		sr := s.remoteStats[i]
		s.remoteStatsMu.Unlock()
		return float64(sr.Queries)
	}
	w := s.workers[i]
	w.mu.Lock()
	n := w.ix.QueryCount()
	w.mu.Unlock()
	return float64(n)
}

// storeRemoteStats records a node-reported StatsReply in the scrape
// mirror. Called by every stats control round (the adjustment
// controller's polls and RefreshRemoteStats alike).
func (s *System) storeRemoteStats(task int, sr wire.StatsReply) {
	s.remoteStatsMu.Lock()
	if s.remoteStats == nil {
		s.remoteStats = make(map[int]wire.StatsReply)
	}
	s.remoteStats[task] = sr
	s.remoteStatsAt = time.Now()
	s.remoteStatsMu.Unlock()
}

// RefreshRemoteStats refreshes the remote-worker counter mirror if it
// is older than maxAge, one stats control round per remote worker. The
// obs server calls it before each scrape so a coordinator scrape shows
// current node-side counts even when the adjustment controller (whose
// polls also feed the mirror) is off. Errors leave the previous values
// in place: a scrape must never fail the run.
func (s *System) RefreshRemoteStats(maxAge time.Duration) {
	if !s.HasRemoteWorkers() {
		return
	}
	s.remoteStatsMu.Lock()
	fresh := time.Since(s.remoteStatsAt) < maxAge
	if !fresh {
		s.remoteStatsAt = time.Now() // claim the refresh before the wire rounds
	}
	s.remoteStatsMu.Unlock()
	if fresh {
		return
	}
	for _, task := range s.remoteWorkerTasks() {
		m := s.remoteMigrator(task)
		if m == nil {
			continue
		}
		sr, err := m.WorkerStats()
		if err != nil {
			continue
		}
		s.storeRemoteStats(task, sr)
	}
}

// StageSnapshots summarises the per-stage processing-time histograms
// (one observation per batch), keyed by stage name. The benchmark
// harness embeds them in report JSON so baselines record where time
// goes.
func (s *System) StageSnapshots() map[string]metrics.Snapshot {
	return map[string]metrics.Snapshot{
		StageDispatch: s.stageDisp.Snapshot(),
		StageWorker:   s.stageWork.Snapshot(),
		StageMerge:    s.stageMerge.Snapshot(),
	}
}
