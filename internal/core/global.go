package core

import (
	"errors"
	"fmt"
	"sync"

	"ps2stream/internal/hybrid"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// dualAssignment routes with two strategies during a global repartition
// (§V-B): queries registered before the switch are tracked in oldIDs and
// keep routing (and deleting) through the old strategy; new queries use
// the new strategy; objects take the union so no match is lost.
type dualAssignment struct {
	old partition.Assignment
	new partition.Assignment

	mu      sync.Mutex
	oldIDs  map[uint64]struct{}
	initial int
}

var _ partition.Assignment = (*dualAssignment)(nil)

// RouteObject implements partition.Assignment (union of both routes).
func (d *dualAssignment) RouteObject(o *model.Object) []int {
	a := d.old.RouteObject(o)
	b := d.new.RouteObject(o)
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]struct{}, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, w := range a {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	for _, w := range b {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

// RouteQuery implements partition.Assignment: insertions go to the new
// strategy; deletions go wherever the insertion went.
func (d *dualAssignment) RouteQuery(q *model.Query, insert bool) []int {
	if insert {
		return d.new.RouteQuery(q, true)
	}
	d.mu.Lock()
	_, isOld := d.oldIDs[q.ID]
	if isOld {
		delete(d.oldIDs, q.ID)
	}
	d.mu.Unlock()
	if isOld {
		return d.old.RouteQuery(q, false)
	}
	return d.new.RouteQuery(q, false)
}

// NumWorkers implements partition.Assignment.
func (d *dualAssignment) NumWorkers() int { return d.new.NumWorkers() }

// Name implements partition.Assignment.
func (d *dualAssignment) Name() string {
	return fmt.Sprintf("dual(%s->%s)", d.old.Name(), d.new.Name())
}

// Footprint implements partition.Assignment: both structures are resident
// during the transition — the paper's "temporary compromise on the system
// performance by maintaining two workload distribution strategies".
func (d *dualAssignment) Footprint() int64 {
	d.mu.Lock()
	n := int64(len(d.oldIDs))
	d.mu.Unlock()
	return d.old.Footprint() + d.new.Footprint() + n*16
}

// remaining returns the live old-strategy query count and the initial
// count at switch time.
func (d *dualAssignment) remaining() (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.oldIDs), d.initial
}

// allCellSpecs enumerates every grid cell as an ExtractCells spec: the
// nodes' GI2 geometry is fixed by the handshake (bounds + granularity),
// so a full sweep over it is a complete view of a remote worker's
// standing population, independent of the routing strategy in force.
func (s *System) allCellSpecs() []wire.CellSpec {
	g := grid.New(s.bounds, s.cfg.Granularity, s.cfg.Granularity)
	specs := make([]wire.CellSpec, g.NumCells())
	for i := range specs {
		specs[i].Cell = i
	}
	return specs
}

// GlobalRepartition begins a global load adjustment: a fresh assignment is
// built from the sample and installed alongside the current one. The old
// strategy keeps serving pre-existing queries until their population
// decays below finishFraction of its initial size, at which point the
// controller migrates the remainder and retires the old strategy
// (checkGlobalProgress). If the adjustment controller is disabled, call
// FinishGlobalRepartition explicitly.
//
// Remote workers participate through the migration control frames: the
// start-of-transition snapshot sweeps each node's standing population
// with a copying ExtractCells round, and the finish relocates remote
// queries with InstallCells rounds. A custom RemoteWorkers transport
// without the migration extension gets ErrRemoteNeedsStatic.
func (s *System) GlobalRepartition(sample *partition.Sample, builder partition.Builder) error {
	if sample == nil {
		return errors.New("core: nil repartition sample")
	}
	for _, task := range s.remoteWorkerTasks() {
		if h := s.hop(task); h != nil && h.transport() == nil {
			continue // unclaimed spare slot: nothing to snapshot
		}
		if s.remoteMigrator(task) == nil {
			return fmt.Errorf("%w: worker %d transport cannot migrate cells", ErrRemoteNeedsStatic, task)
		}
	}
	if builder == nil {
		builder = s.cfg.Builder
	}
	newAssign, err := builder.Build(sample, s.cfg.Workers)
	if err != nil {
		return fmt.Errorf("core: global repartition build: %w", err)
	}
	s.globalMu.Lock()
	defer s.globalMu.Unlock()
	if s.dual != nil {
		return errors.New("core: global repartition already in progress")
	}
	// Snapshot the live query population: these stay on the old routes.
	// Remote populations are swept over the wire (one copying extraction
	// round per node, barriered behind all traffic sent before it).
	oldIDs := make(map[uint64]struct{})
	for _, w := range s.workers {
		w.mu.Lock()
		w.ix.Each(func(q *model.Query) { oldIDs[q.ID] = struct{}{} })
		w.mu.Unlock()
	}
	if s.HasRemoteWorkers() {
		specs := s.allCellSpecs()
		for _, task := range s.remoteWorkerTasks() {
			m := s.remoteMigrator(task)
			if m == nil {
				continue // unclaimed spare
			}
			cs, err := m.ExtractCells(specs, false, false)
			if err != nil {
				return fmt.Errorf("core: global repartition snapshot of worker %d: %w", task, err)
			}
			for _, p := range cs.Cells {
				for _, q := range p.Queries {
					oldIDs[q.ID] = struct{}{}
				}
			}
		}
	}
	d := &dualAssignment{
		old:     s.Assignment(),
		new:     newAssign,
		oldIDs:  oldIDs,
		initial: len(oldIDs),
	}
	s.dual = d
	s.assign.Store(assignBox{d})
	return nil
}

// globalFinishFraction is the old-query decay threshold below which the
// transition completes ("When the amount of old STS queries becomes small,
// we conduct the migration and stop the old workload distribution
// strategy").
const globalFinishFraction = 0.1

// checkGlobalProgress finishes an in-flight global repartition once the
// old population has decayed. Called from the adjustment loop.
func (s *System) checkGlobalProgress() {
	s.globalMu.Lock()
	d := s.dual
	s.globalMu.Unlock()
	if d == nil {
		return
	}
	rem, initial := d.remaining()
	if initial == 0 || float64(rem) <= globalFinishFraction*float64(initial) {
		s.FinishGlobalRepartition()
	}
}

// remoteRepartView is one remote worker's standing population at
// finish time: which of the old ids it holds (with their definitions)
// and the window entries its top-k subscription heaps hold.
type remoteRepartView struct {
	defs map[uint64]*model.Query
	subs map[uint64][]window.Entry
}

// remoteRepartBatch accumulates one remote worker's relocation rounds:
// whole-query installs (Cell < 0 payloads, indexed by the node's own
// placement) and ids to delete from its index.
type remoteRepartBatch struct {
	cells   []wire.CellPayload
	adopted []*model.Query
	deletes []uint64
}

// FinishGlobalRepartition migrates the remaining old-strategy queries to
// their new-strategy workers and retires the old assignment. It returns
// the number of queries relocated. Remote holders are discovered with
// one copying ExtractCells sweep per node (including each top-k
// subscription's held window entries), then the relocations are flushed
// as one InstallCells round per node whose ack deltas fold into the
// top-k board.
func (s *System) FinishGlobalRepartition() int {
	s.globalMu.Lock()
	d := s.dual
	if d == nil {
		s.globalMu.Unlock()
		return 0
	}
	s.dual = nil
	s.globalMu.Unlock()

	d.mu.Lock()
	ids := make([]uint64, 0, len(d.oldIDs))
	for id := range d.oldIDs {
		ids = append(ids, id)
	}
	d.oldIDs = map[uint64]struct{}{}
	d.mu.Unlock()

	// One barriered sweep per remote worker: its population and held
	// top-k window entries at finish time. A node unreachable this round
	// keeps its population where it is — its connection is failing the
	// run (or entering recovery) anyway, and a half-seen view would
	// misclassify every one of its queries as not-held.
	views := make(map[int]*remoteRepartView)
	if s.HasRemoteWorkers() {
		specs := s.allCellSpecs()
		for _, task := range s.remoteWorkerTasks() {
			m := s.remoteMigrator(task)
			if m == nil {
				continue
			}
			cs, err := m.ExtractCells(specs, false, true)
			if err != nil {
				s.log.Warn("global repartition: worker sweep failed; leaving its queries in place",
					"worker", task, "err", err)
				continue
			}
			v := &remoteRepartView{defs: make(map[uint64]*model.Query), subs: make(map[uint64][]window.Entry)}
			for _, p := range cs.Cells {
				for _, q := range p.Queries {
					v.defs[q.ID] = q
				}
				for _, se := range p.Subs {
					v.subs[se.ID] = append(v.subs[se.ID], se.Entries...)
				}
			}
			views[task] = v
		}
	}

	batches := make(map[int]*remoteRepartBatch)
	moved := 0
	for _, id := range ids {
		// Find a live definition on any holder, local or remote.
		var def *model.Query
		for _, w := range s.workers {
			w.mu.Lock()
			def = w.ix.Get(id)
			w.mu.Unlock()
			if def != nil {
				break
			}
		}
		if def == nil {
			for _, v := range views {
				if q, ok := v.defs[id]; ok {
					def = q
					break
				}
			}
		}
		if def == nil {
			continue // deleted concurrently
		}
		want := make(map[int]struct{})
		for _, w := range d.new.RouteQuery(def, true) {
			want[w] = struct{}{}
		}
		// Window deltas across all local holders are applied as one batch
		// so a relocation whose top-k membership survives nets out to zero
		// user-visible updates. The held window entries travel with the
		// subscription: the departing holders' heap contents (remote ones
		// arrived with the sweep) seed the new holders, whose own rings
		// cannot refill history they never saw.
		var ds []window.Delta
		var carried []window.Entry
		now := s.now()
		if def.IsTopK() {
			seen := make(map[uint64]struct{})
			for _, w := range s.workers {
				w.mu.Lock()
				for _, e := range w.win.SubEntries(id) {
					if _, dup := seen[e.MsgID]; !dup {
						seen[e.MsgID] = struct{}{}
						carried = append(carried, e)
					}
				}
				w.mu.Unlock()
			}
			for _, v := range views {
				for _, e := range v.subs[id] {
					if _, dup := seen[e.MsgID]; !dup {
						seen[e.MsgID] = struct{}{}
						carried = append(carried, e)
					}
				}
			}
		}
		for wi := range s.workers {
			_, wanted := want[wi]
			if v, remote := views[wi]; remote {
				_, holds := v.defs[id]
				b := batches[wi]
				if b == nil {
					b = &remoteRepartBatch{}
					batches[wi] = b
				}
				switch {
				case wanted && !holds:
					p := wire.CellPayload{Cell: -1, Queries: []*model.Query{def}}
					if def.IsTopK() && len(carried) > 0 {
						p.Subs = []wire.SubEntries{{ID: id, Entries: carried}}
					}
					b.cells = append(b.cells, p)
					b.adopted = append(b.adopted, def)
				case !wanted && holds:
					b.deletes = append(b.deletes, id)
				}
				continue
			}
			if s.isRemote(wi) {
				continue // sweep failed (or unclaimed spare): leave in place
			}
			w := s.workers[wi]
			w.mu.Lock()
			holds := w.ix.Get(id) != nil
			switch {
			case wanted && !holds:
				w.ix.Insert(def)
				if def.IsTopK() {
					ds = append(ds, w.win.AddSub(def, now)...)
					ds = append(ds, w.win.AdoptEntries(id, carried, now)...)
				}
			case !wanted && holds:
				w.ix.Delete(id)
				ds = append(ds, w.win.RemoveSub(id)...)
			}
			w.mu.Unlock()
		}
		s.board.Apply(ds)
		moved++
	}
	// Flush the relocations node by node. Installs run before deletes so
	// a subscription hopping between two remote workers is never without
	// a holder; each ack's admission/retraction deltas fold into the
	// board under the node's state epoch.
	for task, b := range batches {
		m := s.remoteMigrator(task)
		if m == nil || (len(b.cells) == 0 && len(b.deletes) == 0) {
			continue
		}
		if ack, _, err := m.InstallCells(b.cells, b.deletes); err == nil {
			s.board.ApplyRemote(task, ack.Epoch, ack.Deltas)
		} else {
			s.log.Warn("global repartition: install round failed", "worker", task, "err", err)
		}
		var carried []window.Entry
		for _, p := range b.cells {
			carried = append(carried, p.Ring...)
			for _, se := range p.Subs {
				carried = append(carried, se.Entries...)
			}
		}
		s.logAdoptions(task, b.adopted, b.deletes, carried)
	}
	// Install the new strategy as the only route; local adjustment
	// resumes against the new gridt when the new strategy is hybrid.
	s.assign.Store(assignBox{d.new})
	if gt, ok := d.new.(*hybrid.GridT); ok {
		s.gridT.Store(gt)
	}
	return moved
}
