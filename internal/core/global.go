package core

import (
	"errors"
	"fmt"
	"sync"

	"ps2stream/internal/hybrid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/window"
)

// dualAssignment routes with two strategies during a global repartition
// (§V-B): queries registered before the switch are tracked in oldIDs and
// keep routing (and deleting) through the old strategy; new queries use
// the new strategy; objects take the union so no match is lost.
type dualAssignment struct {
	old partition.Assignment
	new partition.Assignment

	mu      sync.Mutex
	oldIDs  map[uint64]struct{}
	initial int
}

var _ partition.Assignment = (*dualAssignment)(nil)

// RouteObject implements partition.Assignment (union of both routes).
func (d *dualAssignment) RouteObject(o *model.Object) []int {
	a := d.old.RouteObject(o)
	b := d.new.RouteObject(o)
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[int]struct{}, len(a)+len(b))
	out := make([]int, 0, len(a)+len(b))
	for _, w := range a {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	for _, w := range b {
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

// RouteQuery implements partition.Assignment: insertions go to the new
// strategy; deletions go wherever the insertion went.
func (d *dualAssignment) RouteQuery(q *model.Query, insert bool) []int {
	if insert {
		return d.new.RouteQuery(q, true)
	}
	d.mu.Lock()
	_, isOld := d.oldIDs[q.ID]
	if isOld {
		delete(d.oldIDs, q.ID)
	}
	d.mu.Unlock()
	if isOld {
		return d.old.RouteQuery(q, false)
	}
	return d.new.RouteQuery(q, false)
}

// NumWorkers implements partition.Assignment.
func (d *dualAssignment) NumWorkers() int { return d.new.NumWorkers() }

// Name implements partition.Assignment.
func (d *dualAssignment) Name() string {
	return fmt.Sprintf("dual(%s->%s)", d.old.Name(), d.new.Name())
}

// Footprint implements partition.Assignment: both structures are resident
// during the transition — the paper's "temporary compromise on the system
// performance by maintaining two workload distribution strategies".
func (d *dualAssignment) Footprint() int64 {
	d.mu.Lock()
	n := int64(len(d.oldIDs))
	d.mu.Unlock()
	return d.old.Footprint() + d.new.Footprint() + n*16
}

// remaining returns the live old-strategy query count and the initial
// count at switch time.
func (d *dualAssignment) remaining() (int, int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.oldIDs), d.initial
}

// GlobalRepartition begins a global load adjustment: a fresh assignment is
// built from the sample and installed alongside the current one. The old
// strategy keeps serving pre-existing queries until their population
// decays below finishFraction of its initial size, at which point the
// controller migrates the remainder and retires the old strategy
// (checkGlobalProgress). If the adjustment controller is disabled, call
// FinishGlobalRepartition explicitly.
func (s *System) GlobalRepartition(sample *partition.Sample, builder partition.Builder) error {
	if sample == nil {
		return errors.New("core: nil repartition sample")
	}
	if s.HasRemoteWorkers() {
		// Relocation extracts queries from local indexes; a remote
		// worker's population is not reachable from here.
		return ErrRemoteNeedsStatic
	}
	if builder == nil {
		builder = s.cfg.Builder
	}
	newAssign, err := builder.Build(sample, s.cfg.Workers)
	if err != nil {
		return fmt.Errorf("core: global repartition build: %w", err)
	}
	s.globalMu.Lock()
	defer s.globalMu.Unlock()
	if s.dual != nil {
		return errors.New("core: global repartition already in progress")
	}
	// Snapshot the live query population: these stay on the old routes.
	oldIDs := make(map[uint64]struct{})
	for _, w := range s.workers {
		w.mu.Lock()
		w.ix.Each(func(q *model.Query) { oldIDs[q.ID] = struct{}{} })
		w.mu.Unlock()
	}
	d := &dualAssignment{
		old:     s.Assignment(),
		new:     newAssign,
		oldIDs:  oldIDs,
		initial: len(oldIDs),
	}
	s.dual = d
	s.assign.Store(assignBox{d})
	return nil
}

// globalFinishFraction is the old-query decay threshold below which the
// transition completes ("When the amount of old STS queries becomes small,
// we conduct the migration and stop the old workload distribution
// strategy").
const globalFinishFraction = 0.1

// checkGlobalProgress finishes an in-flight global repartition once the
// old population has decayed. Called from the adjustment loop.
func (s *System) checkGlobalProgress() {
	s.globalMu.Lock()
	d := s.dual
	s.globalMu.Unlock()
	if d == nil {
		return
	}
	rem, initial := d.remaining()
	if initial == 0 || float64(rem) <= globalFinishFraction*float64(initial) {
		s.FinishGlobalRepartition()
	}
}

// FinishGlobalRepartition migrates the remaining old-strategy queries to
// their new-strategy workers and retires the old assignment. It returns
// the number of queries relocated.
func (s *System) FinishGlobalRepartition() int {
	s.globalMu.Lock()
	d := s.dual
	if d == nil {
		s.globalMu.Unlock()
		return 0
	}
	s.dual = nil
	s.globalMu.Unlock()

	d.mu.Lock()
	ids := make([]uint64, 0, len(d.oldIDs))
	for id := range d.oldIDs {
		ids = append(ids, id)
	}
	d.oldIDs = map[uint64]struct{}{}
	d.mu.Unlock()

	moved := 0
	for _, id := range ids {
		// Find a live definition on any worker.
		var def *model.Query
		for _, w := range s.workers {
			w.mu.Lock()
			def = w.ix.Get(id)
			w.mu.Unlock()
			if def != nil {
				break
			}
		}
		if def == nil {
			continue // deleted concurrently
		}
		want := make(map[int]struct{})
		for _, w := range d.new.RouteQuery(def, true) {
			want[w] = struct{}{}
		}
		// Window deltas across all holders are applied as one batch so a
		// relocation whose top-k membership survives nets out to zero
		// user-visible updates. The held window entries travel with the
		// subscription: the departing holders' heap contents seed the new
		// holders, whose own rings cannot refill history they never saw.
		var ds []window.Delta
		var carried []window.Entry
		now := s.now()
		if def.IsTopK() {
			seen := make(map[uint64]struct{})
			for _, w := range s.workers {
				w.mu.Lock()
				for _, e := range w.win.SubEntries(id) {
					if _, dup := seen[e.MsgID]; !dup {
						seen[e.MsgID] = struct{}{}
						carried = append(carried, e)
					}
				}
				w.mu.Unlock()
			}
		}
		for wi, w := range s.workers {
			_, wanted := want[wi]
			w.mu.Lock()
			holds := w.ix.Get(id) != nil
			switch {
			case wanted && !holds:
				w.ix.Insert(def)
				if def.IsTopK() {
					ds = append(ds, w.win.AddSub(def, now)...)
					ds = append(ds, w.win.AdoptEntries(id, carried, now)...)
				}
			case !wanted && holds:
				w.ix.Delete(id)
				ds = append(ds, w.win.RemoveSub(id)...)
			}
			w.mu.Unlock()
		}
		s.board.Apply(ds)
		moved++
	}
	// Install the new strategy as the only route; local adjustment
	// resumes against the new gridt when the new strategy is hybrid.
	s.assign.Store(assignBox{d.new})
	if gt, ok := d.new.(*hybrid.GridT); ok {
		s.gridT.Store(gt)
	}
	return moved
}
