package core

import (
	"bytes"
	"context"
	"encoding/gob"
	"math/rand"
	"time"

	"ps2stream/internal/load"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// adjustLoop is the adaptive load adjustment controller (§V-A, made
// continuous): every Interval it samples per-worker load from the live
// publish traffic (the worker bolts' op counters, smoothed with an EWMA),
// runs the imbalance detector (θ threshold + hysteresis + cooldown), and
// when the detector fires migrates load from the most to the least loaded
// worker — Phase I (split/merge that reduces total workload) then Phase
// II (Minimum Cost Migration) — while the stream keeps flowing.
func (s *System) adjustLoop(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.Adjust.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		s.adjustTick()
	}
}

// adjustTick runs one controller evaluation: maintenance (deferred
// extracts, global-repartition progress), load sampling, detection, and —
// on a trigger — one adjustment. Serialised with AdjustNow by adjustMu.
func (s *System) adjustTick() {
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	s.processPendingExtracts()
	s.checkGlobalProgress()
	s.globalMu.Lock()
	dualActive := s.dual != nil
	s.globalMu.Unlock()
	if dualActive {
		// Local adjustment pauses while two strategies co-exist —
		// the paper's "temporary compromise on the system
		// performance".
		return
	}
	if err := s.pollRemoteLoads(); err != nil {
		// Remote load is unobservable this interval (a blip, or
		// teardown racing the poll): leave the window accumulating and
		// retry next tick. A genuinely dead hop fails the run on the
		// data path.
		return
	}
	loads, windowOps := s.peekWorkerLoads()
	if windowOps < s.cfg.Adjust.MinWindowOps {
		// Too few operations to be statistically meaningful yet. The
		// window is left accumulating (nothing consumed, nothing reset)
		// so a low-rate stream still reaches the threshold across
		// several intervals instead of being invisible forever.
		return
	}
	s.commitWorkSample()
	s.adjChecks.Inc()
	smoothed := make([]float64, len(loads))
	for i, l := range loads {
		smoothed[i] = s.loadEWMA[i].Observe(l)
	}
	// The detector sees only slots that currently serve traffic: idle
	// spare slots (and drained, decommissioned ones) always read zero
	// load, and counting them would keep the balance factor pinned above
	// θ forever on an otherwise perfectly balanced cluster.
	active := s.activeWorkerSlots()
	masked := maskActive(smoothed, active)
	imbalance := load.BalanceFactor(masked)
	dec := s.detector.Observe(imbalance, time.Now())
	s.log.Debug("adjust check",
		"decision", dec.String(),
		"imbalance", imbalance,
		"theta", s.cfg.Adjust.Sigma,
		"window_ops", windowOps,
		"loads", smoothed)
	switch dec {
	case load.Sustaining:
		s.adjSustains.Inc()
	case load.Cooling:
		s.adjCooldowns.Inc()
	case load.Trigger:
		s.adjTriggers.Inc()
		lo, hi := load.ArgMinMax(masked)
		lo, hi = active[lo], active[hi]
		s.log.Info("adjust trigger",
			"imbalance", imbalance,
			"theta", s.cfg.Adjust.Sigma,
			"from", hi,
			"to", lo,
			"manual", false)
		s.runAdjustment(hi, lo, smoothed, s.adjustRng)
		s.lastAdjustNs.Store(time.Now().UnixNano())
	}
	s.resetLoadWindows()
}

// remoteMigrator returns worker w's wire cell-migration interface, nil
// for in-process tasks (and for remote transports without migration
// support, which canAdjust already excludes). For an elastic hop the
// CURRENT session's transport is returned even when the hop is down or
// replaying: a nil would make migration callers misread the slot as
// in-process and touch the coordinator's shadow index, whereas a
// control round on a dead connection fails fast and every caller
// aborts cleanly on error.
func (s *System) remoteMigrator(w int) remoteCellMigrator {
	if h := s.hop(w); h != nil {
		if m, ok := h.transport().(remoteCellMigrator); ok {
			return m
		}
		return nil
	}
	if tr, ok := s.cfg.RemoteWorkers[w]; ok {
		if m, ok := tr.(remoteCellMigrator); ok {
			return m
		}
	}
	return nil
}

// pollRemoteLoads refreshes nodeWork with every remote worker's
// cumulative processed-op counters (one stats control round each), so
// the detector's per-interval differences measure node-side processing
// progress — not the coordinator's hand-off rate, which would track
// routing alone and hide a node that cannot keep up. Caller holds
// adjustMu; no-op without remote workers.
func (s *System) pollRemoteLoads() error {
	if s.nodeWork == nil || !s.HasRemoteWorkers() {
		return nil
	}
	for _, task := range s.remoteWorkerTasks() {
		m := s.remoteMigrator(task)
		if m == nil {
			continue
		}
		sr, err := m.WorkerStats()
		if err != nil {
			s.log.Debug("adjust remote load poll failed", "worker", task, "err", err)
			return err
		}
		s.nodeWork[task] = workCounts{objects: sr.Objects, inserts: sr.Inserts, deletes: sr.Deletes}
		s.storeRemoteStats(task, sr)
	}
	return nil
}

// curWork reads worker i's cumulative op counts from the controller's
// point of view: the node-reported counters for remote tasks (filled by
// pollRemoteLoads), the worker bolts' tallies for local ones. Caller
// holds adjustMu.
func (s *System) curWork(i int) workCounts {
	if s.nodeWork != nil && s.isRemote(i) {
		return s.nodeWork[i]
	}
	return workCounts{
		objects: s.workObjects[i].Load(),
		inserts: s.workInserts[i].Load(),
		deletes: s.workDeletes[i].Load(),
	}
}

// peekWorkerLoads differences the per-worker cumulative op counters
// against the previous committed sample and evaluates Definition 1 per
// worker, without consuming the window — commitWorkSample does that once
// the caller decides to use the observation. It returns the per-window
// loads and the total ops observed. Caller holds adjustMu.
func (s *System) peekWorkerLoads() ([]float64, int64) {
	loads := make([]float64, len(s.workers))
	var total int64
	for i := range s.workers {
		cur := s.curWork(i)
		d := workCounts{
			objects: cur.objects - s.prevWork[i].objects,
			inserts: cur.inserts - s.prevWork[i].inserts,
			deletes: cur.deletes - s.prevWork[i].deletes,
		}
		total += d.objects + d.inserts + d.deletes
		loads[i] = s.cfg.Costs.Worker(float64(d.objects), float64(d.inserts), float64(d.deletes))
	}
	return loads, total
}

// commitWorkSample marks the current counter values as sampled, starting
// the next measurement window. Caller holds adjustMu.
func (s *System) commitWorkSample() {
	for i := range s.workers {
		s.prevWork[i] = s.curWork(i)
	}
}

// resetLoadWindows starts a fresh Definition-1 window: the dispatcher-side
// per-worker counters (Snapshot.WorkerLoads) and the per-cell object
// windows inside each GI2 index (Phase I/II candidate loads) — including
// the indexes living on remote nodes, which reset via a fire-and-forget
// control frame (FIFO guarantees the next CellStats observes it).
func (s *System) resetLoadWindows() {
	s.resetWindow()
	for i, w := range s.workers {
		if m := s.remoteMigrator(i); m != nil {
			_ = m.ResetWindow() // a failure here surfaces on the data path
			continue
		}
		w.mu.Lock()
		w.gi.ResetWindow()
		w.mu.Unlock()
	}
}

// AdjustNow forces one synchronous adjustment evaluation, bypassing the
// background detector's MinWindowOps gate, hysteresis, and cooldown: if
// the current (smoothed) balance factor violates σ, one adjustment runs
// before AdjustNow returns, and the background controller's cooldown
// restarts. It returns the number of migrations executed (0 when the
// system is balanced or the strategy does not support migration).
func (s *System) AdjustNow() int {
	if !s.canAdjust() {
		return 0
	}
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	s.processPendingExtracts()
	s.globalMu.Lock()
	dualActive := s.dual != nil
	s.globalMu.Unlock()
	if dualActive {
		return 0
	}
	if err := s.pollRemoteLoads(); err != nil {
		return 0 // remote load unobservable; adjusting blind would misplace cells
	}
	loads, windowOps := s.peekWorkerLoads()
	if windowOps > 0 {
		s.commitWorkSample()
	}
	smoothed := make([]float64, len(loads))
	for i, l := range loads {
		if windowOps > 0 {
			smoothed[i] = s.loadEWMA[i].Observe(l)
		} else {
			smoothed[i] = s.loadEWMA[i].Value()
		}
	}
	before := s.migrationCount()
	active := s.activeWorkerSlots()
	masked := maskActive(smoothed, active)
	if imbalance := load.BalanceFactor(masked); imbalance > s.cfg.Adjust.Sigma {
		s.adjManual.Inc()
		lo, hi := load.ArgMinMax(masked)
		lo, hi = active[lo], active[hi]
		s.log.Info("adjust trigger",
			"imbalance", imbalance,
			"theta", s.cfg.Adjust.Sigma,
			"from", hi,
			"to", lo,
			"manual", true)
		s.runAdjustment(hi, lo, smoothed, s.adjustRng)
		now := time.Now()
		s.detector.Force(now)
		s.lastAdjustNs.Store(now.UnixNano())
	}
	s.resetLoadWindows()
	return s.migrationCount() - before
}

func (s *System) migrationCount() int {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return len(s.migrations)
}

// runAdjustment executes one adjustment from worker wo to worker wl.
func (s *System) runAdjustment(wo, wl int, loads []float64, rng *rand.Rand) {
	var movedLoad float64

	// One planner snapshot per remote endpoint: Phase I shares, Phase II
	// candidates and the tau pricing for a remote worker all derive from
	// a single CellStats round, so they cannot disagree with each other
	// (and the adjustment costs one round per endpoint, not three). If
	// an endpoint cannot be observed the adjustment aborts — planning
	// against a zero view would move arbitrarily much. Local endpoints
	// keep reading their index directly: re-reads are cheap and observe
	// Phase I's effects exactly as before.
	remoteStats := make(map[int][]wire.CellStat)
	for _, w := range []int{wo, wl} {
		if m := s.remoteMigrator(w); m != nil {
			stats, err := m.CellStats()
			if err != nil {
				return
			}
			if stats == nil {
				// The snapshot is the remote-vs-local discriminator in
				// the readers below: an empty remote node must present a
				// non-nil (empty) view, or it would be misread as local
				// and planned from the coordinator's shadow index.
				stats = []wire.CellStat{}
			}
			remoteStats[w] = stats
		}
	}

	// Phase I: split/merge opportunities on the heaviest cells.
	woShares, wlShares := s.collectShares(wo, remoteStats[wo]), s.collectSharesMap(wl, remoteStats[wl])
	actions := migrate.PlanPhaseI(woShares, wlShares, s.cellObjTotal, migrate.PhaseIConfig{
		P:     s.cfg.Adjust.PhaseIP,
		Costs: s.cfg.Costs,
	})
	for _, a := range actions {
		start := time.Now()
		var moved int
		var nbytes int64
		var ok bool
		switch a.Kind {
		case migrate.ActionSplitText:
			moved, nbytes, ok = s.migrateSplit(wo, wl, a.Cell, a.Keys)
		case migrate.ActionMergeShares:
			moved, nbytes, ok = s.migrateShare(wo, wl, a.Cell)
		}
		if !ok {
			// A wire round failed before the routing flip: nothing moved,
			// so neither the stats nor the tau budget may count it.
			continue
		}
		movedLoad += a.LoadMoved
		s.recordMigration(MigrationStat{
			Algorithm:    s.cfg.Adjust.Algorithm,
			Duration:     time.Since(start),
			Bytes:        nbytes,
			Cells:        1,
			QueriesMoved: moved,
			From:         wo,
			To:           wl,
			PhaseI:       true,
		})
	}

	// Phase II: Minimum Cost Migration if the constraint still fails.
	// Tau — how much load to move — is computed in Definition 3 units
	// (cell window loads n_o·n_q), the same currency the candidate cells
	// and Phase I's LoadMoved are priced in. The detector's Definition 1
	// loads decide *whether* to adjust; they are not commensurable with
	// cell loads and using their gap as tau moves arbitrarily little or
	// much.
	cells := s.migrationCandidates(wo, remoteStats[wo])
	if len(cells) == 0 {
		return
	}
	tau := (s.cellLoadSum(wo, remoteStats[wo])-s.cellLoadSum(wl, remoteStats[wl]))/2 - movedLoad
	if tau <= 0 {
		return
	}
	selStart := time.Now()
	sel, _ := migrate.Select(s.cfg.Adjust.Algorithm, cells, tau, rng)
	selTime := time.Since(selStart)
	if len(sel.Cells) == 0 {
		return
	}
	start := time.Now()
	var totalMoved, totalCells int
	var totalBytes int64
	for _, c := range sel.Cells {
		moved, nbytes, ok := s.migrateShare(wo, wl, c.ID)
		if !ok {
			continue
		}
		totalMoved += moved
		totalBytes += nbytes
		totalCells++
	}
	if totalCells == 0 {
		return
	}
	s.recordMigration(MigrationStat{
		Algorithm:     s.cfg.Adjust.Algorithm,
		SelectionTime: selTime,
		Duration:      time.Since(start),
		Bytes:         totalBytes,
		Cells:         totalCells,
		QueriesMoved:  totalMoved,
		From:          wo,
		To:            wl,
	})
}

func (s *System) recordMigration(m MigrationStat) {
	s.log.Info("migration",
		"algorithm", string(m.Algorithm),
		"phase_i", m.PhaseI,
		"from", m.From,
		"to", m.To,
		"cells", m.Cells,
		"queries", m.QueriesMoved,
		"bytes", m.Bytes,
		"duration", m.Duration,
		"selection", m.SelectionTime,
		"epoch", s.routeFence.Epoch())
	s.migMu.Lock()
	s.migrations = append(s.migrations, m)
	s.migMu.Unlock()
}

func (s *System) cellObjTotal(cell int) int64 {
	if s.cellObjects == nil || cell < 0 || cell >= len(s.cellObjects) {
		return -1
	}
	return s.cellObjects[cell].Load()
}

// collectShares snapshots the Phase I view of a worker's cells — from
// the local index, or from the adjustment's pre-fetched CellStats
// snapshot for a remote worker (remote non-nil; see runAdjustment).
// Pending cells are filtered at call time, so a snapshot taken before
// Phase I still excludes the cells Phase I just migrated.
func (s *System) collectShares(w int, remote []wire.CellStat) []migrate.CellShare {
	if remote != nil {
		shares := make([]migrate.CellShare, 0, len(remote))
		for _, cs := range remote {
			if cs.Entries == 0 || s.cellPending(cs.Cell) {
				continue
			}
			share := migrate.CellShare{
				Cell:      cs.Cell,
				Queries:   cs.Entries,
				ObjSeen:   cs.ObjSeen,
				SizeBytes: cs.SizeBytes,
				Text:      s.gridT.Load().IsTextCell(cs.Cell),
			}
			for _, ts := range cs.Terms {
				share.Keys = append(share.Keys, migrate.KeyStat{
					Key: ts.Term, Queries: ts.Queries, ObjHits: ts.ObjHits,
				})
			}
			shares = append(shares, share)
		}
		return shares
	}
	ws := s.workers[w]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	stats := ws.gi.CellStats()
	shares := make([]migrate.CellShare, 0, len(stats))
	for _, cs := range stats {
		if cs.Entries == 0 || s.cellPending(cs.CellID) {
			continue
		}
		share := migrate.CellShare{
			Cell:      cs.CellID,
			Queries:   cs.Entries,
			ObjSeen:   cs.ObjSeen,
			SizeBytes: cs.SizeBytes,
			Text:      s.gridT.Load().IsTextCell(cs.CellID),
		}
		for _, ts := range ws.gi.CellTermStats(cs.CellID) {
			share.Keys = append(share.Keys, migrate.KeyStat{
				Key: ts.Term, Queries: ts.Queries, ObjHits: ts.ObjHits,
			})
		}
		shares = append(shares, share)
	}
	return shares
}

func (s *System) collectSharesMap(w int, remote []wire.CellStat) map[int]migrate.CellShare {
	out := make(map[int]migrate.CellShare)
	for _, cs := range s.collectShares(w, remote) {
		out[cs.Cell] = cs
	}
	return out
}

// cellLoadSum totals a worker's per-window Definition 3 cell loads
// (n_o·n_q), the unit Phase I/II migration quantities are priced in.
// Remote workers are read from the adjustment's pre-fetched snapshot.
func (s *System) cellLoadSum(w int, remote []wire.CellStat) float64 {
	if remote != nil {
		var sum float64
		for _, cs := range remote {
			if cs.Load > 0 {
				sum += cs.Load
			}
		}
		return sum
	}
	ws := s.workers[w]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var sum float64
	for _, cs := range ws.gi.CellStats() {
		if cs.Load > 0 {
			sum += cs.Load
		}
	}
	return sum
}

// migrationCandidates lists wo's cells as Minimum Cost Migration input
// (Definition 4): load L_g = n_o·n_q, size S_g = serialised query bytes.
// Remote workers are read from the adjustment's pre-fetched snapshot,
// with pending cells (including those Phase I just migrated) filtered
// at call time.
func (s *System) migrationCandidates(wo int, remote []wire.CellStat) []migrate.Cell {
	if remote != nil {
		var cells []migrate.Cell
		for _, cs := range remote {
			if cs.Entries == 0 || cs.Load <= 0 || s.cellPending(cs.Cell) {
				continue
			}
			cells = append(cells, migrate.Cell{ID: cs.Cell, Load: cs.Load, Size: cs.SizeBytes})
		}
		return cells
	}
	ws := s.workers[wo]
	ws.mu.Lock()
	defer ws.mu.Unlock()
	var cells []migrate.Cell
	for _, cs := range ws.gi.CellStats() {
		if cs.Entries == 0 || cs.Load <= 0 || s.cellPending(cs.CellID) {
			continue
		}
		cells = append(cells, migrate.Cell{ID: cs.CellID, Load: cs.Load, Size: cs.SizeBytes})
	}
	return cells
}

// pendingExtract is a deferred migration cleanup: the cell's routing has
// flipped to the target worker, but the source worker keeps its copies
// until every tuple enqueued to it before the flip has been processed
// (barrier on doneOps). This guarantees in-flight objects still find the
// queries; overlap duplicates are removed by the mergers.
type pendingExtract struct {
	cell   int
	wo, wl int
	keys   []string // nil: whole cell
	copied map[uint64]struct{}
	// copiedMsgs are the window entries copied with the cell; ring
	// entries that arrived at the source between copy and flip are
	// forwarded at extraction time, like leftover queries.
	copiedMsgs map[uint64]struct{}
	barrier    int64
}

// copyCellShare snapshots worker w's share of a cell — the whole cell
// when keys is nil, only the given registration keys otherwise —
// without removing anything: queries plus the cell's window ring. Local
// workers are read under their lock; remote workers serve one
// ExtractCells(remove=false) control round, FIFO-ordered behind all
// traffic sent to them.
func (s *System) copyCellShare(w, cell int, keys []string) (qs []*model.Query, ring []window.Entry, err error) {
	if m := s.remoteMigrator(w); m != nil {
		cs, err := m.ExtractCells([]wire.CellSpec{{Cell: cell, Keys: keys}}, false, false)
		if err != nil {
			return nil, nil, err
		}
		if len(cs.Cells) > 0 {
			return cs.Cells[0].Queries, cs.Cells[0].Ring, nil
		}
		return nil, nil, nil
	}
	ws := s.workers[w]
	ws.mu.Lock()
	if keys == nil {
		qs = ws.gi.QueriesInCell(cell)
	} else {
		qs = ws.gi.QueriesInCellKeys(cell, keys)
	}
	ring = ws.win.SnapshotCell(cell, s.now())
	ws.mu.Unlock()
	return qs, ring, nil
}

// transferShare moves a copied cell share into worker wl and returns
// the serialised transfer size. Locally this is ingest (serialise +
// simulated wire + deserialise under the destination's lock); remotely
// it is one InstallCells control round, whose ack guarantees every op
// batch sent afterwards is matched against the installed share.
func (s *System) transferShare(wl, cell int, qs []*model.Query, ring []window.Entry) (int64, error) {
	if m := s.remoteMigrator(wl); m != nil {
		if len(qs) == 0 && len(ring) == 0 {
			return 0, nil
		}
		ack, n, err := m.InstallCells([]wire.CellPayload{{Cell: cell, Queries: qs, Ring: ring}}, nil)
		if err == nil {
			// The node registered any migrated top-k subscriptions in its
			// window store; its admission deltas fold into the board here
			// so the reconciler sees the destination's copy the moment it
			// goes live (the source's retractions at extraction time then
			// net out against it).
			s.board.ApplyRemote(wl, ack.Epoch, ack.Deltas)
			// The destination now answers for these queries; its op log
			// must reconstruct them if the node crashes before the next
			// checkpoint. A failed install aborts the migration before the
			// routing flip, so nothing is logged in that case.
			s.logAdoptions(wl, qs, nil, ring)
		}
		return n, err
	}
	_, nbytes := s.ingest(wl, cell, qs, ring)
	return nbytes, nil
}

// announceFence forwards the current routing epoch to every remote
// worker after a flip. The frame itself is informational, but its FIFO
// position matters: the deferred ExtractCells request follows it on the
// source's connection, so the remote extraction is ordered behind the
// same epoch boundary the in-process drain barrier provides locally.
func (s *System) announceFence() {
	epoch := s.routeFence.Epoch()
	s.log.Debug("adjust fence advanced", "epoch", epoch)
	if !s.HasRemoteWorkers() {
		return
	}
	for _, task := range s.remoteWorkerTasks() {
		if m := s.remoteMigrator(task); m != nil {
			_ = m.SendFence(epoch) // informational; failures surface on the data path
		}
	}
}

// migrateShare moves worker wo's entire share of a cell to wl using the
// copy → transfer → flip-routing → deferred-extract sequence, so no
// matching object is ever routed to a worker without the queries. The
// cell's window state (ring entries and top-k-held objects located in the
// cell) travels with the queries, so sliding-window top-k subscriptions
// survive the hand-off without losing window history. Either endpoint
// may live on a remote node: the copy/transfer halves then ride the
// ExtractCells/InstallCells control frames instead of direct index
// calls, with unchanged barrier semantics. ok is false when a wire
// round failed before the routing flip — nothing moved, nothing to
// record.
func (s *System) migrateShare(wo, wl, cell int) (queriesMoved int, nbytes int64, ok bool) {
	// 1. Copy.
	qs, win, err := s.copyCellShare(wo, cell, nil)
	if err != nil {
		return 0, 0, false // wire failure before anything changed: abort this migration
	}
	// 2. Transfer. On the paper's cluster the receiving worker is busy
	// ingesting the migrated queries instead of processing tuples, which
	// is exactly what delays tuples in Figures 12(c)/15; locally ingest
	// holds the destination's lock for the same reason. A transfer
	// failure aborts before the routing flip — the destination holds at
	// worst an unused copy whose duplicate matches the mergers suppress.
	nbytes, err = s.transferShare(wl, cell, qs, win)
	if err != nil {
		return 0, 0, false
	}
	// 3. Flip routing, then advance the dispatcher fence: Advance blocks
	// until every dispatcher batch routed under the pre-flip table has
	// finished enqueuing, so the barrier read below covers all old-epoch
	// traffic — without the fence a laggard batch could enqueue a
	// matching object to wo after the barrier snapshot and lose its
	// matches to an early extraction.
	if s.gridT.Load().IsTextCell(cell) {
		s.gridT.Load().ReassignTextShare(cell, wo, wl)
	} else {
		s.gridT.Load().ReassignSpaceCell(cell, wl)
	}
	s.routeFence.Advance()
	s.announceFence()
	// 4. Schedule extraction once wo drains its pre-flip queue.
	s.scheduleExtract(pendingExtract{cell: cell, wo: wo, wl: wl, copied: idSet(qs),
		copiedMsgs: msgIDSet(win), barrier: s.enqueued[wo].Load()})
	return len(qs), nbytes, true
}

// migrateSplit converts a space cell to a text cell, moving only the given
// registration keys (Phase I split). The cell's window ring is copied (not
// moved) so the receiving share can repair its top-k subscriptions from
// the same history; the source keeps the cell for its remaining keys.
func (s *System) migrateSplit(wo, wl, cell int, keys []string) (queriesMoved int, nbytes int64, ok bool) {
	qs, win, err := s.copyCellShare(wo, cell, keys)
	if err != nil {
		return 0, 0, false
	}
	nbytes, err = s.transferShare(wl, cell, qs, win)
	if err != nil {
		return 0, 0, false
	}
	s.gridT.Load().SplitSpaceCellByText(cell, keys, wl)
	s.routeFence.Advance() // see migrateShare: barrier must postdate all old-epoch batches
	s.announceFence()
	s.scheduleExtract(pendingExtract{cell: cell, wo: wo, wl: wl, keys: keys,
		copied: idSet(qs), copiedMsgs: msgIDSet(win), barrier: s.enqueued[wo].Load()})
	return len(qs), nbytes, true
}

func msgIDSet(es []window.Entry) map[uint64]struct{} {
	out := make(map[uint64]struct{}, len(es))
	for _, e := range es {
		out[e.MsgID] = struct{}{}
	}
	return out
}

func idSet(qs []*model.Query) map[uint64]struct{} {
	out := make(map[uint64]struct{}, len(qs))
	for _, q := range qs {
		out[q.ID] = struct{}{}
	}
	return out
}

func (s *System) scheduleExtract(pe pendingExtract) {
	s.migMu.Lock()
	s.pendingEx = append(s.pendingEx, pe)
	s.pendingCells[pe.cell] = true
	s.migMu.Unlock()
}

// processPendingExtracts completes deferred extractions whose source
// worker has drained past the flip barrier.
func (s *System) processPendingExtracts() {
	s.migMu.Lock()
	var due []pendingExtract
	var rest []pendingExtract
	for _, pe := range s.pendingEx {
		if s.doneOps[pe.wo].Load() >= pe.barrier {
			due = append(due, pe)
		} else {
			rest = append(rest, pe)
		}
	}
	s.pendingEx = rest
	s.migMu.Unlock()
	for _, pe := range due {
		s.finishExtract(pe)
		s.log.Debug("adjust extract finished", "cell", pe.cell, "from", pe.wo, "to", pe.wl)
		s.migMu.Lock()
		delete(s.pendingCells, pe.cell)
		s.migMu.Unlock()
	}
}

// finishExtract runs one deferred extraction end to end: remove the
// migrated share from the source (direct index calls locally, one
// ExtractCells(remove=true) round for a remote source — FIFO-ordered
// behind every pre-flip op batch and the fence frame, which is the same
// barrier the doneOps counter provides locally), reconcile what changed
// between copy and flip, and forward the differences to the new owner.
func (s *System) finishExtract(pe pendingExtract) {
	now := s.now()
	var extracted []*model.Query
	var ring []window.Entry
	var ds []window.Delta
	// Remote-source extractions return the node's top-k retraction
	// deltas (RemoveSub/DropCell run on the node now) tagged with its
	// state epoch; they are applied AFTER the destination's adoptions
	// below, so a hand-off that preserves membership nets out to zero
	// user-visible updates, exactly like the local single-batch path.
	var srcDeltas []window.Delta
	var srcEpoch uint64
	srcRemote := false
	if m := s.remoteMigrator(pe.wo); m != nil {
		cs, err := m.ExtractCells([]wire.CellSpec{{Cell: pe.cell, Keys: pe.keys}}, true, false)
		if err != nil {
			// The extraction round failed. A timed-out round is
			// ambiguous — the node may or may not have removed the share
			// — so retrying is NOT safe: a second extraction of an
			// already-empty cell would misread every copied query as
			// "deleted between copy and flip" and wipe the migrated
			// share at the destination. Abandon the extraction instead:
			// at worst the source keeps a stale duplicate copy whose
			// matches the mergers suppress, and a control round only
			// fails on a connection that is about to fail the run on
			// the data path anyway.
			return
		}
		if len(cs.Cells) > 0 {
			extracted, ring = cs.Cells[0].Queries, cs.Cells[0].Ring
		}
		srcDeltas, srcEpoch, srcRemote = cs.Deltas, cs.Epoch, true
		// The share has left the source node; replaying it there after a
		// crash would resurrect queries the destination already owns. A
		// query spanning several of the source's cells is only dropped
		// from the replay base once its *last* cell leaves: the logged
		// delete is whole-query (the node's index deletes across cells),
		// so dropping on a partial departure would erase the cells the
		// source still owns from a post-crash replay. Routing is already
		// flipped, so the table answers whether the source still holds
		// the query through some other cell — via the read-only probe:
		// RouteQuery(q, false) is delete-routing and would corrupt H2's
		// registration counts.
		departed := extracted[:0:0]
		gt := s.gridT.Load()
		for _, q := range extracted {
			still := false
			if gt != nil {
				for _, t := range gt.PeekQuery(q) {
					if t == pe.wo {
						still = true
						break
					}
				}
			}
			if !still {
				departed = append(departed, q)
			}
		}
		s.logExtraction(pe.wo, departed)
	} else {
		s.workers[pe.wo].mu.Lock()
		if pe.keys == nil {
			extracted = s.workers[pe.wo].gi.ExtractCell(pe.cell)
		} else {
			extracted = s.workers[pe.wo].gi.ExtractCellKeys(pe.cell, pe.keys)
		}
		// Window hand-off: the new owner's adopted copy is responsible
		// for the cell now. For a whole-cell move the source releases its
		// window share (repairing still-live top-ks from its remaining
		// cells); for a key split it keeps the cell ring for its
		// remaining keys. Either way, subscriptions no longer live here
		// drop their heaps. The deltas stay in one batch with the
		// destination's adoptions below, so a hand-off that preserves
		// membership nets out to zero user-visible updates.
		//
		// Subscriptions whose only live presence was the migrated share
		// are removed first, so DropCell below doesn't waste a ring scan
		// refilling heaps that are about to disappear.
		for _, q := range extracted {
			if q.IsTopK() && !s.workers[pe.wo].gi.HasLive(q.ID) {
				ds = append(ds, s.workers[pe.wo].win.RemoveSub(q.ID)...)
			}
		}
		if pe.keys == nil {
			var dropDs []window.Delta
			ring, dropDs = s.workers[pe.wo].win.DropCell(pe.cell, now)
			ds = append(ds, dropDs...)
		} else {
			// Key split: wo keeps the cell for its remaining keys, but
			// entries that arrived between the snapshot and the routing
			// flip are still forwarded (as copies) so wl's ring holds the
			// cell's full history too.
			ring = s.workers[pe.wo].win.SnapshotCell(pe.cell, now)
		}
		s.workers[pe.wo].mu.Unlock()
	}
	var ringLeft []window.Entry
	for _, e := range ring {
		if _, ok := pe.copiedMsgs[e.MsgID]; !ok {
			ringLeft = append(ringLeft, e)
		}
	}
	// Forward anything that reached wo between copy and flip: queries
	// inserted at wo (present in the extraction but not in the copy)
	// move to wl, and queries *deleted* at wo (copied, but gone from
	// the extraction) are deleted from wl's adopted copy too — a
	// delete routed under the pre-flip table reaches only wo, and
	// without this reconciliation the migrated copy would keep
	// matching forever.
	var leftover []*model.Query
	for _, q := range extracted {
		if _, ok := pe.copied[q.ID]; !ok {
			leftover = append(leftover, q)
		}
	}
	extractedIDs := idSet(extracted)
	var deleted []uint64
	for id := range pe.copied {
		if _, ok := extractedIDs[id]; !ok {
			deleted = append(deleted, id)
		}
	}
	if m := s.remoteMigrator(pe.wl); m != nil {
		if len(leftover) > 0 || len(ringLeft) > 0 || len(deleted) > 0 {
			var cells []wire.CellPayload
			if len(leftover) > 0 || len(ringLeft) > 0 {
				cells = []wire.CellPayload{{Cell: pe.cell, Queries: leftover, Ring: ringLeft}}
			}
			// Best-effort: a failure here means the destination's
			// connection is down, which already fails the run on the
			// data path — re-extracting could not recover the copies
			// the source no longer holds.
			if ack, _, err := m.InstallCells(cells, deleted); err == nil {
				s.board.ApplyRemote(pe.wl, ack.Epoch, ack.Deltas)
			}
			// Logged regardless of the install outcome: routing already
			// flipped, so the destination slot owns these differences and
			// replay must reconstruct them even if this particular
			// delivery is lost to a crash the recovery path then heals.
			s.logAdoptions(pe.wl, leftover, deleted, ringLeft)
		}
		s.board.Apply(ds)
	} else if len(leftover) > 0 || len(ringLeft) > 0 || len(ds) > 0 || len(deleted) > 0 {
		s.workers[pe.wl].mu.Lock()
		for _, q := range leftover {
			s.workers[pe.wl].gi.InsertAt(pe.cell, q)
			if q.IsTopK() {
				ds = append(ds, s.workers[pe.wl].win.AddSub(q, now)...)
			}
		}
		for _, id := range deleted {
			s.workers[pe.wl].gi.Delete(id)
			ds = append(ds, s.workers[pe.wl].win.RemoveSub(id)...)
		}
		if len(ringLeft) > 0 {
			ds = append(ds, s.workers[pe.wl].win.AdoptCell(pe.cell, ringLeft, now)...)
		}
		s.board.Apply(ds)
		s.workers[pe.wl].mu.Unlock()
	}
	if srcRemote {
		s.board.ApplyRemote(pe.wo, srcEpoch, srcDeltas)
	}
}

// hasPendingExtracts reports whether any deferred extraction awaits its
// drain barrier or completion.
func (s *System) hasPendingExtracts() bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return len(s.pendingEx) > 0
}

// cellPending reports whether the cell awaits a deferred extraction (and
// must not be re-migrated yet).
func (s *System) cellPending(cell int) bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return s.pendingCells[cell]
}

// ingest transfers queries and the cell's window entries to the
// destination worker: gob-serialise (the measured migration cost S_g),
// then — under the destination's lock, as a real worker would be occupied
// receiving and indexing — apply the simulated wire/deserialisation delay
// and insert the copies. Migrated top-k subscriptions are registered in
// the destination's window store and the migrated window entries adopted,
// so the cell's top-k state is live at the destination before routing
// flips.
func (s *System) ingest(wl, cell int, qs []*model.Query, win []window.Entry) ([]*model.Query, int64) {
	if len(qs) == 0 && len(win) == 0 {
		return nil, 0
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(qs); err != nil {
		// Queries are plain exported structs; failure here is a
		// programming error.
		panic("core: gob encode: " + err.Error())
	}
	if err := enc.Encode(win); err != nil {
		panic("core: gob encode window: " + err.Error())
	}
	n := int64(buf.Len())
	var copied []*model.Query
	var entries []window.Entry
	ws := s.workers[wl]
	ws.mu.Lock()
	if rate := s.cfg.Adjust.WireBytesPerSec; rate > 0 {
		time.Sleep(time.Duration(float64(n) / rate * float64(time.Second)))
	}
	dec := gob.NewDecoder(&buf)
	if err := dec.Decode(&copied); err != nil {
		ws.mu.Unlock()
		panic("core: gob decode: " + err.Error())
	}
	if err := dec.Decode(&entries); err != nil {
		ws.mu.Unlock()
		panic("core: gob decode window: " + err.Error())
	}
	now := s.now()
	var ds []window.Delta
	for _, q := range copied {
		ws.gi.InsertAt(cell, q)
		if q.IsTopK() {
			ds = append(ds, ws.win.AddSub(q, now)...)
		}
	}
	ds = append(ds, ws.win.AdoptCell(cell, entries, now)...)
	s.board.Apply(ds)
	ws.mu.Unlock()
	return copied, n
}
