package core

import (
	"context"
	"sort"
	"sync"
	"testing"
	"time"

	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/workload"
)

// runHotspotPublish drives a fixed seeded workload — µ standing
// subscriptions fitted to hotspot 0, then a burst of objects concentrated
// on hotspot 1 (the shift that skews worker load) — and returns the
// delivered match set. With adjust true, the adaptive controller runs at
// an aggressive cadence AND the test hammers AdjustNow from a second
// goroutine while a third publishes continuously, so cell migrations
// interleave with live matching; the returned migration count proves the
// run actually moved cells. With adjust false the partitioning is frozen:
// the static oracle.
func runHotspotPublish(t *testing.T, adjust bool) (matches [][2]uint64, migrations int) {
	t.Helper()
	spec := workload.TweetsUS()
	const mu, nObjects = 600, 3000
	sample := workload.SampleFocused(spec, workload.Q1, 2000, 400, 77, 0, 2.0, 0.85)
	ms := newMatchSet()
	cfg := Config{
		Dispatchers: 2,
		Workers:     4,
		Mergers:     2,
		OnMatch:     ms.add,
	}
	if adjust {
		cfg.Adjust = AdjustConfig{
			Enabled:       true,
			Sigma:         1.05,
			Interval:      3 * time.Millisecond,
			Cooldown:      5 * time.Millisecond,
			SustainChecks: 1,
			MinWindowOps:  32,
			Seed:          77,
		}
	}
	sys, err := New(cfg, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Standing population first, fully applied before any object flows,
	// so the expected match set is exactly {(q, o) : o matches q} — the
	// same for every run regardless of migration timing.
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: mu, Seed: 77})
	warm := st.Prewarm(mu)
	sys.SubmitAll(warm)
	sys.Quiesce(int64(len(warm)))

	// Hot objects: concentrated on hotspot 1, which the partitioning was
	// not fitted for — the resulting skew is what makes the controller
	// migrate mid-publish.
	gen := workload.NewGenerator(spec, 770)
	gen.FocusHotspot(1, 0.85)
	objs := make([]*model.Object, nObjects)
	for i := range objs {
		objs[i] = gen.Object()
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	if adjust {
		// Hammer manual adjustments concurrently with the background
		// loop and the publisher; AdjustNow is the synchronous entry the
		// public API exposes, and racing it against live publishes is
		// the point of this test.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sys.AdjustNow()
					time.Sleep(2 * time.Millisecond)
				}
			}
		}()
	}
	for _, o := range objs {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: o})
	}
	sys.Quiesce(int64(len(warm) + nObjects))
	close(stop)
	wg.Wait()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	migrations = len(sys.Migrations())

	ms.mu.Lock()
	defer ms.mu.Unlock()
	out := make([][2]uint64, 0, len(ms.seen))
	for k := range ms.seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out, migrations
}

// TestAdjustPublishMatchesStaticOracle pins the adaptive controller's
// safety guarantee: publishing continuously while cells migrate must
// deliver exactly the match set of a static partitioning — nothing lost
// to an extraction racing the drain barrier, nothing invented by a
// double-owned cell (mergers deduplicate the overlap window). Run with
// -race in CI, this is also the controller's data-race coverage.
func TestAdjustPublishMatchesStaticOracle(t *testing.T) {
	want, _ := runHotspotPublish(t, false)
	// The adjusted run migrates in the common case but not always: an
	// AdjustNow landing right after a window reset can see empty
	// per-cell loads, and the finite burst may end before the next
	// opportunity. Retry the vacuous outcome a bounded number of times —
	// every run's match set is checked regardless. Six attempts keeps the
	// vacuous-outcome probability negligible on loaded CI runners.
	var got [][2]uint64
	var migrations int
	for attempt := 0; attempt < 6 && migrations == 0; attempt++ {
		got, migrations = runHotspotPublish(t, true)
	}
	if migrations == 0 {
		t.Fatal("no migrations executed in any attempt; the equivalence check is vacuous — tighten the controller config")
	}
	if len(want) == 0 {
		t.Fatal("workload produced no matches; the equivalence check is vacuous")
	}
	if len(got) != len(want) {
		t.Fatalf("adjusted run delivered %d distinct matches, static oracle %d (after %d migrations)",
			len(got), len(want), migrations)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match set diverges at %d: adjusted %v, oracle %v", i, got[i], want[i])
		}
	}
	t.Logf("match-set equivalence held across %d migrations (%d distinct matches)", migrations, len(want))
}

// TestAdjustNowRequiresHybrid: manual adjustment is a safe no-op when the
// strategy cannot migrate (non-hybrid routing has no gridt cells).
func TestAdjustNowRequiresHybrid(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 53, 0)
	sys, err := New(Config{
		Dispatchers: 1, Workers: 2,
		Builder: partition.Builders()["grid"],
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if n := sys.AdjustNow(); n != 0 {
		t.Fatalf("AdjustNow on a grid strategy migrated %d times", n)
	}
	if st := sys.Snapshot().Adjust; st.Enabled || st.EWMALoads != nil {
		t.Fatalf("grid strategy reports controller state: %+v", st)
	}
}

// TestAdjustNowManualMode: with the background controller off, AdjustNow
// still rebalances a skewed system on demand, and the controller stats
// account for it.
func TestAdjustNowManualMode(t *testing.T) {
	spec := workload.TweetsUS()
	sample := workload.SampleFocused(spec, workload.Q1, 2000, 400, 55, 0, 2.0, 0.85)
	sys, err := New(Config{
		Dispatchers: 1, Workers: 4,
		Adjust: AdjustConfig{Sigma: 1.05, MinWindowOps: 1}, // Enabled false: manual mode
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := workload.NewStream(spec, workload.Q1, workload.StreamConfig{Mu: 400, Seed: 55})
	warm := st.Prewarm(400)
	sys.SubmitAll(warm)
	sys.Quiesce(int64(len(warm)))
	gen := workload.NewGenerator(spec, 550)
	gen.FocusHotspot(1, 0.9)
	const nObjects = 1200
	for i := 0; i < nObjects; i++ {
		sys.Submit(model.Op{Kind: model.OpObject, Obj: gen.Object()})
	}
	sys.Quiesce(int64(len(warm) + nObjects))
	moved := sys.AdjustNow()
	if moved == 0 {
		t.Fatal("AdjustNow did not migrate despite a one-hotspot object burst")
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	adj := sys.Snapshot().Adjust
	if adj.Enabled {
		t.Error("manual mode reports Enabled")
	}
	if adj.ManualTriggers != 1 {
		t.Errorf("ManualTriggers = %d, want 1", adj.ManualTriggers)
	}
	if adj.Migrations != moved || adj.Migrations == 0 {
		t.Errorf("stats Migrations = %d, AdjustNow reported %d", adj.Migrations, moved)
	}
	if adj.Epoch == 0 {
		t.Error("routing epoch did not advance across migrations")
	}
	if adj.LastAdjust.IsZero() {
		t.Error("LastAdjust not stamped")
	}
	if len(adj.EWMALoads) != 4 {
		t.Errorf("EWMALoads = %v, want 4 workers", adj.EWMALoads)
	}
	if adj.QueriesMoved <= 0 || adj.BytesMoved <= 0 || adj.CellsMoved <= 0 {
		t.Errorf("migration aggregates not accounted: %+v", adj)
	}
}
