package core

import (
	"context"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/qindex"
	"ps2stream/internal/textutil"
	"ps2stream/internal/workload"
)

// indexFactories enumerates every worker-index option (nil = GI2 default).
func indexFactories() map[string]IndexFactory {
	return map[string]IndexFactory{
		"gi2": nil,
		"rtree": func(_ geo.Rect, _ int, _ *textutil.Stats) qindex.Index {
			return qindex.NewRTree(0)
		},
		"iqtree": func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewIQTree(bounds, stats, 0, 8)
		},
		"aptree": func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewAPTree(bounds, stats, 16, 0, 0)
		},
	}
}

// Every worker index must deliver exactly the oracle match set through
// the full topology — the same contract TestEndToEndExactAllStrategies
// enforces across distribution strategies.
func TestEndToEndExactAllWorkerIndexes(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 43, 4000)
	want := oracleMatches(ops)
	if len(want) == 0 {
		t.Fatal("vacuous: oracle produced no matches")
	}
	for name, f := range indexFactories() {
		t.Run(name, func(t *testing.T) {
			ms := newMatchSet()
			sys, err := New(Config{
				Dispatchers:  1,
				Workers:      4,
				Mergers:      2,
				Builder:      hybrid.Builder{},
				IndexFactory: f,
				OnMatch:      ms.add,
			}, sample)
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Start(context.Background()); err != nil {
				t.Fatal(err)
			}
			sys.SubmitAll(ops)
			if err := sys.Close(); err != nil {
				t.Fatal(err)
			}
			ms.mu.Lock()
			defer ms.mu.Unlock()
			missing, extra := 0, 0
			for k := range want {
				if !ms.seen[k] {
					missing++
				}
			}
			for k := range ms.seen {
				if !want[k] {
					extra++
				}
			}
			if missing > 0 || extra > 0 {
				t.Errorf("%s: %d missing, %d extra of %d oracle matches",
					name, missing, extra, len(want))
			}
		})
	}
}

// Dynamic adjustment migrates gridt cells, which only GI2 exposes.
func TestAdjustRequiresGI2(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 44, 0)
	_, err := New(Config{
		Builder: hybrid.Builder{},
		IndexFactory: func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewIQTree(bounds, stats, 0, 0)
		},
		Adjust: AdjustConfig{Enabled: true},
	}, sample)
	if err != ErrAdjustNeedsGI2 {
		t.Fatalf("err = %v, want ErrAdjustNeedsGI2", err)
	}
}

// A nil factory result is a configuration error, not a panic.
func TestNilIndexFactoryResult(t *testing.T) {
	sample, _ := smallWorkload(t, workload.Q1, 44, 0)
	_, err := New(Config{
		Builder:      hybrid.Builder{},
		IndexFactory: func(geo.Rect, int, *textutil.Stats) qindex.Index { return nil },
	}, sample)
	if err == nil {
		t.Fatal("nil factory result accepted")
	}
}

// Global repartition must work with any worker index (it relocates whole
// queries through the Index interface, not gridt cells).
func TestGlobalRepartitionNonGI2(t *testing.T) {
	sample, ops := smallWorkload(t, workload.Q1, 45, 1500)
	ms := newMatchSet()
	sys, err := New(Config{
		Dispatchers: 1,
		Workers:     4,
		Mergers:     2,
		Builder:     hybrid.Builder{},
		IndexFactory: func(bounds geo.Rect, _ int, stats *textutil.Stats) qindex.Index {
			return qindex.NewAPTree(bounds, stats, 0, 0, 0)
		},
		OnMatch: ms.add,
	}, sample)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	half := len(ops) / 2
	sys.SubmitAll(ops[:half])
	for sys.Processed() < int64(half) {
	}
	if err := sys.GlobalRepartition(sample, nil); err != nil {
		t.Fatal(err)
	}
	sys.SubmitAll(ops[half:])
	for sys.Processed() < int64(len(ops)) {
	}
	if moved := sys.FinishGlobalRepartition(); moved < 0 {
		t.Fatalf("FinishGlobalRepartition = %d", moved)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	want := oracleMatches(ops)
	ms.mu.Lock()
	defer ms.mu.Unlock()
	missing := 0
	for k := range want {
		if !ms.seen[k] {
			missing++
		}
	}
	if missing > 0 {
		t.Errorf("%d of %d oracle matches missing across repartition", missing, len(want))
	}
}
