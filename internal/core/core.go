// Package core wires PS2Stream together: dispatcher, worker and merger
// bolts on the stream engine (§III-B, Figure 1), the workload-distribution
// assignment on the dispatchers, GI2 indexes on the workers, duplicate
// elimination on the mergers, and the dynamic load adjustment controller
// of §V. The whole publish path is batch-oriented: operations move between
// tasks as slices of up to Config.BatchSize tuples, amortising channel
// sends, lock acquisitions and clock reads over whole batches.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/gi2"
	"ps2stream/internal/hybrid"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/load"
	"ps2stream/internal/metrics"
	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/qindex"
	"ps2stream/internal/stream"
	"ps2stream/internal/textutil"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// IndexFactory builds one worker's query index. granularity is the GI2
// grid resolution; other index kinds may ignore it.
type IndexFactory func(bounds geo.Rect, granularity int, stats *textutil.Stats) qindex.Index

// DefaultBatchSize is the tuples-per-channel-send default of the batched
// publish path (Config.BatchSize).
const DefaultBatchSize = 64

// defaultWorkers is the worker-task default of Config.fillDefaults,
// shared with ConnectRemoteWorkers (which must size against the default
// before New applies it).
const defaultWorkers = 8

// Config describes a PS2Stream deployment. The zero value is completed by
// New with the paper's defaults (4 dispatchers, 8 workers, 2 mergers,
// 2^6 × 2^6 grid granularity, hybrid partitioning).
type Config struct {
	// Dispatchers is the number of dispatcher tasks.
	Dispatchers int
	// Workers is the number of worker tasks (m in Definition 2).
	Workers int
	// Mergers is the number of merger tasks.
	Mergers int
	// Granularity is the per-axis grid resolution of GI2 and gridt.
	Granularity int
	// QueueCap bounds each task's input queue in tuples (backpressure),
	// rounded down to whole transfer batches (minimum one batch).
	QueueCap int
	// BatchSize is the number of tuples transferred per channel send on
	// every hop of the topology (spout→dispatcher→worker→merger). Batches
	// fill adaptively: a task flushes partial batches as soon as its input
	// goes idle, so batching costs no latency on a quiet stream. 1 means
	// unbatched (tuple-at-a-time); 0 uses DefaultBatchSize.
	BatchSize int
	// Builder constructs the workload distribution strategy; nil uses
	// hybrid partitioning.
	Builder partition.Builder
	// IndexFactory builds each worker's query index; nil uses GI2
	// (§IV-D). Dynamic load adjustment and Phase I split/merge migrate
	// gridt cells and therefore require GI2.
	IndexFactory IndexFactory
	// Costs are the Definition 1 constants.
	Costs load.Costs
	// Adjust configures dynamic load adjustment (§V); zero = disabled.
	Adjust AdjustConfig
	// OnMatch, when set, receives every deduplicated match from the
	// mergers. It is called concurrently from merger tasks.
	OnMatch func(model.Match)
	// OnTopK, when set, receives every global top-k membership change of
	// the sliding-window top-k subscriptions. It is called from worker
	// tasks while internal locks are held: it must be fast and must not
	// call back into the System.
	OnTopK func(TopKUpdate)
	// Clock supplies timestamps for window/top-k processing; nil uses
	// time.Now. Tests install a fake clock for deterministic expiry.
	Clock func() time.Time
	// Scorer ranks window entries for top-k subscriptions; nil uses
	// window.DefaultScorer.
	Scorer window.Scorer
	// WindowTick is the period of the eager window-expiry sweep
	// (default 50ms).
	WindowTick time.Duration
	// WindowRingCap bounds each grid cell's window ring in entries.
	WindowRingCap int
	// DedupWindow bounds each merger's duplicate-elimination memory in
	// (query, object) pairs.
	DedupWindow int
	// PerTupleWork simulates the per-received-tuple cost a real cluster
	// pays (deserialisation + network receive) at each worker. Zero for
	// in-process use; the experiment harness sets a few microseconds so
	// that tuple duplication carries the same economics as on the
	// paper's Storm deployment (see DESIGN.md substitutions).
	PerTupleWork time.Duration
	// RemoteWorkers places worker tasks out-of-process: task index →
	// transport to the psnode running it (ConnectRemoteWorkers dials
	// and fills this). Tasks not listed run in-process as usual.
	// Dynamic load adjustment (Adjust, AdjustNow) works across the
	// wire: gridt cells migrate between processes via the
	// ExtractCells/InstallCells control frames, and the load detector
	// consumes node-reported counters (docs/WIRE.md). Sliding-window
	// top-k subscriptions work too — each node maintains its local
	// window state and streams membership deltas back for global
	// reconciliation — as does GlobalRepartition, which relocates
	// remote queries through the same migration frames. A custom
	// Transport that lacks the corresponding wire extensions gets
	// ErrRemoteNeedsStatic from those operations.
	RemoteWorkers map[int]stream.Transport
	// RemoteMergers places merger tasks out-of-process. Matches routed
	// to a remote merger are deduplicated and delivered on its node;
	// the local OnMatch hook and Snapshot counters do not see them
	// (RemoteDelivered fetches the remote counts).
	RemoteMergers map[int]stream.Transport
	// WireStreams is the number of data connections per remote-worker
	// hop (the wire transport's multi-stream sessions; docs/WIRE.md).
	// Ops shard across the connections by the same routing hash the
	// dispatcher fields-grouping uses, so per-key order is preserved.
	// 0 defaults to Dispatchers — each dispatcher's batches then ride
	// their own connection — and values are capped at wire.MaxStreams.
	// Meaningful only for hops dialled by ConnectRemoteWorkers or
	// recovered by the membership layer; ignored for custom transports.
	WireStreams int
	// SpareWorkers pre-allocates this many extra worker slots beyond
	// Workers for runtime joins (System.AddWorker): routing bitmasks
	// and per-slot accounting are fixed-width, so elastic capacity is
	// reserved at build time. Requires the hybrid strategy, and
	// Workers+SpareWorkers must stay within the routing mask width (64).
	SpareWorkers int
	// Recovery configures crash recovery of remote worker slots
	// (op-log replay onto a redialled session); zero = disabled, and a
	// broken worker connection fails the run loudly as before.
	Recovery RecoveryConfig
	// Logger receives the structured operational trace — most notably
	// the adjustment controller's decision log: every detector verdict
	// (Debug), every trigger and migration (Info), and fence-epoch
	// advances (Debug). nil disables the trace entirely.
	Logger *slog.Logger
}

// AdjustConfig tunes the adaptive load adjustment controller: a
// background loop that samples per-worker load from the live publish
// traffic (windowed EWMA over the worker bolts' op counters), detects
// imbalance (θ threshold + hysteresis + cooldown), and migrates gridt
// cells from the most to the least loaded worker while the stream keeps
// flowing.
type AdjustConfig struct {
	// Enabled switches the background controller on. Requires the hybrid
	// strategy (the gridt index is the unit of migration). Manual
	// System.AdjustNow calls work whenever the strategy is hybrid,
	// regardless of Enabled.
	Enabled bool
	// Sigma is the balance constraint σ (the detector's θ threshold): a
	// window with L_max/L_min > Sigma counts as an imbalance violation.
	Sigma float64
	// Interval is the load-check period.
	Interval time.Duration
	// Cooldown is the minimum time between adjustments; after a
	// migration the controller stays quiet for this long so the moved
	// load shows up in the smoothed measurements before the next
	// decision (default 4×Interval).
	Cooldown time.Duration
	// SustainChecks is the detector's hysteresis: an imbalance must
	// persist for this many consecutive intervals before an adjustment
	// runs, so one noisy window cannot trigger a migration (default 2).
	SustainChecks int
	// EWMAAlpha smooths the per-interval worker loads
	// (avg ← α·sample + (1−α)·avg, default 0.5). Lower values trade
	// reaction speed for stability.
	EWMAAlpha float64
	// Algorithm selects Phase II cell selection (default GR).
	Algorithm migrate.Algorithm
	// PhaseIP is the p most-loaded-cells parameter of Phase I.
	PhaseIP int
	// WireBytesPerSec simulates network transfer during migration;
	// 0 disables the simulated delay.
	WireBytesPerSec float64
	// MinWindowOps suppresses adjustment decisions on windows with too
	// few routed operations to be statistically meaningful.
	MinWindowOps int64
	// Seed drives the RA baseline's randomness.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Dispatchers <= 0 {
		c.Dispatchers = 4
	}
	if c.Workers <= 0 {
		c.Workers = defaultWorkers
	}
	if c.Mergers <= 0 {
		c.Mergers = 2
	}
	if c.Granularity <= 0 {
		c.Granularity = grid.DefaultGranularity
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.BatchSize <= 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.Builder == nil {
		c.Builder = hybrid.Builder{}
	}
	if c.IndexFactory == nil {
		c.IndexFactory = func(bounds geo.Rect, granularity int, stats *textutil.Stats) qindex.Index {
			return gi2.New(bounds, granularity, stats)
		}
	}
	if c.Costs == (load.Costs{}) {
		c.Costs = load.DefaultCosts
	}
	if c.DedupWindow <= 0 {
		c.DedupWindow = 1 << 15
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Scorer == nil {
		c.Scorer = window.DefaultScorer
	}
	if c.WindowTick <= 0 {
		c.WindowTick = 50 * time.Millisecond
	}
	if c.WindowRingCap <= 0 {
		c.WindowRingCap = window.DefaultRingCap
	}
	// Adjustment defaults are always filled: AdjustNow works in manual
	// mode (Enabled false) whenever the strategy supports migration.
	if c.Adjust.Sigma <= 1 {
		c.Adjust.Sigma = 1.25
	}
	if c.Adjust.Interval <= 0 {
		c.Adjust.Interval = 200 * time.Millisecond
	}
	if c.Adjust.Cooldown <= 0 {
		c.Adjust.Cooldown = 4 * c.Adjust.Interval
	}
	if c.Adjust.SustainChecks <= 0 {
		c.Adjust.SustainChecks = 2
	}
	if c.Adjust.EWMAAlpha <= 0 || c.Adjust.EWMAAlpha > 1 {
		c.Adjust.EWMAAlpha = 0.5
	}
	if c.Adjust.Algorithm == "" {
		c.Adjust.Algorithm = migrate.GR
	}
	if c.Adjust.PhaseIP <= 0 {
		c.Adjust.PhaseIP = 8
	}
	if c.SpareWorkers < 0 {
		c.SpareWorkers = 0
	}
	if c.Adjust.MinWindowOps <= 0 {
		c.Adjust.MinWindowOps = 256
	}
	c.Recovery.fillDefaults()
}

// MigrationStat records one executed migration (Figures 12–15).
type MigrationStat struct {
	Algorithm     migrate.Algorithm
	SelectionTime time.Duration
	Duration      time.Duration
	Bytes         int64
	Cells         int
	QueriesMoved  int
	From, To      int
	PhaseI        bool
}

// AdjustStats summarises the adaptive adjustment controller's activity
// and its current smoothed view of the cluster.
type AdjustStats struct {
	// Enabled reports whether the background controller loop is running.
	Enabled bool
	// Epoch counts routing-table flips executed so far — one per
	// migrated cell share (each flip advances the dispatcher fencing
	// epoch), so it can exceed Migrations: a Phase II MigrationStat
	// covers every cell of one selection.
	Epoch uint64
	// Checks counts detector evaluations; Triggers counts the ones that
	// ran an adjustment. SustainSkips and CooldownSkips count violations
	// suppressed by hysteresis and cooldown; ManualTriggers counts
	// AdjustNow-initiated adjustments.
	Checks         int64
	Triggers       int64
	ManualTriggers int64
	SustainSkips   int64
	CooldownSkips  int64
	// LastAdjust is the wall-clock instant of the latest adjustment
	// (zero when none ran yet).
	LastAdjust time.Time
	// EWMALoads is the controller's smoothed Definition-1 load per
	// worker, fed from the worker bolts' per-interval op counts;
	// Imbalance is max/min over them (the detector's input).
	EWMALoads []float64
	Imbalance float64
	// Migrations/CellsMoved/QueriesMoved/BytesMoved aggregate the
	// executed migrations.
	Migrations   int
	CellsMoved   int
	QueriesMoved int
	BytesMoved   int64
}

// Snapshot is a point-in-time view of system metrics.
type Snapshot struct {
	Processed     int64
	Discarded     int64
	Matches       int64
	Duplicates    int64
	ThroughputTPS float64
	Latency       metrics.Snapshot
	MatchLatency  metrics.Snapshot
	WorkerLoads   []float64
	// DispatcherBytes estimates routing-structure memory (Figure 9).
	DispatcherBytes int64
	// WorkerBytes estimates per-worker GI2 memory (Figure 10).
	WorkerBytes []int64
	Migrations  []MigrationStat
	// Adjust reports the adaptive adjustment controller's state.
	Adjust AdjustStats
	// Stages summarises per-batch processing time at each topology
	// stage (StageDispatch/StageWorker/StageMerge), the "where does
	// time go" breakdown benchmark reports embed.
	Stages map[string]metrics.Snapshot
}

// System is a running PS2Stream instance.
type System struct {
	cfg    Config
	bounds geo.Rect
	assign atomic.Value // partition.Assignment (swapped by global adjustment)
	gridT  atomic.Pointer[hybrid.GridT]

	workers []*workerState
	input   chan opEnvelope
	topo    *stream.Topology

	runErr  chan error
	started atomic.Bool
	closed  atomic.Bool
	// runDone flips when the topology's Run returns — including a death
	// by captured task panic — so barriers waiting on processing
	// progress can fail fast instead of waiting on a stopped engine.
	runDone atomic.Bool
	cancel  context.CancelFunc
	// runCtx is the run's context once Start installs it (recovery
	// waits under it).
	runCtx context.Context

	// hops is the elastic-membership slot table: one workerHop per
	// out-of-process worker slot (including unclaimed spares), nil
	// entries for in-process slots, and a nil slice for deployments
	// with neither remote workers nor spares (every legacy code path
	// then behaves exactly as before). See membership.go.
	hops []*workerHop
	// remoteHello is the handshake template runtime joins dial with
	// (bounds, term statistics, geometry — everything but Task/Epoch).
	remoteHello wire.Hello

	// Metrics.
	processed  metrics.Counter
	discarded  metrics.Counter
	matches    metrics.Counter
	duplicates metrics.Counter
	// matchesEmitted counts match envelopes emitted by the local worker
	// bolts; together with the remote workers' drain-acked counts it is
	// the Drain barrier's target for merger-side delivery.
	matchesEmitted metrics.Counter
	latency        atomic.Pointer[metrics.Histogram]
	matchLat       atomic.Pointer[metrics.Histogram]
	tput           *metrics.Throughput

	// Observability (see obs.go). registry exposes every counter above
	// through /metrics and /statsz; the stage histograms record
	// per-batch processing time at each topology stage; log carries the
	// structured operational trace (never nil — a discard handler
	// stands in when Config.Logger is unset).
	registry   *metrics.Registry
	stageDisp  *metrics.Histogram
	stageWork  *metrics.Histogram
	stageMerge *metrics.Histogram
	log        *slog.Logger

	// remoteStats mirrors the latest node-reported StatsReply per
	// remote worker task, fed by every stats control round; the
	// registry's per-worker series read it so a coordinator scrape
	// reports cluster-wide counts (obs.go).
	remoteStatsMu sync.Mutex
	remoteStats   map[int]wire.StatsReply
	remoteStatsAt time.Time

	// Load accounting (dispatcher side, Definition 1 window).
	winObjects []atomic.Int64
	winInserts []atomic.Int64
	winDeletes []atomic.Int64
	// cellObjects counts object arrivals per grid cell (for Phase I
	// merge planning).
	cellObjects []atomic.Int64
	// enqueued/doneOps count tuples handed to / completed by each worker
	// (never reset); their difference is the worker's in-flight depth,
	// used as the drain barrier for deferred migration extraction.
	enqueued []atomic.Int64
	doneOps  []atomic.Int64

	// Worker-fed load accounting (adaptive controller): cumulative
	// per-worker op counts incremented by the worker bolts once per
	// batch; the controller samples and differences them each interval.
	// For remote worker tasks these follow wire hand-off (traffic
	// accounting); the controller uses nodeWork instead.
	workObjects []atomic.Int64
	workInserts []atomic.Int64
	workDeletes []atomic.Int64

	// Adaptive controller state. adjustMu serialises the background loop
	// and AdjustNow; prevWork/nodeWork/detector/adjustRng are owned
	// under it. loadEWMA values are atomically readable for Snapshot.
	adjustMu sync.Mutex
	prevWork []workCounts
	// nodeWork holds the latest node-reported cumulative op counts for
	// remote worker tasks (pollRemoteLoads fills it over the stats
	// control round each evaluation), so the detector sees what each
	// node actually processed this interval rather than what the
	// coordinator handed off to the wire.
	nodeWork  []workCounts
	loadEWMA  []*metrics.EWMA
	detector  *load.Detector
	adjustRng *rand.Rand

	// routeFence fences dispatcher routing against migration flips: each
	// dispatcher batch routes inside a read-side section, and a migrator
	// advances the fence after flipping the routing table, so drain
	// barriers read after the advance cover every old-epoch batch.
	routeFence *stream.Fence

	// Controller activity counters (AdjustStats).
	adjChecks    metrics.Counter
	adjTriggers  metrics.Counter
	adjManual    metrics.Counter
	adjSustains  metrics.Counter
	adjCooldowns metrics.Counter
	lastAdjustNs atomic.Int64

	migMu      sync.Mutex
	migrations []MigrationStat
	// pending deferred extractions (cells whose routing already flipped
	// but whose source copies await queue drain).
	pendingEx    []pendingExtract
	pendingCells map[int]bool

	// Global adjustment state.
	globalMu sync.Mutex
	dual     *dualAssignment

	// board reconciles worker-local top-k memberships into each
	// subscription's global top-k (see topk.go).
	board *topkBoard
}

// now reads the configured clock.
func (s *System) now() time.Time { return s.cfg.Clock() }

type opEnvelope struct {
	op model.Op
	t0 time.Time
	// refill marks a crash-replayed window-rebuild object (wire.OpEnv.
	// Refill); only recovery's replay path ever sets it.
	refill bool
}

type matchEnvelope struct {
	m  model.Match
	t0 time.Time
}

type workerState struct {
	mu sync.Mutex
	// ix is the worker's query index; the matching hot path and
	// checkpointing use only this interface.
	ix qindex.Index
	// gi is ix when the index is GI2, else nil. The migration machinery
	// (§V) moves gridt cells and needs GI2's cell-level operations.
	gi *gi2.Index
	// win holds the worker's sliding-window top-k state (cell rings and
	// per-subscription heaps), guarded by mu like ix.
	win *window.Store
	// deltaScratch accumulates window deltas across one input batch
	// (guarded by mu); reused so the hot path allocates nothing per batch.
	deltaScratch []window.Delta
}

// ErrAdjustNeedsHybrid is returned when dynamic adjustment is requested
// with a non-hybrid distribution strategy.
var ErrAdjustNeedsHybrid = errors.New("core: dynamic load adjustment requires the hybrid (gridt) strategy")

// ErrAdjustNeedsGI2 is returned when dynamic adjustment is requested with
// a non-GI2 worker index (queries migrate in units of gridt cells, which
// only GI2 exposes).
var ErrAdjustNeedsGI2 = errors.New("core: dynamic load adjustment requires the GI2 worker index")

// New builds a system: the Builder analyses the sample and the worker
// indexes are created over the sample's bounds with the sample's term
// statistics (shared, read-only, by dispatchers and workers).
func New(cfg Config, sample *partition.Sample) (*System, error) {
	cfg.fillDefaults()
	if sample == nil {
		return nil, errors.New("core: nil workload sample")
	}
	a, err := cfg.Builder.Build(sample, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("core: building %s assignment: %w", cfg.Builder.Name(), err)
	}
	s := &System{
		cfg:    cfg,
		bounds: sample.Bounds,
		tput:   metrics.NewThroughput(),
		input:  make(chan opEnvelope, cfg.QueueCap),
		runErr: make(chan error, 1),
	}
	s.latency.Store(metrics.NewHistogram(nil))
	s.matchLat.Store(metrics.NewHistogram(nil))
	s.assign.Store(assignBox{a})
	if gt, ok := a.(*hybrid.GridT); ok {
		s.gridT.Store(gt)
	}
	if cfg.Adjust.Enabled && s.gridT.Load() == nil {
		return nil, ErrAdjustNeedsHybrid
	}
	if cfg.SpareWorkers > 0 {
		if s.gridT.Load() == nil {
			// A joined spare only ever receives load through cell
			// migration, which is gridt's machinery.
			return nil, fmt.Errorf("core: SpareWorkers: %w", ErrAdjustNeedsHybrid)
		}
		if cfg.Workers+cfg.SpareWorkers > 64 {
			return nil, fmt.Errorf("core: Workers+SpareWorkers = %d exceeds the routing mask width (64)",
				cfg.Workers+cfg.SpareWorkers)
		}
	}
	for task := range cfg.RemoteWorkers {
		if task < 0 || task >= cfg.Workers {
			return nil, fmt.Errorf("%w: worker %d of %d", ErrRemoteTask, task, cfg.Workers)
		}
	}
	for task := range cfg.RemoteMergers {
		if task < 0 || task >= cfg.Mergers {
			return nil, fmt.Errorf("%w: merger %d of %d", ErrRemoteTask, task, cfg.Mergers)
		}
	}
	if cfg.Adjust.Enabled {
		// Phase I/II adjustment works across the wire, but only through
		// transports that speak the cell-migration control frames; a
		// custom Transport without them would leave the controller
		// unable to move (or even see) the remote cells.
		for task, tr := range cfg.RemoteWorkers {
			if _, ok := tr.(remoteCellMigrator); !ok {
				return nil, fmt.Errorf("%w: worker %d transport %T cannot migrate cells",
					ErrRemoteNeedsStatic, task, tr)
			}
		}
	}
	// The dial-time handshake pinned each node's topology shape and grid
	// geometry; refuse a Config that has since drifted from it, because
	// the nodes have already indexed against the handshake's geometry.
	for task, tr := range cfg.RemoteWorkers {
		h, ok := tr.(remoteHelloer)
		if !ok {
			continue
		}
		hello := h.Hello()
		granularity := cfg.Granularity // fillDefaults already ran
		switch {
		case hello.Workers != cfg.Workers+cfg.SpareWorkers:
			return nil, fmt.Errorf("%w: worker %d dialled with Workers=%d, Config now has %d",
				ErrRemoteConfigMismatch, task, hello.Workers, cfg.Workers+cfg.SpareWorkers)
		case hello.Granularity != granularity:
			return nil, fmt.Errorf("%w: worker %d dialled with Granularity=%d, Config now has %d",
				ErrRemoteConfigMismatch, task, hello.Granularity, granularity)
		case hello.BatchSize != cfg.BatchSize:
			return nil, fmt.Errorf("%w: worker %d dialled with BatchSize=%d, Config now has %d",
				ErrRemoteConfigMismatch, task, hello.BatchSize, cfg.BatchSize)
		case hello.Bounds != sample.Bounds:
			return nil, fmt.Errorf("%w: worker %d dialled with bounds %v, sample now has %v",
				ErrRemoteConfigMismatch, task, hello.Bounds, sample.Bounds)
		}
	}
	s.board = newTopKBoard(cfg.OnTopK)
	// Every per-slot structure is sized for Workers plus the spare
	// slots, so a runtime join never reallocates shared state; the
	// initial assignment still distributes over the first Workers slots
	// only (spares receive load via cell migration).
	totalSlots := cfg.Workers + cfg.SpareWorkers
	s.workers = make([]*workerState, totalSlots)
	for i := range s.workers {
		ix := cfg.IndexFactory(sample.Bounds, cfg.Granularity, sample.Stats)
		if ix == nil {
			return nil, errors.New("core: IndexFactory returned nil")
		}
		ws := &workerState{ix: ix}
		ws.gi, _ = ix.(*gi2.Index)
		// The window store shares the GI2 grid geometry when available so
		// window state migrates in the same cell units as the queries.
		wg := grid.New(sample.Bounds, cfg.Granularity, cfg.Granularity)
		if ws.gi != nil {
			wg = ws.gi.Grid()
		}
		ws.win = window.NewStore(wg, cfg.Scorer, cfg.WindowRingCap)
		s.workers[i] = ws
	}
	if cfg.Adjust.Enabled && s.workers[0].gi == nil {
		return nil, ErrAdjustNeedsGI2
	}
	s.winObjects = make([]atomic.Int64, totalSlots)
	s.winInserts = make([]atomic.Int64, totalSlots)
	s.winDeletes = make([]atomic.Int64, totalSlots)
	s.enqueued = make([]atomic.Int64, totalSlots)
	s.doneOps = make([]atomic.Int64, totalSlots)
	s.workObjects = make([]atomic.Int64, totalSlots)
	s.workInserts = make([]atomic.Int64, totalSlots)
	s.workDeletes = make([]atomic.Int64, totalSlots)
	s.initHops()
	s.remoteHello = cfg.RemoteHello(0, sample)
	s.routeFence = stream.NewFence()
	s.pendingCells = make(map[int]bool)
	if gt := s.gridT.Load(); gt != nil {
		s.cellObjects = make([]atomic.Int64, gt.Grid().NumCells())
	}
	if s.canAdjust() {
		s.prevWork = make([]workCounts, totalSlots)
		s.nodeWork = make([]workCounts, totalSlots)
		s.loadEWMA = make([]*metrics.EWMA, totalSlots)
		for i := range s.loadEWMA {
			s.loadEWMA[i] = metrics.NewEWMA(cfg.Adjust.EWMAAlpha)
		}
		s.detector = load.NewDetector(load.DetectorConfig{
			Theta:         cfg.Adjust.Sigma,
			SustainChecks: cfg.Adjust.SustainChecks,
			Cooldown:      cfg.Adjust.Cooldown,
		})
		s.adjustRng = rand.New(rand.NewSource(cfg.Adjust.Seed ^ 0xADAD))
	}
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(discardHandler{})
	}
	s.initObservability()
	return s, nil
}

// workCounts is one controller sample of a worker's cumulative op counts.
type workCounts struct {
	objects, inserts, deletes int64
}

// canAdjust reports whether the migration machinery is available: hybrid
// routing + GI2 worker indexes (the units cells migrate in), and every
// remote worker behind a transport that speaks the cell-migration
// control frames (local workers migrate through direct index calls).
func (s *System) canAdjust() bool {
	if s.gridT.Load() == nil || len(s.workers) == 0 || s.workers[0].gi == nil {
		return false
	}
	if s.hops != nil {
		for _, h := range s.hops {
			if h == nil {
				continue
			}
			tr := h.transport()
			if tr == nil {
				continue // unclaimed spare slot
			}
			if _, ok := tr.(remoteCellMigrator); !ok {
				return false
			}
		}
		return true
	}
	for _, tr := range s.cfg.RemoteWorkers {
		if _, ok := tr.(remoteCellMigrator); !ok {
			return false
		}
	}
	return true
}

// assignBox gives atomic.Value a single concrete type to hold, since the
// stored Assignment implementations vary.
type assignBox struct{ a partition.Assignment }

// Assignment returns the current distribution strategy.
func (s *System) Assignment() partition.Assignment {
	return s.assign.Load().(assignBox).a
}

// Start launches the topology. The system accepts operations via Submit
// until Close is called; Wait (or Close) reports the run outcome.
func (s *System) Start(ctx context.Context) error {
	if !s.started.CompareAndSwap(false, true) {
		return errors.New("core: already started")
	}
	runCtx, cancel := context.WithCancel(ctx)
	s.cancel = cancel
	s.runCtx = runCtx
	s.topo = s.buildTopology(runCtx)
	s.registerTopologyMetrics()
	if s.hops != nil || len(s.cfg.RemoteMergers) > 0 {
		// Remote transports block in socket reads the run context cannot
		// reach; force-close them on cancellation (a normal Close cancels
		// only after the topology has drained and the hops have already
		// ended via Goodbye/EOF, where this is a no-op).
		go func() {
			<-runCtx.Done()
			s.closeRemoteTransports()
		}()
	}
	adjustCtx, adjustCancel := context.WithCancel(runCtx)
	if s.cfg.Adjust.Enabled {
		go s.adjustLoop(adjustCtx)
	}
	if s.cfg.Recovery.Enabled && s.hops != nil {
		go s.checkpointLoop(adjustCtx)
	}
	go s.windowLoop(adjustCtx)
	go func() {
		err := s.topo.Run(runCtx)
		adjustCancel()
		s.runDone.Store(true)
		s.runErr <- err
	}()
	return nil
}

// Submit enqueues one operation, blocking under backpressure. It must not
// be called after Close. The envelope timestamp comes from the configured
// clock: it drives latency accounting and is the publish instant that
// window expiry is measured from (one stamp per object, so every worker
// replica agrees on its window lifetime).
func (s *System) Submit(op model.Op) {
	s.input <- opEnvelope{op: op, t0: s.now()}
}

// SubmitAll enqueues a batch.
func (s *System) SubmitAll(ops []model.Op) {
	for _, op := range ops {
		s.Submit(op)
	}
}

// Close stops input, waits for all in-flight tuples to drain, and returns
// the topology's run error.
func (s *System) Close() error {
	if !s.started.Load() {
		return errors.New("core: not started")
	}
	if !s.closed.CompareAndSwap(false, true) {
		return errors.New("core: already closed")
	}
	close(s.input)
	err := <-s.runErr
	s.cancel()
	return err
}

// Abort cancels the run without draining.
func (s *System) Abort() {
	if s.cancel != nil {
		s.cancel()
	}
	if s.closed.CompareAndSwap(false, true) {
		close(s.input)
		<-s.runErr
	}
}

// Snapshot captures current metrics.
func (s *System) Snapshot() Snapshot {
	snap := Snapshot{
		Processed:       s.processed.Value(),
		Discarded:       s.discarded.Value(),
		Matches:         s.matches.Value(),
		Duplicates:      s.duplicates.Value(),
		ThroughputTPS:   s.tput.Rate(),
		Latency:         s.latency.Load().Snapshot(),
		MatchLatency:    s.matchLat.Load().Snapshot(),
		DispatcherBytes: s.Assignment().Footprint(),
	}
	snap.WorkerLoads = s.windowLoads()
	snap.WorkerBytes = make([]int64, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		snap.WorkerBytes[i] = w.ix.Footprint() + w.win.Footprint()
		w.mu.Unlock()
	}
	s.migMu.Lock()
	snap.Migrations = append([]MigrationStat(nil), s.migrations...)
	s.migMu.Unlock()
	snap.Adjust = s.adjustStats(snap.Migrations)
	snap.Stages = s.StageSnapshots()
	return snap
}

// adjustStats assembles the controller's AdjustStats from its counters and
// the given migration log.
func (s *System) adjustStats(migs []MigrationStat) AdjustStats {
	st := AdjustStats{
		Enabled:        s.cfg.Adjust.Enabled,
		Epoch:          s.routeFence.Epoch(),
		Checks:         s.adjChecks.Value(),
		Triggers:       s.adjTriggers.Value(),
		ManualTriggers: s.adjManual.Value(),
		SustainSkips:   s.adjSustains.Value(),
		CooldownSkips:  s.adjCooldowns.Value(),
		Migrations:     len(migs),
	}
	if ns := s.lastAdjustNs.Load(); ns != 0 {
		st.LastAdjust = time.Unix(0, ns)
	}
	for _, m := range migs {
		st.CellsMoved += m.Cells
		st.QueriesMoved += m.QueriesMoved
		st.BytesMoved += m.Bytes
	}
	if s.loadEWMA != nil {
		st.EWMALoads = make([]float64, len(s.loadEWMA))
		for i, e := range s.loadEWMA {
			st.EWMALoads[i] = e.Value()
		}
		// Inactive slots (unclaimed spares, decommissioned workers) sit
		// at zero load; dividing by them would read as infinite skew.
		st.Imbalance = load.BalanceFactor(maskActive(st.EWMALoads, s.activeWorkerSlots()))
	}
	return st
}

// windowLoads evaluates Definition 1 over the current dispatcher window.
func (s *System) windowLoads() []float64 {
	loads := make([]float64, len(s.winObjects))
	for i := range loads {
		loads[i] = s.cfg.Costs.Worker(
			float64(s.winObjects[i].Load()),
			float64(s.winInserts[i].Load()),
			float64(s.winDeletes[i].Load()),
		)
	}
	return loads
}

func (s *System) resetWindow() {
	for i := range s.winObjects {
		s.winObjects[i].Store(0)
		s.winInserts[i].Store(0)
		s.winDeletes[i].Store(0)
	}
}

// Bounds returns the monitored region the system was built over.
func (s *System) Bounds() geo.Rect { return s.bounds }

// LiveQueries returns a point-in-time copy of the live query population,
// deduplicated across workers and sorted by id. Workers are locked one at
// a time, so with a live stream the set is a near-cut, not an exact one;
// quiesce input first for an exact snapshot.
func (s *System) LiveQueries() []*model.Query {
	byID := make(map[uint64]*model.Query)
	for _, w := range s.workers {
		w.mu.Lock()
		w.ix.Each(func(q *model.Query) { byID[q.ID] = q })
		w.mu.Unlock()
	}
	out := make([]*model.Query, 0, len(byID))
	for _, q := range byID {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WorkerOpCounts returns each worker's cumulative received-operation
// count (objects + insertions + deletions), the adaptive controller's
// traffic accounting. Cheap: three atomic loads per worker, no locks.
func (s *System) WorkerOpCounts() []int64 {
	out := make([]int64, len(s.workers))
	for i := range out {
		out[i] = s.workObjects[i].Load() + s.workInserts[i].Load() + s.workDeletes[i].Load()
	}
	return out
}

// WorkerQueryCounts reports live distinct queries per worker (tests,
// examples).
func (s *System) WorkerQueryCounts() []int {
	out := make([]int, len(s.workers))
	for i, w := range s.workers {
		w.mu.Lock()
		out[i] = w.ix.QueryCount()
		w.mu.Unlock()
	}
	return out
}

// ResetLatencyStats discards latency observations collected so far (e.g.
// the prewarm burst) so subsequent measurements reflect steady state.
func (s *System) ResetLatencyStats() {
	s.latency.Store(metrics.NewHistogram(nil))
	s.matchLat.Store(metrics.NewHistogram(nil))
}

// Processed returns the number of input tuples routed so far (cheap; no
// worker locks, unlike Snapshot).
func (s *System) Processed() int64 { return s.processed.Value() }

// Quiesce blocks until the first `submitted` operations have been routed
// by the dispatchers AND every worker has drained its input (done ops
// caught up with enqueued ops, stable across two polls — the enqueue
// counters move mid-dispatch, after Processed already has). Benchmarks
// and tests use it as an exact "all standing state is applied" barrier
// between a prewarm phase and a measured/asserted phase; it never
// returns early, so only call it after submitting at least `submitted`
// operations.
func (s *System) Quiesce(submitted int64) {
	stable := 0
	for stable < 2 {
		if s.Processed() < submitted {
			stable = 0
			time.Sleep(2 * time.Millisecond)
			continue
		}
		ok := true
		for i := range s.enqueued {
			if s.doneOps[i].Load() != s.enqueued[i].Load() {
				ok = false
				break
			}
		}
		if !ok {
			stable = 0
			time.Sleep(2 * time.Millisecond)
			continue
		}
		stable++
		time.Sleep(2 * time.Millisecond)
	}
}

// MatchCount returns delivered (deduplicated) matches so far.
func (s *System) MatchCount() int64 { return s.matches.Value() }

// Migrations returns executed migrations so far.
func (s *System) Migrations() []MigrationStat {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	return append([]MigrationStat(nil), s.migrations...)
}
