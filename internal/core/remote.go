// Remote task placement: the coordinator side of a multi-process
// deployment. A worker or merger task can run out-of-process (a psnode,
// internal/node); the hop to it is a stream.Transport backed by
// internal/wire, and the bolts below forward the task's traffic across
// it. In-process channels stay the default fast path — only the tasks
// listed in Config.RemoteWorkers/RemoteMergers leave the process.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/stream"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// remoteWorkerDrainer is the optional Transport extension the Drain
// barrier uses: the returned emitted count is the remote worker's
// cumulative matches, valid for every op batch sent before the call.
type remoteWorkerDrainer interface {
	DrainWorker() (done, emitted int64, err error)
}

// remoteMergerCounter is the optional Transport extension the Drain
// barrier uses for remote mergers: cumulative delivered/duplicate
// counts covering every match batch sent before the call.
type remoteMergerCounter interface {
	Counts() (delivered, duplicates int64, err error)
}

// ErrRemoteNeedsStatic is returned when an operation that must reach
// inside every worker is combined with a custom RemoteWorkers transport
// lacking the wire extension the operation rides on: GlobalRepartition
// and dynamic load adjustment need cell migration
// (ExtractCells/InstallCells control frames), and SubscribeTopK needs
// the window delta stream plus the fenced AdvanceWindow round. The
// wire-backed transports ConnectRemoteWorkers installs implement every
// extension, so deployments on psnode never see this error — it
// survives only for custom stream.Transport implementations that stop
// at Send/Recv (docs/WIRE.md).
var ErrRemoteNeedsStatic = errors.New("core: operation requires in-process workers (or a remote transport with the matching wire extension)")

// ErrRemoteTask is returned for RemoteWorkers/RemoteMergers keys
// outside the topology's task range.
var ErrRemoteTask = errors.New("core: remote task index out of range")

// ErrRemoteConfigMismatch is returned by New when a remote worker's
// dial-time handshake disagrees with the final Config: RemoteHello pins
// Workers/Granularity/BatchSize (and the sample bounds) at dial time,
// so mutating the Config between ConnectRemoteWorkers and New would
// silently disagree with the geometry the nodes indexed against.
var ErrRemoteConfigMismatch = errors.New("core: remote worker handshake disagrees with Config")

// ErrNilSample is returned when remote peers are dialled without a
// workload sample: the handshake distributes the sample's bounds and
// term statistics, without which gridt/GI2 cell ids cannot agree
// across processes.
var ErrNilSample = errors.New("core: remote connection requires a non-nil workload sample")

// remoteCellMigrator is the optional Transport extension dynamic load
// adjustment uses to migrate gridt cells across the wire: planner
// statistics, node-reported load counters, the copy/extract and install
// halves of a migration, and the per-interval cell-window reset. The
// wire-backed transports ConnectRemoteWorkers installs implement it;
// adjustment with a remote transport that does not is refused
// (ErrRemoteNeedsStatic).
type remoteCellMigrator interface {
	WorkerStats() (wire.StatsReply, error)
	CellStats() ([]wire.CellStat, error)
	ExtractCells(cells []wire.CellSpec, remove, subs bool) (wire.CellShare, error)
	InstallCells(cells []wire.CellPayload, deletes []uint64) (wire.InstallAck, int64, error)
	SendFence(epoch uint64) error
	ResetWindow() error
}

// remoteDeltaSource is the optional Transport extension the top-k
// reconciliation board consumes: the handler receives the worker's
// spontaneous window delta batches, each tagged with the node's state
// epoch so the board can fence out replayed or pre-crash deltas.
type remoteDeltaSource interface {
	SetDeltaHandler(h func(epoch uint64, ds []window.Delta))
}

// remoteWindowAdvancer is the optional Transport extension the fenced
// AdvanceWindows round uses: the worker processes every op sent before
// the call, advances its sliding windows to the coordinator clock, and
// returns the eviction deltas with its state epoch.
type remoteWindowAdvancer interface {
	AdvanceWindow(now time.Time) (epoch uint64, ds []window.Delta, err error)
}

// remoteHelloer exposes the dial-time handshake for New's
// config-agreement validation.
type remoteHelloer interface {
	Hello() wire.Hello
}

// remoteAddresser exposes the dialled address, so crash recovery can
// redial the same node (membership.go).
type remoteAddresser interface {
	Addr() string
}

// wireWorkerTransport adapts a wire.WorkerClient to stream.Transport:
// Send carries opEnvelope tuples out as one OpBatch frame per transfer
// batch; Recv yields the worker's matches as matchEnvelope tuples.
type wireWorkerTransport struct {
	c *wire.WorkerClient
	// sendMu guards the envelope scratch. Sends come from one engine
	// goroutine per hop, but recovery's replay path can hand the
	// transport off; the lock makes the reuse unconditionally safe.
	sendMu sync.Mutex
	ops    []wire.OpEnv
}

func (t *wireWorkerTransport) Send(batch []stream.Tuple) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	// SendOps encodes synchronously (the bytes are copied into a pooled
	// frame buffer before it returns), so the scratch is reusable across
	// calls — no per-batch slice allocation on the hot path.
	t.ops = t.ops[:0]
	for i := range batch {
		env := batch[i].Value.(opEnvelope)
		t.ops = append(t.ops, wire.OpEnv{Op: env.op, T0: env.t0, Refill: env.refill})
	}
	return t.c.SendOps(wire.OpBatch{Ops: t.ops})
}

func (t *wireWorkerTransport) Recv() ([]stream.Tuple, error) {
	mb, err := t.c.RecvMatches()
	if err != nil {
		return nil, err
	}
	ts := make([]stream.Tuple, len(mb.Matches))
	for i := range mb.Matches {
		ts[i] = stream.Tuple{Value: matchEnvelope{m: mb.Matches[i].M, t0: mb.Matches[i].T0}}
	}
	return ts, nil
}

func (t *wireWorkerTransport) CloseSend() error { return t.c.CloseSend() }
func (t *wireWorkerTransport) Close() error     { return t.c.Close() }

func (t *wireWorkerTransport) DrainWorker() (done, emitted int64, err error) {
	ack, err := t.c.Drain()
	if err != nil {
		return 0, 0, err
	}
	return ack.Done, ack.Emitted, nil
}

// remoteCellMigrator implementation: delegate to the wire client's
// control rounds (FIFO-ordered on the worker's connection, behind all
// op batches and fence frames sent before them).
func (t *wireWorkerTransport) WorkerStats() (wire.StatsReply, error) { return t.c.Stats() }
func (t *wireWorkerTransport) CellStats() ([]wire.CellStat, error)   { return t.c.CellStats() }
func (t *wireWorkerTransport) ExtractCells(cells []wire.CellSpec, remove, subs bool) (wire.CellShare, error) {
	return t.c.ExtractCells(cells, remove, subs)
}
func (t *wireWorkerTransport) InstallCells(cells []wire.CellPayload, deletes []uint64) (wire.InstallAck, int64, error) {
	return t.c.InstallCells(cells, deletes)
}
func (t *wireWorkerTransport) SendFence(epoch uint64) error { return t.c.SendFence(epoch) }
func (t *wireWorkerTransport) ResetWindow() error           { return t.c.ResetWindow() }
func (t *wireWorkerTransport) Hello() wire.Hello            { return t.c.Hello() }
func (t *wireWorkerTransport) Addr() string                 { return t.c.Addr() }

func (t *wireWorkerTransport) SetDeltaHandler(h func(epoch uint64, ds []window.Delta)) {
	t.c.SetDeltaHandler(h)
}

func (t *wireWorkerTransport) AdvanceWindow(now time.Time) (uint64, []window.Delta, error) {
	ack, err := t.c.AdvanceWindow(now)
	if err != nil {
		return 0, nil, err
	}
	return ack.Epoch, ack.Deltas, nil
}

// wireMergerTransport adapts a wire.MergerClient to stream.Transport
// (forward direction only: mergers send nothing back but counters).
type wireMergerTransport struct {
	c      *wire.MergerClient
	sendMu sync.Mutex
	ms     []wire.MatchEnv
}

func (t *wireMergerTransport) Send(batch []stream.Tuple) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	// SendMatches encodes before queueing, so the scratch is reusable
	// (see wireWorkerTransport.Send).
	t.ms = t.ms[:0]
	for i := range batch {
		env := batch[i].Value.(matchEnvelope)
		t.ms = append(t.ms, wire.MatchEnv{M: env.m, T0: env.t0})
	}
	return t.c.SendMatches(wire.MatchBatch{Matches: t.ms})
}

func (t *wireMergerTransport) Recv() ([]stream.Tuple, error) { return nil, io.EOF }
func (t *wireMergerTransport) CloseSend() error              { return t.c.CloseSend() }
func (t *wireMergerTransport) Close() error                  { return t.c.Close() }

func (t *wireMergerTransport) Counts() (delivered, duplicates int64, err error) {
	return t.c.Counts()
}

// RemoteHello assembles the coordinator handshake for task `task`: the
// grid geometry and sampled term statistics every process must share
// for gridt/GI2 cell ids — and the registration-keyword choice — to
// agree across the wire. A nil sample yields a Hello with zero bounds
// and no term statistics (useless to a peer, but never a panic);
// ConnectRemoteWorkers/ConnectRemoteMergers refuse it with ErrNilSample
// before dialling.
func (c *Config) RemoteHello(task int, sample *partition.Sample) wire.Hello {
	granularity := c.Granularity
	if granularity <= 0 {
		granularity = grid.DefaultGranularity
	}
	batch := c.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	workers := c.Workers
	if workers <= 0 {
		workers = defaultWorkers
	}
	if c.SpareWorkers > 0 {
		// Nodes size their shared grid topology by the handshake's
		// worker count; spare slots must be part of it from the start
		// so a runtime join agrees on cell ids.
		workers += c.SpareWorkers
	}
	streams := c.WireStreams
	if streams <= 0 {
		// Default to one data connection per dispatcher: batches
		// round-robin whole across the streams (one frame per transfer
		// batch), so dispatcher-many streams keep every dispatcher's
		// writer busy without over-subscribing small deployments.
		if streams = c.Dispatchers; streams <= 0 {
			streams = 4
		}
	}
	if streams > wire.MaxStreams {
		streams = wire.MaxStreams
	}
	h := wire.Hello{
		Role:        wire.RoleCoordinator,
		Task:        task,
		Workers:     workers,
		Granularity: granularity,
		BatchSize:   batch,
		Streams:     streams,
	}
	if c.Recovery.Enabled {
		hb := c.Recovery.HeartbeatInterval
		if hb <= 0 {
			hb = 500 * time.Millisecond
		}
		h.HeartbeatMillis = int(hb / time.Millisecond)
	}
	if sample != nil {
		h.Bounds = sample.Bounds
		if sample.Stats != nil {
			h.Terms = sample.Stats.Vector()
		}
	}
	return h
}

// ConnectRemoteWorkers dials one worker node per address (with
// reconnect-with-backoff, so peers may still be starting) and installs
// the transports as worker tasks 0..len(addrs)-1. Defaults are applied
// first (an unset Workers still means the usual 8), then Workers is
// raised if the addresses outnumber it; tasks beyond the remote ones
// run in-process. On error, only the transports this call dialed are
// closed and removed: caller-installed entries survive, so a retry (or
// a New over the partially-connected Config) never sees a closed
// transport left behind.
func (c *Config) ConnectRemoteWorkers(addrs []string, sample *partition.Sample, b wire.Backoff) error {
	if len(addrs) == 0 {
		return nil
	}
	if sample == nil {
		return fmt.Errorf("core: connecting workers: %w", ErrNilSample)
	}
	// Pin the worker default before sizing against it, so listing one
	// remote address does not silently shrink an unset Workers from the
	// default 8 down to 1. Only Workers is touched: the other defaults
	// stay New's business (an unset Mergers, in particular, must remain
	// unset so ConnectRemoteMergers can mean "all mergers remote").
	if c.Workers <= 0 {
		c.Workers = defaultWorkers
	}
	if c.Workers < len(addrs) {
		c.Workers = len(addrs)
	}
	if c.RemoteWorkers == nil {
		c.RemoteWorkers = make(map[int]stream.Transport, len(addrs))
	}
	dialed := make([]int, 0, len(addrs))
	for i, addr := range addrs {
		cl, err := wire.DialWorker(addr, c.RemoteHello(i, sample), b)
		if err != nil {
			for _, task := range dialed {
				c.RemoteWorkers[task].Close()
				delete(c.RemoteWorkers, task)
			}
			return fmt.Errorf("core: connecting worker %d at %s: %w", i, addr, err)
		}
		c.RemoteWorkers[i] = &wireWorkerTransport{c: cl}
		dialed = append(dialed, i)
	}
	return nil
}

// RemoteWorkerSummary describes the negotiated transport of the wire-
// connected remote workers for startup logs: how many hops run the
// binary multi-stream session and how many fell back to the legacy gob
// protocol (an old peer on the other side).
func (c *Config) RemoteWorkerSummary() string {
	var binary, legacy, streams int
	for _, tr := range c.RemoteWorkers {
		wt, ok := tr.(*wireWorkerTransport)
		if !ok {
			continue
		}
		if wt.c.Codec() == wire.CodecBinary && wt.c.Streams() > 0 {
			binary++
			streams = wt.c.Streams()
		} else {
			legacy++
		}
	}
	switch {
	case binary == 0 && legacy == 0:
		return "no wire-connected workers"
	case legacy == 0:
		return fmt.Sprintf("%d hops on the binary codec, %d data streams each", binary, streams)
	case binary == 0:
		return fmt.Sprintf("%d hops on legacy gob (old peers)", legacy)
	default:
		return fmt.Sprintf("%d hops on the binary codec (%d streams), %d on legacy gob", binary, streams, legacy)
	}
}

// ConnectRemoteMergers dials one merger node per address and installs
// the transports as merger tasks 0..len(addrs)-1. An unset Mergers
// becomes len(addrs) — every merger task remote, so the whole match
// stream is delivered on the merger nodes; set Mergers explicitly for
// mixed placement (the surplus tasks' hash shares then deliver locally
// through OnMatch, while remote shares do not).
func (c *Config) ConnectRemoteMergers(addrs []string, sample *partition.Sample, b wire.Backoff) error {
	if len(addrs) == 0 {
		return nil
	}
	if sample == nil {
		return fmt.Errorf("core: connecting mergers: %w", ErrNilSample)
	}
	if c.Mergers < len(addrs) {
		c.Mergers = len(addrs)
	}
	if c.RemoteMergers == nil {
		c.RemoteMergers = make(map[int]stream.Transport, len(addrs))
	}
	dialed := make([]int, 0, len(addrs))
	for i, addr := range addrs {
		cl, err := wire.DialMerger(addr, c.RemoteHello(i, sample), b)
		if err != nil {
			// Close and remove only this call's dials (see
			// ConnectRemoteWorkers).
			for _, task := range dialed {
				c.RemoteMergers[task].Close()
				delete(c.RemoteMergers, task)
			}
			return fmt.Errorf("core: connecting merger %d at %s: %w", i, addr, err)
		}
		c.RemoteMergers[i] = &wireMergerTransport{c: cl}
		dialed = append(dialed, i)
	}
	return nil
}

// remoteWorkerTasks returns the out-of-process worker task ids —
// including unclaimed spare slots — in ascending order (stable
// spout-task mapping and drain iteration).
func (s *System) remoteWorkerTasks() []int {
	if s.hops != nil {
		tasks := make([]int, 0, len(s.hops))
		for t, h := range s.hops {
			if h != nil {
				tasks = append(tasks, t)
			}
		}
		return tasks
	}
	tasks := make([]int, 0, len(s.cfg.RemoteWorkers))
	for t := range s.cfg.RemoteWorkers {
		tasks = append(tasks, t)
	}
	sort.Ints(tasks)
	return tasks
}

// HasRemoteWorkers reports whether any worker task runs (or can join)
// out-of-process.
func (s *System) HasRemoteWorkers() bool {
	return s.hops != nil || len(s.cfg.RemoteWorkers) > 0
}

// remoteAdvancer returns worker task's fenced window-advance interface,
// nil for in-process tasks and for remote transports without the
// extension. Like remoteMigrator, an elastic hop's CURRENT session
// transport is returned even mid-outage: a control round on a dead
// connection fails fast and the caller skips the worker for this round.
func (s *System) remoteAdvancer(task int) remoteWindowAdvancer {
	if h := s.hop(task); h != nil {
		if a, ok := h.transport().(remoteWindowAdvancer); ok {
			return a
		}
		return nil
	}
	if tr, ok := s.cfg.RemoteWorkers[task]; ok {
		if a, ok := tr.(remoteWindowAdvancer); ok {
			return a
		}
	}
	return nil
}

// TopKRemoteSupport reports whether sliding-window top-k subscriptions
// can be hosted on the current membership: nil when every remote worker
// transport implements the window-delta extension (the spontaneous
// delta stream and the fenced AdvanceWindow round), an
// ErrRemoteNeedsStatic-wrapped error naming the first worker whose
// transport does not. Wire-backed psnode transports always qualify;
// unclaimed spare slots have no transport yet and are skipped — a
// later AddWorker joins through the same wire client.
func (s *System) TopKRemoteSupport() error {
	for _, task := range s.remoteWorkerTasks() {
		var tr stream.Transport
		if h := s.hop(task); h != nil {
			if tr = h.transport(); tr == nil {
				continue // unclaimed spare slot
			}
		} else {
			tr = s.cfg.RemoteWorkers[task]
		}
		_, src := tr.(remoteDeltaSource)
		_, adv := tr.(remoteWindowAdvancer)
		if !src || !adv {
			return fmt.Errorf("%w: worker %d transport carries no window delta stream", ErrRemoteNeedsStatic, task)
		}
	}
	return nil
}

// installDeltaHandler points a transport's spontaneous top-k delta
// stream at the reconciliation board, tagged with the worker's task id
// (the board's per-source epoch-dedup key). No-op for transports
// without the extension — their deployments cannot host top-k
// subscriptions (SubscribeTopK refuses them).
func (s *System) installDeltaHandler(task int, tr stream.Transport) {
	src, ok := tr.(remoteDeltaSource)
	if !ok {
		return
	}
	src.SetDeltaHandler(func(epoch uint64, ds []window.Delta) {
		s.board.ApplyRemote(task, epoch, ds)
	})
}

// closeRemoteTransports force-closes every remote hop (idempotent);
// used to unblock transport reads when the run is cancelled.
func (s *System) closeRemoteTransports() {
	if s.hops != nil {
		for _, h := range s.hops {
			if h == nil {
				continue
			}
			h.mu.Lock()
			h.closing = true
			tr := h.tr
			h.broadcastLocked()
			h.mu.Unlock()
			if tr != nil {
				tr.Close()
			}
		}
	} else {
		for _, tr := range s.cfg.RemoteWorkers {
			tr.Close()
		}
	}
	for _, tr := range s.cfg.RemoteMergers {
		tr.Close()
	}
}

// remoteWorkerBolt stands in for an out-of-process worker task: it
// forwards each received op batch across the hop's current transport
// session (one frame per batch) and accounts the hand-off. The
// worker's matches re-enter the topology through remoteMatchSpout.
// With recovery enabled every op is appended to the hop's op log
// before the wire sees it, and a down/replaying session only logs —
// replay owns delivery until the hop re-opens.
type remoteWorkerBolt struct {
	s    *System
	task int
	hop  *workerHop
}

// ProcessBatch implements stream.BatchBolt.
func (r *remoteWorkerBolt) ProcessBatch(ts []stream.Tuple, _ stream.Collector) {
	// These tallies follow hand-off and feed WorkerOpCounts (traffic
	// accounting, benchmarks). The adjustment controller does NOT use
	// them for remote tasks: it polls the node's own processed-op
	// counters over the stats control round (pollRemoteLoads), so the
	// detector sees node-side processing progress rather than the
	// coordinator's forwarding rate.
	var nObj, nIns, nDel int64
	for i := range ts {
		switch ts[i].Value.(opEnvelope).op.Kind {
		case model.OpObject:
			nObj++
		case model.OpInsert:
			nIns++
		case model.OpDelete:
			nDel++
		}
	}
	if nObj > 0 {
		r.s.workObjects[r.task].Add(nObj)
	}
	if nIns > 0 {
		r.s.workInserts[r.task].Add(nIns)
	}
	if nDel > 0 {
		r.s.workDeletes[r.task].Add(nDel)
	}
	r.forward(ts)
	r.s.doneOps[r.task].Add(int64(len(ts)))
	// Tuple latency for a remote task is measured at wire hand-off; the
	// end-to-end figure remains the mergers' match latency.
	end := r.s.now()
	h := r.s.latency.Load()
	for i := range ts {
		h.Observe(end.Sub(ts[i].Value.(opEnvelope).t0))
	}
}

// forward puts one batch on the hop. Without an op log this is the
// legacy contract: a send failure fails the run loudly. With one, the
// batch is logged first and the wire send is best-effort — a failure
// trips recovery, and the logged ops replay onto the next session.
func (r *remoteWorkerBolt) forward(ts []stream.Tuple) {
	h := r.hop
	if h.log == nil {
		h.mu.Lock()
		tr, gen := h.tr, h.gen
		h.mu.Unlock()
		if tr == nil {
			panic(fmt.Sprintf("remote worker %d: no transport", r.task))
		}
		if err := tr.Send(ts); err != nil {
			// Mark the slot failed before dying loudly: the engine
			// captures task panics and then runs this bolt's Close hook,
			// which would dress the hop up as a graceful teardown — the
			// Drain barrier must see a crash, not a close.
			r.s.hopFailed(h, gen, err)
			panic(fmt.Sprintf("remote worker %d: %v", r.task, err))
		}
		return
	}
	var lastSeq uint64
	for i := range ts {
		env := ts[i].Value.(opEnvelope)
		lastSeq = h.log.Append(env.op, env.t0)
	}
	h.mu.Lock()
	if h.tr == nil || h.down || h.replaying || h.closing {
		h.mu.Unlock()
		return // logged; replay (or teardown) owns delivery
	}
	if lastSeq <= h.sentSeq {
		h.mu.Unlock()
		return // recovery's catch-up raced us and already shipped these
	}
	tr, gen := h.tr, h.gen
	// Send under the hop lock: it serialises with recovery's install
	// and catch-up, and with the checkpoint watermark read, so sentSeq
	// never claims an op the wire has not seen.
	err := tr.Send(ts)
	if err == nil {
		h.sentSeq = lastSeq
	}
	h.mu.Unlock()
	if err != nil {
		r.s.hopFailed(h, gen, err)
	}
}

// Process implements stream.Bolt (single-tuple fallback).
func (r *remoteWorkerBolt) Process(tu stream.Tuple, c stream.Collector) {
	r.ProcessBatch([]stream.Tuple{tu}, c)
}

// Close implements the engine's io.Closer hook: when the dispatchers
// finish, half-close the hop so the worker node flushes its remaining
// matches and ends the return stream. A hop caught mid-outage (down or
// replaying) is hard-closed instead, so the slot's spout unblocks and
// an in-flight recovery aborts at its next closing check.
func (r *remoteWorkerBolt) Close() error {
	h := r.hop
	h.mu.Lock()
	h.closing = true
	tr := h.tr
	hard := h.down || h.replaying
	h.broadcastLocked()
	h.mu.Unlock()
	if tr == nil {
		return nil
	}
	if hard {
		return tr.Close()
	}
	if cs, ok := tr.(stream.SendCloser); ok {
		return cs.CloseSend()
	}
	return tr.Close()
}

// remoteMatchSpout re-injects a remote worker's match stream into the
// topology, where it joins the local workers' matches on the way to the
// mergers. One spout serves the hop across every transport session:
// when a session dies its buffered matches are drained and retired,
// and the spout waits for recovery to install the next session (or for
// a spare slot to be claimed by AddWorker).
type remoteMatchSpout struct {
	s    *System
	task int
	hop  *workerHop
	ctx  context.Context // the run context, for telling failure from teardown
}

// Next implements stream.Spout.
func (r *remoteMatchSpout) Next(c stream.Collector) bool {
	for {
		tr, gen, ok := r.waitTransport()
		if !ok {
			return false
		}
		ts, err := tr.Recv()
		if err != nil {
			if r.finishSession(gen, err) {
				return false
			}
			continue // next session
		}
		h := r.hop
		h.mu.Lock()
		h.sessionRecv += int64(len(ts))
		h.mu.Unlock()
		for i := range ts {
			c.Emit(streamMatches, ts[i])
		}
		// Flush per received frame: the wire already batches, and holding
		// matches back here would add latency the batch bound cannot cap
		// (this spout may then block in Recv indefinitely).
		c.Flush()
		return true
	}
}

// waitTransport blocks until the hop has an undrained session to read,
// or the slot is done for good. It deliberately does NOT skip a down
// session: one that died before the spout ever read it must still be
// drained, so its already-delivered matches are retired and recovery
// (which waits for drainedGen) can proceed.
func (r *remoteMatchSpout) waitTransport() (stream.Transport, uint64, bool) {
	h := r.hop
	for {
		h.mu.Lock()
		if h.exited {
			h.mu.Unlock()
			return nil, 0, false
		}
		if h.tr != nil && h.gen > h.drainedGen {
			tr, gen := h.tr, h.gen
			h.mu.Unlock()
			return tr, gen, true
		}
		if h.failed || h.closing || h.decommissioned {
			h.exited = true
			h.active = false
			h.broadcastLocked()
			h.mu.Unlock()
			return nil, 0, false
		}
		ch := h.notify
		h.mu.Unlock()
		select {
		case <-ch:
		case <-r.ctx.Done():
			return nil, 0, false
		}
	}
}

// finishSession retires a session whose Recv returned err: its
// received matches fold into the hop's retired total and drainedGen
// advances (unblocking recovery). It returns true when the spout is
// done for good. EOF is clean only during a coordinator-initiated
// teardown (close, decommission, abort) — the node never ends a
// session on its own, so an unexpected EOF is a crash like any read
// error: recoverable hops redial and replay, unrecoverable ones are
// marked failed so the Drain barrier reports the loss instead of
// waiting on it forever.
func (r *remoteMatchSpout) finishSession(gen uint64, err error) bool {
	h := r.hop
	h.mu.Lock()
	h.retired += h.sessionRecv
	h.sessionRecv = 0
	if gen > h.drainedGen {
		h.drainedGen = gen
	}
	if !h.failed && (h.closing || h.decommissioned || r.ctx.Err() != nil) {
		h.exited = true
		h.active = false
		h.broadcastLocked()
		h.mu.Unlock()
		return true
	}
	h.broadcastLocked()
	h.mu.Unlock()
	if err == io.EOF {
		err = fmt.Errorf("remote worker %d: session %d ended unexpectedly: %w", r.task, gen, err)
	}
	r.s.hopFailed(h, gen, err)
	return false
}

// remoteMergerBolt stands in for an out-of-process merger task: it
// forwards its hash share of the match stream across the transport.
// Deduplication, delivery and the delivered counters happen on the
// remote node (see Drain and RemoteDelivered).
type remoteMergerBolt struct {
	task int
	tr   stream.Transport
}

// ProcessBatch implements stream.BatchBolt.
func (r *remoteMergerBolt) ProcessBatch(ts []stream.Tuple, _ stream.Collector) {
	if err := r.tr.Send(ts); err != nil {
		panic(fmt.Sprintf("remote merger %d: %v", r.task, err))
	}
}

// Process implements stream.Bolt (single-tuple fallback).
func (r *remoteMergerBolt) Process(tu stream.Tuple, c stream.Collector) {
	r.ProcessBatch([]stream.Tuple{tu}, c)
}

// Close implements the engine's io.Closer hook.
func (r *remoteMergerBolt) Close() error {
	if cs, ok := r.tr.(stream.SendCloser); ok {
		return cs.CloseSend()
	}
	return r.tr.Close()
}

// RemoteDelivered sums the delivered/duplicate counters of every remote
// merger (one control round trip each). Zeroes with no remote mergers.
func (s *System) RemoteDelivered() (delivered, duplicates int64, err error) {
	for task, tr := range s.cfg.RemoteMergers {
		rc, ok := tr.(remoteMergerCounter)
		if !ok {
			continue
		}
		d, dup, cerr := rc.Counts()
		if cerr != nil {
			return delivered, duplicates, fmt.Errorf("core: remote merger %d counts: %w", task, cerr)
		}
		delivered += d
		duplicates += dup
	}
	return delivered, duplicates, nil
}

// expectedFromHop computes one hop's contribution to the Drain
// barrier's expected match total, retrying across session changes:
// matches received from already-dead sessions (retired — anything lost
// in flight at the crash was neither counted nor deliverable; the op
// log re-produces it in a later session) plus the live session's
// drain-acked emitted count, which FIFO guarantees the spout will
// receive. It waits out a hop that is mid-outage and fails only on a
// permanently unrecoverable slot.
func (s *System) expectedFromHop(h *workerHop) (gen uint64, contribution int64, err error) {
	for {
		h.mu.Lock()
		if h.failed {
			h.mu.Unlock()
			return 0, 0, fmt.Errorf("core: worker %d: %w", h.task, ErrWorkerUnrecoverable)
		}
		if h.exited {
			g, n := h.gen, h.retired
			h.mu.Unlock()
			return g, n, nil
		}
		if h.tr == nil && !h.active {
			h.mu.Unlock()
			return 0, 0, nil // unclaimed spare slot
		}
		if h.down || h.replaying || h.closing {
			ch := h.notify
			h.mu.Unlock()
			select {
			case <-ch:
			case <-time.After(5 * time.Millisecond):
			}
			continue
		}
		tr, g, retired := h.tr, h.gen, h.retired
		h.mu.Unlock()
		d, ok := tr.(remoteWorkerDrainer)
		if !ok {
			return g, retired, nil
		}
		_, emitted, derr := d.DrainWorker()
		if derr != nil {
			if h.log != nil && h.addr != "" {
				s.hopFailed(h, g, derr)
				continue // recovery owns the slot now; recount next session
			}
			return 0, 0, fmt.Errorf("core: draining remote worker %d: %w", h.task, derr)
		}
		h.mu.Lock()
		if h.gen != g || h.down {
			// The session died after acking: part of its emitted count
			// may have been lost in flight. Recount against the next
			// session instead of trusting the stale ack.
			h.mu.Unlock()
			continue
		}
		n := h.retired + emitted
		h.mu.Unlock()
		return g, n, nil
	}
}

// Drain blocks until the first `submitted` operations are fully applied
// end to end: routed by the dispatchers, drained through every worker —
// local queues empty, remote workers wire-acknowledged — and every
// match they produced delivered by the mergers (local and remote). It
// is the exact barrier behind the public Flush; on a quiesced system
// the error is nil unless a remote hop failed unrecoverably. When a
// worker session dies or recovers mid-wait, the expected total is
// recomputed against the new session, so the barrier stays exact
// across crashes.
func (s *System) Drain(submitted int64) error {
	if err := s.quiesceHops(submitted); err != nil {
		return err
	}
recompute:
	for {
		gens := make(map[int]uint64)
		var remoteEmitted int64
		for _, task := range s.remoteWorkerTasks() {
			h := s.hop(task)
			if h == nil {
				// Hop-less deployment (custom transports, no spares).
				d, ok := s.cfg.RemoteWorkers[task].(remoteWorkerDrainer)
				if !ok {
					continue
				}
				_, e, err := d.DrainWorker()
				if err != nil {
					return fmt.Errorf("core: draining remote worker %d: %w", task, err)
				}
				remoteEmitted += e
				continue
			}
			g, n, err := s.expectedFromHop(h)
			if err != nil {
				return err
			}
			gens[task] = g
			remoteEmitted += n
		}
		// After the barriers above, the emitted count for those
		// operations is final; wait for the mergers to account every one
		// of them. The in-flight tail is bounded (already-emitted batches
		// en route), so this converges without a grace sleep.
		expected := s.matchesEmitted.Value() + remoteEmitted
		for {
			delivered := s.matches.Value() + s.duplicates.Value()
			if len(s.cfg.RemoteMergers) > 0 {
				d, dup, err := s.RemoteDelivered()
				if err != nil {
					return err
				}
				delivered += d + dup
			}
			if delivered >= expected {
				return nil
			}
			if s.closed.Load() {
				return errors.New("core: system closed while draining")
			}
			for task, g := range gens {
				h := s.hop(task)
				if h == nil {
					continue
				}
				h.mu.Lock()
				changed := h.gen != g || h.down
				h.mu.Unlock()
				if changed {
					continue recompute
				}
			}
			time.Sleep(500 * time.Microsecond)
		}
	}
}

// quiesceHops is Quiesce with failure detection: a permanently failed
// hop never drains its queue, and a topology stopped by a captured task
// panic never advances its counters — waiting on either would hang the
// barrier forever, so it fails with the cause instead.
func (s *System) quiesceHops(submitted int64) error {
	stable := 0
	for stable < 2 {
		if err := s.failedHopErr(); err != nil {
			return err
		}
		if s.runDone.Load() && !s.closed.Load() {
			return errors.New("core: run stopped while draining (task panic?)")
		}
		if s.Processed() < submitted {
			stable = 0
			time.Sleep(2 * time.Millisecond)
			continue
		}
		ok := true
		for i := range s.enqueued {
			if s.doneOps[i].Load() != s.enqueued[i].Load() {
				ok = false
				break
			}
		}
		if !ok {
			stable = 0
			time.Sleep(2 * time.Millisecond)
			continue
		}
		stable++
		time.Sleep(2 * time.Millisecond)
	}
	return nil
}

// failedHopErr reports the first permanently unrecoverable hop, if any.
func (s *System) failedHopErr() error {
	if s.hops == nil {
		return nil
	}
	for _, h := range s.hops {
		if h == nil {
			continue
		}
		h.mu.Lock()
		failed := h.failed
		h.mu.Unlock()
		if failed {
			return fmt.Errorf("core: worker %d: %w", h.task, ErrWorkerUnrecoverable)
		}
	}
	return nil
}
