// Elastic membership and crash recovery: worker slots can join at
// runtime (AddWorker dials a fresh psnode and rebalances cells onto
// it), leave gracefully (DecommissionWorker drains every cell off the
// node before half-closing the hop), and survive crashes — a dead
// connection trips a per-slot op log replay onto a redialled session
// while the coordinator routes around the outage.
//
// The unit of truth is the workerHop: one per out-of-process worker
// slot, holding the live transport, the session generation (bumped on
// every recovery; also the Hello fencing epoch, so a stale session
// cannot reclaim the slot), and the dispatcher-side op log that makes
// replay possible. Sessions hand over exactly: a failed session's
// spout drains whatever match batches the wire already delivered,
// recovery waits for that drain, installs the new transport *before*
// replaying (so replay-produced matches flow instead of dead-locking
// wire backpressure), and the Drain barrier recomputes its target
// whenever a generation changes under it.
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ps2stream/internal/migrate"
	"ps2stream/internal/model"
	"ps2stream/internal/oplog"
	"ps2stream/internal/snapshot"
	"ps2stream/internal/stream"
	"ps2stream/internal/window"
	"ps2stream/internal/wire"
)

// RecoveryConfig tunes crash recovery of remote worker slots. The zero
// value disables it: a broken worker connection then fails the run
// loudly, exactly as before elasticity existed.
type RecoveryConfig struct {
	// Enabled switches on per-worker op logs, heartbeats and automatic
	// redial-and-replay recovery for remote worker slots.
	Enabled bool
	// CheckpointInterval is the op-log truncation cadence: every
	// interval the coordinator runs a drain barrier per worker and folds
	// the acknowledged prefix into the compact checkpoint base
	// (default 1s).
	CheckpointInterval time.Duration
	// CheckpointOps forces a checkpoint when a worker's logged tail
	// exceeds this many entries regardless of the interval, bounding
	// replay work under load (default 8192).
	CheckpointOps int
	// HeartbeatInterval is the node→coordinator ping cadence negotiated
	// in the handshake; the connection read deadline is pinned to 4× it,
	// so a silent peer is detected within that bound (default 500ms).
	HeartbeatInterval time.Duration
	// RedialBackoff shapes recovery and AddWorker dial retries.
	RedialBackoff wire.Backoff
	// RedialTimeout bounds the total time recovery keeps redialling a
	// crashed worker before declaring the slot unrecoverable
	// (default 45s).
	RedialTimeout time.Duration
	// Dir, when set, persists one snapshot.WriteState checkpoint file
	// per worker slot (worker-<task>.ckpt) at every op-log truncation,
	// so an operator can re-prime a replacement cluster offline.
	Dir string
}

func (r *RecoveryConfig) fillDefaults() {
	if !r.Enabled {
		return
	}
	if r.CheckpointInterval <= 0 {
		r.CheckpointInterval = time.Second
	}
	if r.CheckpointOps <= 0 {
		r.CheckpointOps = 8192
	}
	if r.HeartbeatInterval <= 0 {
		r.HeartbeatInterval = 500 * time.Millisecond
	}
	if r.RedialTimeout <= 0 {
		r.RedialTimeout = 45 * time.Second
	}
}

// ErrNoSpareSlots is returned by AddWorker when no pre-allocated spare
// worker slot is free (Config.SpareWorkers sizes the pool; slots are
// per-run, a decommissioned slot is not reusable).
var ErrNoSpareSlots = errors.New("core: no spare worker slot available (Config.SpareWorkers)")

// ErrWorkerUnrecoverable is wrapped by Drain when a remote worker slot
// died and recovery is off, exhausted, or impossible: matches routed to
// it may be lost, so the barrier fails instead of waiting forever.
var ErrWorkerUnrecoverable = errors.New("core: remote worker unrecoverable")

// workerHop is the coordinator's per-slot state for one out-of-process
// worker: the current transport session, its generation, and the
// recovery op log. All mutable fields are guarded by mu; notify is a
// closed-and-replaced broadcast channel (wait on the current one, and
// any state change wakes you).
type workerHop struct {
	task int

	mu     sync.Mutex
	notify chan struct{}
	// addr/hello redial the same node after a crash.
	addr  string
	hello wire.Hello
	// tr is the current session's transport (nil for an unclaimed spare).
	tr stream.Transport
	// active: the slot participates in routing/adjustment decisions.
	// down: the current session's connection failed. replaying: a
	// recovery session is installed but still replaying the op log.
	// failed: the slot is permanently unrecoverable. closing: system
	// shutdown (or post-decommission teardown) reached this hop.
	active, down, replaying bool
	failed, closing         bool
	decommissioned, exited  bool
	// gen numbers transport sessions 1..n (also the Hello fencing
	// epoch); drainedGen is the highest session whose match stream the
	// spout has fully drained.
	gen        uint64
	drainedGen uint64
	// sentSeq is the highest op-log sequence actually put on the current
	// session's wire — the checkpoint watermark candidate.
	sentSeq uint64
	// sessionRecv counts match envelopes the spout received from the
	// current session; retired accumulates them when sessions end.
	sessionRecv int64
	retired     int64

	// log is the recovery op log (nil when Recovery is disabled — the
	// slot then keeps the legacy fail-loudly contract).
	log *oplog.Log
}

// broadcastLocked wakes every waiter. Caller holds h.mu.
func (h *workerHop) broadcastLocked() {
	close(h.notify)
	h.notify = make(chan struct{})
}

// transport returns the current session's transport (nil for an
// unclaimed spare), regardless of its health: control rounds on a dead
// connection fail fast, and a nil here would make migration callers
// misread the slot as in-process.
func (h *workerHop) transport() stream.Transport {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.tr
}

// snapshotLocked-style helper: is the hop currently serving traffic?
func (h *workerHop) up() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.active && !h.down && !h.replaying && !h.closing && h.tr != nil
}

// initHops builds the per-slot hop table. Called from New once the
// worker arrays are allocated; nil when the deployment has neither
// remote workers nor spare slots, which keeps every legacy code path
// bit-identical.
func (s *System) initHops() {
	if len(s.cfg.RemoteWorkers) == 0 && s.cfg.SpareWorkers <= 0 {
		return
	}
	s.hops = make([]*workerHop, s.totalSlots())
	for task, tr := range s.cfg.RemoteWorkers {
		s.installDeltaHandler(task, tr)
		h := &workerHop{task: task, tr: tr, active: true, gen: 1, notify: make(chan struct{})}
		if a, ok := tr.(remoteAddresser); ok {
			h.addr = a.Addr()
		}
		if hl, ok := tr.(remoteHelloer); ok {
			h.hello = hl.Hello()
		}
		if s.cfg.Recovery.Enabled {
			h.log = oplog.New()
		}
		s.hops[task] = h
	}
	for task := s.cfg.Workers; task < s.totalSlots(); task++ {
		h := &workerHop{task: task, notify: make(chan struct{})}
		if s.cfg.Recovery.Enabled {
			h.log = oplog.New()
		}
		s.hops[task] = h
	}
}

// totalSlots is the worker-task count including pre-allocated spares.
func (s *System) totalSlots() int { return s.cfg.Workers + s.cfg.SpareWorkers }

// hop returns slot i's hop, nil for in-process slots (and for every
// slot of a hop-less deployment).
func (s *System) hop(i int) *workerHop {
	if s.hops == nil || i < 0 || i >= len(s.hops) {
		return nil
	}
	return s.hops[i]
}

// isRemote reports whether worker slot i runs out-of-process.
func (s *System) isRemote(i int) bool {
	if s.hops != nil {
		return s.hop(i) != nil
	}
	_, ok := s.cfg.RemoteWorkers[i]
	return ok
}

// activeWorkerSlots lists the worker slots that participate in routing
// and load decisions: every in-process slot, plus hops marked active
// (spares join on AddWorker, decommissioned slots leave).
func (s *System) activeWorkerSlots() []int {
	out := make([]int, 0, len(s.workers))
	for i := range s.workers {
		if h := s.hop(i); h != nil {
			h.mu.Lock()
			a := h.active
			h.mu.Unlock()
			if !a {
				continue
			}
		} else if i >= s.cfg.Workers {
			continue
		}
		out = append(out, i)
	}
	return out
}

// maskActive projects a full per-slot vector down to the active slots,
// so balance factors never divide by an idle spare's zero load.
func maskActive(vals []float64, active []int) []float64 {
	out := make([]float64, 0, len(active))
	for _, i := range active {
		if i < len(vals) {
			out = append(out, vals[i])
		}
	}
	return out
}

// hopFailed transitions session gen of h to down (idempotent per
// generation) and, when the slot is recoverable, launches recovery.
// The dead transport is closed synchronously so the slot's match spout
// unblocks from its socket read.
func (s *System) hopFailed(h *workerHop, gen uint64, cause error) {
	h.mu.Lock()
	if h.gen != gen || h.down || h.exited {
		h.mu.Unlock()
		return
	}
	h.down = true
	h.replaying = false
	old := h.tr
	shouldRecover := h.log != nil && h.addr != "" && !h.closing && !h.decommissioned && !h.failed
	if !shouldRecover && !h.closing && !h.decommissioned {
		h.failed = true
	}
	h.broadcastLocked()
	h.mu.Unlock()
	s.log.Warn("remote worker down", "worker", h.task, "gen", gen, "err", cause)
	if old != nil {
		old.Close()
	}
	if shouldRecover {
		go s.recoverWorker(h, gen)
	}
}

// hopUnrecoverable marks the slot permanently failed (unless it is
// already tearing down on purpose).
func (s *System) hopUnrecoverable(h *workerHop, err error) {
	h.mu.Lock()
	if !h.closing && !h.decommissioned && !h.exited {
		h.failed = true
	}
	h.broadcastLocked()
	h.mu.Unlock()
	s.log.Error("remote worker unrecoverable", "worker", h.task, "err", err)
}

// recoveryCtx is the context recovery waits under: the run context once
// Start installed it, Background before (recovery only ever starts
// after traffic flowed, hence after Start).
func (s *System) recoveryCtx() context.Context {
	if s.runCtx != nil {
		return s.runCtx
	}
	return context.Background()
}

// recoverWorker re-establishes a crashed worker slot: redial the same
// address under a fresh fencing epoch, wait for the failed session's
// spout drain (its received matches must be retired before the Drain
// barrier can re-account them), install the new transport *before*
// replaying — the spout then consumes replay-produced matches, so a
// long replay cannot deadlock on wire backpressure — replay the op
// log's checkpoint base and tail, and finally catch up under the hop
// lock with anything appended mid-replay before re-opening the slot.
func (s *System) recoverWorker(h *workerHop, failedGen uint64) {
	newGen := failedGen + 1
	h.mu.Lock()
	addr, hello := h.addr, h.hello
	h.mu.Unlock()
	hello.Task = h.task
	hello.Epoch = newGen
	if s.cfg.Recovery.HeartbeatInterval > 0 {
		hello.HeartbeatMillis = int(s.cfg.Recovery.HeartbeatInterval / time.Millisecond)
	}
	b := s.cfg.Recovery.RedialBackoff
	b.MaxElapsed = s.cfg.Recovery.RedialTimeout
	// MaxElapsed is the binding cap; raise the attempt count so it
	// cannot exhaust first.
	b.Attempts = 1 << 20
	cl, err := wire.DialWorker(addr, hello, b)
	if err != nil {
		s.hopUnrecoverable(h, fmt.Errorf("redialling %s: %w", addr, err))
		return
	}
	ctx := s.recoveryCtx()
	for {
		h.mu.Lock()
		if h.closing || h.decommissioned || h.failed || h.exited {
			h.mu.Unlock()
			cl.Close()
			return
		}
		if h.drainedGen >= failedGen {
			break // h.mu still held
		}
		ch := h.notify
		h.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			cl.Close()
			return
		}
	}
	// The node lost its window state with the crash: retract this
	// source's tracked top-k contributions under the new epoch before
	// any replay traffic flows, so the board's TopKSet reflects only
	// state the recovered session re-establishes. Deltas the node
	// re-emits during replay arrive tagged with newGen and rebuild the
	// refs; stragglers from the dead session carry an older epoch and
	// are dropped. (ApplyRemote with no deltas is exactly this bump-and-
	// retract.)
	s.board.ApplyRemote(h.task, newGen, nil)
	ntr := &wireWorkerTransport{c: cl}
	s.installDeltaHandler(h.task, ntr)
	// Install the recovery session (still under h.mu from the loop).
	h.tr = ntr
	h.gen = newGen
	h.down = false
	h.replaying = true
	h.sessionRecv = 0
	h.broadcastLocked()
	h.mu.Unlock()
	tr := h.transport()
	base, tail, watermark := h.log.Replay()
	s.log.Info("remote worker redialled; replaying",
		"worker", h.task, "gen", newGen, "base", len(base), "tail", len(tail))
	lastSeq := watermark
	baseEnts := make([]oplog.Entry, 0, len(base))
	for _, q := range base {
		baseEnts = append(baseEnts, oplog.Entry{Op: model.Op{Kind: model.OpInsert, Query: q}})
	}
	if err := s.replaySend(tr, baseEnts); err != nil {
		s.hopFailed(h, newGen, err)
		return
	}
	if err := s.replaySend(tr, tail); err != nil {
		s.hopFailed(h, newGen, err)
		return
	}
	if len(tail) > 0 {
		lastSeq = tail[len(tail)-1].Seq
	}
	// Catch-up and re-open atomically: ops appended while replay ran are
	// sent under the hop lock, then replaying flips off — the bolt's
	// sentSeq check suppresses the one batch that may race the flip.
	h.mu.Lock()
	if h.gen != newGen || h.down || h.closing {
		h.mu.Unlock()
		return
	}
	pending := h.log.Since(lastSeq)
	if err := s.replaySend(h.tr, pending); err != nil {
		h.mu.Unlock()
		s.hopFailed(h, newGen, err)
		return
	}
	if len(pending) > 0 {
		lastSeq = pending[len(pending)-1].Seq
	}
	h.replaying = false
	if lastSeq > h.sentSeq {
		h.sentSeq = lastSeq
	}
	h.broadcastLocked()
	h.mu.Unlock()
	s.log.Info("remote worker recovered", "worker", h.task, "gen", newGen)
}

// replaySend ships logged entries to a transport in BatchSize chunks.
// Each entry keeps its original submit stamp — window entry ranks and
// expiry are functions of the publish instant, so re-stamping would
// corrupt the recovered node's top-k state. Entries without a stamp
// (checkpoint-base query registrations) are stamped at the replay
// instant; a query's T0 only feeds latency accounting.
func (s *System) replaySend(tr stream.Transport, ents []oplog.Entry) error {
	if tr == nil {
		return errors.New("core: replay on nil transport")
	}
	now := s.now()
	bs := s.cfg.BatchSize
	for off := 0; off < len(ents); off += bs {
		end := off + bs
		if end > len(ents) {
			end = len(ents)
		}
		ts := make([]stream.Tuple, 0, end-off)
		for _, e := range ents[off:end] {
			t0 := e.T0
			if t0.IsZero() {
				t0 = now
			}
			ts = append(ts, stream.Tuple{Value: opEnvelope{op: e.Op, t0: t0, refill: e.Refill}})
		}
		if err := tr.Send(ts); err != nil {
			return err
		}
	}
	return nil
}

// logAdoptions appends migration-install entries to worker w's op log:
// queries the slot adopted, ids deleted from its adopted copy, and the
// window entries that travelled with the hand-off (logged as refill
// objects under their original publish stamps, so a later crash replay
// can rebuild the adopted window state without re-emitting matches).
// The InstallCells round that applied them is synchronously acked
// before any later traffic, so the checkpoint barrier covers them like
// any op.
func (s *System) logAdoptions(w int, adopted []*model.Query, dropped []uint64, entries []window.Entry) {
	h := s.hop(w)
	if h == nil || h.log == nil {
		return
	}
	now := s.now()
	for _, q := range adopted {
		h.log.AdoptQuery(q, now)
	}
	for _, id := range dropped {
		h.log.Append(model.Op{Kind: model.OpDelete, Query: &model.Query{ID: id}}, now)
	}
	seen := make(map[uint64]bool, len(entries))
	for _, e := range entries {
		if seen[e.MsgID] {
			continue // ring and subscription copies overlap; one refill is enough
		}
		seen[e.MsgID] = true
		h.log.AdoptObject(&model.Object{ID: e.MsgID, Terms: e.Terms, Loc: e.Loc}, e.At)
	}
}

// logExtraction appends migration-extract entries to worker w's op log
// for queries that left the slot.
func (s *System) logExtraction(w int, extracted []*model.Query) {
	h := s.hop(w)
	if h == nil || h.log == nil {
		return
	}
	now := s.now()
	for _, q := range extracted {
		h.log.DropQuery(q, now)
	}
}

// checkpointLoop truncates each recoverable hop's op log on a cadence
// (and on tail-size pressure), persisting a restorable state snapshot
// when Recovery.Dir is set.
func (s *System) checkpointLoop(ctx context.Context) {
	poll := s.cfg.Recovery.CheckpointInterval / 4
	if poll < 50*time.Millisecond {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	last := make([]time.Time, len(s.hops))
	for i := range last {
		last[i] = time.Now()
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for i, h := range s.hops {
			if h == nil || h.log == nil {
				continue
			}
			if time.Since(last[i]) < s.cfg.Recovery.CheckpointInterval &&
				h.log.TailLen() < s.cfg.Recovery.CheckpointOps {
				continue
			}
			if s.checkpointHop(h) {
				last[i] = time.Now()
			}
		}
	}
}

// checkpointHop runs one drain barrier on the hop and folds the acked
// op prefix into the log's base. The watermark is the sequence of the
// last op put on this session's wire before the barrier: the ack
// proves the node processed everything up to it.
func (s *System) checkpointHop(h *workerHop) bool {
	h.mu.Lock()
	if !h.active || h.down || h.replaying || h.closing || h.tr == nil {
		h.mu.Unlock()
		return false
	}
	tr, gen, wm := h.tr, h.gen, h.sentSeq
	h.mu.Unlock()
	d, ok := tr.(remoteWorkerDrainer)
	if !ok {
		return false
	}
	if _, _, err := d.DrainWorker(); err != nil {
		s.hopFailed(h, gen, err)
		return false
	}
	h.log.Checkpoint(wm, s.now())
	if s.cfg.Recovery.Dir != "" {
		if err := s.writeWorkerCheckpoint(h); err != nil {
			s.log.Warn("worker checkpoint persist failed", "worker", h.task, "err", err)
		}
	}
	return true
}

// writeWorkerCheckpoint persists the hop's checkpoint base as a
// snapshot.State file (worker-<task>.ckpt, atomically replaced), with
// the slot's current cell assignment from the routing table.
func (s *System) writeWorkerCheckpoint(h *workerHop) error {
	base, _, wm := h.log.Replay()
	st := snapshot.State{
		Worker:    h.task,
		Bounds:    s.bounds,
		Queries:   base,
		Watermark: wm,
		Cells:     make(map[int][]string),
	}
	if gt := s.gridT.Load(); gt != nil {
		n := gt.Grid().NumCells()
		for c := 0; c < n; c++ {
			for _, w := range gt.CellWorkers(c) {
				if w != h.task {
					continue
				}
				if gt.IsTextCell(c) {
					st.Cells[c] = gt.H2Keys(c, h.task)
				} else {
					st.Cells[c] = nil
				}
				break
			}
		}
	}
	f, err := os.CreateTemp(s.cfg.Recovery.Dir, "worker-ckpt-*")
	if err != nil {
		return err
	}
	if err := snapshot.WriteState(f, st); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	dst := filepath.Join(s.cfg.Recovery.Dir, fmt.Sprintf("worker-%d.ckpt", h.task))
	if err := os.Rename(f.Name(), dst); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}

// AddWorker dials a freshly started worker node at addr, claims a free
// spare slot for it, and — when the migration machinery is available —
// rebalances cells from the existing workers onto it. It returns the
// slot's task index. The spare pool is sized by Config.SpareWorkers at
// build time (routing bitmasks are fixed-width); each slot is
// single-use within a run.
func (s *System) AddWorker(addr string) (int, error) {
	if s.hops == nil || s.cfg.SpareWorkers <= 0 {
		return -1, ErrNoSpareSlots
	}
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	var h *workerHop
	for task := s.cfg.Workers; task < len(s.hops); task++ {
		cand := s.hops[task]
		if cand == nil {
			continue
		}
		cand.mu.Lock()
		free := !cand.active && cand.tr == nil && !cand.exited && !cand.failed && !cand.closing
		cand.mu.Unlock()
		if free {
			h = cand
			break
		}
	}
	if h == nil {
		return -1, ErrNoSpareSlots
	}
	hello := s.remoteHello
	hello.Task = h.task
	hello.Epoch = 1
	cl, err := wire.DialWorker(addr, hello, s.cfg.Recovery.RedialBackoff)
	if err != nil {
		return -1, fmt.Errorf("core: adding worker at %s: %w", addr, err)
	}
	jtr := &wireWorkerTransport{c: cl}
	s.installDeltaHandler(h.task, jtr)
	h.mu.Lock()
	h.addr = addr
	h.hello = hello
	h.tr = jtr
	h.gen = 1
	h.active = true
	h.down = false
	h.broadcastLocked()
	h.mu.Unlock()
	s.log.Info("worker joined", "worker", h.task, "addr", addr)
	if s.canAdjust() {
		s.rebalanceOnto(h.task)
	}
	return h.task, nil
}

// rebalanceOnto moves roughly an even share of the cluster's cell load
// onto a just-joined slot: gather every migratable cell across the
// other active workers, sort heaviest-first, and migrate greedily until
// the new slot holds ~1/n of the total. Caller holds adjustMu.
func (s *System) rebalanceOnto(task int) {
	s.processPendingExtracts()
	active := s.activeWorkerSlots()
	if len(active) <= 1 {
		return
	}
	type ownedCell struct {
		owner int
		cell  migrate.Cell
	}
	var cands []ownedCell
	var total float64
	for _, w := range active {
		if w == task {
			continue
		}
		var stats []wire.CellStat
		if m := s.remoteMigrator(w); m != nil {
			cs, err := m.CellStats()
			if err != nil {
				continue // unobservable this round; rebalance what we can see
			}
			if cs == nil {
				cs = []wire.CellStat{}
			}
			stats = cs
		}
		for _, c := range s.migrationCandidates(w, stats) {
			cands = append(cands, ownedCell{owner: w, cell: c})
			total += c.Load
		}
	}
	if total <= 0 || len(cands) == 0 {
		return
	}
	target := total / float64(len(active))
	sort.Slice(cands, func(i, j int) bool { return cands[i].cell.Load > cands[j].cell.Load })
	start := time.Now()
	var moved float64
	var nCells, nQueries int
	var nBytes int64
	for _, oc := range cands {
		if moved >= target {
			break
		}
		q, b, ok := s.migrateShare(oc.owner, task, oc.cell.ID)
		if !ok {
			continue
		}
		moved += oc.cell.Load
		nCells++
		nQueries += q
		nBytes += b
	}
	if nCells == 0 {
		return
	}
	s.recordMigration(MigrationStat{
		Algorithm:    s.cfg.Adjust.Algorithm,
		Duration:     time.Since(start),
		Bytes:        nBytes,
		Cells:        nCells,
		QueriesMoved: nQueries,
		From:         -1, // many sources: a join rebalance, not a pairwise move
		To:           task,
	})
}

// DecommissionWorker gracefully retires an elastic worker slot: every
// cell it serves is migrated to the remaining active workers (routing
// flips first, deferred extracts reconcile, exactly like adjustment
// migrations), its remaining matches are flushed with a drain barrier,
// and the hop is half-closed so the node ends the session with a clean
// Goodbye. The slot leaves the active set permanently.
func (s *System) DecommissionWorker(task int) error {
	h := s.hop(task)
	if h == nil {
		return fmt.Errorf("core: worker %d is not an elastic remote slot", task)
	}
	if !s.canAdjust() {
		return ErrAdjustNeedsHybrid
	}
	s.adjustMu.Lock()
	defer s.adjustMu.Unlock()
	if !h.up() {
		return fmt.Errorf("core: worker %d is not up", task)
	}
	var targets []int
	for _, w := range s.activeWorkerSlots() {
		if w != task {
			targets = append(targets, w)
		}
	}
	if len(targets) == 0 {
		return errors.New("core: cannot decommission the last active worker")
	}
	gt := s.gridT.Load()
	deadline := time.Now().Add(wire.DefaultControlTimeout)
	rr := 0
	for {
		s.processPendingExtracts()
		serves := false
		n := gt.Grid().NumCells()
		for c := 0; c < n; c++ {
			owns := false
			for _, w := range gt.CellWorkers(c) {
				if w == task {
					owns = true
					break
				}
			}
			if !owns {
				continue
			}
			serves = true
			if s.cellPending(c) {
				continue // an in-flight migration already moves it
			}
			dst := targets[rr%len(targets)]
			rr++
			if _, _, ok := s.migrateShare(task, dst, c); !ok {
				// The destination may itself have crashed mid-
				// decommission: prune targets that are not currently up
				// and let the outer sweep retry the cell — recovery can
				// bring the source (or a pruned target's load) back
				// within the deadline. Only a total lack of live
				// destinations is immediately fatal.
				live := targets[:0:0]
				for _, w := range targets {
					if hw := s.hop(w); hw == nil || hw.up() {
						live = append(live, w)
					}
				}
				if len(live) == 0 {
					return fmt.Errorf("core: decommission of worker %d: migrating cell %d failed with no live destination", task, c)
				}
				targets = live
			}
		}
		if !serves && !s.hasPendingExtractsFor(task) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("core: decommission of worker %d timed out draining migrations", task)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// All cells are off the slot and reconciled; flush its last matches
	// so nothing is lost to the half-close.
	tr := h.transport()
	if d, ok := tr.(remoteWorkerDrainer); ok {
		if _, _, err := d.DrainWorker(); err != nil {
			return fmt.Errorf("core: decommission drain of worker %d: %w", task, err)
		}
	}
	h.mu.Lock()
	h.decommissioned = true
	h.closing = true
	h.active = false
	tr = h.tr
	h.broadcastLocked()
	h.mu.Unlock()
	// The drain barrier above delivered (and applied) every delta the
	// node emitted; whatever net contribution remains tracked for the
	// slot is state the migrations already moved elsewhere — drop it so
	// the retired source cannot pin stale top-k candidates.
	s.board.dropSource(task)
	s.log.Info("worker decommissioned", "worker", task)
	if tr == nil {
		return nil
	}
	if cs, ok := tr.(stream.SendCloser); ok {
		return cs.CloseSend()
	}
	return tr.Close()
}

// hasPendingExtractsFor reports whether any deferred extraction still
// involves the slot (as source or destination).
func (s *System) hasPendingExtractsFor(task int) bool {
	s.migMu.Lock()
	defer s.migMu.Unlock()
	for _, pe := range s.pendingEx {
		if pe.wo == task || pe.wl == task {
			return true
		}
	}
	return false
}
