package oplog

import (
	"fmt"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// at is the fixed submit stamp the plain-signature tests use; stamp
// semantics get their own tests below.
var at = time.Unix(1700000000, 0)

func q(id uint64) *model.Query {
	return &model.Query{ID: id, Region: geo.NewRect(0, 0, 1, 1)}
}

func insert(id uint64) model.Op { return model.Op{Kind: model.OpInsert, Query: q(id)} }
func del(id uint64) model.Op    { return model.Op{Kind: model.OpDelete, Query: q(id)} }
func object(id uint64) model.Op { return model.Op{Kind: model.OpObject, Obj: &model.Object{ID: id}} }

func TestAppendAssignsMonotonicSeqs(t *testing.T) {
	l := New()
	for i := 1; i <= 5; i++ {
		if got := l.Append(object(uint64(i)), at); got != uint64(i) {
			t.Fatalf("Append #%d returned seq %d", i, got)
		}
	}
	if l.Seq() != 5 || l.TailLen() != 5 {
		t.Errorf("Seq=%d TailLen=%d, want 5/5", l.Seq(), l.TailLen())
	}
}

func TestCheckpointFoldsPrefixIntoBase(t *testing.T) {
	l := New()
	l.Append(insert(1), at)
	l.Append(insert(2), at)
	l.Append(object(100), at)
	l.Append(del(1), at)
	last := l.Append(insert(3), at) // seq 5, above the watermark below

	l.Checkpoint(4, at)
	if wm := l.Watermark(); wm != 4 {
		t.Fatalf("Watermark = %d, want 4", wm)
	}
	if l.LiveLen() != 1 { // query 2 (1 deleted, 100 was an object)
		t.Errorf("LiveLen = %d, want 1", l.LiveLen())
	}
	base, tail, wm := l.Replay()
	if wm != 4 {
		t.Errorf("Replay watermark = %d, want 4", wm)
	}
	if len(base) != 1 || base[0].ID != 2 {
		t.Errorf("base = %v, want exactly query 2", base)
	}
	if len(tail) != 1 || tail[0].Seq != last || tail[0].Op.Query.ID != 3 {
		t.Errorf("tail = %v, want the single post-watermark insert of query 3", tail)
	}
}

func TestCheckpointIsMonotone(t *testing.T) {
	l := New()
	l.Append(insert(1), at)
	l.Append(insert(2), at)
	l.Checkpoint(2, at)
	// A stale (smaller) watermark must be a no-op, not a regression.
	l.Checkpoint(1, at)
	if wm := l.Watermark(); wm != 2 {
		t.Errorf("Watermark = %d after stale checkpoint, want 2", wm)
	}
	if l.LiveLen() != 2 {
		t.Errorf("LiveLen = %d, want 2", l.LiveLen())
	}
}

func TestReplayBaseIsSortedAndCopied(t *testing.T) {
	l := New()
	for _, id := range []uint64{9, 3, 7, 1} {
		l.Append(insert(id), at)
	}
	l.Checkpoint(4, at)
	base, tail, _ := l.Replay()
	for i := 1; i < len(base); i++ {
		if base[i-1].ID >= base[i].ID {
			t.Fatalf("base not sorted by id: %v", base)
		}
	}
	// The returned tail is a copy: appending to the log afterwards must
	// not show up in an already-taken snapshot.
	l.Append(insert(42), at)
	if len(tail) != 0 {
		t.Errorf("snapshot tail mutated by later append: %v", tail)
	}
}

func TestSinceReturnsStrictSuffix(t *testing.T) {
	l := New()
	var seqs []uint64
	for i := 0; i < 6; i++ {
		seqs = append(seqs, l.Append(object(uint64(i)), at))
	}
	if got := l.Since(seqs[3]); len(got) != 2 || got[0].Seq != seqs[4] {
		t.Errorf("Since(%d) = %v, want the 2 entries above it", seqs[3], got)
	}
	if got := l.Since(seqs[5]); got != nil {
		t.Errorf("Since(last) = %v, want nil", got)
	}
	if got := l.Since(0); len(got) != 6 {
		t.Errorf("Since(0) returned %d entries, want all 6", len(got))
	}
	// After truncation, Since only sees the surviving tail.
	l.Checkpoint(seqs[4], at)
	if got := l.Since(0); len(got) != 1 || got[0].Seq != seqs[5] {
		t.Errorf("Since(0) after checkpoint = %v, want the single tail entry", got)
	}
}

func TestAdoptAndDropAreLoggedAsEntries(t *testing.T) {
	l := New()
	l.AdoptQuery(q(5), at)
	l.DropQuery(q(5), at)
	// Both are tail entries (not base mutations): a crash before the
	// next checkpoint must replay them in order.
	if l.TailLen() != 2 || l.LiveLen() != 0 {
		t.Fatalf("TailLen=%d LiveLen=%d, want 2/0", l.TailLen(), l.LiveLen())
	}
	l.Checkpoint(2, at)
	if l.LiveLen() != 0 {
		t.Errorf("adopt+drop folded to LiveLen=%d, want 0", l.LiveLen())
	}
}

// TestReplayEquivalence drives a pseudo-random op sequence with
// interleaved checkpoints and checks the invariant recovery depends on:
// base + tail replayed in order always reconstructs exactly the live
// query set of the full original sequence.
func TestReplayEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		l := New()
		livemodel := map[uint64]bool{}
		x := uint64(seed)
		next := func(n uint64) uint64 { // xorshift, deterministic per seed
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			return x % n
		}
		for i := 0; i < 400; i++ {
			id := next(40) + 1
			switch next(4) {
			case 0:
				l.Append(del(id), at)
				delete(livemodel, id)
			case 1:
				l.Append(object(id), at)
			default:
				l.Append(insert(id), at)
				livemodel[id] = true
			}
			if next(23) == 0 {
				l.Checkpoint(l.Seq(), at)
			}
		}
		base, tail, wm := l.Replay()
		got := map[uint64]bool{}
		for _, q := range base {
			got[q.ID] = true
		}
		for _, e := range tail {
			if e.Seq <= wm {
				t.Fatalf("seed %d: tail entry %d at or below watermark %d", seed, e.Seq, wm)
			}
			switch e.Op.Kind {
			case model.OpInsert:
				got[e.Op.Query.ID] = true
			case model.OpDelete:
				delete(got, e.Op.Query.ID)
			}
		}
		if fmt.Sprint(livemodel) != fmt.Sprint(got) {
			if len(livemodel) != len(got) {
				t.Fatalf("seed %d: replay reconstructs %d live queries, want %d", seed, len(got), len(livemodel))
			}
			for id := range livemodel {
				if !got[id] {
					t.Fatalf("seed %d: replay lost query %d", seed, id)
				}
			}
		}
	}
}

// FuzzCheckpointReplay feeds arbitrary op-kind/checkpoint schedules and
// asserts replay reconstruction never diverges from sequential
// application (the recovery correctness invariant).
func FuzzCheckpointReplay(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0xff, 4, 5})
	f.Add([]byte{2, 2, 0xff, 0, 0xff})
	f.Fuzz(func(t *testing.T, program []byte) {
		l := New()
		want := map[uint64]bool{}
		for _, b := range program {
			if b == 0xff {
				l.Checkpoint(l.Seq(), at)
				continue
			}
			id := uint64(b%16) + 1
			switch b % 3 {
			case 0:
				l.Append(del(id), at)
				delete(want, id)
			case 1:
				l.Append(object(id), at)
			default:
				l.Append(insert(id), at)
				want[id] = true
			}
		}
		base, tail, wm := l.Replay()
		got := map[uint64]bool{}
		for _, q := range base {
			got[q.ID] = true
		}
		for _, e := range tail {
			if e.Seq <= wm {
				t.Fatalf("tail entry %d at or below watermark %d", e.Seq, wm)
			}
			switch e.Op.Kind {
			case model.OpInsert:
				got[e.Op.Query.ID] = true
			case model.OpDelete:
				delete(got, e.Op.Query.ID)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("replay reconstructs %d live queries, want %d", len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("replay lost query %d", id)
			}
		}
	})
}

// TestCheckpointRetainsInWindowObjects pins the window-refill retention
// contract: with a live top-k subscription, covered object entries stay
// in the log as Refill entries until their publish stamp falls out of
// the largest live window, keeping a crash replay able to rebuild the
// node's window state (and the global TopKSet) exactly.
func TestCheckpointRetainsInWindowObjects(t *testing.T) {
	l := New()
	topk := &model.Query{ID: 1, Region: geo.NewRect(0, 0, 1, 1), TopK: 3, Window: 30 * time.Minute}
	l.Append(model.Op{Kind: model.OpInsert, Query: topk}, at)
	l.Append(object(100), at)                 // still in window at the checkpoint
	l.Append(object(101), at.Add(-time.Hour)) // already expired
	l.Append(insert(2), at)                   // boolean query: no retention of its own
	l.Checkpoint(l.Seq(), at.Add(10*time.Minute))

	_, tail, wm := l.Replay()
	if len(tail) != 1 {
		t.Fatalf("replay tail has %d entries, want the single retained object: %v", len(tail), tail)
	}
	e := tail[0]
	if !e.Refill || e.Op.Kind != model.OpObject || e.Op.Obj.ID != 100 {
		t.Fatalf("retained entry = %+v, want refill of object 100", e)
	}
	if !e.T0.Equal(at) {
		t.Errorf("retained entry T0 = %v, want the original publish stamp %v", e.T0, at)
	}
	if e.Seq > wm {
		t.Errorf("retained entry seq %d above watermark %d; it must stay covered", e.Seq, wm)
	}
	// Retained refill entries do not count toward the op-count trigger.
	if l.TailLen() != 0 {
		t.Errorf("TailLen = %d with only retained entries, want 0", l.TailLen())
	}
	// Catch-up after a replay must not resend covered refill entries.
	if got := l.Since(wm); got != nil {
		t.Errorf("Since(watermark) = %v, want nil", got)
	}

	// Once the window slides past the entry, the next checkpoint drops it
	// and retains only the still-live one.
	l.Append(object(102), at.Add(40*time.Minute))
	l.Checkpoint(l.Seq(), at.Add(45*time.Minute))
	_, tail, _ = l.Replay()
	if len(tail) != 1 || tail[0].Op.Obj.ID != 102 || !tail[0].Refill {
		t.Fatalf("after window slide, tail = %v, want refill of object 102 only", tail)
	}

	// Deleting the top-k subscription ends retention entirely.
	l.Append(model.Op{Kind: model.OpDelete, Query: topk}, at.Add(46*time.Minute))
	l.Checkpoint(l.Seq(), at.Add(46*time.Minute))
	if _, tail, _ := l.Replay(); len(tail) != 0 {
		t.Fatalf("after top-k delete, tail = %v, want empty", tail)
	}
}

// TestAdoptObjectIsRefillEntry pins migration hand-off logging: adopted
// window entries replay as refill objects under their original stamps.
func TestAdoptObjectIsRefillEntry(t *testing.T) {
	l := New()
	pub := at.Add(-5 * time.Minute)
	l.AdoptObject(&model.Object{ID: 9}, pub)
	_, tail, _ := l.Replay()
	if len(tail) != 1 || !tail[0].Refill || tail[0].Op.Obj.ID != 9 || !tail[0].T0.Equal(pub) {
		t.Fatalf("adopted object logged as %+v, want refill of object 9 at %v", tail, pub)
	}
}
