// Package oplog is the dispatcher-side operation log that makes a
// remote worker crash-recoverable. The coordinator appends every
// operation it routes to a worker slot *before* putting it on the wire;
// a periodic checkpoint (a drain barrier proving the worker processed
// everything up to a watermark, optionally persisted via
// internal/snapshot.WriteState) folds the covered prefix into a compact
// live-query base and truncates the log. Recovery for a crashed worker
// is then: re-register the base (the queries live at the watermark),
// replay the logged tail above it, and resume the stream.
//
// Replay is idempotent by construction: duplicate query registrations
// are ignored by the worker's index, deletions of absent queries are
// no-ops, and re-matched objects produce duplicate matches the merger
// stage deduplicates. The log is bounded in steady state by the
// checkpoint cadence; during an outage it grows until the worker is
// recovered or decommissioned (the price of exactness without a
// persistent queue).
//
// Sliding-window top-k subscriptions need more than the live query set:
// a recovered node must also rebuild its in-window entries, or the
// coordinator's top-k board would permanently lose their contributions
// when it fences out the dead session. Checkpoint therefore retains
// object entries younger than the largest live top-k window past the
// watermark, marked Refill — replayed so the node re-observes them
// (original timestamps preserved, since both rank and expiry derive
// from the publish instant) without re-emitting boolean matches that
// were already delivered under the checkpoint barrier.
package oplog

import (
	"sort"
	"sync"
	"time"

	"ps2stream/internal/model"
)

// Entry is one logged operation with its per-worker sequence number.
type Entry struct {
	// Seq is the log's own monotonically increasing sequence (1-based);
	// it is unrelated to model.Op.Seq, which belongs to the workload
	// stream.
	Seq uint64
	Op  model.Op
	// T0 is the operation's original submit stamp. Replay must preserve
	// it: window entry ranks and expiry are functions of the publish
	// instant, so re-stamping at the replay instant would corrupt the
	// recovered node's top-k state.
	T0 time.Time
	// Refill marks an object entry retained (or adopted) purely to
	// rebuild window state: the worker feeds it to its window store but
	// suppresses boolean match emission, because those matches were
	// already delivered before the entry was covered by a checkpoint.
	Refill bool
}

// Log is the op log for one worker slot. Safe for concurrent use: the
// worker bolt appends, the checkpoint loop truncates, and the recovery
// goroutine snapshots — all on their own goroutines.
type Log struct {
	mu sync.Mutex
	// live is the checkpoint base: the queries live at the watermark.
	live map[uint64]*model.Query
	// entries is the tail above the watermark, in append order.
	entries []Entry
	// seq is the last assigned sequence number.
	seq uint64
	// watermark is the sequence the base covers.
	watermark uint64
}

// New returns an empty log.
func New() *Log {
	return &Log{live: make(map[uint64]*model.Query)}
}

// Append logs one operation with its submit stamp and returns its
// sequence number.
func (l *Log) Append(op model.Op, t0 time.Time) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.entries = append(l.entries, Entry{Seq: l.seq, Op: op, T0: t0})
	return l.seq
}

// AdoptQuery logs a synthetic insertion for a query migrated *onto*
// this worker (cell migration install). It must be an entry, not a
// base mutation: the adopting worker has not drained past it yet, so a
// crash before the next checkpoint must replay it.
func (l *Log) AdoptQuery(q *model.Query, t0 time.Time) uint64 {
	return l.Append(model.Op{Kind: model.OpInsert, Query: q}, t0)
}

// DropQuery logs a synthetic deletion for a query migrated *off* this
// worker (cell migration extract).
func (l *Log) DropQuery(q *model.Query, t0 time.Time) uint64 {
	return l.Append(model.Op{Kind: model.OpDelete, Query: q}, t0)
}

// AdoptObject logs a refill entry for a window object migrated *onto*
// this worker with a cell or subscription hand-off. t0 is the object's
// original publish stamp, not the adoption instant. Replaying it
// rebuilds window state only — boolean matches stay suppressed.
func (l *Log) AdoptObject(o *model.Object, t0 time.Time) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	l.entries = append(l.entries, Entry{
		Seq: l.seq, Op: model.Op{Kind: model.OpObject, Obj: o}, T0: t0, Refill: true,
	})
	return l.seq
}

// Checkpoint folds every query entry at or below watermark into the
// live base and truncates the covered prefix. The caller must have
// proven — via a drain barrier — that the worker has fully processed
// the stream up to the watermark, so truncated object entries cannot
// carry unmatched work. Object entries still inside the largest live
// top-k window (measured against now) are retained as Refill entries
// instead of dropped: a post-crash replay needs them to rebuild the
// node's window state, and any entry this retention lets go of is
// already expired from every live subscription.
func (l *Log) Checkpoint(watermark uint64, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if watermark <= l.watermark {
		return
	}
	var objs, tail []Entry
	for _, e := range l.entries {
		if e.Seq > watermark {
			tail = append(tail, e)
			continue
		}
		switch e.Op.Kind {
		case model.OpInsert:
			if e.Op.Query != nil {
				l.live[e.Op.Query.ID] = e.Op.Query
			}
		case model.OpDelete:
			if e.Op.Query != nil {
				delete(l.live, e.Op.Query.ID)
			}
		case model.OpObject:
			if e.Op.Obj != nil {
				objs = append(objs, e)
			}
		}
	}
	// Retention horizon: the largest window among live top-k queries —
	// folded into the base or still pending in the tail. Zero when no
	// top-k subscription is live, which restores the legacy behaviour
	// of dropping every covered object.
	var retain time.Duration
	for _, q := range l.live {
		if q.IsTopK() && q.Window > retain {
			retain = q.Window
		}
	}
	for _, e := range tail {
		if e.Op.Kind == model.OpInsert && e.Op.Query != nil &&
			e.Op.Query.IsTopK() && e.Op.Query.Window > retain {
			retain = e.Op.Query.Window
		}
	}
	next := l.entries[:0]
	if retain > 0 {
		horizon := now.Add(-retain)
		for _, e := range objs {
			if e.T0.After(horizon) {
				e.Refill = true
				next = append(next, e)
			}
		}
	}
	next = append(next, tail...)
	// Release the truncated suffix for the collector.
	for i := len(next); i < len(l.entries); i++ {
		l.entries[i] = Entry{}
	}
	l.entries = next
	l.watermark = watermark
}

// Replay snapshots the recovery plan: the live base at the watermark
// (sorted by query id, so replays are deterministic), a copy of the
// logged tail above it, and the watermark itself.
func (l *Log) Replay() (base []*model.Query, tail []Entry, watermark uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	base = make([]*model.Query, 0, len(l.live))
	for _, q := range l.live {
		base = append(base, q)
	}
	sort.Slice(base, func(i, j int) bool { return base[i].ID < base[j].ID })
	tail = append([]Entry(nil), l.entries...)
	return base, tail, l.watermark
}

// Since returns a copy of the logged entries with sequence numbers
// strictly above seq, in append order. Recovery uses it to pick up
// operations appended while a replay was in flight.
func (l *Log) Since(seq uint64) []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Seq > seq })
	if i == len(l.entries) {
		return nil
	}
	return append([]Entry(nil), l.entries[i:]...)
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Watermark returns the checkpoint watermark.
func (l *Log) Watermark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.watermark
}

// TailLen reports how many entries sit above the watermark — the
// checkpoint loop's trigger for a forced (op-count) checkpoint.
// Retained refill entries (at or below the watermark) are excluded:
// they are bounded by the window, and counting them would make the
// op-count trigger fire forever once the window filled up.
func (l *Log) TailLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := sort.Search(len(l.entries), func(i int) bool { return l.entries[i].Seq > l.watermark })
	return len(l.entries) - i
}

// LiveLen reports the checkpoint base's query count.
func (l *Log) LiveLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.live)
}
