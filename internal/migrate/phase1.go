package migrate

import (
	"sort"

	"ps2stream/internal/load"
)

// KeyStat describes one registration key inside a worker's share of a
// cell: how many live queries sit under it and how often objects hit its
// inverted list in the current window.
type KeyStat struct {
	Key     string
	Queries int
	ObjHits int64
}

// CellShare is one worker's share of one gridt cell, the input granule of
// Phase I planning.
type CellShare struct {
	Cell      int
	Queries   int
	ObjSeen   int64
	SizeBytes int64
	Text      bool // cell is text-partitioned in the gridt index
	Keys      []KeyStat
}

// Load evaluates Definition 3 for the share.
func (c CellShare) Load() float64 { return load.Cell(float64(c.ObjSeen), float64(c.Queries)) }

// ActionKind enumerates Phase I operations.
type ActionKind int

const (
	// ActionSplitText converts a space cell into a text cell and
	// migrates the listed keys (and their queries) to the light worker.
	ActionSplitText ActionKind = iota
	// ActionMergeShares migrates the heavy worker's share of a text cell
	// to the light worker, merging it with the share already there.
	ActionMergeShares
)

// Action is one planned Phase I operation.
type Action struct {
	Kind ActionKind
	Cell int
	// Keys lists the registration keys to move (ActionSplitText).
	Keys []string
	// LoadMoved estimates the Definition 3 load transferred.
	LoadMoved float64
}

// PhaseIConfig tunes the planner.
type PhaseIConfig struct {
	// P is the number of most-loaded cells of w_o to inspect (the
	// paper's small parameter p).
	P int
	// Costs weight the workload estimates.
	Costs load.Costs
}

// PlanPhaseI inspects the p most loaded cells of the overloaded worker w_o
// and returns the split/merge actions that reduce the total amount of
// workload (§V-A Phase I):
//
//   - a space cell is text-split when serving it from two workers costs
//     less than the current single-worker matching product;
//   - a text-cell share is merged into w_l's share of the same cell when
//     deduplicating the objects outweighs the larger matching product.
//
// wl maps cell id → w_l's existing share for merge checks; cellObjTotal
// reports the total object arrivals per cell (dispatcher-side counter)
// used to estimate the merged object volume.
func PlanPhaseI(wo []CellShare, wl map[int]CellShare, cellObjTotal func(cell int) int64, cfg PhaseIConfig) []Action {
	if cfg.P <= 0 {
		cfg.P = 8
	}
	if cfg.Costs == (load.Costs{}) {
		cfg.Costs = load.DefaultCosts
	}
	top := append([]CellShare(nil), wo...)
	sort.Slice(top, func(i, j int) bool {
		li, lj := top[i].Load(), top[j].Load()
		if li != lj {
			return li > lj
		}
		return top[i].Cell < top[j].Cell
	})
	if len(top) > cfg.P {
		top = top[:cfg.P]
	}
	var actions []Action
	for _, cs := range top {
		if !cs.Text {
			if a, ok := planSplit(cs, cfg.Costs); ok {
				actions = append(actions, a)
			}
			continue
		}
		other, exists := wl[cs.Cell]
		if !exists || !other.Text {
			continue
		}
		if a, ok := planMerge(cs, other, cellObjTotal, cfg.Costs); ok {
			actions = append(actions, a)
		}
	}
	return actions
}

// planSplit evaluates text-splitting a space cell in two and migrating the
// smaller half.
func planSplit(cs CellShare, costs load.Costs) (Action, bool) {
	if len(cs.Keys) < 2 {
		return Action{}, false
	}
	// Greedy 2-way partition of keys by query count (balance the stored
	// queries, the quantity that must migrate).
	keys := append([]KeyStat(nil), cs.Keys...)
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Queries != keys[j].Queries {
			return keys[i].Queries > keys[j].Queries
		}
		return keys[i].Key < keys[j].Key
	})
	var g1, g2 []KeyStat
	var q1, q2 int
	for _, k := range keys {
		if q1 <= q2 {
			g1 = append(g1, k)
			q1 += k.Queries
		} else {
			g2 = append(g2, k)
			q2 += k.Queries
		}
	}
	if len(g1) == 0 || len(g2) == 0 {
		return Action{}, false
	}
	h1, h2 := hits(g1), hits(g2)
	// Before: all objects of the cell are matched against all queries on
	// one worker. After: each half handles only objects hitting its
	// keys. Object handling cost (c2) is paid per half.
	before := costs.C1*float64(cs.ObjSeen)*float64(q1+q2) + costs.C2*float64(cs.ObjSeen)
	after := costs.C1*(float64(h1)*float64(q1)+float64(h2)*float64(q2)) +
		costs.C2*float64(h1+h2)
	if after >= before {
		return Action{}, false
	}
	// Migrate the smaller half (by stored queries) per the paper.
	moved := g1
	movedQ := q1
	movedH := h1
	if q2 < q1 {
		moved, movedQ, movedH = g2, q2, h2
	}
	names := make([]string, len(moved))
	for i, k := range moved {
		names[i] = k.Key
	}
	sort.Strings(names)
	return Action{
		Kind:      ActionSplitText,
		Cell:      cs.Cell,
		Keys:      names,
		LoadMoved: load.Cell(float64(movedH), float64(movedQ)),
	}, true
}

func hits(ks []KeyStat) int64 {
	var h int64
	for _, k := range ks {
		h += k.ObjHits
	}
	return h
}

// planMerge evaluates merging w_o's text share into w_l's share of the
// same cell.
func planMerge(a, b CellShare, cellObjTotal func(int) int64, costs load.Costs) (Action, bool) {
	// Before: each worker handles its own object subset and query share.
	before := costs.C1*(float64(a.ObjSeen)*float64(a.Queries)+float64(b.ObjSeen)*float64(b.Queries)) +
		costs.C2*float64(a.ObjSeen+b.ObjSeen)
	// After: one worker holds both query shares and receives each cell
	// object once. The dispatcher's total arrival count bounds the
	// merged object volume.
	merged := a.ObjSeen + b.ObjSeen
	if cellObjTotal != nil {
		if t := cellObjTotal(a.Cell); t >= 0 && t < merged {
			merged = t
		}
	}
	after := costs.C1*float64(merged)*float64(a.Queries+b.Queries) + costs.C2*float64(merged)
	if after >= before {
		return Action{}, false
	}
	return Action{
		Kind:      ActionMergeShares,
		Cell:      a.Cell,
		LoadMoved: a.Load(),
	}, true
}
