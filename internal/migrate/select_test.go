package migrate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func cellsFixture() []Cell {
	return []Cell{
		{ID: 0, Load: 10, Size: 100},
		{ID: 1, Load: 20, Size: 150},
		{ID: 2, Load: 5, Size: 500},
		{ID: 3, Load: 40, Size: 300},
		{ID: 4, Load: 15, Size: 50},
		{ID: 5, Load: 8, Size: 900},
	}
}

func TestSelectDPOptimalSmall(t *testing.T) {
	cells := cellsFixture()
	tau := 50.0
	got, ok := SelectDP(cells, tau, 1) // 1-byte units: exact
	if !ok {
		t.Fatal("DP infeasible")
	}
	if got.Load < tau {
		t.Fatalf("DP load %v < tau %v", got.Load, tau)
	}
	// Exhaustive oracle.
	best := int64(math.MaxInt64)
	for mask := 0; mask < 1<<len(cells); mask++ {
		var l float64
		var s int64
		for i, c := range cells {
			if mask&(1<<i) != 0 {
				l += c.Load
				s += c.Size
			}
		}
		if l >= tau && s < best {
			best = s
		}
	}
	if got.Size != best {
		t.Errorf("DP size %d, optimal %d", got.Size, best)
	}
}

// Property: DP with 1-byte quantisation matches the exhaustive optimum on
// random small instances.
func TestSelectDPOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6)
		cells := make([]Cell, n)
		var total float64
		for i := range cells {
			cells[i] = Cell{
				ID:   i,
				Load: float64(1 + rng.Intn(20)),
				Size: int64(1 + rng.Intn(30)),
			}
			total += cells[i].Load
		}
		tau := total * (0.2 + 0.6*rng.Float64())
		got, ok := SelectDP(cells, tau, 1)
		if !ok {
			return false
		}
		if got.Load < tau {
			return false
		}
		best := int64(math.MaxInt64)
		for mask := 0; mask < 1<<n; mask++ {
			var l float64
			var s int64
			for i, c := range cells {
				if mask&(1<<i) != 0 {
					l += c.Load
					s += c.Size
				}
			}
			if l >= tau && s < best {
				best = s
			}
		}
		return got.Size == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSelectGRFeasible(t *testing.T) {
	cells := cellsFixture()
	for _, tau := range []float64{1, 10, 50, 90} {
		sel, ok := SelectGR(cells, tau)
		if !ok {
			t.Fatalf("GR infeasible at tau=%v", tau)
		}
		if sel.Load < tau {
			t.Errorf("GR load %v < tau %v", sel.Load, tau)
		}
	}
}

func TestSelectGRPrefersLowRelativeCost(t *testing.T) {
	cells := []Cell{
		{ID: 0, Load: 10, Size: 1000}, // relative cost 100
		{ID: 1, Load: 10, Size: 10},   // relative cost 1
		{ID: 2, Load: 10, Size: 20},   // relative cost 2
	}
	sel, ok := SelectGR(cells, 15)
	if !ok {
		t.Fatal("infeasible")
	}
	// Best: cells 1+2 (size 30), never cell 0.
	for _, c := range sel.Cells {
		if c.ID == 0 {
			t.Errorf("GR picked the expensive cell: %+v", sel.Cells)
		}
	}
	if sel.Size != 30 {
		t.Errorf("GR size = %d, want 30", sel.Size)
	}
}

func TestSelectGRSingleClosingCell(t *testing.T) {
	// A single large cell is cheaper than many small ones.
	cells := []Cell{
		{ID: 0, Load: 100, Size: 50},
		{ID: 1, Load: 1, Size: 10},
		{ID: 2, Load: 1, Size: 10},
	}
	sel, ok := SelectGR(cells, 90)
	if !ok {
		t.Fatal("infeasible")
	}
	if len(sel.Cells) != 1 || sel.Cells[0].ID != 0 {
		t.Errorf("GR = %+v, want just cell 0", sel.Cells)
	}
}

func TestSelectInfeasible(t *testing.T) {
	cells := []Cell{{ID: 0, Load: 5, Size: 10}}
	for _, alg := range Algorithms() {
		sel, ok := Select(alg, cells, 100, rand.New(rand.NewSource(1)))
		if ok {
			t.Errorf("%s: reported feasible for impossible tau", alg)
		}
		if len(sel.Cells) == 0 {
			t.Errorf("%s: infeasible selection should still return best effort", alg)
		}
	}
}

func TestSelectZeroTau(t *testing.T) {
	for _, alg := range Algorithms() {
		sel, ok := Select(alg, cellsFixture(), 0, nil)
		if !ok || len(sel.Cells) != 0 {
			t.Errorf("%s: tau=0 should select nothing", alg)
		}
	}
}

func TestSelectSIOrder(t *testing.T) {
	sel, ok := SelectSI(cellsFixture(), 10)
	if !ok {
		t.Fatal("infeasible")
	}
	// First pick is the largest cell (ID 5, size 900).
	if sel.Cells[0].ID != 5 {
		t.Errorf("SI first pick = %d, want 5", sel.Cells[0].ID)
	}
}

func TestSelectRADeterministicWithSeed(t *testing.T) {
	a, _ := SelectRA(cellsFixture(), 30, rand.New(rand.NewSource(7)))
	b, _ := SelectRA(cellsFixture(), 30, rand.New(rand.NewSource(7)))
	if len(a.Cells) != len(b.Cells) {
		t.Fatal("RA not deterministic under fixed seed")
	}
	for i := range a.Cells {
		if a.Cells[i].ID != b.Cells[i].ID {
			t.Fatal("RA not deterministic under fixed seed")
		}
	}
}

// Property: all algorithms return feasible selections whenever total load
// suffices, and GR's cost never beats DP's optimum.
func TestSelectionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		cells := make([]Cell, n)
		var total float64
		for i := range cells {
			cells[i] = Cell{ID: i, Load: float64(1 + rng.Intn(30)), Size: int64(1 + rng.Intn(50))}
			total += cells[i].Load
		}
		tau := total * 0.4
		dp, ok1 := SelectDP(cells, tau, 1)
		gr, ok2 := SelectGR(cells, tau)
		si, ok3 := SelectSI(cells, tau)
		ra, ok4 := SelectRA(cells, tau, rng)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return false
		}
		if dp.Load < tau || gr.Load < tau || si.Load < tau || ra.Load < tau {
			return false
		}
		// DP is optimal: nothing beats it.
		return gr.Size >= dp.Size && si.Size >= dp.Size && ra.Size >= dp.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// GR should usually produce smaller migration cost than SI and RA — the
// Figure 14 finding. Checked in aggregate over many instances.
func TestGRBeatsBaselinesOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var grTotal, siTotal, raTotal float64
	for trial := 0; trial < 200; trial++ {
		n := 50
		cells := make([]Cell, n)
		var total float64
		for i := range cells {
			load := float64(1 + rng.Intn(100))
			// Size loosely correlated with load plus noise.
			size := int64(load*float64(10+rng.Intn(20))) + int64(rng.Intn(500))
			cells[i] = Cell{ID: i, Load: load, Size: size}
			total += load
		}
		tau := total * 0.3
		gr, _ := SelectGR(cells, tau)
		si, _ := SelectSI(cells, tau)
		ra, _ := SelectRA(cells, tau, rng)
		grTotal += float64(gr.Size)
		siTotal += float64(si.Size)
		raTotal += float64(ra.Size)
	}
	if grTotal >= siTotal {
		t.Errorf("GR total cost %v should beat SI %v", grTotal, siTotal)
	}
	if grTotal >= raTotal {
		t.Errorf("GR total cost %v should beat RA %v", grTotal, raTotal)
	}
}

func TestTau(t *testing.T) {
	if got := Tau([]float64{10, 50}); got != 20 {
		t.Errorf("Tau = %v, want 20", got)
	}
	if got := Tau([]float64{30}); got != 0 {
		t.Errorf("Tau single = %v, want 0", got)
	}
	if got := Tau(nil); got != 0 {
		t.Errorf("Tau nil = %v, want 0", got)
	}
}

func TestSelectUnknownAlgorithmFallsBack(t *testing.T) {
	sel, ok := Select(Algorithm("bogus"), cellsFixture(), 10, nil)
	if !ok || sel.Load < 10 {
		t.Error("unknown algorithm should fall back to GR")
	}
}
