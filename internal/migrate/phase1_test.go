package migrate

import (
	"testing"

	"ps2stream/internal/load"
)

func TestPlanSplitReducesWorkload(t *testing.T) {
	// A space cell where objects cleanly separate by key: splitting
	// halves the matching product.
	cs := CellShare{
		Cell: 7, Queries: 100, ObjSeen: 1000, SizeBytes: 50000, Text: false,
		Keys: []KeyStat{
			{Key: "alpha", Queries: 50, ObjHits: 500},
			{Key: "beta", Queries: 50, ObjHits: 500},
		},
	}
	actions := PlanPhaseI([]CellShare{cs}, nil, nil, PhaseIConfig{P: 4})
	if len(actions) != 1 {
		t.Fatalf("got %d actions, want 1", len(actions))
	}
	a := actions[0]
	if a.Kind != ActionSplitText || a.Cell != 7 {
		t.Fatalf("unexpected action %+v", a)
	}
	if len(a.Keys) == 0 || len(a.Keys) == 2 {
		t.Errorf("split should move a strict subset of keys, got %v", a.Keys)
	}
	if a.LoadMoved <= 0 {
		t.Errorf("LoadMoved = %v", a.LoadMoved)
	}
}

func TestPlanSplitSkipsWhenNotBeneficial(t *testing.T) {
	// Every object hits every key: splitting duplicates all objects to
	// both halves and cannot win.
	cs := CellShare{
		Cell: 3, Queries: 10, ObjSeen: 100, Text: false,
		Keys: []KeyStat{
			{Key: "a", Queries: 5, ObjHits: 100},
			{Key: "b", Queries: 5, ObjHits: 100},
		},
	}
	actions := PlanPhaseI([]CellShare{cs}, nil, nil, PhaseIConfig{})
	if len(actions) != 0 {
		t.Errorf("expected no actions, got %+v", actions)
	}
}

func TestPlanSplitNeedsTwoKeys(t *testing.T) {
	cs := CellShare{
		Cell: 1, Queries: 50, ObjSeen: 500, Text: false,
		Keys: []KeyStat{{Key: "only", Queries: 50, ObjHits: 400}},
	}
	if actions := PlanPhaseI([]CellShare{cs}, nil, nil, PhaseIConfig{}); len(actions) != 0 {
		t.Errorf("single-key cell cannot split, got %+v", actions)
	}
}

func TestPlanMergeWhenDuplicationDominates(t *testing.T) {
	// Both workers see nearly all of the cell's objects (heavy
	// duplication) with few queries each: merging saves object handling.
	wo := CellShare{Cell: 5, Queries: 3, ObjSeen: 1000, Text: true}
	wl := map[int]CellShare{
		5: {Cell: 5, Queries: 2, ObjSeen: 1000, Text: true},
	}
	total := func(cell int) int64 { return 1100 } // objects arrive ~once
	actions := PlanPhaseI([]CellShare{wo}, wl, total, PhaseIConfig{})
	if len(actions) != 1 || actions[0].Kind != ActionMergeShares {
		t.Fatalf("expected merge action, got %+v", actions)
	}
}

func TestPlanMergeSkippedWhenMatchingDominates(t *testing.T) {
	// Many queries on both sides: merging would multiply the matching
	// product; the split should stay.
	wo := CellShare{Cell: 5, Queries: 5000, ObjSeen: 600, Text: true}
	wl := map[int]CellShare{
		5: {Cell: 5, Queries: 5000, ObjSeen: 500, Text: true},
	}
	total := func(cell int) int64 { return 1000 }
	actions := PlanPhaseI([]CellShare{wo}, wl, total, PhaseIConfig{})
	if len(actions) != 0 {
		t.Errorf("expected no merge, got %+v", actions)
	}
}

func TestPlanMergeRequiresCounterpart(t *testing.T) {
	wo := CellShare{Cell: 9, Queries: 3, ObjSeen: 1000, Text: true}
	actions := PlanPhaseI([]CellShare{wo}, map[int]CellShare{}, nil, PhaseIConfig{})
	if len(actions) != 0 {
		t.Errorf("merge without counterpart share: %+v", actions)
	}
}

func TestPlanPhaseIRespectsP(t *testing.T) {
	var shares []CellShare
	for i := 0; i < 20; i++ {
		shares = append(shares, CellShare{
			Cell: i, Queries: 100, ObjSeen: int64(1000 - i*10), Text: false,
			Keys: []KeyStat{
				{Key: "a", Queries: 50, ObjHits: 400},
				{Key: "b", Queries: 50, ObjHits: 400},
			},
		})
	}
	actions := PlanPhaseI(shares, nil, nil, PhaseIConfig{P: 3})
	if len(actions) > 3 {
		t.Errorf("planner inspected more than P cells: %d actions", len(actions))
	}
}

func TestCellShareLoad(t *testing.T) {
	cs := CellShare{Queries: 4, ObjSeen: 25}
	if got := cs.Load(); got != 100 {
		t.Errorf("Load = %v, want 100", got)
	}
	if load.Cell(0, 5) != 0 {
		t.Error("zero objects should be zero load")
	}
}
