// Package migrate implements the dynamic load adjustment machinery of §V:
// the Minimum Cost Migration problem (Definition 4, NP-hard by Theorem 2)
// with the paper's dynamic-programming algorithm and greedy algorithm GR,
// the comparison baselines SI (size-descending) and RA (random), and the
// Phase I split/merge planning that precedes cell selection.
package migrate

import (
	"math"
	"math/rand"
	"sort"

	"ps2stream/internal/load"
)

// Cell is a migration candidate: one gridt cell (or one worker's share of
// it) with its Definition 3 load L_g and serialised size S_g.
type Cell struct {
	ID   int
	Load float64
	Size int64
}

// Selection is the result of a cell-selection algorithm.
type Selection struct {
	Cells []Cell
	Load  float64
	Size  int64
}

func summarize(cells []Cell) Selection {
	s := Selection{Cells: cells}
	for _, c := range cells {
		s.Load += c.Load
		s.Size += c.Size
	}
	return s
}

// totalLoad sums the loads of all cells.
func totalLoad(cells []Cell) float64 {
	var t float64
	for _, c := range cells {
		t += c.Load
	}
	return t
}

// SelectDP solves Minimum Cost Migration exactly (up to size
// quantisation): find the cell set minimising total size subject to total
// load ≥ tau. It implements the paper's knapsack-style DP
//
//	A(i,j) = max{A(i-1,j), A(i-1,j-S_gi) + L_gi}
//
// over sizes quantised to sizeUnit bytes (pass 0 for the 1 KiB default).
// Its O(n·P) time and memory is exactly the weakness Figures 12–13
// demonstrate; callers should bound the input. ok is false when even
// migrating everything cannot reach tau.
func SelectDP(cells []Cell, tau float64, sizeUnit int64) (Selection, bool) {
	if tau <= 0 {
		return Selection{}, true
	}
	if totalLoad(cells) < tau {
		return summarize(append([]Cell(nil), cells...)), false
	}
	if sizeUnit <= 0 {
		sizeUnit = 1024
	}
	n := len(cells)
	sizes := make([]int, n)
	// P: upper bound of the minimum migration cost = total quantised size.
	P := 0
	for i, c := range cells {
		s := int((c.Size + sizeUnit - 1) / sizeUnit)
		if s < 1 {
			s = 1
		}
		sizes[i] = s
		P += s
	}
	// A[i][j]: 2D table for reconstruction, per the paper.
	A := make([][]float64, n+1)
	for i := range A {
		A[i] = make([]float64, P+1)
	}
	for i := 1; i <= n; i++ {
		li, si := cells[i-1].Load, sizes[i-1]
		for j := 0; j <= P; j++ {
			A[i][j] = A[i-1][j]
			if j >= si {
				if v := A[i-1][j-si] + li; v > A[i][j] {
					A[i][j] = v
				}
			}
		}
	}
	// Smallest j whose best load reaches tau.
	jStar := -1
	for j := 0; j <= P; j++ {
		if A[n][j] >= tau {
			jStar = j
			break
		}
	}
	if jStar < 0 {
		return summarize(append([]Cell(nil), cells...)), false
	}
	var picked []Cell
	j := jStar
	for i := n; i >= 1; i-- {
		if A[i][j] != A[i-1][j] {
			picked = append(picked, cells[i-1])
			j -= sizes[i-1]
		}
	}
	return summarize(picked), true
}

// SelectGR implements Algorithm GR: cells are scanned in ascending
// relative cost S_g/L_g; cells that keep the running load below tau are
// accepted into the growing prefix ("GS"), others become candidates
// ("GL"). Every candidate closes a feasible solution (prefix + that cell);
// the minimum-cost one seen wins.
func SelectGR(cells []Cell, tau float64) (Selection, bool) {
	if tau <= 0 {
		return Selection{}, true
	}
	order := append([]Cell(nil), cells...)
	sort.Slice(order, func(i, j int) bool {
		ri := relativeCost(order[i])
		rj := relativeCost(order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i].ID < order[j].ID
	})
	var prefix []Cell
	var prefixLoad float64
	var prefixSize int64
	bestSize := int64(math.MaxInt64)
	bestPrefixLen := -1
	var bestClosing Cell
	for _, c := range order {
		if prefixLoad+c.Load < tau {
			prefix = append(prefix, c)
			prefixLoad += c.Load
			prefixSize += c.Size
			continue
		}
		// c is a GL cell: prefix + c is a feasible candidate solution.
		if cost := prefixSize + c.Size; cost < bestSize {
			bestSize = cost
			bestPrefixLen = len(prefix)
			bestClosing = c
		}
	}
	if bestPrefixLen < 0 {
		// No single closing cell ever pushed the prefix over tau.
		if prefixLoad >= tau {
			return summarize(prefix), true
		}
		return summarize(order), false
	}
	out := append(append([]Cell(nil), prefix[:bestPrefixLen]...), bestClosing)
	return summarize(out), true
}

func relativeCost(c Cell) float64 {
	if c.Load <= 0 {
		return math.Inf(1)
	}
	return float64(c.Size) / c.Load
}

// SelectSI is the SI baseline: add cells in descending size order until
// the load requirement is met.
func SelectSI(cells []Cell, tau float64) (Selection, bool) {
	if tau <= 0 {
		return Selection{}, true
	}
	order := append([]Cell(nil), cells...)
	sort.Slice(order, func(i, j int) bool {
		if order[i].Size != order[j].Size {
			return order[i].Size > order[j].Size
		}
		return order[i].ID < order[j].ID
	})
	var out []Cell
	var got float64
	for _, c := range order {
		if got >= tau {
			break
		}
		out = append(out, c)
		got += c.Load
	}
	return summarize(out), got >= tau
}

// SelectRA is the RA baseline: cells are chosen uniformly at random until
// the load requirement is met. rng may be nil for a fixed default seed.
func SelectRA(cells []Cell, tau float64, rng *rand.Rand) (Selection, bool) {
	if tau <= 0 {
		return Selection{}, true
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	order := append([]Cell(nil), cells...)
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	var out []Cell
	var got float64
	for _, c := range order {
		if got >= tau {
			break
		}
		out = append(out, c)
		got += c.Load
	}
	return summarize(out), got >= tau
}

// Algorithm names the selection strategies for experiment harnesses.
type Algorithm string

// The four cell-selection algorithms of §VI-D.
const (
	DP Algorithm = "DP"
	GR Algorithm = "GR"
	SI Algorithm = "SI"
	RA Algorithm = "RA"
)

// Algorithms lists them in the paper's presentation order.
func Algorithms() []Algorithm { return []Algorithm{DP, GR, SI, RA} }

// Select dispatches by algorithm name.
func Select(alg Algorithm, cells []Cell, tau float64, rng *rand.Rand) (Selection, bool) {
	switch alg {
	case DP:
		return SelectDP(cells, tau, 0)
	case GR:
		return SelectGR(cells, tau)
	case SI:
		return SelectSI(cells, tau)
	case RA:
		return SelectRA(cells, tau, rng)
	default:
		return SelectGR(cells, tau)
	}
}

// Tau computes the load amount τ to migrate from the most loaded worker so
// both ends of the transfer approach the mean: half the load gap between
// w_o and w_l.
func Tau(loads []float64) float64 {
	if len(loads) < 2 {
		return 0
	}
	lo, hi := load.ArgMinMax(loads)
	return (loads[hi] - loads[lo]) / 2
}
