package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Registry is a labeled metric registry with two exposition formats:
// Prometheus text (for /metrics scrapes) and a JSON snapshot (for
// /statsz). It is stdlib-only by design.
//
// Series come in two flavours. Owned series (Counter, Gauge, Histogram)
// allocate a live instrument the caller updates on the hot path.
// Func-backed series (CounterFunc, GaugeFunc, HistogramFunc) read an
// existing value through a closure at scrape time only, so wiring an
// already-instrumented subsystem into the registry adds zero hot-path
// cost — the pattern used for every pre-existing counter in core.
//
// Registration is idempotent for owned series: asking for the same
// name+labels again returns the same instrument. Registering the same
// name with a different series kind panics (a programming error, like
// Prometheus client libraries treat it).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// Label is one name="value" pair attached to a series.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Series kinds, exposed in both exposition formats.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series
}

type series struct {
	labels    []Label // sorted by name
	counter   *Counter
	gauge     *Gauge
	counterFn func() int64
	gaugeFn   func() float64
	histFn    func() *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func sortLabels(labels []Label) []Label {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	return ls
}

func labelSig(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// register returns the series for name+labels, creating family and
// series as needed. Caller holds r.mu.
func (r *Registry) register(name, help, kind string, labels []Label) (*series, bool) {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fams[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	ls := sortLabels(labels)
	sig := labelSig(ls)
	if s, ok := f.series[sig]; ok {
		return s, false
	}
	s := &series{labels: ls}
	f.series[sig] = s
	return s, true
}

// Counter returns the owned counter for name+labels, registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, KindCounter, labels)
	if fresh {
		s.counter = &Counter{}
	}
	if s.counter == nil {
		panic(fmt.Sprintf("metrics: %s{%s} registered func-backed, requested owned", name, labelSig(s.labels)))
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read through fn at
// scrape time. Re-registering the same name+labels replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, KindCounter, labels)
	s.counter, s.counterFn = nil, fn
}

// Gauge returns the owned gauge for name+labels, registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, KindGauge, labels)
	if fresh {
		s.gauge = &Gauge{}
	}
	if s.gauge == nil {
		panic(fmt.Sprintf("metrics: %s{%s} registered func-backed, requested owned", name, labelSig(s.labels)))
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read through fn at scrape
// time. Re-registering the same name+labels replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, KindGauge, labels)
	s.gauge, s.gaugeFn = nil, fn
}

// Histogram returns the owned histogram for name+labels, registering it
// on first use with the given bounds (nil = DefaultLatencyBounds).
func (r *Registry) Histogram(name, help string, bounds []time.Duration, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, fresh := r.register(name, help, KindHistogram, labels)
	if fresh {
		h := NewHistogram(bounds)
		s.histFn = func() *Histogram { return h }
	}
	return s.histFn()
}

// HistogramFunc registers a histogram read through fn at scrape time —
// used where the live histogram is swapped out (e.g. latency resets
// rotate an atomic.Pointer). fn may return nil for "no data yet".
func (r *Registry) HistogramFunc(name, help string, fn func() *Histogram, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, _ := r.register(name, help, KindHistogram, labels)
	s.histFn = fn
}

// sortedFamilies snapshots families and series in deterministic order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	sigs := make([]string, 0, len(f.series))
	for sig := range f.series {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	out := make([]*series, 0, len(sigs))
	for _, sig := range sigs {
		out = append(out, f.series[sig])
	}
	return out
}

func (s *series) counterValue() int64 {
	if s.counterFn != nil {
		return s.counterFn()
	}
	return s.counter.Value()
}

func (s *series) gaugeValue() float64 {
	if s.gaugeFn != nil {
		return s.gaugeFn()
	}
	return float64(s.gauge.Value())
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promLabels renders {a="x",b="y"} plus any extra pairs (used for the
// histogram le label); empty when there are none.
func promLabels(ls []Label, extra ...Label) string {
	if len(ls)+len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	n := 0
	for _, l := range append(append([]Label(nil), ls...), extra...) {
		if n > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Name, escapeLabelValue(l.Value))
		n++
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every series in the Prometheus text exposition
// format (version 0.0.4). Histogram buckets are cumulative with bounds
// in seconds, matching Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.sortedSeries() {
			var err error
			switch f.kind {
			case KindCounter:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(s.labels), s.counterValue())
			case KindGauge:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(s.labels), formatFloat(s.gaugeValue()))
			case KindHistogram:
				err = writePromHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s *series) error {
	h := s.histFn()
	if h == nil {
		h = NewHistogram(nil)
	}
	bounds, counts := h.Buckets()
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		le := formatFloat(b.Seconds())
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, promLabels(s.labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	sum := float64(h.sum.Load()) / float64(time.Second)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, promLabels(s.labels), formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, promLabels(s.labels), h.Count())
	return err
}

// JSONSeries is one series in the /statsz snapshot. Exactly one of
// Value (counter/gauge) or the histogram fields is populated, keyed by
// Type.
type JSONSeries struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`

	// Counter and gauge series.
	Value *float64 `json:"value,omitempty"`

	// Histogram series (durations in seconds).
	Count   *int64       `json:"count,omitempty"`
	Sum     *float64     `json:"sum_seconds,omitempty"`
	Mean    *float64     `json:"mean_seconds,omitempty"`
	P50     *float64     `json:"p50_seconds,omitempty"`
	P95     *float64     `json:"p95_seconds,omitempty"`
	P99     *float64     `json:"p99_seconds,omitempty"`
	Max     *float64     `json:"max_seconds,omitempty"`
	Buckets []JSONBucket `json:"buckets,omitempty"`
}

// JSONBucket is one cumulative histogram bucket; Le is the upper bound
// in seconds, empty for the +Inf bucket.
type JSONBucket struct {
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// WriteJSON writes the /statsz snapshot: {"series": [...]} with every
// series in deterministic order.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Series []JSONSeries `json:"series"`
	}{r.Gather()})
}

// Gather returns every series as JSON-ready values in deterministic
// order (by name, then label signature).
func (r *Registry) Gather() []JSONSeries {
	var out []JSONSeries
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			js := JSONSeries{Name: f.name, Type: f.kind}
			if len(s.labels) > 0 {
				js.Labels = make(map[string]string, len(s.labels))
				for _, l := range s.labels {
					js.Labels[l.Name] = l.Value
				}
			}
			switch f.kind {
			case KindCounter:
				v := float64(s.counterValue())
				js.Value = &v
			case KindGauge:
				v := s.gaugeValue()
				js.Value = &v
			case KindHistogram:
				h := s.histFn()
				if h == nil {
					h = NewHistogram(nil)
				}
				snap := h.Snapshot()
				count := snap.Count
				sum := float64(h.sum.Load()) / float64(time.Second)
				mean := snap.Mean.Seconds()
				p50 := snap.P50.Seconds()
				p95 := snap.P95.Seconds()
				p99 := snap.P99.Seconds()
				mx := snap.Max.Seconds()
				js.Count, js.Sum, js.Mean = &count, &sum, &mean
				js.P50, js.P95, js.P99, js.Max = &p50, &p95, &p99, &mx
				bounds, counts := h.Buckets()
				var cum int64
				for i, b := range bounds {
					cum += counts[i]
					js.Buckets = append(js.Buckets, JSONBucket{Le: formatFloat(b.Seconds()), Count: cum})
				}
				cum += counts[len(counts)-1]
				js.Buckets = append(js.Buckets, JSONBucket{Le: "+Inf", Count: cum})
			}
			out = append(out, js)
		}
	}
	return out
}
