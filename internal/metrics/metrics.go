// Package metrics provides the lightweight instrumentation used across
// PS2Stream: atomic counters, throughput meters, and latency histograms
// with the bucket boundaries reported in the paper's evaluation
// (<100ms, 100ms–1s, >1s in Figures 12(c) and 15).
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Gauge is an atomically settable value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n and returns the new value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// EWMA is an exponentially weighted moving average gauge: each Observe
// folds a new sample into the running average with weight alpha
// (avg ← alpha·sample + (1−alpha)·avg; the first sample seeds the
// average). Observe and Value are both lock-free and safe to call from
// any number of goroutines: concurrent Observes serialise through a CAS
// loop, so every sample is folded in exactly once (historically the
// adjustment controller was the only sampler, but adjustTick and
// pollRemoteLoads both feed loads now).
type EWMA struct {
	alpha float64
	bits  atomic.Uint64 // math.Float64bits of the current average
	n     atomic.Int64
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1]:
// higher alpha weights recent samples more. Out-of-range alphas are
// clamped.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample in and returns the updated average.
//
// The first sample must seed the average rather than fold against the
// zero value, so n doubles as the seed latch: 0 = unseeded, -1 = a
// seeder is mid-publication, >0 = samples folded so far. n is only
// advanced past a bits update, so any goroutine that reads n > 0 also
// sees a fully published average to fold against.
func (e *EWMA) Observe(v float64) float64 {
	for {
		switch n := e.n.Load(); {
		case n == 0:
			if e.n.CompareAndSwap(0, -1) {
				e.bits.Store(math.Float64bits(v))
				e.n.Store(1)
				return v
			}
		case n < 0:
			// A concurrent seeder claimed the slot but has not
			// published yet; yield until it does.
			runtime.Gosched()
		default:
			old := e.bits.Load()
			next := e.alpha*v + (1-e.alpha)*math.Float64frombits(old)
			if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
				e.n.Add(1)
				return next
			}
		}
	}
}

// Value returns the current average (0 before any sample).
func (e *EWMA) Value() float64 { return math.Float64frombits(e.bits.Load()) }

// Count returns the number of samples observed.
func (e *EWMA) Count() int64 {
	if n := e.n.Load(); n > 0 {
		return n
	}
	return 0
}

// Throughput measures processed tuples per second over the interval since
// construction or the last Reset.
type Throughput struct {
	count Counter
	mu    sync.Mutex
	start time.Time
}

// NewThroughput returns a meter starting now.
func NewThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Inc records one processed tuple.
func (t *Throughput) Inc() { t.count.Inc() }

// Add records n processed tuples.
func (t *Throughput) Add(n int64) { t.count.Add(n) }

// Count returns the tuples recorded in the current interval.
func (t *Throughput) Count() int64 { return t.count.Value() }

// Rate returns tuples/second for the current interval.
func (t *Throughput) Rate() float64 {
	t.mu.Lock()
	el := time.Since(t.start)
	t.mu.Unlock()
	if el <= 0 {
		return 0
	}
	return float64(t.count.Value()) / el.Seconds()
}

// Reset restarts the measurement interval and returns the previous rate.
func (t *Throughput) Reset() float64 {
	t.mu.Lock()
	el := time.Since(t.start)
	t.start = time.Now()
	t.mu.Unlock()
	n := t.count.Reset()
	if el <= 0 {
		return 0
	}
	return float64(n) / el.Seconds()
}

// Histogram records duration observations into fixed buckets and retains a
// sampled reservoir for quantile estimates. The hot path (Observe) uses
// only atomics except for an occasional reservoir insertion, so it can be
// shared by every worker goroutine without serialising them.
type Histogram struct {
	bounds  []time.Duration // upper bounds, ascending; implicit +Inf last
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
	seen    atomic.Int64

	mu     sync.Mutex
	sample []time.Duration
}

const (
	reservoirSize   = 4096
	reservoirEveryN = 16 // after the reservoir fills, sample 1 in N
)

// DefaultLatencyBounds are the paper's reporting boundaries plus finer
// low-end resolution.
var DefaultLatencyBounds = []time.Duration{
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	300 * time.Millisecond,
	time.Second,
	5 * time.Second,
}

// NewHistogram returns a histogram with the given ascending upper bounds;
// nil uses DefaultLatencyBounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	b := append([]time.Duration(nil), bounds...)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
		sample:  make([]time.Duration, 0, reservoirSize),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		m := h.max.Load()
		if int64(d) <= m || h.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
	n := h.seen.Add(1)
	if n <= reservoirSize {
		h.mu.Lock()
		if len(h.sample) < reservoirSize {
			h.sample = append(h.sample, d)
		}
		h.mu.Unlock()
		return
	}
	if n%reservoirEveryN != 0 {
		return
	}
	// Replace a pseudo-random slot (xorshift keeps this dependency-free
	// and deterministic given the observation sequence).
	x := uint64(n)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	idx := int(x % reservoirSize)
	h.mu.Lock()
	if idx < len(h.sample) {
		h.sample[idx] = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the reservoir.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	s := append([]time.Duration(nil), h.sample...)
	h.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// FractionBelow returns the fraction of observations ≤ d, computed exactly
// from the bucket whose bound equals d if present, otherwise estimated
// from the reservoir. Used for the paper's <100ms / [100ms,1s] / >1s
// breakdown.
func (h *Histogram) FractionBelow(d time.Duration) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	for i, b := range h.bounds {
		if b == d {
			var below int64
			for j := 0; j <= i; j++ {
				below += h.buckets[j].Load()
			}
			return float64(below) / float64(total)
		}
	}
	h.mu.Lock()
	s := append([]time.Duration(nil), h.sample...)
	h.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	var below int64
	for _, v := range s {
		if v <= d {
			below++
		}
	}
	return float64(below) / float64(len(s))
}

// Buckets returns copies of the bounds and bucket counts (last bucket is
// the overflow beyond the final bound).
func (h *Histogram) Buckets() ([]time.Duration, []int64) {
	counts := make([]int64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return append([]time.Duration(nil), h.bounds...), counts
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Snapshot is a point-in-time latency summary used by experiment reports.
type Snapshot struct {
	Count    int64
	Mean     time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
	Below100 float64 // fraction of tuples <100ms
	Below1s  float64 // fraction ≤1s
}

// Snapshot captures the current state.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count:    h.Count(),
		Mean:     h.Mean(),
		P50:      h.Quantile(0.5),
		P95:      h.Quantile(0.95),
		P99:      h.Quantile(0.99),
		Max:      h.Max(),
		Below100: h.FractionBelow(100 * time.Millisecond),
		Below1s:  h.FractionBelow(time.Second),
	}
}
