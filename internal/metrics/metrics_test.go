package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("Value = %d, want 5", got)
	}
	if got := c.Reset(); got != 5 {
		t.Errorf("Reset = %d, want 5", got)
	}
	if got := c.Value(); got != 0 {
		t.Errorf("after Reset Value = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("concurrent Value = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	if g.Value() != 7 {
		t.Error("Set/Value mismatch")
	}
	if g.Add(-3) != 4 {
		t.Error("Add return mismatch")
	}
}

func TestThroughput(t *testing.T) {
	tp := NewThroughput()
	tp.Add(100)
	time.Sleep(10 * time.Millisecond)
	r := tp.Rate()
	if r <= 0 || r > 100/0.010*2 {
		t.Errorf("Rate = %v, implausible", r)
	}
	prev := tp.Reset()
	if prev <= 0 {
		t.Errorf("Reset returned %v, want >0", prev)
	}
	if tp.Count() != 0 {
		t.Error("Reset did not zero count")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(nil)
	obs := []time.Duration{
		500 * time.Microsecond,
		2 * time.Millisecond,
		50 * time.Millisecond,
		200 * time.Millisecond,
		2 * time.Second,
	}
	for _, d := range obs {
		h.Observe(d)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Max() != 2*time.Second {
		t.Errorf("Max = %v, want 2s", h.Max())
	}
	wantMean := (500*time.Microsecond + 2*time.Millisecond + 50*time.Millisecond + 200*time.Millisecond + 2*time.Second) / 5
	if h.Mean() != wantMean {
		t.Errorf("Mean = %v, want %v", h.Mean(), wantMean)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram(nil)
	// 8 below 100ms, 1 in [100ms,1s], 1 above 1s.
	for i := 0; i < 8; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(500 * time.Millisecond)
	h.Observe(3 * time.Second)
	if got := h.FractionBelow(100 * time.Millisecond); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("FractionBelow(100ms) = %v, want 0.8", got)
	}
	if got := h.FractionBelow(time.Second); math.Abs(got-0.9) > 1e-9 {
		t.Errorf("FractionBelow(1s) = %v, want 0.9", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("P50 = %v, want ~50ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 95*time.Millisecond {
		t.Errorf("P99 = %v, want >=95ms", p99)
	}
	if h.Quantile(0) == 0 {
		t.Error("Quantile(0) should return smallest observation, not 0")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.FractionBelow(time.Second) != 0 {
		t.Error("empty histogram should report zeros")
	}
	snap := h.Snapshot()
	if snap.Count != 0 {
		t.Error("empty snapshot count != 0")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 10; i++ {
		h.Observe(time.Duration(i+1) * 10 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Below100 <= 0.5 || s.Below100 > 1.0 {
		t.Errorf("Below100 = %v", s.Below100)
	}
	if s.Below1s != 1.0 {
		t.Errorf("Below1s = %v, want 1", s.Below1s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 2000; j++ {
				h.Observe(time.Duration(j) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("concurrent Count = %d, want 8000", h.Count())
	}
}

func TestHistogramReservoirOverflow(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < reservoirSize*3; i++ {
		h.Observe(time.Millisecond)
	}
	if h.Quantile(0.5) != time.Millisecond {
		t.Errorf("Quantile after overflow = %v, want 1ms", h.Quantile(0.5))
	}
	bounds, buckets := h.Buckets()
	if len(buckets) != len(bounds)+1 {
		t.Errorf("Buckets length mismatch: %d bounds, %d buckets", len(bounds), len(buckets))
	}
	var total int64
	for _, b := range buckets {
		total += b
	}
	if total != int64(reservoirSize*3) {
		t.Errorf("bucket total = %d, want %d", total, reservoirSize*3)
	}
}

func TestThroughputIncAndRate(t *testing.T) {
	tp := NewThroughput()
	for i := 0; i < 10; i++ {
		tp.Inc()
	}
	tp.Add(5)
	if tp.Count() != 15 {
		t.Errorf("Count = %d, want 15", tp.Count())
	}
	time.Sleep(2 * time.Millisecond)
	if r := tp.Rate(); r <= 0 {
		t.Errorf("Rate = %v, want > 0", r)
	}
	prev := tp.Reset()
	if prev <= 0 {
		t.Errorf("Reset returned %v, want previous rate > 0", prev)
	}
	if tp.Count() != 0 {
		t.Errorf("Count after Reset = %d", tp.Count())
	}
}

func TestFractionBelowBucketAndReservoirPaths(t *testing.T) {
	// Default bounds include 100ms: the exact bucket path.
	h := NewHistogram(nil)
	for i := 0; i < 80; i++ {
		h.Observe(10 * time.Millisecond)
	}
	for i := 0; i < 20; i++ {
		h.Observe(2 * time.Second)
	}
	if got := h.FractionBelow(100 * time.Millisecond); got < 0.79 || got > 0.81 {
		t.Errorf("FractionBelow(100ms) = %v, want ~0.8", got)
	}
	// A bound not in the bucket list: the reservoir path.
	if got := h.FractionBelow(137 * time.Millisecond); got < 0.79 || got > 0.81 {
		t.Errorf("FractionBelow(137ms) = %v, want ~0.8", got)
	}
	// Empty histogram: both paths return 0.
	empty := NewHistogram(nil)
	if got := empty.FractionBelow(time.Second); got != 0 {
		t.Errorf("empty FractionBelow = %v", got)
	}
	if s := h.String(); !strings.Contains(s, "n=100") {
		t.Errorf("String = %q", s)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatalf("fresh EWMA: value %v count %d", e.Value(), e.Count())
	}
	if got := e.Observe(10); got != 10 {
		t.Fatalf("first sample seeds the average: got %v", got)
	}
	if got := e.Observe(20); got != 15 {
		t.Fatalf("0.5-EWMA of 10 then 20 = %v, want 15", got)
	}
	if got := e.Observe(15); got != 15 {
		t.Fatalf("steady sample keeps the average: got %v", got)
	}
	if e.Count() != 3 {
		t.Fatalf("Count = %d, want 3", e.Count())
	}
	// Invalid alphas clamp rather than explode.
	for _, a := range []float64{0, -1, 1.5} {
		c := NewEWMA(a)
		c.Observe(4)
		c.Observe(8)
		if v := c.Value(); v <= 4 || v >= 8 {
			t.Fatalf("clamped alpha %v: average %v not between samples", a, v)
		}
	}
}
