package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEWMAConcurrentObservers(t *testing.T) {
	// Observe is now called from more than one sampler (adjustTick and
	// pollRemoteLoads both feed loads); run it hot from several
	// goroutines under -race and check every sample was folded in.
	const goroutines, perG = 8, 5000
	e := NewEWMA(0.3)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(base float64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				e.Observe(base + float64(j%10))
			}
		}(float64(i))
	}
	wg.Wait()
	if got := e.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d (lost samples under contention)", got, goroutines*perG)
	}
	// All samples are in [0, 16], so the average must be too.
	if v := e.Value(); v < 0 || v > 16 {
		t.Fatalf("Value = %v, outside the sample range", v)
	}
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ps2_ops_total", "ops", L("kind", "object"))
	c.Add(42)
	if again := r.Counter("ps2_ops_total", "ops", L("kind", "object")); again != c {
		t.Fatal("re-registering the same name+labels should return the same counter")
	}
	r.Counter("ps2_ops_total", "ops", L("kind", "insert")).Add(7)
	r.GaugeFunc("ps2_balance_factor", "sigma", func() float64 { return 1.25 })
	r.CounterFunc("ps2_checks_total", "checks", func() int64 { return 9 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ps2_ops_total counter",
		`ps2_ops_total{kind="object"} 42`,
		`ps2_ops_total{kind="insert"} 7`,
		"# TYPE ps2_balance_factor gauge",
		"ps2_balance_factor 1.25",
		"ps2_checks_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Deterministic ordering: families alphabetical.
	if strings.Index(out, "ps2_balance_factor") > strings.Index(out, "ps2_ops_total") {
		t.Error("families not in alphabetical order")
	}
}

func TestRegistryHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ps2_stage_seconds", "per-stage latency", nil, L("stage", "worker"))
	h.Observe(500 * time.Microsecond) // le=0.001
	h.Observe(2 * time.Millisecond)   // le=0.005
	h.Observe(10 * time.Second)       // +Inf

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE ps2_stage_seconds histogram",
		`ps2_stage_seconds_bucket{stage="worker",le="0.001"} 1`,
		`ps2_stage_seconds_bucket{stage="worker",le="0.005"} 2`, // cumulative
		`ps2_stage_seconds_bucket{stage="worker",le="+Inf"} 3`,
		`ps2_stage_seconds_count{stage="worker"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(3)
	r.Histogram("lat_seconds", "", nil).Observe(time.Millisecond)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Series []JSONSeries `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v", err)
	}
	if len(doc.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(doc.Series))
	}
	if doc.Series[0].Name != "a_total" || doc.Series[0].Value == nil || *doc.Series[0].Value != 3 {
		t.Errorf("counter series wrong: %+v", doc.Series[0])
	}
	hs := doc.Series[1]
	if hs.Type != KindHistogram || hs.Count == nil || *hs.Count != 1 || len(hs.Buckets) == 0 {
		t.Errorf("histogram series wrong: %+v", hs)
	}
	if hs.Buckets[len(hs.Buckets)-1].Le != "+Inf" {
		t.Errorf("last bucket = %+v, want +Inf", hs.Buckets[len(hs.Buckets)-1])
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "", L("path", `a"b\c`+"\n"))
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `path="a\"b\\c\n"`) {
		t.Errorf("label not escaped: %s", buf.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryHistogramFunc(t *testing.T) {
	r := NewRegistry()
	var cur *Histogram
	r.HistogramFunc("swap_seconds", "", func() *Histogram { return cur })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err) // nil histogram must render as empty, not crash
	}
	cur = NewHistogram(nil)
	cur.Observe(time.Millisecond)
	buf.Reset()
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "swap_seconds_count 1") {
		t.Errorf("swapped histogram not read at scrape time:\n%s", buf.String())
	}
}

func TestRegistryConcurrentRegisterAndScrape(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c_total", "", L("g", string(rune('a'+i)))).Inc()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	var total int64
	for _, s := range r.Gather() {
		total += int64(*s.Value)
	}
	if total != 800 {
		t.Fatalf("total = %d, want 800", total)
	}
}
