package workload

import (
	"fmt"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// JSONOp is the JSON Lines representation of one stream operation, shared
// by cmd/psgen (writer) and cmd/psrun (reader) so workloads can be stored
// and replayed.
type JSONOp struct {
	// Op is "object", "insert" or "delete".
	Op string `json:"op"`
	// ID is the object or query id.
	ID uint64 `json:"id"`
	// Terms and Loc describe objects. Loc is [lon, lat].
	Terms []string  `json:"terms,omitempty"`
	Loc   []float64 `json:"loc,omitempty"`
	// Expr and Region describe queries. Region is
	// [minLon, minLat, maxLon, maxLat].
	Expr       string    `json:"expr,omitempty"`
	Region     []float64 `json:"region,omitempty"`
	Subscriber uint64    `json:"sub,omitempty"`
	// K and WindowMS mark sliding-window top-k subscriptions (both zero
	// for boolean queries).
	K        int   `json:"k,omitempty"`
	WindowMS int64 `json:"window_ms,omitempty"`
}

// EncodeOp converts a stream operation to its wire form.
func EncodeOp(op model.Op) JSONOp {
	switch op.Kind {
	case model.OpObject:
		return JSONOp{
			Op: "object", ID: op.Obj.ID, Terms: op.Obj.Terms,
			Loc: []float64{op.Obj.Loc.X, op.Obj.Loc.Y},
		}
	case model.OpInsert, model.OpDelete:
		kind := "insert"
		if op.Kind == model.OpDelete {
			kind = "delete"
		}
		q := op.Query
		// Wire resolution is 1ms; round up so no fraction is lost and a
		// sub-millisecond window never demotes to boolean on replay.
		wms := int64((q.Window + time.Millisecond - 1) / time.Millisecond)
		return JSONOp{
			Op: kind, ID: q.ID, Expr: q.Expr.String(),
			Region:     []float64{q.Region.Min.X, q.Region.Min.Y, q.Region.Max.X, q.Region.Max.Y},
			Subscriber: q.Subscriber,
			K:          q.TopK,
			WindowMS:   wms,
		}
	default:
		return JSONOp{}
	}
}

// DecodeOp converts a wire operation back to its internal form.
func DecodeOp(j JSONOp) (model.Op, error) {
	switch j.Op {
	case "object":
		if len(j.Loc) != 2 {
			return model.Op{}, fmt.Errorf("workload: object %d: loc must be [lon, lat]", j.ID)
		}
		return model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: j.ID, Terms: j.Terms, Loc: geo.Point{X: j.Loc[0], Y: j.Loc[1]},
		}}, nil
	case "insert", "delete":
		expr, err := model.ParseExpr(j.Expr)
		if err != nil {
			return model.Op{}, fmt.Errorf("workload: query %d: %w", j.ID, err)
		}
		if len(j.Region) != 4 {
			return model.Op{}, fmt.Errorf("workload: query %d: region must be [minLon, minLat, maxLon, maxLat]", j.ID)
		}
		kind := model.OpInsert
		if j.Op == "delete" {
			kind = model.OpDelete
		}
		return model.Op{Kind: kind, Query: &model.Query{
			ID: j.ID, Expr: expr,
			Region:     geo.NewRect(j.Region[0], j.Region[1], j.Region[2], j.Region[3]),
			Subscriber: j.Subscriber,
			TopK:       j.K,
			Window:     time.Duration(j.WindowMS) * time.Millisecond,
		}}, nil
	default:
		return model.Op{}, fmt.Errorf("workload: unknown op %q", j.Op)
	}
}
