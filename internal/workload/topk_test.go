package workload

import (
	"testing"
	"time"

	"ps2stream/internal/model"
)

// The configured fraction of generated subscriptions must be top-k, with
// the configured k and window, and round-trip through the JSONL wire form.
func TestStreamTopKMix(t *testing.T) {
	st := NewStream(TweetsUS(), Q1, StreamConfig{
		Mu: 500, Seed: 9,
		TopKFraction: 0.3,
		TopKK:        7,
		TopKWindow:   45 * time.Second,
	})
	inserts, topk := 0, 0
	for _, op := range st.Prewarm(500) {
		if op.Kind != model.OpInsert {
			t.Fatalf("prewarm emitted %v", op.Kind)
		}
		inserts++
		if op.Query.IsTopK() {
			topk++
			if op.Query.TopK != 7 || op.Query.Window != 45*time.Second {
				t.Fatalf("top-k query has k=%d window=%v", op.Query.TopK, op.Query.Window)
			}
			// Wire round-trip preserves the top-k marker.
			back, err := DecodeOp(EncodeOp(op))
			if err != nil {
				t.Fatal(err)
			}
			if back.Query.TopK != 7 || back.Query.Window != 45*time.Second {
				t.Fatalf("round-trip lost top-k fields: %+v", back.Query)
			}
		}
	}
	if frac := float64(topk) / float64(inserts); frac < 0.2 || frac > 0.4 {
		t.Fatalf("top-k fraction %.2f, want ≈0.3", frac)
	}
	// Zero fraction stays purely boolean.
	st2 := NewStream(TweetsUS(), Q1, StreamConfig{Mu: 100, Seed: 9})
	for _, op := range st2.Prewarm(100) {
		if op.Query.IsTopK() {
			t.Fatal("boolean workload produced a top-k subscription")
		}
	}
}
