package workload

import (
	"fmt"
	"math"
	"testing"

	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(TweetsUS(), 7)
	g2 := NewGenerator(TweetsUS(), 7)
	for i := 0; i < 100; i++ {
		a, b := g1.Object(), g2.Object()
		if a.ID != b.ID || a.Loc != b.Loc || len(a.Terms) != len(b.Terms) {
			t.Fatalf("objects diverge at %d: %+v vs %+v", i, a, b)
		}
		for j := range a.Terms {
			if a.Terms[j] != b.Terms[j] {
				t.Fatalf("terms diverge: %v vs %v", a.Terms, b.Terms)
			}
		}
	}
}

func TestObjectsInsideBounds(t *testing.T) {
	for _, spec := range []DatasetSpec{TweetsUS(), TweetsUK()} {
		g := NewGenerator(spec, 1)
		for i := 0; i < 2000; i++ {
			o := g.Object()
			if !spec.Bounds.Contains(o.Loc) {
				t.Fatalf("%s: object at %v outside %v", spec.Name, o.Loc, spec.Bounds)
			}
			if len(o.Terms) < spec.TermsMin {
				t.Fatalf("%s: object has %d terms, min %d", spec.Name, len(o.Terms), spec.TermsMin)
			}
			seen := map[string]bool{}
			for _, term := range o.Terms {
				if seen[term] {
					t.Fatalf("duplicate term %q in object", term)
				}
				seen[term] = true
			}
		}
	}
}

func TestTermDistributionIsSkewed(t *testing.T) {
	g := NewGenerator(TweetsUS(), 2)
	stats := textutil.NewStats()
	for i := 0; i < 5000; i++ {
		stats.Add(g.Object().Terms...)
	}
	top := stats.TopTerms(1)
	if stats.Count(top[0]) < 20*stats.Total()/stats.DistinctTerms() {
		t.Errorf("top term count %d not skewed vs mean %d",
			stats.Count(top[0]), stats.Total()/stats.DistinctTerms())
	}
}

func TestSpatialClustering(t *testing.T) {
	spec := TweetsUS()
	g := NewGenerator(spec, 3)
	// Count objects within 2σ of any hotspot center.
	in := 0
	const n = 3000
	for i := 0; i < n; i++ {
		o := g.Object()
		for _, c := range g.centers {
			dx, dy := o.Loc.X-c.X, o.Loc.Y-c.Y
			if math.Hypot(dx, dy) < 2*spec.HotspotSigmaDeg {
				in++
				break
			}
		}
	}
	if float64(in)/n < spec.HotspotFraction*0.6 {
		t.Errorf("only %d/%d objects near hotspots, expected clustering", in, n)
	}
}

func TestQ1Queries(t *testing.T) {
	spec := TweetsUS()
	qg := NewQueryGenerator(spec, Q1, 4)
	maxSideDeg := 51.0 / 111 * 1.7 // 50km with longitude slack
	for i := 0; i < 1000; i++ {
		q := qg.Query()
		if q.Expr.Empty() {
			t.Fatal("empty expression")
		}
		if nt := len(q.Expr.Terms()); nt < 1 || nt > 3 {
			t.Fatalf("Q1 query has %d keywords", nt)
		}
		if q.Region.Height() > maxSideDeg {
			t.Fatalf("Q1 region height %v deg too large", q.Region.Height())
		}
		if !spec.Bounds.ContainsRect(q.Region) {
			t.Fatalf("region %v escapes bounds", q.Region)
		}
	}
}

func TestQ2HasRareKeyword(t *testing.T) {
	spec := TweetsUS()
	qg := NewQueryGenerator(spec, Q2, 5)
	topCut := spec.VocabSize / 100
	for i := 0; i < 1000; i++ {
		q := qg.Query()
		hasRare := false
		for _, term := range q.Expr.Terms() {
			var rank int
			if _, err := fmtSscanf(term, &rank); err != nil {
				t.Fatalf("unparseable term %q", term)
			}
			if rank >= topCut {
				hasRare = true
			}
		}
		if !hasRare {
			t.Fatalf("Q2 query %v lacks a rare keyword", q.Expr)
		}
	}
}

// fmtSscanf extracts the numeric rank suffix of a vocab term (the digits
// after the 2-letter dataset prefix).
func fmtSscanf(term string, rank *int) (int, error) {
	n := 0
	for i := 2; i < len(term); i++ {
		if term[i] < '0' || term[i] > '9' {
			return 0, fmt.Errorf("bad rank in %q", term)
		}
		n = n*10 + int(term[i]-'0')
	}
	*rank = n
	return 1, nil
}

func TestQ3MixesFamilies(t *testing.T) {
	spec := TweetsUS()
	qg := NewQueryGenerator(spec, Q3, 6)
	q1ish, q2ish := 0, 0
	maxQ1Side := 51.0 / 111 * 1.3
	for i := 0; i < 2000; i++ {
		q := qg.Query()
		if q.Region.Height() > maxQ1Side {
			q2ish++
		} else {
			q1ish++
		}
	}
	if q1ish == 0 || q2ish == 0 {
		t.Errorf("Q3 mix degenerate: %d small, %d large regions", q1ish, q2ish)
	}
}

func TestFlipRegionsChangesMix(t *testing.T) {
	spec := TweetsUS()
	qg := NewQueryGenerator(spec, Q3, 7)
	before := append([]QueryKind(nil), qg.regionKind...)
	qg.FlipRegions(0.1)
	changed := 0
	for i := range before {
		if before[i] != qg.regionKind[i] {
			changed++
		}
	}
	if changed == 0 {
		t.Error("FlipRegions changed nothing")
	}
	if changed > 15 {
		t.Errorf("FlipRegions(0.1) changed %d/100 regions", changed)
	}
	// No-op for Q1.
	qg1 := NewQueryGenerator(spec, Q1, 8)
	qg1.FlipRegions(0.5) // must not panic
}

func TestStreamRatioAndLifetimes(t *testing.T) {
	s := NewStream(TweetsUS(), Q1, StreamConfig{Mu: 200, Seed: 9})
	warm := s.Prewarm(200)
	for _, op := range warm {
		if op.Kind != model.OpInsert {
			t.Fatal("Prewarm must be all insertions")
		}
	}
	var objs, ins, dels int
	for i := 0; i < 12000; i++ {
		switch s.Next().Kind {
		case model.OpObject:
			objs++
		case model.OpInsert:
			ins++
		case model.OpDelete:
			dels++
		}
	}
	ratio := float64(objs) / float64(ins+dels)
	if ratio < 4 || ratio > 6 {
		t.Errorf("object:queryop ratio = %v, want ~5", ratio)
	}
	if ins == 0 || dels == 0 {
		t.Fatalf("ins=%d dels=%d", ins, dels)
	}
	diff := math.Abs(float64(ins-dels)) / float64(ins)
	if diff > 0.2 {
		t.Errorf("insert/delete imbalance: %d vs %d", ins, dels)
	}
}

func TestStreamStandingPopulationStable(t *testing.T) {
	mu := 300
	s := NewStream(TweetsUS(), Q1, StreamConfig{Mu: mu, Seed: 10})
	s.Prewarm(mu)
	// Run long enough for lifetimes to engage.
	for i := 0; i < 40000; i++ {
		s.Next()
	}
	pop := s.PendingQueries()
	if pop < mu/2 || pop > mu*3 {
		t.Errorf("standing population %d drifted from µ=%d", pop, mu)
	}
}

func TestStreamDeleteMatchesInsertedQuery(t *testing.T) {
	s := NewStream(TweetsUS(), Q1, StreamConfig{Mu: 5, Seed: 11})
	inserted := map[uint64]bool{}
	for i := 0; i < 5000; i++ {
		op := s.Next()
		switch op.Kind {
		case model.OpInsert:
			inserted[op.Query.ID] = true
		case model.OpDelete:
			if !inserted[op.Query.ID] {
				t.Fatalf("deleted query %d never inserted", op.Query.ID)
			}
			delete(inserted, op.Query.ID)
		}
	}
}

func TestSampleShapes(t *testing.T) {
	s := Sample(TweetsUK(), Q1, 500, 100, 12)
	if len(s.Objects) != 500 || len(s.Queries) != 100 {
		t.Fatalf("sample sizes %d/%d", len(s.Objects), len(s.Queries))
	}
	if s.Stats.Total() == 0 {
		t.Error("sample stats empty")
	}
	if s.Bounds != TweetsUK().Bounds {
		t.Error("sample bounds mismatch")
	}
}

func TestDatasetsHaveMatches(t *testing.T) {
	// The synthetic workload must actually produce matching pairs, or
	// every downstream experiment is vacuous. Q2 is excluded: its
	// keywords are deliberately rare (outside the top 1% of a 100k+
	// vocabulary), so matches at this sample size are not expected —
	// that sparsity is what drives the Figure 6(b) result.
	for _, spec := range []DatasetSpec{TweetsUS(), TweetsUK()} {
		for _, kind := range []QueryKind{Q1, Q3} {
			s := Sample(spec, kind, 2000, 400, 13)
			matches := 0
			for _, o := range s.Objects {
				for _, q := range s.Queries {
					if q.Matches(o) {
						matches++
					}
				}
			}
			if matches == 0 {
				t.Errorf("%s/%v: no matching pairs in 2000x400 sample", spec.Name, kind)
			}
		}
	}
}

func TestVocabPrefixesDiffer(t *testing.T) {
	us := NewGenerator(TweetsUS(), 1)
	uk := NewGenerator(TweetsUK(), 1)
	if us.Vocab()[0] == uk.Vocab()[0] {
		t.Error("US and UK vocabularies collide")
	}
}

func TestQueryKindString(t *testing.T) {
	if Q1.String() != "Q1" || Q2.String() != "Q2" || Q3.String() != "Q3" {
		t.Error("QueryKind.String mismatch")
	}
}
