// Package workload synthesises the evaluation workloads of §VI-A. The
// paper uses 280M geo-tagged tweets in America (TWEETS-US) and 58M in
// Britain (TWEETS-UK) plus synthetic STS queries; this package generates
// statistically equivalent corpora — Zipf-distributed terms, hotspot-
// clustered locations with per-region topical skew — and the three query
// families:
//
//	Q1: 1–3 keywords following the tweet term distribution (power law),
//	    square regions with 1–50 km sides centred on tweet locations.
//	Q2: regions up to 100 km; at least one keyword outside the top 1%
//	    most frequent terms.
//	Q3: the space is divided into 100 equal regions, each assigned Q1 or
//	    Q2 behaviour (the mixed-preference workload of §VI-C).
//
// All generators are deterministic given their seeds.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"ps2stream/internal/geo"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/textutil"
)

// DatasetSpec describes a synthetic spatio-textual corpus.
type DatasetSpec struct {
	// Name labels the dataset in reports ("TWEETS-US", "TWEETS-UK").
	Name string
	// Bounds is the monitored space S.
	Bounds geo.Rect
	// VocabSize is the number of distinct terms; term w%05d has Zipf
	// rank equal to its index.
	VocabSize int
	// ZipfExponent shapes the term power law (tweets ≈ 1.0).
	ZipfExponent float64
	// Hotspots is the number of city-like clusters.
	Hotspots int
	// HotspotFraction is the fraction of objects inside clusters.
	HotspotFraction float64
	// HotspotSigmaDeg is the cluster spread in degrees.
	HotspotSigmaDeg float64
	// TermsMin/TermsMax bound the distinct terms per object.
	TermsMin, TermsMax int
	// TopicSkew is the probability that a hotspot object draws terms
	// from its region's shifted topic distribution instead of the
	// global one — the spatial/textual correlation hybrid partitioning
	// exploits.
	TopicSkew float64
	// Seed fixes hotspot placement and all derived randomness.
	Seed int64
}

// TweetsUS approximates the TWEETS-US corpus shape (continental USA).
func TweetsUS() DatasetSpec {
	return DatasetSpec{
		Name:            "TWEETS-US",
		Bounds:          geo.NewRect(-125, 24, -66, 49),
		VocabSize:       200000,
		ZipfExponent:    1.0,
		Hotspots:        20,
		HotspotFraction: 0.7,
		HotspotSigmaDeg: 0.4,
		TermsMin:        3,
		TermsMax:        8,
		TopicSkew:       0.5,
		Seed:            1001,
	}
}

// TweetsUK approximates the TWEETS-UK corpus shape (Great Britain —
// smaller space, denser clustering, smaller vocabulary).
func TweetsUK() DatasetSpec {
	return DatasetSpec{
		Name:            "TWEETS-UK",
		Bounds:          geo.NewRect(-8, 50, 2, 59),
		VocabSize:       100000,
		ZipfExponent:    1.05,
		Hotspots:        10,
		HotspotFraction: 0.8,
		HotspotSigmaDeg: 0.15,
		TermsMin:        3,
		TermsMax:        8,
		TopicSkew:       0.5,
		Seed:            2002,
	}
}

// Generator produces objects from a DatasetSpec.
type Generator struct {
	spec    DatasetSpec
	vocab   []string
	zipf    *textutil.Zipf
	centers []geo.Point
	shifts  []int
	rng     *rand.Rand
	nextID  uint64

	// focus concentrates traffic on one point (the skewed-hotspot
	// workload of the adaptive-adjustment experiments): with probability
	// focusBias a location is drawn from a Gaussian around focus instead
	// of the spec's background mixture.
	focus      geo.Point
	focusSigma float64
	focusBias  float64
}

// NewGenerator returns a deterministic object generator. seed offsets the
// spec seed so multiple independent generators can share a spec.
func NewGenerator(spec DatasetSpec, seed int64) *Generator {
	normalize(&spec)
	g := &Generator{
		spec:  spec,
		vocab: make([]string, spec.VocabSize),
		zipf:  textutil.NewZipf(spec.VocabSize, spec.ZipfExponent),
		rng:   rand.New(rand.NewSource(spec.Seed ^ seed)),
	}
	for i := range g.vocab {
		g.vocab[i] = fmt.Sprintf("%s%05d", termPrefix(spec.Name), i)
	}
	// Hotspot placement depends only on the spec seed so every
	// generator for a dataset agrees on geography.
	hrng := rand.New(rand.NewSource(spec.Seed))
	g.centers = make([]geo.Point, spec.Hotspots)
	g.shifts = make([]int, spec.Hotspots)
	for i := range g.centers {
		g.centers[i] = geo.Point{
			X: spec.Bounds.Min.X + hrng.Float64()*spec.Bounds.Width(),
			Y: spec.Bounds.Min.Y + hrng.Float64()*spec.Bounds.Height(),
		}
		g.shifts[i] = hrng.Intn(spec.VocabSize)
	}
	return g
}

// termPrefix derives the lowercase vocabulary prefix ("us"/"uk") from the
// dataset name. Terms are lowercase like tokenised text, so expressions
// survive ParseExpr round-trips.
func termPrefix(name string) string {
	if name == "" {
		return "w"
	}
	return strings.ToLower(name[len(name)-2:])
}

func normalize(spec *DatasetSpec) {
	if spec.VocabSize <= 0 {
		spec.VocabSize = 10000
	}
	if spec.ZipfExponent <= 0 {
		spec.ZipfExponent = 1.0
	}
	if spec.Hotspots <= 0 {
		spec.Hotspots = 10
	}
	if spec.TermsMin <= 0 {
		spec.TermsMin = 3
	}
	if spec.TermsMax < spec.TermsMin {
		spec.TermsMax = spec.TermsMin + 5
	}
	if spec.HotspotSigmaDeg <= 0 {
		spec.HotspotSigmaDeg = 0.3
	}
	if !spec.Bounds.Valid() || spec.Bounds.Area() == 0 {
		spec.Bounds = geo.NewRect(-125, 24, -66, 49)
	}
}

// Spec returns the generator's dataset spec.
func (g *Generator) Spec() DatasetSpec { return g.spec }

// Vocab exposes the term table (rank order).
func (g *Generator) Vocab() []string { return g.vocab }

// NumHotspots returns how many hotspot clusters the dataset has.
func (g *Generator) NumHotspots() int { return len(g.centers) }

// HotspotCenter returns the centre of hotspot i (deterministic per spec
// seed, shared by every generator over the same spec).
func (g *Generator) HotspotCenter(i int) geo.Point { return g.centers[i] }

// Focus concentrates a fraction of future locations on one point: with
// probability bias in (0, 1] the location is drawn from a Gaussian with
// the given sigma (degrees; <= 0 uses the spec's hotspot sigma) around p,
// otherwise from the spec's normal background mixture. bias <= 0 clears
// the focus. Focus models a flash-crowd / hotspot-shift workload — the
// traffic skew the adaptive adjustment controller exists to absorb.
func (g *Generator) Focus(p geo.Point, sigmaDeg, bias float64) {
	if bias <= 0 {
		g.focusBias = 0
		return
	}
	if bias > 1 {
		bias = 1
	}
	if sigmaDeg <= 0 {
		sigmaDeg = g.spec.HotspotSigmaDeg
	}
	g.focus, g.focusSigma, g.focusBias = p, sigmaDeg, bias
}

// FocusHotspot is Focus aimed at hotspot cluster i (mod NumHotspots).
func (g *Generator) FocusHotspot(i int, bias float64) {
	g.Focus(g.centers[((i%len(g.centers))+len(g.centers))%len(g.centers)], 0, bias)
}

// Location draws a location: focus-concentrated with probability
// focusBias when a Focus is set, hotspot-clustered with probability
// HotspotFraction, uniform otherwise. The returned hotspot index is -1
// for background and focused locations.
func (g *Generator) Location() (geo.Point, int) {
	if g.focusBias > 0 && g.rng.Float64() < g.focusBias {
		p := geo.Point{
			X: g.focus.X + g.rng.NormFloat64()*g.focusSigma,
			Y: g.focus.Y + g.rng.NormFloat64()*g.focusSigma,
		}
		return g.clamp(p), -1
	}
	if g.rng.Float64() < g.spec.HotspotFraction {
		h := g.rng.Intn(len(g.centers))
		c := g.centers[h]
		p := geo.Point{
			X: c.X + g.rng.NormFloat64()*g.spec.HotspotSigmaDeg,
			Y: c.Y + g.rng.NormFloat64()*g.spec.HotspotSigmaDeg,
		}
		return g.clamp(p), h
	}
	p := geo.Point{
		X: g.spec.Bounds.Min.X + g.rng.Float64()*g.spec.Bounds.Width(),
		Y: g.spec.Bounds.Min.Y + g.rng.Float64()*g.spec.Bounds.Height(),
	}
	return p, -1
}

func (g *Generator) clamp(p geo.Point) geo.Point {
	b := g.spec.Bounds
	if p.X < b.Min.X {
		p.X = b.Min.X
	}
	if p.X > b.Max.X {
		p.X = b.Max.X
	}
	if p.Y < b.Min.Y {
		p.Y = b.Min.Y
	}
	if p.Y > b.Max.Y {
		p.Y = b.Max.Y
	}
	return p
}

// term draws a term rank, applying the hotspot topic shift when inside a
// cluster.
func (g *Generator) term(hotspot int) string {
	rank := g.zipf.Rank(g.rng.Float64())
	if hotspot >= 0 && g.rng.Float64() < g.spec.TopicSkew {
		rank = (rank + g.shifts[hotspot]) % g.spec.VocabSize
	}
	return g.vocab[rank]
}

// Object generates the next object.
func (g *Generator) Object() *model.Object {
	loc, h := g.Location()
	n := g.spec.TermsMin
	if g.spec.TermsMax > g.spec.TermsMin {
		n += g.rng.Intn(g.spec.TermsMax - g.spec.TermsMin + 1)
	}
	terms := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for tries := 0; len(terms) < n && tries < 4*n; tries++ {
		t := g.term(h)
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		terms = append(terms, t)
	}
	g.nextID++
	return &model.Object{ID: g.nextID, Terms: terms, Loc: loc}
}

// QueryKind selects a query family.
type QueryKind int

// The three query families of §VI.
const (
	Q1 QueryKind = iota + 1
	Q2
	Q3
)

// String implements fmt.Stringer.
func (k QueryKind) String() string {
	switch k {
	case Q1:
		return "Q1"
	case Q2:
		return "Q2"
	case Q3:
		return "Q3"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// QueryGenerator produces STS queries of one family over a dataset.
type QueryGenerator struct {
	kind QueryKind
	gen  *Generator
	rng  *rand.Rand
	// regionKind assigns Q1/Q2 behaviour to each of the 10×10 regions
	// (Q3 only).
	regionKind []QueryKind
	nextID     uint64
}

// Q3Regions is the per-axis region count for the Q3 workload (10×10 = the
// paper's "100 regions of equal size").
const Q3Regions = 10

// NewQueryGenerator builds a generator for the family over the dataset.
func NewQueryGenerator(spec DatasetSpec, kind QueryKind, seed int64) *QueryGenerator {
	qg := &QueryGenerator{
		kind: kind,
		gen:  NewGenerator(spec, seed^0x5157),
		rng:  rand.New(rand.NewSource(spec.Seed ^ seed ^ 0x9157)),
	}
	if kind == Q3 {
		qg.regionKind = make([]QueryKind, Q3Regions*Q3Regions)
		for i := range qg.regionKind {
			if qg.rng.Intn(2) == 0 {
				qg.regionKind[i] = Q1
			} else {
				qg.regionKind[i] = Q2
			}
		}
	}
	return qg
}

// regionOf maps a point to its Q3 region index.
func (qg *QueryGenerator) regionOf(p geo.Point) int {
	b := qg.gen.spec.Bounds
	x := int((p.X - b.Min.X) / b.Width() * Q3Regions)
	y := int((p.Y - b.Min.Y) / b.Height() * Q3Regions)
	if x < 0 {
		x = 0
	}
	if x >= Q3Regions {
		x = Q3Regions - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= Q3Regions {
		y = Q3Regions - 1
	}
	return y*Q3Regions + x
}

// FlipRegions switches the Q1/Q2 assignment of the given fraction of Q3
// regions — the workload drift of the Figure 16 experiment ("every
// interval ... the types of queries in 10% of the regions switch between
// STS-US-Q1 and STS-US-Q2"). No-op for Q1/Q2 generators.
func (qg *QueryGenerator) FlipRegions(fraction float64) {
	if qg.regionKind == nil {
		return
	}
	n := int(fraction * float64(len(qg.regionKind)))
	for i := 0; i < n; i++ {
		r := qg.rng.Intn(len(qg.regionKind))
		if qg.regionKind[r] == Q1 {
			qg.regionKind[r] = Q2
		} else {
			qg.regionKind[r] = Q1
		}
	}
}

// Query generates the next STS query.
func (qg *QueryGenerator) Query() *model.Query {
	center, _ := qg.gen.Location() // "the center is randomly selected from the locations of tweets"
	kind := qg.kind
	if kind == Q3 {
		kind = qg.regionKind[qg.regionOf(center)]
	}
	var sideKm float64
	if kind == Q1 {
		sideKm = 1 + qg.rng.Float64()*49
	} else {
		sideKm = 1 + qg.rng.Float64()*99
	}
	region := geo.RectAround(center, sideKm, sideKm).Clip(qg.gen.spec.Bounds)

	nKw := 1 + qg.rng.Intn(3)
	terms := make([]string, 0, nKw)
	seen := map[string]struct{}{}
	add := func(t string) {
		if _, dup := seen[t]; !dup {
			seen[t] = struct{}{}
			terms = append(terms, t)
		}
	}
	if kind == Q2 {
		// Q2 keywords avoid the top 1% most frequent terms. The paper
		// requires "at least one keyword that is not in the top 1%";
		// its Figure 6(b) analysis ("the keywords in STS-US-Q2 ... are
		// less frequent, which improves the performance of
		// text-partitioning") only follows when the remaining keywords
		// are infrequent too — an OR over a head term would force
		// every object carrying it to be duplicated. Q2 subscriptions
		// therefore model niche topics: every keyword is drawn
		// uniformly from outside the top 1%.
		topCut := qg.gen.spec.VocabSize / 100
		for tries := 0; len(terms) < nKw && tries < 16*nKw; tries++ {
			add(qg.gen.vocab[topCut+qg.rng.Intn(qg.gen.spec.VocabSize-topCut)])
		}
	}
	for tries := 0; len(terms) < nKw && tries < 8*nKw; tries++ {
		add(qg.gen.term(-1))
	}
	var expr model.Expr
	if qg.rng.Intn(2) == 0 {
		expr = model.And(terms...)
	} else {
		expr = model.Or(terms...)
	}
	qg.nextID++
	return &model.Query{
		ID:         qg.nextID,
		Expr:       expr,
		Region:     region,
		Subscriber: qg.nextID % 1000,
	}
}

// Sample draws an independent workload sample for partition builders.
func Sample(spec DatasetSpec, kind QueryKind, nObj, nQry int, seed int64) *partition.Sample {
	og := NewGenerator(spec, seed^0xABCD)
	qg := NewQueryGenerator(spec, kind, seed^0xDCBA)
	objs := make([]*model.Object, nObj)
	for i := range objs {
		objs[i] = og.Object()
	}
	qrys := make([]*model.Query, nQry)
	for i := range qrys {
		qrys[i] = qg.Query()
	}
	return partition.NewSample(objs, qrys, spec.Bounds, load.DefaultCosts)
}

// SampleFocused draws a sample concentrated on hotspot cluster `hotspot`
// with the given bias and Gaussian sigma in degrees (<= 0 uses the
// dataset's hotspot sigma). Both objects and query centres focus — the
// sample is "yesterday's traffic", where subscribers cluster around the
// same event the publishers do. The adaptive adjustment experiments open
// the system on such a sample and then shift the live object traffic to a
// different hotspot.
func SampleFocused(spec DatasetSpec, kind QueryKind, nObj, nQry int, seed int64,
	hotspot int, sigmaDeg, bias float64) *partition.Sample {
	og := NewGenerator(spec, seed^0xABCD)
	center := og.centers[((hotspot%len(og.centers))+len(og.centers))%len(og.centers)]
	og.Focus(center, sigmaDeg, bias)
	qg := NewQueryGenerator(spec, kind, seed^0xDCBA)
	qg.gen.Focus(center, sigmaDeg, bias)
	objs := make([]*model.Object, nObj)
	for i := range objs {
		objs[i] = og.Object()
	}
	qrys := make([]*model.Query, nQry)
	for i := range qrys {
		qrys[i] = qg.Query()
	}
	return partition.NewSample(objs, qrys, spec.Bounds, load.DefaultCosts)
}
