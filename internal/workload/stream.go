package workload

import (
	"container/heap"
	"math/rand"
	"time"

	"ps2stream/internal/model"
)

// StreamConfig shapes the arrival process of §VI-A: "The ratio of
// processing a spatio-textual tweet to inserting or deleting an STS query
// is approximately 5. The arrival speeds of requests for inserting an STS
// query and deleting an STS query are equivalent. ... We use a parameter µ
// to control the number of STS queries ... using a Gaussian distribution
// N(µ, σ²) to determine the number of newly arrived STS queries between
// inserting an STS query and deleting it. ... σ = 0.2µ."
type StreamConfig struct {
	// Mu is µ, the target standing query count.
	Mu int
	// ObjectRatio is the tweets-per-query-op ratio (default 5).
	ObjectRatio int
	// Seed drives the op mix and lifetime draws.
	Seed int64
	// TopKFraction is the probability that an inserted query is a
	// sliding-window top-k subscription instead of a boolean one
	// (0 = the paper's pure boolean workload).
	TopKFraction float64
	// TopKK is the k of generated top-k subscriptions (default 10).
	TopKK int
	// TopKWindow is their sliding window (default 1 minute).
	TopKWindow time.Duration
	// FocusBias, when positive, concentrates that fraction of published
	// object locations on one hotspot cluster (FocusHotspot) — the
	// skewed-hotspot workload of the adaptive-adjustment experiments.
	// Queries stay unbiased. Shift the focus mid-stream with
	// Stream.FocusHotspot.
	FocusBias float64
	// FocusHotspot is the initially focused hotspot cluster index
	// (used only when FocusBias > 0).
	FocusHotspot int
	// FocusSigmaDeg is the focused traffic's Gaussian spread in degrees;
	// <= 0 uses the dataset's hotspot sigma. The adjust experiments use
	// a metro-scale spread (a few degrees) so the hot load spans many
	// grid cells — cells are the migration unit, and load concentrated
	// in a single cell cannot be spread over workers at all.
	FocusSigmaDeg float64
}

// Stream produces the interleaved operation stream consumed by PS2Stream.
type Stream struct {
	cfg     StreamConfig
	objects *Generator
	queries *QueryGenerator
	rng     *rand.Rand

	// pending schedules deletions by insertion count.
	pending  deleteHeap
	inserted uint64 // total insertions so far
	seq      uint64
	cycle    int
}

type scheduledDelete struct {
	due   uint64
	query *model.Query
}

type deleteHeap []scheduledDelete

func (h deleteHeap) Len() int            { return len(h) }
func (h deleteHeap) Less(i, j int) bool  { return h[i].due < h[j].due }
func (h deleteHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *deleteHeap) Push(x interface{}) { *h = append(*h, x.(scheduledDelete)) }
func (h *deleteHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewStream builds the op stream for a dataset and query family.
func NewStream(spec DatasetSpec, kind QueryKind, cfg StreamConfig) *Stream {
	if cfg.ObjectRatio <= 0 {
		cfg.ObjectRatio = 5
	}
	if cfg.Mu <= 0 {
		cfg.Mu = 10000
	}
	if cfg.TopKK <= 0 {
		cfg.TopKK = 10
	}
	if cfg.TopKWindow <= 0 {
		cfg.TopKWindow = time.Minute
	}
	st := &Stream{
		cfg:     cfg,
		objects: NewGenerator(spec, cfg.Seed^0x0bea),
		queries: NewQueryGenerator(spec, kind, cfg.Seed^0x0bee),
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
	}
	if cfg.FocusBias > 0 {
		st.FocusHotspot(cfg.FocusHotspot)
	}
	return st
}

// QueryGen exposes the query generator (for drift experiments).
func (s *Stream) QueryGen() *QueryGenerator { return s.queries }

// ObjectGen exposes the object generator (hotspot geography, focus).
func (s *Stream) ObjectGen() *Generator { return s.objects }

// FocusHotspot re-aims the object focus at hotspot cluster i with the
// configured FocusBias — the mid-stream hotspot shift of the
// adaptive-adjustment experiments. No-op when FocusBias is 0.
func (s *Stream) FocusHotspot(i int) {
	if s.cfg.FocusBias > 0 {
		n := s.objects.NumHotspots()
		c := s.objects.HotspotCenter(((i % n) + n) % n)
		s.objects.Focus(c, s.cfg.FocusSigmaDeg, s.cfg.FocusBias)
	}
}

// Prewarm returns n insertion ops so the system starts at its standing
// query population before measurement. The insertions are also counted
// against lifetimes, so deletions begin on schedule.
func (s *Stream) Prewarm(n int) []model.Op {
	ops := make([]model.Op, n)
	for i := range ops {
		ops[i] = s.insertOp()
	}
	return ops
}

func (s *Stream) insertOp() model.Op {
	q := s.queries.Query()
	if s.cfg.TopKFraction > 0 && s.rng.Float64() < s.cfg.TopKFraction {
		q.TopK = s.cfg.TopKK
		q.Window = s.cfg.TopKWindow
	}
	s.inserted++
	life := float64(s.cfg.Mu) + s.rng.NormFloat64()*0.2*float64(s.cfg.Mu)
	if life < 1 {
		life = 1
	}
	heap.Push(&s.pending, scheduledDelete{due: s.inserted + uint64(life), query: q})
	s.seq++
	return model.Op{Kind: model.OpInsert, Query: q, Seq: s.seq}
}

func (s *Stream) deleteOp() (model.Op, bool) {
	if len(s.pending) == 0 {
		return model.Op{}, false
	}
	sd := heap.Pop(&s.pending).(scheduledDelete)
	s.seq++
	return model.Op{Kind: model.OpDelete, Query: sd.query, Seq: s.seq}, true
}

func (s *Stream) objectOp() model.Op {
	s.seq++
	return model.Op{Kind: model.OpObject, Obj: s.objects.Object(), Seq: s.seq}
}

// Next produces the next operation. The cycle interleaves ObjectRatio
// objects, one insertion, ObjectRatio objects, one deletion — yielding the
// paper's 5:1 tweet:query-op ratio with equal insert/delete rates.
func (s *Stream) Next() model.Op {
	r := s.cfg.ObjectRatio
	pos := s.cycle
	s.cycle = (s.cycle + 1) % (2*r + 2)
	switch {
	case pos == r:
		return s.insertOp()
	case pos == 2*r+1:
		if op, ok := s.deleteOp(); ok {
			return op
		}
		return s.insertOp()
	default:
		return s.objectOp()
	}
}

// Take returns the next n ops.
func (s *Stream) Take(n int) []model.Op {
	ops := make([]model.Op, n)
	for i := range ops {
		ops[i] = s.Next()
	}
	return ops
}

// PendingQueries returns the number of live (not yet deleted) queries the
// stream believes exist.
func (s *Stream) PendingQueries() int { return len(s.pending) }
