package workload

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestJSONOpRoundTrip(t *testing.T) {
	st := NewStream(TweetsUS(), Q1, StreamConfig{Mu: 50, Seed: 61})
	ops := st.Prewarm(50)
	ops = append(ops, st.Take(500)...)
	for _, op := range ops {
		wire := EncodeOp(op)
		// Through actual JSON, as the tools do.
		raw, err := json.Marshal(wire)
		if err != nil {
			t.Fatal(err)
		}
		var back JSONOp
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeOp(back)
		if err != nil {
			t.Fatalf("DecodeOp(%+v): %v", back, err)
		}
		if got.Kind != op.Kind {
			t.Fatalf("kind %v != %v", got.Kind, op.Kind)
		}
		switch op.Kind {
		case 0: // object
			if got.Obj.ID != op.Obj.ID || got.Obj.Loc != op.Obj.Loc ||
				!reflect.DeepEqual(got.Obj.Terms, op.Obj.Terms) {
				t.Fatalf("object mismatch: %+v vs %+v", got.Obj, op.Obj)
			}
		default:
			if got.Query.ID != op.Query.ID || got.Query.Region != op.Query.Region ||
				got.Query.Expr.String() != op.Query.Expr.String() ||
				got.Query.Subscriber != op.Query.Subscriber {
				t.Fatalf("query mismatch: %+v vs %+v", got.Query, op.Query)
			}
		}
	}
}

func TestDecodeOpErrors(t *testing.T) {
	cases := []JSONOp{
		{Op: "object", ID: 1, Loc: []float64{1}},                    // bad loc
		{Op: "insert", ID: 1, Expr: "", Region: make([]float64, 4)}, // empty expr
		{Op: "insert", ID: 1, Expr: "a", Region: []float64{1, 2}},   // bad region
		{Op: "teleport", ID: 1},                                     // unknown op
	}
	for _, c := range cases {
		if _, err := DecodeOp(c); err == nil {
			t.Errorf("DecodeOp(%+v) did not error", c)
		}
	}
}
