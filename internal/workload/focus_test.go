package workload

import (
	"math"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// fracNear returns the fraction of locations within radiusDeg of p.
func fracNear(objs []*model.Object, p geo.Point, radiusDeg float64) float64 {
	var n int
	for _, o := range objs {
		if math.Hypot(o.Loc.X-p.X, o.Loc.Y-p.Y) <= radiusDeg {
			n++
		}
	}
	return float64(n) / float64(len(objs))
}

func draw(g *Generator, n int) []*model.Object {
	objs := make([]*model.Object, n)
	for i := range objs {
		objs[i] = g.Object()
	}
	return objs
}

func TestGeneratorFocusConcentratesLocations(t *testing.T) {
	spec := TweetsUS()
	g := NewGenerator(spec, 9)
	hot := g.HotspotCenter(3)
	base := fracNear(draw(g, 2000), hot, 2)

	g = NewGenerator(spec, 9)
	g.FocusHotspot(3, 0.9)
	focused := fracNear(draw(g, 2000), hot, 2)
	if focused < 0.8 {
		t.Fatalf("focus bias 0.9: only %.2f of locations within 2deg of the hotspot", focused)
	}
	if focused < base+0.3 {
		t.Fatalf("focus barely moved the distribution: background %.2f, focused %.2f", base, focused)
	}

	// Clearing the focus restores the background mixture.
	g.Focus(geo.Point{}, 0, 0)
	cleared := fracNear(draw(g, 2000), hot, 2)
	if cleared > base+0.2 {
		t.Fatalf("cleared focus still concentrated: %.2f (background %.2f)", cleared, base)
	}
}

func TestGeneratorFocusHotspotWraps(t *testing.T) {
	g := NewGenerator(TweetsUS(), 1)
	n := g.NumHotspots()
	if n == 0 {
		t.Fatal("no hotspots")
	}
	g.FocusHotspot(n+2, 0.5) // wraps to 2
	g.FocusHotspot(-1, 0.5)  // wraps to n-1
	g.FocusHotspot(0, 1.5)   // bias clamps to 1
	if got, _ := g.Location(); !g.spec.Bounds.Contains(got) {
		t.Fatalf("focused location %v outside bounds", got)
	}
}

func TestStreamFocusShift(t *testing.T) {
	spec := TweetsUS()
	st := NewStream(spec, Q1, StreamConfig{
		Mu: 100, Seed: 5, FocusBias: 0.9, FocusHotspot: 0,
	})
	hot0 := st.ObjectGen().HotspotCenter(0)
	hot1 := st.ObjectGen().HotspotCenter(1)

	var phaseA, phaseB []*model.Object
	for len(phaseA) < 1000 {
		if op := st.Next(); op.Kind == model.OpObject {
			phaseA = append(phaseA, op.Obj)
		}
	}
	st.FocusHotspot(1)
	for len(phaseB) < 1000 {
		if op := st.Next(); op.Kind == model.OpObject {
			phaseB = append(phaseB, op.Obj)
		}
	}
	if f := fracNear(phaseA, hot0, 2); f < 0.8 {
		t.Fatalf("phase A not focused on hotspot 0: %.2f", f)
	}
	if f := fracNear(phaseB, hot1, 2); f < 0.8 {
		t.Fatalf("phase B not focused on hotspot 1 after the shift: %.2f", f)
	}
}

func TestSampleFocused(t *testing.T) {
	spec := TweetsUS()
	s := SampleFocused(spec, Q1, 800, 100, 7, 2, 0, 0.9)
	if len(s.Objects) != 800 || len(s.Queries) != 100 {
		t.Fatalf("sample sizes %d/%d", len(s.Objects), len(s.Queries))
	}
	hot := NewGenerator(spec, 0).HotspotCenter(2)
	if f := fracNear(s.Objects, hot, 2); f < 0.8 {
		t.Fatalf("focused sample objects not concentrated: %.2f", f)
	}
}
