package wire

import (
	"sync"
	"time"
)

// DefaultWriterDepth is the FrameWriter queue bound: enough frames in
// flight to ride out scheduler hiccups, small enough that a stalled peer
// backpressures the producer within a few batches.
const DefaultWriterDepth = 64

// wframe is one queued frame; a nil buf with non-nil flushed marks a
// Drain barrier marker.
type wframe struct {
	typ     byte
	buf     *Buf
	flushed chan error
}

// FrameWriter pipelines pre-encoded frames onto one Conn from a
// dedicated goroutine, so producers overlap compute with wire I/O
// instead of blocking on the socket. Frames are written in queue order;
// the writer drains whatever is queued into one bufio flush per wave, so
// a backed-up queue coalesces many frames into one syscall. Buffers are
// returned to the pool after the write.
//
// Direct Conn.Send calls from other goroutines interleave safely (the
// Conn's write mutex keeps frames atomic) but order relative to queued
// frames is then unspecified — callers who need FIFO with the queued
// data must go through Send or Drain.
type FrameWriter struct {
	c  *Conn
	ch chan wframe

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}

	mu  sync.Mutex
	err error
}

// NewFrameWriter starts a writer goroutine over c with the given queue
// depth (0 = DefaultWriterDepth).
func NewFrameWriter(c *Conn, depth int) *FrameWriter {
	if depth <= 0 {
		depth = DefaultWriterDepth
	}
	w := &FrameWriter{
		c:    c,
		ch:   make(chan wframe, depth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go w.loop()
	return w
}

// Send queues one pre-encoded frame. The writer owns buf afterwards
// (returned to the pool once written). Blocks when the queue is full —
// that is the transport backpressure — and fails fast once the writer
// has failed or stopped.
func (w *FrameWriter) Send(typ byte, buf *Buf) error {
	select {
	case w.ch <- wframe{typ: typ, buf: buf}:
		return nil
	case <-w.stop:
		PutBuf(buf)
		return w.failErr()
	}
}

// Drain blocks until every frame queued before the call has been written
// and flushed to the socket.
func (w *FrameWriter) Drain() error {
	marker := wframe{flushed: make(chan error, 1)}
	select {
	case w.ch <- marker:
	case <-w.stop:
		return w.failErr()
	}
	select {
	case err := <-marker.flushed:
		return err
	case <-w.stop:
		return w.failErr()
	}
}

// Err returns the writer's terminal error, if any.
func (w *FrameWriter) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

func (w *FrameWriter) failErr() error {
	if err := w.Err(); err != nil {
		return err
	}
	return ErrClosed
}

// Stop halts the writer without draining (teardown path; pending frames
// are discarded). It is idempotent and returns once the goroutine has
// exited.
func (w *FrameWriter) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}

func (w *FrameWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	// The conn is unusable for data once a write failed; closing it
	// surfaces the failure to the owner's read loop, which runs the
	// session teardown.
	w.c.Close()
	w.stopOnce.Do(func() { close(w.stop) })
}

func (w *FrameWriter) loop() {
	defer close(w.done)
	wave := make([]wframe, 0, 32)
	for {
		// Block for the first frame of a wave.
		var first wframe
		select {
		case first = <-w.ch:
		case <-w.stop:
			w.discard()
			return
		}
		wave = append(wave[:0], first)
		// Coalesce whatever else is already queued.
	gather:
		for len(wave) < cap(wave) {
			select {
			case f := <-w.ch:
				wave = append(wave, f)
			default:
				break gather
			}
		}
		err := w.c.writeWave(wave)
		for _, f := range wave {
			if f.flushed != nil {
				f.flushed <- err
			}
			PutBuf(f.buf)
		}
		if err != nil {
			w.fail(err)
			w.discard()
			return
		}
	}
}

// discard releases queued buffers after a stop or failure, unblocking
// producers parked on the channel until they observe the stop.
func (w *FrameWriter) discard() {
	for {
		select {
		case f := <-w.ch:
			if f.flushed != nil {
				f.flushed <- w.failErr()
			}
			PutBuf(f.buf)
		default:
			return
		}
	}
}

// writeWave writes a run of frames under one lock and one flush.
// Flush-markers (nil buf) carry no bytes.
func (c *Conn) writeWave(wave []wframe) error {
	start := time.Now()
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.armWriteDeadline(); err != nil {
		return err
	}
	for _, f := range wave {
		if f.buf == nil {
			continue
		}
		if err := WriteFrame(c.bw, f.typ, f.buf.B); err != nil {
			return err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	dur := time.Since(start)
	for _, f := range wave {
		if f.buf == nil {
			continue
		}
		txCounters.record(f.typ, len(f.buf.B), dur/time.Duration(len(wave)))
	}
	return nil
}
