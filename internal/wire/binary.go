// Binary hot-frame codec (CodecBinary). The data-plane frames — op
// batches, match batches, and the drain/fence barrier frames — dominate
// wire traffic, and per-frame gob re-sends type descriptors and reflects
// over every field. This codec hand-rolls them instead: varint-packed
// integers, fixed 8-byte little-endian floats and timestamps, strings as
// length-prefixed UTF-8. Encoding appends to a caller-owned buffer and
// decoding reads into caller-owned scratch, so a warmed-up session does
// zero codec allocations per frame in either direction (op-batch decode
// still allocates the domain objects it returns — that is the data, not
// codec overhead; the index retains them past the batch).
//
// Control frames (handshake, stats, cell migration) stay on gob: they
// are rare, their payloads are struct-shaped and evolving, and gob's
// ignore-unknown-fields behaviour is what makes protocol negotiation
// work at all. See docs/WIRE.md for the byte-level layout.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
)

// Codec identifiers negotiated in the Hello/Welcome exchange.
const (
	// CodecGob is the original self-contained-gob-per-frame encoding;
	// peers that predate negotiation implicitly run it (a gob-decoded
	// Hello/Welcome without a Codec field reads as zero).
	CodecGob = 0
	// CodecBinary moves the hot frames (op batches, match batches,
	// drain/drain-ack/fence) to the hand-rolled binary layout in this
	// file; everything else stays gob.
	CodecBinary = 1
)

// ErrBadPayload reports a binary payload that does not decode: truncated,
// trailing garbage, or a field outside its domain. Like gob decode
// errors it fails the connection — a corrupt data-plane frame is not
// recoverable mid-stream.
var ErrBadPayload = fmt.Errorf("wire: bad binary payload")

// t0Zero is the on-wire sentinel for a zero time.Time (whose UnixNano is
// not meaningful); it keeps the encoding canonical so encode∘decode is
// the identity on the wire bytes.
const t0Zero = math.MinInt64

// Buf is a pooled encode buffer. Producers grab one with GetBuf, append
// a payload with the Append* encoders, and hand it to a FrameWriter,
// which returns it to the pool after the frame is written.
type Buf struct{ B []byte }

var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, 4096)} }}

// GetBuf returns an empty pooled buffer.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf returns a buffer to the pool.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > MaxFrameSize {
		return // don't pin a pathological frame's memory
	}
	bufPool.Put(b)
}

func appendTime(dst []byte, t time.Time) []byte {
	n := int64(t0Zero)
	if !t.IsZero() {
		n = t.UnixNano()
	}
	return binary.LittleEndian.AppendUint64(dst, uint64(n))
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendPoint(dst []byte, p geo.Point) []byte {
	dst = appendF64(dst, p.X)
	return appendF64(dst, p.Y)
}

func appendRect(dst []byte, r geo.Rect) []byte {
	dst = appendPoint(dst, r.Min)
	return appendPoint(dst, r.Max)
}

// Per-op presence bits (one byte on the wire).
const (
	opHasObj   = 1 << 0
	opHasQuery = 1 << 1
	opRefill   = 1 << 2
)

// AppendOpBatch appends the binary encoding of one op batch to dst.
// seq is the batch's position in the session's send order: batches
// round-robin across data connections and the receiver reassembles
// them into exactly this order before processing (docs/WIRE.md).
func AppendOpBatch(dst []byte, seq uint64, ops []OpEnv) []byte {
	dst = binary.AppendUvarint(dst, seq)
	dst = binary.AppendUvarint(dst, uint64(len(ops)))
	for i := range ops {
		env := &ops[i]
		dst = append(dst, byte(env.Op.Kind))
		var pres byte
		if env.Op.Obj != nil {
			pres |= opHasObj
		}
		if env.Op.Query != nil {
			pres |= opHasQuery
		}
		if env.Refill {
			pres |= opRefill
		}
		dst = append(dst, pres)
		if o := env.Op.Obj; o != nil {
			dst = binary.AppendUvarint(dst, o.ID)
			dst = binary.AppendUvarint(dst, uint64(len(o.Terms)))
			for _, t := range o.Terms {
				dst = appendStr(dst, t)
			}
			dst = appendPoint(dst, o.Loc)
		}
		if q := env.Op.Query; q != nil {
			dst = binary.AppendUvarint(dst, q.ID)
			dst = binary.AppendUvarint(dst, q.Subscriber)
			dst = appendRect(dst, q.Region)
			dst = binary.AppendUvarint(dst, uint64(q.TopK))
			dst = binary.AppendUvarint(dst, uint64(q.Window))
			dst = binary.AppendUvarint(dst, uint64(len(q.Expr.Conj)))
			for _, conj := range q.Expr.Conj {
				dst = binary.AppendUvarint(dst, uint64(len(conj)))
				for _, t := range conj {
					dst = appendStr(dst, t)
				}
			}
		}
		dst = binary.AppendUvarint(dst, env.Op.Seq)
		dst = appendTime(dst, env.T0)
	}
	return dst
}

// AppendMatchBatch appends the binary encoding of one match batch to dst.
func AppendMatchBatch(dst []byte, ms []MatchEnv) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ms)))
	for i := range ms {
		me := &ms[i]
		dst = binary.AppendUvarint(dst, me.M.QueryID)
		dst = binary.AppendUvarint(dst, me.M.Subscriber)
		dst = binary.AppendUvarint(dst, me.M.ObjectID)
		dst = binary.AppendUvarint(dst, uint64(me.M.Worker))
		dst = appendTime(dst, me.T0)
	}
	return dst
}

// AppendDrain appends the binary encoding of a drain request to dst.
func AppendDrain(dst []byte, d Drain) []byte {
	dst = binary.AppendUvarint(dst, d.Seq)
	return binary.AppendUvarint(dst, uint64(d.Ops))
}

// AppendDrainAck appends the binary encoding of a drain ack to dst.
func AppendDrainAck(dst []byte, a DrainAck) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, uint64(a.Done))
	dst = binary.AppendUvarint(dst, uint64(a.Emitted))
	dst = binary.AppendUvarint(dst, uint64(a.Duplicates))
	return binary.AppendUvarint(dst, uint64(a.Deltas))
}

// AppendFence appends the binary encoding of a fence to dst.
func AppendFence(dst []byte, f Fence) []byte {
	return binary.AppendUvarint(dst, f.Epoch)
}

// appendDeltas appends a length-prefixed run of window deltas: the
// shared tail of WindowDeltaBatch and AdvanceAck payloads.
func appendDeltas(dst []byte, ds []window.Delta) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for i := range ds {
		d := &ds[i]
		dst = binary.AppendUvarint(dst, d.QueryID)
		dst = binary.AppendUvarint(dst, d.Subscriber)
		dst = binary.AppendUvarint(dst, d.MsgID)
		dst = binary.AppendUvarint(dst, uint64(d.K))
		dst = appendF64(dst, d.Rank)
		dst = appendF64(dst, d.Rel)
		var entered byte
		if d.Entered {
			entered = 1
		}
		dst = append(dst, entered)
	}
	return dst
}

// AppendWindowDeltaBatch appends the binary encoding of one window
// delta batch to dst.
func AppendWindowDeltaBatch(dst []byte, epoch uint64, ds []window.Delta) []byte {
	dst = binary.AppendUvarint(dst, epoch)
	return appendDeltas(dst, ds)
}

// AppendAdvanceWindow appends the binary encoding of an advance-window
// request to dst.
func AppendAdvanceWindow(dst []byte, a AdvanceWindow) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, uint64(a.Ops))
	return appendTime(dst, a.Now)
}

// AppendAdvanceAck appends the binary encoding of an advance ack to dst.
func AppendAdvanceAck(dst []byte, a AdvanceAck) []byte {
	dst = binary.AppendUvarint(dst, a.Seq)
	dst = binary.AppendUvarint(dst, a.Epoch)
	return appendDeltas(dst, a.Deltas)
}

// breader walks a binary payload; a read past the end (or a malformed
// varint) latches bad and zero-fills every later read, so decoders check
// once at the end instead of after every field.
type breader struct {
	p   []byte
	off int
	bad bool
}

func (r *breader) fail() { r.bad = true }

func (r *breader) u8() byte {
	if r.bad || r.off >= len(r.p) {
		r.fail()
		return 0
	}
	b := r.p[r.off]
	r.off++
	return b
}

func (r *breader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *breader) u64() uint64 {
	if r.bad || r.off+8 > len(r.p) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.p[r.off:])
	r.off += 8
	return v
}

func (r *breader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *breader) time() time.Time {
	n := int64(r.u64())
	if r.bad || n == t0Zero {
		return time.Time{}
	}
	return time.Unix(0, n)
}

func (r *breader) str() string {
	n := r.uvarint()
	if r.bad || n > uint64(len(r.p)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.p[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

func (r *breader) point() geo.Point { return geo.Point{X: r.f64(), Y: r.f64()} }

func (r *breader) rect() geo.Rect { return geo.Rect{Min: r.point(), Max: r.point()} }

// done reports whether the payload decoded fully and exactly: a valid
// payload has no trailing bytes (the encoding is canonical, which is
// what lets the fuzz round-trip assert byte equality).
func (r *breader) done() bool { return !r.bad && r.off == len(r.p) }

// count reads a batch length and sanity-bounds it against the remaining
// payload (each element costs at least min bytes), so a hostile length
// prefix cannot make the decoder allocate unboundedly.
func (r *breader) count(min int) int {
	n := r.uvarint()
	if r.bad || n > uint64((len(r.p)-r.off)/min) {
		r.fail()
		return 0
	}
	return int(n)
}

// DecodeBinOpBatch decodes a binary op batch payload, appending to dst
// (pass a reused scratch slice; its elements are overwritten). The
// returned Object/Query values are freshly allocated — the receiver's
// index retains them past the call. seq is the batch's position in the
// session's send order (see AppendOpBatch).
func DecodeBinOpBatch(p []byte, dst []OpEnv) (ops []OpEnv, seq uint64, err error) {
	r := breader{p: p}
	seq = r.uvarint()
	n := r.count(11) // kind + presence + seq + 8-byte t0
	for i := 0; i < n && !r.bad; i++ {
		var env OpEnv
		kind := r.u8()
		if kind > byte(model.OpDelete) {
			r.fail()
			break
		}
		env.Op.Kind = model.OpKind(kind)
		pres := r.u8()
		if pres&^(opHasObj|opHasQuery|opRefill) != 0 {
			r.fail()
			break
		}
		env.Refill = pres&opRefill != 0
		if pres&opHasObj != 0 {
			o := &model.Object{ID: r.uvarint()}
			if nt := r.count(1); nt > 0 {
				o.Terms = make([]string, nt)
				for j := range o.Terms {
					o.Terms[j] = r.str()
				}
			}
			o.Loc = r.point()
			env.Op.Obj = o
		}
		if pres&opHasQuery != 0 {
			q := &model.Query{ID: r.uvarint(), Subscriber: r.uvarint()}
			q.Region = r.rect()
			q.TopK = int(r.uvarint())
			q.Window = time.Duration(r.uvarint())
			if nc := r.count(1); nc > 0 {
				q.Expr.Conj = make([][]string, nc)
				for j := range q.Expr.Conj {
					nt := r.count(1)
					conj := make([]string, nt)
					for k := range conj {
						conj[k] = r.str()
					}
					q.Expr.Conj[j] = conj
				}
			}
			env.Op.Query = q
		}
		env.Op.Seq = r.uvarint()
		env.T0 = r.time()
		dst = append(dst, env)
	}
	if !r.done() {
		return dst, 0, fmt.Errorf("%w: op batch", ErrBadPayload)
	}
	return dst, seq, nil
}

// DecodeBinMatchBatch decodes a binary match batch payload, appending to
// dst (reused scratch: zero allocations once the slice has warmed up).
func DecodeBinMatchBatch(p []byte, dst []MatchEnv) ([]MatchEnv, error) {
	r := breader{p: p}
	n := r.count(12) // 4 varints + 8-byte t0
	for i := 0; i < n && !r.bad; i++ {
		var me MatchEnv
		me.M.QueryID = r.uvarint()
		me.M.Subscriber = r.uvarint()
		me.M.ObjectID = r.uvarint()
		me.M.Worker = int(r.uvarint())
		me.T0 = r.time()
		dst = append(dst, me)
	}
	if !r.done() {
		return dst, fmt.Errorf("%w: match batch", ErrBadPayload)
	}
	return dst, nil
}

// DecodeBinDrain decodes a binary drain request payload.
func DecodeBinDrain(p []byte) (Drain, error) {
	r := breader{p: p}
	d := Drain{Seq: r.uvarint(), Ops: int64(r.uvarint())}
	if !r.done() {
		return Drain{}, fmt.Errorf("%w: drain", ErrBadPayload)
	}
	return d, nil
}

// DecodeBinDrainAck decodes a binary drain ack payload.
func DecodeBinDrainAck(p []byte) (DrainAck, error) {
	r := breader{p: p}
	a := DrainAck{
		Seq:        r.uvarint(),
		Done:       int64(r.uvarint()),
		Emitted:    int64(r.uvarint()),
		Duplicates: int64(r.uvarint()),
		Deltas:     int64(r.uvarint()),
	}
	if !r.done() {
		return DrainAck{}, fmt.Errorf("%w: drain ack", ErrBadPayload)
	}
	return a, nil
}

// readDeltas decodes a length-prefixed run of window deltas into dst
// (reused scratch; see DecodeBinMatchBatch).
func (r *breader) readDeltas(dst []window.Delta) []window.Delta {
	n := r.count(21) // 4 varints + two 8-byte floats + entered byte
	for i := 0; i < n && !r.bad; i++ {
		var d window.Delta
		d.QueryID = r.uvarint()
		d.Subscriber = r.uvarint()
		d.MsgID = r.uvarint()
		d.K = int(r.uvarint())
		d.Rank = r.f64()
		d.Rel = r.f64()
		switch r.u8() {
		case 0:
		case 1:
			d.Entered = true
		default:
			r.fail()
		}
		dst = append(dst, d)
	}
	return dst
}

// DecodeBinWindowDeltaBatch decodes a binary window delta batch payload,
// appending to dst (reused scratch: zero allocations once warmed up).
func DecodeBinWindowDeltaBatch(p []byte, dst []window.Delta) (ds []window.Delta, epoch uint64, err error) {
	r := breader{p: p}
	epoch = r.uvarint()
	dst = r.readDeltas(dst)
	if !r.done() {
		return dst, 0, fmt.Errorf("%w: window delta batch", ErrBadPayload)
	}
	return dst, epoch, nil
}

// DecodeBinAdvanceWindow decodes a binary advance-window request payload.
func DecodeBinAdvanceWindow(p []byte) (AdvanceWindow, error) {
	r := breader{p: p}
	a := AdvanceWindow{Seq: r.uvarint(), Ops: int64(r.uvarint()), Now: r.time()}
	if !r.done() {
		return AdvanceWindow{}, fmt.Errorf("%w: advance window", ErrBadPayload)
	}
	return a, nil
}

// DecodeBinAdvanceAck decodes a binary advance ack payload.
func DecodeBinAdvanceAck(p []byte) (AdvanceAck, error) {
	r := breader{p: p}
	a := AdvanceAck{Seq: r.uvarint(), Epoch: r.uvarint()}
	a.Deltas = r.readDeltas(nil)
	if !r.done() {
		return AdvanceAck{}, fmt.Errorf("%w: advance ack", ErrBadPayload)
	}
	return a, nil
}

// DecodeBinFence decodes a binary fence payload.
func DecodeBinFence(p []byte) (Fence, error) {
	r := breader{p: p}
	f := Fence{Epoch: r.uvarint()}
	if !r.done() {
		return Fence{}, fmt.Errorf("%w: fence", ErrBadPayload)
	}
	return f, nil
}
