package wire

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
)

// sampleOpBatch exercises every field of the op-batch layout: all three
// op kinds, every presence bit (including refill), multi-conjunction
// expressions, zero and non-zero timestamps.
func sampleOpBatch() []OpEnv {
	q := &model.Query{
		ID:         42,
		Expr:       model.Expr{Conj: [][]string{{"coffee", "brooklyn"}, {"espresso"}}},
		Region:     geo.NewRect(-74.2, 40.5, -73.7, 40.95),
		Subscriber: 7,
		TopK:       5,
		Window:     3 * time.Minute,
	}
	return []OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: q, Seq: 1}, T0: time.Unix(1700000000, 12345)},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 9, Terms: []string{"best", "coffee"}, Loc: geo.Point{X: -73.95, Y: 40.71},
		}, Seq: 2}, T0: time.Unix(1700000001, 0)},
		{Op: model.Op{Kind: model.OpDelete, Query: q, Seq: 3}},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{ID: 10}, Seq: 4},
			T0: time.Unix(1699999999, 0), Refill: true},
	}
}

func sampleMatchBatch() []MatchEnv {
	return []MatchEnv{
		{M: model.Match{QueryID: 42, Subscriber: 7, ObjectID: 9, Worker: 3}, T0: time.Unix(5, 5)},
		{M: model.Match{QueryID: 1, ObjectID: 2}},
	}
}

// TestBinaryOpBatchRoundTrip: encode∘decode is the identity on every
// field, and re-encoding the decoded batch reproduces the bytes (the
// encoding is canonical).
func TestBinaryOpBatchRoundTrip(t *testing.T) {
	ops := sampleOpBatch()
	p := AppendOpBatch(nil, 5, ops)
	got, seq, err := DecodeBinOpBatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Errorf("batch seq = %d, want 5", seq)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	gq := got[0].Op.Query
	q := ops[0].Op.Query
	if gq.ID != q.ID || gq.Subscriber != q.Subscriber || gq.TopK != q.TopK ||
		gq.Window != q.Window || gq.Region != q.Region || gq.Expr.String() != q.Expr.String() {
		t.Errorf("query = %+v, want %+v", gq, q)
	}
	if !got[0].T0.Equal(ops[0].T0) || !got[2].T0.IsZero() {
		t.Errorf("timestamps mangled: %v, %v", got[0].T0, got[2].T0)
	}
	gobj := got[1].Op.Obj
	if gobj.ID != 9 || gobj.Loc != (geo.Point{X: -73.95, Y: 40.71}) || len(gobj.Terms) != 2 {
		t.Errorf("object = %+v", gobj)
	}
	if got[3].Op.Obj.Terms != nil {
		t.Errorf("empty terms decoded as %v, want nil", got[3].Op.Obj.Terms)
	}
	if !got[3].Refill || got[0].Refill {
		t.Errorf("refill bits mangled: got %v/%v, want false/true on ops 0/3", got[0].Refill, got[3].Refill)
	}
	for i := range got {
		if got[i].Op.Kind != ops[i].Op.Kind || got[i].Op.Seq != ops[i].Op.Seq {
			t.Errorf("op %d: kind/seq = %v/%d, want %v/%d",
				i, got[i].Op.Kind, got[i].Op.Seq, ops[i].Op.Kind, ops[i].Op.Seq)
		}
	}
	if re := AppendOpBatch(nil, seq, got); !bytes.Equal(re, p) {
		t.Error("re-encoding the decoded batch changed the bytes")
	}
}

func TestBinaryMatchAndControlRoundTrip(t *testing.T) {
	ms := sampleMatchBatch()
	p := AppendMatchBatch(nil, ms)
	got, err := DecodeBinMatchBatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].M != ms[0].M || !got[0].T0.Equal(ms[0].T0) || !got[1].T0.IsZero() {
		t.Fatalf("matches = %+v, want %+v", got, ms)
	}
	if re := AppendMatchBatch(nil, got); !bytes.Equal(re, p) {
		t.Error("match batch re-encode changed the bytes")
	}

	d := Drain{Seq: 9, Ops: 12345}
	if got, err := DecodeBinDrain(AppendDrain(nil, d)); err != nil || got != d {
		t.Errorf("drain = %+v, %v; want %+v", got, err, d)
	}
	a := DrainAck{Seq: 9, Done: 12345, Emitted: 678, Duplicates: 2, Deltas: 11}
	if got, err := DecodeBinDrainAck(AppendDrainAck(nil, a)); err != nil || got != a {
		t.Errorf("drain ack = %+v, %v; want %+v", got, err, a)
	}
	fe := Fence{Epoch: 3}
	if got, err := DecodeBinFence(AppendFence(nil, fe)); err != nil || got != fe {
		t.Errorf("fence = %+v, %v; want %+v", got, err, fe)
	}
}

func sampleDeltas() []window.Delta {
	return []window.Delta{
		{QueryID: 42, Subscriber: 7, MsgID: 9, K: 5, Rank: 0.75, Rel: 0.9, Entered: true},
		{QueryID: 42, Subscriber: 7, MsgID: 3, K: 5, Rank: 0.25, Rel: 0.4},
		{QueryID: 1, MsgID: 1<<40 + 1, K: 1, Rank: -2.5, Rel: 1, Entered: true},
	}
}

// TestBinaryWindowFramesRoundTrip: the top-k reconciliation frames —
// spontaneous delta batches and the fenced advance-window round —
// encode∘decode to identity and re-encode canonically.
func TestBinaryWindowFramesRoundTrip(t *testing.T) {
	ds := sampleDeltas()
	p := AppendWindowDeltaBatch(nil, 31, ds)
	got, epoch, err := DecodeBinWindowDeltaBatch(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 31 || len(got) != len(ds) {
		t.Fatalf("epoch %d, %d deltas; want 31, %d", epoch, len(got), len(ds))
	}
	for i := range ds {
		if got[i] != ds[i] {
			t.Errorf("delta %d = %+v, want %+v", i, got[i], ds[i])
		}
	}
	if re := AppendWindowDeltaBatch(nil, epoch, got); !bytes.Equal(re, p) {
		t.Error("delta batch re-encode changed the bytes")
	}

	aw := AdvanceWindow{Seq: 6, Ops: 12345, Now: time.Unix(1700000000, 999)}
	gotAW, err := DecodeBinAdvanceWindow(AppendAdvanceWindow(nil, aw))
	if err != nil || gotAW.Seq != aw.Seq || gotAW.Ops != aw.Ops || !gotAW.Now.Equal(aw.Now) {
		t.Errorf("advance window = %+v, %v; want %+v", gotAW, err, aw)
	}

	aa := AdvanceAck{Seq: 6, Epoch: 31, Deltas: ds}
	gotAA, err := DecodeBinAdvanceAck(AppendAdvanceAck(nil, aa))
	if err != nil || gotAA.Seq != aa.Seq || gotAA.Epoch != aa.Epoch || len(gotAA.Deltas) != len(ds) {
		t.Fatalf("advance ack = %+v, %v; want %+v", gotAA, err, aa)
	}
	for i := range ds {
		if gotAA.Deltas[i] != ds[i] {
			t.Errorf("ack delta %d = %+v, want %+v", i, gotAA.Deltas[i], ds[i])
		}
	}
}

// TestBinaryMatchesGobDecoding is the cross-codec compatibility check
// behind negotiation: the same frame pushed through the gob path (what
// an old peer runs) and the binary path (what a negotiated session runs)
// must decode to identical values, so the two codecs are interchangeable
// per hop and a mixed-version cluster agrees on every batch.
func TestBinaryMatchesGobDecoding(t *testing.T) {
	ob := OpBatch{Ops: sampleOpBatch()}
	gobP, err := EncodePayload(ob)
	if err != nil {
		t.Fatal(err)
	}
	var viaGob OpBatch
	if err := DecodePayload(gobP, &viaGob); err != nil {
		t.Fatal(err)
	}
	viaBin, _, err := DecodeBinOpBatch(AppendOpBatch(nil, 0, ob.Ops), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Compare through the canonical binary encoding: it covers every
	// field and sidesteps time.Time representation differences.
	if !bytes.Equal(AppendOpBatch(nil, 0, viaGob.Ops), AppendOpBatch(nil, 0, viaBin)) {
		t.Error("gob and binary decode to different op batches")
	}

	mb := MatchBatch{Matches: sampleMatchBatch()}
	gobP, err = EncodePayload(mb)
	if err != nil {
		t.Fatal(err)
	}
	var mGob MatchBatch
	if err := DecodePayload(gobP, &mGob); err != nil {
		t.Fatal(err)
	}
	mBin, err := DecodeBinMatchBatch(AppendMatchBatch(nil, mb.Matches), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(AppendMatchBatch(nil, mGob.Matches), AppendMatchBatch(nil, mBin)) {
		t.Error("gob and binary decode to different match batches")
	}
}

// TestBinaryDecodeRejectsMalformed: truncations, trailing garbage, and
// out-of-domain fields all fail with ErrBadPayload instead of
// mis-decoding or panicking.
func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	whole := AppendOpBatch(nil, 9, sampleOpBatch())
	for cut := 1; cut < len(whole); cut++ {
		if _, _, err := DecodeBinOpBatch(whole[:cut], nil); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
	if _, _, err := DecodeBinOpBatch(append(AppendOpBatch(nil, 9, sampleOpBatch()), 0), nil); err == nil {
		t.Error("trailing byte accepted")
	}
	// Corrupt in-domain fields of a valid single-op batch: byte 2 is the
	// op kind, byte 3 the presence bits (batch seq and count are both
	// single-byte varints here).
	one := AppendOpBatch(nil, 0, sampleOpBatch()[3:4])
	bad := append([]byte(nil), one...)
	bad[2] = byte(model.OpDelete) + 1
	if _, _, err := DecodeBinOpBatch(bad, nil); err == nil {
		t.Error("out-of-range op kind accepted")
	}
	bad = append(bad[:0], one...)
	bad[3] = 0xFF
	if _, _, err := DecodeBinOpBatch(bad, nil); err == nil {
		t.Error("unknown presence bits accepted")
	}
	// A hostile length prefix must be bounded by the payload size, not
	// trusted for allocation.
	if _, err := DecodeBinMatchBatch([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, nil); err == nil {
		t.Error("giant match count accepted")
	}
	if _, err := DecodeBinDrain([]byte{1}); err == nil {
		t.Error("truncated drain accepted")
	}
	if _, err := DecodeBinDrainAck([]byte{1, 2, 3, 4, 5, 6}); err == nil {
		t.Error("drain ack with trailing bytes accepted")
	}
	if _, err := DecodeBinDrainAck([]byte{1, 2, 3, 4}); err == nil {
		t.Error("drain ack missing the delta count accepted")
	}
	// Window delta frames: truncations and hostile counts must be
	// rejected the same way.
	whole = AppendWindowDeltaBatch(nil, 3, sampleDeltas())
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := DecodeBinWindowDeltaBatch(whole[:cut], nil); err == nil {
			t.Fatalf("delta batch truncated to %d/%d bytes decoded cleanly", cut, len(whole))
		}
	}
	if _, _, err := DecodeBinWindowDeltaBatch(append(whole, 0), nil); err == nil {
		t.Error("delta batch trailing byte accepted")
	}
	if _, _, err := DecodeBinWindowDeltaBatch([]byte{3, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}, nil); err == nil {
		t.Error("giant delta count accepted")
	}
	if _, err := DecodeBinAdvanceWindow([]byte{1}); err == nil {
		t.Error("truncated advance window accepted")
	}
	if _, err := DecodeBinAdvanceAck([]byte{1, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}); err == nil {
		t.Error("advance ack with giant delta count accepted")
	}
}

// TestHotFrameCodecZeroAlloc is the regression gate on the codec's core
// property: steady-state encode and decode of the hot frames do no
// allocation (op-batch decode is exempt — it allocates the domain
// objects the index will retain, which is data, not codec overhead).
func TestHotFrameCodecZeroAlloc(t *testing.T) {
	ops := sampleOpBatch()
	ms := sampleMatchBatch()
	opP := AppendOpBatch(nil, 7, ops)
	mP := AppendMatchBatch(nil, ms)
	dP := AppendDrain(nil, Drain{Seq: 9, Ops: 12345})
	aP := AppendDrainAck(nil, DrainAck{Seq: 9, Done: 12345, Emitted: 678})
	fP := AppendFence(nil, Fence{Epoch: 3})
	ds := sampleDeltas()
	wP := AppendWindowDeltaBatch(nil, 31, ds)
	enc := make([]byte, 0, 4*len(opP))
	scratch := make([]MatchEnv, 0, len(ms))
	dscratch := make([]window.Delta, 0, len(ds))
	var err error
	allocs := testing.AllocsPerRun(200, func() {
		enc = AppendOpBatch(enc[:0], 7, ops)
		enc = AppendMatchBatch(enc[:0], ms)
		enc = AppendDrain(enc[:0], Drain{Seq: 9, Ops: 12345})
		enc = AppendDrainAck(enc[:0], DrainAck{Seq: 9, Done: 12345})
		enc = AppendFence(enc[:0], Fence{Epoch: 3})
		enc = AppendWindowDeltaBatch(enc[:0], 31, ds)
		scratch, err = DecodeBinMatchBatch(mP, scratch[:0])
		dscratch, _, err = DecodeBinWindowDeltaBatch(wP, dscratch[:0])
		if err != nil {
			panic(err)
		}
		if _, err = DecodeBinDrain(dP); err != nil {
			panic(err)
		}
		if _, err = DecodeBinDrainAck(aP); err != nil {
			panic(err)
		}
		if _, err = DecodeBinFence(fP); err != nil {
			panic(err)
		}
	})
	limit := 0.0
	if raceEnabled {
		limit = 8 // race instrumentation may allocate; the -race matrix
		// still runs the test for its correctness side.
	}
	if allocs > limit {
		t.Errorf("hot-frame codec allocates %.1f times per round, want <= %v", allocs, limit)
	}
}

// binKind* index the frame-kind selector byte FuzzBinaryFrame and its
// seed corpus share.
const (
	binKindOp = iota
	binKindMatch
	binKindDrain
	binKindDrainAck
	binKindFence
	binKindDeltaBatch
	binKindAdvanceWindow
	binKindAdvanceAck
	binKinds
)

// binarySeedFrames returns the seed corpus for FuzzBinaryFrame: one
// valid payload per frame kind, edge cases (empty batch, non-minimal
// varint, zero-time sentinel), and plain garbage.
func binarySeedFrames() [][]byte {
	seed := func(kind byte, p []byte) []byte { return append([]byte{kind}, p...) }
	return [][]byte{
		seed(binKindOp, AppendOpBatch(nil, 3, sampleOpBatch())),
		seed(binKindOp, AppendOpBatch(nil, 0, nil)),
		seed(binKindMatch, AppendMatchBatch(nil, sampleMatchBatch())),
		seed(binKindDrain, AppendDrain(nil, Drain{Seq: 9, Ops: 12345})),
		// Non-minimal varint: decodes, but re-encodes shorter. The fuzz
		// target asserts re-encoding is a fixed point, not that arbitrary
		// accepted inputs are already canonical.
		seed(binKindDrain, []byte{0x80, 0x00, 0x01}),
		seed(binKindDrainAck, AppendDrainAck(nil, DrainAck{Seq: 9, Done: 12345, Emitted: 678, Duplicates: 2})),
		seed(binKindFence, AppendFence(nil, Fence{Epoch: 3})),
		seed(binKindDeltaBatch, AppendWindowDeltaBatch(nil, 31, sampleDeltas())),
		seed(binKindDeltaBatch, AppendWindowDeltaBatch(nil, 0, nil)),
		seed(binKindAdvanceWindow, AppendAdvanceWindow(nil, AdvanceWindow{Seq: 6, Ops: 12345, Now: time.Unix(1700000000, 999)})),
		seed(binKindAdvanceAck, AppendAdvanceAck(nil, AdvanceAck{Seq: 6, Epoch: 31, Deltas: sampleDeltas()})),
		seed(binKindOp, []byte{0xFF, 0xFF, 0xFF, 0xFF}),
		seed(binKindMatch, []byte("GET / HTTP/1.1\r\n\r\n")),
	}
}

// FuzzBinaryFrame feeds arbitrary bytes to every binary hot-frame
// decoder (first byte selects the kind). Invalid payloads must error
// without panicking; for accepted payloads, re-encoding the decoded
// value must be a fixed point of encode∘decode — the canonical-encoding
// property the protocol relies on (it is what lets a drain ack or batch
// be compared byte-wise across hops).
func FuzzBinaryFrame(f *testing.F) {
	for _, s := range binarySeedFrames() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		kind, p := data[0]%binKinds, data[1:]
		reencode := func() ([]byte, bool) {
			switch kind {
			case binKindOp:
				v, seq, err := DecodeBinOpBatch(p, nil)
				if err != nil {
					return nil, false
				}
				return AppendOpBatch(nil, seq, v), true
			case binKindMatch:
				v, err := DecodeBinMatchBatch(p, nil)
				if err != nil {
					return nil, false
				}
				return AppendMatchBatch(nil, v), true
			case binKindDrain:
				v, err := DecodeBinDrain(p)
				if err != nil {
					return nil, false
				}
				return AppendDrain(nil, v), true
			case binKindDrainAck:
				v, err := DecodeBinDrainAck(p)
				if err != nil {
					return nil, false
				}
				return AppendDrainAck(nil, v), true
			case binKindDeltaBatch:
				v, epoch, err := DecodeBinWindowDeltaBatch(p, nil)
				if err != nil {
					return nil, false
				}
				return AppendWindowDeltaBatch(nil, epoch, v), true
			case binKindAdvanceWindow:
				v, err := DecodeBinAdvanceWindow(p)
				if err != nil {
					return nil, false
				}
				return AppendAdvanceWindow(nil, v), true
			case binKindAdvanceAck:
				v, err := DecodeBinAdvanceAck(p)
				if err != nil {
					return nil, false
				}
				return AppendAdvanceAck(nil, v), true
			default:
				v, err := DecodeBinFence(p)
				if err != nil {
					return nil, false
				}
				return AppendFence(nil, v), true
			}
		}
		enc1, ok := reencode()
		if !ok {
			return
		}
		p = enc1
		enc2, ok := reencode()
		if !ok {
			t.Fatalf("kind %d: re-encoded payload does not decode", kind)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("kind %d: encode∘decode is not a fixed point:\n%x\n%x", kind, enc1, enc2)
		}
	})
}

// TestWriteBinaryFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzBinaryFrame when the layout changes. Run with:
//
//	WRITE_FUZZ_CORPUS=1 go test ./internal/wire -run TestWriteBinaryFuzzCorpus
func TestWriteBinaryFuzzCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate the committed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzBinaryFrame")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range binarySeedFrames() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
