package wire

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Default connection tunables.
const (
	// DefaultWriteTimeout bounds one buffered-write flush; a peer that
	// stops reading for this long fails the connection rather than
	// wedging the pipeline silently.
	DefaultWriteTimeout = 30 * time.Second
	// DefaultHandshakeTimeout bounds the Hello/Welcome round.
	DefaultHandshakeTimeout = 10 * time.Second
	// DefaultControlTimeout bounds a control round trip (drain, stats).
	DefaultControlTimeout = 60 * time.Second
	// writeBufSize is the bufio size of the send side; one frame header
	// plus payload coalesce into a single syscall per batch.
	writeBufSize = 64 << 10
	readBufSize  = 64 << 10
)

// Conn is one wire connection: a net.Conn with per-connection write
// buffering (one flush per frame, so wire writes reuse the engine's
// transfer-batch boundaries), a write mutex so control frames can
// interleave with data frames from another goroutine, and deadlines.
//
// Reads are the property of a single goroutine (the owner's read loop);
// writes may come from any goroutine.
type Conn struct {
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex
	bw  *bufio.Writer

	// WriteTimeout bounds each Send (0 = none). Set before first use.
	WriteTimeout time.Duration
	// ReadTimeout bounds each Recv (0 = none, the default: stream gaps
	// of any length are legitimate between publishes).
	ReadTimeout time.Duration

	// Deadline re-arm coarsening: SetWriteDeadline/SetReadDeadline cost
	// a syscall-ish path per call, which the hot loop used to pay per
	// frame. Instead the deadline is re-armed only once a quarter of the
	// timeout has elapsed since the last arm, so a frame-per-microsecond
	// stream arms ~4 times per timeout window while a genuinely stalled
	// peer still fails within [3/4·timeout, timeout] of its last
	// successful frame. wArm is guarded by wmu; rArm belongs to the
	// single read-loop goroutine.
	wArm time.Time
	rArm time.Time
}

// NewConn wraps nc with wire framing and the default write timeout.
func NewConn(nc net.Conn) *Conn {
	return &Conn{
		nc:           nc,
		br:           bufio.NewReaderSize(nc, readBufSize),
		bw:           bufio.NewWriterSize(nc, writeBufSize),
		WriteTimeout: DefaultWriteTimeout,
	}
}

// Send encodes v and writes it as one frame, flushing the write buffer —
// one frame and one flush per transfer batch. The frame's transport
// counters cover encode time as well as the write.
func (c *Conn) Send(typ byte, v any) error {
	start := time.Now()
	payload, err := EncodePayload(v)
	if err != nil {
		return err
	}
	return c.sendPayload(typ, payload, start)
}

// SendPayload writes one frame with an already-encoded payload (callers
// that need the serialised size, e.g. migration transfer accounting,
// encode once and send the same bytes).
func (c *Conn) SendPayload(typ byte, payload []byte) error {
	return c.sendPayload(typ, payload, time.Now())
}

func (c *Conn) sendPayload(typ byte, payload []byte, start time.Time) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.armWriteDeadline(); err != nil {
		return err
	}
	if err := WriteFrame(c.bw, typ, payload); err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	txCounters.record(typ, len(payload), time.Since(start))
	return nil
}

// armWriteDeadline re-arms the write deadline if a quarter of the
// timeout has elapsed since the last arm (caller holds wmu).
func (c *Conn) armWriteDeadline() error {
	if c.WriteTimeout <= 0 {
		return nil
	}
	if now := time.Now(); now.Sub(c.wArm) > c.WriteTimeout/4 {
		if err := c.nc.SetWriteDeadline(now.Add(c.WriteTimeout)); err != nil {
			return err
		}
		c.wArm = now
	}
	return nil
}

// Recv reads the next frame. Only the connection's read-loop goroutine
// may call it.
func (c *Conn) Recv() (typ byte, payload []byte, err error) {
	if c.ReadTimeout > 0 {
		if now := time.Now(); now.Sub(c.rArm) > c.ReadTimeout/4 {
			if err := c.nc.SetReadDeadline(now.Add(c.ReadTimeout)); err != nil {
				return 0, nil, err
			}
			c.rArm = now
		}
	}
	start := time.Now()
	typ, payload, err = ReadFrame(c.br)
	if err == nil {
		rxCounters.record(typ, len(payload), time.Since(start))
	}
	return typ, payload, err
}

// RecvTimeout reads the next frame under a one-off deadline (handshake
// and control rounds).
func (c *Conn) RecvTimeout(d time.Duration) (typ byte, payload []byte, err error) {
	if err := c.nc.SetReadDeadline(time.Now().Add(d)); err != nil {
		return 0, nil, err
	}
	// Clear the one-off deadline and the coarsening mark, so the next
	// Recv re-arms unconditionally.
	defer func() {
		c.nc.SetReadDeadline(time.Time{})
		c.rArm = time.Time{}
	}()
	start := time.Now()
	typ, payload, err = ReadFrame(c.br)
	if err == nil {
		rxCounters.record(typ, len(payload), time.Since(start))
	}
	return typ, payload, err
}

// Close closes the underlying connection. Safe to call multiple times
// and from any goroutine; it unblocks a pending Recv.
func (c *Conn) Close() error { return c.nc.Close() }

// RemoteAddr reports the peer address (diagnostics).
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// Backoff parameterises Dial's reconnect-with-backoff loop.
type Backoff struct {
	// Attempts is the total number of connection attempts (default 10).
	Attempts int
	// Base is the first retry delay, doubling per attempt (default
	// 50ms); Max caps it (default 2s). A ±25% jitter decorrelates peers
	// retrying in lockstep.
	Base time.Duration
	Max  time.Duration
	// MaxElapsed caps the whole dial loop's wall-clock time (default
	// the sum of the capped per-attempt delays). Dial derives a context
	// deadline from it, so the worst case is bounded even when every
	// attempt burns its full connect timeout — a fleet bring-up cannot
	// wedge behind one dead address.
	MaxElapsed time.Duration
}

func (b Backoff) withDefaults() Backoff {
	if b.Attempts <= 0 {
		b.Attempts = 10
	}
	if b.Base <= 0 {
		b.Base = 50 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 2 * time.Second
	}
	if b.MaxElapsed <= 0 {
		// Sum of the exponential delays (capped at Max) plus one connect
		// timeout per attempt — generous, but bounded.
		total := 3 * time.Second * time.Duration(b.Attempts)
		delay := b.Base
		for i := 1; i < b.Attempts; i++ {
			total += delay + delay/4
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		b.MaxElapsed = total
	}
	return b
}

// Dial connects to addr with exponential backoff — deployment scripts
// start psnode peers in arbitrary order, so the coordinator retries
// until the peer's listener is up (or attempts run out). Total time is
// capped by Backoff.MaxElapsed via a context deadline.
func Dial(addr string, b Backoff) (*Conn, error) {
	ctx, cancel := context.WithTimeout(context.Background(), b.withDefaults().MaxElapsed)
	defer cancel()
	return DialContext(ctx, addr, b)
}

// DialContext is Dial bounded by ctx: both the inter-attempt sleeps and
// each TCP connect observe the context's deadline, so the caller's
// budget — not the attempt count alone — bounds the loop.
func DialContext(ctx context.Context, addr string, b Backoff) (*Conn, error) {
	b = b.withDefaults()
	delay := b.Base
	var lastErr error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			jitter := time.Duration(rand.Int63n(int64(delay)/2+1)) - delay/4
			select {
			case <-time.After(delay + jitter):
			case <-ctx.Done():
				if lastErr == nil {
					lastErr = ctx.Err()
				}
				return nil, fmt.Errorf("wire: dialing %s: %w (deadline after %d attempts)", addr, lastErr, i)
			}
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		conn, err := dialOnce(ctx, addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, fmt.Errorf("wire: dialing %s: %w (deadline after %d attempts)", addr, lastErr, i+1)
			}
			continue
		}
		return conn, nil
	}
	return nil, fmt.Errorf("wire: dialing %s: %w (after %d attempts)", addr, lastErr, b.Attempts)
}

// dialOnce makes a single TCP connect attempt under ctx.
func dialOnce(ctx context.Context, addr string) (*Conn, error) {
	d := net.Dialer{Timeout: 3 * time.Second}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewConn(nc), nil
}
