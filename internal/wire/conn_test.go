package wire

import (
	"errors"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ps2stream/internal/model"
)

// deadlineCounter counts SetReadDeadline/SetWriteDeadline calls so the
// coarsening tests can assert the hot path does not pay a deadline
// syscall per frame.
type deadlineCounter struct {
	net.Conn
	reads, writes atomic.Int64
}

func (c *deadlineCounter) SetReadDeadline(t time.Time) error {
	c.reads.Add(1)
	return c.Conn.SetReadDeadline(t)
}

func (c *deadlineCounter) SetWriteDeadline(t time.Time) error {
	c.writes.Add(1)
	return c.Conn.SetWriteDeadline(t)
}

func tcpPair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, err = ln.Accept()
	}()
	client, cerr := net.Dial("tcp", ln.Addr().String())
	if cerr != nil {
		t.Fatal(cerr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

// TestConnDeadlineCoarsening: a burst of frames far faster than the
// timeout window re-arms each deadline O(1) times, not once per frame —
// the per-frame SetDeadline cost this codec release hoisted out of the
// hot loop.
func TestConnDeadlineCoarsening(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	cnt := &deadlineCounter{Conn: cliNC}
	cli := NewConn(cnt)
	cli.ReadTimeout = 10 * time.Second
	cli.WriteTimeout = 10 * time.Second
	srv := NewConn(srvNC)

	const frames = 200
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if _, _, err := srv.Recv(); err != nil {
				errc <- err
				return
			}
			if err := srv.SendPayload(TypePing, nil); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < frames; i++ {
		if err := cli.SendPayload(TypePing, nil); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cli.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	// The whole burst fits well inside timeout/4, so each direction arms
	// at most a few times (first use plus clock-edge slop) — not ~200.
	if r := cnt.reads.Load(); r > 5 {
		t.Errorf("read deadline armed %d times over %d frames, want <= 5", r, frames)
	}
	if w := cnt.writes.Load(); w > 5 {
		t.Errorf("write deadline armed %d times over %d frames, want <= 5", w, frames)
	}
}

// TestConnReadDeadlineExpires: coarsened arming must not stretch the
// failure window — a peer that goes silent still surfaces a timeout
// within roughly one ReadTimeout of its last frame, never silently
// blocking.
func TestConnReadDeadlineExpires(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	_ = srvNC // deliberately silent peer
	cli := NewConn(cliNC)
	cli.ReadTimeout = 200 * time.Millisecond
	start := time.Now()
	_, _, err := cli.Recv()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Recv returned without a peer frame")
	}
	// ReadFrame folds the transport cause into ErrBadFrame's message.
	if !errors.Is(err, ErrBadFrame) || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("err = %v, want a framed timeout", err)
	}
	if elapsed < 100*time.Millisecond || elapsed > 2*time.Second {
		t.Errorf("timed out after %v, want about the 200ms ReadTimeout", elapsed)
	}
}

// TestWorkerClientSilentPeerSurfacesWorkerDown: the full client path on
// top of the deadline — heartbeats negotiated, peer wedges after the
// handshake, and the session fails with ErrWorkerDown within a few
// heartbeat intervals instead of hanging on a never-armed deadline.
func TestWorkerClientSilentPeerSurfacesWorkerDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		c := NewConn(nc)
		if _, _, err := c.RecvTimeout(time.Second); err != nil {
			return
		}
		c.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleWorker})
		// Promise heartbeats, send none: wedged peer.
		time.Sleep(5 * time.Second)
	}()
	cl, err := DialWorker(ln.Addr().String(), Hello{HeartbeatMillis: 50}, Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.RecvMatches()
	if !errors.Is(err, ErrWorkerDown) {
		t.Fatalf("err = %v, want ErrWorkerDown", err)
	}
	// 4 heartbeat intervals = 200ms read deadline; allow generous CI slack.
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("worker-down surfaced after %v, want within a few heartbeat intervals", elapsed)
	}
}

// TestDialWorkerFallsBackToGob: a peer that answers the negotiation
// with a pre-codec Welcome (no Codec/Streams fields — what an old node
// sends) drops the client into the legacy single-connection gob
// session, and the data path still works end to end.
func TestDialWorkerFallsBackToGob(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		srvErr <- func() error {
			nc, err := ln.Accept()
			if err != nil {
				return err
			}
			defer nc.Close()
			c := NewConn(nc)
			typ, payload, err := c.RecvTimeout(5 * time.Second)
			if err != nil {
				return err
			}
			var hello Hello
			if typ != TypeHello || DecodePayload(payload, &hello) != nil {
				return errors.New("bad hello")
			}
			if hello.Codec != CodecBinary || hello.Streams <= 0 || hello.SessionID == 0 {
				return errors.New("client did not request a binary multi-stream session")
			}
			// Old node: fields unknown, echoed as zero.
			if err := c.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleWorker}); err != nil {
				return err
			}
			for {
				typ, payload, err := c.RecvTimeout(5 * time.Second)
				if err != nil {
					return err
				}
				switch typ {
				case TypeOpBatch:
					var ob OpBatch
					if err := DecodePayload(payload, &ob); err != nil {
						return err // a binary batch here would fail exactly this way
					}
					if err := c.Send(TypeMatchBatch, MatchBatch{Matches: []MatchEnv{
						{M: model.Match{QueryID: 1, ObjectID: ob.Ops[0].Op.Obj.ID}},
					}}); err != nil {
						return err
					}
				case TypeDrain:
					var d Drain
					if err := DecodePayload(payload, &d); err != nil {
						return err
					}
					if err := c.Send(TypeDrainAck, DrainAck{Seq: d.Seq, Done: 1, Emitted: 1}); err != nil {
						return err
					}
				case TypeGoodbye:
					return c.Send(TypeGoodbye, Goodbye{})
				}
			}
		}()
	}()
	cl, err := DialWorker(ln.Addr().String(), Hello{}, Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if cl.Codec() != CodecGob || cl.Streams() != 0 {
		t.Fatalf("negotiated codec=%d streams=%d, want legacy gob single-conn", cl.Codec(), cl.Streams())
	}
	if err := cl.SendOps(OpBatch{Ops: []OpEnv{{Op: model.Op{Kind: model.OpObject,
		Obj: &model.Object{ID: 77}}}}}); err != nil {
		t.Fatal(err)
	}
	mb, err := cl.RecvMatches()
	if err != nil || len(mb.Matches) != 1 || mb.Matches[0].M.ObjectID != 77 {
		t.Fatalf("matches = %+v, err %v", mb, err)
	}
	ack, err := cl.Drain()
	if err != nil || ack.Done != 1 {
		t.Fatalf("drain ack = %+v, err %v", ack, err)
	}
	if err := cl.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if err := <-srvErr; err != nil {
		t.Fatal(err)
	}
	cl.Close()
}
