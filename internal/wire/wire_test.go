package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte{0xAB}, 1<<15)}
	for i, p := range payloads {
		if err := WriteFrame(w, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	for i, p := range payloads {
		typ, got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Errorf("frame %d: type %d, want %d", i, typ, i+1)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload mismatch (%d vs %d bytes)", i, len(got), len(p))
		}
	}
	if _, _, err := ReadFrame(r); err != io.EOF {
		t.Errorf("after last frame: %v, want io.EOF", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := WriteFrame(w, TypeOpBatch, []byte("some payload bytes")); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	whole := buf.Bytes()
	// Every proper prefix except the empty one must fail with ErrBadFrame
	// (the empty prefix is a clean EOF at a frame boundary).
	for cut := 1; cut < len(whole); cut++ {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(whole[:cut])))
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("prefix of %d/%d bytes: err = %v, want ErrBadFrame", cut, len(whole), err)
		}
	}
	_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(nil)))
	if err != io.EOF {
		t.Errorf("empty stream: %v, want io.EOF", err)
	}
}

func TestReadFrameGarbage(t *testing.T) {
	cases := map[string][]byte{
		"zero length":   {0, 0, 0, 0},
		"huge length":   {0xFF, 0xFF, 0xFF, 0xFF, 1},
		"ascii garbage": []byte("GET / HTTP/1.1\r\n\r\n"),
	}
	for name, data := range cases {
		_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader(data)))
		if err == nil || err == io.EOF {
			t.Errorf("%s: err = %v, want framing error", name, err)
		}
		if !errors.Is(err, ErrBadFrame) && !errors.Is(err, ErrFrameTooLarge) {
			t.Errorf("%s: err = %v, want ErrBadFrame or ErrFrameTooLarge", name, err)
		}
	}
	// "ascii garbage" decodes to a plausible length and then runs out of
	// body; "huge length" must refuse before allocating.
	_, _, err := ReadFrame(bufio.NewReader(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("huge header: %v, want ErrFrameTooLarge", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	w := bufio.NewWriter(io.Discard)
	if err := WriteFrame(w, 1, make([]byte, MaxFrameSize)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

// TestPayloadRoundTrip covers the stable wire encoding of the model
// types: every field of Op/Query/Expr/Match must survive.
func TestPayloadRoundTrip(t *testing.T) {
	q := &model.Query{
		ID:         42,
		Expr:       model.Expr{Conj: [][]string{{"coffee", "brooklyn"}, {"espresso"}}},
		Region:     geo.NewRect(-74.2, 40.5, -73.7, 40.95),
		Subscriber: 7,
		TopK:       5,
		Window:     3 * time.Minute,
	}
	ob := OpBatch{Ops: []OpEnv{
		{Op: model.Op{Kind: model.OpInsert, Query: q}, T0: time.Unix(1700000000, 12345)},
		{Op: model.Op{Kind: model.OpObject, Obj: &model.Object{
			ID: 9, Terms: []string{"best", "coffee"}, Loc: geo.Point{X: -73.95, Y: 40.71},
		}}, T0: time.Unix(1700000001, 0)},
		{Op: model.Op{Kind: model.OpDelete, Query: q}},
	}}
	payload, err := EncodePayload(ob)
	if err != nil {
		t.Fatal(err)
	}
	var got OpBatch
	if err := DecodePayload(payload, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != 3 {
		t.Fatalf("got %d ops, want 3", len(got.Ops))
	}
	gq := got.Ops[0].Op.Query
	if gq.ID != q.ID || gq.Subscriber != q.Subscriber || gq.TopK != q.TopK || gq.Window != q.Window {
		t.Errorf("query scalars mismatch: %+v", gq)
	}
	if gq.Expr.String() != q.Expr.String() {
		t.Errorf("expr = %q, want %q", gq.Expr.String(), q.Expr.String())
	}
	if gq.Region != q.Region {
		t.Errorf("region = %v, want %v", gq.Region, q.Region)
	}
	if !got.Ops[0].T0.Equal(time.Unix(1700000000, 12345)) {
		t.Errorf("T0 = %v", got.Ops[0].T0)
	}
	gobj := got.Ops[1].Op.Obj
	if gobj.ID != 9 || gobj.Loc != (geo.Point{X: -73.95, Y: 40.71}) || len(gobj.Terms) != 2 {
		t.Errorf("object mismatch: %+v", gobj)
	}

	mb := MatchBatch{Matches: []MatchEnv{{
		M: model.Match{QueryID: 42, Subscriber: 7, ObjectID: 9, Worker: 3}, T0: time.Unix(5, 5),
	}}}
	payload, err = EncodePayload(mb)
	if err != nil {
		t.Fatal(err)
	}
	var gm MatchBatch
	if err := DecodePayload(payload, &gm); err != nil {
		t.Fatal(err)
	}
	if gm.Matches[0].M != mb.Matches[0].M {
		t.Errorf("match = %+v, want %+v", gm.Matches[0].M, mb.Matches[0].M)
	}
}

func TestDecodePayloadGarbage(t *testing.T) {
	var ob OpBatch
	if err := DecodePayload([]byte("not gob at all"), &ob); err == nil {
		t.Error("garbage payload decoded without error")
	}
	var h Hello
	// A valid OpBatch payload decoded as the wrong type must error, not
	// silently mis-decode.
	payload, err := EncodePayload(OpBatch{Ops: []OpEnv{{Op: model.Op{Kind: model.OpObject,
		Obj: &model.Object{ID: 1}}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodePayload(payload, &h); err == nil {
		t.Error("cross-type decode succeeded")
	}
}

func TestCheckHandshake(t *testing.T) {
	if err := CheckHandshake(Magic, Version); err != nil {
		t.Errorf("valid handshake rejected: %v", err)
	}
	if err := CheckHandshake("NOTPS2", Version); err == nil {
		t.Error("bad magic accepted")
	}
	if err := CheckHandshake(Magic, Version+1); err == nil {
		t.Error("future version accepted")
	}
}

func TestDialBackoffGivesUp(t *testing.T) {
	start := time.Now()
	_, err := Dial("127.0.0.1:1", Backoff{Attempts: 2, Base: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("err = %v, want attempt count", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("backoff took %v", time.Since(start))
	}
}

func TestDialBackoffRetriesUntilListenerUp(t *testing.T) {
	// Grab a port, close the listener, dial with backoff, and bring the
	// listener back while the dialer retries: deployment scripts start
	// psnode peers in arbitrary order.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	go func() {
		time.Sleep(80 * time.Millisecond)
		ln2, err := net.Listen("tcp", addr)
		if err != nil {
			return // port raced away; the dial error path covers us
		}
		defer ln2.Close()
		c, err := ln2.Accept()
		if err == nil {
			c.Close()
		}
	}()
	c, err := Dial(addr, Backoff{Attempts: 10, Base: 20 * time.Millisecond})
	if err != nil {
		t.Skipf("port %s not reacquired: %v", addr, err)
	}
	c.Close()
}

// TestWorkerClientCloseUnblocksFullMatchBuffer: a read loop parked on
// the bounded match channel (consumer gone, e.g. a cancelled run) must
// exit on Close instead of leaking the goroutine and connection.
func TestWorkerClientCloseUnblocksFullMatchBuffer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(nc)
		if _, _, err := c.RecvTimeout(time.Second); err != nil {
			return
		}
		c.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleWorker})
		// Flood more batches than the client buffers (128) without the
		// client ever consuming one.
		for i := 0; i < 200; i++ {
			if c.Send(TypeMatchBatch, MatchBatch{Matches: []MatchEnv{{M: model.Match{ObjectID: uint64(i)}}}}) != nil {
				return
			}
		}
	}()
	cl, err := DialWorker(ln.Addr().String(), Hello{}, Backoff{Attempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the read loop fill the buffer and park
	cl.Close()
	select {
	case <-cl.readDone:
	case <-time.After(5 * time.Second):
		t.Fatal("read loop still parked after Close")
	}
	// The match channel must be closed so a late consumer unblocks too.
	for {
		if _, err := cl.RecvMatches(); err != nil {
			break
		}
	}
}

func TestHandshakeRejectsWrongRole(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(nc)
		if _, _, err := c.RecvTimeout(time.Second); err != nil {
			return
		}
		c.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleMerger})
	}()
	_, err = DialWorker(ln.Addr().String(), Hello{}, Backoff{Attempts: 1})
	if err == nil || !strings.Contains(err.Error(), "identifies as") {
		t.Errorf("err = %v, want role mismatch", err)
	}
}
