package wire

import (
	"context"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDialWorkerRetriesHandshakeTransportFailure: a crashed worker's
// port can accept a connect and reset the stream before the Welcome
// while its replacement process is still binding — the recovery redial
// must ride that window out under its backoff budget, not give up on
// the first mid-handshake failure.
func TestDialWorkerRetriesHandshakeTransportFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		// First connect: slam the door mid-handshake.
		c, err := ln.Accept()
		if err != nil {
			return
		}
		c.Close()
		// Second connect: a real worker handshake.
		c, err = ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		if _, _, err := conn.Recv(); err != nil { // the Hello
			return
		}
		conn.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleWorker, Task: 3})
	}()
	w, err := DialWorker(ln.Addr().String(), Hello{Task: 3}, Backoff{
		Attempts: 5, Base: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("handshake did not survive a mid-handshake connection reset: %v", err)
	}
	w.Close()
}

// TestDialWorkerProtocolRefusalIsFatal: a peer that completes the round
// but answers wrongly (here: a merger's role) must fail immediately —
// retrying a peer that answered wrongly cannot help, and a recovery
// loop burning its whole redial budget on it would mask the real error.
func TestDialWorkerProtocolRefusalIsFatal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var accepts atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepts.Add(1)
			conn := NewConn(c)
			if _, _, err := conn.Recv(); err != nil {
				continue
			}
			conn.Send(TypeWelcome, Welcome{Magic: Magic, Version: Version, Role: RoleMerger, Task: 0})
		}
	}()
	_, err = DialWorker(ln.Addr().String(), Hello{}, Backoff{
		Attempts: 5, Base: 5 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("handshake with a merger succeeded as a worker dial")
	}
	if !strings.Contains(err.Error(), "identifies as") {
		t.Errorf("error %q does not name the role mismatch", err)
	}
	if n := accepts.Load(); n != 1 {
		t.Errorf("protocol refusal was retried: %d connects, want 1", n)
	}
}

// TestDialBoundedByMaxElapsed: a huge attempt budget must not translate
// into a huge wall-clock budget — MaxElapsed cuts the loop off mid
// backoff. 50 attempts at Base 50ms would otherwise sleep for minutes.
func TestDialBoundedByMaxElapsed(t *testing.T) {
	start := time.Now()
	_, err := Dial("127.0.0.1:1", Backoff{
		Attempts:   50,
		Base:       50 * time.Millisecond,
		MaxElapsed: 200 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dialing a dead port succeeded")
	}
	if elapsed > 2*time.Second {
		t.Fatalf("dial loop ran %v past a 200ms MaxElapsed", elapsed)
	}
	if !strings.Contains(err.Error(), "deadline") && !strings.Contains(err.Error(), "attempts") {
		t.Errorf("error %q does not say why the dial gave up", err)
	}
}

// TestDialDefaultMaxElapsedIsFinite: the zero value must derive a
// bounded cap, not an unbounded loop.
func TestDialDefaultMaxElapsedIsFinite(t *testing.T) {
	b := Backoff{}.withDefaults()
	if b.MaxElapsed <= 0 {
		t.Fatalf("default MaxElapsed = %v, want > 0", b.MaxElapsed)
	}
	// 10 attempts, 3s connect timeout each, plus capped backoff sleeps:
	// generous, but it must stay in the well-under-a-minute range so a
	// fleet bring-up cannot wedge behind one dead address indefinitely.
	if b.MaxElapsed > time.Minute {
		t.Fatalf("default MaxElapsed = %v, want a bounded bring-up budget", b.MaxElapsed)
	}
}

// TestDialContextHonorsCancellation: an already-expired context returns
// promptly from inside the backoff sleep, not after the attempt budget.
func TestDialContextHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := DialContext(ctx, "127.0.0.1:1", Backoff{Attempts: 50, Base: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("dialing a dead port succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("DialContext ran %v past a 50ms context deadline", elapsed)
	}
}
