// Package wire is the network transport of a multi-process PS2Stream
// deployment: length-prefixed gob framing for the operation batches,
// match batches and control messages that cross dispatcher→worker and
// worker→merger hops when topology tasks run as separate OS processes
// (cmd/psnode). The paper deploys on an Apache Storm cluster whose
// tuples cross real machine boundaries (§VI); this package is the
// repro's equivalent of Storm's transport layer, with in-process
// channels remaining the fast path for single-process runs (see
// stream.Transport).
//
// # Frame format
//
// Every message is one frame:
//
//	uint32 big-endian  n        (1 + len(payload); bounds the read)
//	byte               type     (Type* constants)
//	n-1 bytes          payload  (self-contained gob encoding)
//
// Each payload is an independent gob stream, so frames are
// self-delimiting: a reader can skip, re-synchronise after an error, and
// a truncated or corrupted frame fails at a frame boundary instead of
// poisoning the connection's decoder state. The per-frame gob type
// descriptor overhead is amortised by batching — one frame carries a
// whole transfer batch of tuples (docs/WIRE.md).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types. The wire protocol is versioned by the handshake (Hello
// and Welcome carry Magic and Version); types may be added, never
// renumbered, within a version.
const (
	// TypeHello opens a connection: coordinator → peer, carrying the
	// grid geometry and term statistics the peer needs so gridt cell
	// ids agree across processes.
	TypeHello byte = 1
	// TypeWelcome acknowledges a Hello: peer → coordinator.
	TypeWelcome byte = 2
	// TypeOpBatch carries one transfer batch of stream operations
	// (coordinator → worker).
	TypeOpBatch byte = 3
	// TypeMatchBatch carries one batch of matches (worker → coordinator,
	// or coordinator → merger).
	TypeMatchBatch byte = 4
	// TypeDrain asks the peer to acknowledge once every frame received
	// before it has been fully processed (the end-to-end drain barrier).
	TypeDrain byte = 5
	// TypeDrainAck answers a Drain with the peer's cumulative counters.
	TypeDrainAck byte = 6
	// TypeStatsReq asks the peer for its delivery counters.
	TypeStatsReq byte = 7
	// TypeStatsReply answers a StatsReq.
	TypeStatsReply byte = 8
	// TypeFence announces a routing-epoch advance (stream.Fence) so
	// peers can tag diagnostics with the coordinator's routing
	// generation. Informational; no acknowledgement.
	TypeFence byte = 9
	// TypeGoodbye ends the sender's half of the conversation; the peer
	// finishes writing pending output and closes.
	TypeGoodbye byte = 10
)

// MaxFrameSize bounds a frame's length field: a reader rejects larger
// frames before allocating, so a corrupt or malicious length cannot
// trigger a huge allocation. 16 MiB comfortably holds the largest
// legitimate frame (a transfer batch of maximal queries).
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned by ReadFrame for frames whose declared
// length exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")

// ErrBadFrame wraps framing-level corruption (zero-length frame,
// truncated header or body).
var ErrBadFrame = errors.New("wire: malformed frame")

// WriteFrame writes one frame to w. It does not flush: callers flush at
// batch boundaries (Conn.Send does both).
func WriteFrame(w *bufio.Writer, typ byte, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrameSize {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r. io.EOF is returned untouched at a
// clean frame boundary; a connection dropped mid-frame surfaces as
// ErrBadFrame wrapping io.ErrUnexpectedEOF.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading header: %v", ErrBadFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrBadFrame, n, err)
	}
	return body[0], body[1:], nil
}
