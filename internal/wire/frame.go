// Package wire is the network transport of a multi-process PS2Stream
// deployment: length-prefixed framing for the operation batches,
// match batches and control messages that cross dispatcher→worker and
// worker→merger hops when topology tasks run as separate OS processes
// (cmd/psnode). The paper deploys on an Apache Storm cluster whose
// tuples cross real machine boundaries (§VI); this package is the
// repro's equivalent of Storm's transport layer, with in-process
// channels remaining the fast path for single-process runs (see
// stream.Transport).
//
// # Frame format
//
// Every message is one frame:
//
//	uint32 big-endian  n        (1 + len(payload); bounds the read)
//	byte               type     (Type* constants)
//	n-1 bytes          payload  (encoding per frame kind)
//
// Control frames (handshake, stats, migration) are always independent
// self-contained gob streams, so frames are self-delimiting: a reader
// can skip, re-synchronise after an error, and a truncated or corrupted
// frame fails at a frame boundary instead of poisoning the connection's
// decoder state — and gob's ignore-unknown-fields decoding is what
// version negotiation rides on. The hot data-plane frames (op batches,
// match batches, drain/drain-ack/fence) switch to the zero-allocation
// binary codec of binary.go when the Hello/Welcome exchange negotiates
// it (CodecBinary); against an old peer they stay gob. Either way one
// frame carries a whole transfer batch of tuples (docs/WIRE.md).
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame types. The wire protocol is versioned by the handshake (Hello
// and Welcome carry Magic and Version); types may be added, never
// renumbered, within a version.
const (
	// TypeHello opens a connection: coordinator → peer, carrying the
	// grid geometry and term statistics the peer needs so gridt cell
	// ids agree across processes.
	TypeHello byte = 1
	// TypeWelcome acknowledges a Hello: peer → coordinator.
	TypeWelcome byte = 2
	// TypeOpBatch carries one transfer batch of stream operations
	// (coordinator → worker).
	TypeOpBatch byte = 3
	// TypeMatchBatch carries one batch of matches (worker → coordinator,
	// or coordinator → merger).
	TypeMatchBatch byte = 4
	// TypeDrain asks the peer to acknowledge once every frame received
	// before it has been fully processed (the end-to-end drain barrier).
	TypeDrain byte = 5
	// TypeDrainAck answers a Drain with the peer's cumulative counters.
	TypeDrainAck byte = 6
	// TypeStatsReq asks the peer for its delivery counters.
	TypeStatsReq byte = 7
	// TypeStatsReply answers a StatsReq.
	TypeStatsReply byte = 8
	// TypeFence announces a routing-epoch advance (stream.Fence) so
	// peers can tag diagnostics with the coordinator's routing
	// generation. Informational; no acknowledgement.
	TypeFence byte = 9
	// TypeGoodbye ends the sender's half of the conversation; the peer
	// finishes writing pending output and closes.
	TypeGoodbye byte = 10
	// TypeCellStatsReq asks a worker peer for its per-cell planner
	// statistics (the Phase I/II migration input: entries, window load,
	// serialised size, per-term registration counts).
	TypeCellStatsReq byte = 11
	// TypeCellStatsReply answers a CellStatsReq.
	TypeCellStatsReply byte = 12
	// TypeExtractCells asks a worker peer for a serialised cell share —
	// queries plus window ring state — either copied (snapshot) or
	// removed from the peer's index (the deferred-extraction step of a
	// migration). FIFO framing orders it behind every op batch and fence
	// sent before it, so the share reflects all pre-flip traffic.
	TypeExtractCells byte = 13
	// TypeCellShare answers an ExtractCells with the cell payloads.
	TypeCellShare byte = 14
	// TypeInstallCells hands a worker peer a cell share to index (the
	// receiving half of a migration) and query ids to delete (deletions
	// routed to the source between copy and flip).
	TypeInstallCells byte = 15
	// TypeInstallAck acknowledges an InstallCells once the share is
	// indexed; ops sent after the ack's request are matched against it.
	TypeInstallAck byte = 16
	// TypeResetWindow starts a fresh per-cell load window on a worker
	// peer (gi2 ResetWindow): the adjustment controller sends it after
	// each evaluation so Definition-3 cell loads stay per-interval on
	// every node, local or remote. No acknowledgement; FIFO ordering
	// guarantees the next CellStatsReq observes the reset.
	TypeResetWindow byte = 17
	// TypePing is a worker node's liveness beacon (worker → coordinator,
	// sent every Hello.HeartbeatMillis when heartbeats are negotiated).
	// It carries no payload semantics; its arrival resets the
	// coordinator's read deadline, so a silent peer — kill -9, network
	// partition — surfaces as ErrWorkerDown instead of an indefinite
	// stall. Readers that predate it skip it (unknown-type rule).
	TypePing byte = 18
	// TypeWindowDeltaBatch carries one batch of sliding-window top-k
	// membership deltas (worker → coordinator): the worker folds the
	// window.Deltas produced while processing op batches into one hot
	// frame per transfer batch, tagged with the session's fencing epoch
	// so the coordinator's board can drop stale replays. Binary when the
	// session negotiated CodecBinary, gob otherwise.
	TypeWindowDeltaBatch byte = 19
	// TypeAdvanceWindow asks a worker peer to expire its sliding windows
	// up to the coordinator's clock (coordinator → worker): the fenced
	// control round that keeps cluster-wide window expiry consistent. It
	// carries the multi-stream Ops barrier like a Drain, so the advance
	// observes every op batch sent before it.
	TypeAdvanceWindow byte = 20
	// TypeAdvanceAck answers an AdvanceWindow with the expiry's top-k
	// membership deltas, tagged with the session's fencing epoch.
	TypeAdvanceAck byte = 21
)

// MaxFrameSize bounds a frame's length field: a reader rejects larger
// frames before allocating, so a corrupt or malicious length cannot
// trigger a huge allocation. 16 MiB comfortably holds the largest
// legitimate frame (a transfer batch of maximal queries).
const MaxFrameSize = 16 << 20

// ErrFrameTooLarge is returned by ReadFrame for frames whose declared
// length exceeds MaxFrameSize.
var ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFrameSize")

// ErrBadFrame wraps framing-level corruption (zero-length frame,
// truncated header or body).
var ErrBadFrame = errors.New("wire: malformed frame")

// WriteFrame writes one frame to w. It does not flush: callers flush at
// batch boundaries (Conn.Send does both).
func WriteFrame(w *bufio.Writer, typ byte, payload []byte) error {
	n := 1 + len(payload)
	if n > MaxFrameSize {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(n))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := w.WriteByte(typ); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame from r. io.EOF is returned untouched at a
// clean frame boundary; a connection dropped mid-frame surfaces as
// ErrBadFrame wrapping io.ErrUnexpectedEOF.
func ReadFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: reading header: %v", ErrBadFrame, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > MaxFrameSize {
		return 0, nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("%w: reading %d-byte body: %v", ErrBadFrame, n, err)
	}
	return body[0], body[1:], nil
}
