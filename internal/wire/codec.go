package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// Magic identifies a PS2Stream wire peer in the handshake.
const Magic = "PS2WIRE"

// Version is the current wire protocol version. Peers with different
// versions refuse the handshake.
const Version = 1

// Roles named in the handshake.
const (
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
	RoleMerger      = "merger"
)

// Hello is the coordinator's opening message to a peer. Beyond
// identifying the protocol it distributes everything a worker node needs
// to agree with the coordinator's routing: the monitored bounds and the
// grid granularity (so gridt/GI2 cell ids computed on either side of the
// wire coincide) and the sampled term statistics (so both sides pick the
// same least-frequent registration keyword for a query).
type Hello struct {
	Magic   string
	Version int
	// Role the *sender* is playing (normally RoleCoordinator).
	Role string
	// Task is the topology task index the peer is asked to run.
	Task int
	// Workers is the coordinator's total worker-task count.
	Workers int
	// Bounds and Granularity define the shared grid geometry.
	Bounds      geo.Rect
	Granularity int
	// BatchSize is the coordinator's transfer batch size, advisory.
	BatchSize int
	// Terms carries the partitioning sample's term frequencies
	// (textutil.Stats.Vector); nil means "no statistics".
	Terms map[string]int
}

// Welcome is the peer's handshake reply.
type Welcome struct {
	Magic   string
	Version int
	// Role the replying peer is playing (RoleWorker or RoleMerger).
	Role string
	// Task echoes the task index the peer accepted.
	Task int
}

// OpEnv is one stream operation in flight with its submit timestamp
// (the coordinator's clock; it returns to the coordinator inside match
// envelopes, so latency is measured in a single clock domain).
type OpEnv struct {
	Op model.Op
	T0 time.Time
}

// OpBatch is one transfer batch of operations — one frame per batch, so
// wire framing reuses the engine's batch boundaries.
type OpBatch struct {
	Ops []OpEnv
}

// MatchEnv is one match result in flight with the originating
// operation's submit timestamp.
type MatchEnv struct {
	M  model.Match
	T0 time.Time
}

// MatchBatch is one transfer batch of matches.
type MatchBatch struct {
	Matches []MatchEnv
}

// Drain asks the peer to acknowledge once everything received before
// this frame has been fully processed. Because frames are FIFO on a
// connection, the ack covers every batch sent before the Drain.
type Drain struct {
	Seq uint64
}

// DrainAck answers a Drain.
type DrainAck struct {
	Seq uint64
	// Done is the peer's cumulative processed-operation count (workers).
	Done int64
	// Emitted is the peer's cumulative emitted-match count (workers) or
	// delivered-match count (mergers).
	Emitted int64
	// Duplicates is the peer's cumulative duplicate count (mergers).
	Duplicates int64
}

// StatsReq asks a peer for its counters without a drain guarantee.
type StatsReq struct {
	Seq uint64
}

// StatsReply answers a StatsReq.
type StatsReply struct {
	Seq uint64
	// Delivered counts deduplicated matches delivered (mergers) or
	// emitted (workers); Duplicates counts suppressed duplicates.
	Delivered  int64
	Duplicates int64
	// Queries is the peer's live query count (workers).
	Queries int64
}

// Fence announces the coordinator's routing epoch after an adjustment
// flip. Informational.
type Fence struct {
	Epoch uint64
}

// Goodbye ends the sender's half of the conversation.
type Goodbye struct{}

// EncodePayload gob-encodes v as a self-contained frame payload.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodePayload decodes a frame payload produced by EncodePayload into v
// (a pointer to the frame type's struct).
func DecodePayload(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return nil
}

// CheckHandshake validates a received Hello or Welcome's protocol fields.
func CheckHandshake(magic string, version int) error {
	if magic != Magic {
		return fmt.Errorf("wire: bad magic %q (want %q)", magic, Magic)
	}
	if version != Version {
		return fmt.Errorf("wire: protocol version %d (want %d)", version, Version)
	}
	return nil
}
