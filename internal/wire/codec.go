package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
)

// Magic identifies a PS2Stream wire peer in the handshake.
const Magic = "PS2WIRE"

// Version is the current wire protocol version. Peers with different
// versions refuse the handshake.
const Version = 1

// Roles named in the handshake.
const (
	RoleCoordinator = "coordinator"
	RoleWorker      = "worker"
	RoleMerger      = "merger"
)

// Hello is the coordinator's opening message to a peer. Beyond
// identifying the protocol it distributes everything a worker node needs
// to agree with the coordinator's routing: the monitored bounds and the
// grid granularity (so gridt/GI2 cell ids computed on either side of the
// wire coincide) and the sampled term statistics (so both sides pick the
// same least-frequent registration keyword for a query).
type Hello struct {
	Magic   string
	Version int
	// Role the *sender* is playing (normally RoleCoordinator).
	Role string
	// Task is the topology task index the peer is asked to run.
	Task int
	// Workers is the coordinator's total worker-task count.
	Workers int
	// Bounds and Granularity define the shared grid geometry.
	Bounds      geo.Rect
	Granularity int
	// BatchSize is the coordinator's transfer batch size, advisory.
	BatchSize int
	// Terms carries the partitioning sample's term frequencies
	// (textutil.Stats.Vector); nil means "no statistics".
	Terms map[string]int
	// HeartbeatMillis asks the peer to send a TypePing every this many
	// milliseconds; 0 disables heartbeats (the pre-elasticity default).
	// Gob tolerates the field's absence, so old peers simply never ping.
	HeartbeatMillis int
	// Epoch is the coordinator's fencing epoch for this worker slot. A
	// node refuses a Hello whose epoch is below one it has already
	// accepted, so a stale coordinator session (severed but not yet dead)
	// cannot reclaim a slot a recovery session has taken over.
	Epoch uint64
	// Codec is the highest data-plane codec the sender speaks (CodecGob
	// or CodecBinary); the Welcome answers with the negotiated one. Gob
	// ignores unknown fields, so an old peer reads none of the fields
	// below and a new peer reads zeroes from an old Hello — either way
	// the session degrades to CodecGob on a single connection.
	Codec int
	// Streams is the number of data connections the coordinator wants
	// for this hop (0 = single-connection legacy session). The Welcome's
	// Streams is the granted count.
	Streams int
	// Stream tags which connection of a multi-stream session this Hello
	// opens: 0 is the control connection (which creates the session),
	// 1..Streams attach data connections to it.
	Stream int
	// SessionID joins a multi-stream session's connections together; the
	// coordinator draws a fresh nonzero id per dial, and the node refuses
	// data connections whose id does not match the live session.
	SessionID uint64
}

// Welcome is the peer's handshake reply.
type Welcome struct {
	Magic   string
	Version int
	// Role the replying peer is playing (RoleWorker or RoleMerger).
	Role string
	// Task echoes the task index the peer accepted.
	Task int
	// Codec is the negotiated data-plane codec: min(Hello.Codec, what
	// the node speaks). Absent (zero) from an old node, which pins the
	// session to CodecGob.
	Codec int
	// Streams is the granted data-connection count for a multi-stream
	// session (0 from an old node, or when the Hello requested none).
	Streams int
}

// OpEnv is one stream operation in flight with its submit timestamp
// (the coordinator's clock; it returns to the coordinator inside match
// envelopes, so latency is measured in a single clock domain).
type OpEnv struct {
	Op model.Op
	T0 time.Time
	// Refill marks a crash-replayed (or migration-adopted) object sent
	// purely to rebuild the worker's sliding-window state: the worker
	// observes it and re-offers it to top-k subscriptions, but emits no
	// boolean matches — those were delivered before the coordinator's
	// checkpoint covered the op, and re-emitting them against queries
	// inserted later would fabricate matches that never happened.
	Refill bool
}

// OpBatch is one transfer batch of operations — one frame per batch, so
// wire framing reuses the engine's batch boundaries.
type OpBatch struct {
	Ops []OpEnv
}

// MatchEnv is one match result in flight with the originating
// operation's submit timestamp.
type MatchEnv struct {
	M  model.Match
	T0 time.Time
}

// MatchBatch is one transfer batch of matches.
type MatchBatch struct {
	Matches []MatchEnv
}

// Drain asks the peer to acknowledge once everything received before
// this frame has been fully processed. On a single-connection session
// frames are FIFO, so the ack covers every batch sent before the Drain;
// on a multi-stream session FIFO does not span the data connections, so
// Ops carries the barrier instead.
type Drain struct {
	Seq uint64
	// Ops is the sender's cumulative op count for the session: the peer
	// holds the ack until it has processed at least this many ops (and
	// has flushed the matches they produced to the wire). Zero — always
	// the case from a pre-negotiation coordinator — waives the count and
	// falls back to per-connection FIFO semantics.
	Ops int64
}

// DrainAck answers a Drain.
type DrainAck struct {
	Seq uint64
	// Done is the peer's cumulative processed-operation count (workers).
	Done int64
	// Emitted is the peer's cumulative emitted-match count (workers) or
	// delivered-match count (mergers).
	Emitted int64
	// Duplicates is the peer's cumulative duplicate count (mergers).
	Duplicates int64
	// Deltas is the worker's cumulative emitted window-delta count
	// (WindowDeltaBatch frames), so a drain can also wait for the top-k
	// delta stream to be received, not just the matches.
	Deltas int64
}

// StatsReq asks a peer for its counters without a drain guarantee.
type StatsReq struct {
	Seq uint64
	// Ops is the multi-stream session barrier (see Drain.Ops): the reply
	// waits until at least this many session ops are processed, standing
	// in for the FIFO ordering a single connection gave for free.
	Ops int64
}

// StatsReply answers a StatsReq.
type StatsReply struct {
	Seq uint64
	// Delivered counts deduplicated matches delivered (mergers) or
	// emitted (workers); Duplicates counts suppressed duplicates.
	Delivered  int64
	Duplicates int64
	// Queries is the peer's live query count (workers).
	Queries int64
	// Objects/Inserts/Deletes are the worker's cumulative processed
	// operation counts by kind. The coordinator's adjustment controller
	// differences them per interval, so the imbalance detector sees the
	// node's actual processing progress instead of the coordinator's
	// hand-off rate.
	Objects int64
	Inserts int64
	Deletes int64
}

// Fence announces the coordinator's routing epoch after an adjustment
// flip. Informational.
type Fence struct {
	Epoch uint64
}

// CellTermStat is one registration key's statistics within a cell
// (gi2.TermStat across the wire): the Phase I split planner's input.
type CellTermStat struct {
	Term    string
	Queries int
	ObjHits int64
}

// CellStat is one grid cell's planner view on a worker node: n_q
// (Entries), the Definition-3 window load L_g = n_o·n_q (Load), the
// per-window object count n_o (ObjSeen), and the serialised size S_g
// (SizeBytes) that prices a migration.
type CellStat struct {
	Cell      int
	Entries   int
	ObjSeen   int64
	SizeBytes int64
	Load      float64
	Terms     []CellTermStat
}

// CellStatsReq asks a worker peer for its per-cell statistics. The
// reply reflects every op batch sent before the call: per-connection
// FIFO on a legacy session, the Ops barrier on a multi-stream one.
type CellStatsReq struct {
	Seq uint64
	// Ops is the multi-stream session barrier (see Drain.Ops).
	Ops int64
}

// CellStatsReply answers a CellStatsReq with every non-empty cell.
type CellStatsReply struct {
	Seq   uint64
	Cells []CellStat
}

// CellSpec names one cell share: the whole cell when Keys is nil, or
// only the given registration keys (a Phase I text split).
type CellSpec struct {
	Cell int
	Keys []string
}

// ExtractCells asks a worker peer for the named cell shares. With
// Remove false the shares are copied (the migration's copy step, the
// source keeps serving them); with Remove true the queries are
// extracted from the index and — for whole-cell shares — the window
// ring released (the deferred-extraction step, after the source has
// drained its pre-flip traffic).
type ExtractCells struct {
	Seq    uint64
	Cells  []CellSpec
	Remove bool
	// Ops is the multi-stream session barrier (see Drain.Ops): the share
	// must reflect every op batch the coordinator sent before the call —
	// that is the migration barrier — so the extraction waits for the
	// session's processed-op count to reach it.
	Ops int64
	// Subs asks for each top-k subscription's held window entries
	// alongside the cell shares (CellPayload.Subs). Global repartition
	// sets it when discovering a remote population: a whole-query
	// relocation must carry the subscription's cross-cell history, which
	// the cell rings alone cannot supply. Plain cell migrations leave it
	// false and move ring state only, like their in-process counterpart.
	Subs bool
}

// SubEntries is one top-k subscription's held window entries in flight
// (window.Store.SubEntries across the wire): installed via AdoptEntries
// at the destination so a relocated subscription keeps its window
// history even when the entries span several cells.
type SubEntries struct {
	ID      uint64
	Entries []window.Entry
}

// CellPayload is one cell share in flight: the share's queries and the
// cell's window ring entries, so sliding-window state travels with the
// queries exactly as it does between in-process workers. Subs carries
// per-subscription held entries for whole-query relocations (global
// repartition), which may span cells the payload does not.
type CellPayload struct {
	Cell    int
	Queries []*model.Query
	Ring    []window.Entry
	Subs    []SubEntries
}

// CellShare answers an ExtractCells. Deltas carries the top-k
// membership updates a removing extraction produced (subscriptions
// dropping their released entries), so the coordinator's board applies
// them in the same control round instead of racing the data stream;
// Epoch tags them with the session's fencing epoch like every delta
// batch the node emits.
type CellShare struct {
	Seq    uint64
	Epoch  uint64
	Cells  []CellPayload
	Deltas []window.Delta
}

// InstallCells hands a worker peer cell shares to index and query ids
// to delete from shares installed earlier (reconciling deletions that
// reached the migration source between copy and routing flip).
type InstallCells struct {
	Seq     uint64
	Cells   []CellPayload
	Deletes []uint64
}

// InstallAck acknowledges an InstallCells: the share is indexed and
// every op batch sent after the request will be matched against it.
// Deltas carries the top-k membership updates the install produced
// (adoptions refilling heaps, deletions releasing them), epoch-tagged
// like a CellShare's.
type InstallAck struct {
	Seq    uint64
	Epoch  uint64
	Deltas []window.Delta
}

// WindowDeltaBatch is one batch of sliding-window top-k membership
// deltas (worker → coordinator). Epoch is the session's fencing epoch
// (Hello.Epoch): the coordinator's board drops batches below the
// highest epoch it has seen from the slot, which is what keeps TopKSet
// exact across crash replay — a recovering session re-produces the
// window under a higher epoch, and the board retracts the old session's
// contributions wholesale instead of double-counting them.
type WindowDeltaBatch struct {
	Epoch  uint64
	Deltas []window.Delta
}

// AdvanceWindow asks a worker peer to expire its sliding windows up to
// Now (the coordinator's clock, the single clock domain window expiry
// runs in cluster-wide). Ops is the multi-stream session barrier (see
// Drain.Ops): the advance observes every op batch sent before it.
type AdvanceWindow struct {
	Seq uint64
	Ops int64
	Now time.Time
}

// AdvanceAck answers an AdvanceWindow with the expiry's membership
// deltas, tagged with the session's fencing epoch like a
// WindowDeltaBatch.
type AdvanceAck struct {
	Seq    uint64
	Epoch  uint64
	Deltas []window.Delta
}

// ResetWindow starts a fresh per-cell load window (no acknowledgement).
type ResetWindow struct{}

// Goodbye ends the sender's half of the conversation.
type Goodbye struct{}

// Ping is a liveness beacon (worker → coordinator); see TypePing.
type Ping struct{}

// EncodePayload gob-encodes v as a self-contained frame payload.
func EncodePayload(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("wire: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodePayload decodes a frame payload produced by EncodePayload into v
// (a pointer to the frame type's struct).
func DecodePayload(payload []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return fmt.Errorf("wire: decoding %T: %w", v, err)
	}
	return nil
}

// CheckHandshake validates a received Hello or Welcome's protocol fields.
func CheckHandshake(magic string, version int) error {
	if magic != Magic {
		return fmt.Errorf("wire: bad magic %q (want %q)", magic, Magic)
	}
	if version != Version {
		return fmt.Errorf("wire: protocol version %d (want %d)", version, Version)
	}
	return nil
}
