package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by client operations after the connection ended.
var ErrClosed = errors.New("wire: connection closed")

// ErrWorkerDown marks a connection failure that means the worker peer is
// gone — a heartbeat deadline expired, the TCP stream broke mid-frame,
// or the stream ended without the Goodbye that a graceful shutdown
// always sends (a kill -9 often yields a clean FIN at a frame boundary,
// which would otherwise masquerade as an orderly end). Callers detect it
// with errors.Is and start recovery instead of treating the failure as
// fatal.
var ErrWorkerDown = errors.New("wire: worker down")

// WorkerClient is the coordinator's half of a dispatcher→worker hop: it
// streams operation batches to a remote worker node and receives the
// worker's match batches and control acknowledgements on the same
// connection. Safe for one sender goroutine (SendOps), one receiver
// goroutine (RecvMatches) and concurrent control callers (Drain).
type WorkerClient struct {
	conn *Conn
	// addr is the address this client dialled — recovery keeps it to
	// redial the same node after a crash (see Addr()).
	addr string
	// hello is the handshake this client opened the connection with —
	// the geometry the peer pinned its index to (see Hello()).
	hello Hello
	// matches buffers decoded match batches between the read loop and
	// RecvMatches; bounded so a slow consumer backpressures the wire.
	matches chan MatchBatch
	acks    chan DrainAck
	// Control-round reply channels (buffered; stale replies are drained
	// at round start and skipped by seq matching).
	stats       chan StatsReply
	cellStats   chan CellStatsReply
	shares      chan CellShare
	installAcks chan InstallAck

	drainMu sync.Mutex
	// ctrlMu serialises the migration/stats control rounds (Stats,
	// CellStats, ExtractCells, InstallCells); Drain keeps its own mutex
	// and reply channel so a Flush barrier can interleave with an
	// adjustment in flight.
	ctrlMu sync.Mutex
	seq    atomic.Uint64

	readDone chan struct{}
	readErr  error // valid after readDone closes
	// closed unblocks the read loop's channel send when the consumer is
	// gone (Close called mid-stream, e.g. a cancelled run).
	closed    chan struct{}
	closeOnce sync.Once

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialWorker connects to a worker node with backoff and performs the
// handshake. The returned client's read loop is already running. When
// hello.HeartbeatMillis is set the connection's read deadline is pinned
// to four heartbeat intervals, so a silently dead peer surfaces as
// ErrWorkerDown within that window.
func DialWorker(addr string, hello Hello, b Backoff) (*WorkerClient, error) {
	conn, err := handshake(addr, hello, b, RoleWorker)
	if err != nil {
		return nil, err
	}
	hello.Magic, hello.Version = Magic, Version
	if hello.Role == "" {
		hello.Role = RoleCoordinator
	}
	if hello.HeartbeatMillis > 0 {
		conn.ReadTimeout = 4 * time.Duration(hello.HeartbeatMillis) * time.Millisecond
	}
	// Reply channels get headroom beyond the single round in flight: a
	// late reply from a timed-out round can land between a new round's
	// drainStale and its own reply, and with capacity 1 the read loop's
	// non-blocking send would drop the *genuine* reply behind it.
	// awaitReply skips stale seqs, so extra buffered replies are benign.
	w := &WorkerClient{
		conn:        conn,
		addr:        addr,
		hello:       hello,
		matches:     make(chan MatchBatch, 128),
		acks:        make(chan DrainAck, 4),
		stats:       make(chan StatsReply, 4),
		cellStats:   make(chan CellStatsReply, 4),
		shares:      make(chan CellShare, 4),
		installAcks: make(chan InstallAck, 4),
		readDone:    make(chan struct{}),
		closed:      make(chan struct{}),
	}
	go w.readLoop()
	return w, nil
}

// Hello returns the handshake this client dialled with — the topology
// shape (Workers), grid geometry and batch size the peer indexed
// against. The coordinator validates it against the final Config so a
// mutation between dial and New cannot silently disagree with the node.
func (w *WorkerClient) Hello() Hello { return w.hello }

// Addr returns the address this client dialled, so a recovery layer can
// redial the same worker node after a connection failure.
func (w *WorkerClient) Addr() string { return w.addr }

// handshake dials addr and performs the Hello/Welcome round, expecting
// the peer to identify as wantRole. Transport failures during the round
// retry under the same backoff budget as the connect itself: a crashed
// peer's port can accept a connect and reset the first write (or close
// before the welcome) while its replacement process is still binding,
// and a recovery redial must ride that window out rather than give up.
// Protocol refusals — wrong frame, wrong magic/version, wrong role —
// stay fatal; retrying a peer that answered wrongly cannot help.
func handshake(addr string, hello Hello, b Backoff, wantRole string) (*Conn, error) {
	hello.Magic = Magic
	hello.Version = Version
	if hello.Role == "" {
		hello.Role = RoleCoordinator
	}
	b = b.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), b.MaxElapsed)
	defer cancel()
	delay := b.Base
	var lastErr error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			jitter := time.Duration(rand.Int63n(int64(delay)/2+1)) - delay/4
			select {
			case <-time.After(delay + jitter):
			case <-ctx.Done():
				return nil, fmt.Errorf("wire: handshake with %s: %w (deadline after %d attempts)", addr, lastErr, i)
			}
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		conn, err := dialOnce(ctx, addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, fmt.Errorf("wire: dialing %s: %w (deadline after %d attempts)", addr, lastErr, i+1)
			}
			continue
		}
		fatal, err := helloRound(conn, addr, hello, wantRole)
		if err == nil {
			return conn, nil
		}
		conn.Close()
		lastErr = err
		if fatal {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("wire: handshake with %s: %w (deadline after %d attempts)", addr, lastErr, i+1)
		}
	}
	return nil, fmt.Errorf("wire: handshake with %s: %w (after %d attempts)", addr, lastErr, b.Attempts)
}

// helloRound performs one Hello/Welcome exchange on an established
// connection. fatal=false marks transport failures the dial loop should
// retry; fatal=true marks protocol refusals. The connection is the
// caller's to close on error.
func helloRound(conn *Conn, addr string, hello Hello, wantRole string) (fatal bool, err error) {
	if err := conn.Send(TypeHello, hello); err != nil {
		return false, fmt.Errorf("wire: sending hello to %s: %w", addr, err)
	}
	typ, payload, err := conn.RecvTimeout(DefaultHandshakeTimeout)
	if err != nil {
		return false, fmt.Errorf("wire: awaiting welcome from %s: %w", addr, err)
	}
	if typ != TypeWelcome {
		return true, fmt.Errorf("wire: %s answered hello with frame type %d", addr, typ)
	}
	var wel Welcome
	if err := DecodePayload(payload, &wel); err != nil {
		return true, err
	}
	if err := CheckHandshake(wel.Magic, wel.Version); err != nil {
		return true, err
	}
	if wel.Role != wantRole {
		return true, fmt.Errorf("wire: %s identifies as %q, want %q", addr, wel.Role, wantRole)
	}
	return false, nil
}

func (w *WorkerClient) readLoop() {
	defer close(w.readDone)
	defer close(w.matches)
	sawGoodbye := false
	for {
		typ, payload, err := w.conn.Recv()
		if err != nil {
			if err == io.EOF {
				if !sawGoodbye {
					// A clean FIN without a Goodbye is a crash, not a
					// graceful end (kill -9 at a frame boundary).
					w.readErr = fmt.Errorf("%w: stream ended without goodbye", ErrWorkerDown)
				}
				return
			}
			select {
			case <-w.closed:
				// Close() tore the connection down locally; the resulting
				// read error is ours, not the peer's.
				w.readErr = err
			default:
				w.readErr = fmt.Errorf("%w: %v", ErrWorkerDown, err)
			}
			return
		}
		switch typ {
		case TypeMatchBatch:
			var mb MatchBatch
			if err := DecodePayload(payload, &mb); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.matches <- mb:
			case <-w.closed:
				// The consumer is gone (Close mid-stream, e.g. a
				// cancelled run): stop rather than block forever on the
				// full channel.
				return
			}
		case TypeDrainAck:
			var ack DrainAck
			if err := DecodePayload(payload, &ack); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.acks <- ack:
			default: // unsolicited ack; drop
			}
		case TypeStatsReply:
			var sr StatsReply
			if err := DecodePayload(payload, &sr); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.stats <- sr:
			default:
			}
		case TypeCellStatsReply:
			var cr CellStatsReply
			if err := DecodePayload(payload, &cr); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.cellStats <- cr:
			default:
			}
		case TypeCellShare:
			var cs CellShare
			if err := DecodePayload(payload, &cs); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.shares <- cs:
			default:
			}
		case TypeInstallAck:
			var ia InstallAck
			if err := DecodePayload(payload, &ia); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.installAcks <- ia:
			default:
			}
		case TypePing:
			// Liveness beacon; receiving it already reset the read
			// deadline, nothing else to do.
		case TypeGoodbye:
			sawGoodbye = true
			return
		default:
			// Unknown control frames are skipped: frames are
			// self-delimiting, so forward compatibility is free.
		}
	}
}

// SendOps transfers one operation batch — one frame, flushed. A send
// failure wraps ErrWorkerDown: a broken write pipe means the peer (or
// the path to it) is gone.
func (w *WorkerClient) SendOps(b OpBatch) error {
	if err := w.conn.Send(TypeOpBatch, b); err != nil {
		return fmt.Errorf("%w: sending ops: %v", ErrWorkerDown, err)
	}
	return nil
}

// RecvMatches blocks for the worker's next match batch. It returns
// io.EOF after the worker's side of the stream ends cleanly, or the
// connection's failure otherwise.
func (w *WorkerClient) RecvMatches() (MatchBatch, error) {
	mb, ok := <-w.matches
	if !ok {
		if w.readErr != nil {
			return MatchBatch{}, w.readErr
		}
		return MatchBatch{}, io.EOF
	}
	return mb, nil
}

// Drain runs the end-to-end drain barrier round: every operation batch
// sent before the call is processed by the worker before the returned
// acknowledgement, whose Emitted field is the worker's cumulative
// emitted-match count.
func (w *WorkerClient) Drain() (DrainAck, error) {
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	drainStale(w.acks)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeDrain, Drain{Seq: seq}); err != nil {
		return DrainAck{}, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case ack := <-w.acks:
			if ack.Seq == seq {
				return ack, nil
			}
			// A stale ack from an abandoned round; keep waiting.
		case <-w.readDone:
			if w.readErr != nil {
				return DrainAck{}, w.readErr
			}
			return DrainAck{}, ErrClosed
		case <-timer.C:
			return DrainAck{}, fmt.Errorf("wire: drain barrier timed out after %v", DefaultControlTimeout)
		}
	}
}

// SendFence forwards a routing-epoch advance (informational).
func (w *WorkerClient) SendFence(epoch uint64) error {
	return w.conn.Send(TypeFence, Fence{Epoch: epoch})
}

// ResetWindow starts a fresh per-cell load window on the worker
// (fire-and-forget; FIFO ordering covers the next CellStats call).
func (w *WorkerClient) ResetWindow() error {
	return w.conn.Send(TypeResetWindow, ResetWindow{})
}

// drainStale empties a capacity-1 reply channel of any reply left over
// from an abandoned (timed-out) round. Without this, a late stale reply
// parked in the channel would make the read loop's non-blocking send
// drop the *next* round's reply — turning one timeout into a cascade of
// timeouts on a healthy connection. Callers hold the round mutex.
func drainStale[T any](ch <-chan T) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// awaitReply waits for the seq-matched reply on ch, failing on read-loop
// termination or the control timeout. Stale replies from abandoned
// rounds are skipped.
func awaitReply[T any](w *WorkerClient, ch <-chan T, seqOf func(T) uint64, seq uint64) (T, error) {
	var zero T
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			if seqOf(r) == seq {
				return r, nil
			}
		case <-w.readDone:
			if w.readErr != nil {
				return zero, w.readErr
			}
			return zero, ErrClosed
		case <-timer.C:
			return zero, fmt.Errorf("wire: control round timed out after %v", DefaultControlTimeout)
		}
	}
}

// Stats polls the worker's counters — emitted matches, live queries,
// and the cumulative per-kind processed-op counts the adjustment
// controller's load detector differences per interval. FIFO framing
// means the reply covers every op batch sent before the call.
func (w *WorkerClient) Stats() (StatsReply, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.stats)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeStatsReq, StatsReq{Seq: seq}); err != nil {
		return StatsReply{}, err
	}
	return awaitReply(w, w.stats, func(r StatsReply) uint64 { return r.Seq }, seq)
}

// CellStats fetches the worker's per-cell planner statistics (Phase
// I/II migration input).
func (w *WorkerClient) CellStats() ([]CellStat, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.cellStats)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeCellStatsReq, CellStatsReq{Seq: seq}); err != nil {
		return nil, err
	}
	r, err := awaitReply(w, w.cellStats, func(r CellStatsReply) uint64 { return r.Seq }, seq)
	if err != nil {
		return nil, err
	}
	return r.Cells, nil
}

// ExtractCells fetches the named cell shares — copied with remove
// false, extracted from the peer's index with remove true. The reply is
// FIFO-ordered behind every op batch sent before the call, which is
// exactly the migration barrier: once the coordinator has forwarded all
// pre-flip traffic, an extraction round cannot miss any of it.
func (w *WorkerClient) ExtractCells(cells []CellSpec, remove bool) ([]CellPayload, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.shares)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeExtractCells, ExtractCells{Seq: seq, Cells: cells, Remove: remove}); err != nil {
		return nil, err
	}
	r, err := awaitReply(w, w.shares, func(r CellShare) uint64 { return r.Seq }, seq)
	if err != nil {
		return nil, err
	}
	return r.Cells, nil
}

// InstallCells hands the worker cell shares to index and query ids to
// delete, returning the serialised payload size (the migration's
// measured transfer bytes) once the peer acknowledges. Ops sent after
// InstallCells returns are matched against the installed share.
func (w *WorkerClient) InstallCells(cells []CellPayload, deletes []uint64) (int64, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.installAcks)
	seq := w.seq.Add(1)
	req := InstallCells{Seq: seq, Cells: cells, Deletes: deletes}
	payload, err := EncodePayload(req)
	if err != nil {
		return 0, err
	}
	if err := w.conn.SendPayload(TypeInstallCells, payload); err != nil {
		return 0, err
	}
	if _, err := awaitReply(w, w.installAcks, func(r InstallAck) uint64 { return r.Seq }, seq); err != nil {
		return 0, err
	}
	return int64(len(payload)), nil
}

// CloseSend ends the coordinator's half of the stream: the worker
// finishes writing pending matches and closes, which surfaces as io.EOF
// from RecvMatches.
func (w *WorkerClient) CloseSend() error {
	w.goodbyeOnce.Do(func() {
		w.goodbyeErr = w.conn.Send(TypeGoodbye, Goodbye{})
	})
	return w.goodbyeErr
}

// Close tears the connection down, unblocking every pending call —
// including a read loop parked on the match channel of a departed
// consumer.
func (w *WorkerClient) Close() error {
	w.closeOnce.Do(func() { close(w.closed) })
	return w.conn.Close()
}

// MergerClient is the coordinator's half of a hop to a remote merger
// node: it forwards match batches and polls delivery counters.
type MergerClient struct {
	conn    *Conn
	replies chan StatsReply

	statsMu sync.Mutex
	seq     atomic.Uint64

	readDone chan struct{}
	readErr  error

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialMerger connects to a merger node with backoff and performs the
// handshake.
func DialMerger(addr string, hello Hello, b Backoff) (*MergerClient, error) {
	conn, err := handshake(addr, hello, b, RoleMerger)
	if err != nil {
		return nil, err
	}
	m := &MergerClient{
		conn:     conn,
		replies:  make(chan StatsReply, 4),
		readDone: make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

func (m *MergerClient) readLoop() {
	defer close(m.readDone)
	for {
		typ, payload, err := m.conn.Recv()
		if err != nil {
			if err != io.EOF {
				m.readErr = err
			}
			return
		}
		switch typ {
		case TypeStatsReply:
			var sr StatsReply
			if err := DecodePayload(payload, &sr); err != nil {
				m.readErr = err
				return
			}
			select {
			case m.replies <- sr:
			default:
			}
		case TypeGoodbye:
			return
		}
	}
}

// SendMatches forwards one match batch — one frame, flushed.
func (m *MergerClient) SendMatches(b MatchBatch) error {
	return m.conn.Send(TypeMatchBatch, b)
}

// Counts polls the merger's cumulative delivered/duplicate counters.
// Frames are FIFO, so the reply covers every batch sent before the call.
func (m *MergerClient) Counts() (delivered, duplicates int64, err error) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	drainStale(m.replies)
	seq := m.seq.Add(1)
	if err := m.conn.Send(TypeStatsReq, StatsReq{Seq: seq}); err != nil {
		return 0, 0, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case sr := <-m.replies:
			if sr.Seq == seq {
				return sr.Delivered, sr.Duplicates, nil
			}
		case <-m.readDone:
			if m.readErr != nil {
				return 0, 0, m.readErr
			}
			return 0, 0, ErrClosed
		case <-timer.C:
			return 0, 0, fmt.Errorf("wire: stats round timed out after %v", DefaultControlTimeout)
		}
	}
}

// CloseSend ends the coordinator's half of the stream.
func (m *MergerClient) CloseSend() error {
	m.goodbyeOnce.Do(func() {
		m.goodbyeErr = m.conn.Send(TypeGoodbye, Goodbye{})
	})
	return m.goodbyeErr
}

// Close tears the connection down.
func (m *MergerClient) Close() error { return m.conn.Close() }

// Done reports a channel closed when the client's read loop ends (the
// peer closed or failed); Err returns the failure, nil on clean EOF.
func (m *MergerClient) Done() <-chan struct{} { return m.readDone }

// Err reports the read loop's terminal error (nil until Done, and nil
// after a clean EOF).
func (m *MergerClient) Err() error { return m.readErr }
