package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"ps2stream/internal/window"
)

// ErrClosed is returned by client operations after the connection ended.
var ErrClosed = errors.New("wire: connection closed")

// ErrWorkerDown marks a connection failure that means the worker peer is
// gone — a heartbeat deadline expired, the TCP stream broke mid-frame,
// or the stream ended without the Goodbye that a graceful shutdown
// always sends (a kill -9 often yields a clean FIN at a frame boundary,
// which would otherwise masquerade as an orderly end). Callers detect it
// with errors.Is and start recovery instead of treating the failure as
// fatal.
var ErrWorkerDown = errors.New("wire: worker down")

// MaxStreams caps the data connections per worker hop; beyond this the
// per-connection overhead outweighs the parallelism.
const MaxStreams = 16

// WorkerClient is the coordinator's half of a dispatcher→worker hop: it
// streams operation batches to a remote worker node and receives the
// worker's match batches and control acknowledgements.
//
// Against a negotiation-aware node the hop is a multi-stream session:
// one control connection (handshake, drains, stats, migration, fences,
// heartbeats) plus Streams data connections, each with a dedicated
// writer goroutine so encode and socket I/O pipeline instead of blocking
// the sender. Op batches round-robin whole across the data connections,
// each stamped with its position in the session's send order; the node
// reassembles them into exactly that order before processing, so the
// worker observes the same total op order a single connection (or an
// in-process channel) would deliver. Hot frames ride the negotiated
// binary codec.
//
// Against an old node the client degrades to the legacy single
// connection with synchronous gob sends, byte-compatible with the
// pre-negotiation protocol.
//
// Safe for one sender goroutine (SendOps), one receiver goroutine
// (RecvMatches) and concurrent control callers (Drain, Stats, ...).
type WorkerClient struct {
	conn *Conn   // control connection (the only connection in legacy mode)
	data []*Conn // data connections (empty in legacy mode)
	// writers pipeline pre-encoded frames onto the data connections.
	writers []*FrameWriter
	// codec/streams are the negotiated session parameters.
	codec   int
	streams int
	// addr is the address this client dialled — recovery keeps it to
	// redial the same node after a crash (see Addr()).
	addr string
	// hello is the handshake this client opened the connection with —
	// the geometry the peer pinned its index to (see Hello()).
	hello Hello
	// matches buffers decoded match batches between the read loops and
	// RecvMatches; bounded so a slow consumer backpressures the wire.
	matches chan MatchBatch
	acks    chan DrainAck
	// Control-round reply channels (buffered; stale replies are drained
	// at round start and skipped by seq matching).
	stats       chan StatsReply
	cellStats   chan CellStatsReply
	shares      chan CellShare
	installAcks chan InstallAck
	advances    chan AdvanceAck

	// deltaHandler consumes the worker's spontaneous top-k window delta
	// batches; see SetDeltaHandler.
	dhMu         sync.Mutex
	deltaHandler func(epoch uint64, ds []window.Delta)

	drainMu sync.Mutex
	// ctrlMu serialises the migration/stats control rounds (Stats,
	// CellStats, ExtractCells, InstallCells); Drain keeps its own mutex
	// and reply channel so a Flush barrier can interleave with an
	// adjustment in flight.
	ctrlMu sync.Mutex
	seq    atomic.Uint64

	// sendMu serialises SendOps' batch numbering (sends are normally
	// single-goroutine; the lock makes replay hand-offs safe too).
	sendMu sync.Mutex
	// batchSeq numbers op batches in send order (guarded by sendMu); the
	// node reassembles concurrently-arriving batches back into this
	// order, so multi-stream transport preserves the total op order.
	batchSeq uint64
	// sentOps counts ops handed to the session — the count the Ops
	// barrier fields carry, replacing cross-connection FIFO.
	sentOps atomic.Int64
	// recvd counts match envelopes received this session; Drain waits
	// for it to reach the ack's Emitted so the old "matches arrive
	// before the ack" FIFO guarantee holds on multi-stream sessions too.
	recvd atomic.Int64
	// recvdDeltas counts top-k window deltas received in spontaneous
	// WindowDeltaBatch frames (not the ack-carried deltas of control
	// rounds, which arrive synchronously); Drain waits for it to reach
	// the ack's Deltas so a drain barrier also covers the delta stream.
	recvdDeltas atomic.Int64

	readDone chan struct{}
	readErr  error // valid after readDone closes

	// failMu/failErr record the first data-connection failure; fail()
	// tears every connection down so all loops converge on it.
	failMu  sync.Mutex
	failErr error

	// closed unblocks the read loops' channel sends when the consumer is
	// gone (Close called mid-stream, e.g. a cancelled run).
	closed    chan struct{}
	closeOnce sync.Once

	dataWG sync.WaitGroup

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialWorker connects to a worker node with backoff and performs the
// handshake, negotiating the binary codec and a multi-stream session
// when the node supports them (hello.Streams data connections; 0 asks
// for one per dispatcher-sized default, i.e. a single stream). The
// returned client's read loops are already running. When
// hello.HeartbeatMillis is set the control connection's read deadline is
// pinned to four heartbeat intervals, so a silently dead peer surfaces
// as ErrWorkerDown within that window.
func DialWorker(addr string, hello Hello, b Backoff) (*WorkerClient, error) {
	hello.Magic, hello.Version = Magic, Version
	if hello.Role == "" {
		hello.Role = RoleCoordinator
	}
	hello.Codec = CodecBinary
	if hello.Streams <= 0 {
		hello.Streams = 1
	}
	if hello.Streams > MaxStreams {
		hello.Streams = MaxStreams
	}
	hello.Stream = 0
	for hello.SessionID == 0 {
		hello.SessionID = rand.Uint64()
	}
	conn, wel, err := handshake(addr, hello, b, RoleWorker)
	if err != nil {
		return nil, err
	}
	if wel.Streams > hello.Streams || (wel.Streams > 0 && wel.Codec != CodecBinary) {
		conn.Close()
		return nil, fmt.Errorf("wire: %s granted invalid session (codec %d, %d streams for %d requested)",
			addr, wel.Codec, wel.Streams, hello.Streams)
	}
	if hello.HeartbeatMillis > 0 {
		conn.ReadTimeout = 4 * time.Duration(hello.HeartbeatMillis) * time.Millisecond
	}
	// Reply channels get headroom beyond the single round in flight: a
	// late reply from a timed-out round can land between a new round's
	// drainStale and its own reply, and with capacity 1 the read loop's
	// non-blocking send would drop the *genuine* reply behind it.
	// awaitReply skips stale seqs, so extra buffered replies are benign.
	w := &WorkerClient{
		conn:        conn,
		codec:       wel.Codec,
		streams:     wel.Streams,
		addr:        addr,
		hello:       hello,
		matches:     make(chan MatchBatch, 128),
		acks:        make(chan DrainAck, 4),
		stats:       make(chan StatsReply, 4),
		cellStats:   make(chan CellStatsReply, 4),
		shares:      make(chan CellShare, 4),
		installAcks: make(chan InstallAck, 4),
		advances:    make(chan AdvanceAck, 4),
		readDone:    make(chan struct{}),
		closed:      make(chan struct{}),
	}
	// Attach the granted data connections before any loop starts, so a
	// partial dial can tear down cleanly.
	for i := 1; i <= w.streams; i++ {
		dh := hello
		dh.Stream = i
		dc, _, err := handshake(addr, dh, b, RoleWorker)
		if err != nil {
			conn.Close()
			for _, c := range w.data {
				c.Close()
			}
			return nil, fmt.Errorf("wire: attaching stream %d/%d to %s: %w", i, w.streams, addr, err)
		}
		w.data = append(w.data, dc)
	}
	for _, dc := range w.data {
		w.writers = append(w.writers, NewFrameWriter(dc, 0))
	}
	go w.readLoop()
	if len(w.data) > 0 {
		w.dataWG.Add(len(w.data))
		for _, dc := range w.data {
			go w.dataLoop(dc)
		}
		go func() {
			w.dataWG.Wait()
			close(w.matches)
		}()
	}
	return w, nil
}

// Hello returns the handshake this client dialled with — the topology
// shape (Workers), grid geometry and batch size the peer indexed
// against. The coordinator validates it against the final Config so a
// mutation between dial and New cannot silently disagree with the node.
func (w *WorkerClient) Hello() Hello { return w.hello }

// Addr returns the address this client dialled, so a recovery layer can
// redial the same worker node after a connection failure.
func (w *WorkerClient) Addr() string { return w.addr }

// Codec reports the negotiated data-plane codec.
func (w *WorkerClient) Codec() int { return w.codec }

// Streams reports the granted data-connection count (0 = legacy single
// connection).
func (w *WorkerClient) Streams() int { return w.streams }

// handshake dials addr and performs the Hello/Welcome round, expecting
// the peer to identify as wantRole. Transport failures during the round
// retry under the same backoff budget as the connect itself: a crashed
// peer's port can accept a connect and reset the first write (or close
// before the welcome) while its replacement process is still binding,
// and a recovery redial must ride that window out rather than give up.
// Protocol refusals — wrong frame, wrong magic/version, wrong role —
// stay fatal; retrying a peer that answered wrongly cannot help.
func handshake(addr string, hello Hello, b Backoff, wantRole string) (*Conn, Welcome, error) {
	hello.Magic = Magic
	hello.Version = Version
	if hello.Role == "" {
		hello.Role = RoleCoordinator
	}
	b = b.withDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), b.MaxElapsed)
	defer cancel()
	delay := b.Base
	var lastErr error
	for i := 0; i < b.Attempts; i++ {
		if i > 0 {
			jitter := time.Duration(rand.Int63n(int64(delay)/2+1)) - delay/4
			select {
			case <-time.After(delay + jitter):
			case <-ctx.Done():
				return nil, Welcome{}, fmt.Errorf("wire: handshake with %s: %w (deadline after %d attempts)", addr, lastErr, i)
			}
			if delay *= 2; delay > b.Max {
				delay = b.Max
			}
		}
		conn, err := dialOnce(ctx, addr)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, Welcome{}, fmt.Errorf("wire: dialing %s: %w (deadline after %d attempts)", addr, lastErr, i+1)
			}
			continue
		}
		wel, fatal, err := helloRound(conn, addr, hello, wantRole)
		if err == nil {
			return conn, wel, nil
		}
		conn.Close()
		lastErr = err
		if fatal {
			return nil, Welcome{}, err
		}
		if ctx.Err() != nil {
			return nil, Welcome{}, fmt.Errorf("wire: handshake with %s: %w (deadline after %d attempts)", addr, lastErr, i+1)
		}
	}
	return nil, Welcome{}, fmt.Errorf("wire: handshake with %s: %w (after %d attempts)", addr, lastErr, b.Attempts)
}

// helloRound performs one Hello/Welcome exchange on an established
// connection. fatal=false marks transport failures the dial loop should
// retry; fatal=true marks protocol refusals. The connection is the
// caller's to close on error.
func helloRound(conn *Conn, addr string, hello Hello, wantRole string) (wel Welcome, fatal bool, err error) {
	if err := conn.Send(TypeHello, hello); err != nil {
		return Welcome{}, false, fmt.Errorf("wire: sending hello to %s: %w", addr, err)
	}
	typ, payload, err := conn.RecvTimeout(DefaultHandshakeTimeout)
	if err != nil {
		return Welcome{}, false, fmt.Errorf("wire: awaiting welcome from %s: %w", addr, err)
	}
	if typ != TypeWelcome {
		return Welcome{}, true, fmt.Errorf("wire: %s answered hello with frame type %d", addr, typ)
	}
	if err := DecodePayload(payload, &wel); err != nil {
		return Welcome{}, true, err
	}
	if err := CheckHandshake(wel.Magic, wel.Version); err != nil {
		return Welcome{}, true, err
	}
	if wel.Role != wantRole {
		return Welcome{}, true, fmt.Errorf("wire: %s identifies as %q, want %q", addr, wel.Role, wantRole)
	}
	return wel, false, nil
}

// fail records the session's first failure and tears every connection
// down, so all read loops converge on it.
func (w *WorkerClient) fail(err error) {
	w.failMu.Lock()
	if w.failErr == nil {
		w.failErr = err
	}
	w.failMu.Unlock()
	w.conn.Close()
	for _, c := range w.data {
		c.Close()
	}
}

func (w *WorkerClient) sessionErr() error {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return w.failErr
}

// classifyReadErr turns a read-loop error into the session's terminal
// error, preferring an already-recorded data-connection failure over the
// teardown noise it causes elsewhere.
func (w *WorkerClient) classifyReadErr(err error, sawGoodbye bool) error {
	if ferr := w.sessionErr(); ferr != nil {
		return ferr
	}
	if err == io.EOF {
		if sawGoodbye {
			return nil
		}
		// A clean FIN without a Goodbye is a crash, not a graceful end
		// (kill -9 at a frame boundary).
		return fmt.Errorf("%w: stream ended without goodbye", ErrWorkerDown)
	}
	select {
	case <-w.closed:
		// Close() tore the connection down locally; the resulting read
		// error is ours, not the peer's.
		return err
	default:
		return fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
}

// readLoop serves the control connection (the only connection in legacy
// mode, where it also carries the match stream).
func (w *WorkerClient) readLoop() {
	defer close(w.readDone)
	if w.streams == 0 {
		defer close(w.matches)
	}
	sawGoodbye := false
	for {
		typ, payload, err := w.conn.Recv()
		if err != nil {
			w.readErr = w.classifyReadErr(err, sawGoodbye)
			if w.readErr != nil {
				// Data connections of a failed session are dead weight;
				// tear them down so their loops end too.
				w.fail(w.readErr)
			}
			return
		}
		switch typ {
		case TypeMatchBatch:
			if !w.deliverMatches(payload) {
				return
			}
		case TypeDrainAck:
			var ack DrainAck
			if w.codec == CodecBinary {
				ack, err = DecodeBinDrainAck(payload)
			} else {
				err = DecodePayload(payload, &ack)
			}
			if err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.acks <- ack:
			default: // unsolicited ack; drop
			}
		case TypeStatsReply:
			var sr StatsReply
			if err := DecodePayload(payload, &sr); err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.stats <- sr:
			default:
			}
		case TypeCellStatsReply:
			var cr CellStatsReply
			if err := DecodePayload(payload, &cr); err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.cellStats <- cr:
			default:
			}
		case TypeCellShare:
			var cs CellShare
			if err := DecodePayload(payload, &cs); err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.shares <- cs:
			default:
			}
		case TypeInstallAck:
			var ia InstallAck
			if err := DecodePayload(payload, &ia); err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.installAcks <- ia:
			default:
			}
		case TypeAdvanceAck:
			var aa AdvanceAck
			if w.codec == CodecBinary {
				aa, err = DecodeBinAdvanceAck(payload)
			} else {
				err = DecodePayload(payload, &aa)
			}
			if err != nil {
				w.readErr = err
				w.fail(err)
				return
			}
			select {
			case w.advances <- aa:
			default:
			}
		case TypeWindowDeltaBatch:
			// Legacy sessions carry the delta stream on the control
			// connection (FIFO before any DrainAck that counts them).
			if !w.deliverDeltas(payload) {
				return
			}
		case TypePing:
			// Liveness beacon; receiving it already reset the read
			// deadline, nothing else to do.
		case TypeGoodbye:
			sawGoodbye = true
			return
		default:
			// Unknown control frames are skipped: frames are
			// self-delimiting, so forward compatibility is free.
		}
	}
}

// dataLoop serves one data connection of a multi-stream session: the
// worker's match batches for the ops this stream carried.
func (w *WorkerClient) dataLoop(c *Conn) {
	defer w.dataWG.Done()
	for {
		typ, payload, err := c.Recv()
		if err != nil {
			if cerr := w.classifyReadErr(err, false); cerr != nil {
				w.fail(cerr)
			}
			return
		}
		switch typ {
		case TypeMatchBatch:
			if !w.deliverMatches(payload) {
				return
			}
		case TypeWindowDeltaBatch:
			if !w.deliverDeltas(payload) {
				return
			}
		case TypePing:
		case TypeGoodbye:
			return
		}
	}
}

// deliverMatches decodes one match batch by the session codec and hands
// it to the consumer, reporting false when the loop should stop.
func (w *WorkerClient) deliverMatches(payload []byte) bool {
	var mb MatchBatch
	var err error
	if w.codec == CodecBinary {
		mb.Matches, err = DecodeBinMatchBatch(payload, nil)
	} else {
		err = DecodePayload(payload, &mb)
	}
	if err != nil {
		w.readErr = err
		w.fail(err)
		return false
	}
	w.recvd.Add(int64(len(mb.Matches)))
	select {
	case w.matches <- mb:
		return true
	case <-w.closed:
		// The consumer is gone (Close mid-stream, e.g. a cancelled
		// run): stop rather than block forever on the full channel.
		return false
	}
}

// SetDeltaHandler installs the consumer for the worker's spontaneous
// top-k window delta batches. The handler runs on the read loops —
// once per frame, possibly concurrently across data connections — with
// the worker's state epoch so the consumer can fence out replayed or
// pre-crash deltas. Deltas that arrive with no handler installed still
// count toward the drain barrier but are otherwise discarded, so the
// handler must be installed before top-k traffic flows.
func (w *WorkerClient) SetDeltaHandler(h func(epoch uint64, ds []window.Delta)) {
	w.dhMu.Lock()
	w.deltaHandler = h
	w.dhMu.Unlock()
}

// deliverDeltas decodes one spontaneous window delta batch by the
// session codec, hands it to the delta handler, and counts it toward
// the drain barrier — in that order, so a Drain that observed the count
// knows the deltas were already applied.
func (w *WorkerClient) deliverDeltas(payload []byte) bool {
	var ds []window.Delta
	var epoch uint64
	var err error
	if w.codec == CodecBinary {
		ds, epoch, err = DecodeBinWindowDeltaBatch(payload, nil)
	} else {
		var db WindowDeltaBatch
		if err = DecodePayload(payload, &db); err == nil {
			ds, epoch = db.Deltas, db.Epoch
		}
	}
	if err != nil {
		w.readErr = err
		w.fail(err)
		return false
	}
	w.dhMu.Lock()
	h := w.deltaHandler
	w.dhMu.Unlock()
	if h != nil {
		h(epoch, ds)
	}
	w.recvdDeltas.Add(int64(len(ds)))
	return true
}

// SendOps transfers one operation batch. On a multi-stream session the
// whole batch is stamped with its send-order sequence number and queued
// round-robin on one data connection's writer (encode here, socket I/O
// on the writer goroutine); the node reassembles batches by sequence
// before processing, so the worker observes the exact total order this
// client sent — splitting a batch, or routing by key, could reorder a
// query insert against a later object and change the match set. A send
// failure wraps ErrWorkerDown: a broken write pipe means the peer (or
// the path to it) is gone.
func (w *WorkerClient) SendOps(b OpBatch) error {
	if len(b.Ops) == 0 {
		return nil
	}
	if w.streams == 0 {
		if err := w.conn.Send(TypeOpBatch, b); err != nil {
			return fmt.Errorf("%w: sending ops: %v", ErrWorkerDown, err)
		}
		w.sentOps.Add(int64(len(b.Ops)))
		return nil
	}
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	seq := w.batchSeq
	w.batchSeq++
	buf := GetBuf()
	buf.B = AppendOpBatch(buf.B, seq, b.Ops)
	if err := w.writers[seq%uint64(len(w.data))].Send(TypeOpBatch, buf); err != nil {
		return fmt.Errorf("%w: sending ops: %v", ErrWorkerDown, err)
	}
	w.sentOps.Add(int64(len(b.Ops)))
	return nil
}

// barrierOps is the Ops value control rounds carry: the session's
// cumulative sent-op count on a multi-stream session, 0 (FIFO suffices)
// on a legacy connection.
func (w *WorkerClient) barrierOps() int64 {
	if w.streams == 0 {
		return 0
	}
	return w.sentOps.Load()
}

// RecvMatches blocks for the worker's next match batch. It returns
// io.EOF after the worker's side of the stream ends cleanly, or the
// connection's failure otherwise.
func (w *WorkerClient) RecvMatches() (MatchBatch, error) {
	mb, ok := <-w.matches
	if !ok {
		if err := w.sessionErr(); err != nil {
			return MatchBatch{}, err
		}
		if w.streams == 0 && w.readErr != nil {
			return MatchBatch{}, w.readErr
		}
		return MatchBatch{}, io.EOF
	}
	return mb, nil
}

// Drain runs the end-to-end drain barrier round: every operation batch
// sent before the call is processed by the worker before the returned
// acknowledgement, whose Emitted field is the worker's cumulative
// emitted-match count — and every match counted in it has already been
// received by this client (queued for RecvMatches), exactly the
// guarantee single-connection FIFO used to give.
func (w *WorkerClient) Drain() (DrainAck, error) {
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	drainStale(w.acks)
	seq := w.seq.Add(1)
	d := Drain{Seq: seq, Ops: w.barrierOps()}
	if err := w.sendControl(TypeDrain, d); err != nil {
		return DrainAck{}, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case ack := <-w.acks:
			if ack.Seq == seq {
				if err := w.awaitReceived(ack.Emitted, ack.Deltas, timer); err != nil {
					return DrainAck{}, err
				}
				return ack, nil
			}
			// A stale ack from an abandoned round; keep waiting.
		case <-w.readDone:
			if w.readErr != nil {
				return DrainAck{}, w.readErr
			}
			return DrainAck{}, ErrClosed
		case <-timer.C:
			return DrainAck{}, fmt.Errorf("wire: drain barrier timed out after %v", DefaultControlTimeout)
		}
	}
}

// awaitReceived waits for the session's received-match and
// received-delta counts to reach the ack's emitted totals (multi-stream
// sessions only; on one connection FIFO already delivered both streams
// before the ack).
func (w *WorkerClient) awaitReceived(emitted, deltas int64, timer *time.Timer) error {
	if w.streams == 0 {
		return nil
	}
	for w.recvd.Load() < emitted || w.recvdDeltas.Load() < deltas {
		select {
		case <-w.readDone:
			if w.readErr != nil {
				return w.readErr
			}
			return ErrClosed
		case <-timer.C:
			return fmt.Errorf("wire: drain barrier timed out awaiting matches after %v", DefaultControlTimeout)
		case <-time.After(100 * time.Microsecond):
		}
	}
	return nil
}

// sendControl sends a control-plane frame on the control connection,
// using the binary codec for the hot barrier frames when negotiated.
func (w *WorkerClient) sendControl(typ byte, v any) error {
	if w.codec == CodecBinary {
		switch typ {
		case TypeDrain:
			buf := GetBuf()
			buf.B = AppendDrain(buf.B, v.(Drain))
			err := w.conn.SendPayload(typ, buf.B)
			PutBuf(buf)
			return err
		case TypeFence:
			buf := GetBuf()
			buf.B = AppendFence(buf.B, v.(Fence))
			err := w.conn.SendPayload(typ, buf.B)
			PutBuf(buf)
			return err
		case TypeAdvanceWindow:
			buf := GetBuf()
			buf.B = AppendAdvanceWindow(buf.B, v.(AdvanceWindow))
			err := w.conn.SendPayload(typ, buf.B)
			PutBuf(buf)
			return err
		}
	}
	return w.conn.Send(typ, v)
}

// SendFence forwards a routing-epoch advance (informational).
func (w *WorkerClient) SendFence(epoch uint64) error {
	return w.sendControl(TypeFence, Fence{Epoch: epoch})
}

// ResetWindow starts a fresh per-cell load window on the worker
// (fire-and-forget; control-connection FIFO covers the next CellStats
// call).
func (w *WorkerClient) ResetWindow() error {
	return w.conn.Send(TypeResetWindow, ResetWindow{})
}

// drainStale empties a capacity-1 reply channel of any reply left over
// from an abandoned (timed-out) round. Without this, a late stale reply
// parked in the channel would make the read loop's non-blocking send
// drop the *next* round's reply — turning one timeout into a cascade of
// timeouts on a healthy connection. Callers hold the round mutex.
func drainStale[T any](ch <-chan T) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// awaitReply waits for the seq-matched reply on ch, failing on read-loop
// termination or the control timeout. Stale replies from abandoned
// rounds are skipped.
func awaitReply[T any](w *WorkerClient, ch <-chan T, seqOf func(T) uint64, seq uint64) (T, error) {
	var zero T
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case r := <-ch:
			if seqOf(r) == seq {
				return r, nil
			}
		case <-w.readDone:
			if w.readErr != nil {
				return zero, w.readErr
			}
			return zero, ErrClosed
		case <-timer.C:
			return zero, fmt.Errorf("wire: control round timed out after %v", DefaultControlTimeout)
		}
	}
}

// Stats polls the worker's counters — emitted matches, live queries,
// and the cumulative per-kind processed-op counts the adjustment
// controller's load detector differences per interval. The reply covers
// every op batch sent before the call (connection FIFO on a legacy
// session, the Ops barrier on a multi-stream one).
func (w *WorkerClient) Stats() (StatsReply, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.stats)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeStatsReq, StatsReq{Seq: seq, Ops: w.barrierOps()}); err != nil {
		return StatsReply{}, err
	}
	return awaitReply(w, w.stats, func(r StatsReply) uint64 { return r.Seq }, seq)
}

// CellStats fetches the worker's per-cell planner statistics (Phase
// I/II migration input).
func (w *WorkerClient) CellStats() ([]CellStat, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.cellStats)
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeCellStatsReq, CellStatsReq{Seq: seq, Ops: w.barrierOps()}); err != nil {
		return nil, err
	}
	r, err := awaitReply(w, w.cellStats, func(r CellStatsReply) uint64 { return r.Seq }, seq)
	if err != nil {
		return nil, err
	}
	return r.Cells, nil
}

// ExtractCells fetches the named cell shares — copied with remove
// false, extracted from the peer's index with remove true; subs asks
// for the per-subscription top-k window entries too (global
// repartition's carried state). The reply reflects every op batch sent
// before the call (FIFO on one connection, the Ops barrier on a
// multi-stream session), which is exactly the migration barrier: once
// the coordinator has forwarded all pre-flip traffic, an extraction
// round cannot miss any of it. The returned share carries the worker's
// state epoch and, on a removing extraction, the top-k retraction
// deltas for the departed subscriptions.
func (w *WorkerClient) ExtractCells(cells []CellSpec, remove, subs bool) (CellShare, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.shares)
	seq := w.seq.Add(1)
	req := ExtractCells{Seq: seq, Cells: cells, Remove: remove, Ops: w.barrierOps(), Subs: subs}
	if err := w.conn.Send(TypeExtractCells, req); err != nil {
		return CellShare{}, err
	}
	return awaitReply(w, w.shares, func(r CellShare) uint64 { return r.Seq }, seq)
}

// InstallCells hands the worker cell shares to index and query ids to
// delete, returning the worker's acknowledgement (top-k admission
// deltas, tagged with its state epoch) and the serialised payload size
// (the migration's measured transfer bytes). Ops sent after
// InstallCells returns are matched against the installed share.
func (w *WorkerClient) InstallCells(cells []CellPayload, deletes []uint64) (InstallAck, int64, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.installAcks)
	seq := w.seq.Add(1)
	req := InstallCells{Seq: seq, Cells: cells, Deletes: deletes}
	payload, err := EncodePayload(req)
	if err != nil {
		return InstallAck{}, 0, err
	}
	if err := w.conn.SendPayload(TypeInstallCells, payload); err != nil {
		return InstallAck{}, 0, err
	}
	ack, err := awaitReply(w, w.installAcks, func(r InstallAck) uint64 { return r.Seq }, seq)
	if err != nil {
		return InstallAck{}, 0, err
	}
	return ack, int64(len(payload)), nil
}

// AdvanceWindow runs the fenced window-expiry round: the worker first
// processes every op batch sent before the call (the Ops barrier — so
// no in-flight object can slip behind the expiry), advances its sliding
// windows to the coordinator clock now, and acknowledges with the
// eviction deltas tagged with its state epoch. Cluster-wide expiry is
// therefore consistent: every worker expires against the same clock,
// after the same traffic.
func (w *WorkerClient) AdvanceWindow(now time.Time) (AdvanceAck, error) {
	w.ctrlMu.Lock()
	defer w.ctrlMu.Unlock()
	drainStale(w.advances)
	seq := w.seq.Add(1)
	req := AdvanceWindow{Seq: seq, Ops: w.barrierOps(), Now: now}
	if err := w.sendControl(TypeAdvanceWindow, req); err != nil {
		return AdvanceAck{}, err
	}
	return awaitReply(w, w.advances, func(r AdvanceAck) uint64 { return r.Seq }, seq)
}

// CloseSend ends the coordinator's half of the stream: pending op frames
// are flushed, each data connection says Goodbye (the worker flushes its
// remaining matches and answers in kind, which surfaces as io.EOF from
// RecvMatches), and the control connection closes the session.
func (w *WorkerClient) CloseSend() error {
	w.goodbyeOnce.Do(func() {
		for _, fw := range w.writers {
			if err := fw.Drain(); err != nil && w.goodbyeErr == nil {
				w.goodbyeErr = err
			}
		}
		for _, c := range w.data {
			if err := c.Send(TypeGoodbye, Goodbye{}); err != nil && w.goodbyeErr == nil {
				w.goodbyeErr = err
			}
		}
		if err := w.conn.Send(TypeGoodbye, Goodbye{}); err != nil && w.goodbyeErr == nil {
			w.goodbyeErr = err
		}
	})
	return w.goodbyeErr
}

// Close tears the session down, unblocking every pending call —
// including a read loop parked on the match channel of a departed
// consumer.
func (w *WorkerClient) Close() error {
	w.closeOnce.Do(func() { close(w.closed) })
	err := w.conn.Close()
	for _, c := range w.data {
		c.Close()
	}
	for _, fw := range w.writers {
		fw.Stop()
	}
	return err
}

// MergerClient is the coordinator's half of a hop to a remote merger
// node: it forwards match batches and polls delivery counters. Match
// batches are pre-encoded (binary when negotiated) and pipelined
// through a writer goroutine; control frames queue through the same
// writer, so per-connection FIFO — which the counter semantics rely on
// — is preserved.
type MergerClient struct {
	conn    *Conn
	writer  *FrameWriter
	codec   int
	replies chan StatsReply

	statsMu sync.Mutex
	seq     atomic.Uint64

	readDone chan struct{}
	readErr  error

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialMerger connects to a merger node with backoff and performs the
// handshake, negotiating the binary match-batch codec when the node
// supports it.
func DialMerger(addr string, hello Hello, b Backoff) (*MergerClient, error) {
	hello.Codec = CodecBinary
	conn, wel, err := handshake(addr, hello, b, RoleMerger)
	if err != nil {
		return nil, err
	}
	m := &MergerClient{
		conn:     conn,
		writer:   NewFrameWriter(conn, 0),
		codec:    wel.Codec,
		replies:  make(chan StatsReply, 4),
		readDone: make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

func (m *MergerClient) readLoop() {
	defer close(m.readDone)
	for {
		typ, payload, err := m.conn.Recv()
		if err != nil {
			if err != io.EOF {
				m.readErr = err
			}
			return
		}
		switch typ {
		case TypeStatsReply:
			var sr StatsReply
			if err := DecodePayload(payload, &sr); err != nil {
				m.readErr = err
				return
			}
			select {
			case m.replies <- sr:
			default:
			}
		case TypeGoodbye:
			return
		}
	}
}

// SendMatches queues one match batch on the writer — encoded here with
// the negotiated codec, written and flushed by the writer goroutine.
func (m *MergerClient) SendMatches(b MatchBatch) error {
	buf := GetBuf()
	if m.codec == CodecBinary {
		buf.B = AppendMatchBatch(buf.B, b.Matches)
	} else {
		p, err := EncodePayload(b)
		if err != nil {
			PutBuf(buf)
			return err
		}
		buf.B = append(buf.B, p...)
	}
	return m.writer.Send(TypeMatchBatch, buf)
}

// Counts polls the merger's cumulative delivered/duplicate counters.
// The request queues behind every pending match batch on the writer, so
// the reply covers every batch sent before the call.
func (m *MergerClient) Counts() (delivered, duplicates int64, err error) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	drainStale(m.replies)
	seq := m.seq.Add(1)
	payload, err := EncodePayload(StatsReq{Seq: seq})
	if err != nil {
		return 0, 0, err
	}
	buf := GetBuf()
	buf.B = append(buf.B, payload...)
	if err := m.writer.Send(TypeStatsReq, buf); err != nil {
		return 0, 0, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case sr := <-m.replies:
			if sr.Seq == seq {
				return sr.Delivered, sr.Duplicates, nil
			}
		case <-m.readDone:
			if m.readErr != nil {
				return 0, 0, m.readErr
			}
			return 0, 0, ErrClosed
		case <-timer.C:
			return 0, 0, fmt.Errorf("wire: stats round timed out after %v", DefaultControlTimeout)
		}
	}
}

// CloseSend ends the coordinator's half of the stream, after flushing
// every queued match batch.
func (m *MergerClient) CloseSend() error {
	m.goodbyeOnce.Do(func() {
		if err := m.writer.Drain(); err != nil {
			m.goodbyeErr = err
			return
		}
		m.goodbyeErr = m.conn.Send(TypeGoodbye, Goodbye{})
	})
	return m.goodbyeErr
}

// Close tears the connection down.
func (m *MergerClient) Close() error {
	err := m.conn.Close()
	m.writer.Stop()
	return err
}

// Done reports a channel closed when the client's read loop ends (the
// peer closed or failed); Err returns the failure, nil on clean EOF.
func (m *MergerClient) Done() <-chan struct{} { return m.readDone }

// Err reports the read loop's terminal error (nil until Done, and nil
// after a clean EOF).
func (m *MergerClient) Err() error { return m.readErr }
