package wire

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by client operations after the connection ended.
var ErrClosed = errors.New("wire: connection closed")

// WorkerClient is the coordinator's half of a dispatcher→worker hop: it
// streams operation batches to a remote worker node and receives the
// worker's match batches and control acknowledgements on the same
// connection. Safe for one sender goroutine (SendOps), one receiver
// goroutine (RecvMatches) and concurrent control callers (Drain).
type WorkerClient struct {
	conn *Conn
	// matches buffers decoded match batches between the read loop and
	// RecvMatches; bounded so a slow consumer backpressures the wire.
	matches chan MatchBatch
	acks    chan DrainAck

	drainMu sync.Mutex
	seq     atomic.Uint64

	readDone chan struct{}
	readErr  error // valid after readDone closes
	// closed unblocks the read loop's channel send when the consumer is
	// gone (Close called mid-stream, e.g. a cancelled run).
	closed    chan struct{}
	closeOnce sync.Once

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialWorker connects to a worker node with backoff and performs the
// handshake. The returned client's read loop is already running.
func DialWorker(addr string, hello Hello, b Backoff) (*WorkerClient, error) {
	conn, err := handshake(addr, hello, b, RoleWorker)
	if err != nil {
		return nil, err
	}
	w := &WorkerClient{
		conn:     conn,
		matches:  make(chan MatchBatch, 128),
		acks:     make(chan DrainAck, 1),
		readDone: make(chan struct{}),
		closed:   make(chan struct{}),
	}
	go w.readLoop()
	return w, nil
}

// handshake dials addr and performs the Hello/Welcome round, expecting
// the peer to identify as wantRole.
func handshake(addr string, hello Hello, b Backoff, wantRole string) (*Conn, error) {
	hello.Magic = Magic
	hello.Version = Version
	if hello.Role == "" {
		hello.Role = RoleCoordinator
	}
	conn, err := Dial(addr, b)
	if err != nil {
		return nil, err
	}
	if err := conn.Send(TypeHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: sending hello to %s: %w", addr, err)
	}
	typ, payload, err := conn.RecvTimeout(DefaultHandshakeTimeout)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("wire: awaiting welcome from %s: %w", addr, err)
	}
	if typ != TypeWelcome {
		conn.Close()
		return nil, fmt.Errorf("wire: %s answered hello with frame type %d", addr, typ)
	}
	var wel Welcome
	if err := DecodePayload(payload, &wel); err != nil {
		conn.Close()
		return nil, err
	}
	if err := CheckHandshake(wel.Magic, wel.Version); err != nil {
		conn.Close()
		return nil, err
	}
	if wel.Role != wantRole {
		conn.Close()
		return nil, fmt.Errorf("wire: %s identifies as %q, want %q", addr, wel.Role, wantRole)
	}
	return conn, nil
}

func (w *WorkerClient) readLoop() {
	defer close(w.readDone)
	defer close(w.matches)
	for {
		typ, payload, err := w.conn.Recv()
		if err != nil {
			if err != io.EOF {
				w.readErr = err
			}
			return
		}
		switch typ {
		case TypeMatchBatch:
			var mb MatchBatch
			if err := DecodePayload(payload, &mb); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.matches <- mb:
			case <-w.closed:
				// The consumer is gone (Close mid-stream, e.g. a
				// cancelled run): stop rather than block forever on the
				// full channel.
				return
			}
		case TypeDrainAck:
			var ack DrainAck
			if err := DecodePayload(payload, &ack); err != nil {
				w.readErr = err
				return
			}
			select {
			case w.acks <- ack:
			default: // unsolicited ack; drop
			}
		case TypeGoodbye:
			return
		default:
			// Unknown control frames are skipped: frames are
			// self-delimiting, so forward compatibility is free.
		}
	}
}

// SendOps transfers one operation batch — one frame, flushed.
func (w *WorkerClient) SendOps(b OpBatch) error {
	return w.conn.Send(TypeOpBatch, b)
}

// RecvMatches blocks for the worker's next match batch. It returns
// io.EOF after the worker's side of the stream ends cleanly, or the
// connection's failure otherwise.
func (w *WorkerClient) RecvMatches() (MatchBatch, error) {
	mb, ok := <-w.matches
	if !ok {
		if w.readErr != nil {
			return MatchBatch{}, w.readErr
		}
		return MatchBatch{}, io.EOF
	}
	return mb, nil
}

// Drain runs the end-to-end drain barrier round: every operation batch
// sent before the call is processed by the worker before the returned
// acknowledgement, whose Emitted field is the worker's cumulative
// emitted-match count.
func (w *WorkerClient) Drain() (DrainAck, error) {
	w.drainMu.Lock()
	defer w.drainMu.Unlock()
	seq := w.seq.Add(1)
	if err := w.conn.Send(TypeDrain, Drain{Seq: seq}); err != nil {
		return DrainAck{}, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case ack := <-w.acks:
			if ack.Seq == seq {
				return ack, nil
			}
			// A stale ack from an abandoned round; keep waiting.
		case <-w.readDone:
			if w.readErr != nil {
				return DrainAck{}, w.readErr
			}
			return DrainAck{}, ErrClosed
		case <-timer.C:
			return DrainAck{}, fmt.Errorf("wire: drain barrier timed out after %v", DefaultControlTimeout)
		}
	}
}

// SendFence forwards a routing-epoch advance (informational).
func (w *WorkerClient) SendFence(epoch uint64) error {
	return w.conn.Send(TypeFence, Fence{Epoch: epoch})
}

// CloseSend ends the coordinator's half of the stream: the worker
// finishes writing pending matches and closes, which surfaces as io.EOF
// from RecvMatches.
func (w *WorkerClient) CloseSend() error {
	w.goodbyeOnce.Do(func() {
		w.goodbyeErr = w.conn.Send(TypeGoodbye, Goodbye{})
	})
	return w.goodbyeErr
}

// Close tears the connection down, unblocking every pending call —
// including a read loop parked on the match channel of a departed
// consumer.
func (w *WorkerClient) Close() error {
	w.closeOnce.Do(func() { close(w.closed) })
	return w.conn.Close()
}

// MergerClient is the coordinator's half of a hop to a remote merger
// node: it forwards match batches and polls delivery counters.
type MergerClient struct {
	conn    *Conn
	replies chan StatsReply

	statsMu sync.Mutex
	seq     atomic.Uint64

	readDone chan struct{}
	readErr  error

	goodbyeOnce sync.Once
	goodbyeErr  error
}

// DialMerger connects to a merger node with backoff and performs the
// handshake.
func DialMerger(addr string, hello Hello, b Backoff) (*MergerClient, error) {
	conn, err := handshake(addr, hello, b, RoleMerger)
	if err != nil {
		return nil, err
	}
	m := &MergerClient{
		conn:     conn,
		replies:  make(chan StatsReply, 1),
		readDone: make(chan struct{}),
	}
	go m.readLoop()
	return m, nil
}

func (m *MergerClient) readLoop() {
	defer close(m.readDone)
	for {
		typ, payload, err := m.conn.Recv()
		if err != nil {
			if err != io.EOF {
				m.readErr = err
			}
			return
		}
		switch typ {
		case TypeStatsReply:
			var sr StatsReply
			if err := DecodePayload(payload, &sr); err != nil {
				m.readErr = err
				return
			}
			select {
			case m.replies <- sr:
			default:
			}
		case TypeGoodbye:
			return
		}
	}
}

// SendMatches forwards one match batch — one frame, flushed.
func (m *MergerClient) SendMatches(b MatchBatch) error {
	return m.conn.Send(TypeMatchBatch, b)
}

// Counts polls the merger's cumulative delivered/duplicate counters.
// Frames are FIFO, so the reply covers every batch sent before the call.
func (m *MergerClient) Counts() (delivered, duplicates int64, err error) {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	seq := m.seq.Add(1)
	if err := m.conn.Send(TypeStatsReq, StatsReq{Seq: seq}); err != nil {
		return 0, 0, err
	}
	timer := time.NewTimer(DefaultControlTimeout)
	defer timer.Stop()
	for {
		select {
		case sr := <-m.replies:
			if sr.Seq == seq {
				return sr.Delivered, sr.Duplicates, nil
			}
		case <-m.readDone:
			if m.readErr != nil {
				return 0, 0, m.readErr
			}
			return 0, 0, ErrClosed
		case <-timer.C:
			return 0, 0, fmt.Errorf("wire: stats round timed out after %v", DefaultControlTimeout)
		}
	}
}

// CloseSend ends the coordinator's half of the stream.
func (m *MergerClient) CloseSend() error {
	m.goodbyeOnce.Do(func() {
		m.goodbyeErr = m.conn.Send(TypeGoodbye, Goodbye{})
	})
	return m.goodbyeErr
}

// Close tears the connection down.
func (m *MergerClient) Close() error { return m.conn.Close() }

// Done reports a channel closed when the client's read loop ends (the
// peer closed or failed); Err returns the failure, nil on clean EOF.
func (m *MergerClient) Done() <-chan struct{} { return m.readDone }

// Err reports the read loop's terminal error (nil until Done, and nil
// after a clean EOF).
func (m *MergerClient) Err() error { return m.readErr }
