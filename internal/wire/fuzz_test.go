package wire

import (
	"bufio"
	"bytes"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
)

// seedStream builds a valid multi-frame stream for the fuzz corpus.
func seedStream(tb testing.TB) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	frames := []struct {
		typ byte
		v   any
	}{
		{TypeHello, Hello{Magic: Magic, Version: Version, Role: RoleCoordinator,
			Task: 1, Workers: 4, Bounds: geo.NewRect(-125, 24, -66, 49), Granularity: 64,
			BatchSize: 64, Terms: map[string]int{"coffee": 3, "pizza": 1}}},
		{TypeOpBatch, OpBatch{Ops: []OpEnv{{Op: model.Op{Kind: model.OpObject,
			Obj: &model.Object{ID: 7, Terms: []string{"coffee"}, Loc: geo.Point{X: -73.9, Y: 40.7}}}}}}},
		{TypeMatchBatch, MatchBatch{Matches: []MatchEnv{{M: model.Match{QueryID: 1, ObjectID: 7}}}}},
		{TypeCellStatsReq, CellStatsReq{Seq: 1}},
		{TypeCellStatsReply, CellStatsReply{Seq: 1, Cells: []CellStat{{Cell: 9, Entries: 2, ObjSeen: 5,
			SizeBytes: 128, Load: 10, Terms: []CellTermStat{{Term: "coffee", Queries: 2, ObjHits: 5}}}}}},
		{TypeExtractCells, ExtractCells{Seq: 2, Cells: []CellSpec{{Cell: 9, Keys: []string{"coffee"}}}, Remove: true}},
		{TypeCellShare, CellShare{Seq: 2, Epoch: 1, Cells: []CellPayload{{Cell: 9,
			Ring: []window.Entry{{MsgID: 7, Terms: []string{"coffee"}, Loc: geo.Point{X: -73.9, Y: 40.7}}}}},
			Deltas: []window.Delta{{QueryID: 1, MsgID: 7, K: 3, Rank: 0.5, Rel: 0.9}}}},
		{TypeInstallCells, InstallCells{Seq: 3, Cells: []CellPayload{{Cell: 9}}, Deletes: []uint64{4}}},
		{TypeInstallAck, InstallAck{Seq: 3, Epoch: 1,
			Deltas: []window.Delta{{QueryID: 1, MsgID: 7, K: 3, Rank: 0.5, Rel: 0.9, Entered: true}}}},
		{TypeWindowDeltaBatch, WindowDeltaBatch{Epoch: 1,
			Deltas: []window.Delta{{QueryID: 1, MsgID: 7, K: 3, Rank: 0.5, Rel: 0.9, Entered: true}}}},
		{TypeAdvanceWindow, AdvanceWindow{Seq: 4, Ops: 9}},
		{TypeAdvanceAck, AdvanceAck{Seq: 4, Epoch: 1}},
		{TypeResetWindow, ResetWindow{}},
		{TypeDrain, Drain{Seq: 3}},
		{TypeGoodbye, Goodbye{}},
	}
	for _, f := range frames {
		payload, err := EncodePayload(f.v)
		if err != nil {
			tb.Fatal(err)
		}
		if err := WriteFrame(w, f.typ, payload); err != nil {
			tb.Fatal(err)
		}
	}
	w.Flush()
	return buf.Bytes()
}

// FuzzWireStream feeds arbitrary bytes through the full receive path —
// framing then per-type gob decoding — asserting it never panics, never
// over-allocates past MaxFrameSize, and always terminates. This is the
// input-validation surface a psnode exposes to the network.
func FuzzWireStream(f *testing.F) {
	f.Add(seedStream(f))
	f.Add([]byte{0, 0, 0, 2, TypeOpBatch, 0xFF})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1024; i++ { // bounded: each frame consumes ≥4 bytes
			typ, payload, err := ReadFrame(r)
			if err != nil {
				return
			}
			if len(payload) > MaxFrameSize {
				t.Fatalf("payload of %d bytes escaped MaxFrameSize", len(payload))
			}
			switch typ {
			case TypeHello:
				var v Hello
				_ = DecodePayload(payload, &v)
			case TypeWelcome:
				var v Welcome
				_ = DecodePayload(payload, &v)
			case TypeOpBatch:
				var v OpBatch
				_ = DecodePayload(payload, &v)
			case TypeMatchBatch:
				var v MatchBatch
				_ = DecodePayload(payload, &v)
			case TypeDrain:
				var v Drain
				_ = DecodePayload(payload, &v)
			case TypeDrainAck:
				var v DrainAck
				_ = DecodePayload(payload, &v)
			case TypeStatsReq:
				var v StatsReq
				_ = DecodePayload(payload, &v)
			case TypeStatsReply:
				var v StatsReply
				_ = DecodePayload(payload, &v)
			case TypeFence:
				var v Fence
				_ = DecodePayload(payload, &v)
			case TypeCellStatsReq:
				var v CellStatsReq
				_ = DecodePayload(payload, &v)
			case TypeCellStatsReply:
				var v CellStatsReply
				_ = DecodePayload(payload, &v)
			case TypeExtractCells:
				var v ExtractCells
				_ = DecodePayload(payload, &v)
			case TypeCellShare:
				var v CellShare
				_ = DecodePayload(payload, &v)
			case TypeInstallCells:
				var v InstallCells
				_ = DecodePayload(payload, &v)
			case TypeInstallAck:
				var v InstallAck
				_ = DecodePayload(payload, &v)
			case TypeResetWindow:
				var v ResetWindow
				_ = DecodePayload(payload, &v)
			case TypeWindowDeltaBatch:
				var v WindowDeltaBatch
				_ = DecodePayload(payload, &v)
			case TypeAdvanceWindow:
				var v AdvanceWindow
				_ = DecodePayload(payload, &v)
			case TypeAdvanceAck:
				var v AdvanceAck
				_ = DecodePayload(payload, &v)
			}
		}
	})
}

// FuzzFrameWriteRead asserts WriteFrame/ReadFrame are inverse for any
// payload within bounds.
func FuzzFrameWriteRead(f *testing.F) {
	f.Add(byte(TypeOpBatch), []byte("payload"))
	f.Add(byte(0), []byte{})
	f.Fuzz(func(t *testing.T, typ byte, payload []byte) {
		if len(payload) >= MaxFrameSize {
			return
		}
		var buf bytes.Buffer
		w := bufio.NewWriter(&buf)
		if err := WriteFrame(w, typ, payload); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		gotTyp, gotPayload, err := ReadFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if gotTyp != typ || !bytes.Equal(gotPayload, payload) {
			t.Fatalf("round trip mismatch: type %d/%d, %d/%d bytes", gotTyp, typ, len(gotPayload), len(payload))
		}
	})
}
