package wire

import (
	"sync/atomic"
	"time"

	"ps2stream/internal/metrics"
)

// Per-frame-kind transport counters. They are process-global: a PS2Stream
// process plays one role in the topology, and the counters are monotone,
// so aggregating every connection in the process is exactly the view an
// operator wants from that process's /metrics endpoint. Conn.SendPayload
// and Conn.Recv are the two choke points every frame passes through, so
// incrementing here covers data, control, and migration traffic alike.

// maxFrameType bounds the counter arrays; frame types are small bytes
// (currently 1–17) and anything larger lands in the "other" slot.
const maxFrameType = 32

type frameCounters struct {
	frames [maxFrameType]atomic.Int64
	bytes  [maxFrameType]atomic.Int64
	nanos  [maxFrameType]atomic.Int64 // cumulative encode+write / read+decode time
}

var (
	txCounters frameCounters
	rxCounters frameCounters
)

func (fc *frameCounters) record(typ byte, payloadLen int, dur time.Duration) {
	i := int(typ)
	if i >= maxFrameType {
		i = 0
	}
	fc.frames[i].Add(1)
	// 4-byte length prefix + 1 type byte + payload: what actually hit
	// the socket for this frame.
	fc.bytes[i].Add(int64(5 + payloadLen))
	fc.nanos[i].Add(int64(dur))
}

// TypeName names a frame type for metric labels.
func TypeName(typ byte) string {
	switch typ {
	case TypeHello:
		return "hello"
	case TypeWelcome:
		return "welcome"
	case TypeOpBatch:
		return "op_batch"
	case TypeMatchBatch:
		return "match_batch"
	case TypeDrain:
		return "drain"
	case TypeDrainAck:
		return "drain_ack"
	case TypeStatsReq:
		return "stats_req"
	case TypeStatsReply:
		return "stats_reply"
	case TypeFence:
		return "fence"
	case TypeGoodbye:
		return "goodbye"
	case TypeCellStatsReq:
		return "cell_stats_req"
	case TypeCellStatsReply:
		return "cell_stats_reply"
	case TypeExtractCells:
		return "extract_cells"
	case TypeCellShare:
		return "cell_share"
	case TypeInstallCells:
		return "install_cells"
	case TypeInstallAck:
		return "install_ack"
	case TypeResetWindow:
		return "reset_window"
	default:
		return "other"
	}
}

// FrameStat is one frame kind's cumulative transport counters for one
// direction.
type FrameStat struct {
	Type    byte
	Name    string
	Frames  int64
	Bytes   int64
	Seconds float64
}

func (fc *frameCounters) snapshot() []FrameStat {
	var out []FrameStat
	for i := 0; i < maxFrameType; i++ {
		n := fc.frames[i].Load()
		if n == 0 {
			continue
		}
		out = append(out, FrameStat{
			Type:    byte(i),
			Name:    TypeName(byte(i)),
			Frames:  n,
			Bytes:   fc.bytes[i].Load(),
			Seconds: time.Duration(fc.nanos[i].Load()).Seconds(),
		})
	}
	return out
}

// SentStats returns the process's cumulative per-kind send counters.
func SentStats() []FrameStat { return txCounters.snapshot() }

// RecvStats returns the process's cumulative per-kind receive counters.
func RecvStats() []FrameStat { return rxCounters.snapshot() }

// RegisterMetrics wires the process-global transport counters into reg
// as func-backed series, one per frame kind and direction:
//
//	ps2_wire_frames_total{dir,kind}  ps2_wire_bytes_total{dir,kind}
//	ps2_wire_io_seconds{dir,kind}
//
// io_seconds is cumulative time inside Send (encode + write + flush)
// and Recv (including the blocking wait for the frame to arrive, so the
// rx side reads as read-loop occupancy). Registration is eager for
// every known kind so scrapes see stable series sets from the first
// poll.
func RegisterMetrics(reg *metrics.Registry) {
	for t := byte(1); t <= TypeResetWindow; t++ {
		for _, d := range []struct {
			dir string
			fc  *frameCounters
		}{{"tx", &txCounters}, {"rx", &rxCounters}} {
			i := int(t)
			fc := d.fc
			kind := metrics.L("kind", TypeName(t))
			dir := metrics.L("dir", d.dir)
			reg.CounterFunc("ps2_wire_frames_total", "wire frames by kind and direction",
				func() int64 { return fc.frames[i].Load() }, dir, kind)
			reg.CounterFunc("ps2_wire_bytes_total", "wire bytes by kind and direction (incl. 5-byte frame header)",
				func() int64 { return fc.bytes[i].Load() }, dir, kind)
			reg.GaugeFunc("ps2_wire_io_seconds", "cumulative encode+send / recv time by kind and direction",
				func() float64 { return time.Duration(fc.nanos[i].Load()).Seconds() }, dir, kind)
		}
	}
}
