//go:build !race

package wire

// raceEnabled relaxes the allocation assertions when the race detector
// instruments the build (its shadow-memory bookkeeping can allocate
// inside otherwise allocation-free code).
const raceEnabled = false
