package snapshot

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

var bounds = geo.NewRect(0, 0, 100, 100)

func randQueries(seed int64, n int) []*model.Query {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{"alpha", "beta", "gamma", "delta", "eps"}
	qs := make([]*model.Query, 0, n)
	for i := 0; i < n; i++ {
		var e model.Expr
		a, b := vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]
		if rng.Intn(2) == 0 {
			e = model.And(a, b)
		} else {
			e = model.Or(a, b)
		}
		x, y := rng.Float64()*90, rng.Float64()*90
		qs = append(qs, &model.Query{
			ID:         uint64(i + 1),
			Expr:       e,
			Region:     geo.NewRect(x, y, x+5, y+5),
			Subscriber: uint64(rng.Intn(50)),
		})
	}
	return qs
}

func TestRoundTrip(t *testing.T) {
	qs := randQueries(1, 200)
	var buf bytes.Buffer
	if err := Write(&buf, bounds, qs); err != nil {
		t.Fatal(err)
	}
	h, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 200 || h.Bounds != bounds {
		t.Errorf("header = %+v", h)
	}
	if len(got) != len(qs) {
		t.Fatalf("round-tripped %d queries, want %d", len(got), len(qs))
	}
	for i := range got {
		if !reflect.DeepEqual(*got[i], *qs[i]) {
			t.Fatalf("query %d mismatch:\n got %+v\nwant %+v", i, got[i], qs[i])
		}
	}
}

// TestRoundTripPreservesTopKWindow: sliding-window top-k subscriptions
// carry two extra fields; a snapshot that dropped them would silently
// restore them as plain boolean subscriptions.
func TestRoundTripPreservesTopKWindow(t *testing.T) {
	qs := randQueries(3, 20)
	for i, q := range qs {
		if i%2 == 0 {
			q.TopK = i + 1
			q.Window = time.Duration(i+1) * time.Minute
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, bounds, qs); err != nil {
		t.Fatal(err)
	}
	_, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].TopK != qs[i].TopK || got[i].Window != qs[i].Window {
			t.Errorf("query %d: TopK/Window = %d/%v, want %d/%v",
				got[i].ID, got[i].TopK, got[i].Window, qs[i].TopK, qs[i].Window)
		}
		if got[i].IsTopK() != qs[i].IsTopK() {
			t.Errorf("query %d: IsTopK changed across the round trip", got[i].ID)
		}
	}
}

func TestDeterministicBytes(t *testing.T) {
	qs := randQueries(2, 100)
	shuffled := append([]*model.Query(nil), qs...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	var a, b bytes.Buffer
	if err := Write(&a, bounds, qs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, bounds, shuffled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same population in different order produced different snapshots")
	}
}

func TestDeduplicatesByID(t *testing.T) {
	q := randQueries(3, 1)[0]
	var buf bytes.Buffer
	if err := Write(&buf, bounds, []*model.Query{q, q, nil, q}); err != nil {
		t.Fatal(err)
	}
	h, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 1 || len(got) != 1 {
		t.Errorf("count = %d, queries = %d, want 1/1", h.Count, len(got))
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, bounds, nil); err != nil {
		t.Fatal(err)
	}
	h, got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count != 0 || len(got) != 0 {
		t.Errorf("empty snapshot decoded to %d queries", len(got))
	}
}

func TestRejectsGarbage(t *testing.T) {
	_, _, err := Read(bytes.NewReader([]byte("not a snapshot at all")))
	if !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("garbage err = %v, want ErrBadSnapshot", err)
	}
}

func TestRejectsTruncated(t *testing.T) {
	qs := randQueries(4, 50)
	var buf bytes.Buffer
	if err := Write(&buf, bounds, qs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 2, len(full) - 3} {
		_, _, err := Read(bytes.NewReader(full[:cut]))
		if !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("truncated at %d: err = %v, want ErrBadSnapshot", cut, err)
		}
	}
}

func TestRejectsWrongMagicAndVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	enc(Header{Magic: "NOTPS2", Version: Version, Count: 0})
	if _, _, err := Read(&buf); !errors.Is(err, ErrBadSnapshot) {
		t.Errorf("wrong magic err = %v", err)
	}
	buf.Reset()
	enc = newEncoder(&buf)
	enc(Header{Magic: magic, Version: Version + 99, Count: 0})
	if _, _, err := Read(&buf); !errors.Is(err, ErrFutureVersion) {
		t.Errorf("wrong version err = %v", err)
	}
}

// newEncoder hides the gob plumbing for header-tampering tests.
func newEncoder(buf *bytes.Buffer) func(h Header) {
	return func(h Header) {
		if err := gob.NewEncoder(buf).Encode(h); err != nil {
			panic(err)
		}
	}
}

// Property: Write∘Read is the identity on arbitrary valid query
// populations (modulo duplicate ids).
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		qs := randQueries(seed, int(n))
		var buf bytes.Buffer
		if err := Write(&buf, bounds, qs); err != nil {
			return false
		}
		_, got, err := Read(&buf)
		if err != nil || len(got) != len(qs) {
			return false
		}
		for i := range got {
			if !reflect.DeepEqual(*got[i], *qs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
