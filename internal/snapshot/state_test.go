package snapshot

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"ps2stream/internal/window"
)

func sampleState() State {
	return State{
		Worker:    3,
		Bounds:    bounds,
		Queries:   randQueries(11, 40),
		Watermark: 12345,
		Cells:     map[int][]string{7: nil, 9: {"alpha", "beta"}},
		Rings: map[int][]window.Entry{
			7: {{MsgID: 1, Terms: []string{"alpha"}, At: time.Unix(100, 0).UTC()}},
		},
	}
}

func TestStateRoundTrip(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != st.Worker || got.Watermark != st.Watermark || got.Bounds != st.Bounds {
		t.Errorf("scalar fields: got worker=%d wm=%d bounds=%v", got.Worker, got.Watermark, got.Bounds)
	}
	if len(got.Queries) != len(st.Queries) {
		t.Fatalf("round-tripped %d queries, want %d", len(got.Queries), len(st.Queries))
	}
	if !reflect.DeepEqual(got.Cells, st.Cells) {
		t.Errorf("cells: got %v, want %v", got.Cells, st.Cells)
	}
	if !reflect.DeepEqual(got.Rings, st.Rings) {
		t.Errorf("rings: got %v, want %v", got.Rings, st.Rings)
	}
}

// TestStateReadableByQueryReader: the version-2 query stream is
// bit-compatible with Write's, so plain Read extracts the population
// from a state checkpoint (forward compatibility for v1 tooling that
// only understands queries).
func TestStateReadableByQueryReader(t *testing.T) {
	st := sampleState()
	var buf bytes.Buffer
	if err := WriteState(&buf, st); err != nil {
		t.Fatal(err)
	}
	h, qs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.Version != stateVersion || len(qs) != len(st.Queries) {
		t.Errorf("Read on a state checkpoint: version=%d queries=%d, want %d/%d",
			h.Version, len(qs), stateVersion, len(st.Queries))
	}
}

// TestReadStateAcceptsQuerySnapshot: a version-1 snapshot restores as a
// State with only the population filled — old checkpoints stay usable.
func TestReadStateAcceptsQuerySnapshot(t *testing.T) {
	qs := randQueries(5, 10)
	var buf bytes.Buffer
	if err := Write(&buf, bounds, qs); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Queries) != len(qs) || st.Watermark != 0 || st.Cells != nil || st.Rings != nil {
		t.Errorf("v1 snapshot read as State = %+v, want queries only", st)
	}
}

// TestStateRejectsTruncatedTrailer: a checkpoint cut anywhere — inside
// the query stream or inside the trailer — must fail with
// ErrBadSnapshot, never return a silently partial State. A crash while
// writing a checkpoint is exactly when this file gets read.
func TestStateRejectsTruncatedTrailer(t *testing.T) {
	st := sampleState()
	var whole, queriesOnly bytes.Buffer
	if err := WriteState(&whole, st); err != nil {
		t.Fatal(err)
	}
	// Measure where the trailer starts by writing the same queries
	// without one (headers differ by one version int, close enough to
	// pick cut points inside each region).
	if err := Write(&queriesOnly, st.Bounds, st.Queries); err != nil {
		t.Fatal(err)
	}
	full := whole.Bytes()
	trailerAt := queriesOnly.Len()
	cuts := []int{
		0,             // empty input
		trailerAt / 2, // inside the query stream
		trailerAt,     // right at the trailer boundary
		len(full) - 1, // one byte short of a complete trailer
	}
	for _, cut := range cuts {
		if cut >= len(full) {
			cut = len(full) - 1
		}
		if _, err := ReadState(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("truncated at %d/%d: err = %v, want ErrBadSnapshot", cut, len(full), err)
		}
	}
}

// TestStateRejectsFutureVersion mirrors Read's guard for ReadState.
func TestStateRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	enc := newEncoder(&buf)
	enc(Header{Magic: magic, Version: Version + 1, Count: 0})
	if _, err := ReadState(&buf); !errors.Is(err, ErrFutureVersion) {
		t.Errorf("future version err = %v, want ErrFutureVersion", err)
	}
}

// FuzzReadState: arbitrary bytes must never panic the reader, and any
// successful parse must come from a structurally sound prefix.
func FuzzReadState(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := WriteState(&seedBuf, sampleState()); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte("PS2SNAP nonsense"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadState(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrFutureVersion) {
				t.Fatalf("untyped error %v", err)
			}
			return
		}
		for _, q := range st.Queries {
			if q == nil {
				t.Fatal("successful parse returned a nil query")
			}
		}
	})
}
