// Package snapshot serialises the live STS-query population of a running
// PS2Stream system so a restarted (or replacement) deployment can be
// re-primed without replaying the subscription stream. The paper's system
// keeps all state in worker memory; checkpointing is the operational
// feature a production deployment layers on top.
//
// The format is a gob stream: a fixed header (magic, version, bounds,
// count) followed by the deduplicated query slice. Queries are written in
// ascending id order so identical populations produce identical bytes.
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// magic identifies a PS2Stream snapshot stream.
const magic = "PS2SNAP"

// Version is the current snapshot format version.
const Version = 1

// Header precedes the query payload.
type Header struct {
	Magic   string
	Version int
	// Bounds is the monitored region of the checkpointing system;
	// restorers may verify compatibility.
	Bounds geo.Rect
	// Count is the number of queries that follow.
	Count int
}

// ErrBadSnapshot is wrapped by Read errors caused by malformed input.
var ErrBadSnapshot = errors.New("snapshot: malformed snapshot")

// Write serialises the queries to w. The input slice is not modified;
// duplicates (same id) are dropped, keeping the first occurrence.
func Write(w io.Writer, bounds geo.Rect, qs []*model.Query) error {
	dedup := make([]*model.Query, 0, len(qs))
	seen := make(map[uint64]struct{}, len(qs))
	for _, q := range qs {
		if q == nil {
			continue
		}
		if _, dup := seen[q.ID]; dup {
			continue
		}
		seen[q.ID] = struct{}{}
		dedup = append(dedup, q)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].ID < dedup[j].ID })
	enc := gob.NewEncoder(w)
	if err := enc.Encode(Header{Magic: magic, Version: Version, Bounds: bounds, Count: len(dedup)}); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	// Queries are encoded individually so a reader can stream them and a
	// truncated file fails at a query boundary rather than mid-slice.
	for _, q := range dedup {
		if err := enc.Encode(q); err != nil {
			return fmt.Errorf("snapshot: writing query %d: %w", q.ID, err)
		}
	}
	return nil
}

// Read parses a snapshot produced by Write and returns its header and
// queries.
func Read(r io.Reader) (Header, []*model.Query, error) {
	dec := gob.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, fmt.Errorf("%w: reading header: %v", ErrBadSnapshot, err)
	}
	if h.Magic != magic {
		return Header{}, nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, h.Magic)
	}
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, h.Version)
	}
	if h.Count < 0 {
		return Header{}, nil, fmt.Errorf("%w: negative count %d", ErrBadSnapshot, h.Count)
	}
	qs := make([]*model.Query, 0, h.Count)
	for i := 0; i < h.Count; i++ {
		var q model.Query
		if err := dec.Decode(&q); err != nil {
			return Header{}, nil, fmt.Errorf("%w: reading query %d/%d: %v", ErrBadSnapshot, i+1, h.Count, err)
		}
		if q.Expr.Empty() {
			return Header{}, nil, fmt.Errorf("%w: query %d has an empty expression", ErrBadSnapshot, q.ID)
		}
		qs = append(qs, &q)
	}
	return h, qs, nil
}
