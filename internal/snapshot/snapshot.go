// Package snapshot serialises the live STS-query population of a running
// PS2Stream system so a restarted (or replacement) deployment can be
// re-primed without replaying the subscription stream. The paper's system
// keeps all state in worker memory; checkpointing is the operational
// feature a production deployment layers on top.
//
// The format is a gob stream: a fixed header (magic, version, bounds,
// count) followed by the deduplicated query slice. Queries are written in
// ascending id order so identical populations produce identical bytes.
package snapshot

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/window"
)

// magic identifies a PS2Stream snapshot stream.
const magic = "PS2SNAP"

// Snapshot format versions. Version 1 carries the query population
// only; version 2 (a superset) appends per-worker recovery state — the
// window rings, the worker's cell assignment and the op-log watermark —
// so a crashed worker node can be re-primed without a full replay.
const (
	queryVersion = 1
	stateVersion = 2
	// Version is the current (highest) snapshot format version.
	Version = stateVersion
)

// Header precedes the query payload.
type Header struct {
	Magic   string
	Version int
	// Bounds is the monitored region of the checkpointing system;
	// restorers may verify compatibility.
	Bounds geo.Rect
	// Count is the number of queries that follow.
	Count int
}

// ErrBadSnapshot is wrapped by Read errors caused by malformed input.
var ErrBadSnapshot = errors.New("snapshot: malformed snapshot")

// ErrFutureVersion is wrapped by Read/ReadState errors caused by a
// snapshot written by a newer format version than this build knows. It
// is distinct from ErrBadSnapshot: the file is not corrupt, the reader
// is just too old, and the caller may want to say so.
var ErrFutureVersion = errors.New("snapshot: snapshot version newer than this build")

// Write serialises the queries to w. The input slice is not modified;
// duplicates (same id) are dropped, keeping the first occurrence.
func Write(w io.Writer, bounds geo.Rect, qs []*model.Query) error {
	dedup := make([]*model.Query, 0, len(qs))
	seen := make(map[uint64]struct{}, len(qs))
	for _, q := range qs {
		if q == nil {
			continue
		}
		if _, dup := seen[q.ID]; dup {
			continue
		}
		seen[q.ID] = struct{}{}
		dedup = append(dedup, q)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].ID < dedup[j].ID })
	enc := gob.NewEncoder(w)
	if err := enc.Encode(Header{Magic: magic, Version: queryVersion, Bounds: bounds, Count: len(dedup)}); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	// Queries are encoded individually so a reader can stream them and a
	// truncated file fails at a query boundary rather than mid-slice.
	for _, q := range dedup {
		if err := enc.Encode(q); err != nil {
			return fmt.Errorf("snapshot: writing query %d: %w", q.ID, err)
		}
	}
	return nil
}

// Read parses a snapshot produced by Write (or the query population of
// a WriteState file) and returns its header and queries. Snapshots from
// a newer format version fail with ErrFutureVersion.
func Read(r io.Reader) (Header, []*model.Query, error) {
	h, qs, _, err := readHeaderAndQueries(r)
	return h, qs, err
}

func readHeaderAndQueries(r io.Reader) (Header, []*model.Query, *gob.Decoder, error) {
	dec := gob.NewDecoder(r)
	var h Header
	if err := dec.Decode(&h); err != nil {
		return Header{}, nil, nil, fmt.Errorf("%w: reading header: %v", ErrBadSnapshot, err)
	}
	if h.Magic != magic {
		return Header{}, nil, nil, fmt.Errorf("%w: bad magic %q", ErrBadSnapshot, h.Magic)
	}
	if h.Version > Version {
		return Header{}, nil, nil, fmt.Errorf("%w: version %d (this build reads up to %d)", ErrFutureVersion, h.Version, Version)
	}
	if h.Version < queryVersion {
		return Header{}, nil, nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, h.Version)
	}
	if h.Count < 0 {
		return Header{}, nil, nil, fmt.Errorf("%w: negative count %d", ErrBadSnapshot, h.Count)
	}
	qs := make([]*model.Query, 0, h.Count)
	for i := 0; i < h.Count; i++ {
		var q model.Query
		if err := dec.Decode(&q); err != nil {
			return Header{}, nil, nil, fmt.Errorf("%w: reading query %d/%d: %v", ErrBadSnapshot, i+1, h.Count, err)
		}
		if q.Expr.Empty() {
			return Header{}, nil, nil, fmt.Errorf("%w: query %d has an empty expression", ErrBadSnapshot, q.ID)
		}
		qs = append(qs, &q)
	}
	return h, qs, dec, nil
}

// State is a per-worker recovery checkpoint: everything the coordinator
// needs to re-prime a replacement worker node up to the op-log
// watermark — the worker's live queries, its window ring per cell (so
// sliding-window matching resumes where it stopped), the cells the
// routing table assigns it, and the watermark separating snapshotted
// ops from the ones the op log must replay.
type State struct {
	// Worker is the topology slot this checkpoint belongs to.
	Worker int
	// Bounds is the monitored region (geometry compatibility check).
	Bounds geo.Rect
	// Queries is the worker's live query population.
	Queries []*model.Query
	// Cells maps each assigned cell id to the registration keys of the
	// worker's share; nil keys mean the whole cell.
	Cells map[int][]string
	// Rings holds the window ring entries per cell.
	Rings map[int][]window.Entry
	// Watermark is the op-log sequence number this checkpoint covers:
	// ops with a sequence at or below it are reflected here, ops above
	// it must be replayed from the op log.
	Watermark uint64
}

// stateTrailer is the version-2 payload written after the query stream,
// so a version-1 reader still parses the queries it understands.
type stateTrailer struct {
	Worker    int
	Watermark uint64
	Cells     map[int][]string
	Rings     map[int][]window.Entry
}

// WriteState serialises a per-worker recovery checkpoint (format
// version 2). The query stream is bit-compatible with Write's, so Read
// can extract the query population from a state checkpoint.
func WriteState(w io.Writer, st State) error {
	dedup := make([]*model.Query, 0, len(st.Queries))
	seen := make(map[uint64]struct{}, len(st.Queries))
	for _, q := range st.Queries {
		if q == nil {
			continue
		}
		if _, dup := seen[q.ID]; dup {
			continue
		}
		seen[q.ID] = struct{}{}
		dedup = append(dedup, q)
	}
	sort.Slice(dedup, func(i, j int) bool { return dedup[i].ID < dedup[j].ID })
	enc := gob.NewEncoder(w)
	if err := enc.Encode(Header{Magic: magic, Version: stateVersion, Bounds: st.Bounds, Count: len(dedup)}); err != nil {
		return fmt.Errorf("snapshot: writing header: %w", err)
	}
	for _, q := range dedup {
		if err := enc.Encode(q); err != nil {
			return fmt.Errorf("snapshot: writing query %d: %w", q.ID, err)
		}
	}
	if err := enc.Encode(stateTrailer{Worker: st.Worker, Watermark: st.Watermark, Cells: st.Cells, Rings: st.Rings}); err != nil {
		return fmt.Errorf("snapshot: writing state trailer: %w", err)
	}
	return nil
}

// ReadState parses a checkpoint produced by WriteState. It also accepts
// a version-1 query snapshot, returning a State with only the query
// population filled in (old checkpoints stay restorable). Versions
// newer than this build fail with ErrFutureVersion; a checkpoint
// truncated mid-write fails with ErrBadSnapshot.
func ReadState(r io.Reader) (State, error) {
	h, qs, dec, err := readHeaderAndQueries(r)
	if err != nil {
		return State{}, err
	}
	st := State{Bounds: h.Bounds, Queries: qs}
	if h.Version < stateVersion {
		return st, nil
	}
	var tr stateTrailer
	if err := dec.Decode(&tr); err != nil {
		return State{}, fmt.Errorf("%w: reading state trailer: %v", ErrBadSnapshot, err)
	}
	st.Worker = tr.Worker
	st.Watermark = tr.Watermark
	st.Cells = tr.Cells
	st.Rings = tr.Rings
	return st, nil
}
