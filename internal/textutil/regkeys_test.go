package textutil

import (
	"reflect"
	"sort"
	"testing"
)

func TestRegistrationKeys(t *testing.T) {
	s := NewStats()
	s.AddWeighted("common", 1000)
	s.AddWeighted("mid", 100)
	s.AddWeighted("rare", 1)
	tests := []struct {
		name string
		conj [][]string
		want []string
	}{
		{"and picks least frequent", [][]string{{"common", "rare", "mid"}}, []string{"rare"}},
		{"or registers per conjunction", [][]string{{"common"}, {"mid"}}, []string{"common", "mid"}},
		{"dnf mixed", [][]string{{"common", "mid"}, {"rare"}}, []string{"mid", "rare"}},
		{"duplicate keys deduped", [][]string{{"rare", "common"}, {"rare", "mid"}}, []string{"rare"}},
		{"unseen term wins", [][]string{{"common", "neverseen"}}, []string{"neverseen"}},
		{"empty conjunction skipped", [][]string{{}, {"mid"}}, []string{"mid"}},
		{"no conjunctions", nil, []string{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := s.RegistrationKeys(tt.conj)
			sort.Strings(got)
			want := append([]string{}, tt.want...)
			sort.Strings(want)
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("RegistrationKeys(%v) = %v, want %v", tt.conj, got, want)
			}
		})
	}
}

// The registration rule must be stable across callers: dispatcher and
// worker compute keys independently and must agree.
func TestRegistrationKeysDeterministic(t *testing.T) {
	s := NewStats()
	s.AddWeighted("a", 5)
	s.AddWeighted("b", 5) // tie: lexicographic winner
	conj := [][]string{{"b", "a"}}
	first := s.RegistrationKeys(conj)
	for i := 0; i < 10; i++ {
		if got := s.RegistrationKeys(conj); !reflect.DeepEqual(got, first) {
			t.Fatalf("nondeterministic keys: %v vs %v", got, first)
		}
	}
	if first[0] != "a" {
		t.Errorf("tie broken to %q, want lexicographic \"a\"", first[0])
	}
}
