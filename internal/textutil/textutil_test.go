package textutil

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Kobe has retired", []string{"kobe", "has", "retired"}},
		{"I like Kobe more than Lebron!", []string{"i", "like", "kobe", "more", "than", "lebron"}},
		{"dup dup DUP", []string{"dup"}},
		{"", nil},
		{"   ", nil},
		{"a,b;c.d", []string{"a", "b", "c", "d"}},
		{"café olé", []string{"café", "olé"}},
		{"year2016 #tag", []string{"year2016", "tag"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestStatsBasics(t *testing.T) {
	s := NewStats()
	s.Add("a", "b", "a")
	s.AddWeighted("c", 5)
	if got := s.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d, want 2", got)
	}
	if got := s.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
	if got := s.DistinctTerms(); got != 3 {
		t.Errorf("DistinctTerms = %d, want 3", got)
	}
	if got := s.Freq("c"); math.Abs(got-5.0/8.0) > 1e-12 {
		t.Errorf("Freq(c) = %v, want 0.625", got)
	}
	if got := s.Freq("zzz"); got != 0 {
		t.Errorf("Freq(zzz) = %v, want 0", got)
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s Stats
	s.Add("x")
	if s.Count("x") != 1 {
		t.Error("zero-value Stats should be usable")
	}
	var s2 Stats
	s2.AddWeighted("y", 3)
	if s2.Count("y") != 3 {
		t.Error("zero-value Stats AddWeighted failed")
	}
	var s3 Stats
	if s3.Freq("a") != 0 {
		t.Error("empty Stats Freq should be 0")
	}
}

func TestLeastFrequent(t *testing.T) {
	s := NewStats()
	s.AddWeighted("common", 100)
	s.AddWeighted("mid", 10)
	s.AddWeighted("rare", 1)
	tests := []struct {
		name  string
		terms []string
		want  string
	}{
		{"picks rare", []string{"common", "rare", "mid"}, "rare"},
		{"unseen wins", []string{"common", "never"}, "never"},
		{"tie lexicographic", []string{"zz", "aa"}, "aa"},
		{"single", []string{"common"}, "common"},
		{"empty", nil, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.LeastFrequent(tt.terms); got != tt.want {
				t.Errorf("LeastFrequent(%v) = %q, want %q", tt.terms, got, tt.want)
			}
		})
	}
}

func TestTopTerms(t *testing.T) {
	s := NewStats()
	s.AddWeighted("a", 1)
	s.AddWeighted("b", 3)
	s.AddWeighted("c", 2)
	s.AddWeighted("d", 3)
	got := s.TopTerms(3)
	want := []string{"b", "d", "c"} // ties broken lexicographically
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopTerms(3) = %v, want %v", got, want)
	}
	if got := s.TopTerms(100); len(got) != 4 {
		t.Errorf("TopTerms(100) returned %d terms, want 4", len(got))
	}
}

func TestCloneAndMerge(t *testing.T) {
	s := NewStats()
	s.Add("a", "b")
	c := s.Clone()
	c.Add("a")
	if s.Count("a") != 1 {
		t.Error("Clone is not independent")
	}
	s.Merge(c)
	if s.Count("a") != 3 || s.Count("b") != 2 {
		t.Errorf("Merge wrong: a=%d b=%d", s.Count("a"), s.Count("b"))
	}
	if s.Total() != 5 {
		t.Errorf("Merge total = %d, want 5", s.Total())
	}
}

func TestCosine(t *testing.T) {
	tests := []struct {
		name string
		a, b map[string]int
		want float64
	}{
		{"identical", map[string]int{"x": 2, "y": 1}, map[string]int{"x": 2, "y": 1}, 1},
		{"orthogonal", map[string]int{"x": 1}, map[string]int{"y": 1}, 0},
		{"empty a", nil, map[string]int{"x": 1}, 0},
		{"both empty", nil, nil, 0},
		{"scaled", map[string]int{"x": 1, "y": 1}, map[string]int{"x": 10, "y": 10}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Cosine(tt.a, tt.b); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Cosine = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCosinePartialOverlap(t *testing.T) {
	a := map[string]int{"x": 1, "y": 1}
	b := map[string]int{"x": 1, "z": 1}
	got := Cosine(a, b)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Cosine = %v, want 0.5", got)
	}
}

// Property: cosine is symmetric and within [0,1] for count vectors.
func TestCosineProperties(t *testing.T) {
	f := func(av, bv [4]uint8) bool {
		keys := []string{"a", "b", "c", "d"}
		a := map[string]int{}
		b := map[string]int{}
		for i, k := range keys {
			if av[i] > 0 {
				a[k] = int(av[i])
			}
			if bv[i] > 0 {
				b[k] = int(bv[i])
			}
		}
		s1 := Cosine(a, b)
		s2 := Cosine(b, a)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCosineStatsNil(t *testing.T) {
	if CosineStats(nil, NewStats()) != 0 {
		t.Error("CosineStats with nil should be 0")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.0)
	rng := rand.New(rand.NewSource(42))
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[z.Rank(rng.Float64())]++
	}
	// Rank 0 should be roughly 2x rank 1 and far above rank 100.
	if counts[0] < counts[1] {
		t.Errorf("rank 0 (%d) should outdraw rank 1 (%d)", counts[0], counts[1])
	}
	if counts[0] < 10*counts[100] {
		t.Errorf("rank 0 (%d) should be >=10x rank 100 (%d)", counts[0], counts[100])
	}
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("rank0/rank1 ratio = %v, want ~2 for s=1", ratio)
	}
}

func TestZipfEdge(t *testing.T) {
	z := NewZipf(0, 1)
	if z.N() != 1 {
		t.Errorf("NewZipf(0) should clamp to 1 rank, got %d", z.N())
	}
	if r := z.Rank(0.999999); r != 0 {
		t.Errorf("single-rank Zipf returned %d", r)
	}
	z2 := NewZipf(10, 1)
	if r := z2.Rank(0.9999999999); r != 9 {
		t.Errorf("Rank at CDF edge = %d, want 9", r)
	}
	if r := z2.Rank(0); r != 0 {
		t.Errorf("Rank(0) = %d, want 0", r)
	}
}
