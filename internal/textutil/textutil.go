// Package textutil provides the text-processing substrate of PS2Stream:
// tokenisation, term-frequency statistics (used to pick the least-frequent
// keyword in GI2 and gridt, §IV-C/§IV-D), cosine similarity between term
// distributions (simt in Algorithm 1), and a Zipf sampler used by the
// workload generator to reproduce the power-law keyword distribution of
// tweets.
package textutil

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize splits free text into lower-cased, de-duplicated terms.
// Separators are any non-letter/non-digit runes; order of first occurrence
// is preserved.
func Tokenize(s string) []string {
	fields := strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	seen := make(map[string]struct{}, len(fields))
	out := fields[:0]
	for _, f := range fields {
		if _, dup := seen[f]; dup {
			continue
		}
		seen[f] = struct{}{}
		out = append(out, f)
	}
	return out
}

// Stats accumulates term frequencies over a corpus. The zero value is ready
// to use. Stats is not safe for concurrent mutation; components keep their
// own copy or guard it externally.
type Stats struct {
	counts map[string]int
	total  int
}

// NewStats returns an empty Stats.
func NewStats() *Stats {
	return &Stats{counts: make(map[string]int)}
}

// Add records one occurrence of each given term.
func (s *Stats) Add(terms ...string) {
	if s.counts == nil {
		s.counts = make(map[string]int)
	}
	for _, t := range terms {
		s.counts[t]++
		s.total++
	}
}

// AddWeighted records w occurrences of term.
func (s *Stats) AddWeighted(term string, w int) {
	if s.counts == nil {
		s.counts = make(map[string]int)
	}
	s.counts[term] += w
	s.total += w
}

// Count returns the recorded occurrences of term.
func (s *Stats) Count(term string) int { return s.counts[term] }

// Total returns the total number of recorded occurrences.
func (s *Stats) Total() int { return s.total }

// DistinctTerms returns the number of distinct terms recorded.
func (s *Stats) DistinctTerms() int { return len(s.counts) }

// Freq returns the relative frequency of term in [0,1]; 0 when nothing has
// been recorded.
func (s *Stats) Freq(term string) float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.counts[term]) / float64(s.total)
}

// LeastFrequent returns the term with the smallest recorded count among the
// given terms, breaking ties lexicographically so the choice is
// deterministic across dispatchers and workers. Terms never recorded count
// as 0 and therefore win. An empty input returns "".
func (s *Stats) LeastFrequent(terms []string) string {
	best := ""
	bestCount := math.MaxInt
	for _, t := range terms {
		c := s.counts[t]
		if c < bestCount || (c == bestCount && t < best) {
			best, bestCount = t, c
		}
	}
	return best
}

// RegistrationKeys returns the distinct least-frequent terms, one per
// conjunction, under which a DNF boolean expression is registered in
// inverted indexes (§IV-C, §IV-D: "it is appended to the inverted list of
// the least frequent keyword"; for OR expressions, "the inverted lists of
// the least frequent keywords in each conjunctive norm form").
func (s *Stats) RegistrationKeys(conjunctions [][]string) []string {
	keys := make([]string, 0, len(conjunctions))
	for _, conj := range conjunctions {
		k := s.LeastFrequent(conj)
		if k == "" {
			continue
		}
		dup := false
		for _, e := range keys {
			if e == k {
				dup = true
				break
			}
		}
		if !dup {
			keys = append(keys, k)
		}
	}
	return keys
}

// TopTerms returns the n most frequent terms in descending count order
// (ties broken lexicographically). n larger than the vocabulary returns all
// terms.
func (s *Stats) TopTerms(n int) []string {
	terms := make([]string, 0, len(s.counts))
	for t := range s.counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		ci, cj := s.counts[terms[i]], s.counts[terms[j]]
		if ci != cj {
			return ci > cj
		}
		return terms[i] < terms[j]
	})
	if n < len(terms) {
		terms = terms[:n]
	}
	return terms
}

// Terms returns all recorded terms in unspecified order.
func (s *Stats) Terms() []string {
	out := make([]string, 0, len(s.counts))
	for t := range s.counts {
		out = append(out, t)
	}
	return out
}

// Clone returns an independent copy of the statistics.
func (s *Stats) Clone() *Stats {
	c := &Stats{counts: make(map[string]int, len(s.counts)), total: s.total}
	for k, v := range s.counts {
		c.counts[k] = v
	}
	return c
}

// Merge adds all counts from o into s.
func (s *Stats) Merge(o *Stats) {
	if s.counts == nil {
		s.counts = make(map[string]int, len(o.counts))
	}
	for k, v := range o.counts {
		s.counts[k] += v
	}
	s.total += o.total
}

// Vector returns the counts as a dense-ish map for similarity computation.
func (s *Stats) Vector() map[string]int { return s.counts }

// Cosine computes the cosine similarity of two term-count vectors. It is
// the simt(O_n, Q_n) measure of Algorithm 1 ("We use cosine similarity in
// our algorithm"). Empty vectors yield 0.
func Cosine(a, b map[string]int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate over the smaller map for the dot product.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for t, ca := range a {
		if cb, ok := b[t]; ok {
			dot += float64(ca) * float64(cb)
		}
	}
	if dot == 0 {
		return 0
	}
	var na, nb float64
	for _, c := range a {
		na += float64(c) * float64(c)
	}
	for _, c := range b {
		nb += float64(c) * float64(c)
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineStats is a convenience wrapper computing Cosine over two Stats.
func CosineStats(a, b *Stats) float64 {
	if a == nil || b == nil {
		return 0
	}
	return Cosine(a.counts, b.counts)
}

// Zipf draws ranks 0..n-1 with probability proportional to 1/(rank+1)^s,
// the standard model for term frequency in social-media text. It uses the
// inverse-CDF method over a precomputed table, so draws are deterministic
// given the caller's random source.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a Zipf distribution over n ranks with exponent s (> 0).
// n must be at least 1.
func NewZipf(n int, s float64) *Zipf {
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// Rank maps a uniform random value u in [0,1) to a rank in [0, n).
func (z *Zipf) Rank(u float64) int {
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }
