package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ps2stream/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ps2_ops_processed_total", "ops").Add(123)
	scrapes := 0
	srv, err := Serve("127.0.0.1:0", Options{
		Registry:     reg,
		Role:         "worker",
		Task:         2,
		Epoch:        func() uint64 { return 7 },
		BeforeScrape: func() { scrapes++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 || !strings.Contains(body, "ps2_ops_processed_total 123") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	code, body = get(t, base+"/statsz")
	if code != 200 {
		t.Fatalf("/statsz = %d", code)
	}
	var sz Statsz
	if err := json.Unmarshal([]byte(body), &sz); err != nil {
		t.Fatalf("/statsz not JSON: %v\n%s", err, body)
	}
	if sz.Role != "worker" || sz.Task != 2 || sz.Epoch != 7 || len(sz.Series) != 1 {
		t.Errorf("/statsz = %+v", sz)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz = %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if h.Status != "ok" || h.Role != "worker" || h.Epoch != 7 || h.GoVersion == "" {
		t.Errorf("/healthz = %+v", h)
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != 200 || body == "" {
		t.Errorf("pprof cmdline = %d %q", code, body)
	}

	if scrapes != 2 {
		t.Errorf("BeforeScrape ran %d times, want 2 (metrics + statsz)", scrapes)
	}
}

func TestServerNilRegistry(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", Options{Role: "merger"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	code, _ := get(t, "http://"+srv.Addr()+"/metrics")
	if code != 200 {
		t.Errorf("/metrics with nil registry = %d", code)
	}
}
