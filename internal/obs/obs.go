// Package obs provides the opt-in HTTP admin server every PS2Stream
// process can expose: Prometheus-text metrics on /metrics, a JSON
// snapshot on /statsz, liveness plus role/epoch/build info on /healthz,
// and the standard net/http/pprof profiling endpoints under
// /debug/pprof/. Stdlib only.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"ps2stream/internal/metrics"
)

// Options configures an admin server.
type Options struct {
	// Registry backs /metrics and /statsz; nil serves empty expositions.
	Registry *metrics.Registry
	// Role and Task identify this process in /healthz and /statsz
	// ("dispatcher", "worker", "merger").
	Role string
	Task int
	// Epoch, when non-nil, reports the process's current routing epoch
	// in /healthz (workers track the coordinator's fence).
	Epoch func() uint64
	// BeforeScrape, when non-nil, runs before each /metrics or /statsz
	// render — the coordinator uses it to refresh remote node counters
	// so one scrape shows the whole cluster.
	BeforeScrape func()
}

// Server is a running admin HTTP server.
type Server struct {
	opts  Options
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Health is the /healthz response body.
type Health struct {
	Status        string `json:"status"`
	Role          string `json:"role"`
	Task          int    `json:"task"`
	Epoch         uint64 `json:"epoch"`
	PID           int    `json:"pid"`
	GoVersion     string `json:"go_version"`
	Module        string `json:"module,omitempty"`
	ModuleVersion string `json:"module_version,omitempty"`
	VCSRevision   string `json:"vcs_revision,omitempty"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

// Serve binds addr (e.g. "127.0.0.1:0" or ":9090") and serves the admin
// endpoints until Close. It returns once the listener is bound, so
// Addr() is immediately valid.
func Serve(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln, start: time.Now()}

	// A dedicated mux: pprof registers itself on http.DefaultServeMux at
	// import time, but the admin server must not inherit whatever else a
	// host process put there.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) scrapePrologue() *metrics.Registry {
	if s.opts.BeforeScrape != nil {
		s.opts.BeforeScrape()
	}
	if s.opts.Registry != nil {
		return s.opts.Registry
	}
	return metrics.NewRegistry()
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	reg := s.scrapePrologue()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := reg.WritePrometheus(w); err != nil {
		// Headers are gone; nothing useful left to do.
		return
	}
}

// Statsz is the /statsz response body: the same identity block as
// /healthz plus every registry series as JSON.
type Statsz struct {
	Role   string               `json:"role"`
	Task   int                  `json:"task"`
	Epoch  uint64               `json:"epoch"`
	Series []metrics.JSONSeries `json:"series"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	reg := s.scrapePrologue()
	body := Statsz{Role: s.opts.Role, Task: s.opts.Task, Epoch: s.epoch(), Series: reg.Gather()}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) epoch() uint64 {
	if s.opts.Epoch != nil {
		return s.opts.Epoch()
	}
	return 0
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Health{
		Status:        "ok",
		Role:          s.opts.Role,
		Task:          s.opts.Task,
		Epoch:         s.epoch(),
		PID:           os.Getpid(),
		GoVersion:     runtime.Version(),
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		h.Module = bi.Main.Path
		h.ModuleVersion = bi.Main.Version
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				h.VCSRevision = kv.Value
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(h)
}
