// Package model defines the data model of PS2Stream: spatio-textual objects,
// spatio-textual subscription (STS) queries with boolean keyword
// expressions, and the stream operations exchanged between system
// components.
//
// Following §III-A of the paper, an object is o = <text, loc> and an STS
// query is q = <K, R> where K is a set of keywords connected by AND or OR
// operators and R is a rectangle. An object matches a query when its
// location lies in R and its text satisfies the boolean expression.
package model

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"ps2stream/internal/geo"
)

// Object is a spatio-textual object (e.g. a geo-tagged tweet).
type Object struct {
	// ID identifies the object within a stream.
	ID uint64
	// Terms is the tokenised, de-duplicated textual content.
	Terms []string
	// Loc is the geographical coordinate of the object.
	Loc geo.Point
}

// HasTerm reports whether the object's text contains term.
func (o *Object) HasTerm(term string) bool {
	for _, t := range o.Terms {
		if t == term {
			return true
		}
	}
	return false
}

// TermSet returns the object's terms as a set. The set is rebuilt on each
// call; hot paths should cache it.
func (o *Object) TermSet() map[string]struct{} {
	s := make(map[string]struct{}, len(o.Terms))
	for _, t := range o.Terms {
		s[t] = struct{}{}
	}
	return s
}

// Expr is a boolean keyword expression in disjunctive normal form: the
// expression is satisfied when at least one conjunction has all of its
// terms present. The paper's query generator connects 1–3 keywords with
// either AND (one conjunction) or OR (k singleton conjunctions); Expr also
// represents arbitrary DNF combinations.
type Expr struct {
	// Conj holds the conjunctions. Each inner slice is a set of terms
	// that must all be present for the conjunction to be satisfied.
	Conj [][]string
}

// And returns an expression requiring all the given terms.
func And(terms ...string) Expr {
	return Expr{Conj: [][]string{append([]string(nil), terms...)}}
}

// Or returns an expression satisfied by any one of the given terms.
func Or(terms ...string) Expr {
	c := make([][]string, 0, len(terms))
	for _, t := range terms {
		c = append(c, []string{t})
	}
	return Expr{Conj: c}
}

// ErrEmptyExpr is returned by ParseExpr for expressions with no keywords.
var ErrEmptyExpr = errors.New("model: empty keyword expression")

// ParseExpr parses a flat boolean keyword expression of the forms used in
// the paper: "a", "a AND b AND c", or "a OR b OR c". Mixed AND/OR is
// accepted with OR binding looser than AND ("a AND b OR c" parses as
// (a∧b) ∨ c). Operators are case-insensitive.
func ParseExpr(s string) (Expr, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Expr{}, ErrEmptyExpr
	}
	var expr Expr
	var cur []string
	expectTerm := true
	for _, f := range fields {
		switch strings.ToUpper(f) {
		case "AND":
			if expectTerm {
				return Expr{}, fmt.Errorf("model: unexpected AND in %q", s)
			}
			expectTerm = true
		case "OR":
			if expectTerm {
				return Expr{}, fmt.Errorf("model: unexpected OR in %q", s)
			}
			expr.Conj = append(expr.Conj, cur)
			cur = nil
			expectTerm = true
		default:
			if !expectTerm {
				return Expr{}, fmt.Errorf("model: missing operator before %q in %q", f, s)
			}
			cur = append(cur, strings.ToLower(f))
			expectTerm = false
		}
	}
	if expectTerm {
		return Expr{}, fmt.Errorf("model: dangling operator in %q", s)
	}
	expr.Conj = append(expr.Conj, cur)
	return expr, nil
}

// String renders the expression in the paper's syntax.
func (e Expr) String() string {
	parts := make([]string, 0, len(e.Conj))
	for _, c := range e.Conj {
		parts = append(parts, strings.Join(c, " AND "))
	}
	return strings.Join(parts, " OR ")
}

// Empty reports whether the expression has no conjunctions.
func (e Expr) Empty() bool { return len(e.Conj) == 0 }

// Matches reports whether the term set satisfies the expression.
func (e Expr) Matches(terms map[string]struct{}) bool {
conj:
	for _, c := range e.Conj {
		for _, t := range c {
			if _, ok := terms[t]; !ok {
				continue conj
			}
		}
		return true
	}
	return false
}

// MatchesSlice reports whether the term slice satisfies the expression.
// It is equivalent to Matches(setOf(terms)) but avoids building a map for
// small term lists.
func (e Expr) MatchesSlice(terms []string) bool {
conj:
	for _, c := range e.Conj {
		for _, t := range c {
			if !containsStr(terms, t) {
				continue conj
			}
		}
		return true
	}
	return false
}

// Terms returns the distinct terms mentioned anywhere in the expression,
// sorted lexicographically.
func (e Expr) Terms() []string {
	seen := make(map[string]struct{})
	for _, c := range e.Conj {
		for _, t := range c {
			seen[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the expression.
func (e Expr) Clone() Expr {
	c := make([][]string, len(e.Conj))
	for i, conj := range e.Conj {
		c[i] = append([]string(nil), conj...)
	}
	return Expr{Conj: c}
}

// Query is a spatio-textual subscription (STS) query q = <K, R>.
type Query struct {
	// ID identifies the subscription; deletions refer to it.
	ID uint64
	// Expr is the boolean keyword expression (q.K).
	Expr Expr
	// Region is the rectangular region of interest (q.R).
	Region geo.Rect
	// Subscriber identifies the registering user; the merger uses it to
	// deliver results.
	Subscriber uint64
	// TopK, when positive together with Window, marks a sliding-window
	// top-k subscription (Wang et al., arXiv:1611.03204): instead of
	// forwarding every match, the system maintains the TopK
	// highest-scored objects published within the trailing Window and
	// delivers membership changes. Zero values give the paper's plain
	// boolean subscription.
	TopK   int
	Window time.Duration
}

// IsTopK reports whether the query is a sliding-window top-k subscription.
func (q *Query) IsTopK() bool { return q.TopK > 0 && q.Window > 0 }

// Matches reports whether object o is a result of query q: o.loc inside
// q.R and o.text satisfying q.K (§III-A).
func (q *Query) Matches(o *Object) bool {
	return q.Region.Contains(o.Loc) && q.Expr.MatchesSlice(o.Terms)
}

// SizeBytes estimates the serialised size of the query; the migration cost
// S_g of Definition 4 is the sum of this over a cell's queries.
func (q *Query) SizeBytes() int {
	n := 8 + 8 + 4*8 // ID + Subscriber + Region
	if q.TopK > 0 {
		n += 16 // TopK + Window
	}
	for _, c := range q.Expr.Conj {
		n += 8 // conjunction header
		for _, t := range c {
			n += 16 + len(t) // string header + bytes
		}
	}
	return n
}

// OpKind enumerates the operations carried by the unified input stream.
type OpKind uint8

const (
	// OpObject carries a spatio-textual object to be matched.
	OpObject OpKind = iota
	// OpInsert registers a new STS query.
	OpInsert
	// OpDelete drops an existing STS query.
	OpDelete
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	switch k {
	case OpObject:
		return "object"
	case OpInsert:
		return "insert"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one element of the workload stream: either an object to match, a
// query insertion, or a query deletion. Exactly one payload field is set
// according to Kind (for OpDelete, the full query is carried so dispatchers
// can route the deletion to the workers holding it, as in §III-B: "the
// request contains complete information of the STS query").
type Op struct {
	Kind  OpKind
	Obj   *Object
	Query *Query
	// Seq is the position of the op in its stream, used for latency
	// bookkeeping and deterministic replay.
	Seq uint64
}

// routeMix is the 64-bit golden-ratio multiplier every op routing hash
// shares (Fibonacci hashing): sequential ids spread uniformly across a
// small modulus.
const routeMix = 0x9E3779B97F4A7C15

// RouteHash is the op's routing hash: objects spread by object id,
// insert/delete pair up on the query id so a deletion can never overtake
// its insertion on another route. The dispatcher fields-grouping uses it
// to spread the spout's stream across dispatcher tasks; per-key ordering
// holds end to end because each hop after that preserves its input order
// outright (in-process queues by FIFO, the wire transport by batch
// sequence reassembly).
func (o *Op) RouteHash() uint64 {
	if o.Kind == OpObject {
		if o.Obj == nil {
			return 0
		}
		return o.Obj.ID * routeMix
	}
	if o.Query == nil {
		return 0
	}
	return o.Query.ID * routeMix
}

// Match is a (query, object) result pair produced by a worker and routed to
// a merger for deduplication and delivery.
type Match struct {
	QueryID    uint64
	Subscriber uint64
	ObjectID   uint64
	// Worker records which worker produced the match (for tests and
	// duplicate accounting).
	Worker int
}

func containsStr(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
