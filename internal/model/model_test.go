package model

import (
	"reflect"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
)

func TestParseExpr(t *testing.T) {
	tests := []struct {
		in      string
		want    Expr
		wantErr bool
	}{
		{"kobe", And("kobe"), false},
		{"kobe AND retired", And("kobe", "retired"), false},
		{"kobe and retired", And("kobe", "retired"), false},
		{"kobe OR lebron OR curry", Or("kobe", "lebron", "curry"), false},
		{"a AND b OR c", Expr{Conj: [][]string{{"a", "b"}, {"c"}}}, false},
		{"a OR b AND c", Expr{Conj: [][]string{{"a"}, {"b", "c"}}}, false},
		{"KOBE", And("kobe"), false},
		{"", Expr{}, true},
		{"AND", Expr{}, true},
		{"a AND", Expr{}, true},
		{"a OR", Expr{}, true},
		{"a b", Expr{}, true},
		{"AND a", Expr{}, true},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParseExpr(tt.in)
			if (err != nil) != tt.wantErr {
				t.Fatalf("ParseExpr(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			}
			if err == nil && !reflect.DeepEqual(got, tt.want) {
				t.Errorf("ParseExpr(%q) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestExprString(t *testing.T) {
	tests := []struct {
		e    Expr
		want string
	}{
		{And("a"), "a"},
		{And("a", "b"), "a AND b"},
		{Or("a", "b"), "a OR b"},
		{Expr{Conj: [][]string{{"a", "b"}, {"c"}}}, "a AND b OR c"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestExprMatches(t *testing.T) {
	terms := map[string]struct{}{"kobe": {}, "retired": {}, "nba": {}}
	tests := []struct {
		name string
		e    Expr
		want bool
	}{
		{"single hit", And("kobe"), true},
		{"single miss", And("lebron"), false},
		{"and all present", And("kobe", "retired"), true},
		{"and one missing", And("kobe", "lebron"), false},
		{"or one present", Or("lebron", "nba"), true},
		{"or none present", Or("lebron", "curry"), false},
		{"dnf second conj", Expr{Conj: [][]string{{"curry"}, {"kobe", "nba"}}}, true},
		{"empty expr", Expr{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.e.Matches(terms); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

// Property: MatchesSlice and Matches agree on arbitrary term sets.
func TestMatchesSliceEquivalence(t *testing.T) {
	vocab := []string{"a", "b", "c", "d", "e"}
	f := func(conjBits [3]uint8, termBits uint8) bool {
		var e Expr
		for _, bits := range conjBits {
			var conj []string
			for i, v := range vocab {
				if bits&(1<<i) != 0 {
					conj = append(conj, v)
				}
			}
			if len(conj) > 0 {
				e.Conj = append(e.Conj, conj)
			}
		}
		var terms []string
		set := map[string]struct{}{}
		for i, v := range vocab {
			if termBits&(1<<i) != 0 {
				terms = append(terms, v)
				set[v] = struct{}{}
			}
		}
		return e.Matches(set) == e.MatchesSlice(terms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestExprTerms(t *testing.T) {
	e := Expr{Conj: [][]string{{"b", "a"}, {"a", "c"}}}
	got := e.Terms()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms() = %v, want %v", got, want)
	}
}

func TestExprClone(t *testing.T) {
	e := Expr{Conj: [][]string{{"a", "b"}}}
	c := e.Clone()
	c.Conj[0][0] = "z"
	if e.Conj[0][0] != "a" {
		t.Error("Clone did not deep-copy conjunctions")
	}
}

func TestQueryMatches(t *testing.T) {
	q := &Query{
		ID:     1,
		Expr:   And("kobe", "retired"),
		Region: geo.NewRect(0, 0, 10, 10),
	}
	tests := []struct {
		name string
		o    Object
		want bool
	}{
		{"inside and text ok", Object{Terms: []string{"kobe", "retired", "nba"}, Loc: geo.Point{X: 5, Y: 5}}, true},
		{"outside region", Object{Terms: []string{"kobe", "retired"}, Loc: geo.Point{X: 11, Y: 5}}, false},
		{"text fails", Object{Terms: []string{"kobe"}, Loc: geo.Point{X: 5, Y: 5}}, false},
		{"boundary point", Object{Terms: []string{"kobe", "retired"}, Loc: geo.Point{X: 10, Y: 10}}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := q.Matches(&tt.o); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestObjectTermSet(t *testing.T) {
	o := Object{Terms: []string{"a", "b"}}
	s := o.TermSet()
	if _, ok := s["a"]; !ok {
		t.Error("TermSet missing a")
	}
	if _, ok := s["z"]; ok {
		t.Error("TermSet contains z")
	}
	if !o.HasTerm("b") || o.HasTerm("z") {
		t.Error("HasTerm wrong")
	}
}

func TestQuerySizeBytes(t *testing.T) {
	q1 := &Query{Expr: And("a")}
	q2 := &Query{Expr: And("a", "longerterm")}
	if q1.SizeBytes() <= 0 {
		t.Error("SizeBytes not positive")
	}
	if q2.SizeBytes() <= q1.SizeBytes() {
		t.Error("SizeBytes not monotone in expression size")
	}
}

func TestOpKindString(t *testing.T) {
	if OpObject.String() != "object" || OpInsert.String() != "insert" || OpDelete.String() != "delete" {
		t.Error("OpKind.String mismatch")
	}
	if OpKind(42).String() == "" {
		t.Error("unknown OpKind should still render")
	}
}

// Property: ParseExpr(e.String()) reproduces e for arbitrary generated DNF
// expressions — the parser and printer are inverses on the paper's query
// language.
func TestParseStringRoundTripProperty(t *testing.T) {
	vocab := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	f := func(shape []uint8) bool {
		if len(shape) == 0 {
			return true
		}
		if len(shape) > 5 {
			shape = shape[:5]
		}
		var e Expr
		v := 0
		for _, s := range shape {
			n := int(s%3) + 1
			conj := make([]string, 0, n)
			for i := 0; i < n; i++ {
				conj = append(conj, vocab[v%len(vocab)])
				v++
			}
			e.Conj = append(e.Conj, conj)
		}
		got, err := ParseExpr(e.String())
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MatchesSlice and Matches agree for arbitrary term sets.
func TestMatchesSliceEquivalenceProperty(t *testing.T) {
	vocab := []string{"a", "b", "c", "d"}
	f := func(exprBits, termBits uint8) bool {
		var conj []string
		for i, v := range vocab {
			if exprBits&(1<<uint(i)) != 0 {
				conj = append(conj, v)
			}
		}
		if len(conj) == 0 {
			conj = []string{"a"}
		}
		e := Expr{Conj: [][]string{conj, {"z"}}}
		var terms []string
		for i, v := range vocab {
			if termBits&(1<<uint(i)) != 0 {
				terms = append(terms, v)
			}
		}
		set := make(map[string]struct{}, len(terms))
		for _, tm := range terms {
			set[tm] = struct{}{}
		}
		return e.MatchesSlice(terms) == e.Matches(set)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
