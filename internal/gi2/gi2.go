// Package gi2 implements GI2 (Grid-Inverted-Index) [29], the in-memory
// index maintained by every PS2Stream worker to organise STS queries
// (§IV-D). The space is divided into grid cells; each cell holds an
// inverted index over query keywords. A query is appended to the inverted
// list of its least-frequent keyword (per conjunction for OR queries), and
// deletions are lazy: deleted ids go to a tombstone set and entries are
// physically removed when matching traverses their list.
//
// An Index is owned by a single worker goroutine and is not safe for
// concurrent use.
package gi2

import (
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// Index is the per-worker GI2 structure.
type Index struct {
	g     *grid.Grid
	stats *textutil.Stats
	cells []cell
	// tombstones holds ids of queries deleted but not yet purged from
	// inverted lists (the paper's lazy-deletion hash table).
	tombstones map[uint64]struct{}
	// queries maps live query ids to their definition; refs counts how
	// many (cell, term) entries reference each id so the definition can
	// be dropped once fully purged.
	queries map[uint64]*model.Query
	refs    map[uint64]int
	entries int
	scratch []uint64 // reusable match-dedup buffer
}

type cell struct {
	inverted map[string][]*model.Query
	entries  int
	objSeen  int64 // objects matched against this cell in the current window
	// termHits counts, per registration key, how many objects hit its
	// inverted list this window — the per-key statistics Phase I of the
	// local load adjustment plans splits with.
	termHits map[string]int64
}

// New returns an empty index over bounds with granularity×granularity
// cells, using stats to select least-frequent keywords. A nil stats uses
// empty statistics (all terms equally infrequent, ties broken
// lexicographically).
func New(bounds geo.Rect, granularity int, stats *textutil.Stats) *Index {
	if stats == nil {
		stats = textutil.NewStats()
	}
	g := grid.New(bounds, granularity, granularity)
	return &Index{
		g:          g,
		stats:      stats,
		cells:      make([]cell, g.NumCells()),
		tombstones: make(map[uint64]struct{}),
		queries:    make(map[uint64]*model.Query),
		refs:       make(map[uint64]int),
	}
}

// Grid exposes the underlying grid (shared geometry with the dispatcher).
func (ix *Index) Grid() *grid.Grid { return ix.g }

// RegistrationKeys returns the distinct least-frequent keywords, one per
// conjunction of q, under which the query is indexed. It delegates to
// textutil.Stats.RegistrationKeys so dispatchers and workers share one
// rule.
func RegistrationKeys(q *model.Query, stats *textutil.Stats) []string {
	return stats.RegistrationKeys(q.Expr.Conj)
}

// Insert registers q in every cell its region overlaps. Reinserting an id
// that is tombstoned clears the tombstone first (the paper's streams never
// reuse ids; this keeps the structure safe if callers do).
func (ix *Index) Insert(q *model.Query) {
	delete(ix.tombstones, q.ID)
	keys := RegistrationKeys(q, ix.stats)
	if len(keys) == 0 {
		return
	}
	ix.g.VisitOverlapping(q.Region, func(id int) {
		ix.insertAt(id, q, keys)
	})
}

// InsertAt registers q in a single cell only. It is used when migrating a
// cell between workers: the receiving worker becomes responsible for
// exactly that cell's share of the query. Duplicate (cell, key, id)
// entries are skipped.
func (ix *Index) InsertAt(cellID int, q *model.Query) {
	delete(ix.tombstones, q.ID)
	keys := RegistrationKeys(q, ix.stats)
	if len(keys) == 0 {
		return
	}
	ix.insertAt(cellID, q, keys)
}

func (ix *Index) insertAt(cellID int, q *model.Query, keys []string) {
	c := &ix.cells[cellID]
	if c.inverted == nil {
		c.inverted = make(map[string][]*model.Query)
	}
	for _, k := range keys {
		list := c.inverted[k]
		dup := false
		for _, e := range list {
			if e.ID == q.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		c.inverted[k] = append(list, q)
		c.entries++
		ix.entries++
		ix.refs[q.ID]++
		ix.queries[q.ID] = q
	}
}

// Delete lazily removes the query: the id is tombstoned and physically
// purged when matching next traverses a list containing it (§IV-D).
func (ix *Index) Delete(id uint64) {
	if _, live := ix.refs[id]; !live {
		return
	}
	ix.tombstones[id] = struct{}{}
}

// Match finds all live queries matching o and invokes fn once per query.
// Tombstoned entries encountered on the traversed lists are removed, which
// implements lazy deletion.
func (ix *Index) Match(o *model.Object, fn func(q *model.Query)) {
	cid := ix.g.CellOf(o.Loc)
	c := &ix.cells[cid]
	c.objSeen++
	if c.inverted == nil {
		return
	}
	ix.scratch = ix.scratch[:0]
	for _, term := range o.Terms {
		list, ok := c.inverted[term]
		if !ok {
			continue
		}
		if c.termHits == nil {
			c.termHits = make(map[string]int64)
		}
		c.termHits[term]++
		w := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				ix.dropRef(q.ID)
				c.entries--
				ix.entries--
				continue
			}
			list[w] = q
			w++
			if q.Region.Contains(o.Loc) && q.Expr.MatchesSlice(o.Terms) && !ix.seen(q.ID) {
				ix.scratch = append(ix.scratch, q.ID)
				fn(q)
			}
		}
		if w == 0 {
			delete(c.inverted, term)
		} else {
			c.inverted[term] = list[:w]
		}
	}
}

func (ix *Index) seen(id uint64) bool {
	for _, s := range ix.scratch {
		if s == id {
			return true
		}
	}
	return false
}

func (ix *Index) dropRef(id uint64) {
	ix.refs[id]--
	if ix.refs[id] <= 0 {
		delete(ix.refs, id)
		delete(ix.queries, id)
		delete(ix.tombstones, id)
	}
}

// MatchIDs returns the matching query ids (convenience for tests).
func (ix *Index) MatchIDs(o *model.Object) []uint64 {
	var out []uint64
	ix.Match(o, func(q *model.Query) { out = append(out, q.ID) })
	return out
}

// Purge eagerly removes all tombstoned entries from every list. It is the
// eager-deletion ablation referenced in DESIGN.md and is also used before
// migration so extracted cells contain only live queries.
func (ix *Index) Purge() {
	if len(ix.tombstones) == 0 {
		return
	}
	for i := range ix.cells {
		ix.purgeCell(i)
	}
}

func (ix *Index) purgeCell(cellID int) {
	c := &ix.cells[cellID]
	for term, list := range c.inverted {
		w := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				ix.dropRef(q.ID)
				c.entries--
				ix.entries--
				continue
			}
			list[w] = q
			w++
		}
		if w == 0 {
			delete(c.inverted, term)
		} else {
			c.inverted[term] = list[:w]
		}
	}
}

// QueryCount returns the number of live distinct queries referenced by the
// index (tombstoned-but-unpurged queries count until purged).
func (ix *Index) QueryCount() int { return len(ix.queries) }

// LiveQueryCount returns distinct queries excluding tombstoned ones.
func (ix *Index) LiveQueryCount() int {
	n := len(ix.queries)
	for id := range ix.tombstones {
		if _, ok := ix.refs[id]; ok {
			n--
		}
	}
	return n
}

// EntryCount returns the number of (cell, term, query) entries.
func (ix *Index) EntryCount() int { return ix.entries }

// CellStat summarises one cell for load accounting and migration
// (Definition 3: L_g = n_o · n_q).
type CellStat struct {
	CellID  int
	Entries int
	// ObjSeen is n_o: objects matched against the cell this window.
	ObjSeen int64
	// Load is L_g = n_o · n_q.
	Load float64
	// SizeBytes is S_g: the total serialised size of the cell's queries.
	SizeBytes int64
}

// CellStats returns statistics for every non-empty cell.
func (ix *Index) CellStats() []CellStat {
	var out []CellStat
	for i := range ix.cells {
		c := &ix.cells[i]
		if c.entries == 0 && c.objSeen == 0 {
			continue
		}
		out = append(out, ix.cellStat(i))
	}
	return out
}

func (ix *Index) cellStat(i int) CellStat {
	c := &ix.cells[i]
	var size int64
	for _, list := range c.inverted {
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; !dead {
				size += int64(q.SizeBytes())
			}
		}
	}
	return CellStat{
		CellID:    i,
		Entries:   c.entries,
		ObjSeen:   c.objSeen,
		Load:      float64(c.objSeen) * float64(c.entries),
		SizeBytes: size,
	}
}

// ResetWindow zeroes the per-cell object and term-hit counters, starting a
// new load measurement window.
func (ix *Index) ResetWindow() {
	for i := range ix.cells {
		ix.cells[i].objSeen = 0
		ix.cells[i].termHits = nil
	}
}

// TermStat describes one registration key within a cell: live queries
// registered under it and object hits on its inverted list this window.
type TermStat struct {
	Term    string
	Queries int
	ObjHits int64
}

// CellTermStats returns per-key statistics for a cell, sorted by term.
func (ix *Index) CellTermStats(cellID int) []TermStat {
	c := &ix.cells[cellID]
	out := make([]TermStat, 0, len(c.inverted))
	for term, list := range c.inverted {
		live := 0
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; !dead {
				live++
			}
		}
		if live == 0 {
			continue
		}
		out = append(out, TermStat{Term: term, Queries: live, ObjHits: c.termHits[term]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

// ExtractCellKeys removes and returns the distinct live queries registered
// in the cell under the given registration keys, leaving other keys'
// entries in place. It is the extraction half of a Phase I text split.
func (ix *Index) ExtractCellKeys(cellID int, keys []string) []*model.Query {
	c := &ix.cells[cellID]
	if c.inverted == nil {
		return nil
	}
	var out []*model.Query
	seen := make(map[uint64]struct{})
	for _, k := range keys {
		list, ok := c.inverted[k]
		if !ok {
			continue
		}
		for _, q := range list {
			_, dead := ix.tombstones[q.ID]
			ix.dropRef(q.ID)
			ix.entries--
			c.entries--
			if dead {
				continue
			}
			if _, dup := seen[q.ID]; dup {
				continue
			}
			seen[q.ID] = struct{}{}
			out = append(out, q)
		}
		delete(c.inverted, k)
		delete(c.termHits, k)
	}
	return out
}

// ExtractCell removes and returns the distinct live queries registered in
// the cell. Used as the unit of migration ("The queries are migrated in
// the unit of one cell in the gridt index", §V-A).
func (ix *Index) ExtractCell(cellID int) []*model.Query {
	c := &ix.cells[cellID]
	if c.inverted == nil {
		return nil
	}
	var out []*model.Query
	seen := make(map[uint64]struct{})
	for _, list := range c.inverted {
		for _, q := range list {
			_, dead := ix.tombstones[q.ID]
			ix.dropRef(q.ID)
			ix.entries--
			if dead {
				continue
			}
			if _, dup := seen[q.ID]; dup {
				continue
			}
			seen[q.ID] = struct{}{}
			out = append(out, q)
		}
	}
	c.inverted = nil
	c.entries = 0
	return out
}

// QueriesInCell returns the distinct live queries in the cell without
// removing them.
func (ix *Index) QueriesInCell(cellID int) []*model.Query {
	c := &ix.cells[cellID]
	var out []*model.Query
	seen := make(map[uint64]struct{})
	for _, list := range c.inverted {
		for _, q := range list {
			if _, dead := ix.tombstones[q.ID]; dead {
				continue
			}
			if _, dup := seen[q.ID]; dup {
				continue
			}
			seen[q.ID] = struct{}{}
			out = append(out, q)
		}
	}
	return out
}

// QueriesInCellKeys returns the distinct live queries registered in the
// cell under the given registration keys, without removing them (the
// copy-before-flip half of a migration).
func (ix *Index) QueriesInCellKeys(cellID int, keys []string) []*model.Query {
	c := &ix.cells[cellID]
	if c.inverted == nil {
		return nil
	}
	var out []*model.Query
	seen := make(map[uint64]struct{})
	for _, k := range keys {
		for _, q := range c.inverted[k] {
			if _, dead := ix.tombstones[q.ID]; dead {
				continue
			}
			if _, dup := seen[q.ID]; dup {
				continue
			}
			seen[q.ID] = struct{}{}
			out = append(out, q)
		}
	}
	return out
}

// HasLive reports whether the query id is stored and not tombstoned.
func (ix *Index) HasLive(id uint64) bool {
	if _, dead := ix.tombstones[id]; dead {
		return false
	}
	_, ok := ix.refs[id]
	return ok
}

// Get returns the stored definition of a live query, or nil.
func (ix *Index) Get(id uint64) *model.Query {
	if !ix.HasLive(id) {
		return nil
	}
	return ix.queries[id]
}

// Each invokes fn once per live (non-tombstoned) query, in unspecified
// order. It satisfies the qindex.Index contract (checkpointing).
func (ix *Index) Each(fn func(q *model.Query)) {
	for id, q := range ix.queries {
		if _, dead := ix.tombstones[id]; dead {
			continue
		}
		fn(q)
	}
}

// LiveQueryIDs returns the ids of all live (non-tombstoned) queries.
func (ix *Index) LiveQueryIDs() []uint64 {
	out := make([]uint64, 0, len(ix.queries))
	for id := range ix.queries {
		if _, dead := ix.tombstones[id]; !dead {
			out = append(out, id)
		}
	}
	return out
}

// Footprint estimates the resident memory of the index in bytes: shared
// query definitions plus per-entry and per-list overhead. This drives the
// worker-memory comparison (Figure 10).
func (ix *Index) Footprint() int64 {
	var b int64
	for _, q := range ix.queries {
		b += int64(q.SizeBytes())
	}
	b += int64(ix.entries) * 8 // one pointer per entry
	for i := range ix.cells {
		c := &ix.cells[i]
		b += int64(len(c.inverted)) * 56 // map bucket + slice header per list
	}
	b += int64(len(ix.tombstones)) * 16
	b += int64(len(ix.refs)) * 24
	return b
}
