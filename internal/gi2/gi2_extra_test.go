package gi2

import (
	"sort"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

func TestCellTermStats(t *testing.T) {
	ix := newTestIndex()
	r := geo.NewRect(1, 1, 2, 2)
	ix.Insert(q(1, model.And("rare"), r))
	ix.Insert(q(2, model.And("rare"), r))
	ix.Insert(q(3, model.And("mid"), r))
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	// Drive objects so term hits accumulate.
	for i := 0; i < 5; i++ {
		ix.Match(obj(uint64(i), geo.Point{X: 1.5, Y: 1.5}, "rare"), func(*model.Query) {})
	}
	stats := ix.CellTermStats(cid)
	if len(stats) != 2 {
		t.Fatalf("got %d term stats, want 2: %+v", len(stats), stats)
	}
	// Sorted by term: "mid" then "rare".
	if stats[0].Term != "mid" || stats[1].Term != "rare" {
		t.Fatalf("order: %+v", stats)
	}
	if stats[1].Queries != 2 {
		t.Errorf("rare queries = %d, want 2", stats[1].Queries)
	}
	if stats[1].ObjHits != 5 {
		t.Errorf("rare hits = %d, want 5", stats[1].ObjHits)
	}
	if stats[0].ObjHits != 0 {
		t.Errorf("mid hits = %d, want 0", stats[0].ObjHits)
	}
	// Tombstoned queries drop out of the stats.
	ix.Delete(1)
	ix.Delete(2)
	stats = ix.CellTermStats(cid)
	for _, s := range stats {
		if s.Term == "rare" {
			t.Errorf("tombstoned term still reported: %+v", s)
		}
	}
}

func TestExtractCellKeys(t *testing.T) {
	ix := newTestIndex()
	r := geo.NewRect(1, 1, 2, 2)
	ix.Insert(q(1, model.And("rare"), r))
	ix.Insert(q(2, model.And("mid"), r))
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	got := ix.ExtractCellKeys(cid, []string{"rare"})
	if len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("ExtractCellKeys = %v", got)
	}
	// "mid" queries stay.
	if ids := ix.MatchIDs(obj(1, geo.Point{X: 1.5, Y: 1.5}, "mid")); len(ids) != 1 || ids[0] != 2 {
		t.Errorf("mid query lost: %v", ids)
	}
	// "rare" is gone from this cell.
	if ids := ix.MatchIDs(obj(2, geo.Point{X: 1.5, Y: 1.5}, "rare")); len(ids) != 0 {
		t.Errorf("rare query still present: %v", ids)
	}
}

func TestQueriesInCellKeysReadOnly(t *testing.T) {
	ix := newTestIndex()
	r := geo.NewRect(1, 1, 2, 2)
	ix.Insert(q(1, model.And("rare"), r))
	ix.Insert(q(2, model.Or("rare", "mid"), r))
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	got := ix.QueriesInCellKeys(cid, []string{"rare"})
	ids := make([]int, 0, len(got))
	for _, qq := range got {
		ids = append(ids, int(qq.ID))
	}
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("QueriesInCellKeys = %v", ids)
	}
	// Read-only: matching still works afterwards.
	if m := ix.MatchIDs(obj(1, geo.Point{X: 1.5, Y: 1.5}, "rare")); len(m) != 2 {
		t.Errorf("index mutated by read: %v", m)
	}
	// Tombstoned queries excluded.
	ix.Delete(1)
	got = ix.QueriesInCellKeys(cid, []string{"rare"})
	if len(got) != 1 || got[0].ID != 2 {
		t.Errorf("tombstoned query returned: %v", got)
	}
}

func TestHasLiveGetLiveQueryIDs(t *testing.T) {
	ix := newTestIndex()
	qq := q(7, model.And("rare"), geo.NewRect(1, 1, 2, 2))
	ix.Insert(qq)
	if !ix.HasLive(7) {
		t.Error("HasLive(7) = false after insert")
	}
	if got := ix.Get(7); got != qq {
		t.Errorf("Get(7) = %v", got)
	}
	if ids := ix.LiveQueryIDs(); len(ids) != 1 || ids[0] != 7 {
		t.Errorf("LiveQueryIDs = %v", ids)
	}
	ix.Delete(7)
	if ix.HasLive(7) {
		t.Error("HasLive(7) = true after delete")
	}
	if ix.Get(7) != nil {
		t.Error("Get(7) != nil after delete")
	}
	if ids := ix.LiveQueryIDs(); len(ids) != 0 {
		t.Errorf("LiveQueryIDs after delete = %v", ids)
	}
	if ix.HasLive(999) {
		t.Error("HasLive(unknown) = true")
	}
}

func TestResetWindowClearsTermHits(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(1, 1, 2, 2)))
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	ix.Match(obj(1, geo.Point{X: 1.5, Y: 1.5}, "rare"), func(*model.Query) {})
	if ix.CellTermStats(cid)[0].ObjHits != 1 {
		t.Fatal("hit not recorded")
	}
	ix.ResetWindow()
	if got := ix.CellTermStats(cid)[0].ObjHits; got != 0 {
		t.Errorf("hits after ResetWindow = %d", got)
	}
}

func TestExtractCellKeysRefcountConsistency(t *testing.T) {
	ix := newTestIndex()
	// A query spanning two cells, extracted by key from one cell only:
	// it must remain live (refcount > 0) in the other.
	ix.Insert(q(1, model.And("rare"), geo.NewRect(1, 1, 20, 2))) // spans multiple columns
	c1 := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	before := ix.EntryCount()
	ix.ExtractCellKeys(c1, []string{"rare"})
	if ix.EntryCount() != before-1 {
		t.Errorf("entries %d -> %d, want -1", before, ix.EntryCount())
	}
	if !ix.HasLive(1) {
		t.Error("query dropped entirely after single-cell key extraction")
	}
	if got := ix.MatchIDs(obj(1, geo.Point{X: 15, Y: 1.5}, "rare")); len(got) != 1 {
		t.Errorf("query lost in remaining cell: %v", got)
	}
}

func TestQueriesInCellAndEach(t *testing.T) {
	st := textutil.NewStats()
	st.AddWeighted("common", 100)
	ix := New(geo.NewRect(0, 0, 100, 100), 4, st)
	// Three queries in the same cell (two under the same rare key), one
	// spanning several cells, one tombstoned.
	q1 := &model.Query{ID: 1, Expr: model.And("rare", "common"), Region: geo.NewRect(1, 1, 5, 5)}
	q2 := &model.Query{ID: 2, Expr: model.Or("rare", "other"), Region: geo.NewRect(2, 2, 6, 6)}
	q3 := &model.Query{ID: 3, Expr: model.And("common"), Region: geo.NewRect(0, 0, 90, 90)}
	q4 := &model.Query{ID: 4, Expr: model.And("rare"), Region: geo.NewRect(1, 1, 4, 4)}
	for _, q := range []*model.Query{q1, q2, q3, q4} {
		ix.Insert(q)
	}
	ix.Delete(4)
	cell := ix.Grid().CellOf(geo.Point{X: 2, Y: 2})

	got := map[uint64]bool{}
	for _, q := range ix.QueriesInCell(cell) {
		if got[q.ID] {
			t.Errorf("QueriesInCell returned %d twice", q.ID)
		}
		got[q.ID] = true
	}
	for _, want := range []uint64{1, 2, 3} {
		if !got[want] {
			t.Errorf("QueriesInCell missing %d (got %v)", want, got)
		}
	}
	if got[4] {
		t.Error("QueriesInCell returned tombstoned query 4")
	}

	keyed := ix.QueriesInCellKeys(cell, []string{"rare"})
	ids := map[uint64]bool{}
	for _, q := range keyed {
		ids[q.ID] = true
	}
	if !ids[1] || !ids[2] || ids[3] || ids[4] {
		t.Errorf("QueriesInCellKeys(rare) = %v", ids)
	}

	each := map[uint64]bool{}
	ix.Each(func(q *model.Query) {
		if each[q.ID] {
			t.Errorf("Each visited %d twice", q.ID)
		}
		each[q.ID] = true
	})
	if len(each) != 3 || each[4] {
		t.Errorf("Each visited %v, want {1,2,3}", each)
	}
	if lc := ix.LiveQueryCount(); lc != 3 {
		t.Errorf("LiveQueryCount = %d, want 3", lc)
	}
}
