package gi2

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

var testBounds = geo.NewRect(0, 0, 100, 100)

func newTestIndex() *Index {
	stats := textutil.NewStats()
	stats.AddWeighted("common", 1000)
	stats.AddWeighted("mid", 100)
	stats.AddWeighted("rare", 1)
	return New(testBounds, 16, stats)
}

func q(id uint64, expr model.Expr, r geo.Rect) *model.Query {
	return &model.Query{ID: id, Expr: expr, Region: r}
}

func obj(id uint64, loc geo.Point, terms ...string) *model.Object {
	return &model.Object{ID: id, Terms: terms, Loc: loc}
}

func TestRegistrationKeys(t *testing.T) {
	stats := textutil.NewStats()
	stats.AddWeighted("common", 1000)
	stats.AddWeighted("rare", 1)
	tests := []struct {
		name string
		e    model.Expr
		want []string
	}{
		{"and picks rare", model.And("common", "rare"), []string{"rare"}},
		{"or registers each", model.Or("common", "rare"), []string{"common", "rare"}},
		{"duplicate keys merged", model.Expr{Conj: [][]string{{"rare", "common"}, {"rare"}}}, []string{"rare"}},
		{"empty expr", model.Expr{}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := RegistrationKeys(&model.Query{Expr: tt.e}, stats)
			sort.Strings(got)
			want := append([]string(nil), tt.want...)
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("RegistrationKeys = %v, want %v", got, want)
			}
		})
	}
}

func TestInsertMatchBasic(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(10, 10, 30, 30)))
	ix.Insert(q(2, model.And("common", "rare"), geo.NewRect(0, 0, 50, 50)))
	ix.Insert(q(3, model.And("mid"), geo.NewRect(60, 60, 90, 90)))

	got := ix.MatchIDs(obj(1, geo.Point{X: 20, Y: 20}, "rare", "common"))
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if fmt.Sprint(got) != "[1 2]" {
		t.Errorf("MatchIDs = %v, want [1 2]", got)
	}
	// Object outside both regions.
	if got := ix.MatchIDs(obj(2, geo.Point{X: 95, Y: 5}, "rare", "common")); len(got) != 0 {
		t.Errorf("out-of-region match = %v", got)
	}
	// Object lacking the AND term.
	if got := ix.MatchIDs(obj(3, geo.Point{X: 20, Y: 20}, "common")); len(got) != 0 {
		t.Errorf("text mismatch matched = %v", got)
	}
}

func TestOrQueryMatchedOnce(t *testing.T) {
	ix := newTestIndex()
	// Both disjuncts present in the object: the query must fire once.
	ix.Insert(q(1, model.Or("rare", "mid"), geo.NewRect(0, 0, 100, 100)))
	got := ix.MatchIDs(obj(1, geo.Point{X: 50, Y: 50}, "rare", "mid"))
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("MatchIDs = %v, want exactly [1]", got)
	}
}

func TestQueryRegisteredUnderLeastFrequentOnly(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("common", "rare"), geo.NewRect(0, 0, 10, 10)))
	// An object containing only "common" cannot hit the list (query sits
	// under "rare"), and indeed does not match the AND anyway.
	if got := ix.MatchIDs(obj(1, geo.Point{X: 5, Y: 5}, "common")); len(got) != 0 {
		t.Errorf("unexpected match %v", got)
	}
	// Object with both terms finds it via the rare list.
	if got := ix.MatchIDs(obj(2, geo.Point{X: 5, Y: 5}, "common", "rare")); len(got) != 1 {
		t.Errorf("expected match, got %v", got)
	}
}

func TestLazyDeletion(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(0, 0, 20, 20)))
	before := ix.EntryCount()
	if before == 0 {
		t.Fatal("no entries after insert")
	}
	ix.Delete(1)
	// Entry still physically present until a match traverses the list.
	if ix.EntryCount() != before {
		t.Fatalf("Delete physically removed entries (lazy expected)")
	}
	if got := ix.MatchIDs(obj(1, geo.Point{X: 5, Y: 5}, "rare")); len(got) != 0 {
		t.Errorf("deleted query matched: %v", got)
	}
	// The traversed cell's entry was purged.
	if ix.EntryCount() >= before {
		t.Errorf("lazy purge did not remove entry: %d >= %d", ix.EntryCount(), before)
	}
}

func TestDeleteUnknownID(t *testing.T) {
	ix := newTestIndex()
	ix.Delete(999) // must not panic or leak a tombstone
	if n := ix.LiveQueryCount(); n != 0 {
		t.Errorf("LiveQueryCount = %d", n)
	}
}

func TestPurge(t *testing.T) {
	ix := newTestIndex()
	for i := uint64(1); i <= 10; i++ {
		ix.Insert(q(i, model.And("rare"), geo.NewRect(0, 0, 100, 100)))
	}
	for i := uint64(1); i <= 5; i++ {
		ix.Delete(i)
	}
	ix.Purge()
	if got := ix.QueryCount(); got != 5 {
		t.Errorf("QueryCount after purge = %d, want 5", got)
	}
	got := ix.MatchIDs(obj(1, geo.Point{X: 50, Y: 50}, "rare"))
	if len(got) != 5 {
		t.Errorf("matched %d queries after purge, want 5", len(got))
	}
}

func TestReinsertAfterDelete(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(0, 0, 20, 20)))
	ix.Delete(1)
	ix.Insert(q(1, model.And("rare"), geo.NewRect(0, 0, 20, 20)))
	if got := ix.MatchIDs(obj(1, geo.Point{X: 5, Y: 5}, "rare")); len(got) != 1 {
		t.Errorf("reinserted query should match once, got %v", got)
	}
}

func TestMultiCellInsertion(t *testing.T) {
	ix := newTestIndex()
	// Region spanning many cells: object anywhere inside must match.
	ix.Insert(q(1, model.And("rare"), geo.NewRect(0, 0, 100, 100)))
	for _, p := range []geo.Point{{X: 1, Y: 1}, {X: 99, Y: 99}, {X: 50, Y: 3}} {
		if got := ix.MatchIDs(obj(1, p, "rare")); len(got) != 1 {
			t.Errorf("at %v matched %v", p, got)
		}
	}
}

func TestExtractCell(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(0, 0, 100, 100))) // spans all cells
	ix.Insert(q(2, model.And("mid"), geo.NewRect(1, 1, 2, 2)))      // single cell
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	qs := ix.ExtractCell(cid)
	if len(qs) != 2 {
		t.Fatalf("ExtractCell returned %d queries, want 2", len(qs))
	}
	// Objects in the extracted cell no longer match on this worker.
	if got := ix.MatchIDs(obj(1, geo.Point{X: 1.5, Y: 1.5}, "rare", "mid")); len(got) != 0 {
		t.Errorf("extracted cell still matches: %v", got)
	}
	// Query 1 still matches in other cells.
	if got := ix.MatchIDs(obj(2, geo.Point{X: 80, Y: 80}, "rare")); len(got) != 1 {
		t.Errorf("query 1 lost outside extracted cell: %v", got)
	}
	// Query 2 is gone entirely.
	if ix.QueryCount() != 1 {
		t.Errorf("QueryCount = %d, want 1", ix.QueryCount())
	}
}

func TestExtractSkipsTombstoned(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(1, 1, 2, 2)))
	ix.Insert(q(2, model.And("rare"), geo.NewRect(1, 1, 2, 2)))
	ix.Delete(1)
	cid := ix.Grid().CellOf(geo.Point{X: 1.5, Y: 1.5})
	qs := ix.ExtractCell(cid)
	if len(qs) != 1 || qs[0].ID != 2 {
		t.Errorf("ExtractCell = %v, want only query 2", qs)
	}
}

func TestInsertAtSingleCell(t *testing.T) {
	ix := newTestIndex()
	qq := q(1, model.And("rare"), geo.NewRect(0, 0, 100, 100))
	cid := ix.Grid().CellOf(geo.Point{X: 50, Y: 50})
	ix.InsertAt(cid, qq)
	if got := ix.MatchIDs(obj(1, geo.Point{X: 50, Y: 50}, "rare")); len(got) != 1 {
		t.Errorf("InsertAt cell did not match: %v", got)
	}
	// Other cells must not have it.
	if got := ix.MatchIDs(obj(2, geo.Point{X: 1, Y: 1}, "rare")); len(got) != 0 {
		t.Errorf("InsertAt leaked to other cells: %v", got)
	}
	// Duplicate InsertAt is a no-op.
	before := ix.EntryCount()
	ix.InsertAt(cid, qq)
	if ix.EntryCount() != before {
		t.Errorf("duplicate InsertAt added entries")
	}
}

func TestCellStatsAndLoad(t *testing.T) {
	ix := newTestIndex()
	ix.Insert(q(1, model.And("rare"), geo.NewRect(1, 1, 2, 2)))
	p := geo.Point{X: 1.5, Y: 1.5}
	for i := 0; i < 10; i++ {
		ix.Match(obj(uint64(i), p, "rare"), func(*model.Query) {})
	}
	stats := ix.CellStats()
	var found bool
	for _, cs := range stats {
		if cs.CellID == ix.Grid().CellOf(p) {
			found = true
			if cs.ObjSeen != 10 {
				t.Errorf("ObjSeen = %d, want 10", cs.ObjSeen)
			}
			if cs.Load != 10*float64(cs.Entries) {
				t.Errorf("Load = %v, want n_o*n_q = %v", cs.Load, 10*float64(cs.Entries))
			}
			if cs.SizeBytes <= 0 {
				t.Errorf("SizeBytes = %d", cs.SizeBytes)
			}
		}
	}
	if !found {
		t.Fatal("cell stats missing the active cell")
	}
	ix.ResetWindow()
	for _, cs := range ix.CellStats() {
		if cs.ObjSeen != 0 {
			t.Errorf("ResetWindow left ObjSeen = %d", cs.ObjSeen)
		}
	}
}

func TestFootprintGrows(t *testing.T) {
	ix := newTestIndex()
	empty := ix.Footprint()
	for i := uint64(0); i < 100; i++ {
		ix.Insert(q(i, model.And("rare"), geo.NewRect(0, 0, 50, 50)))
	}
	full := ix.Footprint()
	if full <= empty {
		t.Errorf("Footprint did not grow: %d -> %d", empty, full)
	}
}

// Property: GI2 matching agrees with the naive oracle over random
// workloads.
func TestMatchEquivalenceProperty(t *testing.T) {
	vocab := []string{"common", "mid", "rare", "alpha", "beta", "gamma"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		stats := textutil.NewStats()
		for i, v := range vocab {
			stats.AddWeighted(v, 1<<uint(len(vocab)-i))
		}
		ix := New(testBounds, 8, stats)
		var queries []*model.Query
		for i := 0; i < 40; i++ {
			nTerms := 1 + rng.Intn(3)
			terms := make([]string, 0, nTerms)
			for len(terms) < nTerms {
				c := vocab[rng.Intn(len(vocab))]
				dup := false
				for _, e := range terms {
					dup = dup || e == c
				}
				if !dup {
					terms = append(terms, c)
				}
			}
			var e model.Expr
			if rng.Intn(2) == 0 {
				e = model.And(terms...)
			} else {
				e = model.Or(terms...)
			}
			x, y := rng.Float64()*100, rng.Float64()*100
			qq := q(uint64(i+1), e, geo.NewRect(x, y, x+rng.Float64()*30, y+rng.Float64()*30))
			queries = append(queries, qq)
			ix.Insert(qq)
		}
		// Delete a third of them.
		live := map[uint64]bool{}
		for _, qq := range queries {
			live[qq.ID] = true
		}
		for i := 0; i < len(queries); i += 3 {
			ix.Delete(queries[i].ID)
			live[queries[i].ID] = false
		}
		for i := 0; i < 30; i++ {
			nT := 1 + rng.Intn(4)
			terms := make([]string, 0, nT)
			for j := 0; j < nT; j++ {
				terms = append(terms, vocab[rng.Intn(len(vocab))])
			}
			o := obj(uint64(i), geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}, terms...)
			got := map[uint64]bool{}
			for _, id := range ix.MatchIDs(o) {
				got[id] = true
			}
			want := map[uint64]bool{}
			for _, qq := range queries {
				if live[qq.ID] && qq.Matches(o) {
					want[qq.ID] = true
				}
			}
			if len(got) != len(want) {
				return false
			}
			for id := range want {
				if !got[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQueryOutsideBoundsClamps(t *testing.T) {
	ix := newTestIndex()
	// Region entirely outside the monitored space: clamped to boundary
	// cells so matching still works for clamped objects.
	ix.Insert(q(1, model.And("rare"), geo.NewRect(150, 150, 160, 160)))
	if ix.EntryCount() == 0 {
		t.Error("out-of-bounds query was dropped")
	}
}
