package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
)

var testBounds = geo.NewRect(-100, 20, -70, 50)

// makeSample builds a small synthetic spatio-textual workload with skewed
// terms and clustered locations, sufficient to exercise every builder.
func makeSample(t testing.TB, seed int64, nObj, nQry int) *Sample {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vocab := make([]string, 200)
	for i := range vocab {
		vocab[i] = fmt.Sprintf("term%03d", i)
	}
	pick := func() string {
		// Quadratic skew: low ranks far more likely.
		r := rng.Float64()
		return vocab[int(r*r*float64(len(vocab)))]
	}
	randPoint := func() geo.Point {
		// Two hotspots plus uniform background.
		switch rng.Intn(3) {
		case 0:
			return geo.Point{X: -74 + rng.NormFloat64()*0.5, Y: 40.7 + rng.NormFloat64()*0.5}
		case 1:
			return geo.Point{X: -87.6 + rng.NormFloat64()*0.5, Y: 41.8 + rng.NormFloat64()*0.5}
		default:
			return geo.Point{
				X: testBounds.Min.X + rng.Float64()*testBounds.Width(),
				Y: testBounds.Min.Y + rng.Float64()*testBounds.Height(),
			}
		}
	}
	clampP := func(p geo.Point) geo.Point {
		if p.X < testBounds.Min.X {
			p.X = testBounds.Min.X
		}
		if p.X > testBounds.Max.X {
			p.X = testBounds.Max.X
		}
		if p.Y < testBounds.Min.Y {
			p.Y = testBounds.Min.Y
		}
		if p.Y > testBounds.Max.Y {
			p.Y = testBounds.Max.Y
		}
		return p
	}
	objects := make([]*model.Object, nObj)
	for i := range objects {
		n := 3 + rng.Intn(5)
		terms := map[string]struct{}{}
		for len(terms) < n {
			terms[pick()] = struct{}{}
		}
		var ts []string
		for s := range terms {
			ts = append(ts, s)
		}
		objects[i] = &model.Object{ID: uint64(i), Terms: ts, Loc: clampP(randPoint())}
	}
	queries := make([]*model.Query, nQry)
	for i := range queries {
		n := 1 + rng.Intn(3)
		terms := map[string]struct{}{}
		for len(terms) < n {
			terms[pick()] = struct{}{}
		}
		var ts []string
		for s := range terms {
			ts = append(ts, s)
		}
		var e model.Expr
		if rng.Intn(2) == 0 {
			e = model.And(ts...)
		} else {
			e = model.Or(ts...)
		}
		c := clampP(randPoint())
		half := 0.1 + rng.Float64()*1.5
		queries[i] = &model.Query{
			ID:     uint64(i + 1),
			Expr:   e,
			Region: geo.NewRect(c.X-half, c.Y-half, c.X+half, c.Y+half).Clip(testBounds),
		}
	}
	return NewSample(objects, queries, testBounds, load.DefaultCosts)
}

// checkRoutingInvariant verifies that every matching (object, query) pair
// shares at least one worker between the object route and the query's
// insertion route.
func checkRoutingInvariant(t *testing.T, a Assignment, s *Sample) {
	t.Helper()
	queryWorkers := make(map[uint64]map[int]bool)
	for _, q := range s.Queries {
		ws := a.RouteQuery(q, true)
		if len(ws) == 0 {
			t.Fatalf("%s: query %d routed to no worker", a.Name(), q.ID)
		}
		set := map[int]bool{}
		for _, w := range ws {
			if w < 0 || w >= a.NumWorkers() {
				t.Fatalf("%s: query %d routed to invalid worker %d", a.Name(), q.ID, w)
			}
			set[w] = true
		}
		queryWorkers[q.ID] = set
	}
	missed := 0
	pairs := 0
	for _, o := range s.Objects {
		ows := a.RouteObject(o)
		for _, w := range ows {
			if w < 0 || w >= a.NumWorkers() {
				t.Fatalf("%s: object %d routed to invalid worker %d", a.Name(), o.ID, w)
			}
		}
		oset := map[int]bool{}
		for _, w := range ows {
			oset[w] = true
		}
		for _, q := range s.Queries {
			if !q.Matches(o) {
				continue
			}
			pairs++
			shared := false
			for w := range queryWorkers[q.ID] {
				if oset[w] {
					shared = true
					break
				}
			}
			if !shared {
				missed++
				if missed <= 3 {
					t.Errorf("%s: match (obj %d, query %d) has no shared worker: obj->%v query->%v",
						a.Name(), o.ID, q.ID, ows, sortedKeys(queryWorkers[q.ID]))
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatalf("%s: sample produced no matching pairs; test is vacuous", a.Name())
	}
	if missed > 0 {
		t.Fatalf("%s: %d/%d matching pairs missed", a.Name(), missed, pairs)
	}
}

func sortedKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRoutingInvariantAllBuilders(t *testing.T) {
	s := makeSample(t, 1, 2000, 400)
	for name, b := range Builders() {
		t.Run(name, func(t *testing.T) {
			a, err := b.Build(s, 8)
			if err != nil {
				t.Fatal(err)
			}
			if a.NumWorkers() != 8 {
				t.Fatalf("NumWorkers = %d", a.NumWorkers())
			}
			if a.Name() == "" {
				t.Error("empty Name")
			}
			if a.Footprint() <= 0 {
				t.Error("Footprint <= 0")
			}
			checkRoutingInvariant(t, a, s)
		})
	}
}

func TestRoutingInvariantVariousWorkerCounts(t *testing.T) {
	s := makeSample(t, 2, 800, 150)
	for _, m := range []int{1, 2, 3, 16} {
		for name, b := range Builders() {
			t.Run(fmt.Sprintf("%s-m%d", name, m), func(t *testing.T) {
				a, err := b.Build(s, m)
				if err != nil {
					t.Fatal(err)
				}
				checkRoutingInvariant(t, a, s)
			})
		}
	}
}

func TestInvalidWorkerCount(t *testing.T) {
	s := makeSample(t, 3, 50, 10)
	for name, b := range Builders() {
		if _, err := b.Build(s, 0); err == nil {
			t.Errorf("%s: Build(m=0) did not error", name)
		}
	}
}

func TestTextObjectDiscard(t *testing.T) {
	s := makeSample(t, 4, 500, 100)
	a, err := FrequencyBuilder{}.Build(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	// No queries registered yet: H2 empty, every object is discarded.
	o := s.Objects[0]
	if got := a.RouteObject(o); len(got) != 0 {
		t.Errorf("object routed to %v before any query registered", got)
	}
	for _, q := range s.Queries {
		a.RouteQuery(q, true)
	}
	// Object with a nonsense term only: still discarded.
	junk := &model.Object{ID: 9999, Terms: []string{"zzzzneverseen"}, Loc: o.Loc}
	if got := a.RouteObject(junk); len(got) != 0 {
		t.Errorf("junk object routed to %v", got)
	}
}

func TestTextDeleteMirrorsInsert(t *testing.T) {
	s := makeSample(t, 5, 500, 100)
	a, err := MetricBuilder{}.Build(s, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range s.Queries {
		ins := a.RouteQuery(q, true)
		del := a.RouteQuery(q, false)
		if fmt.Sprint(ins) != fmt.Sprint(del) {
			t.Fatalf("query %d: insert route %v != delete route %v", q.ID, ins, del)
		}
	}
	// After deleting everything H2 must be empty again.
	ta := a.(*TextAssignment)
	if n := ta.activeKeyCount(); n != 0 {
		t.Errorf("H2 has %d residual keys after balanced insert/delete", n)
	}
}

func TestTextH2Refcount(t *testing.T) {
	s := makeSample(t, 6, 200, 50)
	a, _ := FrequencyBuilder{}.Build(s, 4)
	ta := a.(*TextAssignment)
	q1 := s.Queries[0]
	q2 := &model.Query{ID: 777, Expr: q1.Expr.Clone(), Region: q1.Region}
	a.RouteQuery(q1, true)
	a.RouteQuery(q2, true)
	a.RouteQuery(q1, false)
	// q2 still live: its keys must remain in H2.
	keys := s.Stats.RegistrationKeys(q2.Expr.Conj)
	for _, k := range keys {
		if ta.activeKeyRefs(k) == 0 {
			t.Errorf("H2 lost key %q while a query still references it", k)
		}
	}
}

func TestSpaceObjectSingleWorker(t *testing.T) {
	s := makeSample(t, 7, 800, 100)
	for _, name := range []string{"grid", "kdtree", "rtree"} {
		a, err := Builders()[name].Build(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range s.Objects[:100] {
			if got := a.RouteObject(o); len(got) != 1 {
				t.Errorf("%s: object routed to %d workers, want 1", name, len(got))
			}
		}
	}
}

func TestSpaceBalance(t *testing.T) {
	s := makeSample(t, 8, 4000, 200)
	for _, name := range []string{"grid", "kdtree"} {
		a, err := Builders()[name].Build(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]float64, 8)
		for _, o := range s.Objects {
			for _, w := range a.RouteObject(o) {
				counts[w]++
			}
		}
		bf := load.BalanceFactor(counts)
		if bf > 5 {
			t.Errorf("%s: object balance factor %v too high (counts %v)", name, bf, counts)
		}
	}
}

func TestTextBalance(t *testing.T) {
	s := makeSample(t, 9, 4000, 400)
	for _, name := range []string{"frequency", "metric", "hypergraph"} {
		a, err := Builders()[name].Build(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range s.Queries {
			a.RouteQuery(q, true)
		}
		counts := make([]float64, 8)
		for _, o := range s.Objects {
			for _, w := range a.RouteObject(o) {
				counts[w]++
			}
		}
		bf := load.BalanceFactor(counts)
		if bf > 12 {
			t.Errorf("%s: object balance factor %v too high (counts %v)", name, bf, counts)
		}
	}
}

// Metric partitioning should duplicate objects to fewer workers than
// frequency partitioning on co-occurrence-heavy data — the reason it wins
// among text baselines in Figure 6.
func TestMetricBeatsFrequencyOnDuplication(t *testing.T) {
	s := makeSample(t, 10, 4000, 600)
	dup := func(a Assignment) float64 {
		for _, q := range s.Queries {
			a.RouteQuery(q, true)
		}
		var total int
		for _, o := range s.Objects {
			total += len(a.RouteObject(o))
		}
		return float64(total) / float64(len(s.Objects))
	}
	fa, _ := FrequencyBuilder{}.Build(s, 8)
	ma, _ := MetricBuilder{}.Build(s, 8)
	fdup := dup(fa)
	mdup := dup(ma)
	if mdup > fdup*1.05 {
		t.Errorf("metric duplication %.3f should not exceed frequency %.3f", mdup, fdup)
	}
}

func TestEmptySample(t *testing.T) {
	s := NewSample(nil, nil, testBounds, load.Costs{})
	for name, b := range Builders() {
		a, err := b.Build(s, 4)
		if err != nil {
			t.Errorf("%s: Build on empty sample errored: %v", name, err)
			continue
		}
		o := &model.Object{ID: 1, Terms: []string{"x"}, Loc: testBounds.Center()}
		q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.RectAround(testBounds.Center(), 10, 10)}
		qw := a.RouteQuery(q, true)
		ow := a.RouteObject(o)
		shared := false
		for _, w1 := range ow {
			for _, w2 := range qw {
				shared = shared || w1 == w2
			}
		}
		if !shared {
			t.Errorf("%s: empty-sample assignment broke routing invariant (obj %v, qry %v)", name, ow, qw)
		}
	}
}

func TestBalancedGreedy(t *testing.T) {
	assign, w := balancedGreedy([]float64{10, 8, 6, 4, 2, 1}, 3)
	if len(assign) != 6 {
		t.Fatalf("assign length %d", len(assign))
	}
	var total float64
	for _, x := range w {
		total += x
	}
	if total != 31 {
		t.Errorf("bucket weights sum %v, want 31", total)
	}
	if f := load.BalanceFactor(w); f > 1.5 {
		t.Errorf("greedy balance factor %v", f)
	}
}

func TestHashTermStable(t *testing.T) {
	a := hashTerm("hello", 8)
	b := hashTerm("hello", 8)
	if a != b {
		t.Error("hashTerm not deterministic")
	}
	if a < 0 || a >= 8 {
		t.Errorf("hashTerm out of range: %d", a)
	}
}
