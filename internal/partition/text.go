package partition

import (
	"hash/fnv"
	"math/bits"
	"sort"
	"sync"

	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// TextAssignment routes by the textual content of tuples. The lexicon is
// partitioned into m subsets T_1..T_m via the owner map (the dispatcher's
// H1); terms outside the build-time lexicon fall back to a deterministic
// hash. A second map H2 tracks the registration keys of live queries so
// objects are only sent to workers that can actually match them, and
// objects containing no active key are discarded (§IV-C).
type TextAssignment struct {
	name  string
	m     int
	owner map[string]int
	stats *textutil.Stats

	// h2 tracks active registration keys (term → live query count),
	// sharded by term hash so concurrent dispatchers rarely contend.
	h2 [h2Shards]h2Shard
}

type h2Shard struct {
	mu   sync.RWMutex
	keys map[string]int
}

const h2Shards = 16

func (a *TextAssignment) shardOf(term string) *h2Shard {
	h := fnv.New32a()
	h.Write([]byte(term))
	return &a.h2[h.Sum32()&(h2Shards-1)]
}

// NewTextAssignment builds an assignment from an explicit term→worker map.
// stats supplies term frequencies for least-frequent-keyword selection and
// must match the statistics used by the workers' GI2 indexes.
func NewTextAssignment(name string, m int, owner map[string]int, stats *textutil.Stats) *TextAssignment {
	a := &TextAssignment{
		name:  name,
		m:     m,
		owner: owner,
		stats: stats,
	}
	for i := range a.h2 {
		a.h2[i].keys = make(map[string]int)
	}
	return a
}

// Owner returns the worker owning term (H1 lookup with hash fallback).
func (a *TextAssignment) Owner(term string) int {
	if w, ok := a.owner[term]; ok {
		return w
	}
	return hashTerm(term, a.m)
}

// RouteObject implements Assignment.
func (a *TextAssignment) RouteObject(o *model.Object) []int {
	var mask uint64
	for _, t := range o.Terms {
		sh := a.shardOf(t)
		sh.mu.RLock()
		active := sh.keys[t] > 0
		sh.mu.RUnlock()
		if active {
			mask |= 1 << uint(a.Owner(t))
		}
	}
	return workersFromMask(mask, nil)
}

// RouteQuery implements Assignment.
func (a *TextAssignment) RouteQuery(q *model.Query, insert bool) []int {
	keys := a.stats.RegistrationKeys(q.Expr.Conj)
	var mask uint64
	for _, k := range keys {
		mask |= 1 << uint(a.Owner(k))
		sh := a.shardOf(k)
		sh.mu.Lock()
		if insert {
			sh.keys[k]++
		} else if sh.keys[k] > 0 {
			sh.keys[k]--
			if sh.keys[k] == 0 {
				delete(sh.keys, k)
			}
		}
		sh.mu.Unlock()
	}
	return workersFromMask(mask, nil)
}

// NumWorkers implements Assignment.
func (a *TextAssignment) NumWorkers() int { return a.m }

// Name implements Assignment.
func (a *TextAssignment) Name() string { return a.name }

// Footprint implements Assignment.
func (a *TextAssignment) Footprint() int64 {
	var b int64
	for t := range a.owner {
		b += int64(len(t)) + 24
	}
	for i := range a.h2 {
		sh := &a.h2[i]
		sh.mu.RLock()
		b += int64(len(sh.keys)) * 24
		sh.mu.RUnlock()
	}
	return b
}

// activeKeyCount reports live H2 keys (tests).
func (a *TextAssignment) activeKeyCount() int {
	n := 0
	for i := range a.h2 {
		sh := &a.h2[i]
		sh.mu.RLock()
		n += len(sh.keys)
		sh.mu.RUnlock()
	}
	return n
}

// activeKeyRefs returns the live refcount of a registration key (tests).
func (a *TextAssignment) activeKeyRefs(k string) int {
	sh := a.shardOf(k)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.keys[k]
}

// workersFromMask expands a worker bitmask into a slice (ascending ids).
func workersFromMask(mask uint64, buf []int) []int {
	out := buf[:0]
	for mask != 0 {
		w := bits.TrailingZeros64(mask)
		out = append(out, w)
		mask &^= 1 << uint(w)
	}
	return out
}

// FrequencyBuilder implements the frequency-based text-partitioning
// baseline: terms are spread over workers by greedy bin packing of their
// object frequencies, balancing load but ignoring co-occurrence.
type FrequencyBuilder struct{}

// Name implements Builder.
func (FrequencyBuilder) Name() string { return "frequency" }

// Build implements Builder.
func (FrequencyBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	terms := lexicon(s)
	weights := make([]float64, len(terms))
	for i, t := range terms {
		weights[i] = float64(s.Stats.Count(t)) + 1
	}
	assign, _ := balancedGreedy(weights, m)
	owner := make(map[string]int, len(terms))
	for i, t := range terms {
		owner[t] = assign[i]
	}
	return NewTextAssignment("frequency", m, owner, s.Stats), nil
}

// lexicon returns the union of object terms and query terms, sorted for
// determinism.
func lexicon(s *Sample) []string {
	set := make(map[string]struct{})
	for _, t := range s.Stats.Terms() {
		set[t] = struct{}{}
	}
	for _, q := range s.Queries {
		for _, t := range q.Expr.Terms() {
			set[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// coocIndex holds term co-occurrence counts over the sampled objects,
// restricted to the maxVocab most frequent terms to bound memory.
type coocIndex struct {
	counts map[string]map[string]int
	inTop  map[string]bool
}

const (
	coocMaxVocab    = 8192
	coocMaxObjTerms = 16
)

func buildCooc(s *Sample) *coocIndex {
	top := s.Stats.TopTerms(coocMaxVocab)
	inTop := make(map[string]bool, len(top))
	for _, t := range top {
		inTop[t] = true
	}
	c := &coocIndex{counts: make(map[string]map[string]int), inTop: inTop}
	for _, o := range s.Objects {
		terms := o.Terms
		if len(terms) > coocMaxObjTerms {
			terms = terms[:coocMaxObjTerms]
		}
		for i, a := range terms {
			if !inTop[a] {
				continue
			}
			for j, b := range terms {
				if i == j || !inTop[b] {
					continue
				}
				mm := c.counts[a]
				if mm == nil {
					mm = make(map[string]int)
					c.counts[a] = mm
				}
				mm[b]++
			}
		}
	}
	return c
}

// affinity returns how strongly term t co-occurs with each worker's
// current term set, as per-worker scores.
func (c *coocIndex) affinity(t string, owner map[string]int, m int) []float64 {
	scores := make([]float64, m)
	for u, n := range c.counts[t] {
		if w, ok := owner[u]; ok {
			scores[w] += float64(n)
		}
	}
	return scores
}

// MetricBuilder implements the metric-based text partitioning of
// S3-TM [28]: terms are placed in descending frequency order, each going
// to the partition maximising a co-occurrence affinity metric discounted
// by partition fullness, so frequently co-occurring terms land together
// and objects are duplicated to fewer workers.
type MetricBuilder struct{}

// Name implements Builder.
func (MetricBuilder) Name() string { return "metric" }

// Build implements Builder.
func (MetricBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	cooc := buildCooc(s)
	terms := lexicon(s)
	sort.Slice(terms, func(i, j int) bool {
		ci, cj := s.Stats.Count(terms[i]), s.Stats.Count(terms[j])
		if ci != cj {
			return ci > cj
		}
		return terms[i] < terms[j]
	})
	var total float64
	for _, t := range terms {
		total += float64(s.Stats.Count(t)) + 1
	}
	maxPart := total / float64(m) * 1.2
	owner := make(map[string]int, len(terms))
	partW := make([]float64, m)
	for _, t := range terms {
		w := float64(s.Stats.Count(t)) + 1
		scores := cooc.affinity(t, owner, m)
		best, bestScore := -1, 0.0
		for p := 0; p < m; p++ {
			if partW[p]+w > maxPart {
				continue
			}
			// The metric: affinity discounted by relative fullness.
			score := scores[p] / (1 + partW[p]/(total/float64(m)))
			if score > bestScore {
				best, bestScore = p, score
			}
		}
		if best == -1 {
			// No positive affinity (or all affine partitions full): seed
			// the lightest partition so every worker receives terms.
			best = 0
			for p := 1; p < m; p++ {
				if partW[p] < partW[best] {
					best = p
				}
			}
		}
		owner[t] = best
		partW[best] += w
	}
	return NewTextAssignment("metric", m, owner, s.Stats), nil
}

// HypergraphBuilder implements the hypergraph-based text partitioning of
// [27]: terms are hypergraph vertices and objects are hyperedges; the
// partitioner minimises the number of cut hyperedges (objects duplicated
// across workers) under a balance constraint. The implementation seeds
// with the frequency-greedy split and refines with label-propagation
// passes over the star-expanded hypergraph.
type HypergraphBuilder struct {
	// Passes is the number of refinement sweeps (default 4).
	Passes int
}

// Name implements Builder.
func (HypergraphBuilder) Name() string { return "hypergraph" }

// Build implements Builder.
func (b HypergraphBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	passes := b.Passes
	if passes <= 0 {
		passes = 4
	}
	terms := lexicon(s)
	weights := make([]float64, len(terms))
	var total float64
	for i, t := range terms {
		weights[i] = float64(s.Stats.Count(t)) + 1
		total += weights[i]
	}
	assign, partW := balancedGreedy(weights, m)
	owner := make(map[string]int, len(terms))
	for i, t := range terms {
		owner[t] = assign[i]
	}
	cooc := buildCooc(s)
	maxPart := total / float64(m) * 1.15
	minPart := total / float64(m) * 0.5
	// Refinement: move each term to the partition holding most of its
	// co-occurring mass, when the balance constraint allows.
	order := append([]string(nil), terms...)
	sort.Slice(order, func(i, j int) bool {
		ci, cj := s.Stats.Count(order[i]), s.Stats.Count(order[j])
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	for pass := 0; pass < passes; pass++ {
		moved := 0
		for _, t := range order {
			cur := owner[t]
			w := float64(s.Stats.Count(t)) + 1
			if partW[cur]-w < minPart {
				continue // moving t would starve its current partition
			}
			scores := cooc.affinity(t, owner, m)
			best, bestScore := cur, scores[cur]
			for p := 0; p < m; p++ {
				if p == cur || partW[p]+w > maxPart {
					continue
				}
				if scores[p] > bestScore {
					best, bestScore = p, scores[p]
				}
			}
			if best != cur {
				partW[cur] -= w
				partW[best] += w
				owner[t] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
	return NewTextAssignment("hypergraph", m, owner, s.Stats), nil
}
