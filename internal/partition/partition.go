// Package partition defines the workload-distribution interfaces of
// PS2Stream and implements the six baseline strategies evaluated in §VI-B:
// three text-partitioning algorithms (frequency, hypergraph [27],
// metric [28]) and three space-partitioning algorithms (grid [18],
// kd-tree [21][26], R-tree [18]).
//
// A Builder analyses a workload sample and produces an Assignment; the
// dispatcher uses the Assignment to route objects and query
// insertions/deletions to workers. The hybrid strategy of §IV lives in
// package hybrid and implements the same interfaces.
package partition

import (
	"fmt"
	"hash/fnv"
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/textutil"
)

// Sample is the workload snapshot a Builder analyses: a set of
// spatio-textual objects and STS queries (Definition 2's O and Q^i), the
// term statistics over the objects, and the bounding space S.
type Sample struct {
	Objects []*model.Object
	Queries []*model.Query
	Stats   *textutil.Stats
	Bounds  geo.Rect
	Costs   load.Costs
}

// NewSample bundles objects and queries, computing term statistics and
// bounds when not supplied. A zero Costs is replaced by load.DefaultCosts.
func NewSample(objects []*model.Object, queries []*model.Query, bounds geo.Rect, costs load.Costs) *Sample {
	stats := textutil.NewStats()
	for _, o := range objects {
		stats.Add(o.Terms...)
	}
	if costs == (load.Costs{}) {
		costs = load.DefaultCosts
	}
	return &Sample{Objects: objects, Queries: queries, Stats: stats, Bounds: bounds, Costs: costs}
}

// Assignment routes tuples to workers. Implementations must guarantee the
// routing invariant: for every object o and registered query q with
// q.Matches(o), RouteObject(o) and the RouteQuery(q, true) made at
// registration share at least one worker.
//
// Assignments are shared by all dispatcher goroutines; implementations
// must be safe for concurrent use.
type Assignment interface {
	// RouteObject returns the workers that must match o. An empty result
	// means the object cannot match any registered query and is dropped
	// ("The object can be discarded if it contains no terms in H2").
	RouteObject(o *model.Object) []int
	// RouteQuery returns the workers that must store q. insert is true
	// for registrations (updating dynamic routing state such as H2) and
	// false for deletions (which must reach every worker the insertion
	// reached).
	RouteQuery(q *model.Query, insert bool) []int
	// NumWorkers returns the number of workers m.
	NumWorkers() int
	// Footprint estimates the dispatcher-side memory of the routing
	// structure in bytes (Figure 9).
	Footprint() int64
	// Name identifies the strategy.
	Name() string
}

// Builder constructs an Assignment from a workload sample.
type Builder interface {
	Name() string
	Build(s *Sample, m int) (Assignment, error)
}

// Builders returns the six baseline builders keyed by their evaluation
// names.
func Builders() map[string]Builder {
	return map[string]Builder{
		"frequency":  FrequencyBuilder{},
		"hypergraph": HypergraphBuilder{},
		"metric":     MetricBuilder{},
		"grid":       GridBuilder{},
		"kdtree":     KDTreeBuilder{},
		"rtree":      RTreeBuilder{},
	}
}

// hashTerm provides the deterministic fallback worker for terms absent
// from the build sample.
func hashTerm(term string, m int) int {
	h := fnv.New32a()
	h.Write([]byte(term))
	return int(h.Sum32() % uint32(m))
}

// balancedGreedy assigns weighted items to m buckets: heaviest first, each
// to the currently lightest bucket. Returns the bucket per item and the
// bucket weights. Deterministic: ties broken by bucket index.
func balancedGreedy(weights []float64, m int) (assign []int, bucketW []float64) {
	type item struct {
		idx int
		w   float64
	}
	items := make([]item, len(weights))
	for i, w := range weights {
		items[i] = item{i, w}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].w != items[j].w {
			return items[i].w > items[j].w
		}
		return items[i].idx < items[j].idx
	})
	assign = make([]int, len(weights))
	bucketW = make([]float64, m)
	for _, it := range items {
		best := 0
		for b := 1; b < m; b++ {
			if bucketW[b] < bucketW[best] {
				best = b
			}
		}
		assign[it.idx] = best
		bucketW[best] += it.w
	}
	return assign, bucketW
}

// validateWorkers guards Builder inputs.
func validateWorkers(m int) error {
	if m < 1 {
		return fmt.Errorf("partition: need at least 1 worker, got %d", m)
	}
	return nil
}
