package partition

import (
	"math"

	"ps2stream/internal/geo"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/index/kdtree"
	"ps2stream/internal/index/rtree"
	"ps2stream/internal/model"
)

// SpaceAssignment routes by location only: the space is rasterised onto a
// uniform grid and every cell is owned by exactly one worker. Objects go
// to the owner of their cell; queries go to the owners of every cell their
// region overlaps. All three space baselines (grid, kd-tree, R-tree) are
// expressed this way — the paper likewise transforms the kd-tree "to a
// grid index to accelerate the workload distribution in the dispatchers".
type SpaceAssignment struct {
	name      string
	m         int
	g         *grid.Grid
	cellOwner []int
}

// NewSpaceAssignment wraps an explicit cell→worker map.
func NewSpaceAssignment(name string, m int, g *grid.Grid, cellOwner []int) *SpaceAssignment {
	return &SpaceAssignment{name: name, m: m, g: g, cellOwner: cellOwner}
}

// RouteObject implements Assignment.
func (a *SpaceAssignment) RouteObject(o *model.Object) []int {
	return []int{a.cellOwner[a.g.CellOf(o.Loc)]}
}

// RouteQuery implements Assignment.
func (a *SpaceAssignment) RouteQuery(q *model.Query, insert bool) []int {
	var mask uint64
	a.g.VisitOverlapping(q.Region, func(id int) {
		mask |= 1 << uint(a.cellOwner[id])
	})
	return workersFromMask(mask, nil)
}

// NumWorkers implements Assignment.
func (a *SpaceAssignment) NumWorkers() int { return a.m }

// Name implements Assignment.
func (a *SpaceAssignment) Name() string { return a.name }

// Footprint implements Assignment.
func (a *SpaceAssignment) Footprint() int64 {
	return int64(len(a.cellOwner))*8 + 64
}

// CellOwners exposes the raster for tests and migration bookkeeping.
func (a *SpaceAssignment) CellOwners() []int { return a.cellOwner }

// Grid exposes the raster geometry.
func (a *SpaceAssignment) Grid() *grid.Grid { return a.g }

// GridBuilder implements the grid space-partitioning baseline of
// SpatialHadoop [18]: the space is a set of uniform cells whose sampled
// loads are spread over workers by greedy bin packing.
type GridBuilder struct {
	// Granularity is the per-axis cell count (default 64, the paper's
	// best-performing 2^6).
	Granularity int
}

// Name implements Builder.
func (GridBuilder) Name() string { return "grid" }

// Build implements Builder.
func (b GridBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	gran := b.Granularity
	if gran <= 0 {
		gran = grid.DefaultGranularity
	}
	g := grid.New(s.Bounds, gran, gran)
	loads := cellLoads(g, s)
	assign, _ := balancedGreedy(loads, m)
	return NewSpaceAssignment("grid", m, g, assign), nil
}

// cellLoads estimates Definition 1 load per grid cell from the sample.
func cellLoads(g *grid.Grid, s *Sample) []float64 {
	objs := make([]float64, g.NumCells())
	qrys := make([]float64, g.NumCells())
	for _, o := range s.Objects {
		objs[g.CellOf(o.Loc)]++
	}
	for _, q := range s.Queries {
		g.VisitOverlapping(q.Region, func(id int) { qrys[id]++ })
	}
	loads := make([]float64, g.NumCells())
	for i := range loads {
		loads[i] = s.Costs.Node(objs[i], qrys[i])
	}
	return loads
}

// KDTreeBuilder implements the kd-tree space-partitioning baseline of
// AQWA [21] and Tornado [26]: a kd-tree over the sampled objects is split
// to m load-balanced leaves, one per worker, then rasterised to a grid.
type KDTreeBuilder struct {
	Granularity int
}

// Name implements Builder.
func (KDTreeBuilder) Name() string { return "kdtree" }

// Build implements Builder.
func (b KDTreeBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	gran := b.Granularity
	if gran <= 0 {
		gran = grid.DefaultGranularity
	}
	items := make([]kdtree.Item, len(s.Objects))
	for i, o := range s.Objects {
		items[i] = kdtree.Item{P: o.Loc, W: 1}
	}
	tree := kdtree.Build(s.Bounds, items, m)
	g := grid.New(s.Bounds, gran, gran)
	owner := make([]int, g.NumCells())
	for id := range owner {
		leaf := tree.Locate(g.CellRect(id).Center())
		owner[id] = leaf.LeafID % m
	}
	return NewSpaceAssignment("kdtree", m, g, owner), nil
}

// RTreeBuilder implements the R-tree space-partitioning baseline of
// SpatialHadoop [18]: an STR-bulk-loaded R-tree over the sampled objects
// yields leaf MBRs, which are grouped into m balanced partitions; cells
// are owned by the group of the nearest covering leaf.
type RTreeBuilder struct {
	Granularity int
	// LeavesPerWorker controls R-tree fan-out so that roughly this many
	// leaves exist per worker (default 4).
	LeavesPerWorker int
}

// Name implements Builder.
func (RTreeBuilder) Name() string { return "rtree" }

// Build implements Builder.
func (b RTreeBuilder) Build(s *Sample, m int) (Assignment, error) {
	if err := validateWorkers(m); err != nil {
		return nil, err
	}
	gran := b.Granularity
	if gran <= 0 {
		gran = grid.DefaultGranularity
	}
	lpw := b.LeavesPerWorker
	if lpw <= 0 {
		lpw = 4
	}
	g := grid.New(s.Bounds, gran, gran)
	if len(s.Objects) == 0 {
		return NewSpaceAssignment("rtree", m, g, make([]int, g.NumCells())), nil
	}
	fanout := len(s.Objects) / (m * lpw)
	if fanout < 8 {
		fanout = 8
	}
	entries := make([]rtree.Entry, len(s.Objects))
	for i, o := range s.Objects {
		entries[i] = rtree.Entry{Rect: geo.Rect{Min: o.Loc, Max: o.Loc}, Data: i}
	}
	tree := rtree.BulkLoad(entries, fanout)
	leafRects := tree.LeafRects()
	leafEntries := tree.LeafEntries()
	loads := make([]float64, len(leafRects))
	for i, es := range leafEntries {
		loads[i] = float64(len(es))
	}
	groupOf, _ := balancedGreedy(loads, m)
	owner := make([]int, g.NumCells())
	for id := range owner {
		c := g.CellRect(id).Center()
		best, bestDist := 0, math.Inf(1)
		for i, lr := range leafRects {
			d := rectDistance(lr, c)
			if d < bestDist {
				best, bestDist = i, d
				if d == 0 {
					break
				}
			}
		}
		owner[id] = groupOf[best]
	}
	return NewSpaceAssignment("rtree", m, g, owner), nil
}

// rectDistance is the squared distance from p to the nearest point of r
// (0 when contained).
func rectDistance(r geo.Rect, p geo.Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return dx*dx + dy*dy
}
