package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalises(t *testing.T) {
	tests := []struct {
		name           string
		x1, y1, x2, y2 float64
	}{
		{"ordered", 0, 0, 1, 1},
		{"swapped x", 1, 0, 0, 1},
		{"swapped y", 0, 1, 1, 0},
		{"swapped both", 1, 1, 0, 0},
		{"degenerate", 0.5, 0.5, 0.5, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewRect(tt.x1, tt.y1, tt.x2, tt.y2)
			if !r.Valid() {
				t.Fatalf("NewRect(%v,%v,%v,%v) = %v, not valid", tt.x1, tt.y1, tt.x2, tt.y2, r)
			}
		})
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(0, 0, 10, 5)
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"center", Point{5, 2.5}, true},
		{"min corner", Point{0, 0}, true},
		{"max corner", Point{10, 5}, true},
		{"left edge", Point{0, 3}, true},
		{"outside left", Point{-0.01, 3}, false},
		{"outside top", Point{5, 5.01}, false},
		{"far away", Point{100, 100}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectIntersects(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	tests := []struct {
		name string
		s    Rect
		want bool
	}{
		{"identical", NewRect(0, 0, 10, 10), true},
		{"contained", NewRect(2, 2, 4, 4), true},
		{"containing", NewRect(-5, -5, 15, 15), true},
		{"overlap corner", NewRect(9, 9, 12, 12), true},
		{"touch edge", NewRect(10, 0, 20, 10), true},
		{"touch corner", NewRect(10, 10, 20, 20), true},
		{"disjoint right", NewRect(10.001, 0, 20, 10), false},
		{"disjoint above", NewRect(0, 11, 10, 20), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Intersects(tt.s); got != tt.want {
				t.Errorf("Intersects(%v) = %v, want %v", tt.s, got, tt.want)
			}
			// Intersection is symmetric.
			if got := tt.s.Intersects(r); got != tt.want {
				t.Errorf("symmetric Intersects(%v) = %v, want %v", tt.s, got, tt.want)
			}
		})
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 15, 15)
	got, ok := a.Intersect(b)
	if !ok {
		t.Fatal("Intersect reported disjoint for overlapping rects")
	}
	want := NewRect(5, 5, 10, 10)
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if _, ok := a.Intersect(NewRect(20, 20, 30, 30)); ok {
		t.Error("Intersect reported overlap for disjoint rects")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(0, 0, 1, 1)
	b := NewRect(5, -2, 6, 0.5)
	got := a.Union(b)
	want := NewRect(0, -2, 6, 1)
	if got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
}

func TestSplitXY(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	l, rr := r.SplitX(4)
	if l.Max.X != 4 || rr.Min.X != 4 {
		t.Errorf("SplitX(4) = %v, %v", l, rr)
	}
	if l.Area()+rr.Area() != r.Area() {
		t.Errorf("SplitX areas %v + %v != %v", l.Area(), rr.Area(), r.Area())
	}
	b, tp := r.SplitY(7)
	if b.Max.Y != 7 || tp.Min.Y != 7 {
		t.Errorf("SplitY(7) = %v, %v", b, tp)
	}
	// Split line outside the rect clamps.
	l, rr = r.SplitX(-5)
	if l.Width() != 0 || rr.Width() != 10 {
		t.Errorf("SplitX(-5) widths = %v, %v", l.Width(), rr.Width())
	}
}

func TestRectAround(t *testing.T) {
	c := Point{X: -74.0, Y: 40.7} // New York-ish
	r := RectAround(c, 10, 10)
	if !r.Contains(c) {
		t.Fatalf("RectAround does not contain its center: %v vs %v", r, c)
	}
	heightKm := r.Height() * KmPerDegreeLat
	if math.Abs(heightKm-10) > 1e-9 {
		t.Errorf("height = %v km, want 10", heightKm)
	}
	// Width in km at the center latitude should also be ~10.
	widthKm := r.Width() * KmPerDegreeLat * math.Cos(c.Y*math.Pi/180)
	if math.Abs(widthKm-10) > 1e-9 {
		t.Errorf("width = %v km, want 10", widthKm)
	}
}

func TestClip(t *testing.T) {
	bounds := NewRect(0, 0, 10, 10)
	in := NewRect(-5, 3, 5, 20)
	got := in.Clip(bounds)
	want := NewRect(0, 3, 5, 10)
	if got != want {
		t.Errorf("Clip = %v, want %v", got, want)
	}
	// Disjoint clip collapses to a degenerate rect inside bounds.
	got = NewRect(20, 20, 30, 30).Clip(bounds)
	if !bounds.Contains(got.Min) || got.Area() != 0 {
		t.Errorf("disjoint Clip = %v, want degenerate in bounds", got)
	}
}

// Property: intersection of two valid rectangles, when reported, is
// contained in both and symmetric.
func TestIntersectProperty(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) bool {
		a := NewRect(norm(ax1), norm(ay1), norm(ax2), norm(ay2))
		b := NewRect(norm(bx1), norm(by1), norm(bx2), norm(by2))
		got, ok := a.Intersect(b)
		got2, ok2 := b.Intersect(a)
		if ok != ok2 || got != got2 {
			return false
		}
		if !ok {
			return !a.Intersects(b)
		}
		return a.ContainsRect(got) && b.ContainsRect(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both inputs.
func TestUnionProperty(t *testing.T) {
	f := func(ax1, ay1, ax2, ay2, bx1, by1, bx2, by2 float64) bool {
		a := NewRect(norm(ax1), norm(ay1), norm(ax2), norm(ay2))
		b := NewRect(norm(bx1), norm(by1), norm(bx2), norm(by2))
		u := a.Union(b)
		return u.ContainsRect(a) && u.ContainsRect(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// norm maps arbitrary float64 values (possibly NaN/Inf from quick) into a
// sane finite coordinate range.
func norm(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 180)
}

func TestStringersAndDerivedGeometry(t *testing.T) {
	p := Point{X: -73.95, Y: 40.7}
	if got := p.String(); got != "(-73.95000,40.70000)" {
		t.Errorf("Point.String = %q", got)
	}
	r := NewRect(0, 0, 10, 20)
	if got := r.String(); got != "[(0.00000,0.00000) (10.00000,20.00000)]" {
		t.Errorf("Rect.String = %q", got)
	}
	if c := r.Center(); c.X != 5 || c.Y != 10 {
		t.Errorf("Center = %v", c)
	}
	if m := r.Margin(); m != 30 {
		t.Errorf("Margin = %v, want 30", m)
	}
	e := r.Expand(2)
	if e.Min.X != -2 || e.Min.Y != -2 || e.Max.X != 12 || e.Max.Y != 22 {
		t.Errorf("Expand = %v", e)
	}
	if !e.ContainsRect(r) {
		t.Error("Expand did not grow the rectangle")
	}
}

// Expand then shrink by the same margin is the identity for valid rects.
func TestExpandRoundTripProperty(t *testing.T) {
	f := func(x1, y1, x2, y2, d float64) bool {
		r := NewRect(norm(x1), norm(y1), norm(x2), norm(y2))
		m := math.Abs(norm(d))
		back := r.Expand(m).Expand(-m)
		const eps = 1e-9
		return math.Abs(back.Min.X-r.Min.X) < eps && math.Abs(back.Max.Y-r.Max.Y) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
