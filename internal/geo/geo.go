// Package geo provides the planar/geographic primitives used throughout
// PS2Stream: points, rectangles, and degree/kilometre conversions.
//
// Coordinates follow the geographic convention of the paper: X is longitude
// and Y is latitude, both in decimal degrees. All geometry is computed on
// the equirectangular plane, which is accurate enough for the region scales
// (1–100 km query rectangles) used in the evaluation.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for degree/km conversions.
const EarthRadiusKm = 6371.0

// KmPerDegreeLat is the north-south extent of one degree of latitude.
const KmPerDegreeLat = math.Pi * EarthRadiusKm / 180.0

// Point is a geographic coordinate (X = longitude, Y = latitude, degrees).
type Point struct {
	X float64
	Y float64
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.5f,%.5f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max
// the upper-right corner; a Rect is valid when Min.X <= Max.X and
// Min.Y <= Max.Y. Rectangles are closed on all sides: boundary points are
// contained.
type Rect struct {
	Min Point
	Max Point
}

// NewRect returns the rectangle spanning the two corner coordinates,
// normalising the corner order so the result is valid.
func NewRect(x1, y1, x2, y2 float64) Rect {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Rect{Min: Point{x1, y1}, Max: Point{x2, y2}}
}

// RectAround returns a rectangle centred at c with the given side lengths
// expressed in kilometres, converted to degrees at c's latitude. This is how
// the paper synthesises STS query regions ("the side lengths of the
// rectangle are randomly assigned between 1km and 50km").
func RectAround(c Point, widthKm, heightKm float64) Rect {
	halfH := heightKm / 2 / KmPerDegreeLat
	kmPerDegLon := KmPerDegreeLat * math.Cos(c.Y*math.Pi/180)
	if kmPerDegLon < 1e-9 {
		kmPerDegLon = 1e-9
	}
	halfW := widthKm / 2 / kmPerDegLon
	return Rect{
		Min: Point{c.X - halfW, c.Y - halfH},
		Max: Point{c.X + halfW, c.Y + halfH},
	}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%s %s]", r.Min, r.Max)
}

// Valid reports whether the rectangle's corners are ordered.
func (r Rect) Valid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the X extent of the rectangle in degrees.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of the rectangle in degrees.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area in square degrees.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the midpoint of the rectangle.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.Min.X >= r.Min.X && s.Max.X <= r.Max.X &&
		s.Min.Y >= r.Min.Y && s.Max.Y <= r.Max.Y
}

// Intersects reports whether r and s share at least a boundary point.
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Intersect returns the overlapping region of r and s. The boolean result
// is false when the rectangles are disjoint, in which case the returned
// rectangle is the zero value.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	if !r.Intersects(s) {
		return Rect{}, false
	}
	return Rect{
		Min: Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Max: Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}, true
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Clip returns r clipped to the bounds of s; if they do not overlap the
// zero rectangle at s.Min is returned.
func (r Rect) Clip(s Rect) Rect {
	out, ok := r.Intersect(s)
	if !ok {
		return Rect{Min: s.Min, Max: s.Min}
	}
	return out
}

// SplitX splits r at the vertical line x, returning the left and right
// halves. x is clamped into the rectangle.
func (r Rect) SplitX(x float64) (left, right Rect) {
	x = clamp(x, r.Min.X, r.Max.X)
	left = Rect{Min: r.Min, Max: Point{x, r.Max.Y}}
	right = Rect{Min: Point{x, r.Min.Y}, Max: r.Max}
	return left, right
}

// SplitY splits r at the horizontal line y, returning the bottom and top
// halves. y is clamped into the rectangle.
func (r Rect) SplitY(y float64) (bottom, top Rect) {
	y = clamp(y, r.Min.Y, r.Max.Y)
	bottom = Rect{Min: r.Min, Max: Point{r.Max.X, y}}
	top = Rect{Min: Point{r.Min.X, y}, Max: r.Max}
	return bottom, top
}

// Margin returns half the perimeter (the R*-tree "margin" metric).
func (r Rect) Margin() float64 { return r.Width() + r.Height() }

// Expand grows the rectangle by d degrees on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
