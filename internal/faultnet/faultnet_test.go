package faultnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"ps2stream/internal/stream"
)

// drawSchedule materialises the first n verdicts of one direction.
func drawSchedule(cfg Config, salt int64, n int) []verdict {
	s := newScheduler(cfg, salt)
	out := make([]verdict, n)
	for i := range out {
		out[i] = s.next()
	}
	return out
}

func TestSchedulerIsDeterministic(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"drop-heavy", Config{Seed: 1, Drop: 0.5}},
		{"dup-heavy", Config{Seed: 7, Dup: 0.5}},
		{"mixed", Config{Seed: 42, Drop: 0.2, Delay: 0.3, DelayMax: time.Millisecond, Dup: 0.2}},
		{"skip", Config{Seed: 42, Drop: 0.5, SkipFrames: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := drawSchedule(tc.cfg, saltSend, 256)
			b := drawSchedule(tc.cfg, saltSend, 256)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same config drew two different schedules")
			}
			// A different seed must actually change the schedule (a
			// constant schedule would also pass the check above).
			other := tc.cfg
			other.Seed++
			if reflect.DeepEqual(a, drawSchedule(other, saltSend, 256)) {
				t.Fatal("seed change left the schedule identical")
			}
			// The two directions of one config are independent draws.
			if reflect.DeepEqual(a, drawSchedule(tc.cfg, saltRecv, 256)) {
				t.Fatal("send and recv directions drew the same schedule")
			}
		})
	}
}

// TestSkipFramesShiftsSchedule: exempt frames burn their draws, so the
// post-skip verdicts line up position-for-position with the unskipped
// schedule — SkipFrames shifts where faults apply without re-deriving
// which faults fire.
func TestSkipFramesShiftsSchedule(t *testing.T) {
	base := Config{Seed: 99, Drop: 0.4, Delay: 0.4, Dup: 0.4}
	skipped := base
	skipped.SkipFrames = 10
	plain := drawSchedule(base, saltRecv, 64)
	shift := drawSchedule(skipped, saltRecv, 64)
	for i := 0; i < skipped.SkipFrames; i++ {
		if shift[i] != (verdict{}) {
			t.Fatalf("frame %d inside the skip window drew verdict %+v", i, shift[i])
		}
	}
	if !reflect.DeepEqual(plain[skipped.SkipFrames:], shift[skipped.SkipFrames:]) {
		t.Fatal("verdicts after the skip window diverge from the unskipped schedule")
	}
}

// deliveredIDs sends n uniquely-valued batches through a faulted end of
// a chan pair and returns, in order, the values the clean peer received
// (duplicates included).
func deliveredIDs(t *testing.T, cfg Config, n int) []int {
	t.Helper()
	a, b := stream.NewChanPair(2 * n)
	ft := Wrap(a, cfg)
	for i := 0; i < n; i++ {
		if err := ft.Send([]stream.Tuple{{Value: i}}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := ft.CloseSend(); err != nil {
		t.Fatal(err)
	}
	var got []int
	for {
		batch, err := b.Recv()
		if errors.Is(err, io.EOF) {
			return got
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range batch {
			got = append(got, tp.Value.(int))
		}
	}
}

func TestTransportScheduleReplaysExactly(t *testing.T) {
	cfg := Config{Seed: 5, Drop: 0.3, Dup: 0.3}
	first := deliveredIDs(t, cfg, 100)
	if len(first) == 100 {
		t.Fatal("schedule injected no faults across 100 frames at p=0.3")
	}
	if again := deliveredIDs(t, cfg, 100); !reflect.DeepEqual(first, again) {
		t.Fatalf("same seed delivered different sequences:\n%v\n%v", first, again)
	}
	if other := deliveredIDs(t, Config{Seed: 6, Drop: 0.3, Dup: 0.3}, 100); reflect.DeepEqual(first, other) {
		t.Fatal("different seed replayed the same delivery sequence")
	}
}

func TestTransportDropIsSilent(t *testing.T) {
	got := deliveredIDs(t, Config{Seed: 1, Drop: 1}, 5)
	if len(got) != 0 {
		t.Fatalf("Drop=1 still delivered %v", got)
	}
}

func TestTransportDupDeliversTwice(t *testing.T) {
	got := deliveredIDs(t, Config{Seed: 1, Dup: 1}, 3)
	want := []int{0, 0, 1, 1, 2, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Dup=1 delivered %v, want %v", got, want)
	}
}

// TestTransportRecvSideFaults drives the receive-direction schedule:
// the faulted end is the *receiver*, the clean peer the sender.
func TestTransportRecvSideFaults(t *testing.T) {
	a, b := stream.NewChanPair(16)
	ft := Wrap(a, Config{Seed: 1, Dup: 1})
	for i := 0; i < 2; i++ {
		if err := b.Send([]stream.Tuple{{Value: i}}); err != nil {
			t.Fatal(err)
		}
	}
	var got []int
	for len(got) < 4 {
		batch, err := ft.Recv()
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range batch {
			got = append(got, tp.Value.(int))
		}
	}
	if want := []int{0, 0, 1, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("recv-side Dup=1 yielded %v, want %v", got, want)
	}
}

// frame builds one wire-shaped frame (length prefix + body).
func frame(body []byte) []byte {
	f := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(f, uint32(len(body)))
	copy(f[4:], body)
	return f
}

func TestFrameParserReassemblesAcrossChunks(t *testing.T) {
	f1, f2 := frame([]byte("hello")), frame(bytes.Repeat([]byte{0xab}, 300))
	joined := append(append([]byte(nil), f1...), f2...)
	var p frameParser
	var got [][]byte
	// Feed a byte at a time — the worst possible chunking.
	for _, c := range joined {
		got = append(got, p.feed([]byte{c})...)
	}
	if len(got) != 2 || !bytes.Equal(got[0], f1) || !bytes.Equal(got[1], f2) {
		t.Fatalf("reassembled %d frames from byte-wise feed, want the 2 originals", len(got))
	}
	if len(p.buf) != 0 {
		t.Fatalf("%d bytes left in parser after whole frames", len(p.buf))
	}
}

func TestFrameParserFallsBackToRaw(t *testing.T) {
	var p frameParser
	// A length prefix beyond maxFrame means "not wire-framed".
	junk := frame(nil)[:0]
	junk = append(junk, 0xff, 0xff, 0xff, 0xff, 'x')
	got := p.feed(junk)
	if len(got) != 1 || !bytes.Equal(got[0], junk) {
		t.Fatalf("raw fallback returned %v", got)
	}
	if !p.raw {
		t.Fatal("parser did not latch raw mode")
	}
	// Once raw, every later chunk passes straight through.
	if got := p.feed([]byte("more")); len(got) != 1 || string(got[0]) != "more" {
		t.Fatalf("raw mode pass-through returned %v", got)
	}
}

func TestConnDropSevers(t *testing.T) {
	nc, peer := net.Pipe()
	defer peer.Close()
	c := WrapConn(nc, Config{Seed: 3, Drop: 1})
	if _, err := c.Write(frame([]byte("doomed"))); !errors.Is(err, ErrSevered) {
		t.Fatalf("write under Drop=1: err = %v, want ErrSevered", err)
	}
	// The sever closes the real conn (the peer observes a broken stream)
	// and latches: every later operation fails fast.
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer read after sever succeeded, want a broken stream")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrSevered) {
		t.Fatalf("write after sever: %v, want ErrSevered", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("read after sever: %v, want ErrSevered", err)
	}
}

func TestConnDupWritesFrameTwice(t *testing.T) {
	nc, peer := net.Pipe()
	defer peer.Close()
	c := WrapConn(nc, Config{Seed: 3, Dup: 1})
	f := frame([]byte("twice"))
	errc := make(chan error, 1)
	go func() {
		_, err := c.Write(f)
		errc <- err
	}()
	got := make([]byte, 2*len(f))
	if _, err := io.ReadFull(peer, got); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, append(append([]byte(nil), f...), f...)) {
		t.Fatal("peer did not receive the frame exactly twice")
	}
}

// TestConnSkipFramesProtectsHandshake: the first frames of each
// direction pass clean even under Drop=1, so a schedule can let the
// Hello/Welcome through and sever only a *running* session.
func TestConnSkipFramesProtectsHandshake(t *testing.T) {
	nc, peer := net.Pipe()
	defer peer.Close()
	c := WrapConn(nc, Config{Seed: 3, Drop: 1, SkipFrames: 2})
	f := frame([]byte("hello"))
	go io.CopyN(io.Discard, peer, int64(2*len(f)))
	for i := 0; i < 2; i++ {
		if _, err := c.Write(f); err != nil {
			t.Fatalf("exempt frame %d: %v", i, err)
		}
	}
	if _, err := c.Write(f); !errors.Is(err, ErrSevered) {
		t.Fatalf("first post-skip frame: err = %v, want ErrSevered", err)
	}
}

// TestListenerReseedsPerAccept: reconnects must not replay the exact
// schedule that severed their predecessor, but the derivation is still
// deterministic (base seed + accept counter).
func TestListenerReseedsPerAccept(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(base, Config{Seed: 1000, Drop: 0.5})
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2; i++ {
			nc, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer nc.Close()
		}
	}()
	var seeds []int64
	for i := 0; i < 2; i++ {
		nc, err := ln.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
		fc, ok := nc.(*Conn)
		if !ok {
			t.Fatalf("Accept returned %T, want *faultnet.Conn", nc)
		}
		seeds = append(seeds, fc.wsched.cfg.Seed)
	}
	<-done
	if seeds[0] == seeds[1] {
		t.Fatalf("two accepts derived the same seed %d", seeds[0])
	}
	for i, want := range []int64{1000 + 0x9E37, 1000 + 2*0x9E37} {
		if seeds[i] != want {
			t.Fatalf("accept %d derived seed %d, want %d", i, seeds[i], want)
		}
	}
}
