package faultnet

import (
	"sync"
	"time"

	"ps2stream/internal/stream"
)

// Transport wraps a stream.Transport with the same seeded schedule the
// conn wrapper uses, treating each batch as one frame. It is the
// in-process harness: core oracle tests inject faults on a channel hop
// without sockets. Unlike the net.Conn wrapper, a dropped batch does
// not sever — the unit tests assert the schedule itself, and a silent
// in-process drop is the sharper probe of the engine's accounting.
//
// It deliberately wraps stream.Transport rather than the core package's
// wire adapter: core type-asserts its remote transports to reach the
// migration control methods, and an opaque wrapper would hide them.
type Transport struct {
	inner stream.Transport

	smu sync.Mutex
	ss  *scheduler

	rmu     sync.Mutex
	rs      *scheduler
	pending []stream.Tuple // duplicated batch awaiting redelivery
}

// Wrap wraps inner with cfg's schedule.
func Wrap(inner stream.Transport, cfg Config) *Transport {
	return &Transport{
		inner: inner,
		ss:    newScheduler(cfg, saltSend),
		rs:    newScheduler(cfg, saltRecv),
	}
}

// Send implements stream.Transport with send-side faults.
func (t *Transport) Send(batch []stream.Tuple) error {
	t.smu.Lock()
	v := t.ss.next()
	t.smu.Unlock()
	if v.drop {
		return nil // silently lost
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	if err := t.inner.Send(batch); err != nil {
		return err
	}
	if v.dup {
		return t.inner.Send(batch)
	}
	return nil
}

// Recv implements stream.Transport with receive-side faults.
func (t *Transport) Recv() ([]stream.Tuple, error) {
	t.rmu.Lock()
	defer t.rmu.Unlock()
	if t.pending != nil {
		b := t.pending
		t.pending = nil
		return b, nil
	}
	for {
		b, err := t.inner.Recv()
		if err != nil {
			return nil, err
		}
		v := t.rs.next()
		if v.drop {
			continue
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		if v.dup {
			t.pending = b
		}
		return b, nil
	}
}

// Close implements stream.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// CloseSend implements stream.SendCloser when the inner transport does.
func (t *Transport) CloseSend() error {
	if sc, ok := t.inner.(stream.SendCloser); ok {
		return sc.CloseSend()
	}
	return t.inner.Close()
}
