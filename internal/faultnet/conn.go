package faultnet

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSevered is returned by conn operations after an injected drop
// severed the connection.
var ErrSevered = errors.New("faultnet: connection severed by injected fault")

// maxFrame mirrors wire.MaxFrameSize (not imported to keep the fault
// layer independent of the protocol package): a parsed length beyond it
// means the byte stream is not wire-framed, so the parser passes bytes
// through untouched rather than buffering unboundedly.
const maxFrame = 16 << 20

// frameParser incrementally reassembles wire frames from arbitrary
// byte chunks. The bufio layers above and below a conn deliver writes
// and reads in buffer-sized chunks, not frames, so fault injection at
// frame boundaries needs its own reassembly.
type frameParser struct {
	buf []byte
	raw bool // stream is not wire-framed; pass through
}

// feed appends a chunk and returns the complete frames now available
// (each including its 4-byte length prefix). If the stream turns out
// not to be wire-framed, every byte is returned as one raw "frame" and
// the parser stays in pass-through mode.
func (p *frameParser) feed(chunk []byte) [][]byte {
	p.buf = append(p.buf, chunk...)
	if p.raw {
		out := [][]byte{p.buf}
		p.buf = nil
		return out
	}
	var frames [][]byte
	for {
		if len(p.buf) < 4 {
			return frames
		}
		n := binary.BigEndian.Uint32(p.buf[:4])
		if n == 0 || n > maxFrame {
			p.raw = true
			frames = append(frames, p.buf)
			p.buf = nil
			return frames
		}
		total := 4 + int(n)
		if len(p.buf) < total {
			return frames
		}
		frame := append([]byte(nil), p.buf[:total]...)
		p.buf = p.buf[total:]
		frames = append(frames, frame)
	}
}

// Conn wraps a net.Conn with seeded frame-level fault injection on both
// directions. Writes are parsed into frames before reaching the real
// conn; reads are parsed after leaving it. A dropped frame severs the
// connection (see the package doc for why).
type Conn struct {
	nc net.Conn

	wmu    sync.Mutex
	wsched *scheduler
	wparse frameParser

	rmu    sync.Mutex
	rsched *scheduler
	rparse frameParser
	rbuf   []byte // faulted bytes awaiting the consumer

	severed atomic.Bool
}

// WrapConn wraps nc with the schedule cfg derives. The two directions
// draw independent schedules from the same seed.
func WrapConn(nc net.Conn, cfg Config) *Conn {
	return &Conn{
		nc:     nc,
		wsched: newScheduler(cfg, saltSend),
		rsched: newScheduler(cfg, saltRecv),
	}
}

func (c *Conn) sever() error {
	c.severed.Store(true)
	c.nc.Close()
	return ErrSevered
}

// Write implements net.Conn: outgoing bytes are reassembled into
// frames, each frame drawn against the write schedule, and the
// survivors forwarded.
func (c *Conn) Write(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrSevered
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for _, frame := range c.wparse.feed(p) {
		v := c.wsched.next()
		if v.drop {
			return 0, c.sever()
		}
		if v.delay > 0 {
			time.Sleep(v.delay)
		}
		writes := 1
		if v.dup {
			writes = 2
		}
		for i := 0; i < writes; i++ {
			if _, err := c.nc.Write(frame); err != nil {
				return 0, err
			}
		}
	}
	// Bytes short of a frame boundary are buffered in the parser and
	// count as written; they reach the wire with the frame's remainder.
	return len(p), nil
}

// Read implements net.Conn: it refills from the real conn until at
// least one whole faulted frame is available, then serves bytes from
// the reassembled stream.
func (c *Conn) Read(p []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrSevered
	}
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for len(c.rbuf) == 0 {
		chunk := make([]byte, 64<<10)
		n, err := c.nc.Read(chunk)
		if n > 0 {
			for _, frame := range c.rparse.feed(chunk[:n]) {
				v := c.rsched.next()
				if v.drop {
					return 0, c.sever()
				}
				if v.delay > 0 {
					time.Sleep(v.delay)
				}
				c.rbuf = append(c.rbuf, frame...)
				if v.dup {
					c.rbuf = append(c.rbuf, frame...)
				}
			}
		}
		if err != nil {
			if len(c.rbuf) > 0 {
				break
			}
			return 0, err
		}
	}
	n := copy(p, c.rbuf)
	c.rbuf = c.rbuf[n:]
	return n, nil
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.nc.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.nc.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.nc.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection carries
// fault injection. Each connection derives its own seed from the base
// seed and an accept counter, so schedules are deterministic per
// connection yet distinct across reconnects — a recovery redial does
// not replay the exact schedule that severed its predecessor.
type Listener struct {
	net.Listener
	cfg Config
	n   atomic.Int64
}

// WrapListener wraps ln with cfg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	cfg := l.cfg
	cfg.Seed = l.cfg.Seed + 0x9E37*l.n.Add(1)
	return WrapConn(nc, cfg), nil
}
