// Package faultnet is a deterministic fault-injection layer for the
// wire protocol: it wraps a net.Conn (or a stream.Transport) and
// injects seeded drop, delay and duplicate faults at *frame*
// boundaries. The chaos cluster test and the core oracle tests drive
// it to prove the recovery machinery — every schedule is a pure
// function of the seed, so a failing run replays exactly.
//
// Faults operate on whole wire frames (4-byte big-endian length prefix
// + body), never on arbitrary byte ranges: a real TCP stream delivers
// bytes reliably and in order or breaks, so mid-frame corruption is not
// a fault model worth testing against — but frame loss is, and on a
// net.Conn a dropped frame *severs the connection* (drop-then-sever).
// That preserves TCP's no-silent-loss property: the peer observes a
// broken stream (wire.ErrWorkerDown territory) rather than a gap,
// which is exactly the failure the snapshot/op-log recovery path must
// absorb without losing a match.
//
// The stream.Transport wrapper (Wrap) is the in-process harness for
// unit tests; there pure drops are allowed, because the tests assert
// the schedule itself, not end-to-end exactness.
package faultnet

import (
	"math/rand"
	"time"
)

// Config parameterises one fault schedule. All probabilities are per
// frame in [0,1]; the zero Config injects nothing.
type Config struct {
	// Seed makes the schedule deterministic: the same seed and the same
	// frame sequence produce the same faults. Each direction of a conn
	// derives its own rng from Seed, so the two directions' schedules
	// are independent but both replayable.
	Seed int64
	// Drop is the probability a frame is discarded. On a net.Conn the
	// drop also severs the connection (see package doc); on a
	// stream.Transport the frame is silently lost.
	Drop float64
	// Delay is the probability a frame is held back before delivery,
	// for a uniform duration in (0, DelayMax].
	Delay float64
	// DelayMax bounds an injected delay (default 5ms when Delay > 0).
	DelayMax time.Duration
	// Dup is the probability a frame is delivered twice back-to-back.
	Dup float64
	// SkipFrames exempts the first n frames of each direction from
	// faults — room for the Hello/Welcome handshake, so a schedule
	// exercises a *running* connection rather than preventing one.
	SkipFrames int
}

func (c Config) withDefaults() Config {
	if c.DelayMax <= 0 {
		c.DelayMax = 5 * time.Millisecond
	}
	return c
}

// verdict is one frame's fate under a schedule.
type verdict struct {
	drop  bool
	delay time.Duration
	dup   bool
}

// scheduler draws one direction's fault schedule. Draw order per frame
// is fixed (drop, delay, delay amount, dup) so identical frame
// sequences replay identically regardless of which faults fire.
type scheduler struct {
	cfg Config
	rng *rand.Rand
	n   int // frames seen
}

func newScheduler(cfg Config, salt int64) *scheduler {
	cfg = cfg.withDefaults()
	return &scheduler{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed ^ salt))}
}

// next draws the verdict for the next frame.
func (s *scheduler) next() verdict {
	s.n++
	var v verdict
	// Burn the draws even for exempt frames so SkipFrames shifts the
	// schedule deterministically instead of re-deriving it.
	drop := s.rng.Float64() < s.cfg.Drop
	delay := s.rng.Float64() < s.cfg.Delay
	d := time.Duration(s.rng.Int63n(int64(s.cfg.DelayMax))) + 1
	dup := s.rng.Float64() < s.cfg.Dup
	if s.n <= s.cfg.SkipFrames {
		return v
	}
	v.drop = drop
	if delay {
		v.delay = d
	}
	v.dup = dup
	return v
}

// Direction salts for the per-direction rngs.
const (
	saltSend int64 = 0x1234_5678_9abc_def0
	saltRecv int64 = 0x0f0f_f0f0_aa55_55aa
)
