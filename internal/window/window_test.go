package window

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ps2stream/internal/geo"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
)

var t0 = time.Date(2026, 1, 2, 12, 0, 0, 0, time.UTC)

func entry(id uint64, terms []string, x, y float64, at time.Time) Entry {
	return Entry{MsgID: id, Terms: terms, Loc: geo.Point{X: x, Y: y}, At: at}
}

func TestRingCountBound(t *testing.T) {
	r := NewRing(3)
	cutoff := t0.Add(-time.Hour)
	for i := 1; i <= 5; i++ {
		r.Add(entry(uint64(i), nil, 0, 0, t0.Add(time.Duration(i)*time.Second)), cutoff)
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d entries, want 3", r.Len())
	}
	var ids []uint64
	r.Each(cutoff, func(e Entry) bool { ids = append(ids, e.MsgID); return true })
	if len(ids) != 3 || ids[0] != 3 || ids[2] != 5 {
		t.Fatalf("ring kept %v, want oldest-first [3 4 5]", ids)
	}
}

func TestRingLazyAndEagerExpiry(t *testing.T) {
	r := NewRing(10)
	for i := 0; i < 6; i++ {
		r.Add(entry(uint64(i+1), nil, 0, 0, t0.Add(time.Duration(i)*time.Second)), t0.Add(-time.Hour))
	}
	// Lazy: Add trims expired heads against the supplied cutoff.
	r.Add(entry(7, nil, 0, 0, t0.Add(6*time.Second)), t0.Add(2*time.Second))
	if r.Len() != 4 { // entries at t+3..t+6 survive (t+2 is exactly cutoff → expired)
		t.Fatalf("after lazy trim ring holds %d, want 4", r.Len())
	}
	// Eager: ExpireBefore compacts everything at or before the cutoff.
	if removed := r.ExpireBefore(t0.Add(4 * time.Second)); removed != 2 {
		t.Fatalf("eager expiry removed %d, want 2", removed)
	}
	var ids []uint64
	r.Each(time.Time{}, func(e Entry) bool { ids = append(ids, e.MsgID); return true })
	if len(ids) != 2 || ids[0] != 6 || ids[1] != 7 {
		t.Fatalf("survivors %v, want [6 7]", ids)
	}
}

func TestRingExpireOutOfOrder(t *testing.T) {
	r := NewRing(10)
	far := t0.Add(-time.Hour)
	r.Add(entry(1, nil, 0, 0, t0.Add(5*time.Second)), far)
	r.Add(entry(2, nil, 0, 0, t0.Add(1*time.Second)), far) // older arrives later
	r.Add(entry(3, nil, 0, 0, t0.Add(6*time.Second)), far)
	if removed := r.ExpireBefore(t0.Add(3 * time.Second)); removed != 1 {
		t.Fatalf("removed %d, want the out-of-order stale entry only", removed)
	}
	if r.Len() != 2 || r.Contains(2) {
		t.Fatalf("stale entry 2 still buffered")
	}
}

func TestTopKOfferEvictExpire(t *testing.T) {
	tk := NewTopK(2)
	a := Ranked{E: entry(1, nil, 0, 0, t0), S: Score{Rank: 1}}
	b := Ranked{E: entry(2, nil, 0, 0, t0.Add(time.Second)), S: Score{Rank: 2}}
	c := Ranked{E: entry(3, nil, 0, 0, t0.Add(2*time.Second)), S: Score{Rank: 3}}
	low := Ranked{E: entry(4, nil, 0, 0, t0), S: Score{Rank: 0}}

	for _, r := range []Ranked{a, b} {
		if entered, _ := tk.Offer(r); !entered {
			t.Fatalf("offer %d rejected with free capacity", r.E.MsgID)
		}
	}
	if entered, _ := tk.Offer(low); entered {
		t.Fatal("low-ranked offer accepted into a full better heap")
	}
	entered, evicted := tk.Offer(c)
	if !entered || evicted == nil || evicted.E.MsgID != 1 {
		t.Fatalf("offer c: entered=%v evicted=%+v, want eviction of msg 1", entered, evicted)
	}
	if entered, _ := tk.Offer(c); entered {
		t.Fatal("duplicate id re-entered")
	}
	exp := tk.ExpireBefore(t0.Add(1500 * time.Millisecond))
	if len(exp) != 1 || exp[0].E.MsgID != 2 {
		t.Fatalf("expired %v, want msg 2", exp)
	}
	if tk.Len() != 1 || !tk.Contains(3) {
		t.Fatalf("heap should hold only msg 3")
	}
}

// The decay scorer's rank keys must order entries exactly as their decayed
// scores would at any observation time.
func TestDecayScorerOrderPreserving(t *testing.T) {
	q := &model.Query{
		ID: 1, Expr: model.And("a", "b"),
		Region: geo.NewRect(0, 0, 1, 1),
		TopK:   3, Window: time.Minute,
	}
	sc := DecayScorer{}
	// Older but fully relevant vs newer but half relevant.
	old := entry(1, []string{"a", "b"}, 0.5, 0.5, t0)
	fresh := entry(2, []string{"a"}, 0.9, 0.9, t0.Add(20*time.Second))
	so, sf := sc.Score(q, old), sc.Score(q, fresh)
	// Explicit decayed comparison at two observation instants.
	decayed := func(s Score, e Entry, now time.Time) float64 {
		hl := q.Window.Seconds() * DefaultHalfLifeFraction
		age := now.Sub(e.At).Seconds()
		return s.Rel * math.Exp2(-age/hl)
	}
	for _, now := range []time.Time{t0.Add(25 * time.Second), t0.Add(50 * time.Second)} {
		wantOldBetter := decayed(so, old, now) > decayed(sf, fresh, now)
		if gotOldBetter := so.Better(sf, 1, 2); gotOldBetter != wantOldBetter {
			t.Fatalf("rank order disagrees with decayed score order at %v", now)
		}
	}
}

// --- brute-force reference ----------------------------------------------

// BruteTopK is the reference implementation: the k best live, matching
// entries of the window, ranked with the same scorer.
func bruteTopK(q *model.Query, all []Entry, now time.Time, sc Scorer) []uint64 {
	cutoff := now.Add(-q.Window)
	type cand struct {
		id uint64
		s  Score
	}
	var cands []cand
	seen := make(map[uint64]bool)
	for _, e := range all {
		if !e.Live(cutoff) || seen[e.MsgID] {
			continue
		}
		if !q.Region.Contains(e.Loc) || !q.Expr.MatchesSlice(e.Terms) {
			continue
		}
		seen[e.MsgID] = true
		cands = append(cands, cand{id: e.MsgID, s: sc.Score(q, e)})
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].s.Better(cands[j].s, cands[i].id, cands[j].id)
	})
	if len(cands) > q.TopK {
		cands = cands[:q.TopK]
	}
	ids := make([]uint64, 0, len(cands))
	for _, c := range cands {
		ids = append(ids, c.id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The store must track the brute-force top-k through interleaved
// publications and expiry sweeps.
func TestStoreMatchesBruteForce(t *testing.T) {
	bounds := geo.NewRect(0, 0, 10, 10)
	g := grid.New(bounds, 8, 8)
	st := NewStore(g, nil, 0)
	q := &model.Query{
		ID: 7, Expr: model.Or("x", "y"),
		Region: geo.NewRect(2, 2, 8, 8),
		TopK:   5, Window: 30 * time.Second,
	}
	now := t0
	st.AddSub(q, now)

	rng := rand.New(rand.NewSource(42))
	vocab := []string{"x", "y", "z", "w"}
	var published []Entry
	for i := 1; i <= 400; i++ {
		now = now.Add(time.Duration(rng.Intn(900)) * time.Millisecond)
		terms := []string{vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))]}
		e := entry(uint64(i), terms, rng.Float64()*10, rng.Float64()*10, now)
		published = append(published, e)
		obj := &model.Object{ID: e.MsgID, Terms: e.Terms, Loc: e.Loc}
		if q.Matches(obj) {
			st.Offer(q, e, now)
		}
		st.Observe(e)
		if i%37 == 0 {
			st.Advance(now)
		}
		if i%20 == 0 {
			st.Advance(now) // expiry must run before comparing sets
			got := st.TopKSet(q.ID)
			want := bruteTopK(q, published, now, DefaultScorer)
			if !equalIDs(got, want) {
				t.Fatalf("step %d: store top-k %v, brute force %v", i, got, want)
			}
		}
	}
	// Let everything expire.
	now = now.Add(time.Minute)
	st.Advance(now)
	if got := st.TopKSet(q.ID); len(got) != 0 {
		t.Fatalf("entries survived past the window: %v", got)
	}
}

// Unsubscribing releases every held entry exactly once.
func TestStoreRemoveSubDeltas(t *testing.T) {
	g := grid.New(geo.NewRect(0, 0, 10, 10), 4, 4)
	st := NewStore(g, nil, 0)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10), TopK: 3, Window: time.Minute}
	st.AddSub(q, t0)
	for i := 1; i <= 3; i++ {
		e := entry(uint64(i), []string{"x"}, 1, 1, t0.Add(time.Duration(i)*time.Second))
		st.Offer(q, e, e.At)
		st.Observe(e)
	}
	ds := st.RemoveSub(q.ID)
	if len(ds) != 3 {
		t.Fatalf("RemoveSub emitted %d deltas, want 3 Left", len(ds))
	}
	for _, d := range ds {
		if d.Entered {
			t.Fatalf("RemoveSub emitted an Entered delta: %+v", d)
		}
	}
	if st.HasSub(q.ID) || len(st.RemoveSub(q.ID)) != 0 {
		t.Fatal("RemoveSub is not idempotent")
	}
}

// Once the last subscription is gone the retention horizon is zero: the
// next sweep must release every buffered ring entry.
func TestStoreRingsSweptAfterLastUnsubscribe(t *testing.T) {
	g := grid.New(geo.NewRect(0, 0, 10, 10), 4, 4)
	st := NewStore(g, nil, 0)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10), TopK: 2, Window: time.Minute}
	st.AddSub(q, t0)
	for i := 1; i <= 20; i++ {
		st.Observe(entry(uint64(i), []string{"x"}, float64(i%10), float64(i%10), t0.Add(time.Duration(i)*time.Second)))
	}
	if st.Footprint() == 0 {
		t.Fatal("rings should be populated before the unsubscribe")
	}
	st.RemoveSub(q.ID)
	st.Advance(t0.Add(30 * time.Second)) // well inside the old window
	if fp := st.Footprint(); fp != 0 {
		t.Fatalf("ring entries pinned after last unsubscribe: footprint %d", fp)
	}
}

// A cell hand-off (snapshot → adopt → drop) preserves top-k membership:
// the receiving store reconstructs exactly the entries the source held in
// that cell, and the source repairs itself from its remaining cells.
func TestStoreCellHandoff(t *testing.T) {
	bounds := geo.NewRect(0, 0, 10, 10)
	g := grid.New(bounds, 2, 2) // 4 big cells
	src := NewStore(g, nil, 0)
	dst := NewStore(g, nil, 0)
	q := &model.Query{ID: 9, Expr: model.And("x"), Region: bounds, TopK: 4, Window: time.Minute}
	now := t0
	src.AddSub(q, now)

	// Two entries in cell of (2,2), two in cell of (7,7).
	locs := []geo.Point{{X: 2, Y: 2}, {X: 2.5, Y: 2.5}, {X: 7, Y: 7}, {X: 7.5, Y: 7.5}}
	for i, p := range locs {
		e := entry(uint64(i+1), []string{"x"}, p.X, p.Y, now.Add(time.Duration(i)*time.Second))
		src.Offer(q, e, e.At)
		src.Observe(e)
	}
	cell := g.CellOf(geo.Point{X: 2, Y: 2})
	now = now.Add(10 * time.Second)

	snap := src.SnapshotCell(cell, now)
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries, want the cell's 2", len(snap))
	}
	// Destination holds the migrated copy of the query.
	dst.AddSub(q, now)
	dst.AdoptCell(cell, snap, now)
	if got := dst.TopKSet(q.ID); !equalIDs(got, []uint64{1, 2}) {
		t.Fatalf("destination adopted %v, want [1 2]", got)
	}
	ring, ds := src.DropCell(cell, now)
	if len(ring) != 2 {
		t.Fatalf("DropCell returned %d ring entries, want 2", len(ring))
	}
	// Source keeps only the other cell's entries.
	if got := src.TopKSet(q.ID); !equalIDs(got, []uint64{3, 4}) {
		t.Fatalf("source holds %v after drop, want [3 4]", got)
	}
	// Lefts for 1,2; no refill available (k not depleted below holdings).
	lefts := 0
	for _, d := range ds {
		if !d.Entered {
			lefts++
		}
	}
	if lefts != 2 {
		t.Fatalf("DropCell emitted %d Left deltas, want 2", lefts)
	}
	// Union across stores equals the pre-migration top-k.
	union := append(dst.TopKSet(q.ID), src.TopKSet(q.ID)...)
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	if !equalIDs(union, []uint64{1, 2, 3, 4}) {
		t.Fatalf("hand-off lost or duplicated entries: %v", union)
	}
}

// Expiry of a top-k slot must repair from window contents that never made
// the top-k (the re-fill path).
func TestStoreRefillAfterExpiry(t *testing.T) {
	g := grid.New(geo.NewRect(0, 0, 10, 10), 4, 4)
	st := NewStore(g, nil, 0)
	q := &model.Query{ID: 3, Expr: model.And("x"), Region: geo.NewRect(0, 0, 10, 10), TopK: 1, Window: 20 * time.Second}
	now := t0
	st.AddSub(q, now)
	center := q.Region.Center()
	// e1 at the centre (best), e2 a little later on the rim — its recency
	// boost (2^1 over half-life 5s) doesn't offset the distance penalty,
	// so it never enters the k=1 heap and lives only in the ring.
	e1 := entry(1, []string{"x"}, center.X, center.Y, now)
	e2 := entry(2, []string{"x"}, 0.5, 0.5, now.Add(2*time.Second))
	for _, e := range []Entry{e1, e2} {
		st.Offer(q, e, e.At)
		st.Observe(e)
	}
	if got := st.TopKSet(q.ID); !equalIDs(got, []uint64{1}) {
		t.Fatalf("top-1 is %v, want [1]", got)
	}
	// Advance so e1 expires but e2 is still live → refill promotes e2.
	now = now.Add(21 * time.Second)
	ds := st.Advance(now)
	if got := st.TopKSet(q.ID); !equalIDs(got, []uint64{2}) {
		t.Fatalf("after expiry top-1 is %v, want refilled [2]", got)
	}
	var sawLeft1, sawEnter2 bool
	for _, d := range ds {
		if d.MsgID == 1 && !d.Entered {
			sawLeft1 = true
		}
		if d.MsgID == 2 && d.Entered {
			sawEnter2 = true
		}
	}
	if !sawLeft1 || !sawEnter2 {
		t.Fatalf("deltas %+v missing Left(1) or Entered(2)", ds)
	}
}
