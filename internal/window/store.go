package window

import (
	"sort"
	"time"

	"ps2stream/internal/index/grid"
	"ps2stream/internal/model"
)

// Delta reports one worker-local top-k membership change. The global
// reconciler in internal/core reference-counts deltas per (query, message)
// across workers — a query replicated on several workers (its region spans
// cells of different owners, or a migration hand-off is in flight)
// contributes one membership per worker, and the message leaves the global
// candidate set only when every worker-local membership is gone.
type Delta struct {
	QueryID    uint64
	Subscriber uint64
	MsgID      uint64
	// K is the subscription's k (carried so the reconciler can size the
	// global set without a second lookup).
	K int
	// Rank and Rel are the entry's score for the query (Score fields).
	Rank, Rel float64
	// Entered is true when the entry gained a slot in this worker's local
	// top-k, false when it lost it.
	Entered bool
}

// Store holds one worker's share of all sliding-window top-k state: a ring
// of recent publications per occupied grid cell (the same grid geometry as
// the worker's GI2 index, so window state migrates in the same cell units)
// and a TopK heap per registered top-k subscription.
//
// The Store is not safe for concurrent use; internal/core guards it with
// the owning worker's mutex.
type Store struct {
	g       *grid.Grid
	scorer  Scorer
	ringCap int
	rings   map[int]*Ring
	subs    map[uint64]*subState
	// maxW is the longest window over live subscriptions; rings retain
	// entries this long.
	maxW time.Duration
}

type subState struct {
	q  *model.Query
	tk *TopK
	// score is the per-subscription compiled scorer (see
	// CompilingScorer); plain scorers fall back to a Score closure.
	score func(Entry) Score
}

// NewStore returns an empty store over the grid geometry. A nil scorer
// uses DefaultScorer; ringCap <= 0 uses DefaultRingCap.
func NewStore(g *grid.Grid, scorer Scorer, ringCap int) *Store {
	if scorer == nil {
		scorer = DefaultScorer
	}
	if ringCap <= 0 {
		ringCap = DefaultRingCap
	}
	return &Store{
		g:       g,
		scorer:  scorer,
		ringCap: ringCap,
		rings:   make(map[int]*Ring),
		subs:    make(map[uint64]*subState),
	}
}

// SubCount returns the number of registered top-k subscriptions.
func (st *Store) SubCount() int { return len(st.subs) }

// HasSub reports whether the subscription id is registered.
func (st *Store) HasSub(id uint64) bool {
	_, ok := st.subs[id]
	return ok
}

// MaxWindow returns the longest window over registered subscriptions.
func (st *Store) MaxWindow() time.Duration { return st.maxW }

// AddSub registers a top-k subscription (q.IsTopK must hold) and
// immediately fills its heap from the buffered window, so a subscription
// arriving mid-stream starts with the k best already-published entries.
// Registering an existing id is a no-op.
func (st *Store) AddSub(q *model.Query, now time.Time) []Delta {
	if !q.IsTopK() || st.HasSub(q.ID) {
		return nil
	}
	ss := &subState{q: q, tk: NewTopK(q.TopK)}
	if cs, ok := st.scorer.(CompilingScorer); ok {
		ss.score = cs.Compile(q)
	} else {
		sc, qq := st.scorer, q
		ss.score = func(e Entry) Score { return sc.Score(qq, e) }
	}
	st.subs[q.ID] = ss
	if q.Window > st.maxW {
		st.maxW = q.Window
	}
	return st.refill(ss, now, nil)
}

// RemoveSub drops a subscription, emitting a Left delta per held entry.
func (st *Store) RemoveSub(id uint64) []Delta {
	ss, ok := st.subs[id]
	if !ok {
		return nil
	}
	delete(st.subs, id)
	st.recomputeMaxW()
	var ds []Delta
	for _, r := range ss.tk.Entries() {
		ds = append(ds, st.delta(ss, r, false))
	}
	return ds
}

func (st *Store) recomputeMaxW() {
	st.maxW = 0
	for _, ss := range st.subs {
		if ss.q.Window > st.maxW {
			st.maxW = ss.q.Window
		}
	}
}

// Observe buffers a publication in its cell's ring so it can later repair
// a top-k when a better entry expires. Call it for every published object
// once any top-k subscription is registered, whether or not it matched.
func (st *Store) Observe(e Entry) {
	cell := st.g.CellOf(e.Loc)
	r, ok := st.rings[cell]
	if !ok {
		r = NewRing(st.ringCap)
		st.rings[cell] = r
	}
	r.Add(e, e.At.Add(-st.maxW))
}

// Offer proposes a freshly published, already-matched entry to the
// subscription's top-k. The subscription is registered on first use (a
// migrated query can reach a worker outside the normal insert path).
func (st *Store) Offer(q *model.Query, e Entry, now time.Time) []Delta {
	return st.OfferInto(nil, q, e, now)
}

// OfferInto is Offer with caller-owned delta accumulation: resulting
// deltas are appended to dst and the extended slice is returned, so a
// worker processing a whole batch of publications reuses one scratch
// buffer across offers instead of allocating a slice per matched entry.
func (st *Store) OfferInto(dst []Delta, q *model.Query, e Entry, now time.Time) []Delta {
	ss, ok := st.subs[q.ID]
	if !ok {
		dst = append(dst, st.AddSub(q, now)...)
		ss = st.subs[q.ID]
		if ss == nil || !e.Live(now.Add(-q.Window)) {
			return dst
		}
		// The refill above already saw every buffered entry; e is new.
		return st.offerInto(dst, ss, e)
	}
	if !e.Live(now.Add(-ss.q.Window)) {
		return dst
	}
	return st.offerInto(dst, ss, e)
}

func (st *Store) offerInto(dst []Delta, ss *subState, e Entry) []Delta {
	r := Ranked{E: e, S: ss.score(e)}
	entered, evicted := ss.tk.Offer(r)
	if !entered {
		return dst
	}
	dst = append(dst, st.delta(ss, r, true))
	if evicted != nil {
		dst = append(dst, st.delta(ss, *evicted, false))
	}
	return dst
}

// Advance runs the eager expiry sweep at time now: rings are compacted,
// expired entries fall out of every top-k (Left deltas), and depleted
// top-ks are repaired from the surviving window contents (Entered deltas).
func (st *Store) Advance(now time.Time) []Delta {
	for cell, r := range st.rings {
		r.ExpireBefore(now.Add(-st.maxW))
		if r.Len() == 0 {
			delete(st.rings, cell)
		}
	}
	var ds []Delta
	for _, ss := range st.subs {
		expired := ss.tk.ExpireBefore(now.Add(-ss.q.Window))
		for _, r := range expired {
			ds = append(ds, st.delta(ss, r, false))
		}
		if len(expired) > 0 {
			ds = append(ds, st.refill(ss, now, nil)...)
		}
	}
	return ds
}

// refill tops the subscription's heap back up to k from the buffered
// window, skipping entries already held and ids in exclude. Candidates are
// ranked with the same scorer as live offers, so a repaired top-k is
// exactly what it would have been had the evicted entries never existed.
func (st *Store) refill(ss *subState, now time.Time, exclude map[uint64]struct{}) []Delta {
	need := ss.q.TopK - ss.tk.Len()
	if need <= 0 {
		return nil
	}
	cutoff := now.Add(-ss.q.Window)
	var cands []Ranked
	seen := make(map[uint64]struct{})
	st.g.VisitOverlapping(ss.q.Region, func(cell int) {
		r, ok := st.rings[cell]
		if !ok {
			return
		}
		r.Each(cutoff, func(e Entry) bool {
			if _, dup := seen[e.MsgID]; dup {
				return true
			}
			if ss.tk.Contains(e.MsgID) {
				return true
			}
			if exclude != nil {
				if _, skip := exclude[e.MsgID]; skip {
					return true
				}
			}
			if !ss.q.Region.Contains(e.Loc) || !ss.q.Expr.MatchesSlice(e.Terms) {
				return true
			}
			seen[e.MsgID] = struct{}{}
			cands = append(cands, Ranked{E: e, S: ss.score(e)})
			return true
		})
	})
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].S.Better(cands[j].S, cands[i].E.MsgID, cands[j].E.MsgID)
	})
	var ds []Delta
	for _, c := range cands {
		entered, evicted := ss.tk.Offer(c)
		if !entered {
			break // candidates are sorted; the rest rank lower
		}
		ds = append(ds, st.delta(ss, c, true))
		if evicted != nil {
			// Cannot happen while need > 0, but keep the accounting safe.
			ds = append(ds, st.delta(ss, *evicted, false))
		}
	}
	return ds
}

func (st *Store) delta(ss *subState, r Ranked, entered bool) Delta {
	return Delta{
		QueryID:    ss.q.ID,
		Subscriber: ss.q.Subscriber,
		MsgID:      r.E.MsgID,
		K:          ss.q.TopK,
		Rank:       r.S.Rank,
		Rel:        r.S.Rel,
		Entered:    entered,
	}
}

// --- migration support --------------------------------------------------

// SnapshotCell copies the cell's live window contents: its ring entries
// plus any top-k-held entries located in the cell that the count-bounded
// ring has already dropped. This is the copy-before-flip half of moving a
// gridt cell to another worker.
func (st *Store) SnapshotCell(cell int, now time.Time) []Entry {
	var out []Entry
	seen := make(map[uint64]struct{})
	if r, ok := st.rings[cell]; ok {
		// Everything buffered is snapshotted, regardless of the current
		// retention horizon: the receiver filters on adoption against its
		// own subscriptions, and a hand-off must not silently narrow when
		// the source's subscription set shrinks mid-migration.
		for _, e := range r.Snapshot(time.Time{}) {
			seen[e.MsgID] = struct{}{}
			out = append(out, e)
		}
	}
	for _, ss := range st.subs {
		cutoff := now.Add(-ss.q.Window)
		for _, r := range ss.tk.Entries() {
			if st.g.CellOf(r.E.Loc) != cell || !r.E.Live(cutoff) {
				continue
			}
			if _, dup := seen[r.E.MsgID]; dup {
				continue
			}
			seen[r.E.MsgID] = struct{}{}
			out = append(out, r.E)
		}
	}
	return out
}

// AdoptCell merges entries migrated with a cell into the local window:
// they are buffered in the cell's ring and offered to every local top-k
// subscription they match. Entries already buffered are skipped, as are
// entries older than the local retention horizon (the longest window over
// this store's subscriptions — the same policy Observe applies to fresh
// publications; migrated top-k queries are registered before adoption, so
// their horizon is already in force). With no local top-k subscriptions
// the horizon is zero and nothing is retained.
func (st *Store) AdoptCell(cell int, entries []Entry, now time.Time) []Delta {
	if len(entries) == 0 {
		return nil
	}
	r, ok := st.rings[cell]
	if !ok {
		r = NewRing(st.ringCap)
		st.rings[cell] = r
	}
	// One pass over the ring builds the dedup set; per-entry Contains
	// scans would make adopting a full cell quadratic under the worker
	// lock.
	have := make(map[uint64]struct{}, r.Len())
	r.Each(time.Time{}, func(e Entry) bool {
		have[e.MsgID] = struct{}{}
		return true
	})
	var ds []Delta
	for _, e := range entries {
		if _, dup := have[e.MsgID]; dup || !e.Live(now.Add(-st.maxW)) {
			continue
		}
		have[e.MsgID] = struct{}{}
		r.Add(e, e.At.Add(-st.maxW))
		for _, ss := range st.subs {
			if !e.Live(now.Add(-ss.q.Window)) {
				continue
			}
			if !ss.q.Region.Contains(e.Loc) || !ss.q.Expr.MatchesSlice(e.Terms) {
				continue
			}
			ds = st.offerInto(ds, ss, e)
		}
	}
	if r.Len() == 0 {
		delete(st.rings, cell)
	}
	return ds
}

// DropCell releases the worker's window share of a migrated cell: the
// cell's ring is removed and returned (so entries that arrived between the
// migration's copy and the routing flip can be forwarded to the new
// owner), and every subscription's top-k sheds its entries located in the
// cell — the new owner's adopted copy is now responsible for them — then
// repairs itself from the cells this worker still holds.
func (st *Store) DropCell(cell int, now time.Time) ([]Entry, []Delta) {
	var ring []Entry
	seen := make(map[uint64]struct{})
	if r, ok := st.rings[cell]; ok {
		for _, e := range r.Snapshot(time.Time{}) { // see SnapshotCell on the cutoff
			seen[e.MsgID] = struct{}{}
			ring = append(ring, e)
		}
		delete(st.rings, cell)
	}
	var ds []Delta
	for _, ss := range st.subs {
		var dropped map[uint64]struct{}
		for _, r := range ss.tk.Entries() {
			if st.g.CellOf(r.E.Loc) != cell {
				continue
			}
			if removed, ok := ss.tk.Remove(r.E.MsgID); ok {
				ds = append(ds, st.delta(ss, removed, false))
				if dropped == nil {
					dropped = make(map[uint64]struct{})
				}
				dropped[removed.E.MsgID] = struct{}{}
				// Heap-held entries the count-bounded ring already
				// evicted still belong to the cell's window state; hand
				// them off too (SnapshotCell does the same on copy).
				if _, dup := seen[removed.E.MsgID]; !dup {
					seen[removed.E.MsgID] = struct{}{}
					ring = append(ring, removed.E)
				}
			}
		}
		if dropped != nil {
			ds = append(ds, st.refill(ss, now, dropped)...)
		}
	}
	return ring, ds
}

// SubEntries returns copies of the subscription's currently held window
// entries, in unspecified order (global-repartition hand-off: unlike
// cell-granular migration, a whole-subscription relocation carries its
// heap contents rather than cell rings).
func (st *Store) SubEntries(id uint64) []Entry {
	ss, ok := st.subs[id]
	if !ok {
		return nil
	}
	out := make([]Entry, 0, ss.tk.Len())
	for _, r := range ss.tk.Entries() {
		out = append(out, r.E)
	}
	return out
}

// AdoptEntries offers relocated entries to one subscription and buffers
// them in their cells' rings so later refills can see them. Expired and
// already-buffered entries are skipped.
func (st *Store) AdoptEntries(id uint64, entries []Entry, now time.Time) []Delta {
	ss, ok := st.subs[id]
	if !ok {
		return nil
	}
	var ds []Delta
	for _, e := range entries {
		if !e.Live(now.Add(-ss.q.Window)) {
			continue
		}
		cell := st.g.CellOf(e.Loc)
		r, okr := st.rings[cell]
		if !okr {
			r = NewRing(st.ringCap)
			st.rings[cell] = r
		}
		if !r.Contains(e.MsgID) { // few entries (≤ k); linear scan is fine
			r.Add(e, e.At.Add(-st.maxW))
		}
		ds = st.offerInto(ds, ss, e)
	}
	return ds
}

// TopKSet returns the message ids currently held for the subscription,
// sorted ascending (tests).
func (st *Store) TopKSet(id uint64) []uint64 {
	ss, ok := st.subs[id]
	if !ok {
		return nil
	}
	out := make([]uint64, 0, ss.tk.Len())
	for _, r := range ss.tk.Entries() {
		out = append(out, r.E.MsgID)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Footprint estimates resident bytes (worker-memory accounting).
func (st *Store) Footprint() int64 {
	var b int64
	for _, r := range st.rings {
		b += int64(cap(r.buf)) * 64
	}
	for _, ss := range st.subs {
		b += int64(ss.tk.Len()) * 80
	}
	return b
}
