package window

import "time"

// Ranked pairs a window entry with its score for one subscription.
type Ranked struct {
	E Entry
	S Score
}

// TopK maintains the k best-ranked window entries of one subscription as
// a bounded min-heap (the worst of the kept entries at the root), with an
// id→slot map for O(log k) removal by message id. Scores are
// time-independent rank keys (see Score.Rank), so entries never need
// re-heaping as time advances; only expiry removes them.
type TopK struct {
	k   int
	h   []Ranked
	pos map[uint64]int
}

// NewTopK returns an empty maintainer with capacity k (>= 1).
func NewTopK(k int) *TopK {
	if k < 1 {
		k = 1
	}
	return &TopK{k: k, pos: make(map[uint64]int, k)}
}

// K returns the capacity.
func (t *TopK) K() int { return t.k }

// Len returns the number of held entries.
func (t *TopK) Len() int { return len(t.h) }

// Contains reports whether the message id currently holds a slot.
func (t *TopK) Contains(id uint64) bool {
	_, ok := t.pos[id]
	return ok
}

// Entries returns a copy of the held entries in unspecified order.
func (t *TopK) Entries() []Ranked {
	return append([]Ranked(nil), t.h...)
}

// Offer proposes a new entry. When the heap is full and r ranks below the
// current minimum, the offer is rejected. On acceptance the displaced
// minimum, if any, is returned. Offering an id already held is a no-op
// (duplicate publications rank identically, so replacing changes nothing).
func (t *TopK) Offer(r Ranked) (entered bool, evicted *Ranked) {
	if _, dup := t.pos[r.E.MsgID]; dup {
		return false, nil
	}
	if len(t.h) < t.k {
		t.push(r)
		return true, nil
	}
	min := t.h[0]
	if !r.S.Better(min.S, r.E.MsgID, min.E.MsgID) {
		return false, nil
	}
	t.removeAt(0)
	t.push(r)
	return true, &min
}

// Remove drops the entry with the message id, reporting whether it was
// held.
func (t *TopK) Remove(id uint64) (Ranked, bool) {
	i, ok := t.pos[id]
	if !ok {
		return Ranked{}, false
	}
	r := t.h[i]
	t.removeAt(i)
	return r, true
}

// ExpireBefore removes and returns every held entry not live at cutoff.
func (t *TopK) ExpireBefore(cutoff time.Time) []Ranked {
	var out []Ranked
	for i := 0; i < len(t.h); {
		if t.h[i].E.Live(cutoff) {
			i++
			continue
		}
		out = append(out, t.h[i])
		t.removeAt(i)
		// removeAt moved a different element into slot i; re-examine it.
	}
	return out
}

// --- heap internals (min-heap: h[0] is the worst kept entry) ------------

func (t *TopK) less(i, j int) bool {
	// "Less" in the min-heap sense: i is worse than j.
	return t.h[j].S.Better(t.h[i].S, t.h[j].E.MsgID, t.h[i].E.MsgID)
}

func (t *TopK) swap(i, j int) {
	t.h[i], t.h[j] = t.h[j], t.h[i]
	t.pos[t.h[i].E.MsgID] = i
	t.pos[t.h[j].E.MsgID] = j
}

func (t *TopK) push(r Ranked) {
	t.h = append(t.h, r)
	i := len(t.h) - 1
	t.pos[r.E.MsgID] = i
	t.up(i)
}

func (t *TopK) removeAt(i int) {
	last := len(t.h) - 1
	delete(t.pos, t.h[i].E.MsgID)
	if i != last {
		t.h[i] = t.h[last]
		t.pos[t.h[i].E.MsgID] = i
	}
	t.h = t.h[:last]
	if i < last {
		t.down(i)
		t.up(i)
	}
}

func (t *TopK) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.less(l, smallest) {
			smallest = l
		}
		if r < n && t.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}
