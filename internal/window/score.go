package window

import (
	"math"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// Score is a subscription-relative relevance for a window entry.
type Score struct {
	// Rank orders entries within one subscription's window: higher is
	// better. Rank folds recency decay in log-space (see DecayScorer), so
	// the relative order of two fixed entries never changes as time
	// advances — a heap keyed on Rank stays valid without re-scoring.
	Rank float64
	// Rel is the undecayed relevance (text × proximity, in (0, 1]) that
	// is reported to subscribers.
	Rel float64
}

// Better reports whether a ranks strictly above b in a top-k. Ties on Rank
// break towards the higher message id (the newer message), making the
// global order total and deterministic.
func (a Score) Better(b Score, aID, bID uint64) bool {
	if a.Rank != b.Rank {
		return a.Rank > b.Rank
	}
	return aID > bID
}

// Scorer computes the score of a window entry for a top-k subscription.
// Implementations must be deterministic functions of (q, e): workers and
// the migration machinery re-score entries independently and their ranks
// must agree.
type Scorer interface {
	Score(q *model.Query, e Entry) Score
}

// CompilingScorer is an optional fast path: scorers that can precompute
// per-subscription state (term sets, region geometry, decay rate) return
// a compiled closure that the Store calls on the publish hot path instead
// of Score. Compile(q)(e) must equal Score(q, e) exactly.
type CompilingScorer interface {
	Scorer
	Compile(q *model.Query) func(Entry) Score
}

// DecayScorer is the default scorer: text relevance (fraction of the
// subscription's distinct keywords present) × spatial proximity (inverse
// normalised distance to the region centre) × exponential recency decay
// with half-life HalfLifeFraction·q.Window.
//
// With one decay rate per subscription, decay multiplies every entry's
// score by the same factor as time advances, so order is preserved; the
// Rank is therefore stored as log(rel) + λ·t, a time-independent key.
type DecayScorer struct {
	// HalfLifeFraction sets the decay half-life as a fraction of the
	// subscription's window (<= 0 uses DefaultHalfLifeFraction).
	HalfLifeFraction float64
}

// DefaultHalfLifeFraction halves an entry's effective score every quarter
// window: an entry must be markedly more relevant than a fresh one to hold
// a top-k slot for its whole lifetime.
const DefaultHalfLifeFraction = 0.25

// DefaultScorer is the scorer used when none is configured.
var DefaultScorer Scorer = DecayScorer{}

// Score implements Scorer. It is the reference implementation; the Store
// uses the compiled form on the hot path.
func (d DecayScorer) Score(q *model.Query, e Entry) Score {
	return d.Compile(q)(e)
}

// Compile implements CompilingScorer: the subscription's distinct terms,
// region geometry, and decay rate are computed once, so per-entry scoring
// is allocation-free.
func (d DecayScorer) Compile(q *model.Query) func(Entry) Score {
	terms := q.Expr.Terms()
	center := q.Region.Center()
	halfDiagKm := distKm(center, q.Region.Max)
	f := d.HalfLifeFraction
	if f <= 0 {
		f = DefaultHalfLifeFraction
	}
	halfLife := q.Window.Seconds() * f
	if halfLife <= 0 {
		halfLife = 1
	}
	lambda := math.Ln2 / halfLife
	return func(e Entry) Score {
		rel := textRelevance(terms, e) * proximity(center, halfDiagKm, e)
		if rel <= 0 {
			rel = 1e-12 // matched entries always keep a positive score
		}
		t := float64(e.At.UnixNano()) / float64(1e9)
		return Score{Rank: math.Log(rel) + lambda*t, Rel: rel}
	}
}

// textRelevance is the fraction of the subscription's distinct keywords
// present in the entry (1 for single-keyword subscriptions).
func textRelevance(terms []string, e Entry) float64 {
	if len(terms) == 0 {
		return 1
	}
	hit := 0
	for _, t := range terms {
		for _, et := range e.Terms {
			if t == et {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(terms))
}

// proximity maps the entry's distance from the region centre to (0, 1]:
// 1 at the centre, 1/2 at one half-diagonal away.
func proximity(center geo.Point, halfDiagKm float64, e Entry) float64 {
	if halfDiagKm <= 0 {
		return 1
	}
	return 1 / (1 + distKm(center, e.Loc)/halfDiagKm)
}

// distKm is the equirectangular distance in kilometres (adequate for the
// 1–100 km region scales of the workload, matching geo's conventions).
func distKm(a, b geo.Point) float64 {
	dy := (b.Y - a.Y) * geo.KmPerDegreeLat
	dx := (b.X - a.X) * geo.KmPerDegreeLat * math.Cos(a.Y*math.Pi/180)
	return math.Hypot(dx, dy)
}
