// Package window implements the sliding-window top-k subscription
// machinery of PS2Stream's ranked-delivery extension. Where the boolean
// pub/sub core (Chen et al., ICDE 2017) forwards every matching object to
// a subscription, a top-k subscription asks for the k most relevant
// objects published within a sliding time window — the subscription type
// formalised by "Top-k Spatial-keyword Publish/Subscribe Over Sliding
// Window" (Wang et al., arXiv:1611.03204).
//
// The package provides three layers, all worker-local:
//
//   - Ring: a count- and time-bounded buffer of recently published
//     objects, one per occupied grid cell. Expiry is lazy (Add overwrites
//     the oldest entry when full; readers skip stale entries) and eager
//     (ExpireBefore compacts on the periodic sweep).
//   - TopK: a per-subscription bounded min-heap holding the current k
//     best entries under a pluggable score (text relevance × spatial
//     proximity × recency decay).
//   - Store: one per worker; it owns the cell rings and subscription
//     heaps, repairs a heap from the rings when an entry expires out of
//     it, and exposes the cell-granular snapshot/adopt/extract operations
//     the §V load-migration machinery uses to move window state together
//     with a migrated gridt cell.
//
// A Store is owned by a single worker goroutine (guarded by the worker's
// mutex in internal/core) and is not safe for concurrent use. Membership
// changes are reported as Deltas; the global reconciler in internal/core
// merges the per-worker deltas into each subscription's global top-k set.
package window

import (
	"time"

	"ps2stream/internal/geo"
)

// Entry is one published object retained in the sliding window.
type Entry struct {
	// MsgID identifies the published object.
	MsgID uint64
	// Terms is the object's tokenised text.
	Terms []string
	// Loc is the object's location.
	Loc geo.Point
	// At is the publish timestamp; the entry leaves every window of span
	// W at At+W.
	At time.Time
}

// Live reports whether the entry is still inside a window whose oldest
// admissible instant is cutoff (an entry exactly window-old is expired).
func (e Entry) Live(cutoff time.Time) bool { return e.At.After(cutoff) }

// DefaultRingCap bounds each grid cell's ring when no explicit capacity is
// configured.
const DefaultRingCap = 1024

// Ring is a count-bounded circular buffer of window entries in arrival
// order. The time bound is enforced cooperatively: Add drops expired
// entries lazily as it appends, Each filters against a cutoff, and
// ExpireBefore compacts eagerly on the periodic sweep.
type Ring struct {
	buf  []Entry
	head int // index of the oldest entry
	n    int
}

// NewRing returns an empty ring holding at most capacity entries
// (DefaultRingCap when capacity <= 0).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Entry, capacity)}
}

// Len returns the number of buffered entries (live or not).
func (r *Ring) Len() int { return r.n }

// Add appends e, lazily dropping expired-by-cutoff entries from the head,
// then the oldest entry outright if the ring is still full.
func (r *Ring) Add(e Entry, cutoff time.Time) {
	for r.n > 0 && !r.buf[r.head].Live(cutoff) {
		r.buf[r.head] = Entry{}
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	if r.n == len(r.buf) {
		r.buf[r.head] = Entry{}
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
}

// ExpireBefore eagerly removes every entry at or before cutoff, preserving
// arrival order of the survivors, and returns the number removed. Unlike
// the lazy head-trim in Add it also removes out-of-order stale entries.
func (r *Ring) ExpireBefore(cutoff time.Time) int {
	if r.n == 0 {
		return 0
	}
	kept := 0
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.head+i)%len(r.buf)]
		if e.Live(cutoff) {
			r.buf[(r.head+kept)%len(r.buf)] = e
			kept++
		}
	}
	removed := r.n - kept
	for i := kept; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = Entry{}
	}
	r.n = kept
	return removed
}

// Each invokes fn for every entry newer than cutoff, oldest first,
// stopping early if fn returns false.
func (r *Ring) Each(cutoff time.Time, fn func(Entry) bool) {
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.head+i)%len(r.buf)]
		if !e.Live(cutoff) {
			continue
		}
		if !fn(e) {
			return
		}
	}
}

// Contains reports whether an entry with the id is buffered.
func (r *Ring) Contains(id uint64) bool {
	for i := 0; i < r.n; i++ {
		if r.buf[(r.head+i)%len(r.buf)].MsgID == id {
			return true
		}
	}
	return false
}

// Snapshot returns a copy of the entries newer than cutoff, oldest first.
func (r *Ring) Snapshot(cutoff time.Time) []Entry {
	out := make([]Entry, 0, r.n)
	r.Each(cutoff, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}
