package load

import (
	"math"
	"testing"
	"time"
)

func TestWorkerFormula(t *testing.T) {
	c := Costs{C1: 0.5, C2: 1, C3: 2, C4: 3}
	got := c.Worker(10, 4, 6)
	want := 0.5*10*4 + 1*10 + 2*4 + 3*6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Worker = %v, want %v", got, want)
	}
}

func TestNodeCountsInsertAndDelete(t *testing.T) {
	c := Costs{C1: 0, C2: 0, C3: 2, C4: 1}
	// queries count as both insertions and deletions.
	if got := c.Node(0, 10); got != 30 {
		t.Errorf("Node = %v, want 30", got)
	}
}

func TestCell(t *testing.T) {
	if got := Cell(7, 3); got != 21 {
		t.Errorf("Cell = %v, want 21", got)
	}
	if got := Cell(0, 100); got != 0 {
		t.Errorf("Cell = %v, want 0", got)
	}
}

func TestBalanceFactor(t *testing.T) {
	tests := []struct {
		name  string
		loads []float64
		want  float64
	}{
		{"balanced", []float64{10, 10, 10}, 1},
		{"double", []float64{10, 20}, 2},
		{"empty", nil, 1},
		{"single", []float64{5}, 1},
		{"all zero", []float64{0, 0}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := BalanceFactor(tt.loads); math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("BalanceFactor = %v, want %v", got, tt.want)
			}
		})
	}
	// Idle worker yields a huge but finite factor.
	f := BalanceFactor([]float64{0, 100})
	if math.IsInf(f, 0) || f < 1e6 {
		t.Errorf("idle-worker factor = %v", f)
	}
}

func TestArgMinMax(t *testing.T) {
	loads := []float64{5, 1, 9, 3}
	lo, hi := ArgMinMax(loads)
	if lo != 1 || hi != 2 {
		t.Errorf("ArgMinMax = %d,%d want 1,2", lo, hi)
	}
}

func TestTotal(t *testing.T) {
	if got := Total([]float64{1, 2, 3}); got != 6 {
		t.Errorf("Total = %v", got)
	}
}

func TestWindow(t *testing.T) {
	w := NewWindow(2, Costs{C1: 0, C2: 1, C3: 1, C4: 1})
	w.Objects[0] = 10
	w.Inserts[0] = 5
	w.Deletes[1] = 3
	loads := w.Loads()
	if loads[0] != 15 || loads[1] != 3 {
		t.Errorf("Loads = %v", loads)
	}
	w.Reset()
	loads = w.Loads()
	if loads[0] != 0 || loads[1] != 0 {
		t.Errorf("after Reset Loads = %v", loads)
	}
}

func TestDetectorThresholdAndHysteresis(t *testing.T) {
	d := NewDetector(DetectorConfig{Theta: 1.5, SustainChecks: 2, Cooldown: time.Minute})
	now := time.Unix(1000, 0)
	if got := d.Observe(1.2, now); got != Balanced {
		t.Fatalf("below theta: %v, want balanced", got)
	}
	// First violation only arms the streak; the second fires.
	if got := d.Observe(2.0, now); got != Sustaining {
		t.Fatalf("first violation: %v, want sustaining", got)
	}
	if got := d.Observe(2.0, now.Add(time.Second)); got != Trigger {
		t.Fatalf("sustained violation: %v, want trigger", got)
	}
	// A dip below theta resets the streak.
	if got := d.Observe(1.0, now.Add(2*time.Second)); got != Balanced {
		t.Fatalf("dip: %v, want balanced", got)
	}
	if got := d.Observe(2.0, now.Add(3*time.Second)); got != Sustaining {
		t.Fatalf("violation after dip must re-sustain: %v", got)
	}
}

func TestDetectorCooldown(t *testing.T) {
	d := NewDetector(DetectorConfig{Theta: 1.5, SustainChecks: 1, Cooldown: 10 * time.Second})
	now := time.Unix(2000, 0)
	if got := d.Observe(3, now); got != Trigger {
		t.Fatalf("first violation with SustainChecks 1: %v, want trigger", got)
	}
	if got := d.Observe(3, now.Add(time.Second)); got != Cooling {
		t.Fatalf("within cooldown: %v, want cooling", got)
	}
	if got := d.Observe(3, now.Add(11*time.Second)); got != Trigger {
		t.Fatalf("after cooldown: %v, want trigger", got)
	}
}

func TestDetectorForce(t *testing.T) {
	d := NewDetector(DetectorConfig{Theta: 1.5, SustainChecks: 1, Cooldown: 10 * time.Second})
	now := time.Unix(3000, 0)
	d.Force(now)
	if got := d.Observe(3, now.Add(time.Second)); got != Cooling {
		t.Fatalf("after Force, background detector should cool down: %v", got)
	}
	if got := d.Observe(3, now.Add(11*time.Second)); got != Trigger {
		t.Fatalf("cooldown from Force elapsed: %v, want trigger", got)
	}
}

func TestDetectorDefaults(t *testing.T) {
	d := NewDetector(DetectorConfig{})
	now := time.Unix(4000, 0)
	if got := d.Observe(1.2, now); got != Balanced {
		t.Fatalf("1.2 under default theta 1.25: %v", got)
	}
	if got := d.Observe(1.3, now); got != Sustaining {
		t.Fatalf("default SustainChecks is 2: %v", got)
	}
	if got := d.Observe(1.3, now); got != Trigger {
		t.Fatalf("second violation: %v, want trigger", got)
	}
	if s := Trigger.String(); s != "trigger" {
		t.Fatalf("String = %q", s)
	}
}
