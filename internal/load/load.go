// Package load implements the workload model of the paper: the load of a
// worker (Definition 1), the load of a cell (Definition 3), the balance
// constraint L_max/L_min ≤ σ, and the cost constants c1..c4 shared by the
// partitioning and adjustment algorithms, plus the imbalance Detector
// (θ threshold + hysteresis + cooldown) driving the adaptive adjustment
// controller.
package load

import "time"

// Costs holds the per-operation cost constants of Definition 1:
//
//	L_i = c1·|O_i|·|Q^i_i| + c2·|O_i| + c3·|Q^i_i| + c4·|Q^d_i|
//
// where c1 is the average cost of checking one object against one STS
// query, c2 the cost of handling one object, c3 of one insertion, and c4
// of one deletion.
type Costs struct {
	C1 float64
	C2 float64
	C3 float64
	C4 float64
}

// DefaultCosts approximates the relative magnitudes measured on the GI2
// matching micro-benchmarks: the pairwise check is ~4 orders of magnitude
// cheaper than tuple handling, insertions cost a little more than object
// handling (multi-cell registration), deletions are cheap (tombstone
// write).
var DefaultCosts = Costs{C1: 0.0001, C2: 1.0, C3: 1.5, C4: 0.3}

// Worker evaluates Definition 1 for a worker receiving objects objects,
// inserts query insertions, and deletes query deletions.
func (c Costs) Worker(objects, inserts, deletes float64) float64 {
	return c.C1*objects*inserts + c.C2*objects + c.C3*inserts + c.C4*deletes
}

// Node estimates the load a partition unit would impose if assigned to one
// worker, given the sampled object and query counts that reach it. The
// insertion and deletion streams have equal rates in the paper's workload,
// so queries counts both as |Q^i| and |Q^d|.
func (c Costs) Node(objects, queries float64) float64 {
	return c.C1*objects*queries + c.C2*objects + c.C3*queries + c.C4*queries
}

// Cell evaluates Definition 3: L_g = n_o · n_q.
func Cell(objSeen, queries float64) float64 { return objSeen * queries }

// BalanceFactor returns L_max/L_min over the worker loads. Zero or
// negative loads are floored at a small epsilon so an idle worker yields a
// large (but finite) factor. An empty or single-element slice returns 1.
func BalanceFactor(loads []float64) float64 {
	if len(loads) < 2 {
		return 1
	}
	const eps = 1e-9
	minL, maxL := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minL {
			minL = l
		}
		if l > maxL {
			maxL = l
		}
	}
	if maxL <= 0 {
		return 1
	}
	if minL < eps {
		minL = eps
	}
	return maxL / minL
}

// Total sums the loads.
func Total(loads []float64) float64 {
	var s float64
	for _, l := range loads {
		s += l
	}
	return s
}

// ArgMinMax returns the indices of the least and most loaded workers.
func ArgMinMax(loads []float64) (argmin, argmax int) {
	for i, l := range loads {
		if l < loads[argmin] {
			argmin = i
		}
		if l > loads[argmax] {
			argmax = i
		}
	}
	return argmin, argmax
}

// DetectorConfig tunes the adaptive controller's imbalance detector.
type DetectorConfig struct {
	// Theta is the trigger threshold on the balance factor
	// L_max/L_min — the paper's σ constraint. A window whose factor
	// exceeds Theta counts as a violation.
	Theta float64
	// SustainChecks is the hysteresis: the violation must persist for
	// this many consecutive observations before the detector fires, so a
	// single window that grazes Theta (scheduler noise, one hot batch)
	// does not trigger a migration. 1 fires immediately.
	SustainChecks int
	// Cooldown is the minimum time between triggers: after an
	// adjustment, the detector stays quiet while the migration settles
	// and the smoothed loads catch up, preventing thrash on the same
	// imbalance signal.
	Cooldown time.Duration
}

// Decision classifies one detector observation.
type Decision int

// The detector outcomes.
const (
	// Balanced: the balance factor is within Theta.
	Balanced Decision = iota
	// Sustaining: violated, but not yet for SustainChecks observations.
	Sustaining
	// Cooling: violated and sustained, but the cooldown since the last
	// trigger has not elapsed.
	Cooling
	// Trigger: the controller should adjust now.
	Trigger
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Balanced:
		return "balanced"
	case Sustaining:
		return "sustaining"
	case Cooling:
		return "cooling"
	case Trigger:
		return "trigger"
	default:
		return "unknown"
	}
}

// Detector is the θ-threshold + hysteresis + cooldown state machine of the
// adaptive adjustment controller. It is not safe for concurrent use; the
// controller owns it.
type Detector struct {
	cfg       DetectorConfig
	streak    int
	lastFire  time.Time
	everFired bool
}

// NewDetector returns a detector; zero config fields get safe defaults
// (Theta 1.25, SustainChecks 2, Cooldown 0).
func NewDetector(cfg DetectorConfig) *Detector {
	if cfg.Theta <= 1 {
		cfg.Theta = 1.25
	}
	if cfg.SustainChecks < 1 {
		cfg.SustainChecks = 2
	}
	return &Detector{cfg: cfg}
}

// Observe feeds one balance-factor observation at the given instant and
// returns the decision. A Trigger resets the hysteresis streak and starts
// the cooldown.
func (d *Detector) Observe(factor float64, now time.Time) Decision {
	if factor <= d.cfg.Theta {
		d.streak = 0
		return Balanced
	}
	d.streak++
	if d.streak < d.cfg.SustainChecks {
		return Sustaining
	}
	if d.everFired && now.Sub(d.lastFire) < d.cfg.Cooldown {
		// Keep the streak saturated so the trigger fires on the first
		// observation after the cooldown if the violation persists.
		d.streak = d.cfg.SustainChecks
		return Cooling
	}
	d.streak = 0
	d.lastFire = now
	d.everFired = true
	return Trigger
}

// Force marks a manual trigger at now, starting the cooldown as if the
// detector had fired (used by AdjustNow so an explicit adjustment also
// quiets the background controller briefly).
func (d *Detector) Force(now time.Time) {
	d.streak = 0
	d.lastFire = now
	d.everFired = true
}

// Window accumulates per-worker operation counts over a measurement
// window and evaluates Definition 1. It is the bookkeeping behind the
// dispatcher's balance-violation detection (§V-A).
type Window struct {
	Objects []int64
	Inserts []int64
	Deletes []int64
	Costs   Costs
}

// NewWindow returns a window for m workers using the given costs.
func NewWindow(m int, costs Costs) *Window {
	return &Window{
		Objects: make([]int64, m),
		Inserts: make([]int64, m),
		Deletes: make([]int64, m),
		Costs:   costs,
	}
}

// Loads evaluates Definition 1 for every worker.
func (w *Window) Loads() []float64 {
	out := make([]float64, len(w.Objects))
	for i := range out {
		out[i] = w.Costs.Worker(float64(w.Objects[i]), float64(w.Inserts[i]), float64(w.Deletes[i]))
	}
	return out
}

// Reset zeroes all counters.
func (w *Window) Reset() {
	for i := range w.Objects {
		w.Objects[i], w.Inserts[i], w.Deletes[i] = 0, 0, 0
	}
}
