package dedup

import "testing"

func TestWindowDedups(t *testing.T) {
	w := NewWindow(8)
	if !w.Observe([2]uint64{1, 2}) {
		t.Error("first sighting reported as duplicate")
	}
	if w.Observe([2]uint64{1, 2}) {
		t.Error("repeat within window reported as new")
	}
	if !w.Observe([2]uint64{1, 3}) {
		t.Error("distinct key reported as duplicate")
	}
}

func TestWindowEvictsFIFO(t *testing.T) {
	w := NewWindow(2)
	w.Observe([2]uint64{1, 0})
	w.Observe([2]uint64{2, 0})
	// Key 3 evicts key 1 (the oldest).
	w.Observe([2]uint64{3, 0})
	if !w.Observe([2]uint64{1, 0}) {
		t.Error("evicted key still reported as duplicate")
	}
	// Observing 1 again evicted 2.
	if !w.Observe([2]uint64{2, 0}) {
		t.Error("key 2 should have been evicted by now")
	}
	if w.Observe([2]uint64{1, 0}) {
		t.Error("key 1 is inside the window and must read as duplicate")
	}
}

func TestWindowMinimumCapacity(t *testing.T) {
	w := NewWindow(0)
	if !w.Observe([2]uint64{1, 1}) || w.Observe([2]uint64{1, 1}) {
		t.Error("capacity-1 window misbehaved on the same key")
	}
	if !w.Observe([2]uint64{2, 2}) || !w.Observe([2]uint64{1, 1}) {
		t.Error("capacity-1 window should remember only the latest key")
	}
}
