// Package dedup provides the bounded duplicate-elimination window the
// merger role uses (§III-B: a query held by several workers produces
// the same match more than once). One implementation serves both the
// in-process merger bolts (internal/core) and the networked merger
// nodes (internal/node), so the eviction semantics cannot drift apart.
package dedup

// Window remembers the most recent `cap` keys in FIFO order: a key is
// new the first time it is observed and a duplicate while it remains
// within the window. Not safe for concurrent use; each merger task owns
// its own window.
type Window struct {
	seen  map[[2]uint64]struct{}
	order [][2]uint64
	next  int
}

// NewWindow returns a window bounded to capacity keys (minimum 1).
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{
		seen:  make(map[[2]uint64]struct{}, capacity),
		order: make([][2]uint64, 0, capacity),
	}
}

// Observe records the key and reports whether it is new (true) or a
// duplicate already inside the window (false). Once the window is
// full, each new key evicts the oldest remembered one.
func (w *Window) Observe(key [2]uint64) bool {
	if _, dup := w.seen[key]; dup {
		return false
	}
	if len(w.order) < cap(w.order) {
		w.order = append(w.order, key)
	} else {
		delete(w.seen, w.order[w.next])
		w.order[w.next] = key
		w.next = (w.next + 1) % len(w.order)
	}
	w.seen[key] = struct{}{}
	return true
}
