package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
)

func uniformItems(n int, seed int64, bounds geo.Rect) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			P: geo.Point{
				X: bounds.Min.X + rng.Float64()*bounds.Width(),
				Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
			},
			W: 1,
		}
	}
	return items
}

func TestBuildLeafCount(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	items := uniformItems(1000, 1, bounds)
	for _, m := range []int{1, 2, 8, 16, 33} {
		tr := Build(bounds, items, m)
		if got := len(tr.Leaves()); got != m {
			t.Errorf("Build(maxLeaves=%d) produced %d leaves", m, got)
		}
	}
}

func TestLeavesPartitionSpace(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	items := uniformItems(500, 2, bounds)
	tr := Build(bounds, items, 16)
	var area float64
	for _, l := range tr.Leaves() {
		area += l.Bounds.Area()
	}
	if math.Abs(area-bounds.Area()) > 1e-6 {
		t.Errorf("leaf areas sum to %v, bounds area %v", area, bounds.Area())
	}
	// Leaves must be pairwise interior-disjoint.
	ls := tr.Leaves()
	for i := 0; i < len(ls); i++ {
		for j := i + 1; j < len(ls); j++ {
			if in, ok := ls[i].Bounds.Intersect(ls[j].Bounds); ok && in.Area() > 1e-9 {
				t.Errorf("leaves %d and %d overlap with area %v", i, j, in.Area())
			}
		}
	}
}

func TestLocateConsistentWithBounds(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	items := uniformItems(1000, 3, bounds)
	tr := Build(bounds, items, 24)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		p := geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		leaf := tr.Locate(p)
		if !leaf.Bounds.Contains(p) {
			t.Fatalf("Locate(%v) returned leaf %v not containing the point", p, leaf.Bounds)
		}
	}
}

func TestWeightBalance(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	items := uniformItems(4000, 5, bounds)
	tr := Build(bounds, items, 8)
	var minW, maxW float64 = math.Inf(1), 0
	for _, l := range tr.Leaves() {
		if l.Weight < minW {
			minW = l.Weight
		}
		if l.Weight > maxW {
			maxW = l.Weight
		}
	}
	// Median splits on uniform data should be roughly balanced.
	if maxW > 3*minW {
		t.Errorf("leaf weights unbalanced: min=%v max=%v", minW, maxW)
	}
}

func TestSkewedWeights(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	// Heavy cluster bottom-left, light elsewhere.
	var items []Item
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 900; i++ {
		items = append(items, Item{P: geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}, W: 1})
	}
	for i := 0; i < 100; i++ {
		items = append(items, Item{P: geo.Point{X: 10 + rng.Float64()*90, Y: 10 + rng.Float64()*90}, W: 1})
	}
	tr := Build(bounds, items, 10)
	// Most leaves should land in the heavy cluster.
	inCluster := 0
	for _, l := range tr.Leaves() {
		c := l.Bounds.Center()
		if c.X < 15 && c.Y < 15 {
			inCluster++
		}
	}
	if inCluster < 5 {
		t.Errorf("only %d/10 leaves in the heavy cluster", inCluster)
	}
}

func TestDegenerateAllSamePoint(t *testing.T) {
	bounds := geo.NewRect(0, 0, 10, 10)
	items := make([]Item, 50)
	for i := range items {
		items[i] = Item{P: geo.Point{X: 5, Y: 5}, W: 1}
	}
	tr := Build(bounds, items, 8)
	if len(tr.Leaves()) != 1 {
		t.Errorf("unsplittable data produced %d leaves, want 1", len(tr.Leaves()))
	}
}

func TestEmptyItems(t *testing.T) {
	bounds := geo.NewRect(0, 0, 10, 10)
	tr := Build(bounds, nil, 4)
	if len(tr.Leaves()) != 1 {
		t.Errorf("empty Build produced %d leaves", len(tr.Leaves()))
	}
	if l := tr.Locate(geo.Point{X: 3, Y: 3}); l == nil {
		t.Error("Locate on empty tree returned nil")
	}
}

func TestLeavesOverlapping(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	items := uniformItems(1000, 7, bounds)
	tr := Build(bounds, items, 16)
	r := geo.NewRect(20, 20, 40, 40)
	got := tr.LeavesOverlapping(r)
	if len(got) == 0 {
		t.Fatal("no leaves overlap a central rect")
	}
	for _, l := range got {
		if !l.Bounds.Intersects(r) {
			t.Errorf("returned leaf %v does not intersect %v", l.Bounds, r)
		}
	}
	// Complement check: every leaf intersecting r must be returned.
	set := map[*Node]bool{}
	for _, l := range got {
		set[l] = true
	}
	for _, l := range tr.Leaves() {
		if l.Bounds.Intersects(r) && !set[l] {
			t.Errorf("leaf %v intersects but was not returned", l.Bounds)
		}
	}
}

// Property: Locate always returns a leaf containing the (in-bounds) point,
// on randomly generated weighted data.
func TestLocateProperty(t *testing.T) {
	bounds := geo.NewRect(0, 0, 1, 1)
	f := func(seed int64, px, py float64) bool {
		n := func(v float64) float64 {
			v = math.Abs(v)
			return v - math.Floor(v)
		}
		items := uniformItems(64, seed, bounds)
		tr := Build(bounds, items, 8)
		p := geo.Point{X: n(px), Y: n(py)}
		return tr.Locate(p).Bounds.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLeafIDsAssigned(t *testing.T) {
	bounds := geo.NewRect(0, 0, 100, 100)
	tr := Build(bounds, uniformItems(100, 8, bounds), 6)
	seen := map[int]bool{}
	for i, l := range tr.Leaves() {
		if l.LeafID != i {
			t.Errorf("leaf %d has LeafID %d", i, l.LeafID)
		}
		if seen[l.LeafID] {
			t.Errorf("duplicate LeafID %d", l.LeafID)
		}
		seen[l.LeafID] = true
	}
}
