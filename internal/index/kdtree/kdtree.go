// Package kdtree implements a weighted kd-tree over points, used by the
// kd-tree space-partitioning baseline ([21][26], §VI-B) and as the spatial
// splitting machinery of the hybrid partitioner. Leaves are produced by
// repeatedly splitting the heaviest leaf at the weighted median, yielding a
// load-balanced partition of the space into a requested number of leaf
// regions.
package kdtree

import (
	"sort"

	"ps2stream/internal/geo"
)

// Item is a weighted point: for workload partitioning the weight is the
// estimated load contribution of an object (or a sample thereof).
type Item struct {
	P geo.Point
	W float64
}

// Node is a kd-tree node. Leaf nodes have LeafID >= 0 and nil children;
// internal nodes carry the split dimension (0 = X, 1 = Y) and value.
type Node struct {
	Bounds   geo.Rect
	Weight   float64
	SplitDim int
	SplitVal float64
	Left     *Node
	Right    *Node
	LeafID   int
	items    []Item
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return n.Left == nil && n.Right == nil }

// Items returns the items stored at a leaf (nil for internal nodes).
func (n *Node) Items() []Item { return n.items }

// Tree is a kd-tree whose leaves partition the bounding rectangle.
type Tree struct {
	root   *Node
	leaves []*Node
}

// Build constructs a tree over bounds containing items, splitting until
// maxLeaves leaves exist (or no leaf can be split further). Splits occur at
// the weighted median along the dimension with the larger bounds extent,
// falling back to the other dimension when all items share a coordinate.
func Build(bounds geo.Rect, items []Item, maxLeaves int) *Tree {
	if maxLeaves < 1 {
		maxLeaves = 1
	}
	root := &Node{Bounds: bounds, items: append([]Item(nil), items...)}
	for _, it := range root.items {
		root.Weight += it.W
	}
	t := &Tree{root: root, leaves: []*Node{root}}
	for len(t.leaves) < maxLeaves {
		// Pick the heaviest splittable leaf.
		best := -1
		for i, l := range t.leaves {
			if len(l.items) < 2 {
				continue
			}
			if best == -1 || l.Weight > t.leaves[best].Weight {
				best = i
			}
		}
		if best == -1 {
			break
		}
		leaf := t.leaves[best]
		left, right, ok := splitLeaf(leaf)
		if !ok {
			// Mark unsplittable by dropping its items reference so it is
			// skipped next round.
			leaf.items = leaf.items[:min(len(leaf.items), 1)]
			continue
		}
		leaf.Left, leaf.Right = left, right
		leaf.items = nil
		t.leaves[best] = left
		t.leaves = append(t.leaves, right)
	}
	for i, l := range t.leaves {
		l.LeafID = i
	}
	return t
}

// splitLeaf splits at the weighted median along the preferred dimension.
func splitLeaf(n *Node) (left, right *Node, ok bool) {
	dims := []int{0, 1}
	if n.Bounds.Height() > n.Bounds.Width() {
		dims = []int{1, 0}
	}
	for _, dim := range dims {
		if l, r, ok := splitAtMedian(n, dim); ok {
			return l, r, true
		}
	}
	return nil, nil, false
}

func coord(p geo.Point, dim int) float64 {
	if dim == 0 {
		return p.X
	}
	return p.Y
}

func splitAtMedian(n *Node, dim int) (left, right *Node, ok bool) {
	items := append([]Item(nil), n.items...)
	sort.Slice(items, func(i, j int) bool {
		return coord(items[i].P, dim) < coord(items[j].P, dim)
	})
	lo := coord(items[0].P, dim)
	hi := coord(items[len(items)-1].P, dim)
	if lo == hi {
		return nil, nil, false
	}
	var total float64
	for _, it := range items {
		total += it.W
	}
	// Find the first index where the cumulative weight reaches half, then
	// move to a coordinate boundary so the split separates items.
	var cum float64
	idx := 0
	for i, it := range items {
		cum += it.W
		if cum >= total/2 {
			idx = i
			break
		}
	}
	// Advance idx to the end of its coordinate group; split after it.
	for idx+1 < len(items) && coord(items[idx+1].P, dim) == coord(items[idx].P, dim) {
		idx++
	}
	if idx+1 >= len(items) {
		// All mass on the last group: split before the group instead.
		v := coord(items[idx].P, dim)
		idx = -1
		for i, it := range items {
			if coord(it.P, dim) == v {
				break
			}
			idx = i
		}
		if idx < 0 {
			return nil, nil, false
		}
	}
	splitVal := (coord(items[idx].P, dim) + coord(items[idx+1].P, dim)) / 2
	var lb, rb geo.Rect
	if dim == 0 {
		lb, rb = n.Bounds.SplitX(splitVal)
	} else {
		lb, rb = n.Bounds.SplitY(splitVal)
	}
	left = &Node{Bounds: lb, LeafID: -1}
	right = &Node{Bounds: rb, LeafID: -1}
	for _, it := range items {
		if coord(it.P, dim) <= splitVal {
			left.items = append(left.items, it)
			left.Weight += it.W
		} else {
			right.items = append(right.items, it)
			right.Weight += it.W
		}
	}
	if len(left.items) == 0 || len(right.items) == 0 {
		return nil, nil, false
	}
	n.SplitDim = dim
	n.SplitVal = splitVal
	return left, right, true
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Leaves returns the leaf nodes in LeafID order.
func (t *Tree) Leaves() []*Node { return t.leaves }

// Locate returns the leaf whose region contains p. Points outside the root
// bounds are resolved by following the split comparisons, which yields the
// nearest boundary leaf.
func (t *Tree) Locate(p geo.Point) *Node {
	n := t.root
	for !n.IsLeaf() {
		if coord(p, n.SplitDim) <= n.SplitVal {
			n = n.Left
		} else {
			n = n.Right
		}
	}
	return n
}

// LeavesOverlapping returns all leaves whose bounds intersect r.
func (t *Tree) LeavesOverlapping(r geo.Rect) []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.Bounds.Intersects(r) {
			return
		}
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(t.root)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
