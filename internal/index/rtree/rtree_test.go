package rtree

import (
	"math/rand"
	"testing"

	"ps2stream/internal/geo"
)

func randEntries(n int, seed int64) []Entry {
	rng := rand.New(rand.NewSource(seed))
	es := make([]Entry, n)
	for i := range es {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		w := rng.Float64() * 2
		h := rng.Float64() * 2
		es[i] = Entry{Rect: geo.NewRect(x, y, x+w, y+h), Data: i}
	}
	return es
}

// naiveSearch is the oracle.
func naiveSearch(es []Entry, r geo.Rect) map[int]bool {
	out := map[int]bool{}
	for _, e := range es {
		if e.Rect.Intersects(r) {
			out[e.Data.(int)] = true
		}
	}
	return out
}

func checkSearchAgainstOracle(t *testing.T, tr *Tree, es []Entry, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 50; i++ {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		q := geo.NewRect(x, y, x+rng.Float64()*20, y+rng.Float64()*20)
		want := naiveSearch(es, q)
		got := map[int]bool{}
		tr.Search(q, func(e Entry) bool {
			got[e.Data.(int)] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("query %v: got %d entries, want %d", q, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("query %v: missing entry %d", q, k)
			}
		}
	}
}

func TestBulkLoadSearch(t *testing.T) {
	es := randEntries(500, 1)
	tr := BulkLoad(es, 16)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tr.Len())
	}
	checkSearchAgainstOracle(t, tr, es, 2)
}

func TestInsertSearch(t *testing.T) {
	es := randEntries(300, 3)
	tr := New(8)
	for _, e := range es {
		tr.Insert(e)
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d, want 300", tr.Len())
	}
	checkSearchAgainstOracle(t, tr, es, 4)
}

func TestMixedBulkThenInsert(t *testing.T) {
	es := randEntries(200, 5)
	tr := BulkLoad(es[:100], 8)
	for _, e := range es[100:] {
		tr.Insert(e)
	}
	checkSearchAgainstOracle(t, tr, es, 6)
}

func TestEmptyTree(t *testing.T) {
	tr := New(8)
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	got := tr.SearchAll(geo.NewRect(0, 0, 100, 100))
	if len(got) != 0 {
		t.Errorf("empty tree returned %d entries", len(got))
	}
	tr2 := BulkLoad(nil, 8)
	if len(tr2.SearchAll(geo.NewRect(0, 0, 1, 1))) != 0 {
		t.Error("BulkLoad(nil) tree should be empty")
	}
}

func TestSingleEntry(t *testing.T) {
	tr := BulkLoad([]Entry{{Rect: geo.NewRect(1, 1, 2, 2), Data: 0}}, 8)
	if tr.Height() != 1 {
		t.Errorf("Height = %d, want 1", tr.Height())
	}
	if n := len(tr.SearchAll(geo.NewRect(0, 0, 3, 3))); n != 1 {
		t.Errorf("found %d, want 1", n)
	}
	if n := len(tr.SearchAll(geo.NewRect(5, 5, 6, 6))); n != 0 {
		t.Errorf("found %d, want 0", n)
	}
}

func TestHeightGrows(t *testing.T) {
	es := randEntries(1000, 7)
	tr := BulkLoad(es, 8)
	if tr.Height() < 3 {
		t.Errorf("Height = %d for 1000 entries at fanout 8, want >= 3", tr.Height())
	}
}

func TestLeafRectsCoverEntries(t *testing.T) {
	es := randEntries(400, 8)
	tr := BulkLoad(es, 16)
	leaves := tr.LeafRects()
	if len(leaves) < 400/16 {
		t.Fatalf("only %d leaves", len(leaves))
	}
	for _, e := range es {
		covered := false
		for _, lr := range leaves {
			if lr.ContainsRect(e.Rect) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("entry %v not covered by any leaf MBR", e.Rect)
		}
	}
}

func TestLeafEntriesAlignment(t *testing.T) {
	es := randEntries(100, 9)
	tr := BulkLoad(es, 8)
	rects := tr.LeafRects()
	groups := tr.LeafEntries()
	if len(rects) != len(groups) {
		t.Fatalf("LeafRects %d vs LeafEntries %d", len(rects), len(groups))
	}
	total := 0
	for i, g := range groups {
		total += len(g)
		for _, e := range g {
			if !rects[i].ContainsRect(e.Rect) {
				t.Fatalf("leaf %d MBR %v does not contain entry %v", i, rects[i], e.Rect)
			}
		}
	}
	if total != 100 {
		t.Errorf("leaf entries total %d, want 100", total)
	}
}

func TestSearchEarlyStop(t *testing.T) {
	es := randEntries(200, 10)
	tr := BulkLoad(es, 8)
	count := 0
	tr.Search(geo.NewRect(0, 0, 100, 100), func(Entry) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d entries, want 5", count)
	}
}

func TestQuadraticSplitMinFill(t *testing.T) {
	// Force many splits with small fanout and verify the tree remains
	// consistent (all entries findable).
	es := randEntries(500, 11)
	tr := New(4)
	for _, e := range es {
		tr.Insert(e)
	}
	checkSearchAgainstOracle(t, tr, es, 12)
}

func TestDuplicateRects(t *testing.T) {
	var es []Entry
	for i := 0; i < 64; i++ {
		es = append(es, Entry{Rect: geo.NewRect(5, 5, 6, 6), Data: i})
	}
	tr := BulkLoad(es, 8)
	got := tr.SearchAll(geo.NewRect(5.5, 5.5, 5.6, 5.6))
	if len(got) != 64 {
		t.Errorf("duplicate rects: found %d, want 64", len(got))
	}
}
