// Package rtree implements an R-tree with Sort-Tile-Recursive (STR) bulk
// loading and classic quadratic-split insertion. It backs the R-tree
// space-partitioning baseline of §VI-B ("Algorithm R-tree partitioning [18]
// constructs a R-tree to do the partitioning, and then partitions the set
// of leaf nodes").
package rtree

import (
	"math"
	"sort"

	"ps2stream/internal/geo"
)

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 32

// Entry is a rectangle with an opaque payload. Points are represented as
// degenerate rectangles.
type Entry struct {
	Rect geo.Rect
	Data interface{}
}

type node struct {
	rect     geo.Rect
	leaf     bool
	entries  []Entry // leaf payload
	children []*node // internal children
}

// Tree is an R-tree. The zero value is not usable; construct with New or
// BulkLoad.
type Tree struct {
	root       *node
	maxEntries int
	minEntries int
	size       int
}

// New returns an empty tree with the given fan-out (clamped to >= 4).
func New(maxEntries int) *Tree {
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		root:       &node{leaf: true},
		maxEntries: maxEntries,
		minEntries: maxEntries * 2 / 5,
	}
}

// BulkLoad builds a tree over the entries using the STR packing algorithm:
// sort by X, slice into vertical strips of sqrt(n/M) tiles, sort each strip
// by Y, and pack runs of M entries into leaves; repeat upward.
func BulkLoad(entries []Entry, maxEntries int) *Tree {
	t := New(maxEntries)
	if len(entries) == 0 {
		return t
	}
	es := append([]Entry(nil), entries...)
	leaves := strPack(es, t.maxEntries)
	t.size = len(es)
	// Build upper levels by packing node MBRs with the same algorithm.
	level := leaves
	for len(level) > 1 {
		parentEntries := make([]Entry, len(level))
		for i, n := range level {
			parentEntries[i] = Entry{Rect: n.rect, Data: n}
		}
		packed := strPack(parentEntries, t.maxEntries)
		next := make([]*node, len(packed))
		for i, p := range packed {
			in := &node{rect: p.rect}
			for _, e := range p.entries {
				in.children = append(in.children, e.Data.(*node))
			}
			next[i] = in
		}
		level = next
	}
	t.root = level[0]
	return t
}

// strPack packs entries into leaf nodes of up to max entries each.
func strPack(es []Entry, max int) []*node {
	n := len(es)
	leafCount := (n + max - 1) / max
	stripCount := int(math.Ceil(math.Sqrt(float64(leafCount))))
	perStrip := stripCount * max
	sort.Slice(es, func(i, j int) bool {
		return es[i].Rect.Center().X < es[j].Rect.Center().X
	})
	var leaves []*node
	for s := 0; s < n; s += perStrip {
		e := s + perStrip
		if e > n {
			e = n
		}
		strip := es[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].Rect.Center().Y < strip[j].Rect.Center().Y
		})
		for i := 0; i < len(strip); i += max {
			j := i + max
			if j > len(strip) {
				j = len(strip)
			}
			leaf := &node{leaf: true, entries: append([]Entry(nil), strip[i:j]...)}
			leaf.rect = mbr(leaf.entries)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

func mbr(es []Entry) geo.Rect {
	r := es[0].Rect
	for _, e := range es[1:] {
		r = r.Union(e.Rect)
	}
	return r
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the MBR of all entries (zero Rect when empty).
func (t *Tree) Bounds() geo.Rect { return t.root.rect }

// Height returns the number of levels (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Insert adds an entry using least-enlargement descent and quadratic
// splitting on overflow.
func (t *Tree) Insert(e Entry) {
	t.size++
	split := t.insert(t.root, e)
	if split != nil {
		// Root split: grow the tree.
		newRoot := &node{
			children: []*node{t.root, split},
		}
		newRoot.rect = t.root.rect.Union(split.rect)
		t.root = newRoot
	}
}

func (t *Tree) insert(n *node, e Entry) *node {
	n.rect = extend(n, e.Rect)
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxEntries {
			return t.splitLeaf(n)
		}
		return nil
	}
	best := chooseSubtree(n.children, e.Rect)
	if split := t.insert(best, e); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.maxEntries {
			return t.splitInternal(n)
		}
	}
	return nil
}

func extend(n *node, r geo.Rect) geo.Rect {
	if n.leaf && len(n.entries) == 0 && len(n.children) == 0 {
		return r
	}
	return n.rect.Union(r)
}

func chooseSubtree(children []*node, r geo.Rect) *node {
	best := children[0]
	bestEnl := enlargement(best.rect, r)
	for _, c := range children[1:] {
		enl := enlargement(c.rect, r)
		if enl < bestEnl || (enl == bestEnl && c.rect.Area() < best.rect.Area()) {
			best, bestEnl = c, enl
		}
	}
	return best
}

func enlargement(r, add geo.Rect) float64 {
	return r.Union(add).Area() - r.Area()
}

// splitLeaf performs a quadratic split of an overflowing leaf, mutating n
// into one group and returning the other.
func (t *Tree) splitLeaf(n *node) *node {
	rects := make([]geo.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.Rect
	}
	g1, g2 := quadraticSplit(rects, t.minEntries)
	e1 := make([]Entry, 0, len(g1))
	e2 := make([]Entry, 0, len(g2))
	for _, i := range g1 {
		e1 = append(e1, n.entries[i])
	}
	for _, i := range g2 {
		e2 = append(e2, n.entries[i])
	}
	other := &node{leaf: true, entries: e2}
	other.rect = mbr(e2)
	n.entries = e1
	n.rect = mbr(e1)
	return other
}

func (t *Tree) splitInternal(n *node) *node {
	rects := make([]geo.Rect, len(n.children))
	for i, c := range n.children {
		rects[i] = c.rect
	}
	g1, g2 := quadraticSplit(rects, t.minEntries)
	c1 := make([]*node, 0, len(g1))
	c2 := make([]*node, 0, len(g2))
	for _, i := range g1 {
		c1 = append(c1, n.children[i])
	}
	for _, i := range g2 {
		c2 = append(c2, n.children[i])
	}
	other := &node{children: c2}
	other.rect = c2[0].rect
	for _, c := range c2[1:] {
		other.rect = other.rect.Union(c.rect)
	}
	n.children = c1
	n.rect = c1[0].rect
	for _, c := range c1[1:] {
		n.rect = n.rect.Union(c.rect)
	}
	return other
}

// quadraticSplit partitions indices 0..len(rects)-1 into two groups using
// Guttman's quadratic method, respecting the minimum fill.
func quadraticSplit(rects []geo.Rect, minFill int) (g1, g2 []int) {
	// Pick seeds: the pair wasting the most area.
	seed1, seed2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst, seed1, seed2 = d, i, j
			}
		}
	}
	g1 = []int{seed1}
	g2 = []int{seed2}
	r1, r2 := rects[seed1], rects[seed2]
	remaining := make([]int, 0, len(rects)-2)
	for i := range rects {
		if i != seed1 && i != seed2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Forced assignment to honour min fill.
		if len(g1)+len(remaining) == minFill {
			g1 = append(g1, remaining...)
			for _, i := range remaining {
				r1 = r1.Union(rects[i])
			}
			break
		}
		if len(g2)+len(remaining) == minFill {
			g2 = append(g2, remaining...)
			for _, i := range remaining {
				r2 = r2.Union(rects[i])
			}
			break
		}
		// Pick the entry with the greatest preference difference.
		bestIdx, bestDiff, bestPos := -1, math.Inf(-1), 0
		for pos, i := range remaining {
			d1 := enlargement(r1, rects[i])
			d2 := enlargement(r2, rects[i])
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestDiff, bestIdx, bestPos = diff, i, pos
			}
		}
		i := bestIdx
		remaining = append(remaining[:bestPos], remaining[bestPos+1:]...)
		d1 := enlargement(r1, rects[i])
		d2 := enlargement(r2, rects[i])
		toG1 := d1 < d2
		if d1 == d2 {
			toG1 = r1.Area() < r2.Area() || (r1.Area() == r2.Area() && len(g1) <= len(g2))
		}
		if toG1 {
			g1 = append(g1, i)
			r1 = r1.Union(rects[i])
		} else {
			g2 = append(g2, i)
			r2 = r2.Union(rects[i])
		}
	}
	return g1, g2
}

// Search visits every entry whose rectangle intersects r until fn returns
// false.
func (t *Tree) Search(r geo.Rect, fn func(Entry) bool) {
	var walk func(n *node) bool
	walk = func(n *node) bool {
		if !n.rect.Intersects(r) {
			return true
		}
		if n.leaf {
			for _, e := range n.entries {
				if e.Rect.Intersects(r) {
					if !fn(e) {
						return false
					}
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	if t.size > 0 {
		walk(t.root)
	}
}

// SearchAll returns all entries intersecting r.
func (t *Tree) SearchAll(r geo.Rect) []Entry {
	var out []Entry
	t.Search(r, func(e Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

// LeafRects returns the MBR of every leaf node, the unit of the R-tree
// partitioning baseline.
func (t *Tree) LeafRects() []geo.Rect {
	var out []geo.Rect
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.entries) > 0 {
				out = append(out, n.rect)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// LeafEntries returns the entries grouped per leaf, aligned with
// LeafRects.
func (t *Tree) LeafEntries() [][]Entry {
	var out [][]Entry
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			if len(n.entries) > 0 {
				out = append(out, n.entries)
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}
