// Package grid implements the uniform spatial grid shared by the gridt
// dispatcher index (§IV-C) and the GI2 worker index (§IV-D). The paper sets
// the granularity to 2^6 × 2^6 cells; Grid supports any rectangular
// resolution.
package grid

import (
	"fmt"

	"ps2stream/internal/geo"
)

// DefaultGranularity is the per-axis cell count used in the paper's
// evaluation ("We set its granularity as 2^6 × 2^6").
const DefaultGranularity = 64

// Grid divides a bounding rectangle into NX × NY equal cells. Cell ids are
// row-major: id = y*NX + x with (0,0) at the minimum corner. Points outside
// the bounds are clamped to the nearest boundary cell, so CellOf is total.
type Grid struct {
	bounds geo.Rect
	nx, ny int
	cw, ch float64 // cell width/height in degrees
}

// New returns a grid over bounds with nx × ny cells. nx and ny are clamped
// to at least 1. Degenerate bounds (zero width or height) are handled by
// treating every point as falling into column/row 0.
func New(bounds geo.Rect, nx, ny int) *Grid {
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	g := &Grid{bounds: bounds, nx: nx, ny: ny}
	g.cw = bounds.Width() / float64(nx)
	g.ch = bounds.Height() / float64(ny)
	return g
}

// Bounds returns the grid's bounding rectangle.
func (g *Grid) Bounds() geo.Rect { return g.bounds }

// NX returns the number of columns.
func (g *Grid) NX() int { return g.nx }

// NY returns the number of rows.
func (g *Grid) NY() int { return g.ny }

// NumCells returns NX*NY.
func (g *Grid) NumCells() int { return g.nx * g.ny }

// ColOf returns the column index for x, clamped into [0, NX).
func (g *Grid) ColOf(x float64) int {
	if g.cw <= 0 {
		return 0
	}
	c := int((x - g.bounds.Min.X) / g.cw)
	return clampInt(c, 0, g.nx-1)
}

// RowOf returns the row index for y, clamped into [0, NY).
func (g *Grid) RowOf(y float64) int {
	if g.ch <= 0 {
		return 0
	}
	r := int((y - g.bounds.Min.Y) / g.ch)
	return clampInt(r, 0, g.ny-1)
}

// CellOf returns the row-major cell id containing p (clamped into bounds).
func (g *Grid) CellOf(p geo.Point) int {
	return g.RowOf(p.Y)*g.nx + g.ColOf(p.X)
}

// CellXY returns the (column, row) of cell id.
func (g *Grid) CellXY(id int) (x, y int) {
	return id % g.nx, id / g.nx
}

// CellID returns the id of the cell at (column, row).
func (g *Grid) CellID(x, y int) int { return y*g.nx + x }

// CellRect returns the rectangle covered by cell id.
func (g *Grid) CellRect(id int) geo.Rect {
	x, y := g.CellXY(id)
	minX := g.bounds.Min.X + float64(x)*g.cw
	minY := g.bounds.Min.Y + float64(y)*g.ch
	maxX := minX + g.cw
	maxY := minY + g.ch
	// Ensure the outermost cells reach the exact bounds despite floating
	// point accumulation.
	if x == g.nx-1 {
		maxX = g.bounds.Max.X
	}
	if y == g.ny-1 {
		maxY = g.bounds.Max.Y
	}
	return geo.Rect{Min: geo.Point{X: minX, Y: minY}, Max: geo.Point{X: maxX, Y: maxY}}
}

// CellsOverlapping returns the ids of all cells intersecting r, in
// ascending order. Rectangles outside the bounds are clamped, so the
// nearest boundary cells are returned (dispatchers must route queries whose
// regions partially leave the monitored space).
func (g *Grid) CellsOverlapping(r geo.Rect) []int {
	x0 := g.ColOf(r.Min.X)
	x1 := g.ColOf(r.Max.X)
	y0 := g.RowOf(r.Min.Y)
	y1 := g.RowOf(r.Max.Y)
	out := make([]int, 0, (x1-x0+1)*(y1-y0+1))
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			out = append(out, g.CellID(x, y))
		}
	}
	return out
}

// VisitOverlapping calls fn for each cell id intersecting r, avoiding the
// slice allocation of CellsOverlapping on hot paths.
func (g *Grid) VisitOverlapping(r geo.Rect, fn func(id int)) {
	x0 := g.ColOf(r.Min.X)
	x1 := g.ColOf(r.Max.X)
	y0 := g.RowOf(r.Min.Y)
	y1 := g.RowOf(r.Max.Y)
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			fn(g.CellID(x, y))
		}
	}
}

// String implements fmt.Stringer.
func (g *Grid) String() string {
	return fmt.Sprintf("grid %dx%d over %s", g.nx, g.ny, g.bounds)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
