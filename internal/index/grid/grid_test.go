package grid

import (
	"math"
	"testing"
	"testing/quick"

	"ps2stream/internal/geo"
)

func testGrid() *Grid {
	return New(geo.NewRect(0, 0, 10, 10), 4, 4)
}

func TestCellOf(t *testing.T) {
	g := testGrid()
	tests := []struct {
		name string
		p    geo.Point
		want int
	}{
		{"origin", geo.Point{X: 0, Y: 0}, 0},
		{"first cell interior", geo.Point{X: 1, Y: 1}, 0},
		{"second column", geo.Point{X: 3, Y: 1}, 1},
		{"second row", geo.Point{X: 1, Y: 3}, 4},
		{"center", geo.Point{X: 5, Y: 5}, 10},
		{"max corner clamps to last cell", geo.Point{X: 10, Y: 10}, 15},
		{"outside right clamps", geo.Point{X: 99, Y: 0}, 3},
		{"outside below clamps", geo.Point{X: 5, Y: -5}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.CellOf(tt.p); got != tt.want {
				t.Errorf("CellOf(%v) = %d, want %d", tt.p, got, tt.want)
			}
		})
	}
}

func TestCellRectRoundTrip(t *testing.T) {
	g := testGrid()
	for id := 0; id < g.NumCells(); id++ {
		r := g.CellRect(id)
		c := r.Center()
		if got := g.CellOf(c); got != id {
			t.Errorf("CellOf(center of cell %d) = %d", id, got)
		}
		x, y := g.CellXY(id)
		if g.CellID(x, y) != id {
			t.Errorf("CellID(CellXY(%d)) = %d", id, g.CellID(x, y))
		}
	}
}

func TestCellRectsTileBounds(t *testing.T) {
	g := New(geo.NewRect(-3, 2, 7, 9), 8, 5)
	var area float64
	for id := 0; id < g.NumCells(); id++ {
		area += g.CellRect(id).Area()
	}
	if math.Abs(area-g.Bounds().Area()) > 1e-9 {
		t.Errorf("cells area = %v, bounds area = %v", area, g.Bounds().Area())
	}
	// Last cell must reach the exact max corner.
	last := g.CellRect(g.NumCells() - 1)
	if last.Max != g.Bounds().Max {
		t.Errorf("last cell max = %v, want %v", last.Max, g.Bounds().Max)
	}
}

func TestCellsOverlapping(t *testing.T) {
	g := testGrid()
	tests := []struct {
		name string
		r    geo.Rect
		want []int
	}{
		{"single cell", geo.NewRect(0.1, 0.1, 2, 2), []int{0}},
		{"two cols", geo.NewRect(2, 0.5, 3, 2), []int{0, 1}},
		{"2x2 block", geo.NewRect(2, 2, 3, 3), []int{0, 1, 4, 5}},
		{"full", geo.NewRect(0, 0, 10, 10), []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}},
		{"outside clamps", geo.NewRect(-5, -5, -1, -1), []int{0}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := g.CellsOverlapping(tt.r)
			if len(got) != len(tt.want) {
				t.Fatalf("CellsOverlapping(%v) = %v, want %v", tt.r, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("CellsOverlapping(%v) = %v, want %v", tt.r, got, tt.want)
				}
			}
		})
	}
}

func TestVisitOverlappingMatchesSlice(t *testing.T) {
	g := New(geo.NewRect(0, 0, 100, 50), 16, 8)
	r := geo.NewRect(10, 5, 60, 40)
	want := g.CellsOverlapping(r)
	var got []int
	g.VisitOverlapping(r, func(id int) { got = append(got, id) })
	if len(got) != len(want) {
		t.Fatalf("Visit returned %d cells, slice %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Visit[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestDegenerateGrid(t *testing.T) {
	g := New(geo.NewRect(5, 5, 5, 5), 4, 4) // zero-size bounds
	if got := g.CellOf(geo.Point{X: 5, Y: 5}); got != 0 {
		t.Errorf("degenerate CellOf = %d, want 0", got)
	}
	g2 := New(geo.NewRect(0, 0, 1, 1), 0, -3)
	if g2.NX() != 1 || g2.NY() != 1 {
		t.Errorf("clamped grid = %dx%d, want 1x1", g2.NX(), g2.NY())
	}
}

// Property: a point inside the bounds always maps to a cell whose rect
// contains it.
func TestCellContainmentProperty(t *testing.T) {
	g := New(geo.NewRect(-180, -90, 180, 90), 64, 64)
	f := func(xr, yr float64) bool {
		x := math.Mod(math.Abs(xr), 360) - 180
		y := math.Mod(math.Abs(yr), 180) - 90
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		p := geo.Point{X: x, Y: y}
		r := g.CellRect(g.CellOf(p))
		return r.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: CellsOverlapping covers the cell of every point inside the
// query rectangle.
func TestOverlapCoverageProperty(t *testing.T) {
	g := New(geo.NewRect(0, 0, 100, 100), 10, 10)
	f := func(x1, y1, x2, y2, px, py float64) bool {
		n := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(math.Abs(v), 100)
		}
		r := geo.NewRect(n(x1), n(y1), n(x2), n(y2))
		p := geo.Point{X: n(px), Y: n(py)}
		if !r.Contains(p) {
			return true
		}
		cell := g.CellOf(p)
		for _, id := range g.CellsOverlapping(r) {
			if id == cell {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
