// Package stream is a miniature Storm-like dataflow engine: the substrate
// PS2Stream runs on (the paper deploys on Apache Storm; here spouts and
// bolts are goroutines connected by bounded channels, which is the
// repro-equivalent on a single box).
//
// A Topology declares spouts (sources), bolts (processors), named streams,
// and groupings (shuffle, fields/hash, broadcast, direct). Run executes
// the dataflow until every spout is exhausted and all in-flight tuples are
// drained, or the context is cancelled. Bounded channels provide
// backpressure exactly where a Storm topology would queue.
package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"ps2stream/internal/metrics"
)

// Tuple is the unit of data flowing through a topology.
type Tuple struct {
	// Value is the payload.
	Value interface{}
}

// Collector lets spouts and bolts emit tuples downstream.
type Collector interface {
	// Emit sends the tuple on the named stream using each subscriber's
	// grouping.
	Emit(stream string, t Tuple)
	// EmitDirect sends the tuple to one specific task of every
	// direct-grouped subscriber of the stream.
	EmitDirect(stream string, task int, t Tuple)
}

// Spout produces tuples. Next is called repeatedly from a single
// goroutine; returning false ends the spout.
type Spout interface {
	Next(c Collector) bool
}

// Bolt processes tuples. Process is called from a single goroutine per
// task, so a Bolt instance needs no internal locking for its own state.
type Bolt interface {
	Process(t Tuple, c Collector)
}

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func(c Collector) bool

// Next implements Spout.
func (f SpoutFunc) Next(c Collector) bool { return f(c) }

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t Tuple, c Collector)

// Process implements Bolt.
func (f BoltFunc) Process(t Tuple, c Collector) { f(t, c) }

// SpoutFactory builds one Spout instance per task.
type SpoutFactory func(task int) Spout

// BoltFactory builds one Bolt instance per task.
type BoltFactory func(task int) Bolt

// groupingKind enumerates subscription modes.
type groupingKind uint8

const (
	groupShuffle groupingKind = iota
	groupFields
	groupAll
	groupDirect
)

type subscription struct {
	bolt     *boltDecl
	kind     groupingKind
	keyFn    func(Tuple) uint64
	shuffleC atomic.Uint64
}

type spoutDecl struct {
	name    string
	factory SpoutFactory
	par     int
	outputs []string
}

type boltDecl struct {
	name    string
	factory BoltFactory
	par     int
	outputs []string
	inputs  []chan Tuple
	// producers counts upstream task instances still running; the
	// bolt's inputs close when it reaches zero.
	producers atomic.Int64
	subs      []*subscription // subscriptions owned by this bolt

	processed metrics.Counter
	emitted   metrics.Counter
}

// BoltSpec configures a bolt's subscriptions fluently.
type BoltSpec struct {
	t    *Topology
	decl *boltDecl
}

// Topology is a declared dataflow. Build with NewTopology, add components,
// then Run.
type Topology struct {
	spouts       []*spoutDecl
	bolts        []*boltDecl
	byName       map[string]bool
	subsByStream map[string][]*subscription
	// emittersByStream counts task instances that may emit on a stream.
	emittersByStream map[string]int
	queueCap         int
	errs             []error

	panicMu sync.Mutex
	panics  []string
}

// NewTopology returns an empty topology with the given per-task queue
// capacity (<=0 uses 1024).
func NewTopology(queueCap int) *Topology {
	if queueCap <= 0 {
		queueCap = 1024
	}
	return &Topology{
		byName:           make(map[string]bool),
		subsByStream:     make(map[string][]*subscription),
		emittersByStream: make(map[string]int),
		queueCap:         queueCap,
	}
}

// AddSpout declares a spout emitting on the given output streams.
func (t *Topology) AddSpout(name string, f SpoutFactory, parallelism int, outputs ...string) {
	if t.byName[name] {
		t.errs = append(t.errs, fmt.Errorf("stream: duplicate component %q", name))
		return
	}
	if parallelism < 1 {
		t.errs = append(t.errs, fmt.Errorf("stream: spout %q parallelism %d", name, parallelism))
		return
	}
	t.byName[name] = true
	t.spouts = append(t.spouts, &spoutDecl{name: name, factory: f, par: parallelism, outputs: outputs})
	for _, s := range outputs {
		t.emittersByStream[s] += parallelism
	}
}

// AddBolt declares a bolt; wire its inputs with the returned BoltSpec.
func (t *Topology) AddBolt(name string, f BoltFactory, parallelism int, outputs ...string) *BoltSpec {
	d := &boltDecl{name: name, factory: f, par: parallelism, outputs: outputs}
	if t.byName[name] {
		t.errs = append(t.errs, fmt.Errorf("stream: duplicate component %q", name))
		return &BoltSpec{t: t, decl: d}
	}
	if parallelism < 1 {
		t.errs = append(t.errs, fmt.Errorf("stream: bolt %q parallelism %d", name, parallelism))
		return &BoltSpec{t: t, decl: d}
	}
	t.byName[name] = true
	t.bolts = append(t.bolts, d)
	for _, s := range outputs {
		t.emittersByStream[s] += parallelism
	}
	return &BoltSpec{t: t, decl: d}
}

func (b *BoltSpec) subscribe(streamName string, kind groupingKind, keyFn func(Tuple) uint64) *BoltSpec {
	sub := &subscription{bolt: b.decl, kind: kind, keyFn: keyFn}
	b.decl.subs = append(b.decl.subs, sub)
	b.t.subsByStream[streamName] = append(b.t.subsByStream[streamName], sub)
	return b
}

// Shuffle subscribes round-robin.
func (b *BoltSpec) Shuffle(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupShuffle, nil)
}

// Fields subscribes with hash partitioning on the given key.
func (b *BoltSpec) Fields(streamName string, keyFn func(Tuple) uint64) *BoltSpec {
	return b.subscribe(streamName, groupFields, keyFn)
}

// All subscribes every task to every tuple (broadcast).
func (b *BoltSpec) All(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupAll, nil)
}

// Direct subscribes for explicit task addressing via EmitDirect.
func (b *BoltSpec) Direct(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupDirect, nil)
}

// collector implements Collector for one producing task.
type collector struct {
	t    *Topology
	decl *boltDecl // nil for spouts
	// allowed streams for this producer.
	outputs map[string]bool
	ctx     context.Context
}

func (c *collector) count() {
	if c.decl != nil {
		c.decl.emitted.Inc()
	}
}

// Emit implements Collector.
func (c *collector) Emit(streamName string, tp Tuple) {
	if !c.outputs[streamName] {
		panic(fmt.Sprintf("stream: emit on undeclared stream %q", streamName))
	}
	c.count()
	for _, sub := range c.t.subsByStream[streamName] {
		switch sub.kind {
		case groupShuffle:
			i := int(sub.shuffleC.Add(1)) % sub.bolt.par
			c.send(sub.bolt.inputs[i], tp)
		case groupFields:
			i := int(sub.keyFn(tp) % uint64(sub.bolt.par))
			c.send(sub.bolt.inputs[i], tp)
		case groupAll:
			for _, ch := range sub.bolt.inputs {
				c.send(ch, tp)
			}
		case groupDirect:
			// Direct subscribers ignore plain Emit.
		}
	}
}

// EmitDirect implements Collector.
func (c *collector) EmitDirect(streamName string, task int, tp Tuple) {
	if !c.outputs[streamName] {
		panic(fmt.Sprintf("stream: emit on undeclared stream %q", streamName))
	}
	c.count()
	for _, sub := range c.t.subsByStream[streamName] {
		if sub.kind != groupDirect {
			continue
		}
		if task < 0 || task >= sub.bolt.par {
			panic(fmt.Sprintf("stream: direct task %d out of range for %q", task, sub.bolt.name))
		}
		c.send(sub.bolt.inputs[task], tp)
	}
}

// send delivers with backpressure, abandoning the tuple on cancellation.
func (c *collector) send(ch chan Tuple, tp Tuple) {
	select {
	case ch <- tp:
	case <-c.ctx.Done():
	}
}

// Stats reports per-component processed/emitted counts.
type Stats struct {
	Processed int64
	Emitted   int64
}

// ErrInvalidTopology wraps declaration errors found at Run time.
var ErrInvalidTopology = errors.New("stream: invalid topology")

// Run validates the topology, starts every task goroutine, and blocks
// until all spouts finish and all tuples drain (or ctx is cancelled).
// Tasks that panic are recovered; their messages are aggregated into the
// returned error.
func (t *Topology) Run(ctx context.Context) error {
	if len(t.errs) > 0 {
		return fmt.Errorf("%w: %v", ErrInvalidTopology, errors.Join(t.errs...))
	}
	for streamName := range t.subsByStream {
		if t.emittersByStream[streamName] == 0 {
			return fmt.Errorf("%w: stream %q has subscribers but no emitters", ErrInvalidTopology, streamName)
		}
	}
	// Allocate input channels and producer counts.
	for _, b := range t.bolts {
		b.inputs = make([]chan Tuple, b.par)
		for i := range b.inputs {
			b.inputs[i] = make(chan Tuple, t.queueCap)
		}
		// Producers: every task instance of every component declaring at
		// least one output stream this bolt subscribes to. Counted per
		// task (not per stream) to mirror producerDone, which fires once
		// per finishing task.
		streams := map[string]bool{}
		for streamName, subs := range t.subsByStream {
			for _, sub := range subs {
				if sub.bolt == b {
					streams[streamName] = true
				}
			}
		}
		var prod int64
		for _, sp := range t.spouts {
			if anyStream(sp.outputs, streams) {
				prod += int64(sp.par)
			}
		}
		for _, ob := range t.bolts {
			if anyStream(ob.outputs, streams) {
				prod += int64(ob.par)
			}
		}
		b.producers.Store(prod)
	}

	var wg sync.WaitGroup
	// Spout tasks.
	for _, sp := range t.spouts {
		for i := 0; i < sp.par; i++ {
			wg.Add(1)
			go func(sp *spoutDecl, task int) {
				defer wg.Done()
				defer t.producerDone(sp.outputs)
				defer t.recoverPanic(sp.name, task)
				col := &collector{t: t, outputs: toSet(sp.outputs), ctx: ctx}
				s := sp.factory(task)
				for ctx.Err() == nil && s.Next(col) {
				}
			}(sp, i)
		}
	}
	// Bolt tasks.
	for _, b := range t.bolts {
		for i := 0; i < b.par; i++ {
			wg.Add(1)
			go func(b *boltDecl, task int) {
				defer wg.Done()
				defer t.producerDone(b.outputs)
				defer t.recoverPanic(b.name, task)
				col := &collector{t: t, decl: b, outputs: toSet(b.outputs), ctx: ctx}
				bolt := b.factory(task)
				for tp := range b.inputs[task] {
					b.processed.Inc()
					bolt.Process(tp, col)
				}
			}(b, i)
		}
	}
	wg.Wait()
	t.panicMu.Lock()
	defer t.panicMu.Unlock()
	if len(t.panics) > 0 {
		return fmt.Errorf("stream: %d task(s) panicked: %v", len(t.panics), t.panics)
	}
	return ctx.Err()
}

func anyStream(outputs []string, set map[string]bool) bool {
	for _, s := range outputs {
		if set[s] {
			return true
		}
	}
	return false
}

// producerDone decrements the producer count of every bolt subscribed to
// any of the finished task's output streams, closing inputs at zero.
func (t *Topology) producerDone(outputs []string) {
	notified := map[*boltDecl]bool{}
	for _, s := range outputs {
		for _, sub := range t.subsByStream[s] {
			if notified[sub.bolt] {
				continue
			}
			notified[sub.bolt] = true
			if sub.bolt.producers.Add(-1) == 0 {
				for _, ch := range sub.bolt.inputs {
					close(ch)
				}
			}
		}
	}
}

func (t *Topology) recoverPanic(name string, task int) {
	if r := recover(); r != nil {
		t.panicMu.Lock()
		t.panics = append(t.panics, fmt.Sprintf("%s[%d]: %v", name, task, r))
		t.panicMu.Unlock()
	}
}

// ComponentStats returns processed/emitted counters per bolt.
func (t *Topology) ComponentStats() map[string]Stats {
	out := make(map[string]Stats, len(t.bolts))
	for _, b := range t.bolts {
		out[b.name] = Stats{Processed: b.processed.Value(), Emitted: b.emitted.Value()}
	}
	return out
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}
