// Package stream is a miniature Storm-like dataflow engine: the substrate
// PS2Stream runs on (the paper deploys on Apache Storm; here spouts and
// bolts are goroutines connected by bounded channels, which is the
// repro-equivalent on a single box).
//
// A Topology declares spouts (sources), bolts (processors), named streams,
// and groupings (shuffle, fields/hash, broadcast, direct). Run executes
// the dataflow until every spout is exhausted and all in-flight tuples are
// drained, or the context is cancelled. Bounded channels provide
// backpressure exactly where a Storm topology would queue.
//
// The dataflow is batch-oriented: channels carry []Tuple slices, not
// single tuples. A producer's Collector buffers emitted tuples per
// (stream, downstream task) — groupings are evaluated once per tuple at
// emit time — and transfers a whole batch when it reaches the topology's
// batch size, when the producing task goes idle, or on an explicit
// Collector.Flush. Batching amortises the per-message channel-send and
// scheduling cost, which dominates the publish hot path at high rates;
// SetBatchSize(1) restores tuple-at-a-time transfer.
package stream

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"ps2stream/internal/metrics"
)

// Tuple is the unit of data flowing through a topology.
type Tuple struct {
	// Value is the payload.
	Value interface{}
}

// Collector lets spouts and bolts emit tuples downstream. Emitted tuples
// are buffered into per-downstream-task batches; a batch is transferred
// when it reaches the topology's batch size, when the engine flushes an
// idle task, or on Flush.
type Collector interface {
	// Emit sends the tuple on the named stream using each subscriber's
	// grouping.
	Emit(stream string, t Tuple)
	// EmitDirect sends the tuple to one specific task of every
	// direct-grouped subscriber of the stream.
	EmitDirect(stream string, task int, t Tuple)
	// Flush transfers every buffered partial batch downstream. It is a
	// no-op when nothing is buffered and returns promptly (abandoning the
	// buffered tuples) when the run context is cancelled, so it is safe to
	// call from components during shutdown.
	Flush()
}

// Spout produces tuples. Next is called repeatedly from a single
// goroutine; returning false ends the spout. The engine flushes the
// spout's collector when the spout ends; a spout that may block waiting
// for input should Flush before blocking so buffered tuples are not held
// back.
type Spout interface {
	Next(c Collector) bool
}

// Bolt processes tuples. Process is called from a single goroutine per
// task, so a Bolt instance needs no internal locking for its own state.
type Bolt interface {
	Process(t Tuple, c Collector)
}

// BatchBolt is an optional extension of Bolt: a bolt implementing it
// receives each transferred batch whole instead of tuple-at-a-time, so it
// can amortise per-batch work (acquire a lock once, read a clock once,
// reuse scratch buffers). The batch slice is owned by the engine and
// recycled after ProcessBatch returns; implementations must not retain it.
type BatchBolt interface {
	Bolt
	ProcessBatch(ts []Tuple, c Collector)
}

// A spout or bolt additionally implementing io.Closer has Close called
// exactly once when its task ends — after the final collector flush,
// before its producer slot is released downstream. Components holding
// external resources (e.g. the send side of a remote Transport) use it
// to end their output stream cleanly; the engine ignores the returned
// error.

// SpoutFunc adapts a function to the Spout interface.
type SpoutFunc func(c Collector) bool

// Next implements Spout.
func (f SpoutFunc) Next(c Collector) bool { return f(c) }

// BoltFunc adapts a function to the Bolt interface.
type BoltFunc func(t Tuple, c Collector)

// Process implements Bolt.
func (f BoltFunc) Process(t Tuple, c Collector) { f(t, c) }

// SpoutFactory builds one Spout instance per task.
type SpoutFactory func(task int) Spout

// BoltFactory builds one Bolt instance per task.
type BoltFactory func(task int) Bolt

// groupingKind enumerates subscription modes.
type groupingKind uint8

const (
	groupShuffle groupingKind = iota
	groupFields
	groupAll
	groupDirect
)

type subscription struct {
	bolt     *boltDecl
	kind     groupingKind
	keyFn    func(Tuple) uint64
	shuffleC atomic.Uint64
}

type spoutDecl struct {
	name    string
	factory SpoutFactory
	par     int
	outputs []string
}

type boltDecl struct {
	name    string
	factory BoltFactory
	par     int
	outputs []string
	inputs  []chan []Tuple
	// producers counts upstream task instances still running; the
	// bolt's inputs close when it reaches zero.
	producers atomic.Int64
	subs      []*subscription // subscriptions owned by this bolt

	processed metrics.Counter
	emitted   metrics.Counter
}

// BoltSpec configures a bolt's subscriptions fluently.
type BoltSpec struct {
	t    *Topology
	decl *boltDecl
}

// Topology is a declared dataflow. Build with NewTopology, add components,
// then Run.
type Topology struct {
	spouts       []*spoutDecl
	bolts        []*boltDecl
	byName       map[string]bool
	subsByStream map[string][]*subscription
	// emittersByStream counts task instances that may emit on a stream.
	emittersByStream map[string]int
	queueCap         int
	batchSize        int
	errs             []error

	// batchPool recycles transferred batch slices (capacity batchSize).
	batchPool sync.Pool

	panicMu sync.Mutex
	panics  []string

	// chanMu orders Run's input-channel allocation against concurrent
	// QueueStats scrapes. Task goroutines need no lock: the go statement
	// that starts them happens after allocation.
	chanMu sync.Mutex
}

// forcedFlushFactor bounds how many input tuples a busy bolt may process
// before its partial output batches are pushed anyway. Without it, a
// rarely-targeted downstream task could see its tuples parked in a partial
// batch for as long as the producer stays saturated — which would stall
// drain barriers (e.g. migration extraction) under sustained load.
const forcedFlushFactor = 4

// NewTopology returns an empty topology with the given per-task queue
// capacity, counted in batches (<=0 uses 1024), and a batch size of 1
// (tuple-at-a-time); raise the batch size with SetBatchSize.
func NewTopology(queueCap int) *Topology {
	if queueCap <= 0 {
		queueCap = 1024
	}
	return &Topology{
		byName:           make(map[string]bool),
		subsByStream:     make(map[string][]*subscription),
		emittersByStream: make(map[string]int),
		queueCap:         queueCap,
		batchSize:        1,
	}
}

// SetBatchSize sets the number of tuples transferred per channel send
// (<=1 means unbatched). Call before Run.
func (t *Topology) SetBatchSize(n int) {
	if n < 1 {
		n = 1
	}
	t.batchSize = n
}

// BatchSize returns the configured batch size.
func (t *Topology) BatchSize() int { return t.batchSize }

func (t *Topology) getBatch() []Tuple {
	if p, ok := t.batchPool.Get().(*[]Tuple); ok {
		return (*p)[:0]
	}
	return make([]Tuple, 0, t.batchSize)
}

func (t *Topology) putBatch(b []Tuple) {
	b = b[:0]
	t.batchPool.Put(&b)
}

// AddSpout declares a spout emitting on the given output streams.
func (t *Topology) AddSpout(name string, f SpoutFactory, parallelism int, outputs ...string) {
	if t.byName[name] {
		t.errs = append(t.errs, fmt.Errorf("stream: duplicate component %q", name))
		return
	}
	if parallelism < 1 {
		t.errs = append(t.errs, fmt.Errorf("stream: spout %q parallelism %d", name, parallelism))
		return
	}
	t.byName[name] = true
	t.spouts = append(t.spouts, &spoutDecl{name: name, factory: f, par: parallelism, outputs: outputs})
	for _, s := range outputs {
		t.emittersByStream[s] += parallelism
	}
}

// AddBolt declares a bolt; wire its inputs with the returned BoltSpec.
func (t *Topology) AddBolt(name string, f BoltFactory, parallelism int, outputs ...string) *BoltSpec {
	d := &boltDecl{name: name, factory: f, par: parallelism, outputs: outputs}
	if t.byName[name] {
		t.errs = append(t.errs, fmt.Errorf("stream: duplicate component %q", name))
		return &BoltSpec{t: t, decl: d}
	}
	if parallelism < 1 {
		t.errs = append(t.errs, fmt.Errorf("stream: bolt %q parallelism %d", name, parallelism))
		return &BoltSpec{t: t, decl: d}
	}
	t.byName[name] = true
	t.bolts = append(t.bolts, d)
	for _, s := range outputs {
		t.emittersByStream[s] += parallelism
	}
	return &BoltSpec{t: t, decl: d}
}

func (b *BoltSpec) subscribe(streamName string, kind groupingKind, keyFn func(Tuple) uint64) *BoltSpec {
	sub := &subscription{bolt: b.decl, kind: kind, keyFn: keyFn}
	b.decl.subs = append(b.decl.subs, sub)
	b.t.subsByStream[streamName] = append(b.t.subsByStream[streamName], sub)
	return b
}

// Shuffle subscribes round-robin.
func (b *BoltSpec) Shuffle(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupShuffle, nil)
}

// Fields subscribes with hash partitioning on the given key.
func (b *BoltSpec) Fields(streamName string, keyFn func(Tuple) uint64) *BoltSpec {
	return b.subscribe(streamName, groupFields, keyFn)
}

// All subscribes every task to every tuple (broadcast).
func (b *BoltSpec) All(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupAll, nil)
}

// Direct subscribes for explicit task addressing via EmitDirect.
func (b *BoltSpec) Direct(streamName string) *BoltSpec {
	return b.subscribe(streamName, groupDirect, nil)
}

// collector implements Collector for one producing task. It buffers
// emitted tuples per (subscription, downstream task); each buffer is sent
// as one batch when it reaches batchSize or on flush. Buffers fill and
// flush in emission order, so per-downstream-task FIFO is preserved.
type collector struct {
	t    *Topology
	decl *boltDecl // nil for spouts
	// allowed streams for this producer.
	outputs map[string]bool
	ctx     context.Context
	// bufs holds this producer's partial batches, indexed by downstream
	// task within each subscription.
	bufs map[*subscription][][]Tuple
}

func (c *collector) count() {
	if c.decl != nil {
		c.decl.emitted.Inc()
	}
}

// push appends tp to the (sub, task) buffer, transferring the batch when
// full. With batch size 1 it degenerates to one send per tuple.
func (c *collector) push(sub *subscription, task int, tp Tuple) {
	if c.bufs == nil {
		c.bufs = make(map[*subscription][][]Tuple)
	}
	tasks := c.bufs[sub]
	if tasks == nil {
		tasks = make([][]Tuple, sub.bolt.par)
		c.bufs[sub] = tasks
	}
	buf := tasks[task]
	if buf == nil {
		buf = c.t.getBatch()
	}
	buf = append(buf, tp)
	if len(buf) >= c.t.batchSize {
		tasks[task] = nil
		c.send(sub.bolt.inputs[task], buf)
		return
	}
	tasks[task] = buf
}

// Emit implements Collector.
func (c *collector) Emit(streamName string, tp Tuple) {
	if !c.outputs[streamName] {
		panic(fmt.Sprintf("stream: emit on undeclared stream %q", streamName))
	}
	c.count()
	for _, sub := range c.t.subsByStream[streamName] {
		switch sub.kind {
		case groupShuffle:
			i := int(sub.shuffleC.Add(1)) % sub.bolt.par
			c.push(sub, i, tp)
		case groupFields:
			i := int(sub.keyFn(tp) % uint64(sub.bolt.par))
			c.push(sub, i, tp)
		case groupAll:
			for i := range sub.bolt.inputs {
				c.push(sub, i, tp)
			}
		case groupDirect:
			// Direct subscribers ignore plain Emit.
		}
	}
}

// EmitDirect implements Collector.
func (c *collector) EmitDirect(streamName string, task int, tp Tuple) {
	if !c.outputs[streamName] {
		panic(fmt.Sprintf("stream: emit on undeclared stream %q", streamName))
	}
	c.count()
	for _, sub := range c.t.subsByStream[streamName] {
		if sub.kind != groupDirect {
			continue
		}
		if task < 0 || task >= sub.bolt.par {
			panic(fmt.Sprintf("stream: direct task %d out of range for %q", task, sub.bolt.name))
		}
		c.push(sub, task, tp)
	}
}

// Flush implements Collector.
func (c *collector) Flush() {
	for sub, tasks := range c.bufs {
		for task, buf := range tasks {
			if len(buf) == 0 {
				continue
			}
			tasks[task] = nil
			c.send(sub.bolt.inputs[task], buf)
		}
	}
}

// send delivers one batch with backpressure, abandoning it on
// cancellation.
func (c *collector) send(ch chan []Tuple, batch []Tuple) {
	select {
	case ch <- batch:
	case <-c.ctx.Done():
		c.t.putBatch(batch)
	}
}

// Stats reports per-component processed/emitted counts.
type Stats struct {
	Processed int64
	Emitted   int64
}

// ErrInvalidTopology wraps declaration errors found at Run time.
var ErrInvalidTopology = errors.New("stream: invalid topology")

// Run validates the topology, starts every task goroutine, and blocks
// until all spouts finish and all tuples drain (or ctx is cancelled).
// Tasks that panic are recovered; their messages are aggregated into the
// returned error.
func (t *Topology) Run(ctx context.Context) error {
	if len(t.errs) > 0 {
		return fmt.Errorf("%w: %v", ErrInvalidTopology, errors.Join(t.errs...))
	}
	for streamName := range t.subsByStream {
		if t.emittersByStream[streamName] == 0 {
			return fmt.Errorf("%w: stream %q has subscribers but no emitters", ErrInvalidTopology, streamName)
		}
	}
	// Allocate input channels and producer counts.
	for _, b := range t.bolts {
		t.chanMu.Lock()
		b.inputs = make([]chan []Tuple, b.par)
		for i := range b.inputs {
			b.inputs[i] = make(chan []Tuple, t.queueCap)
		}
		t.chanMu.Unlock()
		// Producers: every task instance of every component declaring at
		// least one output stream this bolt subscribes to. Counted per
		// task (not per stream) to mirror producerDone, which fires once
		// per finishing task.
		streams := map[string]bool{}
		for streamName, subs := range t.subsByStream {
			for _, sub := range subs {
				if sub.bolt == b {
					streams[streamName] = true
				}
			}
		}
		var prod int64
		for _, sp := range t.spouts {
			if anyStream(sp.outputs, streams) {
				prod += int64(sp.par)
			}
		}
		for _, ob := range t.bolts {
			if anyStream(ob.outputs, streams) {
				prod += int64(ob.par)
			}
		}
		b.producers.Store(prod)
	}

	var wg sync.WaitGroup
	// Spout tasks.
	for _, sp := range t.spouts {
		for i := 0; i < sp.par; i++ {
			wg.Add(1)
			go func(sp *spoutDecl, task int) {
				defer wg.Done()
				defer t.producerDone(sp.outputs)
				defer t.recoverPanic(sp.name, task)
				col := &collector{t: t, outputs: toSet(sp.outputs), ctx: ctx}
				s := sp.factory(task)
				defer closeComponent(s)
				for ctx.Err() == nil && s.Next(col) {
				}
				col.Flush()
			}(sp, i)
		}
	}
	// Bolt tasks.
	for _, b := range t.bolts {
		for i := 0; i < b.par; i++ {
			wg.Add(1)
			go func(b *boltDecl, task int) {
				defer wg.Done()
				defer t.producerDone(b.outputs)
				defer t.recoverPanic(b.name, task)
				col := &collector{t: t, decl: b, outputs: toSet(b.outputs), ctx: ctx}
				bolt := b.factory(task)
				defer closeComponent(bolt)
				batcher, _ := bolt.(BatchBolt)
				// sinceFlush forces a flush after forcedFlushFactor×
				// batchSize inputs so partial output batches cannot be
				// parked indefinitely while the input stays saturated.
				sinceFlush := 0
				for batch := range b.inputs[task] {
					b.processed.Add(int64(len(batch)))
					sinceFlush += len(batch)
					if batcher != nil {
						batcher.ProcessBatch(batch, col)
					} else {
						for j := range batch {
							bolt.Process(batch[j], col)
						}
					}
					t.putBatch(batch)
					if len(b.inputs[task]) == 0 || sinceFlush >= forcedFlushFactor*t.batchSize {
						col.Flush()
						sinceFlush = 0
					}
				}
				col.Flush()
			}(b, i)
		}
	}
	wg.Wait()
	t.panicMu.Lock()
	defer t.panicMu.Unlock()
	if len(t.panics) > 0 {
		return fmt.Errorf("stream: %d task(s) panicked: %v", len(t.panics), t.panics)
	}
	return ctx.Err()
}

func anyStream(outputs []string, set map[string]bool) bool {
	for _, s := range outputs {
		if set[s] {
			return true
		}
	}
	return false
}

// producerDone decrements the producer count of every bolt subscribed to
// any of the finished task's output streams, closing inputs at zero.
func (t *Topology) producerDone(outputs []string) {
	notified := map[*boltDecl]bool{}
	for _, s := range outputs {
		for _, sub := range t.subsByStream[s] {
			if notified[sub.bolt] {
				continue
			}
			notified[sub.bolt] = true
			if sub.bolt.producers.Add(-1) == 0 {
				for _, ch := range sub.bolt.inputs {
					close(ch)
				}
			}
		}
	}
}

// closeComponent invokes the optional io.Closer hook of a finished
// spout or bolt instance (see the Closer note above BatchBolt).
func closeComponent(v any) {
	if c, ok := v.(io.Closer); ok {
		_ = c.Close()
	}
}

func (t *Topology) recoverPanic(name string, task int) {
	if r := recover(); r != nil {
		t.panicMu.Lock()
		t.panics = append(t.panics, fmt.Sprintf("%s[%d]: %v", name, task, r))
		t.panicMu.Unlock()
	}
}

// ComponentStats returns processed/emitted counters per bolt.
func (t *Topology) ComponentStats() map[string]Stats {
	out := make(map[string]Stats, len(t.bolts))
	for _, b := range t.bolts {
		out[b.name] = Stats{Processed: b.processed.Value(), Emitted: b.emitted.Value()}
	}
	return out
}

// QueueStats is one bolt's input-queue occupancy at a point in time,
// measured in transfer batches (the channel unit).
type QueueStats struct {
	// Depth sums the queued batches across the bolt's task inputs.
	Depth int
	// Cap sums the task input capacities.
	Cap int
}

// QueueStats reports per-bolt input-queue occupancy. Channel lengths are
// racy by nature — the numbers are an instantaneous gauge for
// observability, not a synchronisation primitive. Safe to call
// concurrently with Run; before Run allocates the channels it reports
// zero depth and capacity.
func (t *Topology) QueueStats() map[string]QueueStats {
	out := make(map[string]QueueStats, len(t.bolts))
	t.chanMu.Lock()
	defer t.chanMu.Unlock()
	for _, b := range t.bolts {
		var qs QueueStats
		for _, ch := range b.inputs {
			if ch != nil {
				qs.Depth += len(ch)
				qs.Cap += cap(ch)
			}
		}
		out[b.name] = qs
	}
	return out
}

func toSet(ss []string) map[string]bool {
	m := make(map[string]bool, len(ss))
	for _, s := range ss {
		m[s] = true
	}
	return m
}
