package stream

import (
	"errors"
	"io"
	"sync"
)

// Transport moves tuple batches across one hop of a topology. It is the
// abstraction that lets a hop leave the process: in-process hops ride
// Go channels (ChanTransport here, and the engine's own inlined channel
// path), while multi-process deployments substitute a TCP-backed
// implementation (internal/wire via the adapters in internal/core).
//
// A Transport is one *directed* hop with an optional return stream:
// Send carries the forward direction (e.g. operation batches to a
// worker), Recv the return direction (e.g. the worker's match batches).
// Implementations must allow one sender goroutine, one receiver
// goroutine, and Close from any goroutine. Send must not retain the
// batch slice — the engine recycles it.
type Transport interface {
	// Send transfers one batch, blocking under backpressure.
	Send(batch []Tuple) error
	// Recv blocks for the next batch of the return stream, returning
	// io.EOF after the peer ends it cleanly.
	Recv() ([]Tuple, error)
	// Close tears the hop down, unblocking pending Send/Recv calls.
	Close() error
}

// SendCloser is an optional Transport extension: CloseSend ends the
// forward direction only, letting the peer finish the return stream
// (which then terminates with io.EOF from Recv). Transports without it
// are torn down with Close.
type SendCloser interface {
	CloseSend() error
}

// ErrTransportClosed is returned by ChanTransport operations after the
// corresponding direction was closed.
var ErrTransportClosed = errors.New("stream: transport closed")

// ChanTransport is the in-process Transport: both directions are
// bounded Go channels. It is the reference implementation and fast
// path; tests use a pair to stand in for a remote peer without sockets.
type ChanTransport struct {
	send chan<- []Tuple
	recv <-chan []Tuple

	mu       sync.Mutex
	sendDone bool
	closed   chan struct{}
	once     sync.Once
}

// NewChanPair returns the two ends of an in-process hop with the given
// per-direction buffering (in batches). Batches sent on one end arrive
// at the other end's Recv.
func NewChanPair(cap int) (a, b *ChanTransport) {
	ab := make(chan []Tuple, cap)
	ba := make(chan []Tuple, cap)
	a = &ChanTransport{send: ab, recv: ba, closed: make(chan struct{})}
	b = &ChanTransport{send: ba, recv: ab, closed: make(chan struct{})}
	return a, b
}

// Send implements Transport. The batch is copied so the caller may
// recycle its slice.
func (t *ChanTransport) Send(batch []Tuple) error {
	t.mu.Lock()
	if t.sendDone {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	t.mu.Unlock()
	cp := append([]Tuple(nil), batch...)
	select {
	case t.send <- cp:
		return nil
	case <-t.closed:
		return ErrTransportClosed
	}
}

// Recv implements Transport.
func (t *ChanTransport) Recv() ([]Tuple, error) {
	select {
	case b, ok := <-t.recv:
		if !ok {
			return nil, io.EOF
		}
		return b, nil
	case <-t.closed:
		return nil, ErrTransportClosed
	}
}

// CloseSend implements SendCloser: the peer's Recv sees io.EOF after
// every in-flight batch. It must be called from the sending goroutine
// (or after sends have provably stopped), like Send itself.
func (t *ChanTransport) CloseSend() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.sendDone {
		t.sendDone = true
		close(t.send)
	}
	return nil
}

// Close implements Transport: it unblocks this end's pending Send and
// Recv calls. It does not half-close the forward direction (that is
// CloseSend's job, from the sending goroutine); the peer keeps draining
// whatever was already sent.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}
