package stream

import (
	"sync"
	"sync/atomic"
)

// Fence is an epoch fence for routing-table changes in a running dataflow.
//
// The problem it solves: a router task loads a routing structure once and
// then enqueues a batch of tuples according to it. A migration that flips
// the routing and immediately snapshots the destination queues can miss a
// batch that was routed under the *old* table but not yet enqueued — the
// classic lost-update between "flip" and "observe". A Fence closes that
// window: router tasks wrap each routed batch in Enter/Exit (a shared
// read-side section), and a migrator calls Advance after flipping, which
// blocks until every batch that might have seen the old table has finished
// enqueuing. Counters read after Advance therefore cover all old-epoch
// traffic.
//
// Advance also bumps a monotonically increasing epoch, so observers can
// tell how many routing generations a running system has gone through.
// The read side is a sync.RWMutex RLock/RUnlock pair per batch — a few
// tens of nanoseconds, amortised over the whole batch.
type Fence struct {
	mu    sync.RWMutex
	epoch atomic.Uint64
}

// NewFence returns a fence at epoch 0.
func NewFence() *Fence { return &Fence{} }

// Enter begins a fenced read-side section. Every routing decision and the
// enqueues it produces must happen between Enter and Exit.
func (f *Fence) Enter() { f.mu.RLock() }

// Exit ends the section begun by Enter.
func (f *Fence) Exit() { f.mu.RUnlock() }

// Advance bumps the epoch and blocks until every read-side section that
// began before the call has exited — i.e. until every batch routed under
// the previous epoch has been fully enqueued. It returns the new epoch.
// Sections entered while Advance waits are part of the new epoch (they
// observe the already-flipped routing) and are not waited for beyond the
// writer-lock handshake.
func (f *Fence) Advance() uint64 {
	e := f.epoch.Add(1)
	f.mu.Lock()
	//lint:ignore SA2001 empty critical section is the point: acquiring the
	// write lock waits out all read-side sections that predate the epoch bump.
	f.mu.Unlock()
	return e
}

// Epoch returns the current epoch (the number of Advance calls so far).
func (f *Fence) Epoch() uint64 { return f.epoch.Load() }
