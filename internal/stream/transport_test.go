package stream

import (
	"context"
	"io"
	"sync"
	"testing"
	"time"
)

func TestChanPairRoundTrip(t *testing.T) {
	a, b := NewChanPair(4)
	batch := []Tuple{{Value: 1}, {Value: 2}}
	if err := a.Send(batch); err != nil {
		t.Fatal(err)
	}
	// The transport must copy: mutating the caller's slice after Send
	// cannot affect the delivered batch (the engine recycles batches).
	batch[0] = Tuple{Value: 99}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Value != 1 || got[1].Value != 2 {
		t.Fatalf("got %v", got)
	}
	// Return direction.
	if err := b.Send([]Tuple{{Value: "reply"}}); err != nil {
		t.Fatal(err)
	}
	back, err := a.Recv()
	if err != nil || len(back) != 1 || back[0].Value != "reply" {
		t.Fatalf("reply = %v, %v", back, err)
	}
}

func TestChanPairCloseSendGivesEOF(t *testing.T) {
	a, b := NewChanPair(4)
	a.Send([]Tuple{{Value: 1}})
	if err := a.CloseSend(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("in-flight batch lost: %v", err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("after CloseSend: %v, want io.EOF", err)
	}
	if err := a.Send([]Tuple{{Value: 2}}); err != ErrTransportClosed {
		t.Fatalf("Send after CloseSend: %v, want ErrTransportClosed", err)
	}
}

func TestChanTransportCloseUnblocks(t *testing.T) {
	a, _ := NewChanPair(0)
	errc := make(chan error, 1)
	go func() {
		_, err := a.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	a.Close()
	select {
	case err := <-errc:
		if err != ErrTransportClosed {
			t.Fatalf("Recv after Close: %v, want ErrTransportClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	// Close is idempotent.
	a.Close()
}

// closingSpout/closingBolt verify the engine's io.Closer hook: Close
// fires exactly once per task instance, after the component stops.
type closingSpout struct {
	n       int
	closed  *sync.WaitGroup
	counter *int32
	mu      *sync.Mutex
}

func (s *closingSpout) Next(c Collector) bool {
	if s.n <= 0 {
		return false
	}
	s.n--
	c.Emit("data", Tuple{Value: s.n})
	return true
}

func (s *closingSpout) Close() error {
	s.mu.Lock()
	*s.counter++
	s.mu.Unlock()
	s.closed.Done()
	return nil
}

type closingBolt struct {
	mu      *sync.Mutex
	counter *int32
	closed  *sync.WaitGroup
}

func (b *closingBolt) Process(tu Tuple, c Collector) {}

func (b *closingBolt) Close() error {
	b.mu.Lock()
	*b.counter++
	b.mu.Unlock()
	b.closed.Done()
	return nil
}

func TestComponentCloseHook(t *testing.T) {
	var mu sync.Mutex
	var spoutCloses, boltCloses int32
	var wg sync.WaitGroup
	wg.Add(1 + 3) // one spout task, three bolt tasks

	topo := NewTopology(8)
	topo.AddSpout("src", func(task int) Spout {
		return &closingSpout{n: 10, closed: &wg, counter: &spoutCloses, mu: &mu}
	}, 1, "data")
	topo.AddBolt("sink", func(task int) Bolt {
		return &closingBolt{mu: &mu, counter: &boltCloses, closed: &wg}
	}, 3).Shuffle("data")

	if err := topo.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if spoutCloses != 1 {
		t.Errorf("spout Close ran %d times, want 1", spoutCloses)
	}
	if boltCloses != 3 {
		t.Errorf("bolt Close ran %d times, want 3 (one per task)", boltCloses)
	}
}
