package stream

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFenceEpochMonotonic(t *testing.T) {
	f := NewFence()
	if f.Epoch() != 0 {
		t.Fatalf("fresh fence epoch = %d, want 0", f.Epoch())
	}
	for i := 1; i <= 3; i++ {
		if e := f.Advance(); e != uint64(i) {
			t.Fatalf("Advance %d returned epoch %d", i, e)
		}
	}
	if f.Epoch() != 3 {
		t.Fatalf("Epoch = %d, want 3", f.Epoch())
	}
}

// TestFenceAdvanceWaitsForReaders pins the fence's core guarantee: a
// read-side section entered before Advance must complete before Advance
// returns, so routing flips never race in-flight batches.
func TestFenceAdvanceWaitsForReaders(t *testing.T) {
	f := NewFence()
	var enqueued atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		f.Enter()
		close(entered)
		<-release
		enqueued.Store(true) // the batch's enqueue, inside the section
		f.Exit()
	}()
	<-entered
	done := make(chan struct{})
	go func() {
		f.Advance()
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("Advance returned while a pre-advance reader was still inside")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	<-done
	if !enqueued.Load() {
		t.Fatal("Advance returned before the old-epoch batch finished enqueuing")
	}
}

// Concurrent hammering: many readers and advancing writers, run under
// -race in CI.
func TestFenceConcurrent(t *testing.T) {
	f := NewFence()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Enter()
				_ = f.Epoch()
				f.Exit()
			}
		}()
	}
	for i := 0; i < 200; i++ {
		f.Advance()
	}
	close(stop)
	wg.Wait()
	if f.Epoch() != 200 {
		t.Fatalf("Epoch = %d, want 200", f.Epoch())
	}
}
