package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rangeSpout emits ints [0, n).
func rangeSpout(n int, streamName string) SpoutFactory {
	return func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= n {
				return false
			}
			c.Emit(streamName, Tuple{Value: i})
			i++
			return true
		})
	}
}

// sink collects tuples thread-safely.
type sink struct {
	mu   sync.Mutex
	vals []interface{}
}

func (s *sink) add(v interface{}) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

func TestLinearPipeline(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(100, "nums"), 1, "nums")
	var doubled atomic.Int64
	tp.AddBolt("double", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			c.Emit("doubled", Tuple{Value: tu.Value.(int) * 2})
		})
	}, 2, "doubled").Shuffle("nums")
	out := &sink{}
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			doubled.Add(int64(tu.Value.(int)))
			out.add(tu.Value)
		})
	}, 1).Shuffle("doubled")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if out.len() != 100 {
		t.Fatalf("sink received %d tuples, want 100", out.len())
	}
	if got := doubled.Load(); got != 2*99*100/2 {
		t.Errorf("sum = %d, want %d", got, 2*99*100/2)
	}
	stats := tp.ComponentStats()
	if stats["double"].Processed != 100 {
		t.Errorf("double processed %d", stats["double"].Processed)
	}
	if stats["double"].Emitted != 100 {
		t.Errorf("double emitted %d", stats["double"].Emitted)
	}
}

func TestFieldsGroupingPartitionsByKey(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(1000, "nums"), 1, "nums")
	seen := make([]map[int]bool, 4)
	var mu sync.Mutex
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			mu.Lock()
			if seen[task] == nil {
				seen[task] = map[int]bool{}
			}
			seen[task][tu.Value.(int)%7] = true
			mu.Unlock()
		})
	}, 4).Fields("nums", func(tu Tuple) uint64 {
		return uint64(tu.Value.(int) % 7)
	})
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Each key class must appear at exactly one task.
	owner := map[int]int{}
	for task, keys := range seen {
		for k := range keys {
			if prev, dup := owner[k]; dup && prev != task {
				t.Fatalf("key %d seen at tasks %d and %d", k, prev, task)
			}
			owner[k] = task
		}
	}
	if len(owner) != 7 {
		t.Errorf("saw %d key classes, want 7", len(owner))
	}
}

func TestAllGroupingBroadcasts(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(50, "nums"), 1, "nums")
	var count atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { count.Add(1) })
	}, 3).All("nums")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 150 {
		t.Errorf("broadcast delivered %d, want 150", got)
	}
}

func TestDirectGrouping(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= 90 {
				return false
			}
			c.EmitDirect("nums", i%3, Tuple{Value: i})
			i++
			return true
		})
	}, 1, "nums")
	counts := make([]atomic.Int64, 3)
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if tu.Value.(int)%3 != task {
				t.Errorf("tuple %v delivered to wrong task %d", tu.Value, task)
			}
			counts[task].Add(1)
		})
	}, 3).Direct("nums")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 30 {
			t.Errorf("task %d received %d, want 30", i, got)
		}
	}
}

func TestMultiStageFanIn(t *testing.T) {
	// Two spouts feed one bolt; termination must wait for both.
	tp := NewTopology(8)
	tp.AddSpout("a", rangeSpout(40, "s"), 2, "s")
	tp.AddSpout("b", rangeSpout(30, "s"), 1, "s")
	var n atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { n.Add(1) })
	}, 2).Shuffle("s")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2*40+30 {
		t.Errorf("received %d, want 110", got)
	}
}

func TestMultipleOutputStreamsOneSubscriber(t *testing.T) {
	// One producer emits on two streams consumed by the same bolt:
	// termination accounting must not double-count the producer.
	tp := NewTopology(8)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= 10 {
				return false
			}
			c.Emit("s1", Tuple{Value: i})
			c.Emit("s2", Tuple{Value: i})
			i++
			return true
		})
	}, 1, "s1", "s2")
	var n atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { n.Add(1) })
	}, 1).Shuffle("s1").Shuffle("s2")
	done := make(chan error, 1)
	go func() { done <- tp.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("topology did not terminate (producer accounting bug)")
	}
	if got := n.Load(); got != 20 {
		t.Errorf("received %d, want 20", got)
	}
}

func TestContextCancellation(t *testing.T) {
	tp := NewTopology(4)
	// Infinite spout.
	tp.AddSpout("src", func(task int) Spout {
		return SpoutFunc(func(c Collector) bool {
			c.Emit("s", Tuple{Value: 1})
			return true
		})
	}, 1, "s")
	tp.AddBolt("slow", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			time.Sleep(time.Millisecond)
		})
	}, 1).Shuffle("s")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := tp.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, want deadline exceeded", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	tp := NewTopology(4)
	tp.AddSpout("src", rangeSpout(10, "s"), 1, "s")
	tp.AddBolt("boom", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if tu.Value.(int) == 5 {
				panic("kaboom")
			}
		})
	}, 1).Shuffle("s")
	err := tp.Run(context.Background())
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestInvalidTopologies(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddSpout("x", rangeSpout(1, "s"), 1, "s")
		tp.AddBolt("x", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("s")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("orphan subscription", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddBolt("b", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("ghost")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero parallelism", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddSpout("s", rangeSpout(1, "s"), 0, "s")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestBackpressureDoesNotDrop(t *testing.T) {
	// Tiny queues, fast producer, slow consumer: everything still
	// arrives.
	tp := NewTopology(1)
	tp.AddSpout("src", rangeSpout(500, "s"), 1, "s")
	var n atomic.Int64
	tp.AddBolt("slow", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if n.Add(1)%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		})
	}, 1).Shuffle("s")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 500 {
		t.Errorf("received %d, want 500", got)
	}
}

func TestEmitOnUndeclaredStreamPanics(t *testing.T) {
	tp := NewTopology(4)
	tp.AddSpout("src", func(task int) Spout {
		return SpoutFunc(func(c Collector) bool {
			c.Emit("undeclared", Tuple{Value: 1})
			return false
		})
	}, 1, "declared")
	tp.AddBolt("sink", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("declared")
	if err := tp.Run(context.Background()); err == nil {
		t.Error("expected error from undeclared-stream emit")
	}
}

// Per-key FIFO: tuples sharing a fields-grouping key must arrive at their
// task in emission order — the property PS2Stream's dispatcher input
// relies on so a subscription's delete never overtakes its insert.
func TestFieldsGroupingPreservesPerKeyOrder(t *testing.T) {
	type seqTuple struct{ key, seq int }
	const keys, perKey = 8, 200
	tp := NewTopology(16)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= keys*perKey {
				return false
			}
			c.Emit("seq", Tuple{Value: seqTuple{key: i % keys, seq: i / keys}})
			i++
			return true
		})
	}, 1, "seq")
	var mu sync.Mutex
	lastSeq := map[int]int{}
	violations := 0
	tp.AddBolt("check", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			st := tu.Value.(seqTuple)
			mu.Lock()
			if prev, ok := lastSeq[st.key]; ok && st.seq != prev+1 {
				violations++
			}
			lastSeq[st.key] = st.seq
			mu.Unlock()
		})
	}, 4).Fields("seq", func(tu Tuple) uint64 {
		return uint64(tu.Value.(seqTuple).key)
	})
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Errorf("%d per-key ordering violations", violations)
	}
	if len(lastSeq) != keys {
		t.Errorf("saw %d keys, want %d", len(lastSeq), keys)
	}
	for k, s := range lastSeq {
		if s != perKey-1 {
			t.Errorf("key %d ended at seq %d, want %d", k, s, perKey-1)
		}
	}
}

// TestBatchedEmissionPreservesPerTaskFIFO re-runs the per-key ordering
// check with batching on: tuples sharing a fields-grouping key must still
// arrive at their task in emission order when they travel inside []Tuple
// batches, including the final partial batch flushed at spout exit.
func TestBatchedEmissionPreservesPerTaskFIFO(t *testing.T) {
	type seqTuple struct{ key, seq int }
	const keys, perKey = 8, 200 // keys*perKey not divisible by the batch size: partials must flush
	tp := NewTopology(16)
	tp.SetBatchSize(7)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= keys*perKey {
				return false
			}
			c.Emit("seq", Tuple{Value: seqTuple{key: i % keys, seq: i / keys}})
			i++
			return true
		})
	}, 1, "seq")
	var mu sync.Mutex
	lastSeq := map[int]int{}
	violations := 0
	tp.AddBolt("check", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			st := tu.Value.(seqTuple)
			mu.Lock()
			if prev, ok := lastSeq[st.key]; ok && st.seq != prev+1 {
				violations++
			}
			lastSeq[st.key] = st.seq
			mu.Unlock()
		})
	}, 4).Fields("seq", func(tu Tuple) uint64 {
		return uint64(tu.Value.(seqTuple).key)
	})
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Errorf("%d per-key ordering violations under batching", violations)
	}
	if len(lastSeq) != keys {
		t.Errorf("saw %d keys, want %d", len(lastSeq), keys)
	}
	for k, s := range lastSeq {
		if s != perKey-1 {
			t.Errorf("key %d ended at seq %d, want %d (partial batch dropped?)", k, s, perKey-1)
		}
	}
}

// TestBatchBoltReceivesWholeBatches verifies the BatchBolt fast path: a
// bolt implementing ProcessBatch sees multi-tuple batches bounded by the
// configured size, and every tuple still arrives exactly once.
func TestBatchBoltReceivesWholeBatches(t *testing.T) {
	const n, batchSize = 100, 8
	tp := NewTopology(16)
	tp.SetBatchSize(batchSize)
	tp.AddSpout("src", rangeSpout(n, "nums"), 1, "nums")
	bb := &batchRecorder{}
	tp.AddBolt("sink", func(task int) Bolt { return bb }, 1).Shuffle("nums")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if bb.tuples.Load() != n {
		t.Errorf("received %d tuples, want %d", bb.tuples.Load(), n)
	}
	if bb.maxBatch.Load() > batchSize {
		t.Errorf("saw a batch of %d tuples, cap is %d", bb.maxBatch.Load(), batchSize)
	}
	if bb.maxBatch.Load() < 2 {
		t.Errorf("never saw a multi-tuple batch; batching is not engaged")
	}
	if bb.single.Load() != 0 {
		t.Errorf("engine called Process %d times on a BatchBolt", bb.single.Load())
	}
}

type batchRecorder struct {
	tuples   atomic.Int64
	maxBatch atomic.Int64
	single   atomic.Int64
}

func (r *batchRecorder) Process(tu Tuple, c Collector) { r.single.Add(1) }

func (r *batchRecorder) ProcessBatch(ts []Tuple, c Collector) {
	r.tuples.Add(int64(len(ts)))
	for {
		m := r.maxBatch.Load()
		if int64(len(ts)) <= m || r.maxBatch.CompareAndSwap(m, int64(len(ts))) {
			return
		}
	}
}

// TestFlushDrainsPartialBatchesUnderCancellation: a Flush whose sends can
// never complete (downstream queue full, consumer wedged) must abandon the
// buffered tuples once the run context is cancelled instead of
// deadlocking the producing task — and Run must return.
func TestFlushDrainsPartialBatchesUnderCancellation(t *testing.T) {
	tp := NewTopology(1) // one-batch queue: the second flush must block
	tp.SetBatchSize(64)
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	emitted := make(chan struct{})
	tp.AddSpout("src", func(task int) Spout {
		step := 0
		return SpoutFunc(func(c Collector) bool {
			step++
			switch step {
			case 1:
				// Fills the single queue slot.
				c.Emit("s", Tuple{Value: 1})
				c.Flush()
				return true
			case 2:
				// Parked in a partial batch; the engine's exit flush must
				// abandon it under the cancelled context.
				c.Emit("s", Tuple{Value: 2})
				close(emitted)
				<-release
				return false
			}
			return false
		})
	}, 1, "s")
	tp.AddBolt("wedge", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			<-release // holds the first batch, never draining the queue
		})
	}, 1).Shuffle("s")
	done := make(chan error, 1)
	go func() { done <- tp.Run(ctx) }()
	<-emitted
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked: exit flush did not abandon its partial batch on cancellation")
	}
}

// TestExplicitFlushDeliversPartialBatches: tuples buffered below the batch
// size must reach the consumer after Collector.Flush without waiting for
// the batch to fill.
func TestExplicitFlushDeliversPartialBatches(t *testing.T) {
	tp := NewTopology(16)
	tp.SetBatchSize(1024) // far more than emitted: only Flush can deliver
	got := make(chan int, 8)
	tp.AddSpout("src", func(task int) Spout {
		step := 0
		return SpoutFunc(func(c Collector) bool {
			step++
			if step > 1 {
				// Wait until the flushed tuples arrive, then finish.
				for len(got) < 3 {
					time.Sleep(time.Millisecond)
				}
				return false
			}
			for i := 0; i < 3; i++ {
				c.Emit("s", Tuple{Value: i})
			}
			c.Flush()
			return true
		})
	}, 1, "s")
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { got <- tu.Value.(int) })
	}, 1).Shuffle("s")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("received %d tuples, want 3", len(got))
	}
}
