package stream

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rangeSpout emits ints [0, n).
func rangeSpout(n int, streamName string) SpoutFactory {
	return func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= n {
				return false
			}
			c.Emit(streamName, Tuple{Value: i})
			i++
			return true
		})
	}
}

// sink collects tuples thread-safely.
type sink struct {
	mu   sync.Mutex
	vals []interface{}
}

func (s *sink) add(v interface{}) {
	s.mu.Lock()
	s.vals = append(s.vals, v)
	s.mu.Unlock()
}

func (s *sink) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

func TestLinearPipeline(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(100, "nums"), 1, "nums")
	var doubled atomic.Int64
	tp.AddBolt("double", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			c.Emit("doubled", Tuple{Value: tu.Value.(int) * 2})
		})
	}, 2, "doubled").Shuffle("nums")
	out := &sink{}
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			doubled.Add(int64(tu.Value.(int)))
			out.add(tu.Value)
		})
	}, 1).Shuffle("doubled")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if out.len() != 100 {
		t.Fatalf("sink received %d tuples, want 100", out.len())
	}
	if got := doubled.Load(); got != 2*99*100/2 {
		t.Errorf("sum = %d, want %d", got, 2*99*100/2)
	}
	stats := tp.ComponentStats()
	if stats["double"].Processed != 100 {
		t.Errorf("double processed %d", stats["double"].Processed)
	}
	if stats["double"].Emitted != 100 {
		t.Errorf("double emitted %d", stats["double"].Emitted)
	}
}

func TestFieldsGroupingPartitionsByKey(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(1000, "nums"), 1, "nums")
	seen := make([]map[int]bool, 4)
	var mu sync.Mutex
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			mu.Lock()
			if seen[task] == nil {
				seen[task] = map[int]bool{}
			}
			seen[task][tu.Value.(int)%7] = true
			mu.Unlock()
		})
	}, 4).Fields("nums", func(tu Tuple) uint64 {
		return uint64(tu.Value.(int) % 7)
	})
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Each key class must appear at exactly one task.
	owner := map[int]int{}
	for task, keys := range seen {
		for k := range keys {
			if prev, dup := owner[k]; dup && prev != task {
				t.Fatalf("key %d seen at tasks %d and %d", k, prev, task)
			}
			owner[k] = task
		}
	}
	if len(owner) != 7 {
		t.Errorf("saw %d key classes, want 7", len(owner))
	}
}

func TestAllGroupingBroadcasts(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", rangeSpout(50, "nums"), 1, "nums")
	var count atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { count.Add(1) })
	}, 3).All("nums")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := count.Load(); got != 150 {
		t.Errorf("broadcast delivered %d, want 150", got)
	}
}

func TestDirectGrouping(t *testing.T) {
	tp := NewTopology(16)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= 90 {
				return false
			}
			c.EmitDirect("nums", i%3, Tuple{Value: i})
			i++
			return true
		})
	}, 1, "nums")
	counts := make([]atomic.Int64, 3)
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if tu.Value.(int)%3 != task {
				t.Errorf("tuple %v delivered to wrong task %d", tu.Value, task)
			}
			counts[task].Add(1)
		})
	}, 3).Direct("nums")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if got := counts[i].Load(); got != 30 {
			t.Errorf("task %d received %d, want 30", i, got)
		}
	}
}

func TestMultiStageFanIn(t *testing.T) {
	// Two spouts feed one bolt; termination must wait for both.
	tp := NewTopology(8)
	tp.AddSpout("a", rangeSpout(40, "s"), 2, "s")
	tp.AddSpout("b", rangeSpout(30, "s"), 1, "s")
	var n atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { n.Add(1) })
	}, 2).Shuffle("s")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 2*40+30 {
		t.Errorf("received %d, want 110", got)
	}
}

func TestMultipleOutputStreamsOneSubscriber(t *testing.T) {
	// One producer emits on two streams consumed by the same bolt:
	// termination accounting must not double-count the producer.
	tp := NewTopology(8)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= 10 {
				return false
			}
			c.Emit("s1", Tuple{Value: i})
			c.Emit("s2", Tuple{Value: i})
			i++
			return true
		})
	}, 1, "s1", "s2")
	var n atomic.Int64
	tp.AddBolt("sink", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) { n.Add(1) })
	}, 1).Shuffle("s1").Shuffle("s2")
	done := make(chan error, 1)
	go func() { done <- tp.Run(context.Background()) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("topology did not terminate (producer accounting bug)")
	}
	if got := n.Load(); got != 20 {
		t.Errorf("received %d, want 20", got)
	}
}

func TestContextCancellation(t *testing.T) {
	tp := NewTopology(4)
	// Infinite spout.
	tp.AddSpout("src", func(task int) Spout {
		return SpoutFunc(func(c Collector) bool {
			c.Emit("s", Tuple{Value: 1})
			return true
		})
	}, 1, "s")
	tp.AddBolt("slow", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			time.Sleep(time.Millisecond)
		})
	}, 1).Shuffle("s")
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	err := tp.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("Run = %v, want deadline exceeded", err)
	}
}

func TestPanicRecovery(t *testing.T) {
	tp := NewTopology(4)
	tp.AddSpout("src", rangeSpout(10, "s"), 1, "s")
	tp.AddBolt("boom", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if tu.Value.(int) == 5 {
				panic("kaboom")
			}
		})
	}, 1).Shuffle("s")
	err := tp.Run(context.Background())
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}

func TestInvalidTopologies(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddSpout("x", rangeSpout(1, "s"), 1, "s")
		tp.AddBolt("x", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("s")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("orphan subscription", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddBolt("b", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("ghost")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("zero parallelism", func(t *testing.T) {
		tp := NewTopology(4)
		tp.AddSpout("s", rangeSpout(1, "s"), 0, "s")
		if err := tp.Run(context.Background()); !errors.Is(err, ErrInvalidTopology) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestBackpressureDoesNotDrop(t *testing.T) {
	// Tiny queues, fast producer, slow consumer: everything still
	// arrives.
	tp := NewTopology(1)
	tp.AddSpout("src", rangeSpout(500, "s"), 1, "s")
	var n atomic.Int64
	tp.AddBolt("slow", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			if n.Add(1)%100 == 0 {
				time.Sleep(time.Millisecond)
			}
		})
	}, 1).Shuffle("s")
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != 500 {
		t.Errorf("received %d, want 500", got)
	}
}

func TestEmitOnUndeclaredStreamPanics(t *testing.T) {
	tp := NewTopology(4)
	tp.AddSpout("src", func(task int) Spout {
		return SpoutFunc(func(c Collector) bool {
			c.Emit("undeclared", Tuple{Value: 1})
			return false
		})
	}, 1, "declared")
	tp.AddBolt("sink", func(int) Bolt { return BoltFunc(func(Tuple, Collector) {}) }, 1).Shuffle("declared")
	if err := tp.Run(context.Background()); err == nil {
		t.Error("expected error from undeclared-stream emit")
	}
}

// Per-key FIFO: tuples sharing a fields-grouping key must arrive at their
// task in emission order — the property PS2Stream's dispatcher input
// relies on so a subscription's delete never overtakes its insert.
func TestFieldsGroupingPreservesPerKeyOrder(t *testing.T) {
	type seqTuple struct{ key, seq int }
	const keys, perKey = 8, 200
	tp := NewTopology(16)
	tp.AddSpout("src", func(task int) Spout {
		i := 0
		return SpoutFunc(func(c Collector) bool {
			if i >= keys*perKey {
				return false
			}
			c.Emit("seq", Tuple{Value: seqTuple{key: i % keys, seq: i / keys}})
			i++
			return true
		})
	}, 1, "seq")
	var mu sync.Mutex
	lastSeq := map[int]int{}
	violations := 0
	tp.AddBolt("check", func(task int) Bolt {
		return BoltFunc(func(tu Tuple, c Collector) {
			st := tu.Value.(seqTuple)
			mu.Lock()
			if prev, ok := lastSeq[st.key]; ok && st.seq != prev+1 {
				violations++
			}
			lastSeq[st.key] = st.seq
			mu.Unlock()
		})
	}, 4).Fields("seq", func(tu Tuple) uint64 {
		return uint64(tu.Value.(seqTuple).key)
	})
	if err := tp.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Errorf("%d per-key ordering violations", violations)
	}
	if len(lastSeq) != keys {
		t.Errorf("saw %d keys, want %d", len(lastSeq), keys)
	}
	for k, s := range lastSeq {
		if s != perKey-1 {
			t.Errorf("key %d ended at seq %d, want %d", k, s, perKey-1)
		}
	}
}
