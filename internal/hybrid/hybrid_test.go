package hybrid

import (
	"fmt"
	"math/rand"
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
)

var testBounds = geo.NewRect(0, 0, 100, 100)

// mixedSample reproduces the Figure 2 scenario: the left half of the space
// behaves like region r1 (large clustered query ranges, rare keywords —
// text-partition friendly) and the right half like r2 (small well-spread
// queries on frequent keywords — space-partition friendly).
func mixedSample(t testing.TB, seed int64, nObj, nQry int) *partition.Sample {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frequent := make([]string, 40)
	for i := range frequent {
		frequent[i] = fmt.Sprintf("hot%02d", i)
	}
	rare := make([]string, 400)
	for i := range rare {
		rare[i] = fmt.Sprintf("rare%03d", i)
	}
	pickFrequent := func() string { return frequent[rng.Intn(len(frequent))] }
	pickRare := func() string { return rare[rng.Intn(len(rare))] }

	var objects []*model.Object
	for i := 0; i < nObj; i++ {
		left := rng.Intn(2) == 0
		var x float64
		if left {
			x = rng.Float64() * 50
		} else {
			x = 50 + rng.Float64()*50
		}
		y := rng.Float64() * 100
		terms := map[string]struct{}{}
		// Both halves carry frequent terms; the left also carries rare
		// topical terms that its queries subscribe to.
		for len(terms) < 3 {
			terms[pickFrequent()] = struct{}{}
		}
		if left {
			terms[pickRare()] = struct{}{}
		}
		var ts []string
		for s := range terms {
			ts = append(ts, s)
		}
		objects = append(objects, &model.Object{ID: uint64(i), Terms: ts, Loc: geo.Point{X: x, Y: y}})
	}
	var queries []*model.Query
	for i := 0; i < nQry; i++ {
		left := rng.Intn(2) == 0
		var q *model.Query
		if left {
			// Large clustered ranges, rare keywords.
			cx := 10 + rng.Float64()*30
			cy := 30 + rng.Float64()*40
			half := 10 + rng.Float64()*15
			q = &model.Query{
				ID:     uint64(i + 1),
				Expr:   model.And(pickRare()),
				Region: geo.NewRect(cx-half, cy-half, cx+half, cy+half).Clip(testBounds),
			}
		} else {
			// Small spread ranges, frequent keywords.
			cx := 50 + rng.Float64()*50
			cy := rng.Float64() * 100
			half := 0.5 + rng.Float64()*2
			q = &model.Query{
				ID:     uint64(i + 1),
				Expr:   model.And(pickFrequent()),
				Region: geo.NewRect(cx-half, cy-half, cx+half, cy+half).Clip(testBounds),
			}
		}
		queries = append(queries, q)
	}
	return partition.NewSample(objects, queries, testBounds, load.DefaultCosts)
}

func buildHybrid(t testing.TB, s *partition.Sample, m int) *GridT {
	t.Helper()
	a, err := Builder{}.Build(s, m)
	if err != nil {
		t.Fatal(err)
	}
	return a.(*GridT)
}

func TestBuildBasics(t *testing.T) {
	s := mixedSample(t, 1, 2000, 300)
	gt := buildHybrid(t, s, 8)
	if gt.NumWorkers() != 8 {
		t.Errorf("NumWorkers = %d", gt.NumWorkers())
	}
	if gt.Name() != "hybrid" {
		t.Errorf("Name = %q", gt.Name())
	}
	if gt.Footprint() <= 0 {
		t.Error("Footprint <= 0")
	}
	if gt.Grid().NumCells() != 64*64 {
		t.Errorf("default granularity = %d cells", gt.Grid().NumCells())
	}
}

func TestBuildInvalidWorkers(t *testing.T) {
	s := mixedSample(t, 2, 100, 20)
	if _, err := (Builder{}).Build(s, 0); err == nil {
		t.Error("Build(m=0) did not error")
	}
}

// The core correctness property: every matching (object, query) pair
// shares a worker between object route and query insertion route.
func checkInvariant(t *testing.T, a partition.Assignment, s *partition.Sample) {
	t.Helper()
	qws := make(map[uint64][]int)
	for _, q := range s.Queries {
		ws := a.RouteQuery(q, true)
		if len(ws) == 0 {
			t.Fatalf("query %d routed nowhere", q.ID)
		}
		qws[q.ID] = ws
	}
	pairs, missed := 0, 0
	for _, o := range s.Objects {
		ows := a.RouteObject(o)
		oset := map[int]bool{}
		for _, w := range ows {
			oset[w] = true
		}
		for _, q := range s.Queries {
			if !q.Matches(o) {
				continue
			}
			pairs++
			ok := false
			for _, w := range qws[q.ID] {
				if oset[w] {
					ok = true
					break
				}
			}
			if !ok {
				missed++
				if missed <= 3 {
					t.Errorf("pair (obj %d @%v, qry %d) unmatched: obj->%v qry->%v",
						o.ID, o.Loc, q.ID, ows, qws[q.ID])
				}
			}
		}
	}
	if pairs == 0 {
		t.Fatal("vacuous: no matching pairs in sample")
	}
	if missed > 0 {
		t.Fatalf("%d/%d pairs missed", missed, pairs)
	}
}

func TestRoutingInvariant(t *testing.T) {
	s := mixedSample(t, 3, 3000, 500)
	for _, m := range []int{1, 2, 8, 16} {
		t.Run(fmt.Sprintf("m%d", m), func(t *testing.T) {
			checkInvariant(t, buildHybrid(t, s, m), s)
		})
	}
}

// Routing must also hold for queries/objects NOT in the build sample
// (fresh stream content).
func TestRoutingInvariantFreshData(t *testing.T) {
	s := mixedSample(t, 4, 2000, 300)
	gt := buildHybrid(t, s, 8)
	fresh := mixedSample(t, 5, 500, 100)
	checkInvariant(t, gt, fresh)
}

// Hybrid should impose less total routed work than pure space or pure
// text partitioning on the mixed workload — the Figure 7(c) claim.
func TestHybridReducesTotalWorkload(t *testing.T) {
	s := mixedSample(t, 6, 4000, 800)
	totalRoutes := func(a partition.Assignment) int {
		n := 0
		for _, q := range s.Queries {
			n += len(a.RouteQuery(q, true))
		}
		for _, o := range s.Objects {
			n += len(a.RouteObject(o))
		}
		return n
	}
	hybridN := totalRoutes(buildHybrid(t, s, 8))
	kd, err := partition.KDTreeBuilder{}.Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	kdN := totalRoutes(kd)
	metric, err := partition.MetricBuilder{}.Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	metricN := totalRoutes(metric)
	t.Logf("total routed tuples: hybrid=%d kdtree=%d metric=%d", hybridN, kdN, metricN)
	if float64(hybridN) > 1.10*float64(kdN) {
		t.Errorf("hybrid routes %d, kd-tree %d: hybrid should not exceed by >10%%", hybridN, kdN)
	}
	if float64(hybridN) > 1.10*float64(metricN) {
		t.Errorf("hybrid routes %d, metric %d: hybrid should not exceed by >10%%", hybridN, metricN)
	}
}

func TestObjectDiscardWithoutQueries(t *testing.T) {
	s := mixedSample(t, 7, 1000, 200)
	gt := buildHybrid(t, s, 8)
	// No queries registered: H2 empty everywhere, objects dropped.
	if ws := gt.RouteObject(s.Objects[0]); len(ws) != 0 {
		t.Errorf("object routed to %v with empty H2", ws)
	}
}

func TestDeleteMirrorsInsert(t *testing.T) {
	s := mixedSample(t, 8, 1000, 200)
	gt := buildHybrid(t, s, 8)
	for _, q := range s.Queries {
		ins := gt.RouteQuery(q, true)
		del := gt.RouteQuery(q, false)
		if fmt.Sprint(ins) != fmt.Sprint(del) {
			t.Fatalf("query %d insert %v != delete %v", q.ID, ins, del)
		}
	}
}

func TestComputeNumberPartitions(t *testing.T) {
	s := mixedSample(t, 9, 2000, 400)
	cfg := DefaultConfig()
	cfg.Theta = 64
	nodes := []*unit{
		{bounds: geo.NewRect(0, 0, 50, 100), kind: kindNt},
		{bounds: geo.NewRect(50, 0, 100, 100), kind: kindNs},
	}
	for _, n := range nodes {
		for _, o := range s.Objects {
			if n.bounds.Contains(o.Loc) {
				n.objects = append(n.objects, o)
			}
		}
		for _, q := range s.Queries {
			if q.Region.Intersects(n.bounds) {
				n.queries = append(n.queries, q)
			}
		}
		n.computeLoad(cfg.Costs)
	}
	counts := computeNumberPartitions(nodes, 8, s.Stats, cfg)
	if len(counts) != 2 {
		t.Fatalf("counts = %v", counts)
	}
	sum := 0
	for _, c := range counts {
		if c < 1 {
			t.Errorf("count %d < 1", c)
		}
		sum += c
	}
	if sum != 8 {
		t.Errorf("counts sum to %d, want 8", sum)
	}
}

func TestMergeNodesBalance(t *testing.T) {
	units := []*unit{
		{load: 100}, {load: 90}, {load: 50}, {load: 40},
		{load: 30}, {load: 20}, {load: 10}, {load: 5},
	}
	owners := mergeNodesIntoPartitions(units, 3)
	loads := make([]float64, 3)
	for i, u := range units {
		if owners[i] < 0 || owners[i] >= 3 {
			t.Fatalf("owner %d out of range", owners[i])
		}
		loads[owners[i]] += u.load
	}
	if f := load.BalanceFactor(loads); f > 1.6 {
		t.Errorf("merge balance factor %v (loads %v)", f, loads)
	}
}

func TestBalanceAcrossWorkers(t *testing.T) {
	s := mixedSample(t, 10, 4000, 600)
	gt := buildHybrid(t, s, 8)
	counts := make([]float64, 8)
	for _, q := range s.Queries {
		for _, w := range gt.RouteQuery(q, true) {
			counts[w] += 0.5
		}
	}
	for _, o := range s.Objects {
		for _, w := range gt.RouteObject(o) {
			counts[w]++
		}
	}
	if f := load.BalanceFactor(counts); f > 6 {
		t.Errorf("runtime balance factor %v (counts %v)", f, counts)
	}
}

func TestHybridUsesBothStrategies(t *testing.T) {
	s := mixedSample(t, 11, 4000, 600)
	gt := buildHybrid(t, s, 8)
	text, space := 0, 0
	for id := 0; id < gt.Grid().NumCells(); id++ {
		if gt.IsTextCell(id) {
			text++
		} else {
			space++
		}
	}
	t.Logf("cells: %d text, %d space", text, space)
	if text == 0 {
		t.Error("hybrid produced no text-partitioned cells on the mixed workload")
	}
	if space == 0 {
		t.Error("hybrid produced no space-partitioned cells on the mixed workload")
	}
}

func TestEmptySampleBuild(t *testing.T) {
	s := partition.NewSample(nil, nil, testBounds, load.Costs{})
	gt := buildHybrid(t, s, 4)
	q := &model.Query{ID: 1, Expr: model.And("x"), Region: geo.NewRect(10, 10, 20, 20)}
	o := &model.Object{ID: 1, Terms: []string{"x"}, Loc: geo.Point{X: 15, Y: 15}}
	qw := gt.RouteQuery(q, true)
	ow := gt.RouteObject(o)
	shared := false
	for _, a := range ow {
		for _, b := range qw {
			shared = shared || a == b
		}
	}
	if !shared {
		t.Errorf("empty-sample hybrid broke invariant: obj %v qry %v", ow, qw)
	}
}
