package hybrid

import (
	"testing"

	"ps2stream/internal/geo"
	"ps2stream/internal/model"
)

// findCell locates a cell of the requested type with at least one live H2
// key for some worker.
func findCell(t *testing.T, gt *GridT, wantText bool) (cellID int, worker int) {
	t.Helper()
	for id := 0; id < gt.Grid().NumCells(); id++ {
		if gt.IsTextCell(id) != wantText {
			continue
		}
		for _, w := range gt.CellWorkers(id) {
			if len(gt.H2Keys(id, w)) > 0 {
				return id, w
			}
		}
	}
	t.Skipf("no %v cell with live H2 keys", wantText)
	return 0, 0
}

func routedGrid(t *testing.T, seed int64) (*GridT, []*model.Query, []*model.Object) {
	t.Helper()
	s := mixedSample(t, seed, 3000, 600)
	gt := buildHybrid(t, s, 8)
	for _, q := range s.Queries {
		gt.RouteQuery(q, true)
	}
	return gt, s.Queries, s.Objects
}

func TestReassignSpaceCell(t *testing.T) {
	gt, queries, objects := routedGrid(t, 20)
	cellID, old := findCell(t, gt, false)
	to := (old + 1) % gt.NumWorkers()
	if got := gt.ReassignSpaceCell(cellID, to); got != old {
		t.Fatalf("ReassignSpaceCell returned %d, want %d", got, old)
	}
	// Objects in that cell must now route to the new worker.
	for _, o := range objects {
		if gt.Grid().CellOf(o.Loc) != cellID {
			continue
		}
		for _, w := range gt.RouteObject(o) {
			if w == old {
				t.Fatalf("object in reassigned cell still routes to %d", old)
			}
		}
	}
	// New queries overlapping only that cell route to the new worker.
	r := gt.Grid().CellRect(cellID)
	c := r.Center()
	q := &model.Query{ID: 999999, Expr: model.And("anything"),
		Region: geo.NewRect(c.X, c.Y, c.X, c.Y)}
	ws := gt.RouteQuery(q, true)
	if len(ws) != 1 || ws[0] != to {
		t.Errorf("fresh query routed to %v, want [%d]", ws, to)
	}
	_ = queries
}

func TestReassignSpaceCellOnTextCellFails(t *testing.T) {
	gt, _, _ := routedGrid(t, 21)
	cellID, _ := findCell(t, gt, true)
	if got := gt.ReassignSpaceCell(cellID, 0); got != -1 {
		t.Errorf("ReassignSpaceCell on text cell returned %d, want -1", got)
	}
}

func TestReassignTextShare(t *testing.T) {
	gt, _, objects := routedGrid(t, 22)
	cellID, from := findCell(t, gt, true)
	keys := gt.H2Keys(cellID, from)
	if len(keys) == 0 {
		t.Skip("no keys")
	}
	to := (from + 1) % gt.NumWorkers()
	moved := gt.ReassignTextShare(cellID, from, to)
	if moved != len(keys) {
		t.Errorf("moved %d H2 keys, want %d", moved, len(keys))
	}
	if got := gt.H2Keys(cellID, from); len(got) != 0 {
		t.Errorf("worker %d still owns keys %v after reassign", from, got)
	}
	// Objects in the cell matching moved keys route to `to`, not `from`.
	keySet := map[string]bool{}
	for _, k := range keys {
		keySet[k] = true
	}
	for _, o := range objects {
		if gt.Grid().CellOf(o.Loc) != cellID {
			continue
		}
		hasKey := false
		for _, term := range o.Terms {
			hasKey = hasKey || keySet[term]
		}
		if !hasKey {
			continue
		}
		for _, w := range gt.RouteObject(o) {
			if w == from {
				t.Fatalf("object with moved key still routed to %d", from)
			}
		}
	}
}

func TestSplitSpaceCellByText(t *testing.T) {
	gt, _, _ := routedGrid(t, 23)
	cellID, old := findCell(t, gt, false)
	keys := gt.H2Keys(cellID, old)
	if len(keys) < 2 {
		t.Skip("cell has too few keys to split")
	}
	movedKeys := keys[:len(keys)/2]
	to := (old + 1) % gt.NumWorkers()
	if got := gt.SplitSpaceCellByText(cellID, movedKeys, to); got != old {
		t.Fatalf("SplitSpaceCellByText returned %d, want %d", got, old)
	}
	if !gt.IsTextCell(cellID) {
		t.Fatal("cell not converted to text cell")
	}
	// Moved keys now route to `to`, the rest stay with `old`.
	for _, k := range movedKeys {
		q := &model.Query{ID: 777000, Expr: model.And(k),
			Region: geo.NewRect(gt.Grid().CellRect(cellID).Center().X, gt.Grid().CellRect(cellID).Center().Y,
				gt.Grid().CellRect(cellID).Center().X, gt.Grid().CellRect(cellID).Center().Y)}
		ws := gt.RouteQuery(q, false) // probe without mutating H2
		if len(ws) != 1 || ws[0] != to {
			t.Errorf("key %q routes to %v, want [%d]", k, ws, to)
		}
	}
	stay := gt.H2Keys(cellID, old)
	if len(stay) != len(keys)-len(movedKeys) {
		t.Errorf("%d keys stayed with %d, want %d", len(stay), old, len(keys)-len(movedKeys))
	}
}

func TestMergeTextSharesCollapsesCell(t *testing.T) {
	gt, _, _ := routedGrid(t, 24)
	cellID, old := findCell(t, gt, false)
	keys := gt.H2Keys(cellID, old)
	if len(keys) < 2 {
		t.Skip("too few keys")
	}
	to := (old + 1) % gt.NumWorkers()
	gt.SplitSpaceCellByText(cellID, keys[:1], to)
	if !gt.IsTextCell(cellID) {
		t.Fatal("split failed")
	}
	// Merge the moved share back into old: cell should collapse to a
	// space cell owned by old.
	gt.MergeTextShares(cellID, to, old)
	if gt.IsTextCell(cellID) {
		t.Error("cell did not collapse to a space cell after merge")
	}
	ws := gt.CellWorkers(cellID)
	if len(ws) != 1 || ws[0] != old {
		t.Errorf("CellWorkers = %v, want [%d]", ws, old)
	}
}

func TestCellWorkersSpace(t *testing.T) {
	gt, _, _ := routedGrid(t, 25)
	cellID, w := findCell(t, gt, false)
	ws := gt.CellWorkers(cellID)
	if len(ws) != 1 || ws[0] != w {
		t.Errorf("CellWorkers = %v, want [%d]", ws, w)
	}
}

func TestH2KeysSorted(t *testing.T) {
	gt, _, _ := routedGrid(t, 26)
	cellID, w := findCell(t, gt, false)
	keys := gt.H2Keys(cellID, w)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			t.Fatalf("H2Keys not sorted: %v", keys)
		}
	}
}

// PeekQuery must agree with delete-routing on targets while leaving
// H2's registration counts untouched. RouteQuery(q, false) *is* the
// delete path and decrements them — bookkeeping that probes a query's
// current placement (e.g. migration extraction deciding whether the
// source still holds it through another cell) must not burn a
// registration per probe, or objects with those terms stop routing.
func TestPeekQueryDoesNotPerturbRouting(t *testing.T) {
	gt, queries, objects := routedGrid(t, 24)
	routesBefore := make(map[uint64]int, len(objects))
	for _, o := range objects {
		routesBefore[o.ID] = len(gt.RouteObject(o))
	}
	for _, q := range queries {
		peek := gt.PeekQuery(q)
		if len(peek) == 0 {
			t.Fatalf("PeekQuery(%d) found no targets for a registered query", q.ID)
		}
	}
	// Probing every registered query many times over must not change a
	// single object's routing fan-out.
	for i := 0; i < 3; i++ {
		for _, q := range queries {
			gt.PeekQuery(q)
		}
	}
	for _, o := range objects {
		if got := len(gt.RouteObject(o)); got != routesBefore[o.ID] {
			t.Fatalf("object %d fan-out changed %d -> %d after PeekQuery probes",
				o.ID, routesBefore[o.ID], got)
		}
	}
	// Contrast: the delete path really does release registrations, so a
	// probe implemented on top of it would have corrupted the table.
	for _, q := range queries {
		gt.RouteQuery(q, false)
	}
	changed := false
	for _, o := range objects {
		if len(gt.RouteObject(o)) != routesBefore[o.ID] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("deleting every query changed no object's routing; the contrast check is vacuous")
	}
}
