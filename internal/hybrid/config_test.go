package hybrid

import (
	"fmt"
	"math/rand"
	"testing"
)

// Extreme δ values force the algorithm to the all-space (δ=0 sends every
// node to N_t only if splitting helps; δ→1 classifies everything N_s) and
// all-text ends; both must still satisfy the routing invariant.
func TestConfigDeltaExtremes(t *testing.T) {
	s := mixedSample(t, 40, 2000, 300)
	for _, delta := range []float64{0.01, 0.5, 0.99} {
		t.Run(fmt.Sprintf("delta=%v", delta), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Delta = delta
			a, err := Builder{Config: cfg}.Build(s, 8)
			if err != nil {
				t.Fatal(err)
			}
			checkInvariant(t, a, s)
		})
	}
}

func TestConfigSigmaTight(t *testing.T) {
	s := mixedSample(t, 41, 2000, 300)
	cfg := DefaultConfig()
	cfg.Sigma = 1.05 // near-perfect balance demanded
	cfg.Theta = 128
	a, err := Builder{Config: cfg}.Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, a, s)
}

func TestConfigTinyTheta(t *testing.T) {
	s := mixedSample(t, 42, 1500, 200)
	cfg := DefaultConfig()
	cfg.Theta = 4 // fewer units than workers: merge must still cover all 8
	a, err := Builder{Config: cfg}.Build(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, a, s)
}

// Random mutation sequences must preserve the local consistency between
// H2 entries and object routing: an object whose term is a live H2 key is
// always routed to that key's recorded worker.
func TestMutationSequencePreservesH2Consistency(t *testing.T) {
	s := mixedSample(t, 43, 2500, 400)
	gt := buildHybrid(t, s, 8)
	for _, q := range s.Queries {
		gt.RouteQuery(q, true)
	}
	rng := rand.New(rand.NewSource(43))
	muts := 0
	for i := 0; i < 200 && muts < 50; i++ {
		cell := rng.Intn(gt.Grid().NumCells())
		ws := gt.CellWorkers(cell)
		if len(ws) == 0 {
			continue
		}
		from := ws[rng.Intn(len(ws))]
		to := (from + 1 + rng.Intn(7)) % 8
		if gt.IsTextCell(cell) {
			if rng.Intn(2) == 0 {
				gt.ReassignTextShare(cell, from, to)
			} else {
				gt.MergeTextShares(cell, from, to)
			}
			muts++
		} else {
			keys := gt.H2Keys(cell, from)
			if len(keys) > 1 && rng.Intn(2) == 0 {
				gt.SplitSpaceCellByText(cell, keys[:len(keys)/2], to)
			} else {
				gt.ReassignSpaceCell(cell, to)
			}
			muts++
		}
	}
	if muts == 0 {
		t.Skip("no mutations applied")
	}
	// Consistency check via routing: objects must route to the worker
	// recorded in their cell's H2 entry for each of their live terms.
	for _, o := range s.Objects[:500] {
		cell := gt.Grid().CellOf(o.Loc)
		routed := map[int]bool{}
		for _, w := range gt.RouteObject(o) {
			routed[w] = true
		}
		for _, term := range o.Terms {
			for _, w := range gt.CellWorkers(cell) {
				for _, k := range gt.H2Keys(cell, w) {
					if k == term && !routed[w] {
						t.Fatalf("object %d term %q: H2 records worker %d but routing gave %v",
							o.ID, term, w, routed)
					}
				}
			}
		}
	}
}
