// Package hybrid implements the paper's primary contribution: the hybrid
// workload-partitioning algorithm (§IV, Algorithm 1) producing a kdt-tree —
// a kd-tree whose leaves may be further partitioned by text — and the
// gridt dispatcher index derived from it (§IV-C).
//
// The algorithm has two phases. Phase one recursively splits the space,
// classifying subspaces into N_s (objects and queries textually similar:
// keep space-partitioning available) and N_t (textually dissimilar:
// text-partition them). Phase two computes how many partitions each
// subspace should be divided into (a dynamic program minimising total
// load), partitions each node by the cheaper of text- and
// space-partitioning, and merges the resulting units onto m workers while
// enforcing the balance constraint L_max/L_min ≤ σ.
package hybrid

import (
	"fmt"
	"math"
	"sort"

	"ps2stream/internal/geo"
	"ps2stream/internal/index/grid"
	"ps2stream/internal/load"
	"ps2stream/internal/model"
	"ps2stream/internal/partition"
	"ps2stream/internal/textutil"
)

// Config holds the tunables of Algorithm 1.
type Config struct {
	// Delta is the text-similarity threshold δ: nodes with
	// simt(O_n, Q_n) ≥ δ go to N_s.
	Delta float64
	// Epsilon bounds |α − simt(O_n,Q_n)| ≈ 0: when splitting cannot
	// reduce similarity by more than Epsilon, the node goes to N_t.
	Epsilon float64
	// Sigma is the balance constraint σ (> 1).
	Sigma float64
	// Theta is θ, the maximum number of partition units.
	Theta int
	// MinNodeObjects stops spatial refinement of sparsely sampled nodes.
	MinNodeObjects int
	// Granularity is the per-axis gridt resolution.
	Granularity int
	// Costs are the Definition 1 constants.
	Costs load.Costs
}

// DefaultConfig mirrors the evaluation setup: granularity 2^6, a balance
// tolerance of 25%, and thresholds found stable across the workloads.
func DefaultConfig() Config {
	return Config{
		Delta:          0.5,
		Epsilon:        0.02,
		Sigma:          1.25,
		Theta:          0, // 0 = 8*m at build time
		MinNodeObjects: 32,
		Granularity:    grid.DefaultGranularity,
		Costs:          load.DefaultCosts,
	}
}

// Builder implements partition.Builder using the hybrid algorithm.
type Builder struct {
	Config Config
}

// Name implements partition.Builder.
func (Builder) Name() string { return "hybrid" }

// Build implements partition.Builder: it runs Algorithm 1 over the sample
// and returns the gridt index as the dispatcher-side Assignment.
func (b Builder) Build(s *partition.Sample, m int) (partition.Assignment, error) {
	if m < 1 {
		return nil, fmt.Errorf("hybrid: need at least 1 worker, got %d", m)
	}
	cfg := b.Config
	if cfg == (Config{}) {
		cfg = DefaultConfig()
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 8 * m
	}
	if cfg.Granularity <= 0 {
		cfg.Granularity = grid.DefaultGranularity
	}
	if cfg.Costs == (load.Costs{}) {
		cfg.Costs = load.DefaultCosts
	}
	units, owners := partitionWorkload(s, m, cfg)
	return buildGridT(s, m, cfg, units, owners), nil
}

// nodeKind classifies phase-one nodes.
type nodeKind uint8

const (
	kindNs nodeKind = iota // similar text distributions: space-partitionable
	kindNt                 // dissimilar: text-partition only
)

// unit is one leaf of the kdt-tree: a subspace, optionally restricted to a
// subset of registration keys (text unit). Units are the items merged onto
// workers and later the grain of splitting in the balance loop.
type unit struct {
	bounds geo.Rect
	kind   nodeKind
	// keys is nil for a unit covering all terms of its subspace (space
	// unit); otherwise the registration keys owned by this text unit.
	keys map[string]struct{}
	// groupIdx/groupOf link sibling text units produced by one split:
	// groupOf[i] is the sibling list; unknown terms hash onto it.
	siblings []*unit

	objects []*model.Object
	queries []*model.Query
	load    float64
}

func (u *unit) isText() bool { return u.keys != nil }

// computeLoad evaluates the Definition 1 estimate for the unit.
func (u *unit) computeLoad(c load.Costs) {
	u.load = c.Node(float64(len(u.objects)), float64(len(u.queries)))
}

// termStats builds the two term-count vectors for simt.
func termStats(objects []*model.Object, queries []*model.Query) (o, q *textutil.Stats) {
	o = textutil.NewStats()
	for _, ob := range objects {
		o.Add(ob.Terms...)
	}
	q = textutil.NewStats()
	for _, qu := range queries {
		q.Add(qu.Expr.Terms()...)
	}
	return o, q
}

func simt(objects []*model.Object, queries []*model.Query) float64 {
	o, q := termStats(objects, queries)
	return textutil.CosineStats(o, q)
}

// partitionWorkload runs Algorithm 1 and returns the final units plus the
// worker index assigned to each unit.
func partitionWorkload(s *partition.Sample, m int, cfg Config) ([]*unit, []int) {
	root := &unit{
		bounds:  s.Bounds,
		kind:    kindNs,
		objects: s.Objects,
		queries: s.Queries,
	}
	root.computeLoad(cfg.Costs)

	// Phase 1 (Algorithm 1 lines 3–12): classify subspaces into Ns / Nt.
	var nodes []*unit
	queue := []*unit{root}
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if len(n.objects) < cfg.MinNodeObjects || len(n.queries) == 0 ||
			len(nodes)+len(queue) >= cfg.Theta {
			n.kind = kindNs
			nodes = append(nodes, n)
			continue
		}
		sim := simt(n.objects, n.queries)
		if sim >= cfg.Delta {
			n.kind = kindNs
			nodes = append(nodes, n)
			continue
		}
		n1, n2, alpha, ok := bestSpatialSplit(n, cfg)
		if !ok || math.Abs(alpha-sim) <= cfg.Epsilon {
			n.kind = kindNt
			nodes = append(nodes, n)
			continue
		}
		queue = append(queue, n1, n2)
	}

	// Phase 2 (lines 13–16): expand nodes to m units where needed.
	units := nodes
	if len(nodes) < m {
		counts := computeNumberPartitions(nodes, m, s.Stats, cfg)
		units = nil
		for i, n := range nodes {
			units = append(units, partitionNode(n, counts[i], s.Stats, cfg)...)
		}
	}

	// Lines 17–27: merge to m partitions, splitting the heaviest node
	// until the balance constraint holds or θ units exist.
	var owners []int
	for {
		owners = mergeNodesIntoPartitions(units, m)
		loads := make([]float64, m)
		for i, u := range units {
			loads[owners[i]] += u.load
		}
		if load.BalanceFactor(loads) <= cfg.Sigma || len(units) >= cfg.Theta {
			break
		}
		// Split the heaviest splittable unit into 2.
		sort.Slice(units, func(i, j int) bool { return units[i].load > units[j].load })
		splitDone := false
		for i, u := range units {
			parts := partitionNode(u, 2, s.Stats, cfg)
			if len(parts) == 2 {
				units = append(units[:i], units[i+1:]...)
				units = append(units, parts...)
				splitDone = true
				break
			}
		}
		if !splitDone {
			break
		}
	}
	return units, owners
}

// bestSpatialSplit splits n in the direction minimising
// α = min(simt(n1), simt(n2)) — Algorithm 1 line 8.
func bestSpatialSplit(n *unit, cfg Config) (a, b *unit, alpha float64, ok bool) {
	type cand struct {
		a, b  *unit
		alpha float64
	}
	var cands []cand
	for dim := 0; dim < 2; dim++ {
		c1, c2, okd := splitUnitSpatially(n, dim, cfg)
		if !okd {
			continue
		}
		al := math.Min(simt(c1.objects, c1.queries), simt(c2.objects, c2.queries))
		cands = append(cands, cand{c1, c2, al})
	}
	if len(cands) == 0 {
		return nil, nil, 0, false
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.alpha < best.alpha {
			best = c
		}
	}
	return best.a, best.b, best.alpha, true
}

// splitUnitSpatially cuts n at the object-weighted median along dim,
// assigning objects by location and duplicating queries by region overlap.
func splitUnitSpatially(n *unit, dim int, cfg Config) (*unit, *unit, bool) {
	if len(n.objects) < 2 {
		return nil, nil, false
	}
	coords := make([]float64, len(n.objects))
	for i, o := range n.objects {
		if dim == 0 {
			coords[i] = o.Loc.X
		} else {
			coords[i] = o.Loc.Y
		}
	}
	sort.Float64s(coords)
	median := coords[len(coords)/2]
	if coords[0] == coords[len(coords)-1] {
		return nil, nil, false
	}
	// Nudge the cut off the median value when it equals the minimum so
	// both sides are non-empty.
	if median == coords[0] {
		for _, c := range coords {
			if c > median {
				median = (median + c) / 2
				break
			}
		}
	}
	var lb, rb geo.Rect
	if dim == 0 {
		lb, rb = n.bounds.SplitX(median)
	} else {
		lb, rb = n.bounds.SplitY(median)
	}
	a := &unit{bounds: lb, kind: kindNs}
	b := &unit{bounds: rb, kind: kindNs}
	for _, o := range n.objects {
		v := o.Loc.X
		if dim == 1 {
			v = o.Loc.Y
		}
		if v <= median {
			a.objects = append(a.objects, o)
		} else {
			b.objects = append(b.objects, o)
		}
	}
	if len(a.objects) == 0 || len(b.objects) == 0 {
		return nil, nil, false
	}
	for _, q := range n.queries {
		if q.Region.Intersects(lb) {
			a.queries = append(a.queries, q)
		}
		if q.Region.Intersects(rb) {
			b.queries = append(b.queries, q)
		}
	}
	a.computeLoad(cfg.Costs)
	b.computeLoad(cfg.Costs)
	return a, b, true
}

// splitUnitByText partitions the unit's registration keys into p balanced
// groups, duplicating objects that carry keys of several groups and OR
// queries registered under keys in several groups.
func splitUnitByText(n *unit, p int, stats *textutil.Stats, cfg Config) []*unit {
	keyQueries := make(map[string][]*model.Query)
	for _, q := range n.queries {
		for _, k := range stats.RegistrationKeys(q.Expr.Conj) {
			if n.keys != nil {
				if _, ok := n.keys[k]; !ok {
					continue
				}
			}
			keyQueries[k] = append(keyQueries[k], q)
		}
	}
	if len(keyQueries) < p {
		return nil
	}
	keys := make([]string, 0, len(keyQueries))
	for k := range keyQueries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	weights := make([]float64, len(keys))
	for i, k := range keys {
		weights[i] = float64(len(keyQueries[k])) + float64(stats.Count(k))*0.01
	}
	groupOf := greedyGroups(keys, weights, p)
	units := make([]*unit, p)
	for g := 0; g < p; g++ {
		units[g] = &unit{bounds: n.bounds, kind: kindNt, keys: make(map[string]struct{})}
	}
	for i, k := range keys {
		units[groupOf[i]].keys[k] = struct{}{}
	}
	// Queries: one copy per group owning any of its registration keys.
	for g, u := range units {
		seen := make(map[uint64]struct{})
		for k := range u.keys {
			for _, q := range keyQueries[k] {
				if _, dup := seen[q.ID]; dup {
					continue
				}
				seen[q.ID] = struct{}{}
				u.queries = append(u.queries, q)
			}
		}
		_ = g
	}
	// Objects: duplicated to every group holding at least one of their
	// terms that is an active registration key.
	for _, o := range n.objects {
		var mask uint64
		for _, t := range o.Terms {
			if _, active := keyQueries[t]; !active {
				continue
			}
			for g, u := range units {
				if _, ok := u.keys[t]; ok {
					mask |= 1 << uint(g)
				}
			}
		}
		for g := 0; g < p; g++ {
			if mask&(1<<uint(g)) != 0 {
				units[g].objects = append(units[g].objects, o)
			}
		}
	}
	for _, u := range units {
		u.computeLoad(cfg.Costs)
	}
	for _, u := range units {
		u.siblings = units
	}
	return units
}

// greedyGroups assigns weighted keys to p groups, heaviest first to the
// lightest group.
func greedyGroups(keys []string, weights []float64, p int) []int {
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if weights[idx[a]] != weights[idx[b]] {
			return weights[idx[a]] > weights[idx[b]]
		}
		return keys[idx[a]] < keys[idx[b]]
	})
	groupOf := make([]int, len(keys))
	gw := make([]float64, p)
	for _, i := range idx {
		best := 0
		for g := 1; g < p; g++ {
			if gw[g] < gw[best] {
				best = g
			}
		}
		groupOf[i] = best
		gw[best] += weights[i]
	}
	return groupOf
}

// partitionNode implements function PartitionNode: split node n into p
// units. N_t nodes (and text units) are split by text; N_s nodes take
// whichever of text- and space-partitioning yields the smaller total load.
// Returns the units (possibly fewer than p if the node cannot be split
// that far; p == 1 returns the node itself). stats is the global term
// frequency table, shared with the runtime so registration keys agree.
func partitionNode(n *unit, p int, stats *textutil.Stats, cfg Config) []*unit {
	if p <= 1 {
		return []*unit{n}
	}
	if n.kind == kindNt || n.isText() {
		if parts := splitUnitByText(n, p, stats, cfg); parts != nil {
			return parts
		}
		return []*unit{n}
	}
	spaceParts := splitSpatiallyInto(n, p, cfg)
	textParts := splitUnitByText(n, p, stats, cfg)
	switch {
	case spaceParts == nil && textParts == nil:
		return []*unit{n}
	case spaceParts == nil:
		return textParts
	case textParts == nil:
		return spaceParts
	}
	if totalLoad(textParts) < totalLoad(spaceParts) {
		return textParts
	}
	return spaceParts
}

// splitSpatiallyInto produces p space units via recursive median splits
// (heaviest-first), or nil when the node cannot be split spatially.
func splitSpatiallyInto(n *unit, p int, cfg Config) []*unit {
	parts := []*unit{n}
	for len(parts) < p {
		// Split the heaviest part that can split.
		sort.Slice(parts, func(i, j int) bool { return parts[i].load > parts[j].load })
		done := false
		for i, u := range parts {
			dim := 0
			if u.bounds.Height() > u.bounds.Width() {
				dim = 1
			}
			a, b, ok := splitUnitSpatially(u, dim, cfg)
			if !ok {
				a, b, ok = splitUnitSpatially(u, 1-dim, cfg)
			}
			if ok {
				parts = append(parts[:i], parts[i+1:]...)
				parts = append(parts, a, b)
				done = true
				break
			}
		}
		if !done {
			break
		}
	}
	if len(parts) < p {
		return nil
	}
	return parts
}

func totalLoad(us []*unit) float64 {
	var s float64
	for _, u := range us {
		s += u.load
	}
	return s
}

// computeNumberPartitions implements the ComputeNumberPartitions dynamic
// program: choose k_i ≥ 1 partitions per node with Σk_i = m minimising the
// total load Σ C[i,k_i], where C[i,k] is the load after partitioning node
// i into k parts (simulated without committing).
func computeNumberPartitions(nodes []*unit, m int, stats *textutil.Stats, cfg Config) []int {
	n := len(nodes)
	if n == 0 {
		return nil
	}
	// C[i][k], k in 1..m-n+1.
	maxK := m - n + 1
	C := make([][]float64, n)
	for i, nd := range nodes {
		C[i] = make([]float64, maxK+1)
		C[i][1] = nd.load
		for k := 2; k <= maxK; k++ {
			parts := partitionNode(nd, k, stats, cfg)
			if len(parts) < k {
				// Cannot split this far; same cost as best achievable.
				C[i][k] = C[i][k-1]
			} else {
				C[i][k] = totalLoad(parts)
			}
		}
	}
	const inf = math.MaxFloat64
	// L[i][j]: first i nodes into j partitions.
	L := make([][]float64, n+1)
	choice := make([][]int, n+1)
	for i := range L {
		L[i] = make([]float64, m+1)
		choice[i] = make([]int, m+1)
		for j := range L[i] {
			L[i][j] = inf
		}
	}
	L[0][0] = 0
	for i := 1; i <= n; i++ {
		for j := i; j <= m; j++ {
			for k := 1; k <= maxK && k <= j-i+1; k++ {
				if L[i-1][j-k] == inf {
					continue
				}
				v := L[i-1][j-k] + C[i-1][k]
				if v < L[i][j] {
					L[i][j] = v
					choice[i][j] = k
				}
			}
		}
	}
	counts := make([]int, n)
	j := m
	for i := n; i >= 1; i-- {
		k := choice[i][j]
		if k == 0 {
			k = 1
		}
		counts[i-1] = k
		j -= k
	}
	return counts
}

// mergeNodesIntoPartitions implements MergeNodesIntoPartitions: sort units
// by descending load; each goes to the partition minimising the resulting
// load increase unless that worsens the balance factor, in which case it
// goes to the currently lightest partition. Returns the worker per unit.
func mergeNodesIntoPartitions(units []*unit, m int) []int {
	idx := make([]int, len(units))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if units[idx[a]].load != units[idx[b]].load {
			return units[idx[a]].load > units[idx[b]].load
		}
		return idx[a] < idx[b]
	})
	owners := make([]int, len(units))
	loads := make([]float64, m)
	for _, i := range idx {
		u := units[i]
		// Partition with the minimum load increase. With additive unit
		// loads the increase is u.load for every partition, so the
		// minimum-increase choice and the paper's fallback ("the
		// partition that has currently the smallest load") coincide:
		// pick the lightest partition.
		best := 0
		for p := 1; p < m; p++ {
			if loads[p] < loads[best] {
				best = p
			}
		}
		loads[best] += u.load
		owners[i] = best
	}
	return owners
}
